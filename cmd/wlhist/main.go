// Command wlhist maintains the longitudinal run-history store: an
// append-only wlhist/v1 JSONL log of benchmark, load-test,
// observability and attribution results, keyed by engine version, git
// commit and host fingerprint so entries are comparable or explicitly
// not.
//
// `record` ingests report files (wlbench -json output, the PR-5
// before/after report, wlload/v1 reports, wlobs/v1 manifests,
// wlattr/v1 ledgers, or a saved Prometheus exposition) into the
// store, deduplicating by content. `scrape` pulls /metrics from a
// running wlserve and records the snapshot. `trend` prints a
// per-metric sparkline table; `html` writes the self-contained trend
// dashboard. `gate` judges each metric's newest transition against
// its comparable history and exits 2 on drift — host-speed metrics
// only ever gate against runs from the same host fingerprint, so a
// slower CI runner cannot fail the build, while simulated outcomes
// (checksums, outage counts) gate across hosts.
//
// Usage:
//
//	wlhist record -store HISTORY.jsonl -label pr8 BENCH_PR8.json
//	wlhist scrape -store HISTORY.jsonl -url http://127.0.0.1:8080/metricz
//	wlhist trend -store HISTORY.jsonl -filter ns_per_op
//	wlhist gate -store HISTORY.jsonl -threshold 0.10
//	wlhist html -store HISTORY.jsonl -out dashboard.html
//
// Exit codes (CI branches on these):
//
//	0  success; gate: no drift
//	1  usage or I/O error
//	2  gate: at least one metric regressed
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"wlcache/internal/hist"
	"wlcache/internal/hostinfo"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlhist:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the CLI; factored out of main for testing. The int is
// the process exit code for a completed command.
func run(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("usage: wlhist record|scrape|trend|gate|html|list [flags]; see `wlhist <cmd> -h`")
	}
	switch args[0] {
	case "-version", "--version", "version":
		fmt.Fprintln(stdout, hostinfo.Version("wlhist"))
		return 0, nil
	case "record":
		return runRecord(args[1:], stdout)
	case "scrape":
		return runScrape(args[1:], stdout)
	case "trend":
		return runTrend(args[1:], stdout)
	case "gate":
		return runGate(args[1:], stdout)
	case "html":
		return runHTML(args[1:], stdout)
	case "list":
		return runList(args[1:], stdout)
	}
	return 0, fmt.Errorf("unknown subcommand %q (want record, scrape, trend, gate, html or list)", args[0])
}

// storeFlag registers the shared -store flag.
func storeFlag(fs *flag.FlagSet) *string {
	return fs.String("store", "HISTORY.jsonl", "history store (wlhist/v1 JSONL, append-only)")
}

func runRecord(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlhist record", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		store = storeFlag(fs)
		label = fs.String("label", "", "label recorded on every ingested entry")
		now   = fs.Int64("now", -1, "recorded_unix timestamp: -1 = wall clock, 0 = omit (deterministic, for committed baselines)")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() == 0 {
		return 0, fmt.Errorf("record: no input files (wlbench/wlload/wlobs/wlattr reports or a saved scrape)")
	}
	s, err := hist.Open(*store)
	if err != nil {
		return 0, err
	}
	stamp := *now
	if stamp < 0 {
		stamp = time.Now().Unix()
	}
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		entries, err := hist.Ingest(raw, path, *label)
		if err != nil {
			return 0, err
		}
		for _, e := range entries {
			e.RecordedUnix = stamp
			appended, added, err := s.Append(e)
			if err != nil {
				return 0, err
			}
			verb := "recorded"
			if !added {
				verb = "already recorded"
			}
			fmt.Fprintf(stdout, "%s %s (%d metrics) as seq %d id %.12s\n",
				verb, appended.Source.Name, len(appended.Metrics), appended.Seq, appended.ID)
		}
	}
	return 0, nil
}

func runScrape(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlhist scrape", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		store   = storeFlag(fs)
		url     = fs.String("url", "", "metrics endpoint of a running wlserve (e.g. http://127.0.0.1:8080/metricz)")
		label   = fs.String("label", "", "label recorded on the entry")
		timeout = fs.Duration("timeout", 10*time.Second, "scrape timeout")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *url == "" {
		return 0, fmt.Errorf("scrape: -url is required")
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(*url)
	if err != nil {
		return 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("scrape: %s returned %s", *url, resp.Status)
	}
	s, err := hist.Open(*store)
	if err != nil {
		return 0, err
	}
	entries, err := hist.Ingest(raw, *url, *label)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		e.RecordedUnix = time.Now().Unix()
		appended, added, err := s.Append(e)
		if err != nil {
			return 0, err
		}
		verb := "recorded"
		if !added {
			verb = "already recorded"
		}
		fmt.Fprintf(stdout, "%s scrape of %s (%d metrics) as seq %d\n",
			verb, *url, len(appended.Metrics), appended.Seq)
	}
	return 0, nil
}

func runTrend(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlhist trend", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		store  = storeFlag(fs)
		filter = fs.String("filter", "", "only series whose name contains this substring")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	s, err := hist.Open(*store)
	if err != nil {
		return 0, err
	}
	warnTorn(stdout, s)
	fmt.Fprint(stdout, hist.TrendTable(s, *filter))
	return 0, nil
}

func runGate(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlhist gate", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		store      = storeFlag(fs)
		threshold  = fs.Float64("threshold", 0.10, "relative change tolerated on perf metrics")
		percentile = fs.Float64("percentile", 0.95, "history quantile latency metrics are judged against")
		minHist    = fs.Int("min-history", 3, "comparable runs needed before the percentile rule applies")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	s, err := hist.Open(*store)
	if err != nil {
		return 0, err
	}
	warnTorn(stdout, s)
	rep := hist.Gate(s, hist.GateConfig{
		Threshold:  *threshold,
		Percentile: *percentile,
		MinHistory: *minHist,
	})
	fmt.Fprint(stdout, hist.GateTable(rep))
	if rep.Regressions > 0 {
		fmt.Fprintf(stdout, "gate: %d metric(s) drifted\n", rep.Regressions)
		return 2, nil
	}
	fmt.Fprintln(stdout, "gate: no drift")
	return 0, nil
}

func runHTML(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlhist html", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		store = storeFlag(fs)
		out   = fs.String("out", "dashboard.html", "output HTML file")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	s, err := hist.Open(*store)
	if err != nil {
		return 0, err
	}
	rep := hist.Gate(s, hist.GateConfig{})
	if err := os.WriteFile(*out, []byte(hist.Dashboard(s, rep)), 0o644); err != nil {
		return 0, err
	}
	fmt.Fprintf(stdout, "wrote %s (%d entries, %d series)\n", *out, s.Len(), len(s.SeriesAll()))
	return 0, nil
}

func runList(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlhist list", flag.ContinueOnError)
	fs.SetOutput(stdout)
	store := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	s, err := hist.Open(*store)
	if err != nil {
		return 0, err
	}
	warnTorn(stdout, s)
	for _, e := range s.Entries() {
		when := "-"
		if e.RecordedUnix > 0 {
			when = time.Unix(e.RecordedUnix, 0).UTC().Format("2006-01-02 15:04")
		}
		label := e.Label
		if label == "" {
			label = "-"
		}
		fmt.Fprintf(stdout, "%3d  %.12s  %-16s  %-12s  %-10s  %3d metrics  %s  host=%s\n",
			e.Seq, e.ID, when, e.Source.Format, label, len(e.Metrics), e.Source.Name, e.Key.Host)
	}
	fmt.Fprintf(stdout, "%d entries\n", s.Len())
	return 0, nil
}

// warnTorn surfaces a torn final line (a crash mid-append) once per
// command; the store already ignored it.
func warnTorn(stdout io.Writer, s *hist.Store) {
	if s.TornTail > 0 {
		fmt.Fprintf(stdout, "note: discarded %d-byte torn tail (crash mid-append)\n", s.TornTail)
	}
}
