package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchDoc is a minimal wlbench/v1 report with a host block so two
// recordings are comparable.
const benchDoc = `{"schema":"wlbench/v1","host":{"go_version":"go1.x","goos":"linux","goarch":"amd64","gomaxprocs":8,"cpu_model":"T","engine":"wlcache-sim/6"},"results":[
  {"design":"wl","workload":"sha","trace":"tr1","host_ns":1000,"ns_per_op":16.7,"sim_instrs_per_sec":6e7,"sim_exec_ps":3937,"instructions":466947,"outages":22,"stalls":0,"writebacks":0,"dirty_peak":0,"avg_dirty_per_ckpt":0,"checksum":3188836267}]}`

func TestRecordGateTrendHTML(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "h.jsonl")
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(benchDoc), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	code, err := run([]string{"record", "-store", store, "-label", "a", "-now", "0", good}, &out)
	if err != nil || code != 0 {
		t.Fatalf("record: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "recorded") {
		t.Fatalf("record output: %s", out.String())
	}

	// -now 0 keeps the line deterministic: recording again dedupes.
	out.Reset()
	if code, err := run([]string{"record", "-store", store, "-label", "a", "-now", "0", good}, &out); err != nil || code != 0 {
		t.Fatalf("re-record: %d %v", code, err)
	}
	if !strings.Contains(out.String(), "already recorded") {
		t.Fatalf("re-record must dedupe: %s", out.String())
	}

	// One entry: nothing to gate against, no drift.
	out.Reset()
	if code, err := run([]string{"gate", "-store", store}, &out); err != nil || code != 0 {
		t.Fatalf("gate on single entry: code=%d err=%v\n%s", code, err, out.String())
	}

	// Inject a 10x ns_per_op regression (same host block): the gate
	// must fail with exit 2.
	var doc map[string]any
	json.Unmarshal([]byte(benchDoc), &doc)
	cell := doc["results"].([]any)[0].(map[string]any)
	cell["ns_per_op"] = cell["ns_per_op"].(float64) * 10
	slowed, _ := json.Marshal(doc)
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, slowed, 0o644)
	out.Reset()
	if code, err := run([]string{"record", "-store", store, "-label", "b", "-now", "0", bad}, &out); err != nil || code != 0 {
		t.Fatalf("record bad: %d %v", code, err)
	}
	out.Reset()
	code, err = run([]string{"gate", "-store", store}, &out)
	if err != nil || code != 2 {
		t.Fatalf("gate must exit 2 on injected regression: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "ns_per_op") {
		t.Fatalf("gate output: %s", out.String())
	}

	// A generous threshold swallows the 10x jump.
	out.Reset()
	if code, _ := run([]string{"gate", "-store", store, "-threshold", "20"}, &out); code != 0 {
		t.Fatalf("gate -threshold 20 must pass:\n%s", out.String())
	}

	out.Reset()
	if code, err := run([]string{"trend", "-store", store, "-filter", "ns_per_op"}, &out); err != nil || code != 0 {
		t.Fatalf("trend: %d %v", code, err)
	}
	if !strings.Contains(out.String(), "ns_per_op") {
		t.Fatalf("trend output: %s", out.String())
	}

	htmlOut := filepath.Join(dir, "dash.html")
	out.Reset()
	if code, err := run([]string{"html", "-store", store, "-out", htmlOut}, &out); err != nil || code != 0 {
		t.Fatalf("html: %d %v", code, err)
	}
	page, err := os.ReadFile(htmlOut)
	if err != nil || !strings.Contains(string(page), "<svg") {
		t.Fatalf("dashboard: %v", err)
	}

	out.Reset()
	if code, err := run([]string{"list", "-store", store}, &out); err != nil || code != 0 {
		t.Fatalf("list: %d %v", code, err)
	}
	if !strings.Contains(out.String(), "2 entries") {
		t.Fatalf("list output: %s", out.String())
	}
}

func TestScrape(t *testing.T) {
	exposition := "# TYPE wlserve_sweeps_total counter\nwlserve_sweeps_total 7\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(exposition))
	}))
	defer srv.Close()

	store := filepath.Join(t.TempDir(), "h.jsonl")
	var out strings.Builder
	code, err := run([]string{"scrape", "-store", store, "-url", srv.URL, "-label", "live"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("scrape: code=%d err=%v\n%s", code, err, out.String())
	}
	out.Reset()
	if code, err := run([]string{"list", "-store", store}, &out); err != nil || code != 0 {
		t.Fatalf("list: %d %v", code, err)
	}
	if !strings.Contains(out.String(), "prometheus") || !strings.Contains(out.String(), "live") {
		t.Fatalf("list output: %s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if _, err := run(nil, &out); err == nil {
		t.Fatal("no args must error")
	}
	if _, err := run([]string{"bogus"}, &out); err == nil {
		t.Fatal("unknown subcommand must error")
	}
	if _, err := run([]string{"record", "-store", filepath.Join(t.TempDir(), "h.jsonl")}, &out); err == nil {
		t.Fatal("record with no files must error")
	}
	if _, err := run([]string{"scrape"}, &out); err == nil {
		t.Fatal("scrape without -url must error")
	}
}

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-version"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-version: %d %v", code, err)
	}
	if !strings.Contains(out.String(), "wlhist") {
		t.Fatalf("version output: %s", out.String())
	}
}
