// Command wlbench regenerates the paper's tables and figures.
//
// Usage:
//
//	wlbench -experiment fig4            # one experiment
//	wlbench -experiment all             # everything, in paper order
//	wlbench -list                       # show available experiments
//	wlbench -experiment fig5 -workloads sha,qsort -scale 2
//	wlbench -experiment fig4 -out dir   # also save the output to dir/fig4.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wlcache/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlbench:", err)
		os.Exit(1)
	}
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wlbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		experiment = fs.String("experiment", "", "experiment id (see -list), or 'all'")
		list       = fs.Bool("list", false, "list available experiments")
		workloads  = fs.String("workloads", "", "comma-separated benchmark subset (default: all 23)")
		scale      = fs.Int("scale", 1, "workload input-size multiplier")
		parallel   = fs.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
		check      = fs.Bool("check", false, "enable expensive correctness invariants")
		outDir     = fs.String("out", "", "also write each experiment's output to <out>/<id>.txt")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list || *experiment == "" {
		fmt.Fprintln(stdout, "Available experiments (wlbench -experiment <id>):")
		for _, e := range expt.Experiments() {
			fmt.Fprintf(stdout, "  %-15s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "  all             run everything in paper order")
		if *experiment == "" && !*list {
			return fmt.Errorf("no experiment selected")
		}
		return nil
	}

	ctx := expt.Context{Scale: *scale, Parallelism: *parallel, CheckInvariants: *check}
	if *workloads != "" {
		ctx.Workloads = strings.Split(*workloads, ",")
	}

	var todo []expt.Experiment
	if *experiment == "all" {
		todo = expt.Experiments()
	} else {
		e, ok := expt.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q; try -list", *experiment)
		}
		todo = []expt.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range todo {
		start := time.Now()
		out, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s failed: %w", e.ID, err)
		}
		fmt.Fprintf(stdout, "==== %s: %s ====\n\n%s\n(elapsed %.1fs)\n\n", e.ID, e.Title, out, time.Since(start).Seconds())
		if *outDir != "" {
			if err := os.WriteFile(filepath.Join(*outDir, e.ID+".txt"), []byte(out), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
