// Command wlbench regenerates the paper's tables and figures.
//
// Usage:
//
//	wlbench -experiment fig4            # one experiment
//	wlbench -experiment all             # everything, in paper order
//	wlbench -list                       # show available experiments
//	wlbench -experiment fig5 -workloads sha,qsort -scale 2
//	wlbench -experiment fig4 -out dir   # also save the output to dir/fig4.txt
//	wlbench -json results.json          # machine-readable benchmark suite
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wlcache/internal/expt"
	"wlcache/internal/power"
	"wlcache/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlbench:", err)
		os.Exit(1)
	}
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wlbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		experiment = fs.String("experiment", "", "experiment id (see -list), or 'all'")
		list       = fs.Bool("list", false, "list available experiments")
		workloads  = fs.String("workloads", "", "comma-separated benchmark subset (default: all 23)")
		scale      = fs.Int("scale", 1, "workload input-size multiplier")
		parallel   = fs.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
		check      = fs.Bool("check", false, "enable expensive correctness invariants")
		outDir     = fs.String("out", "", "also write each experiment's output to <out>/<id>.txt")
		jsonOut    = fs.String("json", "", "run the benchmark suite and write JSON results to this file ('-' = stdout)")
		compare    = fs.String("compare", "", "run the benchmark suite and fail unless every simulated outcome matches this golden JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *jsonOut != "" || *compare != "" {
		wls := benchWorkloads
		if *workloads != "" {
			wls = strings.Split(*workloads, ",")
		}
		return runJSONBench(*jsonOut, *compare, wls, *scale, stdout)
	}

	if *list || *experiment == "" {
		fmt.Fprintln(stdout, "Available experiments (wlbench -experiment <id>):")
		for _, e := range expt.Experiments() {
			fmt.Fprintf(stdout, "  %-15s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "  all             run everything in paper order")
		if *experiment == "" && !*list {
			return fmt.Errorf("no experiment selected")
		}
		return nil
	}

	ctx := expt.Context{Scale: *scale, Parallelism: *parallel, CheckInvariants: *check}
	if *workloads != "" {
		ctx.Workloads = strings.Split(*workloads, ",")
	}

	var todo []expt.Experiment
	if *experiment == "all" {
		todo = expt.Experiments()
	} else {
		e, ok := expt.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q; try -list", *experiment)
		}
		todo = []expt.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range todo {
		start := time.Now()
		out, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s failed: %w", e.ID, err)
		}
		fmt.Fprintf(stdout, "==== %s: %s ====\n\n%s\n(elapsed %.1fs)\n\n", e.ID, e.Title, out, time.Since(start).Seconds())
		if *outDir != "" {
			if err := os.WriteFile(filepath.Join(*outDir, e.ID+".txt"), []byte(out), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// benchSchema identifies the -json output format.
const benchSchema = "wlbench/v1"

// benchWorkloads is the default -json suite: one short benchmark per
// MiBench category the paper leans on.
var benchWorkloads = []string{"adpcmencode", "sha", "qsort", "susanedges"}

// benchResult is one (design, workload) cell of the -json suite:
// host-side throughput plus the simulated outcomes regression tooling
// tracks (dirty-line stats, stalls, write-backs).
type benchResult struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Trace    string `json:"trace"`

	HostNs       int64   `json:"host_ns"`            // wall-clock for the whole run
	NsPerOp      float64 `json:"ns_per_op"`          // host ns per simulated instruction
	InstrsPerSec float64 `json:"sim_instrs_per_sec"` // simulated instructions per host second
	ExecPS       int64   `json:"sim_exec_ps"`

	Instructions uint64  `json:"instructions"`
	Outages      uint64  `json:"outages"`
	Stalls       uint64  `json:"stalls"`
	Writebacks   uint64  `json:"writebacks"`
	DirtyPeak    int     `json:"dirty_peak"`
	AvgDirty     float64 `json:"avg_dirty_per_ckpt"`
	Checksum     uint32  `json:"checksum"`
}

// benchFile is the -json document.
type benchFile struct {
	Schema  string        `json:"schema"`
	Results []benchResult `json:"results"`
}

// runJSONBench runs the machine-readable benchmark suite: the paper's
// figure designs over the given workloads under tr1. With a non-empty
// goldenPath the simulated outcomes are additionally compared against
// the committed golden document (host timings are machine-dependent and
// ignored); any divergence is an error, which is what lets CI catch an
// optimization that changed simulation results.
func runJSONBench(path, goldenPath string, wls []string, scale int, stdout io.Writer) error {
	doc := benchFile{Schema: benchSchema}
	for _, kind := range expt.FigureKinds() {
		for _, wl := range wls {
			start := time.Now()
			res, err := expt.Run(kind, expt.Options{}, strings.TrimSpace(wl), scale, power.Trace1, sim.DefaultConfig())
			if err != nil {
				return fmt.Errorf("bench %s/%s: %w", kind, wl, err)
			}
			host := time.Since(start).Nanoseconds()
			r := benchResult{
				Design:       string(kind),
				Workload:     res.Workload,
				Trace:        res.Trace,
				HostNs:       host,
				ExecPS:       res.ExecTime,
				Instructions: res.Instructions,
				Outages:      res.Outages,
				Stalls:       res.Extra.Stalls,
				Writebacks:   res.Extra.Writebacks,
				DirtyPeak:    res.Extra.DirtyPeak,
				AvgDirty:     res.AvgDirtyAtCheckpoint(),
				Checksum:     res.Checksum,
			}
			if res.Instructions > 0 {
				r.NsPerOp = float64(host) / float64(res.Instructions)
			}
			if host > 0 {
				r.InstrsPerSec = float64(res.Instructions) / (float64(host) / 1e9)
			}
			doc.Results = append(doc.Results, r)
		}
	}
	if path != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if path == "-" {
			if _, err := stdout.Write(buf); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d results to %s\n", len(doc.Results), path)
		}
	}
	if goldenPath != "" {
		if err := compareGolden(doc, goldenPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "golden check passed: %d cells match %s\n", len(doc.Results), goldenPath)
	}
	return nil
}

// compareGolden checks every simulated (machine-independent) outcome of
// doc against the golden document: checksum, simulated execution time,
// instruction/outage/stall/write-back counts and dirty-line stats. Host
// timings differ per machine and are not compared.
func compareGolden(doc benchFile, goldenPath string) error {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		return err
	}
	var golden benchFile
	if err := json.Unmarshal(raw, &golden); err != nil {
		return fmt.Errorf("golden %s: %w", goldenPath, err)
	}
	if golden.Schema != benchSchema {
		return fmt.Errorf("golden %s: schema %q, want %q", goldenPath, golden.Schema, benchSchema)
	}
	want := make(map[string]benchResult, len(golden.Results))
	for _, g := range golden.Results {
		want[g.Design+"/"+g.Workload+"/"+g.Trace] = g
	}
	var mismatches []string
	for _, r := range doc.Results {
		key := r.Design + "/" + r.Workload + "/" + r.Trace
		g, ok := want[key]
		if !ok {
			continue // cell not pinned by the golden (e.g. subset golden)
		}
		delete(want, key)
		check := func(field string, got, exp any) {
			if got != exp {
				mismatches = append(mismatches, fmt.Sprintf("%s: %s = %v, golden %v", key, field, got, exp))
			}
		}
		check("checksum", r.Checksum, g.Checksum)
		check("sim_exec_ps", r.ExecPS, g.ExecPS)
		check("instructions", r.Instructions, g.Instructions)
		check("outages", r.Outages, g.Outages)
		check("stalls", r.Stalls, g.Stalls)
		check("writebacks", r.Writebacks, g.Writebacks)
		check("dirty_peak", r.DirtyPeak, g.DirtyPeak)
		check("avg_dirty_per_ckpt", r.AvgDirty, g.AvgDirty)
	}
	for key := range want {
		mismatches = append(mismatches, fmt.Sprintf("%s: present in golden but not produced by this run", key))
	}
	if len(mismatches) > 0 {
		return fmt.Errorf("simulation outcomes diverged from %s:\n  %s",
			goldenPath, strings.Join(mismatches, "\n  "))
	}
	return nil
}
