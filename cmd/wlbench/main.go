// Command wlbench regenerates the paper's tables and figures.
//
// Usage:
//
//	wlbench -experiment fig4            # one experiment
//	wlbench -experiment all             # everything, in paper order
//	wlbench -list                       # show available experiments
//	wlbench -experiment fig5 -workloads sha,qsort -scale 2
//	wlbench -experiment fig4 -out dir   # also save the output to dir/fig4.txt
//	wlbench -json results.json          # machine-readable benchmark suite
//	wlbench -sweep -journal j.jsonl     # resumable golden sweep matrix
//	wlbench -chaos -seed 7              # kill a sweep mid-journal, resume, verify
//	wlbench -chaos -serve -golden g.json  # same gate against the wlserve HTTP service
//
// Exit codes (scripts and CI branch on these, mirroring wlfault):
//
//	0  requested run completed, every check passed
//	1  usage or infrastructure error (bad flags, unknown experiment, I/O)
//	2  a -compare / -golden check completed and found divergent results
//	3  the -chaos gate failed (lost journal work, recomputation, or a
//	   stitched matrix that diverged from the committed golden)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"wlcache/internal/expt"
	"wlcache/internal/hostinfo"
	"wlcache/internal/power"
	"wlcache/internal/serve"
	"wlcache/internal/sim"
)

// chaosChildEnv carries the re-exec'd chaos child's argv, joined by
// chaosChildSep. Routing the child through an env var instead of real
// argv lets the same interception work both in the installed binary
// (main) and under `go test` (TestMain), where os.Executable() is the
// test binary and flag parsing belongs to the test framework.
const (
	chaosChildEnv = "WLBENCH_CHAOS_CHILD"
	chaosChildSep = "\x1f"
)

func main() {
	args := os.Args[1:]
	if child, ok := os.LookupEnv(chaosChildEnv); ok {
		os.Unsetenv(chaosChildEnv)
		args = strings.Split(child, chaosChildSep)
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlbench:", err)
		os.Exit(exitCodeFor(err))
	}
}

// Sentinel errors classifying a failed run for exitCodeFor. They wrap
// the detailed error, so errors.Is sees them anywhere in the chain.
var (
	// errMismatch marks a completed comparison that found divergent
	// results (-compare or a -sweep/-json golden check).
	errMismatch = errors.New("results diverged from golden")
	// errChaos marks a failed crash-resume gate: durable work was lost,
	// journaled cells recomputed, or the stitched matrix drifted.
	errChaos = errors.New("chaos gate failed")
)

// exitCodeFor maps a run-aborting error to its documented exit code.
// A chaos failure stays exit 3 even when the underlying symptom is a
// golden mismatch: the gate, not the comparison, is what failed.
func exitCodeFor(err error) int {
	switch {
	case errors.Is(err, errChaos):
		return 3
	case errors.Is(err, errMismatch):
		return 2
	default:
		return 1
	}
}

// chaosFail builds a chaos-gate failure: exit code 3.
func chaosFail(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errChaos, fmt.Sprintf(format, args...))
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wlbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		experiment = fs.String("experiment", "", "experiment id (see -list), or 'all'")
		list       = fs.Bool("list", false, "list available experiments")
		workloads  = fs.String("workloads", "", "comma-separated benchmark subset (default: all 23)")
		scale      = fs.Int("scale", 1, "workload input-size multiplier")
		parallel   = fs.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
		check      = fs.Bool("check", false, "enable expensive correctness invariants")
		outDir     = fs.String("out", "", "also write each experiment's output to <out>/<id>.txt")
		jsonOut    = fs.String("json", "", "run the benchmark suite and write JSON results to this file ('-' = stdout)")
		compare    = fs.String("compare", "", "run the benchmark suite and fail unless every simulated outcome matches this golden JSON")
		sweep      = fs.Bool("sweep", false, "run the pinned golden sweep matrix (resumable with -journal)")
		chaos      = fs.Bool("chaos", false, "kill a -sweep at a random journal append, resume it, and verify bit-identical stitching")
		journal    = fs.String("journal", "", "with -sweep: content-addressed cell journal; journaled cells are served, not recomputed, on restart")
		traces     = fs.String("traces", "", "with -sweep/-chaos: comma-separated power-trace subset (default: none,tr1,tr3)")
		golden     = fs.String("golden", "", "with -sweep/-chaos: compare produced cells against this committed golden JSON")
		killAfter  = fs.Int("kill-after", 0, "with -sweep: SIGKILL this process after N journal appends (chaos harness internal)")
		seed       = fs.Int64("seed", 0, "with -chaos: RNG seed for the kill point (0 = time-derived)")
		serveMode  = fs.Bool("serve", false, "with -chaos: run the gate against the wlserve HTTP service (two overlapping concurrent sweeps, SIGKILL, restart, resubmit)")
		serveBin   = fs.String("serve-bin", "", "with -chaos -serve: path to a wlserve binary to crash (default: re-exec this binary as the server)")
		serveChild = fs.Bool("serve-child", false, "internal: act as the wlserve server (chaos harness child)")
		addr       = fs.String("addr", "127.0.0.1:0", "with -serve-child: listen address")
		dataDir    = fs.String("data", "", "with -chaos -serve: sweep-journal data directory (default: a temp dir)")
		tierFlag   = fs.String("tier", "exact", "engine fidelity: exact (bit-exact) or fast (ε-bounded batched engine, DESIGN.md §16)")
		version    = fs.Bool("version", false, "print engine version and build info, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tier, err := sim.ParseTier(*tierFlag)
	if err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, hostinfo.Version("wlbench"))
		return nil
	}

	if *serveChild {
		return runServeChild(*addr, *dataDir, *killAfter, stdout)
	}

	if *sweep || *chaos {
		var wls []string
		if *workloads != "" {
			wls = strings.Split(*workloads, ",")
		}
		srcs, err := parseTraces(*traces)
		if err != nil {
			return err
		}
		if *chaos {
			// The chaos gates prove bit-identical crash stitching; a
			// tolerance-bounded tier has no bit-identity to prove.
			if tier != sim.TierExact {
				return fmt.Errorf("-chaos requires the exact tier")
			}
			if *serveMode {
				return runChaosServe(*seed, *dataDir, *golden, wls, srcs, *serveBin, stdout)
			}
			return runChaos(*seed, *journal, *golden, wls, srcs, *parallel, stdout)
		}
		return runSweep(tier, *journal, *golden, wls, srcs, *parallel, *killAfter, stdout)
	}

	if *jsonOut != "" || *compare != "" {
		wls := benchWorkloads
		if *workloads != "" {
			wls = strings.Split(*workloads, ",")
		}
		return runJSONBench(tier, *jsonOut, *compare, wls, *scale, stdout)
	}

	if *list || *experiment == "" {
		fmt.Fprintln(stdout, "Available experiments (wlbench -experiment <id>):")
		for _, e := range expt.Experiments() {
			fmt.Fprintf(stdout, "  %-15s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "  all             run everything in paper order")
		if *experiment == "" && !*list {
			return fmt.Errorf("no experiment selected")
		}
		return nil
	}

	ctx := expt.Context{Scale: *scale, Parallelism: *parallel, CheckInvariants: *check, Tier: tier}
	if *workloads != "" {
		ctx.Workloads = strings.Split(*workloads, ",")
	}

	var todo []expt.Experiment
	if *experiment == "all" {
		todo = expt.Experiments()
	} else {
		e, ok := expt.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q; try -list", *experiment)
		}
		todo = []expt.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range todo {
		start := time.Now()
		out, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s failed: %w", e.ID, err)
		}
		fmt.Fprintf(stdout, "==== %s: %s ====\n\n%s\n(elapsed %.1fs)\n\n", e.ID, e.Title, out, time.Since(start).Seconds())
		if *outDir != "" {
			if err := os.WriteFile(filepath.Join(*outDir, e.ID+".txt"), []byte(out), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseTraces maps a comma-separated -traces value to power sources,
// rejecting unknown names (power.Get panics on them much later, deep
// inside a worker).
func parseTraces(s string) ([]power.Source, error) {
	if s == "" {
		return nil, nil
	}
	valid := map[power.Source]bool{power.None: true}
	for _, src := range power.Sources() {
		valid[src] = true
	}
	var out []power.Source
	for _, name := range strings.Split(s, ",") {
		src := power.Source(strings.TrimSpace(name))
		if !valid[src] {
			return nil, fmt.Errorf("unknown power trace %q", name)
		}
		out = append(out, src)
	}
	return out, nil
}

// runSweep executes the pinned golden matrix through the
// crash-resumable runner. With -journal, completed cells are durably
// recorded as they finish and a restarted sweep serves them from the
// journal instead of recomputing. With -kill-after N the process
// SIGKILLs itself after the N-th journal append — from inside the
// append lock, so exactly N records are durable — which is how the
// chaos harness produces a crash with a precisely known footprint.
func runSweep(tier sim.Tier, journal, goldenPath string, wls []string, srcs []power.Source, parallel, killAfter int, stdout io.Writer) error {
	ctx := expt.Context{Parallelism: parallel, Journal: journal, Tier: tier}
	if killAfter > 0 {
		ctx.AfterJournal = func(done int) {
			if done == killAfter {
				// Die the way a power failure would: no deferred
				// cleanup, no flushes. Blocking forever afterwards keeps
				// the append lock held so no further record can become
				// durable between the kill request and process death.
				p, _ := os.FindProcess(os.Getpid())
				p.Kill()
				select {}
			}
		}
	}
	cells, m, err := expt.RunGoldenMatrix(ctx, wls, srcs)
	if err != nil {
		return err
	}
	infeasible := 0
	for _, c := range cells {
		if c.Err != "" {
			infeasible++
		}
	}
	fmt.Fprintf(stdout, "sweep: %d cells (%d infeasible), %d served from journal, %d computed\n",
		len(cells), infeasible, m.FromJournal, m.Computed)
	if goldenPath != "" {
		if err := checkSweepGolden(tier, cells, goldenPath, len(wls) > 0 || len(srcs) > 0); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "golden check passed: %d cells match %s\n", len(cells), goldenPath)
	}
	return nil
}

// checkSweepGolden compares sweep cells against a committed golden
// matrix; subset permits a restricted sweep to cover fewer cells. The
// golden is always generated by the exact tier: exact sweeps must match
// it bit-identically, fast sweeps within the committed FastTolerance
// (counts still exact).
func checkSweepGolden(tier sim.Tier, cells []expt.GoldenCell, goldenPath string, subset bool) error {
	committed, err := expt.LoadGoldenFile(goldenPath)
	if err != nil {
		return err
	}
	if tier == sim.TierFast {
		if err := expt.CompareGoldenCellsTol(cells, committed, subset, expt.FastTolerance()); err != nil {
			return fmt.Errorf("%w: %w", errMismatch, err)
		}
		return nil
	}
	if err := expt.CompareGoldenCells(cells, committed, subset); err != nil {
		return fmt.Errorf("%w: %w", errMismatch, err)
	}
	return nil
}

// runChaos is the crash-resume proof: re-exec this binary as a child
// sweep that SIGKILLs itself after a seed-chosen number of journal
// appends, then resume the sweep in-process and demand (a) every
// journaled cell is served without recomputation — exactly killAt, the
// child died holding the append lock — and (b) the stitched matrix is
// bit-identical to the committed golden.
func runChaos(seed int64, journal, goldenPath string, wls []string, srcs []power.Source, parallel int, stdout io.Writer) error {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))

	if journal == "" {
		dir, err := os.MkdirTemp("", "wlbench-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		journal = filepath.Join(dir, "journal.jsonl")
	}

	nw, nt := len(wls), len(srcs)
	if nw == 0 {
		nw = len(expt.GoldenWorkloads())
	}
	if nt == 0 {
		nt = len(expt.GoldenSources())
	}
	total := len(expt.AllKinds()) * nw * nt
	// Kill within the first half of the matrix: infeasible cells never
	// journal, so a later kill point could outlive the sweep.
	killAt := 1 + rng.Intn(max(1, total/2))
	fmt.Fprintf(stdout, "chaos: seed %d, killing child sweep after %d of %d journal appends\n", seed, killAt, total)

	childArgs := []string{"-sweep", "-journal", journal, "-kill-after", strconv.Itoa(killAt)}
	if len(wls) > 0 {
		childArgs = append(childArgs, "-workloads", strings.Join(wls, ","))
	}
	if len(srcs) > 0 {
		names := make([]string, len(srcs))
		for i, s := range srcs {
			names[i] = string(s)
		}
		childArgs = append(childArgs, "-traces", strings.Join(names, ","))
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), chaosChildEnv+"="+strings.Join(childArgs, chaosChildSep))
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Run(); err == nil {
		return chaosFail("child sweep finished without dying (kill-after %d)", killAt)
	}
	fmt.Fprintf(stdout, "chaos: child killed mid-sweep; resuming from %s\n", journal)

	cells, m, err := expt.RunGoldenMatrix(expt.Context{Parallelism: parallel, Journal: journal}, wls, srcs)
	if err != nil {
		return chaosFail("resume failed: %v", err)
	}
	if m.FromJournal != killAt {
		return chaosFail("resume served %d cells from the journal, want exactly %d — journaled work was lost or recomputed", m.FromJournal, killAt)
	}
	// Infeasible cells never journal (there is no result to record);
	// they re-fail deterministically on every pass and are accounted
	// separately from computed successes.
	if m.FromJournal+m.Computed+m.OptionalFailed != total {
		return chaosFail("%d journaled + %d computed + %d infeasible does not cover the %d-cell matrix",
			m.FromJournal, m.Computed, m.OptionalFailed, total)
	}
	if goldenPath != "" {
		if err := checkSweepGolden(sim.TierExact, cells, goldenPath, len(wls) > 0 || len(srcs) > 0); err != nil {
			return chaosFail("stitched results diverged: %v", err)
		}
	}
	fmt.Fprintf(stdout, "chaos: PASS — %d cells stitched (%d journaled + %d computed + %d infeasible), zero recomputation\n",
		total, m.FromJournal, m.Computed, m.OptionalFailed)
	return nil
}

// runServeChild is the chaos harness's server half: an in-process
// wlserve instance with the same kill seam as the real binary. The
// harness re-execs wlbench into this mode when no -serve-bin is given,
// so the gate runs hermetically under `go test` too.
func runServeChild(addr, dataDir string, killAfter int, stdout io.Writer) error {
	if dataDir == "" {
		return fmt.Errorf("-serve-child needs -data")
	}
	cfg := serve.Config{DataDir: dataDir}
	if killAfter > 0 {
		n := killAfter
		cfg.AfterJournal = func(total int) {
			if total == n {
				// Die like a power failure: no cleanup, no flushes, and
				// block afterwards so this sweep's journal lock stays
				// held until the process is gone.
				p, _ := os.FindProcess(os.Getpid())
				p.Kill()
				select {}
			}
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	return srv.Serve(ln)
}

// startServeProc launches a wlserve server process — the given binary,
// or this binary re-exec'd into -serve-child — and returns once it
// prints its listen address.
func startServeProc(serveBin, dataDir string, killAfter int) (*exec.Cmd, string, error) {
	args := []string{"-addr", "127.0.0.1:0", "-data", dataDir}
	if killAfter > 0 {
		args = append(args, "-kill-after", strconv.Itoa(killAfter))
	}
	var cmd *exec.Cmd
	if serveBin != "" {
		cmd = exec.Command(serveBin, args...)
	} else {
		exe, err := os.Executable()
		if err != nil {
			return nil, "", err
		}
		cmd = exec.Command(exe)
		childArgs := append([]string{"-serve-child"}, args...)
		cmd.Env = append(os.Environ(), chaosChildEnv+"="+strings.Join(childArgs, chaosChildSep))
	}
	cmd.Stderr = io.Discard
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(pipe)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if a, ok := strings.CutPrefix(line, "listening on "); ok {
			// Keep draining stdout so the server never blocks on a full
			// pipe.
			go io.Copy(io.Discard, pipe)
			return cmd, "http://" + a, nil
		}
	}
	err = cmd.Wait()
	return nil, "", fmt.Errorf("server exited before listening: %v", err)
}

// sweepOutcome is one client's view of a completed (or crashed) sweep.
type sweepOutcome struct {
	cells []serve.Event
	done  *serve.Event
	err   error
}

// streamSweep submits a spec and drains its whole event stream.
func streamSweep(ctx context.Context, cl *serve.Client, spec serve.Spec) sweepOutcome {
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		return sweepOutcome{err: err}
	}
	defer st.Close()
	cells, done, err := st.Drain()
	return sweepOutcome{cells: cells, done: done, err: err}
}

// runChaosServe is the end-to-end service chaos gate: two overlapping
// sweeps are submitted to a live wlserve concurrently, the server is
// SIGKILL'd at a seed-chosen journal append, restarted, and both sweeps
// resubmitted. The gate fails (exit 3) unless
//
//   - zero journaled cells recompute: run 2 computes exactly the
//     feasible cells no durable journal record covers,
//   - the stitched full sweep is bit-identical to the committed golden,
//   - duplicate cells are computed exactly once, with the dedup
//     observable in the metrics (every feasible overlap cell is served
//     to exactly one sweep from the shared store).
func runChaosServe(seed int64, dataDir, goldenPath string, wls []string, srcs []power.Source, serveBin string, stdout io.Writer) error {
	if goldenPath == "" {
		return fmt.Errorf("-chaos -serve needs -golden: the gate verifies the stitched matrix against the committed golden")
	}
	committed, err := expt.LoadGoldenFile(goldenPath)
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	if dataDir == "" {
		dir, err := os.MkdirTemp("", "wlbench-serve-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		dataDir = dir
	}

	// Sweep A is the full golden matrix (restricted by -workloads /
	// -traces); sweep B overlaps it on the paper's figure designs.
	trNames := make([]string, len(srcs))
	for i, s := range srcs {
		trNames[i] = string(s)
	}
	specA := serve.Spec{Workloads: wls, Traces: trNames}
	var figs []string
	for _, k := range expt.FigureKinds() {
		figs = append(figs, string(k))
	}
	specB := serve.Spec{Designs: figs, Workloads: wls, Traces: trNames}
	subset := len(wls) > 0 || len(srcs) > 0

	// The committed golden, restricted to the sweep population, predicts
	// exactly which cells are feasible (journalable) and which fail.
	feasibleA, infeasibleA, err := countGolden(committed, nil, wls, trNames)
	if err != nil {
		return err
	}
	feasibleB, infeasibleB, err := countGolden(committed, figs, wls, trNames)
	if err != nil {
		return err
	}
	if feasibleA < 2 {
		return fmt.Errorf("sweep population has %d feasible cells; the gate needs at least 2", feasibleA)
	}
	killAt := 1 + rng.Intn(feasibleA/2)
	fmt.Fprintf(stdout, "chaos-serve: seed %d, killing server after %d of %d feasible cells journal\n", seed, killAt, feasibleA)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Run 1: both sweeps live when the server dies mid-journal.
	cmd1, base1, err := startServeProc(serveBin, dataDir, killAt)
	if err != nil {
		return err
	}
	defer cmd1.Process.Kill()
	cl1 := &serve.Client{Base: base1}
	if err := cl1.WaitReady(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); streamSweep(ctx, cl1, specA) }()
	go func() { defer wg.Done(); streamSweep(ctx, cl1, specB) }()
	wg.Wait()
	if err := cmd1.Wait(); err == nil {
		return chaosFail("server finished both sweeps without dying (kill-after %d)", killAt)
	}
	fmt.Fprintf(stdout, "chaos-serve: server killed mid-sweep; restarting on %s\n", dataDir)

	// Run 2: restart on the same data dir, resubmit both sweeps.
	cmd2, base2, err := startServeProc(serveBin, dataDir, 0)
	if err != nil {
		return err
	}
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	cl2 := &serve.Client{Base: base2}
	if err := cl2.WaitReady(ctx); err != nil {
		return err
	}
	snap, err := cl2.Metrics(ctx)
	if err != nil {
		return err
	}
	// The crashed server durably appended killAt records under the dying
	// sweep's journal lock; the other concurrent sweep can have landed
	// at most one more append between that count and process death.
	loaded := int(snap.StoreLoaded)
	if loaded < killAt || loaded > killAt+1 {
		return chaosFail("restart reloaded %d durable cells, the crash guaranteed %d (+1 for the concurrent sweep) — durable work was lost", loaded, killAt)
	}

	outA := make(chan sweepOutcome, 1)
	outB := make(chan sweepOutcome, 1)
	go func() { outA <- streamSweep(ctx, cl2, specA) }()
	go func() { outB <- streamSweep(ctx, cl2, specB) }()
	a, b := <-outA, <-outB
	if a.err != nil || a.done == nil {
		return chaosFail("resumed sweep A died: done=%v err=%v", a.done, a.err)
	}
	if b.err != nil || b.done == nil {
		return chaosFail("resumed sweep B died: done=%v err=%v", b.done, b.err)
	}
	dA, dB := a.done.Metrics, b.done.Metrics

	// Per-sweep coverage: served + computed feasible cells plus
	// deterministic failures account for every cell, nothing skipped.
	if dA.FromJournal+dA.FromShared+dA.Computed != feasibleA || dA.Failed != infeasibleA || dA.Skipped != 0 {
		return chaosFail("sweep A accounting off: %d journal + %d shared + %d computed + %d failed + %d skipped over %d feasible / %d infeasible",
			dA.FromJournal, dA.FromShared, dA.Computed, dA.Failed, dA.Skipped, feasibleA, infeasibleA)
	}
	if dB.FromJournal+dB.FromShared+dB.Computed != feasibleB || dB.Failed != infeasibleB || dB.Skipped != 0 {
		return chaosFail("sweep B accounting off: %d journal + %d shared + %d computed + %d failed + %d skipped over %d feasible / %d infeasible",
			dB.FromJournal, dB.FromShared, dB.Computed, dB.Failed, dB.Skipped, feasibleB, infeasibleB)
	}
	// Zero recompute and exactly-once dedup: across both sweeps, run 2
	// computes each feasible cell no journal held exactly once.
	if got, want := dA.Computed+dB.Computed, feasibleA-loaded; got != want {
		return chaosFail("run 2 computed %d cells, want exactly %d (%d feasible − %d durable) — journaled cells recomputed or work was double-counted", got, want, feasibleA, loaded)
	}
	// Dedup observable: every feasible cell of the overlapping sweep is
	// served to exactly one of the two sweeps from the shared store
	// (whichever did not journal or compute it itself).
	if got := dA.FromShared + dB.FromShared; got != feasibleB {
		return chaosFail("shared-store dedup served %d cells, want exactly %d (the feasible overlap)", got, feasibleB)
	}

	// Bit-identity: the full sweep's streamed cells must stitch to the
	// committed golden.
	gotA := make([]expt.GoldenCell, 0, len(a.cells))
	for _, ev := range a.cells {
		gc := expt.GoldenCell{Kind: ev.Kind, Workload: ev.Workload, Trace: ev.Trace, Err: ev.Error}
		if ev.Error == "" && ev.Result != nil {
			gc.Fields = expt.FlattenResult(*ev.Result)
		}
		gotA = append(gotA, gc)
	}
	if err := expt.CompareGoldenCells(gotA, committed, subset); err != nil {
		return chaosFail("stitched results diverged: %v", err)
	}

	fmt.Fprintf(stdout, "chaos-serve: PASS — %d durable cells reloaded, %d computed once across both sweeps, %d deduped via shared store, stitched matrix bit-identical\n",
		loaded, dA.Computed+dB.Computed, dA.FromShared+dB.FromShared)
	return nil
}

// countGolden counts feasible (Err == "") and infeasible committed
// cells inside the population selected by the given design / workload /
// trace restrictions (nil = unrestricted), erroring if the golden does
// not pin the whole population.
func countGolden(committed []expt.GoldenCell, designs, wls, trs []string) (feasible, infeasible int, err error) {
	byID := make(map[string]expt.GoldenCell, len(committed))
	for _, c := range committed {
		byID[c.ID()] = c
	}
	ks := designs
	if len(ks) == 0 {
		for _, k := range expt.AllKinds() {
			ks = append(ks, string(k))
		}
	}
	if len(wls) == 0 {
		wls = expt.GoldenWorkloads()
	}
	if len(trs) == 0 {
		for _, s := range expt.GoldenSources() {
			trs = append(trs, string(s))
		}
	}
	for _, k := range ks {
		for _, wl := range wls {
			for _, tr := range trs {
				c, ok := byID[k+"/"+wl+"/"+tr]
				if !ok {
					return 0, 0, fmt.Errorf("golden does not pin cell %s/%s/%s; the chaos gate needs the full population pinned", k, wl, tr)
				}
				if c.Err == "" {
					feasible++
				} else {
					infeasible++
				}
			}
		}
	}
	return feasible, infeasible, nil
}

// benchSchema identifies the -json output format.
const benchSchema = "wlbench/v1"

// benchWorkloads is the default -json suite: one short benchmark per
// MiBench category the paper leans on.
var benchWorkloads = []string{"adpcmencode", "sha", "qsort", "susanedges"}

// benchResult is one (design, workload) cell of the -json suite:
// host-side throughput plus the simulated outcomes regression tooling
// tracks (dirty-line stats, stalls, write-backs).
type benchResult struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Trace    string `json:"trace"`

	HostNs       int64   `json:"host_ns"`            // wall-clock for the whole run
	NsPerOp      float64 `json:"ns_per_op"`          // host ns per simulated instruction
	InstrsPerSec float64 `json:"sim_instrs_per_sec"` // simulated instructions per host second
	ExecPS       int64   `json:"sim_exec_ps"`

	Instructions uint64  `json:"instructions"`
	Outages      uint64  `json:"outages"`
	Stalls       uint64  `json:"stalls"`
	Writebacks   uint64  `json:"writebacks"`
	DirtyPeak    int     `json:"dirty_peak"`
	AvgDirty     float64 `json:"avg_dirty_per_ckpt"`
	Checksum     uint32  `json:"checksum"`
}

// benchFile is the -json document. Host self-describes the machine and
// binary that produced the numbers so run-history entries are
// comparable-or-explicitly-not; old documents without it still ingest
// (as host "unknown"). Tier records the engine fidelity that produced
// the numbers (empty = exact, the pre-tier format): fast-tier documents
// form their own comparability series and are never gated against
// exact baselines.
type benchFile struct {
	Schema  string         `json:"schema"`
	Host    *hostinfo.Info `json:"host,omitempty"`
	Tier    string         `json:"tier,omitempty"`
	Results []benchResult  `json:"results"`
}

// runJSONBench runs the machine-readable benchmark suite: the paper's
// figure designs over the given workloads under tr1. With a non-empty
// goldenPath the simulated outcomes are additionally compared against
// the committed golden document (host timings are machine-dependent and
// ignored); any divergence is an error, which is what lets CI catch an
// optimization that changed simulation results.
func runJSONBench(tier sim.Tier, path, goldenPath string, wls []string, scale int, stdout io.Writer) error {
	host := hostinfo.Collect()
	doc := benchFile{Schema: benchSchema, Host: &host}
	if tier != sim.TierExact {
		doc.Tier = tier.String()
	}
	cfg := sim.DefaultConfig()
	cfg.Tier = tier
	for _, kind := range expt.FigureKinds() {
		for _, wl := range wls {
			start := time.Now()
			res, err := expt.Run(kind, expt.Options{}, strings.TrimSpace(wl), scale, power.Trace1, cfg)
			if err != nil {
				return fmt.Errorf("bench %s/%s: %w", kind, wl, err)
			}
			host := time.Since(start).Nanoseconds()
			r := benchResult{
				Design:       string(kind),
				Workload:     res.Workload,
				Trace:        res.Trace,
				HostNs:       host,
				ExecPS:       res.ExecTime,
				Instructions: res.Instructions,
				Outages:      res.Outages,
				Stalls:       res.Extra.Stalls,
				Writebacks:   res.Extra.Writebacks,
				DirtyPeak:    res.Extra.DirtyPeak,
				AvgDirty:     res.AvgDirtyAtCheckpoint(),
				Checksum:     res.Checksum,
			}
			if res.Instructions > 0 {
				r.NsPerOp = float64(host) / float64(res.Instructions)
			}
			if host > 0 {
				r.InstrsPerSec = float64(res.Instructions) / (float64(host) / 1e9)
			}
			doc.Results = append(doc.Results, r)
		}
	}
	if path != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if path == "-" {
			if _, err := stdout.Write(buf); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d results to %s\n", len(doc.Results), path)
		}
	}
	if goldenPath != "" {
		if err := compareGolden(doc, goldenPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "golden check passed: %d cells match %s\n", len(doc.Results), goldenPath)
	}
	return nil
}

// compareGolden checks every simulated (machine-independent) outcome of
// doc against the golden document: checksum, simulated execution time,
// instruction/outage/stall/write-back counts and dirty-line stats. Host
// timings differ per machine and are not compared. When either side was
// produced by the fast tier, sim_exec_ps is compared within the
// committed time tolerance (counts stay exact — the fast tier's
// contract).
func compareGolden(doc benchFile, goldenPath string) error {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		return err
	}
	var golden benchFile
	if err := json.Unmarshal(raw, &golden); err != nil {
		return fmt.Errorf("golden %s: %w", goldenPath, err)
	}
	if golden.Schema != benchSchema {
		return fmt.Errorf("golden %s: schema %q, want %q", goldenPath, golden.Schema, benchSchema)
	}
	want := make(map[string]benchResult, len(golden.Results))
	for _, g := range golden.Results {
		want[g.Design+"/"+g.Workload+"/"+g.Trace] = g
	}
	var mismatches []string
	for _, r := range doc.Results {
		key := r.Design + "/" + r.Workload + "/" + r.Trace
		g, ok := want[key]
		if !ok {
			// An unpinned cell is as much drift as a changed one: a
			// suite that silently grows past its golden would let new
			// cells regress unchecked.
			mismatches = append(mismatches, fmt.Sprintf("%s: produced by this run but not pinned by the golden (extra cell)", key))
			continue
		}
		delete(want, key)
		check := func(field string, got, exp any) {
			if got != exp {
				mismatches = append(mismatches, fmt.Sprintf("%s: %s = %v, golden %v", key, field, got, exp))
			}
		}
		check("checksum", r.Checksum, g.Checksum)
		if doc.Tier == "fast" || golden.Tier == "fast" {
			tol := expt.FastTolerance()
			if !tol.WithinTime(float64(r.ExecPS), float64(g.ExecPS)) {
				mismatches = append(mismatches, fmt.Sprintf("%s: sim_exec_ps = %v, golden %v (outside fast-tier time tolerance)", key, r.ExecPS, g.ExecPS))
			}
		} else {
			check("sim_exec_ps", r.ExecPS, g.ExecPS)
		}
		check("instructions", r.Instructions, g.Instructions)
		check("outages", r.Outages, g.Outages)
		check("stalls", r.Stalls, g.Stalls)
		check("writebacks", r.Writebacks, g.Writebacks)
		check("dirty_peak", r.DirtyPeak, g.DirtyPeak)
		check("avg_dirty_per_ckpt", r.AvgDirty, g.AvgDirty)
	}
	for key := range want {
		mismatches = append(mismatches, fmt.Sprintf("%s: present in golden but not produced by this run", key))
	}
	if len(mismatches) > 0 {
		return fmt.Errorf("%w: simulation outcomes diverged from %s:\n  %s",
			errMismatch, goldenPath, strings.Join(mismatches, "\n  "))
	}
	return nil
}
