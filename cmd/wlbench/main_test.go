package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain intercepts the chaos harness's re-exec: when -chaos spawns
// os.Executable() with WLBENCH_CHAOS_CHILD set, under `go test` that
// executable is this test binary. Routing the env var into run() here
// makes the child behave exactly like the installed wlbench would.
func TestMain(m *testing.M) {
	if child, ok := os.LookupEnv(chaosChildEnv); ok {
		os.Unsetenv(chaosChildEnv)
		if err := run(strings.Split(child, chaosChildSep), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wlbench:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestListExperiments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4", "fig13b", "hwcost", "sec33", "all"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, b.String())
		}
	}
}

func TestNoExperimentIsError(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Fatal("empty invocation should fail after printing the list")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "bogus"}, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperimentWithOutDir(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	err := run([]string{"-experiment", "table2", "-out", dir}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table 2") {
		t.Fatalf("missing experiment output:\n%s", b.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Vbackup") {
		t.Fatal("saved file incomplete")
	}
}

func TestRunExperimentOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var b strings.Builder
	err := run([]string{"-experiment", "fig7", "-workloads", "sha,qsort"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sha") || !strings.Contains(b.String(), "gmean") {
		t.Fatalf("fig7 output incomplete:\n%s", b.String())
	}
}

// The -json suite must emit a schema-tagged document with one result
// per (figure design, workload), carrying throughput and dirty-line
// stats.
func TestJSONBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var b strings.Builder
	if err := run([]string{"-json", path, "-workloads", "sha"}, &b); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Results []struct {
			Design    string  `json:"design"`
			Workload  string  `json:"workload"`
			HostNs    int64   `json:"host_ns"`
			NsPerOp   float64 `json:"ns_per_op"`
			ExecPS    int64   `json:"sim_exec_ps"`
			DirtyPeak int     `json:"dirty_peak"`
			Checksum  uint32  `json:"checksum"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench JSON: %v", err)
	}
	if doc.Schema != "wlbench/v1" {
		t.Errorf("schema %q", doc.Schema)
	}
	if len(doc.Results) != 4 {
		t.Fatalf("got %d results, want 4 (figure designs x sha)", len(doc.Results))
	}
	var wl *struct {
		Design    string  `json:"design"`
		Workload  string  `json:"workload"`
		HostNs    int64   `json:"host_ns"`
		NsPerOp   float64 `json:"ns_per_op"`
		ExecPS    int64   `json:"sim_exec_ps"`
		DirtyPeak int     `json:"dirty_peak"`
		Checksum  uint32  `json:"checksum"`
	}
	for i := range doc.Results {
		r := &doc.Results[i]
		if r.HostNs <= 0 || r.NsPerOp <= 0 || r.ExecPS <= 0 {
			t.Errorf("%s/%s: non-positive timings %+v", r.Design, r.Workload, r)
		}
		if r.Design == "wl" {
			wl = r
		}
		if r.Checksum != doc.Results[0].Checksum {
			t.Errorf("checksum mismatch across designs: %+v", r)
		}
	}
	if wl == nil {
		t.Fatal("no wl design in results")
	}
	if wl.DirtyPeak <= 0 {
		t.Errorf("wl dirty_peak = %d, want > 0", wl.DirtyPeak)
	}
}

// The committed golden must match a fresh run (simulation is
// deterministic), and a corrupted golden must be detected with a
// non-nil error naming the diverging field.
func TestCompareGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var b strings.Builder
	if err := run([]string{"-compare", "testdata/bench_golden.json", "-workloads", "adpcmencode,sha"}, &b); err != nil {
		t.Fatalf("compare against committed golden: %v", err)
	}
	if !strings.Contains(b.String(), "golden check passed") {
		t.Fatalf("missing pass message:\n%s", b.String())
	}

	// Corrupt one checksum; the run must now fail and say where.
	raw, err := os.ReadFile("testdata/bench_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc.Results[0].Checksum++
	bad, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-compare", badPath, "-workloads", "adpcmencode"}, &b)
	if err == nil {
		t.Fatal("corrupted golden accepted")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error does not name the diverging field: %v", err)
	}
}

// A golden pinning a cell the run does not produce must fail loudly
// (a silently shrinking suite would hollow out the regression check).
func TestCompareGoldenMissingCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var b strings.Builder
	err := run([]string{"-compare", "testdata/bench_golden.json", "-workloads", "adpcmencode"}, &b)
	if err == nil {
		t.Fatal("golden cells for sha were not produced, yet compare passed")
	}
	if !strings.Contains(err.Error(), "not produced") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// The mirror failure: a run producing cells the golden does not pin
// must fail too — a silently growing suite would let new cells regress
// unchecked.
func TestCompareGoldenExtraCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	// Shrink the committed golden to adpcmencode only; running both
	// workloads then produces sha cells the golden does not pin.
	raw, err := os.ReadFile("testdata/bench_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var kept []benchResult
	for _, r := range doc.Results {
		if r.Workload == "adpcmencode" {
			kept = append(kept, r)
		}
	}
	doc.Results = kept
	shrunk, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shrunk.json")
	if err := os.WriteFile(path, shrunk, 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err = run([]string{"-compare", path, "-workloads", "adpcmencode,sha"}, &b)
	if err == nil {
		t.Fatal("sha cells are not pinned by the golden, yet compare passed")
	}
	if !strings.Contains(err.Error(), "extra cell") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// The full crash-resume proof, in-process: -chaos re-execs this test
// binary as a sweep child that SIGKILLs itself mid-journal (see
// TestMain), resumes, and verifies the stitched subset matrix against
// the committed golden with zero recomputation of journaled cells.
func TestChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a full sweep subset")
	}
	journal := filepath.Join(t.TempDir(), "chaos.jsonl")
	var b strings.Builder
	err := run([]string{
		"-chaos", "-seed", "7",
		"-journal", journal,
		"-workloads", "adpcmencode",
		"-golden", filepath.Join("..", "..", "internal", "expt", "testdata", "golden_results.json"),
	}, &b)
	if err != nil {
		t.Fatalf("chaos run failed: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "child killed mid-sweep") {
		t.Fatalf("child was not killed:\n%s", out)
	}
	if !strings.Contains(out, "zero recomputation") || !strings.Contains(out, "PASS") {
		t.Fatalf("missing pass verdict:\n%s", out)
	}
	// The journal survived the SIGKILL with the child's appends intact.
	if fi, err := os.Stat(journal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal missing or empty after chaos run: %v", err)
	}
}

// A second chaos pass over the same journal must serve everything: the
// resumed sweep journals the cells the child never reached, so a
// subsequent sweep computes nothing.
func TestSweepFullyJournaledComputesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sweep subset")
	}
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	var b1 strings.Builder
	if err := run([]string{"-sweep", "-journal", journal, "-workloads", "adpcmencode", "-traces", "none"}, &b1); err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	if err := run([]string{"-sweep", "-journal", journal, "-workloads", "adpcmencode", "-traces", "none"}, &b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "0 computed") {
		t.Fatalf("second sweep recomputed journaled cells:\n%s", b2.String())
	}
}

// -traces must reject unknown names before any simulation starts.
func TestSweepUnknownTraceRejected(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-sweep", "-traces", "tr99"}, &b)
	if err == nil || !strings.Contains(err.Error(), "unknown power trace") {
		t.Fatalf("unknown trace accepted: %v", err)
	}
	if code := exitCodeFor(err); code != 1 {
		t.Fatalf("usage error exit code = %d, want 1", code)
	}
}

// The documented exit codes: 1 usage/infra, 2 compare mismatch, 3
// chaos failure — and a chaos failure whose symptom is a mismatch
// stays 3, because scripts branch on which *gate* failed.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil is unreachable but safe", errors.New("plain"), 1},
		{"usage", fmt.Errorf("unknown experiment %q", "x"), 1},
		{"mismatch", fmt.Errorf("%w: checksum drifted", errMismatch), 2},
		{"wrapped mismatch", fmt.Errorf("outer: %w", fmt.Errorf("%w: inner", errMismatch)), 2},
		{"chaos", chaosFail("journaled work was lost"), 3},
		{"chaos wrapping a mismatch", fmt.Errorf("%w: %w", errChaos, errMismatch), 3},
	}
	for _, c := range cases {
		if got := exitCodeFor(c.err); got != c.want {
			t.Errorf("%s: exitCodeFor(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

// A failed golden comparison must classify as a mismatch (exit 2), not
// a generic error: CI distinguishes "the run broke" from "the results
// drifted".
func TestCompareMismatchClassified(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	// A golden pinning sha cells that a -workloads adpcmencode run never
	// produces: compare completes and finds divergence.
	var b strings.Builder
	err := run([]string{"-compare", "testdata/bench_golden.json", "-workloads", "adpcmencode"}, &b)
	if err == nil {
		t.Fatal("divergent compare passed")
	}
	if !errors.Is(err, errMismatch) {
		t.Fatalf("compare divergence not classified as mismatch: %v", err)
	}
	if code := exitCodeFor(err); code != 2 {
		t.Fatalf("compare divergence exit code = %d, want 2", code)
	}
}

// The end-to-end service chaos gate: two overlapping sweeps against a
// live wlserve (this test binary re-exec'd via TestMain), SIGKILL at a
// seed-chosen journal append, restart, resubmit; zero journaled cells
// recompute, duplicates compute exactly once, and the stitched matrix
// is bit-identical to the committed golden.
func TestChaosServe(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a server and runs two sweep subsets twice")
	}
	var b strings.Builder
	err := run([]string{
		"-chaos", "-serve", "-seed", "5",
		"-data", t.TempDir(),
		"-workloads", "adpcmencode",
		"-golden", filepath.Join("..", "..", "internal", "expt", "testdata", "golden_results.json"),
	}, &b)
	if err != nil {
		t.Fatalf("serve chaos gate failed: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "server killed mid-sweep") {
		t.Fatalf("server was not killed:\n%s", out)
	}
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "bit-identical") {
		t.Fatalf("missing pass verdict:\n%s", out)
	}
}

// The serve gate requires a committed golden: without one it cannot
// prove bit-identity, so it must refuse to run (usage error, exit 1).
func TestChaosServeNeedsGolden(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-chaos", "-serve"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-golden") {
		t.Fatalf("serve gate ran without a golden: %v", err)
	}
	if code := exitCodeFor(err); code != 1 {
		t.Fatalf("missing-golden exit code = %d, want 1", code)
	}
}
