package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4", "fig13b", "hwcost", "sec33", "all"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, b.String())
		}
	}
}

func TestNoExperimentIsError(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Fatal("empty invocation should fail after printing the list")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "bogus"}, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperimentWithOutDir(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	err := run([]string{"-experiment", "table2", "-out", dir}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table 2") {
		t.Fatalf("missing experiment output:\n%s", b.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Vbackup") {
		t.Fatal("saved file incomplete")
	}
}

func TestRunExperimentOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var b strings.Builder
	err := run([]string{"-experiment", "fig7", "-workloads", "sha,qsort"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sha") || !strings.Contains(b.String(), "gmean") {
		t.Fatalf("fig7 output incomplete:\n%s", b.String())
	}
}
