// Command wlserve runs the crash-tolerant HTTP sweep service: POST a
// sweep spec to /v1/sweeps and per-cell results stream back as NDJSON
// as they land. Every accepted sweep is journaled (wlrun/v1) under
// -data keyed by the spec's content hash, so a SIGKILL'd server
// restarts and serves or resumes every sweep with zero recomputation —
// just resubmit the same spec. Overlapping sweeps from concurrent
// clients dedupe through a shared content-addressed store; overload is
// shed with 429 + Retry-After; /healthz, /readyz and /metricz expose
// liveness, drain state and the dedup/resume counters.
//
// Usage:
//
//	wlserve -addr 127.0.0.1:8080 -data ./wlserve-data
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"workloads":["sha"],"traces":["tr1"]}'
//	kill -9 $(pidof wlserve)   # journals survive; restart and resubmit
//
// SIGINT/SIGTERM drain gracefully: running sweeps finish (or are
// cancelled at -drain, with every completed cell already durable), new
// submissions get 503. A second signal exits immediately.
//
// -kill-after N SIGKILLs the process after the N-th durable journal
// append; it exists for the chaos harness (wlbench -chaos -serve) and
// simulates a power failure with a precisely known journal footprint.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wlcache/internal/hostinfo"
	"wlcache/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sig); err != nil {
		fmt.Fprintln(os.Stderr, "wlserve:", err)
		os.Exit(1)
	}
}

// run executes the CLI; factored out of main for testing. sig triggers
// graceful shutdown (first value) and immediate exit (second).
func run(args []string, stdout io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("wlserve", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		data       = fs.String("data", "", "data directory for sweep journals (required)")
		workers    = fs.Int("workers", 0, "worker pool size per sweep (0 = NumCPU)")
		maxSweeps  = fs.Int("max-sweeps", 0, "max sweeps running concurrently (0 = 2)")
		queue      = fs.Int("queue", 0, "max sweeps queued before load-shedding with 429 (0 = 8)")
		maxCells   = fs.Int("max-cells", 0, "max cells in one sweep spec (0 = 10000)")
		retryAfter = fs.Duration("retry-after", 0, "Retry-After hint on shed load (0 = 5s)")
		reqBudget  = fs.Duration("request-budget", 0, "per-sweep wall-time budget; late cells become deterministic skips (0 = none)")
		cellBudget = fs.Duration("cell-budget", 0, "per-cell deadline budget (0 = none)")
		drain      = fs.Duration("drain", 30*time.Second, "graceful shutdown drain deadline")
		killAfter  = fs.Int("kill-after", 0, "SIGKILL this process after N durable journal appends (chaos harness internal)")
		pprof      = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in)")
		logLevel   = fs.String("log-level", "info", "structured log level: debug, info, warn, error")
		version    = fs.Bool("version", false, "print engine version and build info, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, hostinfo.Version("wlserve"))
		return nil
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %v", *logLevel, err)
	}

	cfg := serve.Config{
		DataDir:       *data,
		Workers:       *workers,
		MaxConcurrent: *maxSweeps,
		MaxQueue:      *queue,
		MaxCells:      *maxCells,
		RetryAfter:    *retryAfter,
		RequestBudget: *reqBudget,
		CellBudget:    *cellBudget,
		EnablePprof:   *pprof,
		Log:           log.New(os.Stderr, "wlserve: ", log.LstdFlags),
		Logger:        slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
	}
	if *killAfter > 0 {
		n := *killAfter
		cfg.AfterJournal = func(total int) {
			if total == n {
				// Die the way a power failure would: no deferred
				// cleanup, no flushes. Blocking afterwards keeps the
				// append lock held so no further record can become
				// durable between the kill request and process death.
				p, _ := os.FindProcess(os.Getpid())
				p.Kill()
				select {}
			}
		}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The harness (and humans) parse this line for the actual port.
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-sig:
	}
	fmt.Fprintf(stdout, "draining (deadline %s)\n", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintf(stdout, "drain deadline hit: in-flight cells journaled, rest skipped\n")
		}
		return nil
	case <-sig:
		return fmt.Errorf("second signal: exiting without drain")
	}
}
