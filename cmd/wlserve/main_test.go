package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wlcache/internal/serve"
)

// lineWriter lets the test read the "listening on" line as run prints it.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func newLineWriter() *lineWriter {
	return &lineWriter{lines: make(chan string, 16)}
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, _ := w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			// Partial line: put it back and wait for the rest.
			w.buf.WriteString(line)
			break
		}
		select {
		case w.lines <- strings.TrimSpace(line):
		default:
		}
	}
	return n, nil
}

// TestRunServesAndDrains boots the CLI on a free port, submits the
// smallest real sweep over HTTP, then SIGTERMs and verifies a clean
// drain: run returns nil and the journal is on disk.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	out := newLineWriter()
	sig := make(chan os.Signal, 2)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-data", dir,
			"-workers", "2",
			"-drain", "30s",
		}, out, sig)
	}()

	var addr string
	select {
	case line := <-out.lines:
		const prefix = "listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("first output line = %q, want %q prefix", line, prefix)
		}
		addr = strings.TrimPrefix(line, prefix)
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for listening line")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl := &serve.Client{Base: "http://" + addr}
	if err := cl.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Submit(ctx, serve.Spec{
		Designs:   []string{"nvsram"},
		Workloads: []string{"adpcmencode"},
		Traces:    []string{"tr1"},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	cells, done, err := st.Drain()
	st.Close()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(cells) != 1 || done == nil {
		t.Fatalf("got %d cells, done=%v; want 1 cell and a done event", len(cells), done)
	}
	if cells[0].Error != "" {
		t.Fatalf("cell failed: %s", cells[0].Error)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}

	matches, _ := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if len(matches) != 1 {
		t.Fatalf("journals on disk = %v, want exactly one", matches)
	}
}

// TestRunRequiresData pins the usage error for a missing -data.
func TestRunRequiresData(t *testing.T) {
	err := run([]string{"-addr", "127.0.0.1:0"}, io.Discard, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "-data") {
		t.Fatalf("run without -data = %v, want error naming -data", err)
	}
}

// TestRunBadFlag pins flag parse errors surfacing as errors, not exits.
func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	err := run([]string{"-no-such-flag"}, w, make(chan os.Signal))
	if err == nil {
		t.Fatal("run with unknown flag succeeded, want error")
	}
}
