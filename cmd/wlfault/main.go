// Command wlfault runs the fault-injection and crash-consistency
// audit matrix (design × workload × fault mode × seed) and prints a
// pass/fail table. The deliberately unsafe "broken" design is
// expected to FAIL; every sound design must PASS. The exit status is
// non-zero only for *unexpected* results — a sound design failing or
// the negative control passing.
//
// Exit codes (scripts and CI branch on these):
//
//	0  audit completed, every verdict as expected
//	1  usage or infrastructure error (bad flags, unknown design, ...)
//	2  audit completed with unexpected verdicts
//	3  the audit itself aborted on a crash-consistency violation
//	4  the audit itself aborted on a forward-progress failure
//	5  the audit itself aborted on checkpoint-reserve exhaustion
//
// Codes 3–5 classify an *aborted* audit by the simulator's typed
// sentinel errors: they fire when a fault outside the tolerated
// matrix (e.g. an infrastructure workload failing to simulate) kills
// the run, not when a design under test merely fails its audit cells.
//
// Usage:
//
//	wlfault
//	wlfault -designs wl,broken -workloads adpcmencode -seeds 1,2,3
//	wlfault -modes crash,tornckpt -points 8 -v
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"wlcache/internal/expt"
	"wlcache/internal/fault"
	"wlcache/internal/hostinfo"
	"wlcache/internal/sim"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlfault:", err)
		os.Exit(exitCodeFor(err))
	}
	os.Exit(code)
}

// exitCodeFor maps an audit-aborting error to its documented exit
// code by unwrapping to the simulator's typed sentinels.
func exitCodeFor(err error) int {
	switch {
	case errors.Is(err, sim.ErrCrashConsistency):
		return 3
	case errors.Is(err, sim.ErrNoProgress):
		return 4
	case errors.Is(err, sim.ErrReserveExhausted):
		return 5
	default:
		return 1
	}
}

// run executes the CLI; factored out of main for testing. The int is
// the process exit code for a completed audit.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlfault", flag.ContinueOnError)
	fs.SetOutput(stdout)
	def := fault.DefaultMatrix()
	var (
		designs   = fs.String("designs", "", "comma-separated design kinds (default: every registered design)")
		workloads = fs.String("workloads", strings.Join(def.Workloads, ","), "comma-separated benchmarks")
		modes     = fs.String("modes", joinModes(def.Modes), "comma-separated fault modes")
		seeds     = fs.String("seeds", joinSeeds(def.Seeds), "comma-separated injection seeds")
		points    = fs.Int("points", def.Points, "crash points sampled per run")
		scale     = fs.Int("scale", def.Scale, "workload input-size multiplier")
		verbose   = fs.Bool("v", false, "print every failing cell")
		version   = fs.Bool("version", false, "print engine version and build info, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *version {
		fmt.Fprintln(stdout, hostinfo.Version("wlfault"))
		return 0, nil
	}

	m := def
	if *designs != "" {
		known := make(map[expt.Kind]bool)
		for _, k := range expt.AllKinds() {
			known[k] = true
		}
		want := make(map[expt.Kind]bool)
		for _, d := range strings.Split(*designs, ",") {
			kind := expt.Kind(strings.TrimSpace(d))
			if !known[kind] {
				return 0, fmt.Errorf("unknown design kind %q (have %s)", kind, joinKinds(expt.AllKinds()))
			}
			want[kind] = true
		}
		// Canonical registry order, deduplicated: the audit table is
		// identical no matter how -designs was spelled.
		m.Designs = nil
		for _, k := range expt.AllKinds() {
			if want[k] {
				m.Designs = append(m.Designs, k)
			}
		}
	}
	m.Workloads = nil
	seen := make(map[string]bool)
	for _, w := range strings.Split(*workloads, ",") {
		w = strings.TrimSpace(w)
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		m.Workloads = append(m.Workloads, w)
	}
	sort.Strings(m.Workloads)
	m.Modes = nil
	for _, s := range strings.Split(*modes, ",") {
		mode := fault.Mode(strings.TrimSpace(s))
		if !mode.Valid() {
			return 0, fmt.Errorf("unknown fault mode %q (have %s)", s, joinModes(fault.Modes()))
		}
		m.Modes = append(m.Modes, mode)
	}
	m.Seeds = nil
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad seed %q: %v", s, err)
		}
		m.Seeds = append(m.Seeds, v)
	}
	m.Points = *points
	m.Scale = *scale

	rep, err := fault.Audit(m)
	if err != nil {
		return 0, err
	}
	fmt.Fprint(stdout, rep.Table().String())

	if *verbose {
		for _, c := range rep.Failures() {
			fmt.Fprintf(stdout, "FAIL %s/%s mode=%s seed=%d: %s (crashes=%d torn=%d dropped=%d) %s\n",
				c.Design, c.Workload, c.Mode, c.Seed, c.Outcome,
				c.Crashes, c.TornWrites, c.DroppedACKs, c.Detail)
		}
	}

	// "broken" is the audit's negative control: only a deviation from
	// the expected verdict (sound design failing, control passing) is
	// an audit failure.
	unexpected := 0
	for _, d := range m.Designs {
		name := string(d)
		pass := rep.DesignPass(name)
		expectFail := name == string(expt.KindBroken)
		if pass == expectFail {
			unexpected++
			want := "PASS"
			if expectFail {
				want = "FAIL"
			}
			fmt.Fprintf(stdout, "UNEXPECTED: %s got %s, want %s\n", name, verdictOf(pass), want)
		}
	}
	if unexpected > 0 {
		fmt.Fprintf(stdout, "audit: %d unexpected verdict(s)\n", unexpected)
		return 2, nil
	}
	fmt.Fprintln(stdout, "audit: all verdicts as expected")
	return 0, nil
}

func verdictOf(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

func joinKinds(ks []expt.Kind) string {
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = string(k)
	}
	return strings.Join(parts, ",")
}

func joinModes(ms []fault.Mode) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = string(m)
	}
	return strings.Join(parts, ",")
}

func joinSeeds(ss []uint64) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = strconv.FormatUint(s, 10)
	}
	return strings.Join(parts, ",")
}
