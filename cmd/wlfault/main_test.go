package main

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"wlcache/internal/sim"
)

// A small matrix must flag the broken negative control and pass
// WL-Cache, exiting zero because both verdicts match expectations.
func TestAuditDifferentialSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var b strings.Builder
	code, err := run([]string{
		"-designs", "wl,broken",
		"-workloads", "adpcmencode",
		"-modes", "crash,ackloss",
		"-seeds", "1",
		"-points", "3",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if code != 0 {
		t.Fatalf("exit code %d (verdicts deviated from expectations):\n%s", code, out)
	}
	if !strings.Contains(out, "all verdicts as expected") {
		t.Fatalf("missing summary line:\n%s", out)
	}
	for _, want := range []string{"wl", "broken", "crash", "ackloss", "verdict"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	brokenRow := rowOf(t, out, "broken")
	if !strings.Contains(brokenRow, "FAIL") {
		t.Fatalf("broken row has no FAIL: %q", brokenRow)
	}
	wlRow := rowOf(t, out, "wl ")
	if strings.Contains(wlRow, "FAIL") {
		t.Fatalf("wl row has a FAIL: %q", wlRow)
	}
}

// A sound design unexpectedly failing (here: none do, so we fake the
// expectation by auditing only the broken design, whose FAIL is
// expected) keeps the exit code zero; auditing it as if it were sound
// is not possible through flags, so instead check that bad flag input
// errors out.
func TestBadFlagsError(t *testing.T) {
	var b strings.Builder
	if _, err := run([]string{"-modes", "bogus"}, &b); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := run([]string{"-seeds", "x"}, &b); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := run([]string{"-workloads", "bogus"}, &b); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// The documented exit-code contract: typed simulator sentinels map to
// distinct codes even when wrapped, everything else is a generic 1.
func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("audit cell wl/sha: %w", sim.ErrCrashConsistency), 3},
		{fmt.Errorf("audit cell wl/sha: %w", sim.ErrNoProgress), 4},
		{fmt.Errorf("wrapped twice: %w", fmt.Errorf("%w", sim.ErrReserveExhausted)), 5},
		{errors.New("flag provided but not defined"), 1},
		{sim.ErrCrashConsistency, 3},
	}
	for _, c := range cases {
		if got := exitCodeFor(c.err); got != c.want {
			t.Errorf("exitCodeFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// rowOf extracts the table line starting with the given label.
func rowOf(t *testing.T, out, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), prefix) {
			return line
		}
	}
	t.Fatalf("no row %q in:\n%s", prefix, out)
	return ""
}

// Permuting (and duplicating) the -designs and -workloads lists must
// not change the audit table: designs render in registry order,
// workloads sorted, both deduplicated.
func TestMatrixOrderIsCanonical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	invoke := func(designs, workloads string) string {
		var b strings.Builder
		code, err := run([]string{
			"-designs", designs,
			"-workloads", workloads,
			"-modes", "crash",
			"-seeds", "1",
			"-points", "1",
		}, &b)
		if err != nil {
			t.Fatal(err)
		}
		if code != 0 {
			t.Fatalf("exit code %d:\n%s", code, b.String())
		}
		return b.String()
	}
	a := invoke("wl,broken", "basicmath,adpcmencode")
	c := invoke("broken,wl,broken", "adpcmencode,basicmath,adpcmencode")
	if a != c {
		t.Fatalf("audit output depends on flag order:\n--- a ---\n%s--- b ---\n%s", a, c)
	}
	if strings.Index(a, "broken") > strings.Index(a, "wl ") {
		t.Fatalf("designs not in registry order (broken is registered before the wl variants):\n%s", a)
	}
}

func TestUnknownDesignErrors(t *testing.T) {
	var b strings.Builder
	if _, err := run([]string{"-designs", "bogus"}, &b); err == nil {
		t.Fatal("unknown design accepted")
	}
}
