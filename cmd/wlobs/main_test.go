package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlcache/internal/obs"
)

// TestRecordDiffRoundTrip drives the full CLI: record one instrumented
// run, check the artifacts, self-diff to zero regressions, then doctor
// the manifest and watch the diff fail.
func TestRecordDiffRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	code, err := run([]string{"record", "-designs", "wl", "-workload", "sha", "-trace", "tr1", "-out", dir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("record: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "DirtyQueue occupancy") {
		t.Errorf("record summary lacks the occupancy chart:\n%s", out.String())
	}

	manifest := filepath.Join(dir, "manifest.jsonl")
	f, err := os.Open(manifest)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := obs.ReadManifests(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d manifests, want 1", len(ms))
	}
	for _, want := range []string{"dq.occupancy", "wb.latency_ps", "ckpt.cost_ps"} {
		found := false
		for _, h := range ms[0].Histograms {
			if h.Name == want && h.Count > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("manifest lacks populated histogram %q", want)
		}
	}

	// The Chrome export must be plain loadable JSON with events.
	raw, err := os.ReadFile(filepath.Join(dir, "trace-wl-sha-tr1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace JSON has no events")
	}

	// Self-diff: identical manifests must report zero regressions.
	out.Reset()
	code, err = run([]string{"diff", manifest, manifest}, &out)
	if err != nil || code != 0 {
		t.Fatalf("self-diff: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Errorf("self-diff output:\n%s", out.String())
	}

	// Doctor a direction-lower counter upward: the diff must flag it.
	doctored := ms[0]
	doctored.Counters = append([]obs.CounterSnap(nil), doctored.Counters...)
	bumped := false
	for i, c := range doctored.Counters {
		if c.Name == "core.stalls" {
			doctored.Counters[i].Value = c.Value*2 + 100
			bumped = true
		}
	}
	if !bumped {
		t.Fatal("manifest lacks core.stalls")
	}
	worse := filepath.Join(dir, "worse.jsonl")
	wf, err := os.Create(worse)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.AppendManifest(wf, doctored); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	out.Reset()
	code, err = run([]string{"diff", manifest, worse}, &out)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if code != 1 {
		t.Errorf("doctored diff: code=%d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "core.stalls") {
		t.Errorf("doctored diff output:\n%s", out.String())
	}

	// summary re-renders the saved manifest.
	out.Reset()
	code, err = run([]string{"summary", manifest}, &out)
	if err != nil || code != 0 {
		t.Fatalf("summary: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "wl / sha / tr1") {
		t.Errorf("summary output:\n%s", out.String())
	}
}

// TestRecordWithFaultInjection checks the fault-injection path records
// forced checkpoints and torn writes in the manifest.
func TestRecordWithFaultInjection(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	code, err := run([]string{"record", "-designs", "wl", "-workload", "qsort", "-trace", "none",
		"-fault", "tornckpt", "-crashes", "2", "-out", dir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("record: code=%d err=%v\n%s", code, err, out.String())
	}
	f, err := os.Open(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := obs.ReadManifests(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	counter := func(name string) uint64 {
		for _, c := range ms[0].Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("manifest lacks counter %q", name)
		return 0
	}
	if counter("ckpt.forced") == 0 {
		t.Error("no forced checkpoints recorded")
	}
	if counter("fault.torn_writes") == 0 {
		t.Error("no torn writes recorded")
	}
}

// TestBadUsage exercises the argument errors.
func TestBadUsage(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(nil, &out); err == nil {
		t.Error("no args: want error")
	}
	if _, err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand: want error")
	}
	if _, err := run([]string{"diff", "one-file-only"}, &out); err == nil {
		t.Error("diff with one file: want error")
	}
	if _, err := run([]string{"record", "-workload", "nope"}, &out); err == nil {
		t.Error("unknown workload: want error")
	}
}
