package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlcache/internal/energy"
	"wlcache/internal/mem"
	"wlcache/internal/obs"
	"wlcache/internal/sim"
)

// foldResult is the bridge between run-level results and the manifest
// differ; every field must land as the right gauge.
func TestFoldResult(t *testing.T) {
	res := sim.Result{
		ExecTime:       1_000_000,
		OnTime:         700_000,
		CheckpointTime: 50_000,
		OffTime:        200_000,
		RestoreTime:    50_000,
		Instructions:   12345,
		Outages:        7,
		Energy:         energy.Breakdown{Compute: 2e-9},
		NVMTraffic:     mem.Traffic{WriteWords: 256},
		ReserveWasted:  1e-9,
		Checksum:       0xdead,
	}
	rec := obs.NewRecorder(obs.RunMeta{Design: "wl"}, 16)
	foldResult(rec.Registry(), res)

	want := map[string]float64{
		"result.exec_ps":           1_000_000,
		"result.on_ps":             700_000,
		"result.ckpt_ps":           50_000,
		"result.off_ps":            200_000,
		"result.restore_ps":        50_000,
		"result.instructions":      12345,
		"result.outages":           7,
		"result.energy_pj":         2000,
		"result.nvm_write_bytes":   1024,
		"result.reserve_wasted_pj": 1000,
		"result.checksum":          float64(0xdead),
	}
	m := rec.Manifest()
	got := map[string]float64{}
	for _, g := range m.Gauges {
		got[g.Name] = g.Last
	}
	for name, v := range want {
		if diff := math.Abs(got[name] - v); diff > 1e-9*math.Abs(v) {
			t.Errorf("gauge %s = %g, want %g", name, got[name], v)
		}
	}
}

// A metric present on one side only must surface as a new/gone row —
// the exact blind spot the differ used to have.
func TestDiffReportsNewAndGoneMetrics(t *testing.T) {
	dir := t.TempDir()
	mk := func(path, extra string) {
		rec := obs.NewRecorder(obs.RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 16)
		rec.StoreStall(0, 100, 0x40)
		rec.Registry().Gauge(extra, obs.DirNone).Set(5)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.AppendManifest(f, rec.Manifest()); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl")
	mk(oldPath, "old.only")
	mk(newPath, "new.only")

	var out bytes.Buffer
	code, err := run([]string{"diff", oldPath, newPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("diff: code=%d err=%v\n%s", code, err, out.String())
	}
	s := out.String()
	for _, want := range []string{"new", "new.only", "gone", "old.only"} {
		if !strings.Contains(s, want) {
			t.Fatalf("diff output missing %q:\n%s", want, s)
		}
	}
	// One-sided rows are informational, never regressions.
	if strings.Contains(s, "REGRESSION") {
		t.Fatalf("one-sided metrics flagged as regression:\n%s", s)
	}
}

// End-to-end smoke for the causal subcommands on an uninterrupted-power
// run (fast, deterministic).
func TestSpansAttributeFlameSubcommands(t *testing.T) {
	dir := t.TempDir()

	var out bytes.Buffer
	code, err := run([]string{"spans", "-design", "wl", "-workload", "qsort", "-trace", "none", "-limit", "5"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("spans: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "spans") || !strings.Contains(out.String(), "coverage 100.0%") {
		t.Fatalf("spans output:\n%s", out.String())
	}

	out.Reset()
	code, err = run([]string{"spans", "-design", "wl", "-workload", "qsort", "-trace", "none",
		"-kind", "writeback", "-json"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("spans -json: code=%d err=%v", code, err)
	}
	if s := out.String(); !strings.Contains(s, `"kind":"writeback"`) || strings.Contains(s, `"kind":"stall"`) {
		t.Fatalf("spans -kind filter leaked other kinds:\n%.400s", s)
	}

	out.Reset()
	attrJSON := filepath.Join(dir, "attr.jsonl")
	code, err = run([]string{"attribute", "-designs", "nvcache-wb,wl", "-workload", "qsort", "-trace", "none",
		"-json", attrJSON, "-require-full-coverage"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("attribute: code=%d err=%v\n%s", code, err, out.String())
	}
	for _, want := range []string{"compute", "maxline-stall", "hidden port-wait", "coverage"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("attribute table missing %q:\n%s", want, out.String())
		}
	}
	f, err := os.Open(attrJSON)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadAttrs(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("wrote %d wlattr records, want 2", len(recs))
	}
	for _, r := range recs {
		var sum int64
		for _, v := range r.Categories {
			sum += v
		}
		if sum+r.UnknownPS != r.TotalPS {
			t.Fatalf("%s: serialized ledger breaks the invariant: %d + %d != %d",
				r.Design, sum, r.UnknownPS, r.TotalPS)
		}
		if r.Coverage != 1 {
			t.Fatalf("%s: coverage %g, want 1", r.Design, r.Coverage)
		}
	}

	out.Reset()
	folded := filepath.Join(dir, "wl.folded")
	code, err = run([]string{"flame", "-design", "wl", "-workload", "qsort", "-trace", "none", "-out", folded}, &out)
	if err != nil || code != 0 {
		t.Fatalf("flame: code=%d err=%v\n%s", code, err, out.String())
	}
	raw, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "compute ") {
		t.Fatalf("folded output lacks a compute stack:\n%s", raw)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed folded line %q", line)
		}
	}
}
