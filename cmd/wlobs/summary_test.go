package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlcache/internal/load"
)

// `wlobs summary` on a wlload/v1 report prints the load table instead
// of trying to parse it as a manifest.
func TestSummaryReadsLoadReport(t *testing.T) {
	rep := load.Report{
		Schema: load.Schema, Target: "http://test", Clients: 3,
		Phases: 2, RequestsPerPhase: 6,
		Submitted: 12, Completed: 12, DurMS: 1500,
		ThroughputRPS: 8, CellsPerSec: 400,
		Latency:    load.Latency{P50MS: 15, P95MS: 90, P99MS: 120, MeanMS: 30, MaxMS: 120},
		Cells:      load.Cells{Total: 612, Computed: 74},
		DedupRatio: 0.879,
	}
	path := filepath.Join(t.TempDir(), "load.json")
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code, err := run([]string{"summary", path}, &out)
	if err != nil || code != 0 {
		t.Fatalf("summary: code=%d err=%v\n%s", code, err, out.String())
	}
	for _, want := range []string{"wlload/v1", "latency_p50_ms", "dedup_ratio", "throughput_rps"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary output lacks %q:\n%s", want, out.String())
		}
	}
}

// A file that is neither a manifest nor a load report errors rather
// than printing an empty summary.
func TestSummaryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(path, []byte("not a report"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := run([]string{"summary", path}, &out); err == nil {
		t.Fatal("garbage file accepted")
	}
}
