// Command wlobs records instrumented simulation runs, explains them
// causally, and compares their metric manifests across code versions.
//
// `record` runs one workload on one or more designs with the
// observability layer enabled (internal/obs), prints a per-run
// summary, and writes a JSONL manifest plus one Chrome trace_event
// JSON file per design (loadable in chrome://tracing or Perfetto).
// `diff` compares two manifests cell by cell and flags metric changes
// beyond a threshold in the bad direction; its exit status is non-zero
// when any regression is found. `summary` re-renders a saved manifest,
// or — given a wlload/v1 load report — its latency/throughput table.
// `spans` reconstructs the causal span graph of a run (store stall →
// write-back → port wait → DirtyQueue release; checkpoint/off/restore
// under their outage). `attribute` charges every simulated cycle to
// one category and compares the ledgers across designs (wlattr/v1
// JSON with -json). `flame` renders the ledger as folded stacks for
// standard flamegraph tooling.
//
// Usage:
//
//	wlobs record -designs wl,wl-dyn -workload sha -trace tr1 -out obs-out
//	wlobs record -fault tornckpt -crashes 3 -workload qsort
//	wlobs diff -threshold 0.05 old/manifest.jsonl new/manifest.jsonl
//	wlobs summary obs-out/manifest.jsonl
//	wlobs spans -design wl -workload sha -trace tr1 -kind stall
//	wlobs attribute -designs nvcache-wb,vcache-wt,wl -workload sha -trace tr1
//	wlobs flame -design wl -workload sha -trace tr1 -out wl.folded
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"wlcache/internal/expt"
	"wlcache/internal/fault"
	"wlcache/internal/hostinfo"
	"wlcache/internal/isa"
	"wlcache/internal/load"
	"wlcache/internal/obs"
	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/workload"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlobs:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the CLI; factored out of main for testing. The int is
// the process exit code for a completed command.
func run(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("usage: wlobs record|diff|summary|spans|attribute|flame [flags]; see `wlobs <cmd> -h`")
	}
	switch args[0] {
	case "-version", "--version", "version":
		fmt.Fprintln(stdout, hostinfo.Version("wlobs"))
		return 0, nil
	case "record":
		return runRecord(args[1:], stdout)
	case "diff":
		return runDiff(args[1:], stdout)
	case "summary":
		return runSummary(args[1:], stdout)
	case "spans":
		return runSpans(args[1:], stdout)
	case "attribute":
		return runAttribute(args[1:], stdout)
	case "flame":
		return runFlame(args[1:], stdout)
	}
	return 0, fmt.Errorf("unknown subcommand %q (want record, diff, summary, spans, attribute or flame)", args[0])
}

// crashSpacing is the instruction distance between forced crashes when
// `record -fault` schedules them (golden-run-free, so deterministic
// without knowing the workload's length).
const crashSpacing = 5_000

func runRecord(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs record", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		designs   = fs.String("designs", "wl", "comma-separated design kinds to record")
		wl        = fs.String("workload", "sha", "benchmark name")
		trace     = fs.String("trace", "tr1", "power source: none, tr1, tr2, tr3, solar, thermal")
		scale     = fs.Int("scale", 1, "input-size multiplier")
		events    = fs.Int("events", 0, "event ring capacity; ~48 B/event, 0 = default 65536 (~3 MB)")
		out       = fs.String("out", "wlobs-out", "output directory for manifest.jsonl and trace JSON")
		check     = fs.Bool("check", true, "verify crash-consistency invariants")
		faultMode = fs.String("fault", "", "also inject faults: crash, tornwb, tornckpt, ackloss")
		crashes   = fs.Int("crashes", 3, "forced crashes to schedule with -fault")
		seed      = fs.Uint64("seed", 1, "fault-injection seed")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	w, ok := workload.ByName(*wl)
	if !ok {
		return 0, fmt.Errorf("unknown workload %q", *wl)
	}
	var mode fault.Mode
	if *faultMode != "" {
		mode = fault.Mode(*faultMode)
		if !mode.Valid() {
			return 0, fmt.Errorf("unknown fault mode %q", *faultMode)
		}
		// Injected faults corrupt durable state by design; the invariant
		// checker would (correctly) abort the run. Recording wants the
		// timeline, so checks default off unless explicitly requested.
		checkSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "check" {
				checkSet = true
			}
		})
		if !checkSet {
			*check = false
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return 0, err
	}
	mf, err := os.Create(filepath.Join(*out, "manifest.jsonl"))
	if err != nil {
		return 0, err
	}
	defer mf.Close()

	for _, d := range strings.Split(*designs, ",") {
		kind := expt.Kind(strings.TrimSpace(d))
		rec := obs.NewRecorder(obs.RunMeta{Design: string(kind), Workload: w.Name, Trace: *trace}, *events)

		cfg := sim.DefaultConfig()
		cfg.CheckInvariants = *check
		cfg.Obs = rec
		cfg.Trace = power.Get(power.Source(*trace))
		design, nvm := expt.NewDesign(kind, expt.Options{})
		if mode != "" {
			inj := fault.NewInjector(mode, *seed)
			inj.Obs = rec
			for i := 1; i <= *crashes; i++ {
				inj.CrashAtInstrs(uint64(i) * crashSpacing)
			}
			cfg.FaultPlan = inj
			inj.Arm(nvm, design)
		}
		s, err := sim.New(cfg, design, nvm)
		if err != nil {
			return 0, fmt.Errorf("design %s: %w", kind, err)
		}
		res, err := s.Run(w.Name, func(m isa.Machine) uint32 { return w.Run(m, *scale) })
		if err != nil {
			return 0, fmt.Errorf("design %s: %w", kind, err)
		}
		foldResult(rec.Registry(), res)
		warnDropped(rec, string(kind))

		m := rec.Manifest()
		if err := obs.AppendManifest(mf, m); err != nil {
			return 0, err
		}
		tname := filepath.Join(*out, fmt.Sprintf("trace-%s-%s-%s.json", kind, w.Name, *trace))
		tf, err := os.Create(tname)
		if err != nil {
			return 0, err
		}
		if err := rec.Trace().WriteChrome(tf, rec.Meta); err != nil {
			tf.Close()
			return 0, err
		}
		if err := tf.Close(); err != nil {
			return 0, err
		}
		fmt.Fprint(stdout, obs.Summarize(m))
		fmt.Fprintf(stdout, "wrote %s\n\n", tname)
	}
	fmt.Fprintf(stdout, "wrote %s\n", filepath.Join(*out, "manifest.jsonl"))
	return 0, nil
}

// foldResult folds the run-level sim.Result into the registry as
// gauges, so `wlobs diff` compares end-to-end outcomes (execution
// time, energy, traffic) alongside the event-derived distributions.
func foldResult(reg *obs.Registry, res sim.Result) {
	reg.Gauge("result.exec_ps", obs.DirLower).Set(float64(res.ExecTime))
	reg.Gauge("result.on_ps", obs.DirLower).Set(float64(res.OnTime))
	reg.Gauge("result.ckpt_ps", obs.DirLower).Set(float64(res.CheckpointTime))
	reg.Gauge("result.off_ps", obs.DirLower).Set(float64(res.OffTime))
	reg.Gauge("result.restore_ps", obs.DirLower).Set(float64(res.RestoreTime))
	reg.Gauge("result.instructions", obs.DirNone).Set(float64(res.Instructions))
	reg.Gauge("result.outages", obs.DirLower).Set(float64(res.Outages))
	reg.Gauge("result.energy_pj", obs.DirLower).Set(res.Energy.Total() * 1e12)
	reg.Gauge("result.nvm_write_bytes", obs.DirLower).Set(float64(res.NVMTraffic.WriteBytes()))
	reg.Gauge("result.reserve_wasted_pj", obs.DirLower).Set(res.ReserveWasted * 1e12)
	reg.Gauge("result.checksum", obs.DirNone).Set(float64(res.Checksum))
}

func runDiff(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs diff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		threshold = fs.Float64("threshold", 0.05, "relative change flagged as a regression")
		all       = fs.Bool("all", false, "also print non-regression changes beyond the threshold")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("usage: wlobs diff [-threshold f] [-all] OLD.jsonl NEW.jsonl")
	}
	oldMs, err := readManifestFile(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newMs, err := readManifestFile(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	byKey := func(ms []obs.Manifest) map[string]obs.Manifest {
		out := make(map[string]obs.Manifest, len(ms))
		for _, m := range ms {
			out[m.Key()] = m
		}
		return out
	}
	on, nn := byKey(oldMs), byKey(newMs)

	regressions, cells := 0, 0
	for _, om := range oldMs {
		nm, ok := nn[om.Key()]
		if !ok {
			fmt.Fprintf(stdout, "== %s: only in %s\n", om.Key(), fs.Arg(0))
			continue
		}
		cells++
		rep := obs.DiffManifests(om, nm, *threshold)
		deltas := rep.Regressions()
		if *all {
			deltas = rep.Changed(*threshold)
		}
		fmt.Fprintf(stdout, "== %s (%d metrics compared)\n", rep.Key, len(rep.Deltas))
		for _, d := range deltas {
			fmt.Fprintf(stdout, "  %s\n", d)
		}
		// Metrics on one side only always print: a new code version's
		// added (or lost) metric must be visible even without -all.
		if !*all {
			for _, d := range rep.OneSided() {
				fmt.Fprintf(stdout, "  %s\n", d)
			}
		}
		regressions += len(rep.Regressions())
	}
	for _, nm := range newMs {
		if _, ok := on[nm.Key()]; !ok {
			fmt.Fprintf(stdout, "== %s: only in %s\n", nm.Key(), fs.Arg(1))
		}
	}
	fmt.Fprintf(stdout, "wlobs diff: %d regression(s) across %d cell(s) at threshold %.0f%%\n",
		regressions, cells, 100**threshold)
	if regressions > 0 {
		return 1, nil
	}
	return 0, nil
}

func runSummary(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs summary", flag.ContinueOnError)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 1 {
		return 0, fmt.Errorf("usage: wlobs summary MANIFEST.jsonl|WLLOAD.json")
	}
	if rep, ok := tryLoadReport(fs.Arg(0)); ok {
		fmt.Fprint(stdout, load.Summarize(rep))
		return 0, nil
	}
	ms, err := readManifestFile(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	for _, m := range ms {
		fmt.Fprint(stdout, obs.Summarize(m))
		fmt.Fprintln(stdout)
	}
	return 0, nil
}

// tryLoadReport sniffs whether the file is a wlload/v1 load report;
// anything else (including a wlobs manifest) falls through to the
// manifest reader.
func tryLoadReport(path string) (load.Report, bool) {
	f, err := os.Open(path)
	if err != nil {
		return load.Report{}, false
	}
	defer f.Close()
	rep, err := load.ReadReport(f)
	return rep, err == nil
}

// warnDropped surfaces ring overwrites on stderr: a truncated trace
// silently degrades spans/attribution coverage, so the operator should
// know to re-run with a larger -events.
func warnDropped(rec *obs.Recorder, kind string) {
	if d := rec.Trace().Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "wlobs: warning: design %s dropped %d of %d events (ring full); rerun with a larger -events for full coverage\n",
			kind, d, rec.Trace().Pushed())
	}
}

// attrEventCap is the default ring size for the causal subcommands:
// big enough that smoke-scale runs drop nothing, since dropped events
// directly reduce attribution coverage (~48 B/event → 1 Mi ≈ 48 MB).
const attrEventCap = 1 << 20

// runInstrumented executes one design × workload × trace cell with
// recording on and returns the recorder, the result and the core cycle
// time (for ps → cycle conversion).
func runInstrumented(kind expt.Kind, wl string, trace string, scale, events int) (*obs.Recorder, sim.Result, int64, error) {
	w, ok := workload.ByName(wl)
	if !ok {
		return nil, sim.Result{}, 0, fmt.Errorf("unknown workload %q", wl)
	}
	rec := obs.NewRecorder(obs.RunMeta{Design: string(kind), Workload: w.Name, Trace: trace}, events)
	cfg := sim.DefaultConfig()
	cfg.Obs = rec
	cfg.Trace = power.Get(power.Source(trace))
	design, nvm := expt.NewDesign(kind, expt.Options{})
	s, err := sim.New(cfg, design, nvm)
	if err != nil {
		return nil, sim.Result{}, 0, fmt.Errorf("design %s: %w", kind, err)
	}
	res, err := s.Run(w.Name, func(m isa.Machine) uint32 { return w.Run(m, scale) })
	if err != nil {
		return nil, sim.Result{}, 0, fmt.Errorf("design %s: %w", kind, err)
	}
	return rec, res, cfg.CyclePS, nil
}

func runSpans(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs spans", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		design   = fs.String("design", "wl", "design kind to reconstruct")
		wl       = fs.String("workload", "sha", "benchmark name")
		trace    = fs.String("trace", "tr1", "power source: none, tr1, tr2, tr3, solar, thermal")
		scale    = fs.Int("scale", 1, "input-size multiplier")
		events   = fs.Int("events", attrEventCap, "event ring capacity (~48 B/event)")
		kindFlag = fs.String("kind", "", "only show spans of this kind (stall, writeback, port-wait, checkpoint, off, restore, outage)")
		addrFlag = fs.String("addr", "", "only show spans touching this address (hex ok)")
		limit    = fs.Int("limit", 50, "max spans to print (0 = all)")
		asJSON   = fs.Bool("json", false, "emit spans as JSONL instead of the report")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	rec, res, _, err := runInstrumented(expt.Kind(*design), *wl, *trace, *scale, *events)
	if err != nil {
		return 0, err
	}
	warnDropped(rec, *design)
	set := obs.BuildSpans(rec.Trace(), rec.Meta, res.ExecTime)

	var wantKind obs.SpanKind
	if *kindFlag != "" {
		k, ok := obs.SpanKindByName(*kindFlag)
		if !ok {
			return 0, fmt.Errorf("unknown span kind %q", *kindFlag)
		}
		wantKind = k
	}
	var wantAddr uint32
	haveAddr := false
	if *addrFlag != "" {
		a, err := strconv.ParseUint(*addrFlag, 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad -addr %q: %w", *addrFlag, err)
		}
		wantAddr, haveAddr = uint32(a), true
	}
	match := func(sp obs.Span) bool {
		if wantKind != 0 && sp.Kind != wantKind {
			return false
		}
		if haveAddr && sp.Addr != wantAddr {
			return false
		}
		return true
	}

	if *asJSON {
		filtered := set
		filtered.Spans = nil
		for _, sp := range set.Spans {
			if match(sp) {
				filtered.Spans = append(filtered.Spans, sp)
			}
		}
		return 0, filtered.WriteJSONL(stdout)
	}
	fmt.Fprint(stdout, set.Summary())
	shown := 0
	for _, sp := range set.Spans {
		if !match(sp) {
			continue
		}
		if *limit > 0 && shown >= *limit {
			fmt.Fprintf(stdout, "   ... (use -limit 0 for all)\n")
			break
		}
		fmt.Fprintf(stdout, "  %s\n", set.Format(sp))
		shown++
	}
	return 0, nil
}

func runAttribute(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs attribute", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		designs  = fs.String("designs", "nvcache-wb,vcache-wt,wl", "comma-separated design kinds to attribute")
		wl       = fs.String("workload", "sha", "benchmark name")
		trace    = fs.String("trace", "tr1", "power source: none, tr1, tr2, tr3, solar, thermal")
		scale    = fs.Int("scale", 1, "input-size multiplier")
		events   = fs.Int("events", attrEventCap, "event ring capacity (~48 B/event)")
		top      = fs.Int("top", 5, "hotspot sites to print per design (0 = none)")
		jsonOut  = fs.String("json", "", "also append wlattr/v1 JSONL records to this file")
		needFull = fs.Bool("require-full-coverage", false, "exit 1 unless every ledger attributes 100% of cycles")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	var ledgers []obs.Ledger
	for _, d := range strings.Split(*designs, ",") {
		kind := expt.Kind(strings.TrimSpace(d))
		rec, res, cyclePS, err := runInstrumented(kind, *wl, *trace, *scale, *events)
		if err != nil {
			return 0, err
		}
		warnDropped(rec, string(kind))
		l := rec.Attribute(res.ExecTime, cyclePS)
		if l.SumPS() != l.TotalPS {
			// The ledger's own invariant; if it ever trips the profiler
			// is lying and must not pretend otherwise.
			return 0, fmt.Errorf("design %s: ledger sum %d ps != total %d ps", kind, l.SumPS(), l.TotalPS)
		}
		ledgers = append(ledgers, l)
	}
	fmt.Fprint(stdout, attrTable(ledgers, *top))

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return 0, err
		}
		for i := range ledgers {
			if err := obs.WriteAttr(f, &ledgers[i], *top); err != nil {
				f.Close()
				return 0, err
			}
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonOut)
	}
	if *needFull {
		for i := range ledgers {
			if ledgers[i].Coverage() < 1 {
				fmt.Fprintf(stdout, "attribute: %s coverage %.3f%% < 100%% (ring dropped %d events)\n",
					ledgers[i].Meta.Key(), 100*ledgers[i].Coverage(), ledgers[i].Dropped)
				return 1, nil
			}
		}
	}
	return 0, nil
}

// attrTable renders the cross-design cycle ledger: one column per
// design, one row per category, cycles with percent-of-total.
func attrTable(ledgers []obs.Ledger, top int) string {
	var b strings.Builder
	if len(ledgers) == 0 {
		return ""
	}
	cell := func(l *obs.Ledger, ps int64) string {
		pct := 0.0
		if l.TotalPS > 0 {
			pct = 100 * float64(ps) / float64(l.TotalPS)
		}
		return fmt.Sprintf("%d (%5.1f%%)", l.Cycles(ps), pct)
	}
	const catW = 18
	colW := make([]int, len(ledgers))
	for i := range ledgers {
		colW[i] = len(ledgers[i].Meta.Design)
		for _, c := range obs.Categories() {
			if n := len(cell(&ledgers[i], ledgers[i].CatPS[c])); n > colW[i] {
				colW[i] = n
			}
		}
		if n := len(cell(&ledgers[i], ledgers[i].UnknownPS)); n > colW[i] {
			colW[i] = n
		}
	}
	fmt.Fprintf(&b, "cycle attribution: %s / %s (cycles, %% of total)\n",
		ledgers[0].Meta.Workload, ledgers[0].Meta.Trace)
	fmt.Fprintf(&b, "%-*s", catW, "category")
	for i := range ledgers {
		fmt.Fprintf(&b, "  %*s", colW[i], ledgers[i].Meta.Design)
	}
	b.WriteByte('\n')
	for _, c := range obs.Categories() {
		fmt.Fprintf(&b, "%-*s", catW, c)
		for i := range ledgers {
			fmt.Fprintf(&b, "  %*s", colW[i], cell(&ledgers[i], ledgers[i].CatPS[c]))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s", catW, "unknown")
	for i := range ledgers {
		fmt.Fprintf(&b, "  %*s", colW[i], cell(&ledgers[i], ledgers[i].UnknownPS))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-*s", catW, "total cycles")
	for i := range ledgers {
		fmt.Fprintf(&b, "  %*d", colW[i], ledgers[i].Cycles(ledgers[i].TotalPS))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-*s", catW, "hidden port-wait")
	for i := range ledgers {
		fmt.Fprintf(&b, "  %*d", colW[i], ledgers[i].Cycles(ledgers[i].HiddenPortWaitPS))
	}
	b.WriteString("  (async WBs, overlapped by execution)\n")
	fmt.Fprintf(&b, "%-*s", catW, "coverage")
	for i := range ledgers {
		fmt.Fprintf(&b, "  %*s", colW[i], fmt.Sprintf("%.1f%%", 100*ledgers[i].Coverage()))
	}
	b.WriteByte('\n')
	if top > 0 {
		for i := range ledgers {
			l := &ledgers[i]
			if len(l.Hotspots) == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n%s hotspots (stall + sync port-wait cycles by site):\n", l.Meta.Design)
			for j, h := range l.Hotspots {
				if j >= top {
					break
				}
				fmt.Fprintf(&b, "  %-40s stall %-12d port-wait %-12d (%d events)\n",
					h.Site, l.Cycles(h.StallPS), l.Cycles(h.PortWaitPS), h.Events)
			}
		}
	}
	return b.String()
}

func runFlame(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs flame", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		design = fs.String("design", "wl", "design kind to profile")
		wl     = fs.String("workload", "sha", "benchmark name")
		trace  = fs.String("trace", "tr1", "power source: none, tr1, tr2, tr3, solar, thermal")
		scale  = fs.Int("scale", 1, "input-size multiplier")
		events = fs.Int("events", attrEventCap, "event ring capacity (~48 B/event)")
		out    = fs.String("out", "", "write folded stacks to this file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	rec, res, cyclePS, err := runInstrumented(expt.Kind(*design), *wl, *trace, *scale, *events)
	if err != nil {
		return 0, err
	}
	warnDropped(rec, *design)
	l := rec.Attribute(res.ExecTime, cyclePS)
	folded := l.Folded()
	if *out == "" {
		fmt.Fprint(stdout, folded)
		return 0, nil
	}
	if err := os.WriteFile(*out, []byte(folded), 0o644); err != nil {
		return 0, err
	}
	fmt.Fprintf(stdout, "wrote %s (%d stacks; render with e.g. flamegraph.pl or speedscope)\n",
		*out, strings.Count(folded, "\n"))
	return 0, nil
}

func readManifestFile(path string) ([]obs.Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ms, err := obs.ReadManifests(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("%s: no manifests", path)
	}
	return ms, nil
}
