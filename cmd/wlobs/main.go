// Command wlobs records instrumented simulation runs and compares
// their metric manifests across code versions.
//
// `record` runs one workload on one or more designs with the
// observability layer enabled (internal/obs), prints a per-run
// summary, and writes a JSONL manifest plus one Chrome trace_event
// JSON file per design (loadable in chrome://tracing or Perfetto).
// `diff` compares two manifests cell by cell and flags metric changes
// beyond a threshold in the bad direction; its exit status is non-zero
// when any regression is found. `summary` re-renders a saved manifest.
//
// Usage:
//
//	wlobs record -designs wl,wl-dyn -workload sha -trace tr1 -out obs-out
//	wlobs record -fault tornckpt -crashes 3 -workload qsort
//	wlobs diff -threshold 0.05 old/manifest.jsonl new/manifest.jsonl
//	wlobs summary obs-out/manifest.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"wlcache/internal/expt"
	"wlcache/internal/fault"
	"wlcache/internal/isa"
	"wlcache/internal/obs"
	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/workload"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlobs:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the CLI; factored out of main for testing. The int is
// the process exit code for a completed command.
func run(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("usage: wlobs record|diff|summary [flags]; see `wlobs <cmd> -h`")
	}
	switch args[0] {
	case "record":
		return runRecord(args[1:], stdout)
	case "diff":
		return runDiff(args[1:], stdout)
	case "summary":
		return runSummary(args[1:], stdout)
	}
	return 0, fmt.Errorf("unknown subcommand %q (want record, diff or summary)", args[0])
}

// crashSpacing is the instruction distance between forced crashes when
// `record -fault` schedules them (golden-run-free, so deterministic
// without knowing the workload's length).
const crashSpacing = 5_000

func runRecord(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs record", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		designs   = fs.String("designs", "wl", "comma-separated design kinds to record")
		wl        = fs.String("workload", "sha", "benchmark name")
		trace     = fs.String("trace", "tr1", "power source: none, tr1, tr2, tr3, solar, thermal")
		scale     = fs.Int("scale", 1, "input-size multiplier")
		events    = fs.Int("events", 0, "event ring capacity (0 = default)")
		out       = fs.String("out", "wlobs-out", "output directory for manifest.jsonl and trace JSON")
		check     = fs.Bool("check", true, "verify crash-consistency invariants")
		faultMode = fs.String("fault", "", "also inject faults: crash, tornwb, tornckpt, ackloss")
		crashes   = fs.Int("crashes", 3, "forced crashes to schedule with -fault")
		seed      = fs.Uint64("seed", 1, "fault-injection seed")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	w, ok := workload.ByName(*wl)
	if !ok {
		return 0, fmt.Errorf("unknown workload %q", *wl)
	}
	var mode fault.Mode
	if *faultMode != "" {
		mode = fault.Mode(*faultMode)
		if !mode.Valid() {
			return 0, fmt.Errorf("unknown fault mode %q", *faultMode)
		}
		// Injected faults corrupt durable state by design; the invariant
		// checker would (correctly) abort the run. Recording wants the
		// timeline, so checks default off unless explicitly requested.
		checkSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "check" {
				checkSet = true
			}
		})
		if !checkSet {
			*check = false
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return 0, err
	}
	mf, err := os.Create(filepath.Join(*out, "manifest.jsonl"))
	if err != nil {
		return 0, err
	}
	defer mf.Close()

	for _, d := range strings.Split(*designs, ",") {
		kind := expt.Kind(strings.TrimSpace(d))
		rec := obs.NewRecorder(obs.RunMeta{Design: string(kind), Workload: w.Name, Trace: *trace}, *events)

		cfg := sim.DefaultConfig()
		cfg.CheckInvariants = *check
		cfg.Obs = rec
		cfg.Trace = power.Get(power.Source(*trace))
		design, nvm := expt.NewDesign(kind, expt.Options{})
		if mode != "" {
			inj := fault.NewInjector(mode, *seed)
			inj.Obs = rec
			for i := 1; i <= *crashes; i++ {
				inj.CrashAtInstrs(uint64(i) * crashSpacing)
			}
			cfg.FaultPlan = inj
			inj.Arm(nvm, design)
		}
		s, err := sim.New(cfg, design, nvm)
		if err != nil {
			return 0, fmt.Errorf("design %s: %w", kind, err)
		}
		res, err := s.Run(w.Name, func(m isa.Machine) uint32 { return w.Run(m, *scale) })
		if err != nil {
			return 0, fmt.Errorf("design %s: %w", kind, err)
		}
		foldResult(rec.Registry(), res)

		m := rec.Manifest()
		if err := obs.AppendManifest(mf, m); err != nil {
			return 0, err
		}
		tname := filepath.Join(*out, fmt.Sprintf("trace-%s-%s-%s.json", kind, w.Name, *trace))
		tf, err := os.Create(tname)
		if err != nil {
			return 0, err
		}
		if err := rec.Trace().WriteChrome(tf, rec.Meta); err != nil {
			tf.Close()
			return 0, err
		}
		if err := tf.Close(); err != nil {
			return 0, err
		}
		fmt.Fprint(stdout, obs.Summarize(m))
		fmt.Fprintf(stdout, "wrote %s\n\n", tname)
	}
	fmt.Fprintf(stdout, "wrote %s\n", filepath.Join(*out, "manifest.jsonl"))
	return 0, nil
}

// foldResult folds the run-level sim.Result into the registry as
// gauges, so `wlobs diff` compares end-to-end outcomes (execution
// time, energy, traffic) alongside the event-derived distributions.
func foldResult(reg *obs.Registry, res sim.Result) {
	reg.Gauge("result.exec_ps", obs.DirLower).Set(float64(res.ExecTime))
	reg.Gauge("result.on_ps", obs.DirLower).Set(float64(res.OnTime))
	reg.Gauge("result.ckpt_ps", obs.DirLower).Set(float64(res.CheckpointTime))
	reg.Gauge("result.off_ps", obs.DirLower).Set(float64(res.OffTime))
	reg.Gauge("result.restore_ps", obs.DirLower).Set(float64(res.RestoreTime))
	reg.Gauge("result.instructions", obs.DirNone).Set(float64(res.Instructions))
	reg.Gauge("result.outages", obs.DirLower).Set(float64(res.Outages))
	reg.Gauge("result.energy_pj", obs.DirLower).Set(res.Energy.Total() * 1e12)
	reg.Gauge("result.nvm_write_bytes", obs.DirLower).Set(float64(res.NVMTraffic.WriteBytes()))
	reg.Gauge("result.reserve_wasted_pj", obs.DirLower).Set(res.ReserveWasted * 1e12)
	reg.Gauge("result.checksum", obs.DirNone).Set(float64(res.Checksum))
}

func runDiff(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs diff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		threshold = fs.Float64("threshold", 0.05, "relative change flagged as a regression")
		all       = fs.Bool("all", false, "also print non-regression changes beyond the threshold")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("usage: wlobs diff [-threshold f] [-all] OLD.jsonl NEW.jsonl")
	}
	oldMs, err := readManifestFile(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newMs, err := readManifestFile(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	byKey := func(ms []obs.Manifest) map[string]obs.Manifest {
		out := make(map[string]obs.Manifest, len(ms))
		for _, m := range ms {
			out[m.Key()] = m
		}
		return out
	}
	on, nn := byKey(oldMs), byKey(newMs)

	regressions, cells := 0, 0
	for _, om := range oldMs {
		nm, ok := nn[om.Key()]
		if !ok {
			fmt.Fprintf(stdout, "== %s: only in %s\n", om.Key(), fs.Arg(0))
			continue
		}
		cells++
		rep := obs.DiffManifests(om, nm, *threshold)
		deltas := rep.Regressions()
		if *all {
			deltas = rep.Changed(*threshold)
		}
		fmt.Fprintf(stdout, "== %s (%d metrics compared)\n", rep.Key, len(rep.Deltas))
		for _, d := range deltas {
			fmt.Fprintf(stdout, "  %s\n", d)
		}
		for _, k := range rep.OnlyOld {
			fmt.Fprintf(stdout, "  only in old: %s\n", k)
		}
		for _, k := range rep.OnlyNew {
			fmt.Fprintf(stdout, "  only in new: %s\n", k)
		}
		regressions += len(rep.Regressions())
	}
	for _, nm := range newMs {
		if _, ok := on[nm.Key()]; !ok {
			fmt.Fprintf(stdout, "== %s: only in %s\n", nm.Key(), fs.Arg(1))
		}
	}
	fmt.Fprintf(stdout, "wlobs diff: %d regression(s) across %d cell(s) at threshold %.0f%%\n",
		regressions, cells, 100**threshold)
	if regressions > 0 {
		return 1, nil
	}
	return 0, nil
}

func runSummary(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlobs summary", flag.ContinueOnError)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 1 {
		return 0, fmt.Errorf("usage: wlobs summary MANIFEST.jsonl")
	}
	ms, err := readManifestFile(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	for _, m := range ms {
		fmt.Fprint(stdout, obs.Summarize(m))
		fmt.Fprintln(stdout)
	}
	return 0, nil
}

func readManifestFile(path string) ([]obs.Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ms, err := obs.ReadManifests(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("%s: no manifests", path)
	}
	return ms, nil
}
