package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuiltinStats(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-trace", "tr3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trace tr3") || !strings.Contains(b.String(), "mean power") {
		t.Fatalf("stats missing:\n%s", b.String())
	}
}

func TestUnknownSource(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-trace", "bogus"}, &b); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestExportAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tr1.csv")
	var b strings.Builder
	if err := run([]string{"-trace", "tr1", "-csv", path}, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	// Round trip: the exported file must analyze identically.
	var b2 strings.Builder
	if err := run([]string{"-load", path}, &b2); err != nil {
		t.Fatal(err)
	}
	wantMean := extractLine(t, b.String(), "mean power")
	gotMean := extractLine(t, b2.String(), "mean power")
	if wantMean != gotMean {
		t.Fatalf("round trip changed the statistics: %q vs %q", wantMean, gotMean)
	}
}

func TestLoadMissingFile(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-load", "/nonexistent/trace.csv"}, &b); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGenCustom(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-gen", "mean=5e-3,vol=0.3,dead=0.05,seed=3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trace custom") {
		t.Fatalf("custom trace not generated:\n%s", b.String())
	}
}

func TestGenBadSpecs(t *testing.T) {
	for _, spec := range []string{"nope", "mean=abc", "unknown=1"} {
		var b strings.Builder
		if err := run([]string{"-gen", spec}, &b); err == nil {
			t.Errorf("bad -gen spec %q accepted", spec)
		}
	}
}

func extractLine(t *testing.T, s, substr string) string {
	t.Helper()
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	t.Fatalf("no line containing %q in %q", substr, s)
	return ""
}
