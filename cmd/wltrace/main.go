// Command wltrace inspects the built-in power traces and exports them
// as CSV so recorded traces can be compared or substituted.
//
// Usage:
//
//	wltrace -trace tr1                          # statistics
//	wltrace -trace tr2 -csv tr2.csv             # export
//	wltrace -load mytrace.csv                   # statistics of an external CSV
//	wltrace -gen "mean=8e-3,vol=0.9,dead=0.2"   # synthesize a custom RF trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"wlcache/internal/hostinfo"
	"wlcache/internal/power"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wltrace:", err)
		os.Exit(1)
	}
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wltrace", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		src  = fs.String("trace", "tr1", "built-in source: tr1, tr2, tr3, solar, thermal")
		csv  = fs.String("csv", "", "write the trace to this CSV file")
		load = fs.String("load", "", "analyze an external CSV trace instead")
		gen  = fs.String("gen", "", `synthesize a custom RF trace: "mean=10e-3,vol=0.5,dead=0.1,seed=7"`)
		ver  = fs.Bool("version", false, "print engine version and build info, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ver {
		fmt.Fprintln(stdout, hostinfo.Version("wltrace"))
		return nil
	}

	var tr *power.Trace
	switch {
	case *gen != "":
		t, err := genTrace(*gen)
		if err != nil {
			return err
		}
		tr = t
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		t, err := power.ReadCSV(f)
		if err != nil {
			return err
		}
		tr = t
	default:
		known := false
		for _, s := range power.Sources() {
			if s == power.Source(*src) {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("source %q has no trace", *src)
		}
		tr = power.Get(power.Source(*src))
	}

	mean := tr.Mean()
	peak, dead := 0.0, 0
	for _, p := range tr.Samples {
		if p > peak {
			peak = p
		}
		if p < 0.1*mean {
			dead++
		}
	}
	fmt.Fprintf(stdout, "trace %s: %d samples, %.1f us step, %.3f s loop\n",
		tr.Name, len(tr.Samples), float64(tr.Step)/1e6, float64(tr.Duration())/1e12)
	fmt.Fprintf(stdout, "  mean power %.2f mW, peak %.2f mW, dead (<10%% of mean) %.1f%%\n",
		mean*1e3, peak*1e3, 100*float64(dead)/float64(len(tr.Samples)))

	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %s\n", *csv)
	}
	return nil
}

// genTrace parses "key=value,..." synthesis parameters.
func genTrace(spec string) (*power.Trace, error) {
	mean, vol, dead := 10e-3, 0.5, 0.1
	seed := int64(7)
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -gen field %q", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -gen value %q: %w", kv, err)
		}
		switch k {
		case "mean":
			mean = f
		case "vol":
			vol = f
		case "dead":
			dead = f
		case "seed":
			seed = int64(f)
		default:
			return nil, fmt.Errorf("unknown -gen key %q", k)
		}
	}
	return power.SynthesizeRF("custom", seed, mean, vol, dead), nil
}
