// Command wlsim runs one benchmark on one cache design under one
// power trace and prints the full result.
//
// Usage:
//
//	wlsim -design wl -workload sha -trace tr1
//	wlsim -design nvsram -workload qsort -trace none -scale 4
//	wlsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"wlcache/internal/expt"
	"wlcache/internal/hostinfo"
	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlsim:", err)
		os.Exit(1)
	}
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wlsim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		design  = fs.String("design", "wl", "design kind: nocache, vcache-wt, wt-buffer, nvcache-wb, nvsram, nvsram-full, nvsram-practical, replaycache, wl, wl-fixed, wl-dyn")
		wl      = fs.String("workload", "sha", "benchmark name (see -list)")
		trace   = fs.String("trace", "tr1", "power source: none, tr1, tr2, tr3, solar, thermal")
		scale   = fs.Int("scale", 1, "input-size multiplier")
		maxline = fs.Int("maxline", 0, "override WL-Cache maxline (0 = default 6)")
		check   = fs.Bool("check", true, "verify crash-consistency invariants")
		tier    = fs.String("tier", "exact", "engine fidelity: exact (bit-exact) or fast (ε-bounded batched engine, DESIGN.md §16)")
		asJSON  = fs.Bool("json", false, "emit the result as JSON")
		list    = fs.Bool("list", false, "list benchmarks and exit")
		version = fs.Bool("version", false, "print engine version and build info, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, hostinfo.Version("wlsim"))
		return nil
	}

	if *list {
		fmt.Fprintln(stdout, "Benchmarks:")
		for _, w := range workload.All() {
			fmt.Fprintf(stdout, "  %-15s (%s)\n", w.Name, w.Suite)
		}
		return nil
	}

	cfg := sim.DefaultConfig()
	cfg.CheckInvariants = *check
	t, err := sim.ParseTier(*tier)
	if err != nil {
		return err
	}
	cfg.Tier = t
	opts := expt.Options{Maxline: *maxline}
	res, err := expt.Run(expt.Kind(*design), opts, *wl, *scale, power.Source(*trace), cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprint(stdout, res.String())
	return nil
}
