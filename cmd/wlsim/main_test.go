package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestListBenchmarks(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"adpcmdecode", "rijndael_e", "MediaBench", "MiBench"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("list missing %q", want)
		}
	}
}

func TestRunOneSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	var b strings.Builder
	err := run([]string{"-design", "wl", "-workload", "basicmath", "-trace", "tr1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exec time", "outages", "checksum"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, b.String())
		}
	}
}

func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	var b strings.Builder
	err := run([]string{"-design", "nvsram", "-workload", "basicmath", "-trace", "none", "-json"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	for _, key := range []string{"Design", "ExecTime", "Instructions", "Checksum"} {
		if _, ok := res[key]; !ok {
			t.Fatalf("JSON missing %q", key)
		}
	}
}

func TestUnknownWorkloadFails(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workload", "bogus"}, &b); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestUnknownDesignPanicsAsError(t *testing.T) {
	defer func() { recover() }() // NewDesign panics on config bugs
	var b strings.Builder
	_ = run([]string{"-design", "bogus", "-workload", "sha", "-trace", "none"}, &b)
}
