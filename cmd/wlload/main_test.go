package main

import (
	"io"
	"reflect"
	"testing"

	"wlcache/internal/expt"
)

func figNames() []string {
	var out []string
	for _, k := range expt.FigureKinds() {
		out = append(out, string(k))
	}
	return out
}

func TestOverlapKinds(t *testing.T) {
	figs := figNames()
	if len(figs) < 2 {
		t.Fatal("figure kinds too small for the test")
	}

	// No explicit designs: the subset is the full figure-kind set.
	if got := overlapKinds(nil); !reflect.DeepEqual(got, figs) {
		t.Fatalf("overlapKinds(nil) = %v, want %v", got, figs)
	}

	// Explicit designs intersecting the figure kinds: keep the overlap.
	primary := []string{figs[0], "nvsram", figs[1]}
	if got := overlapKinds(primary); !reflect.DeepEqual(got, []string{figs[0], figs[1]}) {
		t.Fatalf("overlapKinds(%v) = %v", primary, got)
	}

	// Disjoint designs: fall back to the primary's first design so the
	// two specs still share cells.
	if got := overlapKinds([]string{"nvsram", "nocache"}); !reflect.DeepEqual(got, []string{"nvsram"}) {
		t.Fatalf("overlapKinds(disjoint) = %v, want [nvsram]", got)
	}
}

func TestSplitCSV(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{" a , b ,, c ", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		if got := splitCSV(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitCSV(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBuildSpecsOverlap(t *testing.T) {
	specs := buildSpecs("", "adpcmencode", "none")
	if len(specs) != 2 {
		t.Fatalf("%d specs, want 2", len(specs))
	}
	if specs[0].NumCells() <= specs[1].NumCells() {
		t.Fatalf("subset (%d cells) not smaller than primary (%d)",
			specs[1].NumCells(), specs[0].NumCells())
	}
}

func TestRunRejectsBadTargetFlags(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-addr", "http://x", "-serve-bin", "./wlserve"},
	} {
		if code, err := run(args, io.Discard); err == nil || code != 1 {
			t.Errorf("run(%v) = %d, %v; want usage error", args, code, err)
		}
	}
}
