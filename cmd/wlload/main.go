// Command wlload is the wlserve load harness: N concurrent clients
// submit overlapping sweep specs at a target rate, /metrics is scraped
// (and validated as Prometheus text) between phases, and the run is
// reported as a wlload/v1 JSON document — throughput, submit→done
// p50/p95/p99 latency, dedup ratio, 429 shed rate.
//
// Usage:
//
//	wlload -addr http://127.0.0.1:8080 -clients 4 -requests 8
//	wlload -serve-bin ./wlserve -report load.json -trace trace.json
//	wlobs summary load.json
//
// -serve-bin spawns a private wlserve (temp data dir, random port),
// runs the load against it and tears it down. -max-p99 turns the run
// into a gate: exit 2 when p99 exceeds the bound or any submission
// answered 5xx — the CI load-smoke contract.
//
// Exit codes: 0 ok, 1 usage or infrastructure failure, 2 gate
// violation.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"wlcache/internal/expt"
	"wlcache/internal/hostinfo"
	"wlcache/internal/load"
	"wlcache/internal/serve"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlload:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wlload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", "", "target server root, e.g. http://127.0.0.1:8080 (or use -serve-bin)")
		serveBin = fs.String("serve-bin", "", "spawn this wlserve binary against a temp data dir and load-test it")
		clients  = fs.Int("clients", 4, "concurrent submitters")
		requests = fs.Int("requests", 0, "submissions per phase (0 = 2×clients)")
		phases   = fs.Int("phases", 1, "request batches, with a /metrics scrape between each")
		rate     = fs.Float64("rate", 0, "aggregate submissions per second (0 = unpaced)")
		designs  = fs.String("designs", "", "comma-separated design kinds for the primary spec (default: all)")
		wls      = fs.String("workloads", "", "comma-separated workloads (default: golden pair)")
		traces   = fs.String("traces", "", "comma-separated power traces (default: golden trio)")
		report   = fs.String("report", "", "write the wlload/v1 JSON report here")
		traceOut = fs.String("trace", "", "fetch the first sweep's Chrome trace_event export here")
		maxP99   = fs.Duration("max-p99", 0, "gate: exit 2 when submit→done p99 exceeds this (0 = no gate)")
		timeout  = fs.Duration("timeout", 10*time.Minute, "whole-run deadline")
		version  = fs.Bool("version", false, "print engine version and build info, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *version {
		fmt.Fprintln(stdout, hostinfo.Version("wlload"))
		return 0, nil
	}
	if (*addr == "") == (*serveBin == "") {
		return 1, fmt.Errorf("exactly one of -addr or -serve-bin is required")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	base := *addr
	if *serveBin != "" {
		proc, url, dir, err := startServer(*serveBin)
		if err != nil {
			return 1, err
		}
		defer os.RemoveAll(dir)
		defer stopServer(proc)
		base = url
	}

	cfg := load.Config{
		Base:     base,
		Clients:  *clients,
		Requests: *requests,
		Phases:   *phases,
		Rate:     *rate,
		Specs:    buildSpecs(*designs, *wls, *traces),
	}
	cli := &serve.Client{Base: base}
	if err := cli.WaitReady(ctx); err != nil {
		return 1, err
	}

	rep, err := load.Run(ctx, cfg)
	if err != nil {
		return 1, err
	}
	fmt.Fprint(stdout, load.Summarize(rep))

	if *report != "" {
		if err := writeJSON(*report, rep); err != nil {
			return 1, err
		}
		fmt.Fprintf(stdout, "report: %s\n", *report)
	}
	if *traceOut != "" && len(rep.Sweeps) > 0 {
		if err := fetchTrace(ctx, base, rep.Sweeps[0], *traceOut); err != nil {
			return 1, err
		}
		fmt.Fprintf(stdout, "trace: %s (sweep %s)\n", *traceOut, rep.Sweeps[0])
	}

	if rep.HTTP5xx > 0 {
		return 2, fmt.Errorf("gate: %d submission(s) answered 5xx", rep.HTTP5xx)
	}
	if *maxP99 > 0 && rep.Latency.P99MS > float64(maxP99.Milliseconds()) {
		return 2, fmt.Errorf("gate: p99 %.1fms exceeds bound %s", rep.Latency.P99MS, *maxP99)
	}
	if rep.Completed == 0 {
		return 2, fmt.Errorf("gate: no sweep completed (%d submitted, %d shed, %d failed)",
			rep.Submitted, rep.Shed, rep.Failed)
	}
	return 0, nil
}

// buildSpecs returns the overlapping spec pair: the primary spec from
// the dimension flags, alternated with a figure-kinds subset so
// concurrent submissions intersect and exercise the dedup path.
func buildSpecs(designs, wls, traces string) []serve.Spec {
	primary := serve.Spec{
		Designs:   splitCSV(designs),
		Workloads: splitCSV(wls),
		Traces:    splitCSV(traces),
	}
	subset := primary
	subset.Designs = overlapKinds(primary.Designs)
	return []serve.Spec{primary, subset}
}

// overlapKinds picks the subset spec's designs: the figure kinds,
// intersected with an explicit design list when one was given.
func overlapKinds(primary []string) []string {
	var figs []string
	for _, k := range expt.FigureKinds() {
		figs = append(figs, string(k))
	}
	if len(primary) == 0 {
		return figs
	}
	have := make(map[string]bool, len(primary))
	for _, d := range primary {
		have[d] = true
	}
	var out []string
	for _, f := range figs {
		if have[f] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		// Disjoint: fall back to the primary's first design so the two
		// specs still overlap.
		out = primary[:1]
	}
	return out
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// startServer spawns the wlserve binary on a random port with a fresh
// temp data dir, returning once it prints its listen address.
func startServer(bin string) (*exec.Cmd, string, string, error) {
	dir, err := os.MkdirTemp("", "wlload-data-*")
	if err != nil {
		return nil, "", "", err
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dir)
	cmd.Stderr = io.Discard
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", "", err
	}
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return nil, "", "", err
	}
	sc := bufio.NewScanner(pipe)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if a, ok := strings.CutPrefix(line, "listening on "); ok {
			go io.Copy(io.Discard, pipe) // keep the server's stdout drained
			return cmd, "http://" + a, dir, nil
		}
	}
	err = cmd.Wait()
	os.RemoveAll(dir)
	return nil, "", "", fmt.Errorf("server exited before listening: %v", err)
}

// stopServer drains the spawned server: SIGTERM, then SIGKILL after a
// grace period.
func stopServer(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		_, _ = cmd.Process.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		<-done
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fetchTrace saves GET /v1/sweeps/{id}/trace to a file.
func fetchTrace(ctx context.Context, base, sweepID, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/sweeps/"+sweepID+"/trace", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace %s: %s", sweepID, resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
