// Benchmarks that regenerate every table and figure of the paper
// (BenchmarkFig4 ... BenchmarkAdaptStats run the corresponding
// experiment on a reduced benchmark subset; pass -wlbench.full to use
// all 23 workloads), plus microbenchmarks of the core structures and
// ablation benches for the design choices DESIGN.md calls out.
package wlcache_test

import (
	"flag"
	"testing"

	"wlcache"
	"wlcache/internal/core"
	"wlcache/internal/expt"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/obs"
	"wlcache/internal/power"
	"wlcache/internal/sim"
)

var fullSuite = flag.Bool("wlbench.full", false, "run figure benches on all 23 workloads")

func benchCtx() expt.Context {
	if *fullSuite {
		return expt.Context{}
	}
	return expt.Context{Workloads: []string{"adpcmencode", "sha", "qsort", "susanedges"}}
}

func benchExperiment(b *testing.B, id string) {
	e, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one bench per paper table/figure ---

func BenchmarkTable1(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkHWCost(b *testing.B)      { benchExperiment(b, "hwcost") }
func BenchmarkFig4(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)       { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)       { benchExperiment(b, "fig8b") }
func BenchmarkFig9(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10a(b *testing.B)      { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B)      { benchExperiment(b, "fig10b") }
func BenchmarkFig11(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13a(b *testing.B)      { benchExperiment(b, "fig13a") }
func BenchmarkFig13b(b *testing.B)      { benchExperiment(b, "fig13b") }
func BenchmarkAdaptStats(b *testing.B)  { benchExperiment(b, "adaptstats") }
func BenchmarkSec33(b *testing.B)       { benchExperiment(b, "sec33") }
func BenchmarkNVSRAMVars(b *testing.B)  { benchExperiment(b, "nvsramvariants") }
func BenchmarkICacheModel(b *testing.B) { benchExperiment(b, "icache") }
func BenchmarkRelatedWork(b *testing.B) { benchExperiment(b, "related") }

// --- microbenchmarks of the core structures ---

// BenchmarkWLCacheHit measures the store-hit fast path of the design
// model (simulator overhead excluded).
func BenchmarkWLCacheHit(b *testing.B) {
	nvm := wlcache.NewNVM()
	c := wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
	now := int64(0)
	_, now, _ = c.Access(now, isa.OpStore, 0x1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, done, _ := c.Access(now, isa.OpStore, 0x1000, uint32(i))
		now = done
	}
}

// BenchmarkWLCacheMissEvict measures the miss+evict slow path.
func BenchmarkWLCacheMissEvict(b *testing.B) {
	nvm := wlcache.NewNVM()
	c := wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
	now := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint32(0x1000 + (i%4096)*64) // sweep lines, constant conflict
		_, done, _ := c.Access(now, isa.OpStore, addr, uint32(i))
		now = done
	}
}

// BenchmarkWLCacheCheckpoint measures a full JIT checkpoint with a
// saturated DirtyQueue.
func BenchmarkWLCacheCheckpoint(b *testing.B) {
	nvm := wlcache.NewNVM()
	cfg := wlcache.DefaultCacheConfig()
	cfg.Adaptive.Mode = core.AdaptOff
	c := wlcache.NewWLCache(cfg, nvm)
	b.ReportAllocs()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 6; j++ {
			_, done, _ := c.Access(now, isa.OpStore, uint32(0x1000+j*64), uint32(i))
			now = done
		}
		done, _ := c.Checkpoint(now)
		now, _ = c.Restore(done)
	}
}

// BenchmarkSimulatorThroughput measures end-to-end simulated
// instructions per second of the full stack under power failures.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nvm := wlcache.NewNVM()
		c := wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
		cfg := wlcache.DefaultSimConfig()
		cfg.Trace = wlcache.Trace(wlcache.Trace1)
		s, err := wlcache.NewSimulator(cfg, c, nvm)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run("bench", func(m wlcache.Machine) uint32 {
			h := uint32(0)
			for j := 0; j < 50000; j++ {
				a := uint32(0x1000 + (j%2000)*4)
				m.Store32(a, uint32(j))
				h ^= m.Load32(a)
				m.Compute(8)
			}
			return h
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions), "sim-instrs/op")
	}
}

// BenchmarkTraceIntegrate measures power-trace integration.
func BenchmarkTraceIntegrate(b *testing.B) {
	tr := power.Get(power.Trace1)
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += tr.Integrate(int64(i)*1000, int64(i)*1000+100_000)
	}
	_ = acc
}

// BenchmarkNVMLineWrite measures the memory model.
func BenchmarkNVMLineWrite(b *testing.B) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	line := make([]uint32, 16)
	b.ReportAllocs()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		done, _ := nvm.WriteLine(now, uint32((i%65536)*64), line)
		now = done
	}
}

// --- hot-path benches (the PR-5 optimization targets) ---

// BenchmarkTracedRun measures one full sweep cell — the wl design
// running sha under the home RF trace — exactly as expt.runCells
// executes it. This is the unit every figure sweep repeats hundreds of
// times, so it is the headline number for hot-path work.
func BenchmarkTracedRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := expt.Run(expt.KindWL, expt.Options{}, "sha", 1, power.Trace1, sim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions)*float64(b.N)/b.Elapsed().Seconds(), "sim-instrs/sec")
	}
}

// BenchmarkTracedRunFast is BenchmarkTracedRun at sim.TierFast: the
// same cell under the ε-bounded batched engine (DESIGN.md §16). The
// ratio to BenchmarkTracedRun is the fast tier's headline speedup.
func BenchmarkTracedRunFast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Tier = sim.TierFast
		res, err := expt.Run(expt.KindWL, expt.Options{}, "sha", 1, power.Trace1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions)*float64(b.N)/b.Elapsed().Seconds(), "sim-instrs/sec")
	}
}

// BenchmarkTracedRunObs is BenchmarkTracedRun with the observability
// recorder attached: the gap to BenchmarkTracedRun is the obs tax.
func BenchmarkTracedRunObs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Obs = obs.NewRecorder(obs.RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 1<<16)
		res, err := expt.Run(expt.KindWL, expt.Options{}, "sha", 1, power.Trace1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions)*float64(b.N)/b.Elapsed().Seconds(), "sim-instrs/sec")
	}
}

// BenchmarkTracedRunObsSampled is BenchmarkTracedRunObs with op-context
// capture sampled down to every 64th memory op: the dominant obs cost
// (the runtime.Callers walk behind each op's PC) is gated by
// WantsOpContext, so this bounds the overhead of keeping the recorder
// attached while sampling hotspots approximately.
func BenchmarkTracedRunObsSampled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Obs = obs.NewRecorder(obs.RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 1<<16)
		cfg.Obs.SetOpContextSampling(64)
		res, err := expt.Run(expt.KindWL, expt.Options{}, "sha", 1, power.Trace1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions)*float64(b.N)/b.Elapsed().Seconds(), "sim-instrs/sec")
	}
}

// BenchmarkIntegrateShort measures the simulator's own Integrate
// pattern: monotone sub-segment windows (~1 ns each) sweeping the
// trace, which is what advance() issues on every instruction.
func BenchmarkIntegrateShort(b *testing.B) {
	tr := power.Get(power.Trace1)
	period := tr.Step * int64(len(tr.Samples))
	b.ReportAllocs()
	var acc float64
	now := int64(0)
	for i := 0; i < b.N; i++ {
		acc += tr.Integrate(now, now+1000)
		now += 1000
		if now > 4*period {
			now = 0
		}
	}
	_ = acc
}

// BenchmarkIntegrateLong measures windows spanning many full trace
// periods — O(n) per call before the prefix-sum table, O(1) after.
func BenchmarkIntegrateLong(b *testing.B) {
	tr := power.Get(power.Trace1)
	period := tr.Step * int64(len(tr.Samples))
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		from := int64(i%1000) * 777
		acc += tr.Integrate(from, from+3*period+12345)
	}
	_ = acc
}

// BenchmarkTimeToHarvest measures outage-recharge solving: find when
// the capacitor has harvested a JIT reserve's worth of energy.
func BenchmarkTimeToHarvest(b *testing.B) {
	tr := power.Get(power.Trace1)
	period := tr.Step * int64(len(tr.Samples))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		from := int64(i%4096) * 1_000_000
		if _, ok := tr.TimeToHarvest(from, 3e-6); !ok {
			b.Fatal("no harvest")
		}
		_ = period
	}
}

// BenchmarkStoreWords measures word-granularity Store access with the
// locality the simulator actually has (runs within a page).
func BenchmarkStoreWords(b *testing.B) {
	st := mem.NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := uint32(0x1000 + (i%1024)*4)
		st.Write(addr, uint32(i))
		if st.Read(addr) != uint32(i) {
			b.Fatal("readback")
		}
	}
}

// BenchmarkStoreLine measures line-granularity Store access (the NVM
// image path under every cache fill and write-back).
func BenchmarkStoreLine(b *testing.B) {
	st := mem.NewStore()
	line := make([]uint32, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := uint32((i % 4096) * 64)
		st.WriteLine(addr, line)
		st.ReadLine(addr, line)
	}
}

// --- ablation benches (design-choice sensitivity) ---

// runOnce executes one (design, workload, trace) cell for ablations.
func runOnce(b *testing.B, kind expt.Kind, opts expt.Options, cfgMut func(*sim.Config)) int64 {
	b.Helper()
	cfg := sim.DefaultConfig()
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	res, err := expt.Run(kind, opts, "sha", 1, power.Trace1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.ExecTime
}

// BenchmarkAblationWaterlineGap sweeps the maxline-waterline gap (the
// ILP window, §3.1): gap 1 is the paper default.
func BenchmarkAblationWaterlineGap(b *testing.B) {
	for _, gap := range []int{1, 2, 3, 5} {
		gap := gap
		b.Run(map[bool]string{true: "gap1-default", false: "gap" + string(rune('0'+gap))}[gap == 1], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nvm := wlcache.NewNVM()
				cfg := wlcache.DefaultCacheConfig()
				cfg.Maxline = 6
				cfg.Waterline = 6 - gap
				if cfg.Waterline < 1 {
					cfg.Waterline = 1
				}
				cfg.Adaptive.Mode = core.AdaptOff
				c := wlcache.NewWLCache(cfg, nvm)
				simCfg := wlcache.DefaultSimConfig()
				simCfg.Trace = wlcache.Trace(wlcache.Trace1)
				s, err := wlcache.NewSimulator(simCfg, c, nvm)
				if err != nil {
					b.Fatal(err)
				}
				w, _ := wlcache.WorkloadByName("sha")
				res, err := s.Run(w.Name, func(m wlcache.Machine) uint32 { return w.Run(m, 1) })
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Seconds()*1e3, "exec-ms")
			}
		})
	}
}

// BenchmarkAblationDQPolicy compares FIFO and LRU DirtyQueue cleaning.
func BenchmarkAblationDQPolicy(b *testing.B) {
	for _, pol := range []core.DQPolicy{core.DQFIFO, core.DQLRU} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := runOnce(b, expt.KindWL, expt.Options{DQPolicy: pol}, nil)
				b.ReportMetric(float64(t)/1e9, "exec-ms")
			}
		})
	}
}

// BenchmarkAblationCheckpointMargin sweeps the reserve margin.
func BenchmarkAblationCheckpointMargin(b *testing.B) {
	for _, m := range []float64{1.0, 1.5, 2.0} {
		m := m
		b.Run(map[float64]string{1.0: "m1.0", 1.5: "m1.5", 2.0: "m2.0"}[m], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := runOnce(b, expt.KindWL, expt.Options{}, func(c *sim.Config) { c.CheckpointMargin = m })
				b.ReportMetric(float64(t)/1e9, "exec-ms")
			}
		})
	}
}

// BenchmarkAblationSoftwareJIT compares NVFF-based JIT checkpointing
// with QuickRecall-style software checkpointing (§2.1).
func BenchmarkAblationSoftwareJIT(b *testing.B) {
	for _, sw := range []bool{false, true} {
		sw := sw
		b.Run(map[bool]string{false: "nvff", true: "software"}[sw], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := runOnce(b, expt.KindWL, expt.Options{SoftwareJIT: sw}, nil)
				b.ReportMetric(float64(t)/1e9, "exec-ms")
			}
		})
	}
}

// BenchmarkAblationDQCap sweeps the DirtyQueue hardware size.
func BenchmarkAblationDQCap(b *testing.B) {
	for _, cap := range []int{6, 8, 12, 16} {
		cap := cap
		b.Run(map[int]string{6: "dq6", 8: "dq8-default", 12: "dq12", 16: "dq16"}[cap], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := runOnce(b, expt.KindWL, expt.Options{DQCap: cap, Maxline: 6}, nil)
				b.ReportMetric(float64(t)/1e9, "exec-ms")
			}
		})
	}
}
