package wlcache_test

import (
	"fmt"

	"wlcache"
)

// ExampleNewWLCache runs a small program on WL-Cache with
// uninterrupted power and prints its deterministic result.
func ExampleNewWLCache() {
	nvm := wlcache.NewNVM()
	design := wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
	sim, err := wlcache.NewSimulator(wlcache.DefaultSimConfig(), design, nvm)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run("sum", func(m wlcache.Machine) uint32 {
		for i := uint32(0); i < 100; i++ {
			m.Store32(0x1000+i*4, i*i)
			m.Compute(4)
		}
		sum := uint32(0)
		for i := uint32(0); i < 100; i++ {
			sum += m.Load32(0x1000 + i*4)
			m.Compute(2)
		}
		return sum
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("checksum %d after %d instructions, %d outages\n",
		res.Checksum, res.Instructions, res.Outages)
	// Output: checksum 328350 after 800 instructions, 0 outages
}

// ExampleWorkloadByName runs one of the paper's benchmarks under the
// home RF power trace and reports how many power failures it
// survived with a bit-exact result.
func ExampleWorkloadByName() {
	w, ok := wlcache.WorkloadByName("basicmath")
	if !ok {
		panic("unknown workload")
	}
	nvm := wlcache.NewNVM()
	design := wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
	cfg := wlcache.DefaultSimConfig()
	cfg.Trace = wlcache.Trace(wlcache.Trace1)
	cfg.CheckInvariants = true // audit crash consistency as it runs
	sim, err := wlcache.NewSimulator(cfg, design, nvm)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(w.Name, func(m wlcache.Machine) uint32 { return w.Run(m, 1) })
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s finished with checksum %#08x; crash consistency held across every outage\n",
		w.Name, res.Checksum)
	// Output: basicmath finished with checksum 0xaec24eb0; crash consistency held across every outage
}

// ExampleNewNVSRAM compares WL-Cache against the state-of-the-art
// baseline on the same workload and trace.
func ExampleNewNVSRAM() {
	run := func(build func(*wlcache.NVM) wlcache.Design) wlcache.Result {
		nvm := wlcache.NewNVM()
		cfg := wlcache.DefaultSimConfig()
		cfg.Trace = wlcache.Trace(wlcache.Trace2)
		sim, err := wlcache.NewSimulator(cfg, build(nvm), nvm)
		if err != nil {
			panic(err)
		}
		w, _ := wlcache.WorkloadByName("adpcmencode")
		res, err := sim.Run(w.Name, func(m wlcache.Machine) uint32 { return w.Run(m, 1) })
		if err != nil {
			panic(err)
		}
		return res
	}
	wl := run(func(n *wlcache.NVM) wlcache.Design {
		return wlcache.NewWLCache(wlcache.DefaultCacheConfig(), n)
	})
	base := run(func(n *wlcache.NVM) wlcache.Design {
		return wlcache.NewNVSRAM(wlcache.DefaultGeometry(), n)
	})
	fmt.Printf("same result: %v; WL-Cache faster: %v\n",
		wl.Checksum == base.Checksum, wl.ExecTime < base.ExecTime)
	// Output: same result: true; WL-Cache faster: true
}
