package wlcache_test

import (
	"testing"

	"wlcache"
)

// TestPublicAPIQuickstart exercises the facade the README documents.
func TestPublicAPIQuickstart(t *testing.T) {
	nvm := wlcache.NewNVM()
	design := wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
	cfg := wlcache.DefaultSimConfig()
	cfg.Trace = wlcache.Trace(wlcache.Trace1)
	cfg.CheckInvariants = true
	s, err := wlcache.NewSimulator(cfg, design, nvm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("api", func(m wlcache.Machine) uint32 {
		var h uint32
		for i := 0; i < 5000; i++ {
			a := uint32(0x1000 + (i%512)*4)
			m.Store32(a, uint32(i))
			h ^= m.Load32(a)
			m.Compute(10)
		}
		return h
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.ExecTime == 0 {
		t.Fatal("empty result")
	}
}

// TestPublicAPIDesigns builds every exported design constructor and
// runs a short program on each.
func TestPublicAPIDesigns(t *testing.T) {
	geo := wlcache.DefaultGeometry()
	builders := map[string]func(*wlcache.NVM) wlcache.Design{
		"wl":          func(n *wlcache.NVM) wlcache.Design { return wlcache.NewWLCache(wlcache.DefaultCacheConfig(), n) },
		"nvsram":      func(n *wlcache.NVM) wlcache.Design { return wlcache.NewNVSRAM(geo, n) },
		"wt":          func(n *wlcache.NVM) wlcache.Design { return wlcache.NewVCacheWT(geo, n) },
		"nvcache":     func(n *wlcache.NVM) wlcache.Design { return wlcache.NewNVCacheWB(geo, n) },
		"replay":      func(n *wlcache.NVM) wlcache.Design { return wlcache.NewReplayCache(geo, n) },
		"nocache":     func(n *wlcache.NVM) wlcache.Design { return wlcache.NewNoCache(n) },
		"broken":      func(n *wlcache.NVM) wlcache.Design { return wlcache.NewBrokenVolatileWB(geo, n) },
		"nvsram-full": func(n *wlcache.NVM) wlcache.Design { return wlcache.NewNVSRAMFull(geo, n) },
		"nvsram-prac": func(n *wlcache.NVM) wlcache.Design { return wlcache.NewNVSRAMPractical(geo, n) },
		"wt-buffer":   func(n *wlcache.NVM) wlcache.Design { return wlcache.NewWTBuffer(geo, n) },
	}
	var sums []uint32
	for name, build := range builders {
		nvm := wlcache.NewNVM()
		s, err := wlcache.NewSimulator(wlcache.DefaultSimConfig(), build(nvm), nvm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := s.Run(name, func(m wlcache.Machine) uint32 {
			h := uint32(0)
			for i := 0; i < 2000; i++ {
				a := uint32(0x2000 + (i%128)*4)
				m.Store32(a, uint32(i)^h)
				h = m.Load32(a) ^ h<<1
				m.Compute(5)
			}
			return h
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sums = append(sums, res.Checksum)
	}
	for _, s := range sums[1:] {
		if s != sums[0] {
			t.Fatal("designs disagree on the program result (without power failures!)")
		}
	}
}

// TestPublicAPIWorkloads lists and runs a paper benchmark.
func TestPublicAPIWorkloads(t *testing.T) {
	if len(wlcache.Workloads()) != 23 {
		t.Fatalf("Workloads() = %d entries", len(wlcache.Workloads()))
	}
	w, ok := wlcache.WorkloadByName("dijkstra")
	if !ok {
		t.Fatal("dijkstra missing")
	}
	nvm := wlcache.NewNVM()
	s, err := wlcache.NewSimulator(wlcache.DefaultSimConfig(), wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(w.Name, func(m wlcache.Machine) uint32 { return w.Run(m, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum == 0 {
		t.Fatal("suspicious zero checksum")
	}
}

// TestTraceAccessors covers the trace facade.
func TestTraceAccessors(t *testing.T) {
	if wlcache.Trace(wlcache.NoFailures) != nil {
		t.Fatal("NoFailures must have nil trace")
	}
	for _, src := range []wlcache.Source{wlcache.Trace1, wlcache.Trace2, wlcache.Trace3, wlcache.Solar, wlcache.Thermal} {
		if tr := wlcache.Trace(src); tr == nil || tr.Mean() <= 0 {
			t.Fatalf("trace %s unusable", src)
		}
	}
}
