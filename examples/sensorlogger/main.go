// Sensor-logger example: a user-authored intermittent application (not
// one of the paper's 23 benchmarks) built directly against the public
// Machine API — the kind of battery-less IoT node the paper's
// introduction motivates.
//
// The node samples a simulated sensor, smooths it with an exponential
// moving average, appends records to a ring-buffer log in NVM-backed
// memory, and maintains a CRC over the log. It runs to completion
// across dozens of power failures on WL-Cache; the CRC verifies that
// no committed record was lost or torn.
package main

import (
	"fmt"
	"log"

	"wlcache"
)

const (
	logBase    = 0x40000
	logRecords = 4096
	recWords   = 4 // {seq, raw, ema, crc-so-far}
	samples    = 20000
)

// sensorNode is the application main loop.
func sensorNode(m wlcache.Machine) uint32 {
	// Header: [0] next sequence number, [1] running CRC.
	head := uint32(logBase)
	ema := uint32(512 << 8) // Q8 moving average
	state := uint32(0xc0ffee)
	crc := uint32(0xffffffff)
	for i := 0; i < samples; i++ {
		// "Read the sensor": a deterministic noisy sawtooth.
		state = state*1103515245 + 12345
		raw := (uint32(i)%1024 + state%64) & 0x3ff
		// Exponential moving average in fixed point (alpha = 1/16).
		ema += (raw << 8) / 16
		ema -= ema / 16
		m.Compute(24)

		// Append a record to the ring log.
		seq := m.Load32(head)
		slot := logBase + 16 + (seq%logRecords)*recWords*4
		m.Store32(slot, seq)
		m.Store32(slot+4, raw)
		m.Store32(slot+8, ema)
		crc = crcStep(crc, seq^raw^ema)
		m.Store32(slot+12, crc)
		m.Store32(head, seq+1)
		m.Store32(head+4, crc)
		m.Compute(16)
	}

	// Verification sweep: recompute the CRC from the persisted log
	// tail (the final logRecords records) and compare with the header.
	seq := m.Load32(head)
	first := uint32(0)
	if seq > logRecords {
		first = seq - logRecords
	}
	vcrc := uint32(0)
	for s := first; s < seq; s++ {
		slot := logBase + 16 + (s%logRecords)*recWords*4
		vcrc = m.Load32(slot + 12) // walk the chained CRC
		m.Compute(6)
	}
	stored := m.Load32(head + 4)
	if vcrc != stored {
		fmt.Printf("  log verification FAILED: chained CRC %#08x, header CRC %#08x\n", vcrc, stored)
	} else {
		fmt.Printf("  log verified: %d records, chained CRC %#08x\n", seq, vcrc)
	}
	return stored ^ seq
}

// crcStep folds one word into a CRC-32-like register (Castagnoli-ish
// polynomial, bitwise).
func crcStep(crc, v uint32) uint32 {
	crc ^= v
	for b := 0; b < 8; b++ {
		if crc&1 != 0 {
			crc = crc>>1 ^ 0x82f63b78
		} else {
			crc >>= 1
		}
	}
	return crc
}

func main() {
	for _, src := range []wlcache.Source{wlcache.NoFailures, wlcache.Trace1, wlcache.Trace3} {
		nvm := wlcache.NewNVM()
		design := wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
		cfg := wlcache.DefaultSimConfig()
		cfg.Trace = wlcache.Trace(src)
		cfg.CheckInvariants = true
		s, err := wlcache.NewSimulator(cfg, design, nvm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sensor logger on WL-Cache, power source %q:\n", src)
		res, err := s.Run("sensorlogger", sensorNode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d outages, exec %.3f ms, energy %.1f uJ, checksum %#08x\n\n",
			res.Outages, res.Seconds()*1e3, res.Energy.Total()*1e6, res.Checksum)
	}
}
