// Crash-consistency demo: why energy harvesting systems cannot simply
// use a volatile write-back cache, and how WL-Cache's bounded
// DirtyQueue fixes it.
//
// The demo runs a ledger workload (read-modify-write transfers over a
// table of balances, then an audit) under frequent power failures on
// three configurations:
//
//  1. a volatile write-back cache with NO checkpointing (the broken
//     strawman from the paper's introduction): dirty lines die with
//     the power and the audit fails;
//  2. WL-Cache: the DirtyQueue bounds dirtiness and the JIT
//     checkpoint flushes it, so the ledger survives every outage;
//  3. the NVSRAM(ideal) baseline for reference.
package main

import (
	"fmt"
	"log"

	"wlcache"
)

const (
	accounts = 512
	tableAt  = 0x20000
	updates  = 60000
)

// ledger posts pseudo-random transfers between accounts and returns
// the final table checksum. Money is conserved, so the audit total
// must equal accounts*1000 no matter how often the power failed.
func ledger(m wlcache.Machine) uint32 {
	for i := 0; i < accounts; i++ {
		m.Store32(uint32(tableAt+i*4), 1000)
		m.Compute(3)
	}
	state := uint32(0x1ed6e5)
	for n := 0; n < updates; n++ {
		state = state*1664525 + 1013904223
		from := (state >> 8) % accounts
		to := (state >> 20) % accounts
		fb := m.Load32(uint32(tableAt + from*4))
		tb := m.Load32(uint32(tableAt + to*4))
		if fb > 0 && from != to {
			m.Store32(uint32(tableAt+from*4), fb-1)
			m.Store32(uint32(tableAt+to*4), tb+1)
		}
		m.Compute(12)
	}
	var sum, h uint32
	for i := 0; i < accounts; i++ {
		v := m.Load32(uint32(tableAt + i*4))
		sum += v
		h = (h ^ v) * 16777619
		m.Compute(4)
	}
	status := "OK"
	if sum != accounts*1000 {
		status = "*** CORRUPT ***"
	}
	fmt.Printf("    audit: total balance %d (expect %d)  %s\n", sum, accounts*1000, status)
	return h
}

func main() {
	fmt.Println("1) volatile write-back cache WITHOUT JIT checkpointing (broken strawman):")
	runLedger(func(nvm *wlcache.NVM) wlcache.Design {
		return wlcache.NewBrokenVolatileWB(wlcache.DefaultGeometry(), nvm)
	})

	fmt.Println("2) WL-Cache (bounded DirtyQueue + JIT checkpoint):")
	runLedger(func(nvm *wlcache.NVM) wlcache.Design {
		return wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
	})

	fmt.Println("3) NVSRAM(ideal) baseline:")
	runLedger(func(nvm *wlcache.NVM) wlcache.Design {
		return wlcache.NewNVSRAM(wlcache.DefaultGeometry(), nvm)
	})
}

func runLedger(build func(*wlcache.NVM) wlcache.Design) {
	nvm := wlcache.NewNVM()
	design := build(nvm)
	cfg := wlcache.DefaultSimConfig()
	cfg.Trace = wlcache.Trace(wlcache.Trace2)
	// Invariant checking would abort the broken design at its first
	// outage; to *demonstrate* the corruption we run unchecked and let
	// the audit discover it.
	cfg.CheckInvariants = false
	s, err := wlcache.NewSimulator(cfg, design, nvm)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run("ledger", ledger)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    design %s: outages %d, exec %.3f ms, checksum %#08x\n\n",
		res.Design, res.Outages, res.Seconds()*1e3, res.Checksum)
}
