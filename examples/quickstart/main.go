// Quickstart: run one of the paper's benchmarks on WL-Cache under the
// home RF power trace and compare it with the NVSRAM(ideal) baseline.
package main

import (
	"fmt"
	"log"

	"wlcache"
)

func main() {
	// The sha benchmark under Power Trace 1, on WL-Cache.
	wl, ok := wlcache.WorkloadByName("sha")
	if !ok {
		log.Fatal("sha workload missing")
	}

	run := func(build func(nvm *wlcache.NVM) wlcache.Design) wlcache.Result {
		nvm := wlcache.NewNVM()
		design := build(nvm)
		cfg := wlcache.DefaultSimConfig()
		cfg.Trace = wlcache.Trace(wlcache.Trace1)
		cfg.CheckInvariants = true // verify crash consistency as we go
		s, err := wlcache.NewSimulator(cfg, design, nvm)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(wl.Name, func(m wlcache.Machine) uint32 { return wl.Run(m, 1) })
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	wlRes := run(func(nvm *wlcache.NVM) wlcache.Design {
		return wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
	})
	baseRes := run(func(nvm *wlcache.NVM) wlcache.Design {
		return wlcache.NewNVSRAM(wlcache.DefaultGeometry(), nvm)
	})

	fmt.Println(wlRes)
	fmt.Println(baseRes)
	fmt.Printf("WL-Cache speedup over NVSRAM(ideal): %.2fx\n",
		float64(baseRes.ExecTime)/float64(wlRes.ExecTime))
	if wlRes.Checksum == baseRes.Checksum {
		fmt.Println("checksums match: both designs computed identical results across power failures")
	} else {
		fmt.Println("CHECKSUM MISMATCH — crash consistency violated!")
	}
}
