// Adaptive-threshold demo (§4 of the paper): watch WL-Cache's runtime
// system move maxline/waterline (and with them Vbackup) as the energy
// source's quality changes, and compare static, adaptive and dynamic
// threshold management across the RF and solar traces.
package main

import (
	"fmt"
	"log"

	"wlcache"
	"wlcache/internal/core"
	"wlcache/internal/energy"
)

func main() {
	wl, _ := wlcache.WorkloadByName("susanedges")

	fmt.Println("Threshold management comparison on", wl.Name)
	fmt.Printf("%-8s %12s %12s %12s\n", "trace", "static(6)", "adaptive", "dynamic")
	for _, src := range []wlcache.Source{wlcache.Trace1, wlcache.Trace2, wlcache.Trace3, wlcache.Solar, wlcache.Thermal} {
		var times [3]float64
		var notes [3]string
		for i, mode := range []core.AdaptiveMode{core.AdaptOff, core.AdaptStatic, core.AdaptDynamic} {
			res := run(wl, src, mode)
			times[i] = res.Seconds()
			notes[i] = fmt.Sprintf("%d cfg", res.Extra.Reconfigs)
		}
		fmt.Printf("%-8s %9.3fms %9.3fms %9.3fms   (reconfigs: %s / %s / %s)\n",
			src, times[0]*1e3, times[1]*1e3, times[2]*1e3, notes[0], notes[1], notes[2])
	}

	// Show the Vbackup a given maxline implies (§5.5).
	fmt.Println("\nVbackup as a function of maxline (1 uF capacitor):")
	simCfg := wlcache.DefaultSimConfig()
	for ml := 2; ml <= 8; ml++ {
		reserve := energy.DefaultJITCosts().BaseReserve + float64(ml)*wlcache.DefaultCacheConfig().LineReserve
		vb := simCfg.Vbackup(reserve)
		fmt.Printf("  maxline %d -> reserve %4.0f nJ -> Vbackup %.3f V (Von %.3f V)\n",
			ml, reserve*1e9, vb, simCfg.Von(vb))
	}
}

func run(wl wlcache.Workload, src wlcache.Source, mode core.AdaptiveMode) wlcache.Result {
	nvm := wlcache.NewNVM()
	cacheCfg := wlcache.DefaultCacheConfig()
	cacheCfg.Adaptive.Mode = mode
	if mode == core.AdaptDynamic {
		cacheCfg.Adaptive.MaxMaxline = cacheCfg.DQCap
	}
	design := wlcache.NewWLCache(cacheCfg, nvm)
	cfg := wlcache.DefaultSimConfig()
	cfg.Trace = wlcache.Trace(src)
	cfg.CheckInvariants = true
	s, err := wlcache.NewSimulator(cfg, design, nvm)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(wl.Name, func(m wlcache.Machine) uint32 { return wl.Run(m, 1) })
	if err != nil {
		log.Fatal(err)
	}
	return res
}
