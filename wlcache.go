// Package wlcache is the public API of the WL-Cache reproduction: a
// cycle-approximate simulator for cache architectures on battery-less
// energy-harvesting systems, implementing the ISCA'23 paper
// "Write-Light Cache for Energy Harvesting Systems" (Choi et al.)
// plus the baselines it is evaluated against.
//
// The three core concepts:
//
//   - A Design is a cache organization with its crash-consistency
//     protocol (WL-Cache, NVSRAM(ideal), NVCache-WB, VCache-WT,
//     ReplayCache, NoCache). Designs are built over an NVM main
//     memory model.
//
//   - A Simulator executes a program (any func(Machine) uint32)
//     against a Design while modeling the capacitor energy buffer, a
//     harvested-power trace, JIT checkpointing at Vbackup, off-period
//     recharging and restore.
//
//   - Workloads are the paper's 23 MediaBench/MiBench kernels,
//     re-implemented to run against the simulated address space; you
//     can also write your own program against the Machine interface.
//
// Quick start:
//
//	nvm := wlcache.NewNVM()
//	design := wlcache.NewWLCache(wlcache.DefaultCacheConfig(), nvm)
//	cfg := wlcache.DefaultSimConfig()
//	cfg.Trace = wlcache.Trace(wlcache.Trace1)
//	sim, err := wlcache.NewSimulator(cfg, design, nvm)
//	...
//	res, err := sim.Run("mywork", func(m wlcache.Machine) uint32 { ... })
package wlcache

import (
	"wlcache/internal/cache"
	"wlcache/internal/core"
	"wlcache/internal/designs"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/workload"
)

// Machine is the execution substrate workload programs run on: loads,
// stores and ALU batches against the simulated address space.
type Machine = isa.Machine

// Design is a cache organization plus crash-consistency protocol.
type Design = sim.Design

// Result collects everything a simulation run produces.
type Result = sim.Result

// SimConfig is the machine/energy configuration (Table 2).
type SimConfig = sim.Config

// CacheConfig parameterizes a WL-Cache instance.
type CacheConfig = core.Config

// Geometry describes a cache organization (size/ways/line).
type Geometry = cache.Geometry

// NVM is the non-volatile main memory model.
type NVM = mem.NVM

// Simulator drives a program through a design under a power trace.
type Simulator = sim.Simulator

// PowerTrace is a piecewise-constant harvested-power signal.
type PowerTrace = power.Trace

// Source names a built-in power trace.
type Source = power.Source

// Workload is one of the paper's 23 benchmark kernels.
type Workload = workload.Workload

// Built-in power sources (paper §6.1, §6.6).
const (
	NoFailures Source = power.None
	Trace1     Source = power.Trace1
	Trace2     Source = power.Trace2
	Trace3     Source = power.Trace3
	Solar      Source = power.Solar
	Thermal    Source = power.Thermal
)

// NewNVM returns an NVM main memory with the paper's ReRAM timing.
func NewNVM() *NVM { return mem.NewNVM(mem.DefaultNVMParams()) }

// DefaultCacheConfig returns the paper's default WL-Cache
// configuration: 8 KB 2-way, DirtyQueue of 8, maxline 6, waterline 5,
// FIFO queue cleaning, LRU line replacement, adaptive thresholds.
func DefaultCacheConfig() CacheConfig { return core.DefaultConfig() }

// NewWLCache builds the paper's contribution over nvm.
func NewWLCache(cfg CacheConfig, nvm *NVM) *core.WLCache { return core.New(cfg, nvm) }

// NewNVSRAM builds the state-of-the-art baseline, NVSRAMCache(ideal).
func NewNVSRAM(geo Geometry, nvm *NVM) *designs.NVSRAM {
	return designs.NewNVSRAM(geo, cache.LRU, energy.DefaultJITCosts(), designs.DefaultNVSRAMParams(), nvm)
}

// NewVCacheWT builds the volatile write-through baseline.
func NewVCacheWT(geo Geometry, nvm *NVM) *designs.VCacheWT {
	return designs.NewVCacheWT(geo, cache.SRAMTech(), cache.LRU, energy.DefaultJITCosts(), nvm)
}

// NewNVCacheWB builds the fully non-volatile write-back baseline.
func NewNVCacheWB(geo Geometry, nvm *NVM) *designs.NVCacheWB {
	return designs.NewNVCacheWB(geo, cache.LRU, energy.DefaultJITCosts(), nvm)
}

// NewReplayCache builds the ReplayCache baseline model.
func NewReplayCache(geo Geometry, nvm *NVM) *designs.ReplayCache {
	return designs.NewReplayCache(geo, cache.LRU, energy.DefaultJITCosts(), designs.DefaultReplayParams(), nvm)
}

// NewNVSRAMFull builds the original whole-cache-checkpoint NVSRAM
// variant (§2.3.3 "full").
func NewNVSRAMFull(geo Geometry, nvm *NVM) *designs.NVSRAMFull {
	return designs.NewNVSRAMFull(geo, cache.LRU, energy.DefaultJITCosts(), designs.DefaultNVSRAMParams(), nvm)
}

// NewNVSRAMPractical builds the hybrid SRAM/NV-way NVSRAM variant
// (§2.3.3 "practical").
func NewNVSRAMPractical(geo Geometry, nvm *NVM) *designs.NVSRAMPractical {
	return designs.NewNVSRAMPractical(geo, energy.DefaultJITCosts(), designs.DefaultNVSRAMParams(), nvm)
}

// NewWTBuffer builds the §3.3 alternative design: a write-through
// cache with a CAM-searched write buffer.
func NewWTBuffer(geo Geometry, nvm *NVM) *designs.WTBuffer {
	return designs.NewWTBuffer(geo, cache.SRAMTech(), cache.LRU, energy.DefaultJITCosts(), designs.DefaultWTBufferParams(), nvm)
}

// NewNoCache builds the cacheless non-volatile-processor baseline.
func NewNoCache(nvm *NVM) *designs.NoCache {
	return designs.NewNoCache(energy.DefaultJITCosts(), nvm)
}

// NewBrokenVolatileWB builds the negative control: a volatile
// write-back cache with no JIT checkpointing, which silently corrupts
// memory across power failures (see examples/crashconsistency).
func NewBrokenVolatileWB(geo Geometry, nvm *NVM) *designs.BrokenVolatileWB {
	return designs.NewBrokenVolatileWB(geo, cache.LRU, energy.DefaultJITCosts(), nvm)
}

// DefaultGeometry is the paper's L1: 8 KB, 2-way, 64 B lines.
func DefaultGeometry() Geometry { return cache.DefaultGeometry() }

// DefaultSimConfig returns the Table 2 machine configuration with no
// power trace attached (uninterrupted power).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Trace returns the built-in trace for a source (nil for NoFailures).
func Trace(src Source) *PowerTrace { return power.Get(src) }

// NewSimulator builds a simulator; design must have been constructed
// over nvm.
func NewSimulator(cfg SimConfig, design Design, nvm *NVM) (*Simulator, error) {
	return sim.New(cfg, design, nvm)
}

// Workloads returns the paper's 23 benchmarks in figure order.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks up one benchmark kernel.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }
