module wlcache

go 1.22
