package hist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlcache/internal/obs"
)

// testEntry builds a minimal entry for store tests.
func testEntry(label string, key Key, metrics map[string]Metric) Entry {
	return Entry{
		Label:   label,
		Source:  Source{Format: "wlbench/v1", Name: label + ".json"},
		Key:     key,
		Metrics: metrics,
	}
}

var hostA = Key{Engine: "wlcache-sim/6", Host: "go1.x linux/amd64 maxprocs=8 cpu=A"}
var hostB = Key{Engine: "wlcache-sim/6", Host: "go1.x linux/amd64 maxprocs=8 cpu=B"}

func perf(v float64) Metric  { return Metric{Value: v, Dir: "lower", Kind: KindPerf} }
func exact(v float64) Metric { return Metric{Value: v, Kind: KindExact} }

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e1, added, err := s.Append(testEntry("a", hostA, map[string]Metric{"m": perf(1)}))
	if err != nil || !added {
		t.Fatalf("first append: added=%v err=%v", added, err)
	}
	if e1.Seq != 1 || e1.Schema != Schema || e1.ID == "" {
		t.Fatalf("bad appended entry: %+v", e1)
	}
	if _, added, _ := s.Append(testEntry("b", hostA, map[string]Metric{"m": perf(2)})); !added {
		t.Fatal("second append deduped unexpectedly")
	}

	// Identical content dedupes without touching the file.
	before, _ := os.ReadFile(path)
	dup, added, err := s.Append(testEntry("a", hostA, map[string]Metric{"m": perf(1)}))
	if err != nil || added {
		t.Fatalf("dup append: added=%v err=%v", added, err)
	}
	if dup.Seq != 1 || dup.ID != e1.ID {
		t.Fatalf("dup resolved to %+v, want seq 1", dup)
	}
	after, _ := os.ReadFile(path)
	if len(after) != len(before) {
		t.Fatal("dedup still grew the file")
	}

	// Reload sees the same entries in order.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || s2.Entries()[0].ID != e1.ID || s2.Entries()[1].Seq != 2 {
		t.Fatalf("reload: %+v", s2.Entries())
	}
}

func TestStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, _ := Open(path)
	if _, _, err := s.Append(testEntry("a", hostA, map[string]Metric{"m": perf(1)})); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves an unterminated partial line.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"schema":"wlhist/v1","id":"dead`)
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if s2.Len() != 1 || s2.TornTail == 0 {
		t.Fatalf("len=%d torn=%d, want 1 entry and a torn tail", s2.Len(), s2.TornTail)
	}

	// A fresh append repairs the tail — truncating the fragment so
	// the new entry never glues onto it.
	if _, _, err := s2.Append(testEntry("b", hostA, map[string]Metric{"m": perf(2)})); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 2 || s3.TornTail != 0 {
		t.Fatalf("after repair: len=%d torn=%d, want 2 entries and a clean tail", s3.Len(), s3.TornTail)
	}
}

func TestStoreInteriorGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, _ := Open(path)
	s.Append(testEntry("a", hostA, map[string]Metric{"m": perf(1)}))
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("not json\n")
	f.Close()
	if _, err := Open(path); err == nil {
		t.Fatal("interior garbage (terminated line) must error")
	}
}

func TestStoreTamperDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, _ := Open(path)
	s.Append(testEntry("a", hostA, map[string]Metric{"m": perf(1)}))
	raw, _ := os.ReadFile(path)
	tampered := strings.Replace(string(raw), `"value":1`, `"value":2`, 1)
	if tampered == string(raw) {
		t.Fatal("test setup: value not found")
	}
	os.WriteFile(path, []byte(tampered), 0o644)
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "does not match content") {
		t.Fatalf("tampered value must fail the content check, got %v", err)
	}
}

func TestSeriesAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, _ := Open(path)
	s.Append(testEntry("a", hostA, map[string]Metric{"x": perf(1), "y": exact(7)}))
	s.Append(testEntry("b", hostA, map[string]Metric{"x": perf(2)}))
	all := s.SeriesAll()
	if len(all) != 2 || all[0].Name != "x" || all[1].Name != "y" {
		t.Fatalf("series: %+v", all)
	}
	if len(all[0].Points) != 2 || all[0].Points[1].Value != 2 || all[0].Kind != KindPerf {
		t.Fatalf("x series: %+v", all[0])
	}
	if all[0].Dir != obs.DirLower {
		t.Fatalf("x dir: %v", all[0].Dir)
	}
}

// --- gate rules -----------------------------------------------------

func gateOver(t *testing.T, entries ...Entry) GateReport {
	t.Helper()
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, _ := Open(path)
	for _, e := range entries {
		if _, _, err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	return Gate(s, GateConfig{})
}

func findFinding(t *testing.T, rep GateReport, metric string) Finding {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Metric == metric {
			return f
		}
	}
	t.Fatalf("no finding for %s in %+v", metric, rep.Findings)
	return Finding{}
}

func TestGatePerfRegression(t *testing.T) {
	rep := gateOver(t,
		testEntry("a", hostA, map[string]Metric{"ns": perf(100)}),
		testEntry("b", hostA, map[string]Metric{"ns": perf(1000)}),
	)
	f := findFinding(t, rep, "ns")
	if !f.Regressed() || rep.Regressions != 1 {
		t.Fatalf("10x slower must regress: %+v", f)
	}
	// Improvement and small noise both pass.
	rep = gateOver(t,
		testEntry("a", hostA, map[string]Metric{"ns": perf(100)}),
		testEntry("b", hostA, map[string]Metric{"ns": perf(104)}),
	)
	if rep.Regressions != 0 {
		t.Fatalf("4%% noise must pass: %+v", rep.Findings)
	}
	rep = gateOver(t,
		testEntry("a", hostA, map[string]Metric{"ns": perf(100)}),
		testEntry("b", hostA, map[string]Metric{"ns": perf(50)}),
	)
	if f := findFinding(t, rep, "ns"); f.Verdict != "improved" {
		t.Fatalf("2x faster must improve: %+v", f)
	}
}

func TestGatePerfCrossHostSkipped(t *testing.T) {
	// The same slowdown across different host fingerprints is not
	// comparable: a slower CI runner must not fail the build.
	rep := gateOver(t,
		testEntry("a", hostA, map[string]Metric{"ns": perf(100)}),
		testEntry("b", hostB, map[string]Metric{"ns": perf(1000)}),
	)
	f := findFinding(t, rep, "ns")
	if f.Verdict != "skipped" || rep.Regressions != 0 || rep.Skipped != 1 {
		t.Fatalf("cross-host perf must skip: %+v", f)
	}
	if !strings.Contains(f.Note, "host differs") {
		t.Fatalf("note should say why: %q", f.Note)
	}
}

func TestGatePerfBaselineSkipsBack(t *testing.T) {
	// With an incomparable entry in between, the gate reaches back to
	// the newest comparable point.
	rep := gateOver(t,
		testEntry("a", hostA, map[string]Metric{"ns": perf(100)}),
		testEntry("b", hostB, map[string]Metric{"ns": perf(55)}),
		testEntry("c", hostA, map[string]Metric{"ns": perf(1000)}),
	)
	f := findFinding(t, rep, "ns")
	if !f.Regressed() || f.Baseline != 100 {
		t.Fatalf("must gate vs hostA baseline 100: %+v", f)
	}
}

func TestGateExactAcrossHosts(t *testing.T) {
	// Checksums are simulated outcomes: a change is drift even when
	// the two runs came from different machines.
	rep := gateOver(t,
		testEntry("a", hostA, map[string]Metric{"sum": exact(12345)}),
		testEntry("b", hostB, map[string]Metric{"sum": exact(99999)}),
	)
	if f := findFinding(t, rep, "sum"); !f.Regressed() {
		t.Fatalf("checksum change must regress across hosts: %+v", f)
	}
	// Same value: ok.
	rep = gateOver(t,
		testEntry("a", hostA, map[string]Metric{"sum": exact(12345)}),
		testEntry("b", hostB, map[string]Metric{"sum": exact(12345)}),
	)
	if f := findFinding(t, rep, "sum"); f.Verdict != "ok" {
		t.Fatalf("stable checksum: %+v", f)
	}
}

func TestGateExactEngineConflictSkips(t *testing.T) {
	// A checksum from a different engine version is expected to
	// differ; the gate must not compare across a definite conflict.
	oldEngine := Key{Engine: "wlcache-sim/5", Host: hostA.Host}
	rep := gateOver(t,
		testEntry("a", oldEngine, map[string]Metric{"sum": exact(1)}),
		testEntry("b", hostA, map[string]Metric{"sum": exact(2)}),
	)
	f := findFinding(t, rep, "sum")
	if f.Verdict != "skipped" || !strings.Contains(f.Note, "engine differs") {
		t.Fatalf("engine conflict must skip: %+v", f)
	}
	// But an Unknown engine is a wildcard (hand-written reports).
	unk := Key{Engine: Unknown, Host: hostA.Host}
	rep = gateOver(t,
		testEntry("a", unk, map[string]Metric{"sum": exact(1)}),
		testEntry("b", hostA, map[string]Metric{"sum": exact(1)}),
	)
	if f := findFinding(t, rep, "sum"); f.Verdict != "ok" {
		t.Fatalf("unknown engine must match anything: %+v", f)
	}
}

func TestGateDirectedExact(t *testing.T) {
	out := func(v float64) Metric { return Metric{Value: v, Dir: "lower", Kind: KindExact} }
	rep := gateOver(t,
		testEntry("a", hostA, map[string]Metric{"outages": out(22)}),
		testEntry("b", hostA, map[string]Metric{"outages": out(30)}),
	)
	if f := findFinding(t, rep, "outages"); !f.Regressed() {
		t.Fatalf("more outages must regress: %+v", f)
	}
	rep = gateOver(t,
		testEntry("a", hostA, map[string]Metric{"outages": out(22)}),
		testEntry("b", hostA, map[string]Metric{"outages": out(9)}),
	)
	if f := findFinding(t, rep, "outages"); f.Verdict != "improved" {
		t.Fatalf("fewer outages must improve, not fail the exact rule: %+v", f)
	}
}

func TestGateLatencyPercentile(t *testing.T) {
	lat := func(v float64) Metric {
		return Metric{Value: v, Unit: "ms", Dir: "lower", Kind: KindLatency}
	}
	mk := func(label string, v float64) Entry {
		return testEntry(label, hostA, map[string]Metric{"p99": lat(v)})
	}
	// History {10,12,11,50,11}: p95 (nearest rank of 5) = 50. A latest
	// value of 40 is inside the historical envelope even though it is
	// 4x the previous point — no flake.
	rep := gateOver(t, mk("a", 10), mk("b", 12), mk("c", 11), mk("d", 50), mk("e", 11), mk("f", 40))
	f := findFinding(t, rep, "p99")
	if f.Verdict != "ok" {
		t.Fatalf("40 within p95=50 envelope: %+v", f)
	}
	if !strings.Contains(f.Note, "vs p95 of 5 runs") {
		t.Fatalf("note: %q", f.Note)
	}
	// 60 exceeds 50*(1+0.10): regression.
	rep = gateOver(t, mk("a", 10), mk("b", 12), mk("c", 11), mk("d", 50), mk("e", 11), mk("g", 60))
	if f := findFinding(t, rep, "p99"); !f.Regressed() {
		t.Fatalf("60 over p95 envelope must regress: %+v", f)
	}
	// Short history falls back to the perf rule.
	rep = gateOver(t, mk("a", 10), mk("b", 30))
	f = findFinding(t, rep, "p99")
	if !f.Regressed() || !strings.Contains(f.Note, "perf rule") {
		t.Fatalf("short history must use perf rule: %+v", f)
	}
}

func TestGateInfoAndSinglePointIgnored(t *testing.T) {
	info := Metric{Value: 5, Kind: KindInfo}
	rep := gateOver(t,
		testEntry("a", hostA, map[string]Metric{"i": info, "only": perf(1)}),
		testEntry("b", hostA, map[string]Metric{"i": {Value: 500, Kind: KindInfo}}),
	)
	if len(rep.Findings) != 0 || rep.Regressions != 0 {
		t.Fatalf("info and single-point series must produce no findings: %+v", rep.Findings)
	}
}

// --- ingestion ------------------------------------------------------

func TestSniff(t *testing.T) {
	cases := map[string]string{
		`{"schema":"wlbench/v1","results":[]}`:     "wlbench/v1",
		`{"schema":"wlbench-pr/v1"}`:               "wlbench-pr/v1",
		`{"schema":"wlload/v1"}`:                   "wlload/v1",
		`{"schema":"wlobs/v1"}` + "\n" + `{"x":1}`: "wlobs/v1",
		`{"format":"wlattr/v1"}`:                   "wlattr/v1",
		"# TYPE x counter\nx 1\n":                  "prometheus",
		"wlserve_http_requests_total 12\n":         "prometheus",
	}
	for in, want := range cases {
		got, err := Sniff([]byte(in))
		if err != nil || got != want {
			t.Errorf("Sniff(%.40q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "{}", "<html>"} {
		if _, err := Sniff([]byte(bad)); err == nil {
			t.Errorf("Sniff(%q) must error", bad)
		}
	}
}

func TestIngestBenchAndSyntheticRegression(t *testing.T) {
	doc := `{"schema":"wlbench/v1","host":{"go_version":"go1.x","goos":"linux","goarch":"amd64","gomaxprocs":8,"cpu_model":"T","engine":"wlcache-sim/6"},"results":[
	  {"design":"wl","workload":"sha","trace":"tr1","host_ns":1000,"ns_per_op":16.7,"sim_instrs_per_sec":6e7,"sim_exec_ps":3937,"instructions":466947,"outages":22,"stalls":0,"writebacks":0,"dirty_peak":0,"avg_dirty_per_ckpt":0,"checksum":3188836267}]}`
	entries, err := Ingest([]byte(doc), "fresh.json", "run-a")
	if err != nil || len(entries) != 1 {
		t.Fatalf("ingest: %v, %d entries", err, len(entries))
	}
	e := entries[0]
	if e.Label != "run-a" || e.Key.Engine != "wlcache-sim/6" || e.Key.Host == Unknown {
		t.Fatalf("entry key: %+v", e.Key)
	}
	m, ok := e.Metrics["cell.wl.sha.tr1.ns_per_op"]
	if !ok || m.Kind != KindPerf || m.Dir != "lower" {
		t.Fatalf("ns_per_op metric: %+v (ok=%v)", m, ok)
	}
	if c := e.Metrics["cell.wl.sha.tr1.checksum"]; c.Kind != KindExact || c.Value != 3188836267 {
		t.Fatalf("checksum metric: %+v", c)
	}

	// The acceptance scenario: the same document with ns_per_op
	// multiplied by 10 (same host!) must fail the gate.
	perturbed := strings.Replace(doc, `"ns_per_op":16.7`, `"ns_per_op":167`, 1)
	bad, err := Ingest([]byte(perturbed), "fresh2.json", "run-b")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, _ := Open(path)
	s.Append(entries[0])
	s.Append(bad[0])
	rep := Gate(s, GateConfig{})
	f := findFinding(t, rep, "cell.wl.sha.tr1.ns_per_op")
	if !f.Regressed() || rep.Regressions != 1 {
		t.Fatalf("injected 10x ns_per_op must regress (got %+v, report %+v)", f, rep)
	}
	// Everything else in the pair is identical: no other finding fails.
	for _, other := range rep.Findings {
		if other.Metric != f.Metric && other.Regressed() {
			t.Fatalf("unexpected extra regression: %+v", other)
		}
	}
}

func TestIngestBenchWithoutHost(t *testing.T) {
	// A pre-PR-9 report has no host block: its wall-clock numbers must
	// land under the Unknown fingerprint, not this machine's.
	doc := `{"schema":"wlbench/v1","results":[{"design":"wl","workload":"sha","trace":"tr1","ns_per_op":16.7,"checksum":1}]}`
	entries, err := Ingest([]byte(doc), "old.json", "")
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Key.Host != Unknown {
		t.Fatalf("host: %q", entries[0].Key.Host)
	}
}

func TestIngestBenchTierPrefix(t *testing.T) {
	// A fast-tier report's metrics are namespaced under "fast." so
	// they can never gate against (or be gated by) the exact-tier
	// series of the same cells; exact reports keep historical names.
	doc := `{"schema":"wlbench/v1","tier":"fast","results":[{"design":"wl","workload":"sha","trace":"tr1","ns_per_op":16.7,"checksum":1}]}`
	entries, err := Ingest([]byte(doc), "fast.json", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := entries[0].Metrics["fast.cell.wl.sha.tr1.checksum"]; !ok {
		t.Fatalf("fast-tier metric not prefixed: %v", keysOf(entries[0].Metrics))
	}
	if _, ok := entries[0].Metrics["cell.wl.sha.tr1.checksum"]; ok {
		t.Fatal("fast-tier report leaked into the exact-tier namespace")
	}
	for _, tier := range []string{"", "exact"} {
		doc := `{"schema":"wlbench/v1","tier":"` + tier + `","results":[{"design":"wl","workload":"sha","trace":"tr1","checksum":1}]}`
		entries, err := Ingest([]byte(doc), "exact.json", "")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := entries[0].Metrics["cell.wl.sha.tr1.checksum"]; !ok {
			t.Fatalf("tier %q: exact-tier metric renamed: %v", tier, keysOf(entries[0].Metrics))
		}
	}
	// The PR-style before/after report namespaces the same way.
	pr := `{"schema":"wlbench-pr/v1","tier":"fast","host":"h","benchmarks":[],"end_to_end":{"seed_wall_s":100,"optimized_wall_s":50}}`
	prEntries, err := Ingest([]byte(pr), "pr.json", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range prEntries {
		if _, ok := e.Metrics["fast.e2e.wall_s"]; !ok {
			t.Fatalf("%s: fast e2e metric not prefixed: %v", e.Source.Name, keysOf(e.Metrics))
		}
	}
}

func keysOf(m map[string]Metric) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func TestIngestLoad(t *testing.T) {
	doc := `{"schema":"wlload/v1","target":"x","clients":4,"phases":2,"requests_per_phase":8,"dur_ms":100,
	  "submitted":16,"completed":16,"shed":1,"http_5xx":0,"failed":0,
	  "throughput_rps":120.5,"cells_per_sec":900,
	  "latency":{"p50_ms":2,"p95_ms":9,"p99_ms":12,"mean_ms":3,"max_ms":15},
	  "cells":{"total":32,"computed":20,"from_journal":6,"from_shared":6,"deduped":6,"failed":0,"skipped":0,"retries":0},
	  "dedup_ratio":0.18,"shed_rate":0.05,"sweeps":[]}`
	entries, err := Ingest([]byte(doc), "load.json", "")
	if err != nil || len(entries) != 1 {
		t.Fatalf("ingest: %v", err)
	}
	m := entries[0].Metrics
	if m["load.latency.p95_ms"].Kind != KindLatency || m["load.latency.p95_ms"].Value != 9 {
		t.Fatalf("p95: %+v", m["load.latency.p95_ms"])
	}
	if m["load.http_5xx"].Kind != KindExact || m["load.throughput_rps"].Kind != KindPerf {
		t.Fatalf("kinds: %+v %+v", m["load.http_5xx"], m["load.throughput_rps"])
	}
	if m["load.dedup_ratio"].Kind != KindInfo {
		t.Fatalf("dedup_ratio must be info: %+v", m["load.dedup_ratio"])
	}
}

func TestIngestProm(t *testing.T) {
	exp := "# TYPE wlserve_cell_us histogram\n" +
		"wlserve_cell_us_bucket{le=\"10\"} 1\n" +
		"wlserve_cell_us_bucket{le=\"+Inf\"} 2\n" +
		"wlserve_cell_us_sum 14\n" +
		"wlserve_cell_us_count 2\n" +
		"# TYPE wlserve_sweeps_total counter\n" +
		"wlserve_sweeps_total 7\n"
	entries, err := Ingest([]byte(exp), "http://x/metricz", "scrape")
	if err != nil || len(entries) != 1 {
		t.Fatalf("ingest: %v", err)
	}
	m := entries[0].Metrics
	if m["prom.wlserve_sweeps_total"].Value != 7 || m["prom.wlserve_sweeps_total"].Kind != KindInfo {
		t.Fatalf("counter: %+v", m["prom.wlserve_sweeps_total"])
	}
	for name := range m {
		if strings.Contains(name, "_bucket") {
			t.Fatalf("bucket sample leaked into metrics: %s", name)
		}
	}
	if _, ok := m["prom.wlserve_cell_us_sum"]; !ok {
		t.Fatal("histogram _sum must be kept")
	}
}

// --- the real repo trajectory ---------------------------------------

// TestGateRealBaselines replays the committed BENCH_PR5 → BENCH_PR8
// reports: the recorded optimization history must pass the gate (the
// end-to-end wall time *improved*), and appending a synthetically
// slowed copy of PR-8 on the same (unknown) host must fail it.
func TestGateRealBaselines(t *testing.T) {
	pr5, err := os.ReadFile("../../BENCH_PR5.json")
	if err != nil {
		t.Skipf("baseline not present: %v", err)
	}
	pr8, err := os.ReadFile("../../BENCH_PR8.json")
	if err != nil {
		t.Skipf("baseline not present: %v", err)
	}
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, _ := Open(path)
	for _, in := range []struct {
		raw  []byte
		name string
	}{{pr5, "BENCH_PR5.json"}, {pr8, "BENCH_PR8.json"}} {
		entries, err := Ingest(in.raw, in.name, in.name)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if _, _, err := s.Append(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Len() != 3 { // PR5 seed + PR5 optimized + PR8
		t.Fatalf("entries: %d, want 3", s.Len())
	}
	rep := Gate(s, GateConfig{})
	if rep.Regressions != 0 {
		t.Fatalf("real trajectory must pass: %+v", rep.Findings)
	}
	f := findFinding(t, rep, "e2e.wall_s")
	if f.Verdict != "improved" || f.Baseline != 235.5 || f.Latest != 123.5 {
		t.Fatalf("e2e.wall_s: %+v", f)
	}

	// Now the synthetic regression: PR-8 again, every sha cell 10x
	// slower. Hosts match (both unknown fingerprints), so it gates.
	var doc map[string]any
	if err := json.Unmarshal(pr8, &doc); err != nil {
		t.Fatal(err)
	}
	for _, r := range doc["results"].([]any) {
		cell := r.(map[string]any)
		cell["ns_per_op"] = cell["ns_per_op"].(float64) * 10
	}
	slowed, _ := json.Marshal(doc)
	entries, err := Ingest(slowed, "slowed.json", "slowed")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, _, err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	rep = Gate(s, GateConfig{})
	if rep.Regressions == 0 {
		t.Fatal("10x ns_per_op on every cell must fail the gate")
	}
	for _, f := range rep.Findings {
		if f.Regressed() && !strings.HasSuffix(f.Metric, "ns_per_op") &&
			!strings.HasSuffix(f.Metric, "host_ns") && !strings.HasSuffix(f.Metric, "sim_instrs_per_sec") {
			t.Fatalf("only the perturbed perf metrics may fail: %+v", f)
		}
	}
}

// --- rendering ------------------------------------------------------

func TestTrendTableAndDashboard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	s, _ := Open(path)
	s.Append(testEntry("a", hostA, map[string]Metric{
		"cell.wl.sha.tr1.ns_per_op": {Value: 16.7, Unit: "ns/op", Dir: "lower", Kind: KindPerf},
	}))
	s.Append(testEntry("b", hostA, map[string]Metric{
		"cell.wl.sha.tr1.ns_per_op": {Value: 12.1, Unit: "ns/op", Dir: "lower", Kind: KindPerf},
	}))

	trend := TrendTable(s, "")
	if !strings.Contains(trend, "ns_per_op") || !strings.Contains(trend, "▁") {
		t.Fatalf("trend table lacks series or sparkline:\n%s", trend)
	}
	if out := TrendTable(s, "nomatch"); !strings.Contains(out, "no series match") {
		t.Fatalf("filter miss: %q", out)
	}

	rep := Gate(s, GateConfig{})
	gt := GateTable(rep)
	if !strings.Contains(gt, "IMPROVED") {
		t.Fatalf("gate table:\n%s", gt)
	}

	page := Dashboard(s, rep)
	for _, want := range []string{
		"<!doctype html>", "<svg", "data-tip", "prefers-color-scheme: dark",
		"ns_per_op", "table view", "no drift",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	// Metric names are attacker-ish strings in principle; ensure the
	// page escapes what it interpolates.
	s.Append(testEntry("evil", hostA, map[string]Metric{
		"cell.<script>.x.y.z": {Value: 1, Kind: KindInfo},
	}))
	page = Dashboard(s, Gate(s, GateConfig{}))
	if strings.Contains(page, "cell.<script>") {
		t.Fatal("unescaped metric name in dashboard")
	}
}
