// Terminal rendering: the trend table (one sparkline row per metric)
// and the gate report. Both use the fixed-layout table from the stats
// package so wlhist output lines up with wlbench and wlfault.
package hist

import (
	"fmt"
	"math"
	"strings"

	"wlcache/internal/stats"
)

// TrendTable renders every series whose name contains filter (empty
// matches all) as a labelled sparkline row.
func TrendTable(s *Store, filter string) string {
	t := stats.NewTextTable(
		fmt.Sprintf("run history — %d entries (%s)", s.Len(), s.Path()),
		"n", "kind", "dir", "first", "last", "delta", "trend")
	t.Label = "metric"
	rows := 0
	for _, sr := range s.SeriesAll() {
		if filter != "" && !strings.Contains(sr.Name, filter) {
			continue
		}
		vals := make([]float64, len(sr.Points))
		for i, p := range sr.Points {
			vals[i] = p.Value
		}
		first, last := vals[0], vals[len(vals)-1]
		t.Add(sr.Name,
			fmt.Sprintf("%d", len(vals)),
			sr.Kind,
			sr.Dir.String(),
			compactFloat(first),
			compactFloat(last),
			deltaString(first, last),
			stats.Sparkline(vals),
		)
		rows++
	}
	if rows == 0 {
		return fmt.Sprintf("run history — %d entries, no series match %q\n", s.Len(), filter)
	}
	return t.String()
}

// GateTable renders the drift verdicts. Only metrics that changed
// (regressed or improved) get a row; stable and skipped metrics are
// counted in the summary so a clean run stays a few lines.
func GateTable(rep GateReport) string {
	ok := 0
	for _, f := range rep.Findings {
		if f.Verdict == "ok" {
			ok++
		}
	}
	title := fmt.Sprintf("drift gate — %d compared (%d unchanged), %d skipped, %d regression(s)",
		rep.Compared, ok, rep.Skipped, rep.Regressions)
	t := stats.NewTextTable(title,
		"verdict", "kind", "baseline", "latest", "delta", "note")
	t.Label = "metric"
	add := func(f Finding) {
		t.Add(f.Metric, strings.ToUpper(f.Verdict), f.Kind,
			compactFloat(f.Baseline), compactFloat(f.Latest),
			deltaString(f.Baseline, f.Latest), f.Note)
	}
	for _, f := range rep.Findings {
		if f.Regressed() {
			add(f)
		}
	}
	for _, f := range rep.Findings {
		if f.Verdict == "improved" {
			add(f)
		}
	}
	if t.Rows() == 0 {
		return title + "\n"
	}
	return t.String()
}

// compactFloat formats a value tightly for table cells.
func compactFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		if math.Abs(v) >= 1e7 {
			return fmt.Sprintf("%.3g", v)
		}
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 || (v != 0 && math.Abs(v) < 0.001):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// deltaString renders the first→last relative change, "=" when flat.
func deltaString(from, to float64) string {
	if from == to {
		return "="
	}
	if from == 0 {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(to-from)/math.Abs(from))
}
