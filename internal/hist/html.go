// Self-contained HTML trend dashboard: no external assets, one file
// that renders the whole history with per-metric line charts, hover
// tooltips, a drift summary, and a plain-table view for screen
// readers and grep. Colors are design tokens validated for contrast
// and CVD separation; dark mode derives from the same ramp via
// prefers-color-scheme, overridable with data-theme.
package hist

import (
	"fmt"
	"html"
	"math"
	"sort"
	"strings"
)

// chart geometry (CSS pixels).
const (
	chartW   = 264
	chartH   = 72
	chartPad = 6
)

// Dashboard renders the store (and the gate's verdict over it) as a
// standalone HTML page.
func Dashboard(s *Store, rep GateReport) string {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	b.WriteString("<meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">\n")
	b.WriteString("<title>wlcache run history</title>\n<style>\n")
	b.WriteString(dashboardCSS)
	b.WriteString("</style>\n</head>\n<body>\n")

	fmt.Fprintf(&b, "<header><h1>wlcache run history</h1><p class=\"sub\">%d entries · %s</p></header>\n",
		s.Len(), html.EscapeString(s.Path()))

	writeGateSection(&b, rep)

	series := s.SeriesAll()
	groups := groupSeries(series)
	for _, g := range groups {
		fmt.Fprintf(&b, "<section><h2>%s</h2>\n<div class=\"cards\">\n", html.EscapeString(g.title))
		for _, sr := range g.series {
			writeCard(&b, sr)
		}
		b.WriteString("</div>\n</section>\n")
	}

	writeTableView(&b, series)
	b.WriteString(tooltipJS)
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

type seriesGroup struct {
	title  string
	series []Series
}

// groupSeries buckets series by their namespace prefix so the page
// reads bench cells, load runs and scrapes as separate sections.
func groupSeries(series []Series) []seriesGroup {
	titles := map[string]string{
		"cell":  "Benchmark cells (wlbench)",
		"e2e":   "End-to-end wall time",
		"bench": "Microbenchmarks",
		"load":  "Load harness (wlload)",
		"obs":   "Observability manifests (wlobs)",
		"attr":  "Time attribution (wlattr)",
		"prom":  "Live scrapes (/metrics)",
	}
	order := []string{"e2e", "cell", "load", "obs", "attr", "bench", "prom"}
	byPrefix := make(map[string][]Series)
	for _, sr := range series {
		p, _, _ := strings.Cut(sr.Name, ".")
		if _, ok := titles[p]; !ok {
			p = "other"
		}
		byPrefix[p] = append(byPrefix[p], sr)
	}
	var out []seriesGroup
	for _, p := range order {
		if len(byPrefix[p]) > 0 {
			out = append(out, seriesGroup{titles[p], byPrefix[p]})
			delete(byPrefix, p)
		}
	}
	var rest []string
	for p := range byPrefix {
		rest = append(rest, p)
	}
	sort.Strings(rest)
	for _, p := range rest {
		out = append(out, seriesGroup{"Other (" + p + ")", byPrefix[p]})
	}
	return out
}

func writeGateSection(b *strings.Builder, rep GateReport) {
	cls, verdict := "good", "no drift"
	if rep.Regressions > 0 {
		cls = "bad"
		verdict = fmt.Sprintf("%d regression(s)", rep.Regressions)
	}
	fmt.Fprintf(b, "<section class=\"gate\"><h2>Drift gate</h2>"+
		"<p><span class=\"badge %s\">%s</span> %d metric(s) compared, %d skipped (no comparable baseline)</p>\n",
		cls, html.EscapeString(verdict), rep.Compared, rep.Skipped)
	var bad []Finding
	for _, f := range rep.Findings {
		if f.Regressed() {
			bad = append(bad, f)
		}
	}
	if len(bad) > 0 {
		b.WriteString("<table><thead><tr><th scope=\"col\">metric</th><th scope=\"col\">baseline</th>" +
			"<th scope=\"col\">latest</th><th scope=\"col\">delta</th><th scope=\"col\">note</th></tr></thead><tbody>\n")
		for _, f := range bad {
			fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td>"+
				"<td class=\"num delta-bad\">%s</td><td>%s</td></tr>\n",
				html.EscapeString(f.Metric), compactFloat(f.Baseline), compactFloat(f.Latest),
				deltaString(f.Baseline, f.Latest), html.EscapeString(f.Note))
		}
		b.WriteString("</tbody></table>\n")
	}
	b.WriteString("</section>\n")
}

// writeCard renders one metric as a stat-plus-line-chart card. A
// single series needs no legend: the card title names it.
func writeCard(b *strings.Builder, sr Series) {
	last := sr.Points[len(sr.Points)-1]
	first := sr.Points[0]
	unit := ""
	if sr.Unit != "" {
		unit = " <span class=\"unit\">" + html.EscapeString(sr.Unit) + "</span>"
	}
	deltaCls, delta := "delta-flat", "="
	if first.Value != last.Value && first.Value != 0 {
		rel := (last.Value - first.Value) / math.Abs(first.Value)
		delta = fmt.Sprintf("%+.1f%%", 100*rel)
		deltaCls = deltaClass(sr, rel)
	}
	fmt.Fprintf(b, "<article class=\"card\"><h3>%s</h3>"+
		"<p class=\"stat\"><span class=\"val\">%s</span>%s <span class=\"%s\">%s</span></p>\n",
		html.EscapeString(sr.Name), compactFloat(last.Value), unit, deltaCls, delta)
	if len(sr.Points) >= 2 {
		writeChart(b, sr)
	} else {
		b.WriteString("<p class=\"sub\">single run — no trend yet</p>\n")
	}
	b.WriteString("</article>\n")
}

// deltaClass colors a relative change by whether it moved the good
// way. Directionless metrics stay neutral ink.
func deltaClass(sr Series, rel float64) string {
	switch sr.Dir.String() {
	case "lower":
		if rel < 0 {
			return "delta-good"
		}
		return "delta-bad"
	case "higher":
		if rel > 0 {
			return "delta-good"
		}
		return "delta-bad"
	}
	return "delta-flat"
}

// writeChart emits the inline SVG line chart: recessive gridline and
// baseline, a 2px series line, and ≥8px hover targets per point that
// feed the shared tooltip.
func writeChart(b *strings.Builder, sr Series) {
	vals := make([]float64, len(sr.Points))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, p := range sr.Points {
		vals[i] = p.Value
		lo, hi = math.Min(lo, p.Value), math.Max(hi, p.Value)
	}
	if hi == lo {
		hi, lo = hi+1, lo-1 // flat series centers
	}
	x := func(i int) float64 {
		if len(vals) == 1 {
			return chartW / 2
		}
		return chartPad + float64(i)*(chartW-2*chartPad)/float64(len(vals)-1)
	}
	y := func(v float64) float64 {
		return chartH - chartPad - (v-lo)*(chartH-2*chartPad)/(hi-lo)
	}
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"trend of %s over %d runs\">\n",
		chartW, chartH, chartW, chartH, html.EscapeString(sr.Name), len(vals))
	// Recessive horizontal gridline at the vertical midpoint.
	fmt.Fprintf(b, "<line class=\"grid\" x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\"/>\n",
		chartPad, float64(chartH)/2, chartW-chartPad, float64(chartH)/2)
	var pts []string
	for i := range vals {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(i), y(vals[i])))
	}
	fmt.Fprintf(b, "<polyline class=\"series\" points=\"%s\"/>\n", strings.Join(pts, " "))
	for i, p := range sr.Points {
		label := fmt.Sprintf("run %d", p.Seq)
		if p.Label != "" {
			label = p.Label
		}
		// Visible 3px dot, 10px invisible hit target carrying the
		// tooltip payload.
		fmt.Fprintf(b, "<circle class=\"dot\" cx=\"%.1f\" cy=\"%.1f\" r=\"3\"/>\n", x(i), y(vals[i]))
		fmt.Fprintf(b, "<circle class=\"hit\" cx=\"%.1f\" cy=\"%.1f\" r=\"10\" data-tip=\"%s: %s%s\"/>\n",
			x(i), y(vals[i]),
			html.EscapeString(label), compactFloat(vals[i]),
			html.EscapeString(unitSuffix(sr.Unit)))
	}
	b.WriteString("</svg>\n")
}

func unitSuffix(unit string) string {
	if unit == "" {
		return ""
	}
	return " " + unit
}

// writeTableView emits the accessible every-value table.
func writeTableView(b *strings.Builder, series []Series) {
	b.WriteString("<section><h2>All series (table view)</h2>\n<table>\n" +
		"<thead><tr><th scope=\"col\">metric</th><th scope=\"col\">kind</th><th scope=\"col\">dir</th>" +
		"<th scope=\"col\">unit</th><th scope=\"col\">runs</th><th scope=\"col\">values (oldest → newest)</th></tr></thead><tbody>\n")
	for _, sr := range series {
		var vals []string
		for _, p := range sr.Points {
			vals = append(vals, compactFloat(p.Value))
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(sr.Name), sr.Kind, sr.Dir.String(),
			html.EscapeString(sr.Unit), len(sr.Points),
			html.EscapeString(strings.Join(vals, ", ")))
	}
	b.WriteString("</tbody></table>\n</section>\n")
}

// Design tokens: light surface #fcfcfb / ink #0b0b0b, dark surface
// #1a1a19 / ink #ffffff; series-1 blue #2a78d6 (light) / #3987e5
// (dark); status good #0ca30c, critical #d03b3b. Dark mode follows
// the system scheme unless data-theme pins it.
const dashboardCSS = `:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --series: #2a78d6;
  --good: #0ca30c; --bad: #d03b3b; --delta-good: #006300;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --series: #3987e5;
    --delta-good: #0ca30c;
  }
}
:root[data-theme="dark"] {
  --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --baseline: #383835; --series: #3987e5;
  --delta-good: #0ca30c;
}
body { background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, sans-serif; margin: 1.5rem auto; max-width: 72rem;
  padding: 0 1rem; }
h1 { font-size: 1.3rem; margin: 0; }
h2 { font-size: 1.05rem; border-bottom: 1px solid var(--grid);
  padding-bottom: .25rem; margin-top: 2rem; }
h3 { font-size: .8rem; font-weight: 600; color: var(--ink-2); margin: 0;
  overflow-wrap: anywhere; }
.sub { color: var(--muted); margin: .2rem 0 0; }
.cards { display: grid; gap: .75rem;
  grid-template-columns: repeat(auto-fill, minmax(280px, 1fr)); }
.card { border: 1px solid var(--grid); border-radius: 6px; padding: .6rem .75rem; }
.stat { margin: .3rem 0; }
.stat .val { font-size: 1.25rem; font-weight: 600;
  font-variant-numeric: tabular-nums; }
.unit { color: var(--muted); font-size: .8rem; }
.delta-good { color: var(--delta-good); font-variant-numeric: tabular-nums; }
.delta-bad { color: var(--bad); font-variant-numeric: tabular-nums; }
.delta-flat { color: var(--muted); font-variant-numeric: tabular-nums; }
.badge { border-radius: 4px; padding: .1rem .45rem; font-weight: 600;
  color: #fff; }
.badge.good { background: var(--good); }
.badge.bad { background: var(--bad); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .series { fill: none; stroke: var(--series); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round; }
svg .dot { fill: var(--series); }
svg .hit { fill: transparent; cursor: crosshair; }
table { border-collapse: collapse; width: 100%; font-size: .8rem; }
th, td { text-align: left; padding: .25rem .5rem;
  border-bottom: 1px solid var(--grid); overflow-wrap: anywhere; }
th { color: var(--ink-2); }
td.num { font-variant-numeric: tabular-nums; }
#tip { position: fixed; pointer-events: none; background: var(--ink);
  color: var(--surface); padding: .2rem .45rem; border-radius: 4px;
  font-size: .75rem; display: none; z-index: 10; }
`

// tooltipJS positions the shared tooltip over whichever hover target
// the pointer is on.
const tooltipJS = `<div id="tip" role="status"></div>
<script>
(function () {
  var tip = document.getElementById('tip');
  document.addEventListener('pointerover', function (e) {
    var t = e.target.closest && e.target.closest('.hit');
    if (!t) { tip.style.display = 'none'; return; }
    tip.textContent = t.getAttribute('data-tip');
    tip.style.display = 'block';
  });
  document.addEventListener('pointermove', function (e) {
    if (tip.style.display === 'none') return;
    tip.style.left = (e.clientX + 12) + 'px';
    tip.style.top = (e.clientY - 28) + 'px';
  });
  document.addEventListener('pointerout', function (e) {
    if (e.target.closest && e.target.closest('.hit')) tip.style.display = 'none';
  });
})();
</script>
`
