// Package hist is the longitudinal run-history store: an append-only,
// content-addressed JSONL log (wlhist/v1) of benchmark, load-test,
// observability and attribution results, keyed so that any two entries
// are either comparable or explicitly not. Host-speed metrics carry
// the full host fingerprint and only ever gate against entries from
// the same fingerprint; simulated outcomes (checksums, outage counts)
// are host-independent and gate across hosts as long as the engine
// versions do not conflict. On top of the store sit trend extraction
// (per-metric time series with good/bad directions reused from the
// manifest differ), a drift gate for CI, and terminal/HTML renderers.
package hist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"wlcache/internal/obs"
)

// Schema identifies the store's line format.
const Schema = "wlhist/v1"

// Unknown is the placeholder for a key field that could not be
// collected. Perf comparability treats two unknowns as equal (same
// meaning: "the one machine we never fingerprinted"), while exact
// comparability treats unknown as a wildcard.
const Unknown = "unknown"

// Metric kinds. The kind decides how the drift gate judges a change.
const (
	// KindPerf is a host-speed measurement (wall clock, throughput):
	// gated by relative threshold, only against the same host
	// fingerprint.
	KindPerf = "perf"
	// KindLatency is a sampled latency quantile: gated against a
	// nearest-rank percentile of its own history once enough
	// comparable points exist, else it degrades to the perf rule.
	KindLatency = "latency"
	// KindExact is a deterministic simulated outcome (checksum,
	// outage count): any unexplained change is drift regardless of
	// host.
	KindExact = "exact"
	// KindInfo is recorded for trends but never gates.
	KindInfo = "info"
)

// Source says where an entry came from: the ingested document format
// and the file (or URL) it was read from.
type Source struct {
	Format string `json:"format"`
	Name   string `json:"name,omitempty"`
}

// Key is the comparability key. Two entries' metrics may only be
// compared when their keys say the numbers mean the same thing.
type Key struct {
	// Engine is the simulator version (sim.EngineVersion) that
	// produced the numbers, or Unknown.
	Engine string `json:"engine"`
	// GitCommit is the VCS revision of the build, when known. It is
	// recorded for provenance and display; it does not gate.
	GitCommit string `json:"git_commit,omitempty"`
	// Host is the host fingerprint (hostinfo.Info.Fingerprint), or
	// Unknown. Perf metrics compare only within one fingerprint.
	Host string `json:"host"`
}

// Metric is one recorded scalar.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Dir is the manifest encoding of the metric's good direction
	// ("lower", "higher", or "" / "none").
	Dir  string `json:"dir,omitempty"`
	Kind string `json:"kind"`
}

// Entry is one run: a flat map of metrics under one comparability
// key. The ID is the hex SHA-256 of the entry body (label, source,
// key, metrics) — Seq and RecordedUnix are excluded so re-recording
// the same document is a no-op and committed baselines stay
// byte-stable.
type Entry struct {
	Schema       string            `json:"schema"`
	ID           string            `json:"id"`
	Seq          int               `json:"seq"`
	RecordedUnix int64             `json:"recorded_unix,omitempty"`
	Label        string            `json:"label,omitempty"`
	Source       Source            `json:"source"`
	Key          Key               `json:"key"`
	Metrics      map[string]Metric `json:"metrics"`
}

// contentID computes the entry's content address. encoding/json
// serializes maps with sorted keys, so the hash is deterministic.
func contentID(e Entry) string {
	body := struct {
		Label   string            `json:"label"`
		Source  Source            `json:"source"`
		Key     Key               `json:"key"`
		Metrics map[string]Metric `json:"metrics"`
	}{e.Label, e.Source, e.Key, e.Metrics}
	raw, err := json.Marshal(body)
	if err != nil {
		// Only unmarshalable values (NaN metric values) reach here;
		// ingestors filter those before Append.
		panic("hist: unhashable entry: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Store is the on-disk history: one JSON entry per line, append-only.
// A crash mid-append leaves at most one torn final line, which reload
// tolerates (the interrupted append simply never happened); garbage
// anywhere else is corruption and errors.
type Store struct {
	path    string
	entries []Entry
	byID    map[string]int
	// validSize is the byte length of the intact prefix; an append
	// truncates here first so a torn tail is never glued onto the
	// next entry.
	validSize int64
	// TornTail is the number of trailing bytes discarded on open
	// because the final line was unterminated.
	TornTail int
}

// Open loads the store at path, creating an empty one if the file
// does not exist.
func Open(path string) (*Store, error) {
	s := &Store{path: path, byID: make(map[string]int)}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	if n := len(raw); n > 0 && raw[n-1] != '\n' {
		if i := bytes.LastIndexByte(raw, '\n'); i >= 0 {
			s.TornTail = n - i - 1
			raw = raw[:i+1]
		} else {
			s.TornTail = n
			raw = nil
		}
	}
	s.validSize = int64(len(raw))
	for ln, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("hist: %s:%d: %v", path, ln+1, err)
		}
		if e.Schema != Schema {
			return nil, fmt.Errorf("hist: %s:%d: schema %q, want %q", path, ln+1, e.Schema, Schema)
		}
		if want := contentID(e); e.ID != want {
			return nil, fmt.Errorf("hist: %s:%d: id %.12s does not match content %.12s", path, ln+1, e.ID, want)
		}
		if _, dup := s.byID[e.ID]; dup {
			continue // replayed append; first copy wins
		}
		e.Seq = len(s.entries) + 1
		s.byID[e.ID] = len(s.entries)
		s.entries = append(s.entries, e)
	}
	return s, nil
}

// Path returns the file backing the store.
func (s *Store) Path() string { return s.path }

// Len returns the number of entries.
func (s *Store) Len() int { return len(s.entries) }

// Entries returns the entries in append order. The slice is shared;
// callers must not mutate it.
func (s *Store) Entries() []Entry { return s.entries }

// Append records an entry, filling Schema, ID and Seq. If an entry
// with the same content already exists the store is unchanged and the
// existing entry is returned with added=false.
func (s *Store) Append(e Entry) (Entry, bool, error) {
	e.Schema = Schema
	for name, m := range e.Metrics {
		if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
			delete(e.Metrics, name) // non-finite values never round-trip JSON
		}
	}
	e.ID = contentID(e)
	if i, ok := s.byID[e.ID]; ok {
		return s.entries[i], false, nil
	}
	e.Seq = len(s.entries) + 1
	line, err := json.Marshal(e)
	if err != nil {
		return Entry{}, false, err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return Entry{}, false, err
	}
	// Drop any torn tail left by a crash mid-append, then write past
	// the intact prefix: the new line never glues onto a fragment.
	if err := f.Truncate(s.validSize); err != nil {
		f.Close()
		return Entry{}, false, err
	}
	n, err := f.WriteAt(append(line, '\n'), s.validSize)
	if err != nil {
		f.Close()
		return Entry{}, false, err
	}
	if err := f.Close(); err != nil {
		return Entry{}, false, err
	}
	s.validSize += int64(n)
	s.byID[e.ID] = len(s.entries)
	s.entries = append(s.entries, e)
	return e, true, nil
}

// Point is one observation of a metric: the value plus the entry it
// came from (for comparability checks and labeling).
type Point struct {
	Seq   int
	Value float64
	Key   Key
	Label string
}

// Series is the history of one metric across the store, in append
// order. Unit, Dir and Kind come from the newest point so a schema
// evolution (a metric reclassified) takes effect immediately.
type Series struct {
	Name   string
	Unit   string
	Dir    obs.Dir
	Kind   string
	Points []Point
}

// SeriesAll extracts every metric's series, sorted by name.
func (s *Store) SeriesAll() []Series {
	byName := make(map[string]*Series)
	for _, e := range s.entries {
		for name, m := range e.Metrics {
			sr := byName[name]
			if sr == nil {
				sr = &Series{Name: name}
				byName[name] = sr
			}
			sr.Unit, sr.Dir, sr.Kind = m.Unit, obs.DirFrom(m.Dir), m.Kind
			sr.Points = append(sr.Points, Point{
				Seq: e.Seq, Value: m.Value, Key: e.Key, Label: e.Label,
			})
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Series, len(names))
	for i, n := range names {
		out[i] = *byName[n]
	}
	return out
}
