// The drift gate: judge each metric's newest transition against its
// comparable history. The rules per kind:
//
//   - exact: the latest value must equal the most recent comparable
//     value. For a directed exact metric (outages, http_5xx) only the
//     bad direction is a regression — fewer outages is an improvement.
//     Exact metrics are host-independent, so they compare across hosts
//     as long as the engine versions do not conflict: a checksum from
//     engine 6 never gates against one from engine 5.
//   - perf: the latest value must be within Threshold (relative) of
//     the most recent comparable value, and comparability demands the
//     same host fingerprint — a faster CI runner is not a speedup.
//   - latency: with at least MinHistory comparable prior points, the
//     latest value must not exceed the nearest-rank Percentile of that
//     history by more than Threshold; a single noisy run inside the
//     historical envelope does not fail CI. With a short history the
//     perf rule applies.
//   - info: never gates.
package hist

import (
	"fmt"
	"math"
	"sort"

	"wlcache/internal/obs"
)

// GateConfig tunes the drift gate. The zero value selects the
// defaults noted on each field.
type GateConfig struct {
	// Threshold is the relative change tolerated on perf metrics
	// (default 0.10 = 10%).
	Threshold float64
	// Percentile is the nearest-rank quantile of history a latency
	// metric is judged against (default 0.95).
	Percentile float64
	// MinHistory is the number of comparable prior points a latency
	// metric needs before the percentile rule replaces the perf rule
	// (default 3).
	MinHistory int
}

func (c GateConfig) normalized() GateConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.10
	}
	if c.Percentile <= 0 || c.Percentile > 1 {
		c.Percentile = 0.95
	}
	if c.MinHistory <= 0 {
		c.MinHistory = 3
	}
	return c
}

// Finding is the gate's verdict on one metric.
type Finding struct {
	Metric   string
	Kind     string
	Dir      obs.Dir
	Baseline float64 // prior comparable value, or percentile bound
	Latest   float64
	Rel      float64 // (Latest-Baseline)/Baseline; 0 when Baseline is 0
	// Verdict is "ok", "improved", "regressed" or "skipped".
	Verdict string
	// Note explains the comparison ("vs p95 of 6 runs") or the skip
	// ("no comparable baseline: host differs").
	Note string
}

// Regressed reports whether the finding fails the gate.
func (f Finding) Regressed() bool { return f.Verdict == "regressed" }

// GateReport is the gate's verdict over a whole store.
type GateReport struct {
	Findings    []Finding
	Compared    int // metrics judged against a baseline
	Skipped     int // gateable metrics with no comparable baseline
	Regressions int
}

// Gate judges the newest transition of every gateable series in the
// store. Info metrics and single-point series produce no finding.
func Gate(s *Store, cfg GateConfig) GateReport {
	cfg = cfg.normalized()
	var rep GateReport
	for _, sr := range s.SeriesAll() {
		if sr.Kind == KindInfo || sr.Kind == "" {
			continue
		}
		if len(sr.Points) < 2 {
			continue
		}
		f := judge(sr, cfg)
		if f.Verdict == "skipped" {
			rep.Skipped++
		} else {
			rep.Compared++
			if f.Regressed() {
				rep.Regressions++
			}
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}

// judge applies the kind's rule to the series' newest point.
func judge(sr Series, cfg GateConfig) Finding {
	latest := sr.Points[len(sr.Points)-1]
	prior := sr.Points[:len(sr.Points)-1]
	f := Finding{Metric: sr.Name, Kind: sr.Kind, Dir: sr.Dir, Latest: latest.Value}

	comparable := func(p Point) bool {
		if sr.Kind == KindExact {
			return comparableExact(p.Key, latest.Key)
		}
		return comparablePerf(p.Key, latest.Key)
	}

	// The most recent comparable prior point is the baseline.
	base := -1
	for i := len(prior) - 1; i >= 0; i-- {
		if comparable(prior[i]) {
			base = i
			break
		}
	}
	if base < 0 {
		f.Verdict = "skipped"
		f.Note = skipReason(prior[len(prior)-1].Key, latest.Key, sr.Kind)
		return f
	}
	f.Baseline = prior[base].Value
	f.Rel = relChange(f.Baseline, f.Latest)

	switch sr.Kind {
	case KindExact:
		judgeExact(&f)
	case KindLatency:
		// Collect the comparable history for the percentile envelope.
		var hist []float64
		for _, p := range prior {
			if comparable(p) {
				hist = append(hist, p.Value)
			}
		}
		if len(hist) >= cfg.MinHistory {
			judgeLatency(&f, hist, cfg)
			return f
		}
		f.Note = fmt.Sprintf("history %d < %d, perf rule", len(hist), cfg.MinHistory)
		judgePerf(&f, cfg)
	default: // KindPerf
		judgePerf(&f, cfg)
	}
	return f
}

func judgeExact(f *Finding) {
	switch {
	case f.Latest == f.Baseline:
		f.Verdict = "ok"
	case f.Dir == obs.DirNone:
		f.Verdict = "regressed"
		f.Note = "exact value changed"
	case f.Dir == obs.DirLower && f.Latest > f.Baseline,
		f.Dir == obs.DirHigher && f.Latest < f.Baseline:
		f.Verdict = "regressed"
		f.Note = "exact value moved the wrong way"
	default:
		f.Verdict = "improved"
	}
}

func judgePerf(f *Finding, cfg GateConfig) {
	bad := f.Rel > cfg.Threshold && f.Dir == obs.DirLower ||
		f.Rel < -cfg.Threshold && f.Dir == obs.DirHigher
	good := f.Rel < -cfg.Threshold && f.Dir == obs.DirLower ||
		f.Rel > cfg.Threshold && f.Dir == obs.DirHigher
	switch {
	case bad:
		f.Verdict = "regressed"
	case good:
		f.Verdict = "improved"
	default:
		f.Verdict = "ok"
	}
}

// judgeLatency compares the latest value against the nearest-rank
// percentile of the comparable history, padded by Threshold. For a
// DirHigher latency-kind metric (none exist today) the envelope is
// the mirrored low percentile.
func judgeLatency(f *Finding, hist []float64, cfg GateConfig) {
	sorted := append([]float64(nil), hist...)
	sort.Float64s(sorted)
	q := cfg.Percentile
	if f.Dir == obs.DirHigher {
		q = 1 - q
	}
	bound := nearestRank(sorted, q)
	f.Baseline = bound
	f.Rel = relChange(bound, f.Latest)
	f.Note = fmt.Sprintf("vs p%d of %d runs", int(math.Round(cfg.Percentile*100)), len(hist))
	switch {
	case f.Dir == obs.DirHigher && f.Latest < bound*(1-cfg.Threshold):
		f.Verdict = "regressed"
	case f.Dir != obs.DirHigher && f.Latest > bound*(1+cfg.Threshold):
		f.Verdict = "regressed"
	default:
		f.Verdict = "ok"
	}
}

// nearestRank returns the nearest-rank q-quantile of sorted values.
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func relChange(base, latest float64) float64 {
	if base == 0 {
		if latest == 0 {
			return 0
		}
		return math.Inf(sign(latest))
	}
	return (latest - base) / math.Abs(base)
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// comparablePerf: host-speed numbers compare only within one host
// fingerprint. Two unknown fingerprints are the same (unfingerprinted)
// machine by assertion; known-vs-unknown never compares, so CI runner
// variance cannot masquerade as a code change.
func comparablePerf(a, b Key) bool {
	return a.Host == b.Host && enginesCompatible(a.Engine, b.Engine)
}

// comparableExact: simulated outcomes are host-independent, so only a
// definite engine-version conflict blocks the comparison.
func comparableExact(a, b Key) bool {
	return enginesCompatible(a.Engine, b.Engine)
}

func enginesCompatible(a, b string) bool {
	if a == "" || a == Unknown || b == "" || b == Unknown {
		return true
	}
	return a == b
}

func skipReason(prevKey, latestKey Key, kind string) string {
	if kind != KindExact && prevKey.Host != latestKey.Host {
		return "no comparable baseline: host differs"
	}
	if !enginesCompatible(prevKey.Engine, latestKey.Engine) {
		return "no comparable baseline: engine differs"
	}
	return "no comparable baseline"
}
