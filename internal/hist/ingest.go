// Format sniffing and ingestion: each supported document becomes one
// history entry (two for the PR-5 before/after benchmark report) with
// a flat, namespaced metric map. The metric kind and direction tables
// here are the drift policy: what gates, what is informational, and
// which way is "better".
package hist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"wlcache/internal/hostinfo"
	"wlcache/internal/obs"
)

// keyFrom builds a comparability key from collected host info, mapping
// empty fields to Unknown.
func keyFrom(i hostinfo.Info) Key {
	k := Key{Engine: i.Engine, GitCommit: i.GitCommit, Host: i.Fingerprint()}
	if k.Engine == "" {
		k.Engine = Unknown
	}
	if k.Host == "" {
		k.Host = Unknown
	}
	return k
}

// SelfKey is the comparability key of the running process: used when
// the ingested document carries no host block (a live scrape, an obs
// manifest) and the caller asserts the numbers were produced here.
func SelfKey() Key { return keyFrom(hostinfo.Collect()) }

// Ingest sniffs the document format and converts it to history
// entries ready for Store.Append. name is recorded as the source
// (typically the file path or URL).
func Ingest(raw []byte, name, label string) ([]Entry, error) {
	format, err := Sniff(raw)
	if err != nil {
		return nil, fmt.Errorf("hist: %s: %w", name, err)
	}
	var entries []Entry
	switch format {
	case "wlbench/v1":
		entries, err = ingestBench(raw, name)
	case "wlbench-pr/v1":
		entries, err = ingestBenchPR(raw, name)
	case "wlload/v1":
		entries, err = ingestLoad(raw, name)
	case obs.Schema: // wlobs/v1
		entries, err = ingestManifest(raw, name)
	case obs.AttrFormat: // wlattr/v1
		entries, err = ingestAttr(raw, name)
	case "prometheus":
		entries, err = ingestProm(raw, name)
	default:
		return nil, fmt.Errorf("hist: %s: unsupported format %q", name, format)
	}
	if err != nil {
		return nil, fmt.Errorf("hist: %s: %w", name, err)
	}
	for i := range entries {
		entries[i].Label = label
	}
	return entries, nil
}

// Sniff identifies a document: one of the repo's JSON report schemas,
// a wlobs/v1 or wlattr/v1 JSONL stream, or a Prometheus text
// exposition.
func Sniff(raw []byte) (string, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return "", fmt.Errorf("empty document")
	}
	if trimmed[0] == '{' {
		// Whole-document schema, or the first line of a JSONL stream.
		var head struct {
			Schema string `json:"schema"`
			Format string `json:"format"`
		}
		line := trimmed
		if i := bytes.IndexByte(line, '\n'); i >= 0 {
			if err := json.Unmarshal(line[:i], &head); err == nil {
				if head.Schema != "" || head.Format != "" {
					line = line[:i]
				}
			}
		}
		if err := json.Unmarshal(line, &head); err != nil {
			return "", fmt.Errorf("sniff: %v", err)
		}
		switch {
		case head.Schema != "":
			return head.Schema, nil
		case head.Format != "":
			return head.Format, nil
		}
		return "", fmt.Errorf("sniff: JSON document carries no schema/format field")
	}
	if trimmed[0] == '#' || bytes.Contains(trimmed, []byte("# TYPE")) {
		return "prometheus", nil
	}
	// A bare exposition with no comment lines still parses as
	// name/value pairs; accept it if the first token looks like one.
	if f := bytes.Fields(bytes.SplitN(trimmed, []byte("\n"), 2)[0]); len(f) == 2 {
		return "prometheus", nil
	}
	return "", fmt.Errorf("sniff: unrecognized document")
}

// tierPrefix namespaces metrics from a non-exact engine tier:
// "fast.cell...." series never share a name with the bit-exact
// "cell...." baselines, so a fast-tier report can never gate (or be
// gated) against exact history — the two tiers are separate
// comparability series by construction. Exact reports (tier "" or
// "exact") keep their historical names.
func tierPrefix(tier string) string {
	if tier == "" || tier == "exact" {
		return ""
	}
	return tier + "."
}

// --- wlbench/v1 -----------------------------------------------------

// benchDoc mirrors cmd/wlbench's -json output.
type benchDoc struct {
	Schema  string         `json:"schema"`
	Host    *hostinfo.Info `json:"host"`
	Tier    string         `json:"tier"`
	Results []struct {
		Design   string  `json:"design"`
		Workload string  `json:"workload"`
		Trace    string  `json:"trace"`
		HostNs   int64   `json:"host_ns"`
		NsPerOp  float64 `json:"ns_per_op"`
		IPS      float64 `json:"sim_instrs_per_sec"`
		ExecPS   int64   `json:"sim_exec_ps"`
		Instrs   uint64  `json:"instructions"`
		Outages  uint64  `json:"outages"`
		Stalls   uint64  `json:"stalls"`
		Wbacks   uint64  `json:"writebacks"`
		DirtyPk  int     `json:"dirty_peak"`
		AvgDirty float64 `json:"avg_dirty_per_ckpt"`
		Checksum uint32  `json:"checksum"`
	} `json:"results"`
}

func ingestBench(raw []byte, name string) ([]Entry, error) {
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	key := SelfKey()
	if doc.Host != nil {
		key = keyFrom(*doc.Host)
	} else {
		// No host block (pre-PR-9 report): the wall-clock numbers are
		// from an unknown machine, not this one.
		key.Host = Unknown
		key.GitCommit = ""
	}
	metrics := make(map[string]Metric)
	for _, r := range doc.Results {
		p := fmt.Sprintf("%scell.%s.%s.%s.", tierPrefix(doc.Tier), r.Design, r.Workload, r.Trace)
		// Simulated outcomes: deterministic, host-independent.
		metrics[p+"checksum"] = Metric{Value: float64(r.Checksum), Kind: KindExact}
		metrics[p+"instructions"] = Metric{Value: float64(r.Instrs), Kind: KindExact}
		metrics[p+"sim_exec_ps"] = Metric{Value: float64(r.ExecPS), Unit: "ps", Dir: "lower", Kind: KindExact}
		metrics[p+"outages"] = Metric{Value: float64(r.Outages), Dir: "lower", Kind: KindExact}
		metrics[p+"stalls"] = Metric{Value: float64(r.Stalls), Dir: "lower", Kind: KindExact}
		metrics[p+"writebacks"] = Metric{Value: float64(r.Wbacks), Dir: "lower", Kind: KindExact}
		metrics[p+"dirty_peak"] = Metric{Value: float64(r.DirtyPk), Dir: "lower", Kind: KindExact}
		metrics[p+"avg_dirty_per_ckpt"] = Metric{Value: r.AvgDirty, Dir: "lower", Kind: KindExact}
		// Host-speed measurements: gate only within one fingerprint.
		metrics[p+"host_ns"] = Metric{Value: float64(r.HostNs), Unit: "ns", Dir: "lower", Kind: KindPerf}
		metrics[p+"ns_per_op"] = Metric{Value: r.NsPerOp, Unit: "ns/op", Dir: "lower", Kind: KindPerf}
		metrics[p+"sim_instrs_per_sec"] = Metric{Value: r.IPS, Unit: "instr/s", Dir: "higher", Kind: KindPerf}
	}
	return []Entry{{
		Source:  Source{Format: "wlbench/v1", Name: name},
		Key:     key,
		Metrics: metrics,
	}}, nil
}

// --- wlbench-pr/v1 --------------------------------------------------

// benchPRDoc mirrors the hand-written BENCH_PR5.json before/after
// report. It becomes TWO entries — the seed column and the optimized
// column — sharing one host string, so the end-to-end wall time forms
// a real two-point series. The per-benchmark numbers are recorded as
// info metrics on the optimized entry only: the report itself accepts
// one microbenchmark regression (IntegrateShort) as a deliberate
// trade, so those columns must not feed the gate.
type benchPRDoc struct {
	Schema     string `json:"schema"`
	Host       string `json:"host"`
	Tier       string `json:"tier"`
	Benchmarks []struct {
		Name      string   `json:"name"`
		Unit      string   `json:"unit"`
		Seed      *float64 `json:"seed"`
		Optimized float64  `json:"optimized"`
	} `json:"benchmarks"`
	EndToEnd struct {
		SeedWallS      float64 `json:"seed_wall_s"`
		OptimizedWallS float64 `json:"optimized_wall_s"`
	} `json:"end_to_end"`
}

func ingestBenchPR(raw []byte, name string) ([]Entry, error) {
	var doc benchPRDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	host := doc.Host
	if host == "" {
		host = Unknown
	}
	key := Key{Engine: Unknown, Host: host}
	tp := tierPrefix(doc.Tier)
	seed := Entry{
		Source: Source{Format: "wlbench-pr/v1", Name: name + "#seed"},
		Key:    key,
		Metrics: map[string]Metric{
			tp + "e2e.wall_s": {Value: doc.EndToEnd.SeedWallS, Unit: "s", Dir: "lower", Kind: KindPerf},
		},
	}
	opt := Entry{
		Source: Source{Format: "wlbench-pr/v1", Name: name + "#optimized"},
		Key:    key,
		Metrics: map[string]Metric{
			tp + "e2e.wall_s": {Value: doc.EndToEnd.OptimizedWallS, Unit: "s", Dir: "lower", Kind: KindPerf},
		},
	}
	for _, b := range doc.Benchmarks {
		n := strings.TrimPrefix(b.Name, "Benchmark")
		opt.Metrics[tp+"bench."+n] = Metric{Value: b.Optimized, Unit: b.Unit, Dir: "lower", Kind: KindInfo}
		if b.Seed != nil {
			seed.Metrics[tp+"bench."+n] = Metric{Value: *b.Seed, Unit: b.Unit, Dir: "lower", Kind: KindInfo}
		}
	}
	return []Entry{seed, opt}, nil
}

// --- wlload/v1 ------------------------------------------------------

// loadDoc mirrors load.Report.
type loadDoc struct {
	Schema string         `json:"schema"`
	Host   *hostinfo.Info `json:"host"`

	Submitted     int     `json:"submitted"`
	Completed     int     `json:"completed"`
	Shed          int     `json:"shed"`
	HTTP5xx       int     `json:"http_5xx"`
	Failed        int     `json:"failed"`
	ThroughputRPS float64 `json:"throughput_rps"`
	CellsPerSec   float64 `json:"cells_per_sec"`
	Latency       struct {
		P50MS  float64 `json:"p50_ms"`
		P95MS  float64 `json:"p95_ms"`
		P99MS  float64 `json:"p99_ms"`
		MeanMS float64 `json:"mean_ms"`
		MaxMS  float64 `json:"max_ms"`
	} `json:"latency"`
	DedupRatio float64 `json:"dedup_ratio"`
	ShedRate   float64 `json:"shed_rate"`
}

func ingestLoad(raw []byte, name string) ([]Entry, error) {
	var doc loadDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	key := SelfKey()
	if doc.Host != nil {
		key = keyFrom(*doc.Host)
	} else {
		key.Host = Unknown
		key.GitCommit = ""
	}
	metrics := map[string]Metric{
		"load.throughput_rps":  {Value: doc.ThroughputRPS, Unit: "req/s", Dir: "higher", Kind: KindPerf},
		"load.cells_per_sec":   {Value: doc.CellsPerSec, Unit: "cells/s", Dir: "higher", Kind: KindPerf},
		"load.latency.p50_ms":  {Value: doc.Latency.P50MS, Unit: "ms", Dir: "lower", Kind: KindLatency},
		"load.latency.p95_ms":  {Value: doc.Latency.P95MS, Unit: "ms", Dir: "lower", Kind: KindLatency},
		"load.latency.p99_ms":  {Value: doc.Latency.P99MS, Unit: "ms", Dir: "lower", Kind: KindLatency},
		"load.latency.mean_ms": {Value: doc.Latency.MeanMS, Unit: "ms", Dir: "lower", Kind: KindLatency},
		"load.latency.max_ms":  {Value: doc.Latency.MaxMS, Unit: "ms", Dir: "lower", Kind: KindLatency},
		// Correctness counters: any 5xx or failed cell is drift even
		// across hosts.
		"load.http_5xx": {Value: float64(doc.HTTP5xx), Dir: "lower", Kind: KindExact},
		"load.failed":   {Value: float64(doc.Failed), Dir: "lower", Kind: KindExact},
		// Shape of the run: informational (depends on flags and load).
		"load.submitted":   {Value: float64(doc.Submitted), Kind: KindInfo},
		"load.completed":   {Value: float64(doc.Completed), Kind: KindInfo},
		"load.shed":        {Value: float64(doc.Shed), Kind: KindInfo},
		"load.dedup_ratio": {Value: doc.DedupRatio, Kind: KindInfo},
		"load.shed_rate":   {Value: doc.ShedRate, Kind: KindInfo},
	}
	return []Entry{{
		Source:  Source{Format: "wlload/v1", Name: name},
		Key:     key,
		Metrics: metrics,
	}}, nil
}

// --- wlobs/v1 (manifest JSONL) --------------------------------------

func ingestManifest(raw []byte, name string) ([]Entry, error) {
	ms, err := obs.ReadManifests(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	key := SelfKey()
	var entries []Entry
	for _, m := range ms {
		p := fmt.Sprintf("obs.%s.%s.%s.", m.Design, m.Workload, m.Trace)
		metrics := make(map[string]Metric)
		for _, c := range m.Counters {
			metrics[p+c.Name] = Metric{Value: float64(c.Value), Dir: c.Dir, Kind: manifestKind(c.Name)}
		}
		for _, g := range m.Gauges {
			metrics[p+g.Name+".last"] = Metric{Value: g.Last, Dir: g.Dir, Kind: KindInfo}
			metrics[p+g.Name+".max"] = Metric{Value: g.Max, Dir: g.Dir, Kind: KindInfo}
		}
		for _, h := range m.Histograms {
			if h.Count == 0 {
				continue
			}
			metrics[p+h.Name+".mean"] = Metric{Value: h.Sum / float64(h.Count), Dir: h.Dir, Kind: KindInfo}
			metrics[p+h.Name+".max"] = Metric{Value: h.Max, Dir: h.Dir, Kind: KindInfo}
		}
		entries = append(entries, Entry{
			Source:  Source{Format: obs.Schema, Name: name + "#" + m.Design + "/" + m.Workload + "/" + m.Trace},
			Key:     key,
			Metrics: metrics,
		})
	}
	return entries, nil
}

// manifestKind classifies a manifest counter: the simulated outcome
// and power counters are deterministic per engine version, the rest
// trend informationally (their regressions are judged by the manifest
// differ, which knows per-metric thresholds).
func manifestKind(name string) string {
	switch name {
	case "result.checksum", "power.outages":
		return KindExact
	}
	return KindInfo
}

// --- wlattr/v1 ------------------------------------------------------

func ingestAttr(raw []byte, name string) ([]Entry, error) {
	recs, err := obs.ReadAttrs(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	key := SelfKey()
	var entries []Entry
	for _, r := range recs {
		p := fmt.Sprintf("attr.%s.%s.%s.", r.Design, r.Workload, r.Trace)
		metrics := map[string]Metric{
			p + "total_ps":       {Value: float64(r.TotalPS), Unit: "ps", Dir: "lower", Kind: KindExact},
			p + "coverage":       {Value: r.Coverage, Dir: "higher", Kind: KindPerf},
			p + "unknown_ps":     {Value: float64(r.UnknownPS), Unit: "ps", Dir: "lower", Kind: KindInfo},
			p + "events_dropped": {Value: float64(r.EventsDropped), Dir: "lower", Kind: KindExact},
		}
		for cat, ps := range r.Categories {
			kind := KindPerf
			dir := "lower"
			if cat == "compute" {
				// Compute time is the workload itself, not overhead.
				kind, dir = KindInfo, ""
			}
			metrics[p+"cat."+cat+"_ps"] = Metric{Value: float64(ps), Unit: "ps", Dir: dir, Kind: kind}
		}
		entries = append(entries, Entry{
			Source:  Source{Format: obs.AttrFormat, Name: name + "#" + r.Design + "/" + r.Workload + "/" + r.Trace},
			Key:     key,
			Metrics: metrics,
		})
	}
	return entries, nil
}

// --- Prometheus text ------------------------------------------------

// ingestProm flattens a /metrics scrape into info metrics: a live
// gauge read is a point-in-time snapshot of a moving system, useful
// for trends and dashboards but never a gate. Histogram buckets are
// skipped (the _sum/_count series carry the trend).
func ingestProm(raw []byte, name string) ([]Entry, error) {
	samples, err := obs.ParsePrometheus(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	metrics := make(map[string]Metric)
	for _, s := range samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		n := "prom." + s.Name
		if len(s.Labels) > 0 {
			n += "{" + promLabelSignature(s.Labels) + "}"
		}
		metrics[n] = Metric{Value: s.Value, Kind: KindInfo}
	}
	return []Entry{{
		Source:  Source{Format: "prometheus", Name: name},
		Key:     SelfKey(),
		Metrics: metrics,
	}}, nil
}

// promLabelSignature renders a label set deterministically.
func promLabelSignature(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}
