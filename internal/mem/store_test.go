package mem

import (
	"testing"
	"testing/quick"
)

func TestStoreReadWrite(t *testing.T) {
	s := NewStore()
	if got := s.Read(0x1000); got != 0 {
		t.Fatalf("fresh store read = %#x, want 0", got)
	}
	s.Write(0x1000, 0xdeadbeef)
	if got := s.Read(0x1000); got != 0xdeadbeef {
		t.Fatalf("read = %#x, want 0xdeadbeef", got)
	}
	// Neighbors unaffected.
	if got := s.Read(0x1004); got != 0 {
		t.Fatalf("neighbor read = %#x, want 0", got)
	}
	s.Write(0x1000, 1)
	if got := s.Read(0x1000); got != 1 {
		t.Fatalf("overwrite read = %#x, want 1", got)
	}
}

func TestStoreCrossesPageBoundaries(t *testing.T) {
	s := NewStore()
	// Write around a 4 KiB page boundary.
	for _, addr := range []uint32{0x0ffc, 0x1000, 0x1ffc, 0x2000, 0xfffffffc} {
		s.Write(addr, addr^0x5a5a5a5a)
	}
	for _, addr := range []uint32{0x0ffc, 0x1000, 0x1ffc, 0x2000, 0xfffffffc} {
		if got := s.Read(addr); got != addr^0x5a5a5a5a {
			t.Errorf("read(%#x) = %#x, want %#x", addr, got, addr^0x5a5a5a5a)
		}
	}
}

func TestStoreUnalignedPanics(t *testing.T) {
	s := NewStore()
	for _, addr := range []uint32{1, 2, 3, 0x1001, 0x1002, 0x1003} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for unaligned address %#x", addr)
				}
			}()
			s.Read(addr)
		}()
	}
}

func TestStoreLineOps(t *testing.T) {
	s := NewStore()
	src := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	s.WriteLine(0x4000, src)
	dst := make([]uint32, 8)
	s.ReadLine(0x4000, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("line word %d = %d, want %d", i, dst[i], src[i])
		}
	}
	// Individual words visible too.
	if got := s.Read(0x4000 + 12); got != 4 {
		t.Fatalf("word read through line = %d, want 4", got)
	}
}

func TestStoreEqualAndDiff(t *testing.T) {
	a, b := NewStore(), NewStore()
	if !a.Equal(b) {
		t.Fatal("two empty stores should be equal")
	}
	a.Write(0x100, 7)
	if a.Equal(b) {
		t.Fatal("stores differ but Equal returned true")
	}
	if d := a.FirstDiff(b); d == "" {
		t.Fatal("FirstDiff empty for differing stores")
	}
	b.Write(0x100, 7)
	if !a.Equal(b) {
		t.Fatal("stores equal but Equal returned false")
	}
	// Zero-valued write equals missing page.
	b.Write(0x2000, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("explicit zero must equal absent page (both directions)")
	}
}

func TestStoreClone(t *testing.T) {
	a := NewStore()
	a.Write(0x100, 42)
	c := a.Clone()
	c.Write(0x100, 43)
	if a.Read(0x100) != 42 {
		t.Fatal("clone write mutated the original")
	}
	if c.Read(0x100) != 43 {
		t.Fatal("clone lost its own write")
	}
}

func TestStoreReset(t *testing.T) {
	s := NewStore()
	s.Write(0x100, 1)
	s.Reset()
	if s.Read(0x100) != 0 {
		t.Fatal("Reset did not clear contents")
	}
}

// TestStoreQuickRoundTrip property: the last write to an address wins.
func TestStoreQuickRoundTrip(t *testing.T) {
	f := func(addrs []uint32, vals []uint32) bool {
		s := NewStore()
		last := map[uint32]uint32{}
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a := addrs[i] &^ 3
			s.Write(a, vals[i])
			last[a] = vals[i]
		}
		for a, v := range last {
			if s.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreQuickCloneEqual property: a clone always equals its source.
func TestStoreQuickCloneEqual(t *testing.T) {
	f := func(addrs []uint32, vals []uint32) bool {
		s := NewStore()
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			s.Write(addrs[i]&^3, vals[i])
		}
		return s.Equal(s.Clone()) && s.Clone().Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
