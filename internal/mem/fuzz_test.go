package mem

import "testing"

// FuzzStoreVsMap cross-checks the paged store against a plain map
// under arbitrary write sequences encoded as bytes.
func FuzzStoreVsMap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0xfc, 0x00, 0x10, 0x20})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewStore()
		ref := map[uint32]uint32{}
		for i := 0; i+8 <= len(data); i += 8 {
			addr := (uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24) &^ 3
			val := uint32(data[i+4]) | uint32(data[i+5])<<8 | uint32(data[i+6])<<16 | uint32(data[i+7])<<24
			s.Write(addr, val)
			ref[addr] = val
			if got := s.Read(addr); got != val {
				t.Fatalf("read-after-write %#x: %#x != %#x", addr, got, val)
			}
		}
		for a, v := range ref {
			if got := s.Read(a); got != v {
				t.Fatalf("final read %#x: %#x != %#x", a, got, v)
			}
		}
		if !s.Equal(s.Clone()) {
			t.Fatal("clone not equal")
		}
	})
}
