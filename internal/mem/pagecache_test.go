package mem

import (
	"math/rand"
	"testing"
)

// naiveReadLine is the pre-page-aware reference: one full address
// resolution per word.
func naiveReadLine(s *Store, addr uint32, dst []uint32) {
	for i := range dst {
		dst[i] = s.Read(addr + uint32(i*4))
	}
}

// naiveWriteLine mirrors naiveReadLine for stores.
func naiveWriteLine(s *Store, addr uint32, src []uint32) {
	for i, v := range src {
		s.Write(addr+uint32(i*4), v)
	}
}

// TestStorePropertyRandomOps drives a Store with a random mix of word
// and line operations against a flat map model and a second Store fed
// exclusively through the naive per-word paths. The one-entry page
// cache and the run-based line paths must be invisible.
func TestStorePropertyRandomOps(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	s := NewStore()
	naive := NewStore()
	model := map[uint32]uint32{}

	// Cluster addresses around a few pages (to exercise the cache) plus
	// a uniform tail (to exercise misses and page switches).
	randAddr := func() uint32 {
		if r.Intn(4) > 0 {
			base := uint32(r.Intn(4)) << pageShift
			return base + uint32(r.Intn(pageWords))<<2
		}
		return uint32(r.Intn(1<<20)) << 2
	}

	buf := make([]uint32, 64)
	for i := 0; i < 200_000; i++ {
		switch r.Intn(6) {
		case 0, 1: // word write
			a, v := randAddr(), r.Uint32()
			s.Write(a, v)
			naive.Write(a, v)
			model[a] = v
		case 2, 3: // word read
			a := randAddr()
			if got, want := s.Read(a), model[a]; got != want {
				t.Fatalf("op %d: Read(%#x) = %#x, want %#x", i, a, got, want)
			}
		case 4: // line write (random length, may span a page boundary)
			n := 1 + r.Intn(len(buf))
			a := randAddr()
			for j := 0; j < n; j++ {
				buf[j] = r.Uint32()
			}
			s.WriteLine(a, buf[:n])
			naiveWriteLine(naive, a, buf[:n])
			for j := 0; j < n; j++ {
				model[a+uint32(j*4)] = buf[j]
			}
		default: // line read
			n := 1 + r.Intn(len(buf))
			a := randAddr()
			s.ReadLine(a, buf[:n])
			for j := 0; j < n; j++ {
				if want := model[a+uint32(j*4)]; buf[j] != want {
					t.Fatalf("op %d: ReadLine(%#x)[%d] = %#x, want %#x", i, a, j, buf[j], want)
				}
			}
		}
	}
	if d := s.FirstDiff(naive); d != "" {
		t.Fatalf("page-aware store diverged from naive store: %s", d)
	}
}

// TestStoreLineSpansPages pins the page-boundary split in the run-based
// line paths: a line written across a boundary must land in both pages
// and read back through both the fast path and the per-word path.
func TestStoreLineSpansPages(t *testing.T) {
	s := NewStore()
	const words = 16
	// Start 8 words before the end of page 2.
	addr := uint32(3)<<pageShift - 8*4
	src := make([]uint32, words)
	for i := range src {
		src[i] = 0xA0000000 + uint32(i)
	}
	s.WriteLine(addr, src)

	got := make([]uint32, words)
	s.ReadLine(addr, got)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("ReadLine[%d] = %#x, want %#x", i, got[i], src[i])
		}
		if v := s.Read(addr + uint32(i*4)); v != src[i] {
			t.Fatalf("Read(%#x) = %#x, want %#x", addr+uint32(i*4), v, src[i])
		}
	}

	// Reading a line that starts in an allocated page and runs into an
	// untouched one must zero-fill the tail.
	s.Write(uint32(9)<<pageShift-4, 0xBEEF) // last word of page 8; page 9 untouched
	tail := make([]uint32, words)
	for i := range tail {
		tail[i] = 0xFF // stale garbage that must be overwritten
	}
	s.ReadLine(uint32(9)<<pageShift-4, tail)
	if tail[0] != 0xBEEF {
		t.Fatalf("tail[0] = %#x, want 0xBEEF", tail[0])
	}
	for i := 1; i < words; i++ {
		if tail[i] != 0 {
			t.Fatalf("tail[%d] = %#x, want zero fill", i, tail[i])
		}
	}
}

// TestStoreResetInvalidatesPageCache is the regression test for the
// one-entry cache surviving a Reset: a read after Reset must miss, and
// a write after Reset must not scribble on the discarded page.
func TestStoreResetInvalidatesPageCache(t *testing.T) {
	s := NewStore()
	s.Write(0x1000, 42) // caches page 1
	old := s.lastPage
	s.Reset()
	if s.lastPage != nil {
		t.Fatal("Reset left the page cache populated")
	}
	if v := s.Read(0x1000); v != 0 {
		t.Fatalf("Read after Reset = %d, want 0", v)
	}
	s.Write(0x1000, 7)
	if old != nil && old[0x1000>>2&(pageWords-1)] == 7 {
		t.Fatal("write after Reset landed in the discarded page")
	}
	if v := s.Read(0x1000); v != 7 {
		t.Fatalf("Read = %d, want 7", v)
	}
}

// TestStoreCloneIndependentOfPageCache: mutating a clone must never
// show through the original's cached page (and vice versa).
func TestStoreCloneIndependentOfPageCache(t *testing.T) {
	s := NewStore()
	s.Write(0x2000, 1) // caches page 2 in s
	c := s.Clone()
	c.Write(0x2000, 9)
	if v := s.Read(0x2000); v != 1 {
		t.Fatalf("original sees clone's write: %d", v)
	}
	s.Write(0x2000, 5)
	if v := c.Read(0x2000); v != 9 {
		t.Fatalf("clone sees original's write: %d", v)
	}
}
