package mem

// NVMParams are the timing and energy parameters of the NVM main
// memory. Times are picoseconds, energies joules. The defaults are
// derived from Table 2's ReRAM timing: a word read costs roughly
// tRCD+tCL (~40 ns); a synchronous word write hits the row buffer
// (~tCL+tBURST, 25 ns) while full-line write-backs pay the array write
// (tWR = 150 ns); a line read streams after the first word.
type NVMParams struct {
	WordReadLatency  int64 // ps, one word
	WordWriteLatency int64 // ps, one word (row-buffer write, store path)
	// WordWriteOccupancy is how long a word write holds the port; it
	// is shorter than the latency because writes pipeline through the
	// row buffer (asynchronous persists sustain this rate while a
	// synchronous write-through store still waits the full latency).
	WordWriteOccupancy int64
	LineReadLatency    int64 // ps, one full line (miss fill)
	LineWriteLatency   int64 // ps, one full line (write-back path)

	WordReadEnergy  float64 // J
	WordWriteEnergy float64 // J
	LineReadEnergy  float64 // J
	LineWriteEnergy float64 // J, coalesced full-line write
}

// DefaultNVMParams returns the Table 2 ReRAM configuration.
func DefaultNVMParams() NVMParams {
	return NVMParams{
		WordReadLatency:    40_000,  // 40 ns
		WordWriteLatency:   40_000,  // 40 ns synchronous store
		WordWriteOccupancy: 12_000,  // 12 ns pipelined
		LineReadLatency:    60_000,  // 60 ns
		LineWriteLatency:   150_000, // tWR = 150 ns
		WordReadEnergy:     1.0e-9,
		WordWriteEnergy:    0.75e-9,
		LineReadEnergy:     1.5e-9,
		LineWriteEnergy:    2.0e-9,
	}
}

// Traffic tallies NVM accesses in words.
type Traffic struct {
	ReadWords  uint64
	WriteWords uint64
	Reads      uint64 // read transactions
	Writes     uint64 // write transactions
}

// WriteBytes returns the write traffic in bytes.
func (t Traffic) WriteBytes() uint64 { return t.WriteWords * 4 }

// ReadBytes returns the read traffic in bytes.
func (t Traffic) ReadBytes() uint64 { return t.ReadWords * 4 }

// LineWrite describes one full-line write for fault injection: when it
// was issued, when the single port begins and completes it, and the
// words being written. Data is only valid for the duration of the hook
// call; hooks must copy it if they retain it.
type LineWrite struct {
	Now   int64 // issue time
	Start int64 // when the port begins the write (>= Now)
	Done  int64 // when the write completes
	Addr  uint32
	Data  []uint32
}

// LineWriteHook observes every full-line write before it persists and
// returns how many leading words actually reach the NVM image; values
// >= len(Data) persist the whole line. This models torn line writes: a
// power failure landing inside the write window leaves only a prefix
// of the line in the array (word persists are atomic, line persists
// are not). Timing and energy are charged in full either way — the
// write was attempted. A nil hook (the default) persists everything.
type LineWriteHook func(w LineWrite) int

// PortObserver watches the single NVM port's contention: every access
// reports how long it waited for the port to free. The observability
// layer (internal/obs) installs a recorder here; nil (the default)
// disables observation at the cost of one nil check per access.
type PortObserver interface {
	// PortWait reports an access of addr issued at now that waited
	// `wait` ps (possibly 0) for the port; write distinguishes the
	// write path. async marks fire-and-forget accesses (asynchronous
	// write-backs, buffered persists) whose port wait is overlapped by
	// execution rather than stalling the core — the distinction the
	// cycle-attribution ledger (internal/obs) depends on.
	PortWait(now, wait int64, addr uint32, write, async bool)
}

// NVM is the non-volatile main memory: a value store fronted by a
// single-ported timing model. Accesses serialize on the port; an
// access issued at time now while the port is busy starts when the
// port frees. Contents survive power failure by construction — except
// where an installed LineWriteHook injects torn writes.
type NVM struct {
	params    NVMParams
	image     *Store
	busyUntil int64
	traffic   Traffic
	lineHook  LineWriteHook
	port      PortObserver
}

// NewNVM returns an NVM with the given parameters and an all-zero image.
func NewNVM(p NVMParams) *NVM {
	return &NVM{params: p, image: NewStore()}
}

// Image exposes the underlying value store (timing-free; used for
// initialization and consistency checks).
func (n *NVM) Image() *Store { return n.image }

// Params returns the timing/energy parameters.
func (n *NVM) Params() NVMParams { return n.params }

// Traffic returns the cumulative access tallies.
func (n *NVM) Traffic() Traffic { return n.traffic }

// ReadWord reads one word at time now, returning the value, completion
// time and energy drawn.
func (n *NVM) ReadWord(now int64, addr uint32) (v uint32, done int64, energy float64) {
	done = n.occupy(now, n.params.WordReadLatency, addr)
	n.traffic.ReadWords++
	n.traffic.Reads++
	return n.image.Read(addr), done, n.params.WordReadEnergy
}

// WriteWord writes one word at time now (store path). The returned
// completion time reflects the full write latency, while the port
// frees after the (shorter) occupancy.
func (n *NVM) WriteWord(now int64, addr uint32, v uint32) (done int64, energy float64) {
	return n.writeWord(now, addr, v, false)
}

// WriteWordAsync is WriteWord for fire-and-forget persists (buffered
// write-through stores, replay logs) whose completion the core does
// not wait for: timing, energy and image effects are identical, only
// the port observer sees the wait as overlapped instead of blocking.
func (n *NVM) WriteWordAsync(now int64, addr uint32, v uint32) (done int64, energy float64) {
	return n.writeWord(now, addr, v, true)
}

func (n *NVM) writeWord(now int64, addr uint32, v uint32, async bool) (done int64, energy float64) {
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	if n.port != nil {
		n.port.PortWait(now, start-now, addr, true, async)
	}
	n.busyUntil = start + n.params.WordWriteOccupancy
	done = start + n.params.WordWriteLatency
	n.image.Write(addr, v)
	n.traffic.WriteWords++
	n.traffic.Writes++
	return done, n.params.WordWriteEnergy
}

// ReadLine reads len(dst) words starting at addr (miss fill).
func (n *NVM) ReadLine(now int64, addr uint32, dst []uint32) (done int64, energy float64) {
	done = n.occupy(now, n.params.LineReadLatency, addr)
	n.image.ReadLine(addr, dst)
	n.traffic.ReadWords += uint64(len(dst))
	n.traffic.Reads++
	return done, n.params.LineReadEnergy
}

// WriteLine writes the words in src starting at addr (write-back path).
// An installed LineWriteHook may truncate the persist to a prefix.
func (n *NVM) WriteLine(now int64, addr uint32, src []uint32) (done int64, energy float64) {
	return n.writeLine(now, addr, src, false)
}

// WriteLineAsync is WriteLine for asynchronous write-backs the core
// does not wait on (DirtyQueue cleaning, eager flushes): identical
// timing, energy and image effects, but the port observer sees the
// wait as overlapped by execution instead of blocking it.
func (n *NVM) WriteLineAsync(now int64, addr uint32, src []uint32) (done int64, energy float64) {
	return n.writeLine(now, addr, src, true)
}

func (n *NVM) writeLine(now int64, addr uint32, src []uint32, async bool) (done int64, energy float64) {
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	if n.port != nil {
		n.port.PortWait(now, start-now, addr, true, async)
	}
	done = start + n.params.LineWriteLatency
	n.busyUntil = done
	persist := len(src)
	if n.lineHook != nil {
		if k := n.lineHook(LineWrite{Now: now, Start: start, Done: done, Addr: addr, Data: src}); k < persist {
			persist = max(k, 0)
		}
	}
	n.image.WriteLine(addr, src[:persist])
	n.traffic.WriteWords += uint64(len(src))
	n.traffic.Writes++
	return done, n.params.LineWriteEnergy
}

// SetLineWriteHook installs (or, with nil, removes) the fault-injection
// hook consulted on every full-line write.
func (n *NVM) SetLineWriteHook(h LineWriteHook) { n.lineHook = h }

// SetPortObserver installs (or, with nil, removes) the port-contention
// observer consulted on every access.
func (n *NVM) SetPortObserver(o PortObserver) { n.port = o }

// BusyUntil returns the time at which the port frees.
func (n *NVM) BusyUntil() int64 { return n.busyUntil }

func (n *NVM) occupy(now, latency int64, addr uint32) (done int64) {
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	if n.port != nil {
		n.port.PortWait(now, start-now, addr, false, false)
	}
	done = start + latency
	n.busyUntil = done
	return done
}
