// Package mem models the byte-addressable non-volatile main memory
// (NVM) of an energy harvesting system: a paged word-granular value
// store plus a timing/energy front end with single-port contention.
package mem

import "fmt"

const (
	// pageWords is the number of 32-bit words per page (4 KiB pages).
	pageWords = 1024
	pageShift = 12 // log2(pageWords * 4)
)

// Store is a sparse word-addressable value image. The zero value is an
// empty store in which every word reads as zero. Store has no timing;
// it is the raw data substrate shared by NVM images and cache lines.
//
// A one-entry last-page cache short-circuits the page-map lookup:
// simulated access streams have strong page locality, so most word
// accesses and virtually all line accesses resolve without touching
// the map.
type Store struct {
	pages map[uint32]*[pageWords]uint32

	lastIdx  uint32
	lastPage *[pageWords]uint32
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pages: make(map[uint32]*[pageWords]uint32)}
}

// page returns the page holding addr, consulting the last-page cache
// first; nil when the page does not exist.
func (s *Store) page(idx uint32) *[pageWords]uint32 {
	if p := s.lastPage; p != nil && s.lastIdx == idx {
		return p
	}
	p := s.pages[idx]
	if p != nil {
		s.lastIdx, s.lastPage = idx, p
	}
	return p
}

// ensurePage returns the page holding addr, allocating it on first
// write.
func (s *Store) ensurePage(idx uint32) *[pageWords]uint32 {
	if p := s.lastPage; p != nil && s.lastIdx == idx {
		return p
	}
	p := s.pages[idx]
	if p == nil {
		p = new([pageWords]uint32)
		s.pages[idx] = p
	}
	s.lastIdx, s.lastPage = idx, p
	return p
}

// Read returns the word at byte address addr (must be 4-byte aligned).
func (s *Store) Read(addr uint32) uint32 {
	checkAlign(addr)
	p := s.page(addr >> pageShift)
	if p == nil {
		return 0
	}
	return p[(addr>>2)&(pageWords-1)]
}

// Write sets the word at byte address addr (must be 4-byte aligned).
func (s *Store) Write(addr uint32, v uint32) {
	checkAlign(addr)
	s.ensurePage(addr >> pageShift)[(addr>>2)&(pageWords-1)] = v
}

// ReadLine copies the n words starting at byte address addr into dst,
// resolving each page once per contiguous run instead of once per word
// (a cache line never spans pages, so this is one resolution per call).
func (s *Store) ReadLine(addr uint32, dst []uint32) {
	checkAlign(addr)
	for len(dst) > 0 {
		w := (addr >> 2) & (pageWords - 1)
		n := uint32(pageWords) - w
		if n > uint32(len(dst)) {
			n = uint32(len(dst))
		}
		if p := s.page(addr >> pageShift); p != nil {
			copy(dst[:n], p[w:w+n])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		addr += n * 4
	}
}

// WriteLine stores the words in src starting at byte address addr,
// resolving each page once per contiguous run.
func (s *Store) WriteLine(addr uint32, src []uint32) {
	checkAlign(addr)
	for len(src) > 0 {
		w := (addr >> 2) & (pageWords - 1)
		n := uint32(pageWords) - w
		if n > uint32(len(src)) {
			n = uint32(len(src))
		}
		copy(s.ensurePage(addr >> pageShift)[w:w+n], src[:n])
		src = src[n:]
		addr += n * 4
	}
}

// Equal reports whether the two stores hold identical contents. Pages
// absent from one store compare equal to all-zero pages in the other.
func (s *Store) Equal(o *Store) bool {
	return s.firstDiff(o) == nil
}

// FirstDiff returns a description of the first differing word between
// the two stores, or "" if they are equal. Useful in test failures.
func (s *Store) FirstDiff(o *Store) string {
	d := s.firstDiff(o)
	if d == nil {
		return ""
	}
	return fmt.Sprintf("addr %#x: %#x != %#x", d.addr, d.a, d.b)
}

type diff struct {
	addr uint32
	a, b uint32
}

func (s *Store) firstDiff(o *Store) *diff {
	for idx, p := range s.pages {
		q := o.pages[idx]
		for i, v := range p {
			var w uint32
			if q != nil {
				w = q[i]
			}
			if v != w {
				return &diff{idx<<pageShift | uint32(i*4), v, w}
			}
		}
	}
	for idx, q := range o.pages {
		if s.pages[idx] != nil {
			continue // already compared above
		}
		for i, w := range q {
			if w != 0 {
				return &diff{idx<<pageShift | uint32(i*4), 0, w}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	c := NewStore()
	for idx, p := range s.pages {
		cp := *p
		c.pages[idx] = &cp
	}
	return c
}

// Reset discards all contents.
func (s *Store) Reset() {
	s.pages = make(map[uint32]*[pageWords]uint32)
	s.lastIdx, s.lastPage = 0, nil
}

func checkAlign(addr uint32) {
	if addr&3 != 0 {
		panic(fmt.Sprintf("mem: unaligned word access at %#x", addr))
	}
}
