package mem

import (
	"testing"
	"testing/quick"
)

func TestNVMWordTiming(t *testing.T) {
	n := NewNVM(DefaultNVMParams())
	p := n.Params()
	v, done, e := n.ReadWord(1000, 0x100)
	if v != 0 {
		t.Fatalf("fresh read = %#x", v)
	}
	if done != 1000+p.WordReadLatency {
		t.Fatalf("read done = %d, want %d", done, 1000+p.WordReadLatency)
	}
	if e != p.WordReadEnergy {
		t.Fatalf("read energy = %g", e)
	}
	// Port serialization: the next access waits for the first.
	_, done2, _ := n.ReadWord(1000, 0x104)
	if done2 != done+p.WordReadLatency {
		t.Fatalf("second read done = %d, want %d", done2, done+p.WordReadLatency)
	}
}

func TestNVMWriteOccupancyShorterThanLatency(t *testing.T) {
	n := NewNVM(DefaultNVMParams())
	p := n.Params()
	done, _ := n.WriteWord(0, 0x100, 1)
	if done != p.WordWriteLatency {
		t.Fatalf("write done = %d, want %d", done, p.WordWriteLatency)
	}
	// The port frees earlier than the write completes: a back-to-back
	// write starts at the occupancy boundary.
	done2, _ := n.WriteWord(0, 0x104, 2)
	if want := p.WordWriteOccupancy + p.WordWriteLatency; done2 != want {
		t.Fatalf("pipelined write done = %d, want %d", done2, want)
	}
	if n.Image().Read(0x100) != 1 || n.Image().Read(0x104) != 2 {
		t.Fatal("writes not visible in image")
	}
}

func TestNVMLineOps(t *testing.T) {
	n := NewNVM(DefaultNVMParams())
	src := []uint32{10, 20, 30, 40}
	done, e := n.WriteLine(0, 0x200, src)
	if done != n.Params().LineWriteLatency {
		t.Fatalf("line write done = %d", done)
	}
	if e != n.Params().LineWriteEnergy {
		t.Fatalf("line write energy = %g", e)
	}
	dst := make([]uint32, 4)
	_, _ = n.ReadLine(done, 0x200, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("line word %d = %d", i, dst[i])
		}
	}
}

func TestNVMTrafficAccounting(t *testing.T) {
	n := NewNVM(DefaultNVMParams())
	n.WriteWord(0, 0, 1)
	n.WriteLine(0, 64, make([]uint32, 16))
	n.ReadWord(0, 0)
	n.ReadLine(0, 64, make([]uint32, 16))
	tr := n.Traffic()
	if tr.WriteWords != 17 || tr.ReadWords != 17 {
		t.Fatalf("traffic = %+v, want 17 write / 17 read words", tr)
	}
	if tr.Writes != 2 || tr.Reads != 2 {
		t.Fatalf("transactions = %+v", tr)
	}
	if tr.WriteBytes() != 68 || tr.ReadBytes() != 68 {
		t.Fatalf("bytes = %d/%d", tr.WriteBytes(), tr.ReadBytes())
	}
}

// Property: NVM timestamps are monotonic no matter the interleaving.
func TestNVMQuickMonotonicPort(t *testing.T) {
	f := func(ops []uint8) bool {
		n := NewNVM(DefaultNVMParams())
		now := int64(0)
		prevDone := int64(0)
		buf := make([]uint32, 4)
		for i, op := range ops {
			var done int64
			addr := uint32(i*4) & 0xffff
			switch op % 4 {
			case 0:
				_, done, _ = n.ReadWord(now, addr)
			case 1:
				done, _ = n.WriteWord(now, addr, uint32(i))
			case 2:
				done, _ = n.ReadLine(now, addr&^15, buf)
			case 3:
				done, _ = n.WriteLine(now, addr&^15, buf)
			}
			if done < prevDone && op%4 != 1 {
				// Word writes may complete before an earlier write's
				// full latency (pipelining) but never before its own
				// start; everything else serializes.
				return false
			}
			if done <= now {
				return false
			}
			prevDone = done
			now += int64(op) * 100
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
