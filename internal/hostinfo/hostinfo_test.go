package hostinfo

import (
	"strings"
	"testing"

	"wlcache/internal/sim"
)

func TestCollect(t *testing.T) {
	i := Collect()
	if i.GoVersion == "" || i.GoMaxProcs < 1 || i.NumCPU < 1 {
		t.Fatalf("incomplete info: %+v", i)
	}
	if i.Engine != sim.EngineVersion {
		t.Fatalf("engine %q, want %q", i.Engine, sim.EngineVersion)
	}
	if i.CPUModel == "" {
		t.Fatal("empty CPU model (architecture fallback should fill it)")
	}
}

// The fingerprint separates "same machine class" from "not comparable":
// a populated Info never fingerprints as unknown, the zero Info always
// does, and the go version / CPU both participate.
func TestFingerprint(t *testing.T) {
	if got := (Info{}).Fingerprint(); got != "unknown" {
		t.Fatalf("zero Info fingerprint = %q, want unknown", got)
	}
	i := Collect()
	fp := i.Fingerprint()
	if fp == "unknown" {
		t.Fatal("collected Info fingerprints as unknown")
	}
	for _, part := range []string{i.GoVersion, i.CPUModel} {
		if !strings.Contains(fp, part) {
			t.Fatalf("fingerprint %q lacks %q", fp, part)
		}
	}
	j := i
	j.CPUModel = "other-cpu"
	if j.Fingerprint() == fp {
		t.Fatal("different CPU models share a fingerprint")
	}
}

func TestVersion(t *testing.T) {
	out := Version("wltool")
	for _, want := range []string{"wltool", sim.EngineVersion, "go:", "commit:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Version output lacks %q:\n%s", want, out)
		}
	}
}
