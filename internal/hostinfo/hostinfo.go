// Package hostinfo collects the machine and binary identity that makes
// performance numbers comparable: go toolchain, GOMAXPROCS, CPU model,
// the simulator engine version and the git commit the binary was built
// from. Reports embed an Info block so the run-history store can key
// every entry comparable-or-explicitly-not; the CLIs print it under
// -version so operators can correlate deployed binaries with history
// entries.
package hostinfo

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"

	"wlcache/internal/sim"
)

// Info is the host metadata block embedded in wlbench/wlload reports
// and used for run-history comparability keys.
type Info struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUModel   string `json:"cpu_model"`
	// Engine is sim.EngineVersion: simulated outcomes from different
	// engines are different experiments, not regressions.
	Engine string `json:"engine"`
	// GitCommit is the VCS revision baked into the binary (empty when
	// built outside a checkout and no CI env names one).
	GitCommit string `json:"git_commit,omitempty"`
}

// Collect gathers the current process's host metadata.
func Collect() Info {
	return Info{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpuModel(),
		Engine:     sim.EngineVersion,
		GitCommit:  gitCommit(),
	}
}

// Fingerprint collapses the performance-relevant identity into one
// comparable string. Two entries with equal fingerprints ran on the
// same class of machine; anything else makes wall-clock comparisons
// meaningless. The zero Info fingerprints as "unknown" — the key old
// reports without a host block ingest under.
func (i Info) Fingerprint() string {
	if i.GoVersion == "" {
		return "unknown"
	}
	return fmt.Sprintf("%s %s/%s maxprocs=%d cpu=%s",
		i.GoVersion, i.GOOS, i.GOARCH, i.GoMaxProcs, i.CPUModel)
}

// cpuModel reads the CPU model name from /proc/cpuinfo, falling back
// to the architecture when the file is absent (non-Linux) or unparsed.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(raw), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(key) {
		case "model name", "Hardware", "cpu model":
			if v := strings.TrimSpace(val); v != "" {
				return v
			}
		}
	}
	return runtime.GOARCH
}

// gitCommit returns the VCS revision recorded by the go toolchain at
// build time, or the CI-provided GITHUB_SHA when the build info lacks
// one (e.g. `go run` of a dirty checkout under Actions).
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return os.Getenv("GITHUB_SHA")
}

// Version renders the -version output every CLI shares: tool name,
// engine version, toolchain, host fingerprint and commit.
func Version(tool string) string {
	i := Collect()
	commit := i.GitCommit
	if commit == "" {
		commit = "unknown"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s\n", tool, i.Engine)
	fmt.Fprintf(&b, "  go:     %s %s/%s\n", i.GoVersion, i.GOOS, i.GOARCH)
	fmt.Fprintf(&b, "  host:   %s\n", i.Fingerprint())
	fmt.Fprintf(&b, "  commit: %s", commit)
	return b.String()
}
