package energy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCapacitorBasics(t *testing.T) {
	c := NewCapacitor(1e-6, 2.8, 3.5)
	if c.Voltage() != 3.5 {
		t.Fatalf("initial voltage %g", c.Voltage())
	}
	if c.Capacitance() != 1e-6 || c.VMin() != 2.8 || c.VMax() != 3.5 {
		t.Fatal("accessors wrong")
	}
	wantE := 0.5 * 1e-6 * 3.5 * 3.5
	if math.Abs(c.Energy()-wantE) > 1e-12 {
		t.Fatalf("energy %g, want %g", c.Energy(), wantE)
	}
}

func TestCapacitorDrawHarvestRoundTrip(t *testing.T) {
	c := NewCapacitor(1e-6, 2.8, 3.5)
	before := c.Energy()
	c.Draw(1e-6)
	if math.Abs(before-c.Energy()-1e-6) > 1e-12 {
		t.Fatalf("draw accounting off: %g", before-c.Energy())
	}
	c.Harvest(1e-6)
	if math.Abs(c.Energy()-before) > 1e-12 {
		t.Fatal("harvest did not restore energy")
	}
}

func TestCapacitorClampsAtVMax(t *testing.T) {
	c := NewCapacitor(1e-6, 2.8, 3.5)
	c.Harvest(1) // way too much
	if c.Voltage() > 3.5 {
		t.Fatalf("voltage %g exceeds VMax", c.Voltage())
	}
}

func TestCapacitorDrawBelowZeroClamps(t *testing.T) {
	c := NewCapacitor(1e-6, 2.8, 3.5)
	c.Draw(1) // more than stored
	if c.Voltage() != 0 {
		t.Fatalf("voltage %g, want 0", c.Voltage())
	}
}

func TestCapacitorEnergyAbove(t *testing.T) {
	c := NewCapacitor(1e-6, 2.8, 3.5)
	got := c.EnergyAbove(2.8)
	want := 0.5 * 1e-6 * (3.5*3.5 - 2.8*2.8)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EnergyAbove = %g, want %g", got, want)
	}
	c.SetVoltage(2.0)
	if c.EnergyAbove(2.8) != 0 {
		t.Fatal("EnergyAbove below floor must be 0")
	}
}

func TestCapacitorTimeToReach(t *testing.T) {
	c := NewCapacitor(1e-6, 2.8, 3.5)
	c.SetVoltage(2.8)
	need := 0.5 * 1e-6 * (3.3*3.3 - 2.8*2.8)
	got := c.TimeToReach(3.3, 1e-3)
	if math.Abs(got-need/1e-3) > 1e-9 {
		t.Fatalf("TimeToReach = %g, want %g", got, need/1e-3)
	}
	if c.TimeToReach(2.5, 1e-3) != 0 {
		t.Fatal("already above target must take 0")
	}
	if !math.IsInf(c.TimeToReach(3.3, 0), 1) {
		t.Fatal("zero power must take forever")
	}
}

func TestCapacitorPanicsOnNegative(t *testing.T) {
	c := NewCapacitor(1e-6, 2.8, 3.5)
	for _, f := range []func(){func() { c.Draw(-1) }, func() { c.Harvest(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative energy accepted")
				}
			}()
			f()
		}()
	}
}

func TestNewCapacitorValidates(t *testing.T) {
	for _, args := range [][3]float64{{0, 2.8, 3.5}, {1e-6, -1, 3.5}, {1e-6, 3.5, 3.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid capacitor %v accepted", args)
				}
			}()
			NewCapacitor(args[0], args[1], args[2])
		}()
	}
}

func TestVbackupFor(t *testing.T) {
	// A zero reserve keeps Vbackup at VMin.
	if v := VbackupFor(1e-6, 2.8, 3.5, 0, 1); v != 2.8 {
		t.Fatalf("zero reserve Vbackup = %g", v)
	}
	// The reserved band must actually hold the requested energy.
	reserve := 600e-9
	vb := VbackupFor(1e-6, 2.8, 3.5, reserve, 1.0)
	band := 0.5 * 1e-6 * (vb*vb - 2.8*2.8)
	if band < reserve-1e-12 {
		t.Fatalf("band %g < reserve %g", band, reserve)
	}
	// Margin enlarges it.
	vb2 := VbackupFor(1e-6, 2.8, 3.5, reserve, 2.0)
	if vb2 <= vb {
		t.Fatal("margin did not raise Vbackup")
	}
	// Clamped at VMax for absurd reserves.
	if v := VbackupFor(1e-6, 2.8, 3.5, 1, 1); v != 3.5 {
		t.Fatalf("clamp failed: %g", v)
	}
}

func TestBreakdownTotalAndAdd(t *testing.T) {
	a := Breakdown{CacheRead: 1, CacheWrite: 2, MemRead: 3, MemWrite: 4, Compute: 5, Checkpoint: 6, Restore: 7, Leak: 8}
	if a.Total() != 36 {
		t.Fatalf("Total = %g", a.Total())
	}
	var b Breakdown
	b.Add(a)
	b.Add(a)
	if b.Total() != 72 {
		t.Fatalf("Add total = %g", b.Total())
	}
	if b.MemWrite != 8 || b.Leak != 16 {
		t.Fatal("fields not accumulated")
	}
}

func TestDefaultJITCosts(t *testing.T) {
	j := DefaultJITCosts()
	if j.RegCheckpointTime <= 0 || j.RestoreTime <= 0 || j.BaseReserve <= 0 {
		t.Fatal("JIT defaults must be positive")
	}
	if j.RestoreTime < j.RegCheckpointTime {
		t.Fatal("wake-up should cost at least as much as backup (NVP literature)")
	}
}

// Property: draw then harvest of the same amount is an identity (when
// not clamped), and voltage never goes negative or above VMax.
func TestCapacitorQuickConservation(t *testing.T) {
	f := func(steps []float64) bool {
		c := NewCapacitor(1e-6, 2.8, 3.5)
		c.SetVoltage(3.2)
		for _, s := range steps {
			e := math.Mod(math.Abs(s), 1e-7)
			if math.IsNaN(e) {
				continue
			}
			before := c.Energy()
			c.Draw(e)
			if c.Voltage() > 0 && before-c.Energy() > e+1e-12 {
				return false
			}
			c.Harvest(e)
			if c.Voltage() < 0 || c.Voltage() > 3.5+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawGuardedUnderVoltage(t *testing.T) {
	c := NewCapacitor(1e-6, 2.8, 3.5)
	// A small draw keeps the voltage above the floor.
	if err := c.DrawGuarded(1e-7, 2.8); err != nil {
		t.Fatalf("legitimate draw flagged: %v", err)
	}
	// Draining to the floor and drawing more must trip the guard with
	// the typed sentinel.
	c.SetVoltage(2.8)
	err := c.DrawGuarded(1e-7, 2.8)
	if err == nil {
		t.Fatal("under-voltage draw not flagged")
	}
	if !errors.Is(err, ErrUnderVoltage) {
		t.Fatalf("error %v does not wrap ErrUnderVoltage", err)
	}
	// The draw still happened: the guard reports, it does not veto.
	if c.Voltage() >= 2.8 {
		t.Fatalf("voltage %g not drawn down", c.Voltage())
	}
}
