// Package energy models the energy subsystem of a battery-less device:
// a capacitor energy buffer (E = ½CV²), the Von/Vbackup/Vmin voltage
// thresholds that gate execution and JIT checkpointing, and an energy
// accounting breakdown used by the §6.7 analysis.
package energy

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnderVoltage reports that a draw discharged the capacitor below
// the operating floor it was supposed to respect. Outside the JIT
// checkpoint window the voltage must never fall below VMin: crossing
// it means the energy model skipped the Vbackup band entirely (an
// injected fault or a mis-sized reserve), and continuing would produce
// nonsense voltages. Callers classify with errors.Is.
var ErrUnderVoltage = errors.New("energy: voltage fell below operating floor")

// Breakdown tallies consumed energy (joules) by subsystem, mirroring
// the categories of Figure 13(b).
type Breakdown struct {
	CacheRead  float64
	CacheWrite float64
	MemRead    float64
	MemWrite   float64
	Compute    float64
	Checkpoint float64
	Restore    float64
	Leak       float64
}

// Total returns the sum over all categories.
func (b Breakdown) Total() float64 {
	return b.CacheRead + b.CacheWrite + b.MemRead + b.MemWrite + b.Compute + b.Checkpoint + b.Restore + b.Leak
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.CacheRead += o.CacheRead
	b.CacheWrite += o.CacheWrite
	b.MemRead += o.MemRead
	b.MemWrite += o.MemWrite
	b.Compute += o.Compute
	b.Checkpoint += o.Checkpoint
	b.Restore += o.Restore
	b.Leak += o.Leak
}

// VoltageSampler observes every capacitor voltage change. The
// observability layer (internal/obs) installs a gauge here; nil (the
// default) disables sampling, costing one nil check per draw — the
// same contract as sim.FaultPlan and mem.LineWriteHook.
type VoltageSampler interface {
	Sample(v float64)
}

// Capacitor is the harvested-energy buffer. Voltage is the state
// variable; energy moves in and out via Harvest and Draw.
type Capacitor struct {
	c       float64 // farads
	v       float64 // volts
	vMin    float64
	vMax    float64
	sampler VoltageSampler
}

// NewCapacitor returns a capacitor of c farads charged to vMax, with
// operating floor vMin (hardware brown-out) and ceiling vMax.
func NewCapacitor(c, vMin, vMax float64) *Capacitor {
	if c <= 0 || vMin < 0 || vMax <= vMin {
		panic(fmt.Sprintf("energy: invalid capacitor c=%g vMin=%g vMax=%g", c, vMin, vMax))
	}
	return &Capacitor{c: c, v: vMax, vMin: vMin, vMax: vMax}
}

// Capacitance returns C in farads.
func (c *Capacitor) Capacitance() float64 { return c.c }

// Voltage returns the present voltage.
func (c *Capacitor) Voltage() float64 { return c.v }

// VMin and VMax return the operating bounds.
func (c *Capacitor) VMin() float64 { return c.vMin }

// VMax returns the voltage ceiling.
func (c *Capacitor) VMax() float64 { return c.vMax }

// SetSampler installs (or, with nil, removes) the voltage observer
// consulted after every voltage change.
func (c *Capacitor) SetSampler(s VoltageSampler) { c.sampler = s }

// SetVoltage forces the voltage (initialization/boot), clamped to
// [0, vMax].
func (c *Capacitor) SetVoltage(v float64) {
	if v < 0 {
		v = 0
	}
	if v > c.vMax {
		v = c.vMax
	}
	c.v = v
	if c.sampler != nil {
		c.sampler.Sample(c.v)
	}
}

// Energy returns the stored energy above 0 V.
func (c *Capacitor) Energy() float64 { return 0.5 * c.c * c.v * c.v }

// EnergyAbove returns the stored energy available before the voltage
// would fall to vFloor (0 if already below).
func (c *Capacitor) EnergyAbove(vFloor float64) float64 {
	if c.v <= vFloor {
		return 0
	}
	return 0.5 * c.c * (c.v*c.v - vFloor*vFloor)
}

// Draw removes e joules. The voltage clamps at zero; callers enforce
// operating thresholds (the voltage monitor, not the capacitor, knows
// about Vbackup). The body is split so the common case — non-negative
// draw, no sampler — stays within the inlining budget of the
// simulator's per-event loop; drawSlow performs the identical
// arithmetic for the instrumented/error cases.
func (c *Capacitor) Draw(e float64) {
	if e < 0 || c.sampler != nil {
		c.drawSlow(e)
		return
	}
	rem := c.v*c.v - 2*e/c.c
	if rem <= 0 {
		c.v = 0
	} else {
		c.v = math.Sqrt(rem)
	}
}

func (c *Capacitor) drawSlow(e float64) {
	if e < 0 {
		panic("energy: negative draw")
	}
	rem := c.v*c.v - 2*e/c.c
	if rem <= 0 {
		c.v = 0
	} else {
		c.v = math.Sqrt(rem)
	}
	if c.sampler != nil {
		c.sampler.Sample(c.v)
	}
}

// DrawGuarded removes e joules like Draw, but returns an error
// wrapping ErrUnderVoltage when the resulting voltage falls below
// vFloor. The draw is applied either way (the energy is physically
// gone); the error lets simulation fail loudly instead of running on
// with a nonsense voltage. Checkpoint-phase draws, which legitimately
// spend the reserve band down to VMin, should keep using Draw.
func (c *Capacitor) DrawGuarded(e, vFloor float64) error {
	c.Draw(e)
	if c.v < vFloor-1e-9 {
		return c.UnderVoltageError(e, vFloor)
	}
	return nil
}

// UnderVoltageError formats the ErrUnderVoltage for a draw of e joules
// that left the capacitor below vFloor (shared by DrawGuarded and the
// simulator's Step-based fast path so the message stays identical).
func (c *Capacitor) UnderVoltageError(e, vFloor float64) error {
	return fmt.Errorf("%w: %.4f V after drawing %.3g J (floor %.4f V)",
		ErrUnderVoltage, c.v, e, vFloor)
}

// Step applies one simulation event: harvest h joules, then draw e
// joules — arithmetically identical to Harvest(h) followed by Draw(e),
// fused into a single call for the simulator's per-event loop. It
// reports false when guard is set and the resulting voltage fell below
// vFloor (the DrawGuarded predicate); the draw is applied either way.
func (c *Capacitor) Step(h, e, vFloor float64, guard bool) bool {
	if h < 0 || e < 0 || c.sampler != nil {
		return c.stepSlow(h, e, vFloor, guard)
	}
	v := math.Sqrt(c.v*c.v + 2*h/c.c)
	if v > c.vMax {
		v = c.vMax
	}
	rem := v*v - 2*e/c.c
	if rem <= 0 {
		v = 0
	} else {
		v = math.Sqrt(rem)
	}
	c.v = v
	return !guard || v >= vFloor-1e-9
}

func (c *Capacitor) stepSlow(h, e, vFloor float64, guard bool) bool {
	c.Harvest(h)
	c.Draw(e)
	return !guard || c.v >= vFloor-1e-9
}

// Harvest adds e joules, clamping at vMax (excess harvest is shed, as
// in a real regulator). Split like Draw so the common case inlines.
func (c *Capacitor) Harvest(e float64) {
	if e < 0 || c.sampler != nil {
		c.harvestSlow(e)
		return
	}
	v := math.Sqrt(c.v*c.v + 2*e/c.c)
	if v > c.vMax {
		v = c.vMax
	}
	c.v = v
}

func (c *Capacitor) harvestSlow(e float64) {
	if e < 0 {
		panic("energy: negative harvest")
	}
	v := math.Sqrt(c.v*c.v + 2*e/c.c)
	if v > c.vMax {
		v = c.vMax
	}
	c.v = v
	if c.sampler != nil {
		c.sampler.Sample(c.v)
	}
}

// TimeToReach returns the seconds of harvesting at constant power p
// (watts) needed to raise the voltage to vTarget, or +Inf when p <= 0.
func (c *Capacitor) TimeToReach(vTarget, p float64) float64 {
	if c.v >= vTarget {
		return 0
	}
	if p <= 0 {
		return math.Inf(1)
	}
	need := 0.5 * c.c * (vTarget*vTarget - c.v*c.v)
	return need / p
}

// JITCosts are the fixed costs of the JIT checkpoint/restore machinery
// shared by every NVP-style design: persisting the register file (and
// for WL-Cache the maxline/waterline/timer NVFFs, §5.5) and waking the
// system back up. Times are picoseconds, energies joules.
type JITCosts struct {
	RegCheckpointTime   int64
	RegCheckpointEnergy float64
	RestoreTime         int64
	RestoreEnergy       float64
	// BaseReserve is the energy reserved for the fixed part of a JIT
	// checkpoint (registers, thresholds, control) independent of any
	// cache flushing.
	BaseReserve float64
}

// DefaultJITCosts returns NVFF-based checkpoint costs in line with
// published non-volatile processors (~us-scale wake-up).
func DefaultJITCosts() JITCosts {
	return JITCosts{
		RegCheckpointTime:   500_000, // 0.5 us
		RegCheckpointEnergy: 30e-9,
		RestoreTime:         1_000_000, // 1 us
		RestoreEnergy:       50e-9,
		BaseReserve:         150e-9,
	}
}

// SoftwareJITCosts returns QuickRecall-style costs (§2.1 alternative):
// registers are checkpointed by software into main-memory NVM instead
// of adjacent NVFFs — no flip-flop hardware, but each checkpoint and
// restore walks the register file over the NVM port, so both the
// fixed costs and the reserve are substantially larger.
func SoftwareJITCosts() JITCosts {
	return JITCosts{
		RegCheckpointTime:   4_000_000, // 4 us: ~32 words + control, store path
		RegCheckpointEnergy: 120e-9,
		RestoreTime:         6_000_000, // 6 us software wake-up
		RestoreEnergy:       150e-9,
		BaseReserve:         400e-9,
	}
}

// VbackupFor computes the JIT-checkpointing voltage threshold that
// reserves at least reserve*margin joules above vMin on a capacitor of
// c farads: Vbackup = sqrt(vMin² + 2·margin·reserve/C), clamped to
// [vMin, vMax]. This is the sizing rule of §3.2/§5.5: once maxline is
// (re)configured, Vbackup is adjusted so the bounded set of dirty
// lines (plus registers and DirtyQueue thresholds) can always be
// checkpointed failure-atomically.
func VbackupFor(cFarads, vMin, vMax, reserve, margin float64) float64 {
	v := math.Sqrt(vMin*vMin + 2*margin*reserve/cFarads)
	return math.Min(math.Max(v, vMin), vMax)
}
