package sim

// FaultPlan is the crash-schedule hook that lets a fault injector
// (internal/fault) drive the simulator off the happy path. A plan can
// force a power failure at any instruction boundary — not just when
// the capacitor reaches Vbackup — and is told when each JIT checkpoint
// begins and ends so NVM-level injectors (torn line writes) can tell
// checkpoint traffic from regular write-backs.
//
// All hooks run on the simulator's goroutine; implementations must be
// deterministic for reproducible audits.
type FaultPlan interface {
	// ShouldCrash is consulted at every instruction boundary (after
	// each memory access and after each compute chunk). Returning true
	// forces an immediate power failure regardless of the capacitor
	// voltage. The design still runs its JIT checkpoint — the voltage
	// monitor fires before the supply actually collapses — but
	// injectors may tear the checkpoint's own NVM writes.
	ShouldCrash(instr uint64, now int64) bool

	// CheckpointStart and CheckpointEnd bracket every JIT checkpoint,
	// including the final shutdown flush. forced is true when the
	// checkpoint was triggered by ShouldCrash rather than by the
	// voltage monitor or the shutdown path.
	CheckpointStart(now int64, forced bool)
	CheckpointEnd(now int64)
}
