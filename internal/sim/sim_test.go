package sim

import (
	"strings"
	"testing"

	"wlcache/internal/cache"
	"wlcache/internal/core"
	"wlcache/internal/designs"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/power"
)

func newWL(nvm *mem.NVM) Design {
	cfg := core.DefaultConfig()
	return core.New(cfg, nvm)
}

func newWLStatic(nvm *mem.NVM) Design {
	cfg := core.DefaultConfig()
	cfg.Adaptive.Mode = core.AdaptOff
	return core.New(cfg, nvm)
}

func newBroken(nvm *mem.NVM) Design {
	return designs.NewBrokenVolatileWB(cache.DefaultGeometry(), cache.LRU, energy.DefaultJITCosts(), nvm)
}

// smallProgram touches enough memory and compute to cross several
// power failures on the RF traces.
func smallProgram(m isa.Machine) uint32 {
	h := uint32(2166136261)
	for i := 0; i < 20000; i++ {
		addr := uint32(0x1000 + (i%700)*4)
		m.Store32(addr, uint32(i))
		v := m.Load32(addr)
		h = (h ^ v) * 16777619
		m.Compute(30)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.CyclePS = 0 },
		func(c *Config) { c.ComputeChunk = 0 },
		func(c *Config) { c.CapacitorF = 0 },
		func(c *Config) { c.VMax = c.VMin },
		func(c *Config) { c.VonDelta = 0 },
		func(c *Config) { c.CheckpointMargin = 0.5 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestVbackupVonDerivation(t *testing.T) {
	c := DefaultConfig()
	vb := c.Vbackup(600e-9)
	if vb <= c.VMin || vb >= c.VMax {
		t.Fatalf("Vbackup %g out of range", vb)
	}
	von := c.Von(vb)
	if von <= vb {
		t.Fatal("Von must exceed Vbackup")
	}
	if c.Von(c.VMax) != c.VMax {
		t.Fatal("Von must clamp at VMax")
	}
	// Bigger reserve, higher threshold.
	if c.Vbackup(1200e-9) <= vb {
		t.Fatal("Vbackup not monotone in reserve")
	}
}

func TestRunWithoutTrace(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	s, err := New(DefaultConfig(), newWLStatic(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("small", smallProgram)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages != 0 {
		t.Fatalf("outages %d without a trace", res.Outages)
	}
	if res.OffTime != 0 || res.CheckpointTime != 0 || res.RestoreTime != 0 {
		t.Fatal("phase times nonzero without failures")
	}
	if res.ExecTime != res.OnTime {
		t.Fatalf("ExecTime %d != OnTime %d", res.ExecTime, res.OnTime)
	}
	wantInstr := uint64(20000 * (2 + 30))
	if res.Instructions != wantInstr {
		t.Fatalf("instructions %d, want %d", res.Instructions, wantInstr)
	}
	if res.Loads != 20000 || res.Stores != 20000 {
		t.Fatalf("loads/stores %d/%d", res.Loads, res.Stores)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if res.Trace != "none" || res.Workload != "small" {
		t.Fatalf("labels: %q %q", res.Trace, res.Workload)
	}
}

func TestRunWithPowerFailures(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace2)
	cfg.CheckInvariants = true
	s, err := New(cfg, newWLStatic(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("small", smallProgram)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatal("expected power failures on trace 2")
	}
	if got := res.OnTime + res.OffTime + res.CheckpointTime + res.RestoreTime; got != res.ExecTime {
		t.Fatalf("phase times %d don't sum to ExecTime %d", got, res.ExecTime)
	}
	if res.OffTime == 0 {
		t.Fatal("no recharge time recorded")
	}
	if res.ReserveWasted <= 0 {
		t.Fatal("no reserve waste recorded across outages")
	}
	if res.Extra.CheckpointLines == 0 {
		t.Fatal("JIT checkpoints flushed no lines")
	}
}

func TestChecksumsAgreeAcrossDesignsAndTraces(t *testing.T) {
	var want uint32
	first := true
	for _, src := range []power.Source{power.None, power.Trace1, power.Trace3} {
		for _, build := range []func(*mem.NVM) Design{newWL, newWLStatic} {
			nvm := mem.NewNVM(mem.DefaultNVMParams())
			cfg := DefaultConfig()
			cfg.Trace = power.Get(src)
			cfg.CheckInvariants = true
			s, err := New(cfg, build(nvm), nvm)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run("small", smallProgram)
			if err != nil {
				t.Fatalf("src %s: %v", src, err)
			}
			if first {
				want = res.Checksum
				first = false
			} else if res.Checksum != want {
				t.Fatalf("checksum %#x != %#x on %s", res.Checksum, want, src)
			}
		}
	}
}

func TestInvariantCheckCatchesBrokenDesign(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace2)
	cfg.CheckInvariants = true
	s, err := New(cfg, newBroken(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run("small", smallProgram)
	if err == nil {
		t.Fatal("broken volatile WB cache passed the crash-consistency check")
	}
	if !strings.Contains(err.Error(), "crash consistency") && !strings.Contains(err.Error(), "architectural") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAdaptiveReconfiguresAcrossOutages(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace2)
	s, err := New(cfg, newWL(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	// A program with alternating power profiles: NVM-heavy phases
	// drain the capacitor much faster than compute phases, so the
	// measured power-on times swing and the controller reacts (a
	// perfectly uniform program would correctly see no signal).
	res, err := s.Run("phased", func(m isa.Machine) uint32 {
		h := uint32(0)
		for phase := 0; phase < 60; phase++ {
			if phase%2 == 0 {
				for i := 0; i < 3000; i++ {
					m.Store32(uint32(0x1000+(i%4096)*4), uint32(i))
					m.Compute(2)
				}
			} else {
				m.Compute(200_000)
			}
			h = (h ^ uint32(phase)) * 16777619
		}
		return h
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages < 6 {
		t.Skip("too few outages to adapt")
	}
	if res.Extra.Reconfigs == 0 {
		t.Fatal("adaptive controller never moved the thresholds")
	}
}

func TestReserveTooLargeRejected(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.CapacitorF = 50e-9 // tiny capacitor cannot hold NVSRAM's reserve
	cfg.Trace = power.Get(power.Trace1)
	d := designs.NewNVSRAM(cache.DefaultGeometry(), cache.LRU, energy.DefaultJITCosts(), designs.DefaultNVSRAMParams(), nvm)
	if _, err := New(cfg, d, nvm); err == nil {
		t.Fatal("unchargeable reserve accepted")
	}
}

func TestMaxOutagesGuard(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace3)
	cfg.MaxOutages = 2
	s, err := New(cfg, newWLStatic(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("small", smallProgram); err == nil {
		t.Fatal("outage guard did not fire")
	}
}

func TestComputeChunking(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace1)
	s, err := New(cfg, newWLStatic(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("compute", func(m isa.Machine) uint32 {
		m.Compute(5_000_000) // one huge batch still hits voltage checks
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatal("a 5M-instruction compute batch should span outages")
	}
	if res.Instructions != 5_000_000 {
		t.Fatalf("instructions %d", res.Instructions)
	}
}

func TestNegativeComputeAborts(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	s, err := New(DefaultConfig(), newWLStatic(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("bad", func(m isa.Machine) uint32 { m.Compute(-1); return 0 }); err == nil {
		t.Fatal("negative compute accepted")
	}
}

func TestResultString(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace1)
	s, _ := New(cfg, newWLStatic(nvm), nvm)
	res, err := s.Run("small", smallProgram)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"exec time", "instructions", "outages", "NVM traffic", "energy", "checksum"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if res.CPI() <= 0 {
		t.Fatal("CPI not positive")
	}
	if res.Seconds() <= 0 {
		t.Fatal("Seconds not positive")
	}
}

func TestEnergyAccountingConservation(t *testing.T) {
	// Total drawn energy must be finite, positive, and the capacitor
	// must end within its legal band.
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace1)
	s, _ := New(cfg, newWLStatic(nvm), nvm)
	res, err := s.Run("small", smallProgram)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("nothing drawn")
	}
	v := s.Capacitor().Voltage()
	if v < cfg.VMin-1e-9 || v > cfg.VMax+1e-9 {
		t.Fatalf("final voltage %g out of band", v)
	}
}
