package sim

import (
	"fmt"
	"math"

	"wlcache/internal/energy"
)

// This file is the TierFast engine (DESIGN.md §16). The exact tier
// keeps capacitor state as a voltage and pays a two-sqrt floating-point
// dependency chain on every event (energy.Capacitor.Step); that chain
// is the §11.3 performance ceiling. The fast tier restructures the same
// physics under a committed tolerance:
//
//   - Capacitor state lives in energy space (fcapE, joules). Harvest
//     clamping and the Vbackup/VMin comparisons all have exact
//     energy-space forms (E ≥ ½CV² ⇔ V' ≥ V), so no sqrt is needed
//     between outages.
//   - Harvest integration and capacitor settlement are batched across
//     events. Between settles, access events accumulate their energy
//     breakdown in place (s.ebScratch is not zeroed per event — every
//     design accumulates with +=), so the per-event work is the
//     category sum and two compares; the accumulated breakdown is
//     flushed into Result.Energy at each settle. A settle is forced
//     before either bound is violated:
//       budget bound   pending draw < drawBudget, where drawBudget is
//                      the settled energy above the Vbackup threshold.
//                      Harvest only adds energy, so no Vbackup crossing
//                      can hide inside a window that respects it.
//       deadline bound now < settleDeadline, the first instant the
//                      trace could have harvested the capacitor full.
//                      Within such a window the VMax clamp provably
//                      cannot engage, so one batched Integrate equals
//                      the per-event sequence (up to fp reordering).
//     An event that would cross the deadline is settled into its own
//     single-event window, which matches the exact tier's per-event
//     clamp semantics by construction.
//   - Compute blocks are fused: a whole Compute(n) advances in one
//     step when the zero-harvest draw budget covers it, degrading to
//     the exact tier's ComputeChunk monitor granularity near the
//     threshold. Per-block costs are memoized by block length.
//
// Everything event-ordered stays event-ordered: the instruction
// sequence, every design access, and every outage boundary are decided
// at the same event granularity as the exact tier, so all counts
// (outages, write-backs, checkpoint lines, traffic) are exactly equal;
// only the floating-point summation order changes, which perturbs
// energies and recharge durations at relative ~1e-15 per operation.
// Outage/checkpoint/restore sequences themselves run the exact
// voltage-space code (a handful of events per outage), entered and
// left through an energy<->voltage sync.
//
// Pending draw is tracked as two scalars: pendingBlock (fused Compute
// blocks, which bypass ebScratch entirely) and scratchDraw (the cached
// ebScratch.Total() as of the last access event). Their sum is the
// window's draw. A settle can land mid-access — wl-dyn raises its
// reserve from inside AccessEB via ReserveNotifyBinder — at which point
// ebScratch holds a partially built event that scratchDraw does not yet
// cover; settleFast flushes the whole scratch but settles only the
// covered draw, carrying the in-flight remainder into the new window.

// blockMemoSize is the direct-mapped block-cost memo size. Workload
// kernels issue Compute(n) with a handful of distinct small n per
// inner loop; 16 slots keyed by n make collisions rare without a map
// lookup on the hot path.
const blockMemoSize = 16

// blockCost caches the derived costs of a Compute block of length n:
// its duration, its core/fetch energies and their sum (the block's
// tracked draw; leakage is derived from time at settle). The entries
// fold the design energy constants (InstrEnergy, icache fetch energy,
// cycle time), which are per-run constants today; refreshThresholds
// still clears the memo on every reserve change so a future design
// that retunes energy costs when it reconfigures can never be served a
// stale block.
type blockCost struct {
	n       int
	dt      int64
	compute float64
	fetch   float64
	draw    float64
}

// enterFast engages the fast loop from the capacitor's current state.
// Called once after the initial charge-up and after every outage.
func (s *Simulator) enterFast() {
	s.fastHot = true
	// Exact-tier accesses leave their last event's values in the scratch;
	// the accumulating fast path needs it clean.
	s.ebScratch = energy.Breakdown{}
	// Baseline for the derived instruction count: while fastHot,
	// Result.Instructions is reconstructed at every settle as
	// Loads + Stores + computeRetired, so access events don't touch it.
	s.computeRetired = s.res.Instructions - s.res.Loads - s.res.Stores
	s.syncFastFromCap()
}

// exitFast settles outstanding state and hands authority back to the
// voltage-space capacitor (for the outage sequence, a probe, or the
// final flush).
func (s *Simulator) exitFast() {
	s.settleFast()
	s.syncCapFromFast()
	s.fastHot = false
}

// syncFastFromCap derives the energy-space state from the capacitor
// voltage and re-arms the settle bounds.
func (s *Simulator) syncFastFromCap() {
	v := s.cap.Voltage()
	s.fcapE = 0.5 * s.cfg.CapacitorF * v * v
	s.pendingBlock = 0
	s.scratchDraw = 0
	s.settleT = s.now
	s.rearmFast()
}

// syncCapFromFast materializes the settled energy state as a voltage.
// One sqrt, off the hot path.
func (s *Simulator) syncCapFromFast() {
	e := s.fcapE
	if e < 0 {
		e = 0
	}
	s.cap.SetVoltage(math.Sqrt(2 * e / s.cfg.CapacitorF))
}

// settleFast closes the open window at s.now: it flushes the
// accumulated breakdown into Result.Energy, accounts the window's
// leakage and on-time from the window duration (the window tiles
// [settleT, now] contiguously with on-period events, so both are a
// single expression — leak as leakW·dt, on-time exactly), rebuilds the
// derived instruction count, integrates the harvest actually available,
// applies the covered draw, and re-arms the budget and deadline. Any
// in-flight (mid-access) accumulation beyond scratchDraw is carried
// into the new window as pending draw, not settled. The window
// construction (see rearmFast) guarantees the single end-of-window
// VMax clamp is equivalent to the exact tier's per-event clamping.
func (s *Simulator) settleFast() {
	carry := s.scratchTotal() - s.scratchDraw
	windowDt := s.now - s.settleT
	leakE := s.leakWPerPS * float64(windowDt)
	drawn := s.pendingBlock + s.scratchDraw + leakE
	s.res.Energy.Add(s.ebScratch)
	s.res.Energy.Leak += leakE
	s.res.OnTime += windowDt
	s.res.Instructions = s.res.Loads + s.res.Stores + s.computeRetired
	s.ebScratch = energy.Breakdown{}
	s.pendingBlock = carry
	s.scratchDraw = 0
	s.settleT = s.now
	if s.untraced {
		// No capacitor under uninterrupted power; nothing to settle.
		return
	}
	if windowDt > 0 {
		s.fcapE += s.cfg.OnHarvestEff * s.cursor.Integrate(s.now-windowDt, s.now)
		if s.fcapE > s.eCapMax {
			s.fcapE = s.eCapMax
		}
	}
	s.fcapE -= drawn
	if s.fcapE < s.eFloor {
		// Mirror the exact tier's guarded-Step failure: a draw punched
		// through the reserve band past VMin.
		s.syncCapFromFast()
		s.abort(fmt.Errorf("at t=%d ps (design %s): %w", s.now, s.design.Name(),
			s.cap.UnderVoltageError(drawn, s.cfg.VMin)))
	}
	s.rearmFast()
}

// rearmFast recomputes the two settle bounds from the settled state.
//
// drawBudget is half the energy above the Vbackup threshold assuming
// zero harvest — conservative, since harvest only raises the trajectory
// — so tracked (non-leak) draw < drawBudget proves no Vbackup crossing
// occurred in the window. The other half of the band is reserved for
// leakage, which is not tracked per event: the leak deadline below caps
// the window where leakage alone could spend that half, so
// tracked + leak < the full band always holds.
//
// settleDeadline is the earlier of the leak deadline and the first
// instant at which the trace could have harvested the remaining
// headroom to VMax. Before the harvest bound, no prefix of the window
// can clamp, making the batched integral exact; events reaching past
// the deadline are settled as single-event windows (always sound — the
// leak bound just forces an early settle).
func (s *Simulator) rearmFast() {
	budget := s.fcapE - s.eVb
	if budget < 0 {
		budget = 0
	}
	s.drawBudget = 0.5 * budget
	s.settleDeadline = math.MaxInt64
	if s.untraced {
		return
	}
	if s.leakWPerPS > 0 {
		if f := s.drawBudget / s.leakWPerPS; f < math.MaxInt64/4 {
			s.settleDeadline = s.settleT + int64(f)
		}
	}
	if s.cfg.OnHarvestEff <= 0 {
		return
	}
	headroom := s.eCapMax - s.fcapE
	if dt, ok := s.cfg.Trace.TimeToHarvest(s.settleT, headroom/s.cfg.OnHarvestEff); ok {
		if d := s.settleT + dt; d < s.settleDeadline {
			s.settleDeadline = d
		}
	}
}

// settleAndCheck is the fast tier's voltage monitor: settle, then run
// the outage sequence if the trajectory reached Vbackup. The energy
// compare is the exact tier's `v >= vb` in energy space.
func (s *Simulator) settleAndCheck() {
	s.settleFast()
	if s.fcapE < s.eVb {
		s.powerFailFast(false)
	}
}

// powerFailFast runs one outage at exact fidelity: the checkpoint,
// collapse, recharge and restore sequence is a handful of events per
// outage, so its sqrt-based arithmetic is off the hot path, and
// keeping it shared with the exact tier keeps every count and error
// path identical.
func (s *Simulator) powerFailFast(forced bool) {
	s.syncCapFromFast()
	s.fastHot = false
	s.powerFail(forced)
	s.enterFast()
}

// closeWindowBefore settles the open window when the event ending at
// `to` would reach past the settle deadline, so that event is settled
// alone and its VMax clamp matches the exact tier's single-event
// semantics. No-op for an empty window (the event is already alone).
func (s *Simulator) closeWindowBefore(to int64) {
	if to >= s.settleDeadline && (s.now > s.settleT || s.pendingBlock > 0 || s.scratchDraw > 0) {
		s.settleFast()
	}
}

// scratchTotal sums the accumulated scratch categories with a balanced
// tree (three fp-add latencies instead of seven). The association
// differs from Breakdown.Total, which the exact tier keeps; the fast
// tier's outputs are ε-bounded, and the budget compare this feeds is
// conservative by half a band, so the reordering is immaterial.
func (s *Simulator) scratchTotal() float64 {
	b := &s.ebScratch
	return ((b.CacheRead + b.CacheWrite) + (b.MemRead + b.MemWrite)) +
		((b.Compute + b.Checkpoint) + (b.Restore + b.Leak))
}

// accessTail is the fast tier's per-access bookkeeping. The event's
// breakdown is already accumulated in s.ebScratch; leakage, on-time and
// the instruction count are derived from the window duration at settle
// time, so the common case here is the category sum, two stores, and
// two compares — no capacitor step, no Breakdown copy, no per-event
// read-modify-writes. end is strictly after s.now (at least one
// pipeline slot), so the exact tier's backwards-time guard is not
// needed here.
func (s *Simulator) accessTail(end int64) {
	if s.untraced {
		// The scratch keeps accumulating; exitFast flushes it once.
		s.now = end
		return
	}
	t := s.scratchTotal()
	if end >= s.settleDeadline {
		s.isolateAccess(t, end)
		return
	}
	s.scratchDraw = t
	s.now = end
	if s.pendingBlock+t < s.drawBudget {
		return
	}
	s.settleAndCheck()
}

// isolateAccess settles an access event that would reach past the
// settle deadline into its own single-event window: close the open
// window at the event's start (settleFast carries the event's draw,
// which is already in the scratch, into the new window), then settle
// and check the isolated event at its end.
func (s *Simulator) isolateAccess(t float64, end int64) {
	if s.now > s.settleT || s.pendingBlock > 0 || s.scratchDraw > 0 {
		s.settleFast()
	} else {
		s.scratchDraw = t
	}
	s.now = end
	s.settleAndCheck()
}

// computeFast fuses Compute blocks. A block (or remainder) is advanced
// in one step when the zero-harvest budget covers its whole draw and
// it ends before the settle deadline; otherwise the loop degrades to
// the exact tier's ComputeChunk granularity with a real settle-and-
// check per chunk, so outage placement near the threshold happens at
// the same boundaries as the exact tier.
func (s *Simulator) computeFast(n int) {
	if n < 0 {
		s.abort(fmt.Errorf("negative Compute(%d)", n))
	}
	if n == 0 {
		return
	}
	if s.untraced {
		s.stepBlock(n)
		return
	}
	// Common case — the whole block fits the zero-harvest budget and
	// ends before the settle deadline: one memo lookup, seven adds, no
	// division, no loop.
	m := &s.blockMemo[n&(blockMemoSize-1)]
	if m.n == n {
		to := s.now + m.dt
		if s.pendingBlock+s.scratchDraw+m.draw < s.drawBudget && to < s.settleDeadline {
			s.pendingBlock += m.draw
			s.res.Energy.Compute += m.compute
			s.res.Energy.CacheRead += m.fetch
			s.computeRetired += uint64(n)
			s.now = to
			return
		}
	}
	s.computeFastSlow(n)
}

// computeFastSlow is the near-threshold (or cold-memo) remainder of
// computeFast: fuse what the budget proves safe, degrade to the exact
// tier's ComputeChunk monitor granularity when cramped.
func (s *Simulator) computeFastSlow(n int) {
	for n > 0 {
		room := int64(n)
		if s.perInstrDrawE > 0 {
			if r := int64((s.drawBudget - s.pendingBlock - s.scratchDraw) / s.perInstrDrawE); r < room {
				room = r
			}
		}
		if byTime := (s.settleDeadline - s.now) / s.perInstrPS; byTime < room {
			room = byTime
		}
		if room < int64(s.cfg.ComputeChunk) && room < int64(n) {
			// Near a bound: one chunk at monitor granularity, then a
			// true settle-and-check, exactly like the exact tier.
			chunk := n
			if chunk > s.cfg.ComputeChunk {
				chunk = s.cfg.ComputeChunk
			}
			s.stepBlock(chunk)
			s.settleAndCheck()
			n -= chunk
			continue
		}
		run := int64(n)
		if room < run {
			run = room
		}
		s.stepBlock(int(run))
		n -= int(run)
	}
}

// stepBlock advances one fused block of n ALU instructions, serving
// every derived cost — duration, per-category energies, total draw —
// from the block-cost memo. Leakage, on-time and the instruction count
// are derived from the window duration at settle time (see settleFast),
// so a block is five adds. The memoized expressions are the exact
// tier's per-chunk formulas evaluated once per distinct block length.
// Block draw is tracked in pendingBlock, not the scratch, so it never
// perturbs the access path's cached scratch total.
func (s *Simulator) stepBlock(n int) {
	m := &s.blockMemo[n&(blockMemoSize-1)]
	if m.n != n {
		m.n = n
		m.dt = int64(n) * s.perInstrPS
		m.compute = float64(n) * s.cfg.InstrEnergy
		m.fetch = float64(n) * s.instrE
		m.draw = m.compute + m.fetch
	}
	to := s.now + m.dt
	if !s.untraced {
		s.closeWindowBefore(to)
		s.pendingBlock += m.draw
	}
	s.res.Energy.Compute += m.compute
	s.res.Energy.CacheRead += m.fetch
	s.computeRetired += uint64(n)
	s.now = to
}
