package sim

import (
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/obs"
	"wlcache/internal/stats"
)

// Design is a cache organization together with its crash-consistency
// protocol. internal/core (WL-Cache) and internal/designs (baselines)
// implement it. Times are picoseconds; the simulator adds the 1-cycle
// pipeline cost and per-instruction core energy on top of what Access
// returns.
type Design interface {
	// Name identifies the design in results.
	Name() string
	// Access performs one memory operation beginning at now, returning
	// the loaded value (stores echo val), the completion time, and the
	// energy drawn by the memory hierarchy.
	Access(now int64, op isa.Op, addr uint32, val uint32) (v uint32, done int64, eb energy.Breakdown)
	// Checkpoint runs the design's JIT checkpoint at impending power
	// failure, returning its completion time and energy.
	Checkpoint(now int64) (done int64, eb energy.Breakdown)
	// Restore boots the design back up after an outage.
	Restore(now int64) (done int64, eb energy.Breakdown)
	// ReserveEnergy is the worst-case JIT checkpoint energy the system
	// must hold back; the simulator derives Vbackup from it. It may
	// change over time (adaptive WL-Cache).
	ReserveEnergy() float64
	// LeakPower is the standby power of the design's arrays while on.
	LeakPower() float64
	// DurableEqual verifies whole-system persistence against the
	// architectural golden image (invoked right after checkpoints when
	// invariant checking is enabled).
	DurableEqual(golden *mem.Store) error
}

// Rebooter is implemented by designs that reconfigure themselves at
// boot from the measured power-on history (adaptive WL-Cache, §4).
type Rebooter interface {
	// OnBoot delivers the power-on durations (ps) of the last two
	// completed intervals: lastOn = T(n-1), prevOn = T(n-2).
	OnBoot(lastOn, prevOn int64)
}

// ExtraStatser exposes design-specific counters (§6.6).
type ExtraStatser interface {
	ExtraStats() stats.DesignExtra
}

// EnergyProbeBinder is implemented by designs that need to ask the
// energy subsystem whether a larger reserve is affordable right now
// (WL-Cache dynamic adaptation).
type EnergyProbeBinder interface {
	BindEnergyProbe(func(newReserve float64) bool)
}

// EBAccessor is an optional fast-path counterpart of Design.Access:
// the design writes its energy breakdown into *eb instead of returning
// the 64-byte struct by value, sparing one copy per simulated memory
// operation. Implementations must perform arithmetic identical to
// Access (designs typically implement Access as a thin wrapper over
// AccessEB); the simulator uses AccessEB when available.
type EBAccessor interface {
	AccessEB(now int64, op isa.Op, addr uint32, val uint32, eb *energy.Breakdown) (v uint32, done int64)
}

// ReserveNotifyBinder is implemented by designs whose ReserveEnergy
// changes while running (adaptive WL-Cache raising maxline). The
// simulator caches the Vbackup threshold between events and installs a
// callback here; the design must invoke it after every reserve change
// so the voltage monitor never compares against a stale threshold.
// (Boot-time changes are additionally covered by an unconditional
// refresh after OnBoot.)
type ReserveNotifyBinder interface {
	BindReserveChanged(func())
}

// ObserverBinder is implemented by designs that emit their own
// observability events (store stalls, write-back issue/ACK, DirtyQueue
// occupancy, threshold adaptation). The simulator binds Config.Obs at
// construction when it is set.
type ObserverBinder interface {
	BindObserver(*obs.Recorder)
}
