package sim

import (
	"math"
	"testing"

	"wlcache/internal/core"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/power"
)

// TestVbackupCacheDynamicRaise verifies the cached threshold is
// invalidated through the reserve-change notification: driving a
// dynamic WL-Cache past its maxline (with an always-yes energy probe —
// no trace) must raise the reserve and immediately refresh the
// simulator's cached Vbackup, with no outage in between.
func TestVbackupCacheDynamicRaise(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	ccfg := core.DefaultConfig()
	ccfg.Adaptive.Mode = core.AdaptDynamic
	ccfg.Adaptive.MaxMaxline = ccfg.DQCap
	// Waterline == maxline disables background cleaning, so the dirty
	// population actually reaches the maxline bound and the stall path
	// must choose between waiting and raising.
	ccfg.Maxline = 3
	ccfg.Waterline = 3
	wl := core.New(ccfg, nvm)

	scfg := DefaultConfig() // no trace: probeReserve always affords a raise
	s, err := New(scfg, wl, nvm)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Vbackup()
	if want := scfg.Vbackup(wl.ReserveEnergy()); math.Float64bits(before) != math.Float64bits(want) {
		t.Fatalf("initial Vbackup %g, want %g", before, want)
	}
	maxlineBefore := wl.Maxline()

	// Dirty more distinct lines than maxline allows; the dynamic policy
	// raises maxline instead of stalling on write-backs.
	lineBytes := ccfg.Geometry.LineBytes
	for i := 0; i <= maxlineBefore+4; i++ {
		s.Store32(uint32(0x1000+i*lineBytes), uint32(i))
	}
	if wl.Maxline() <= maxlineBefore {
		t.Fatalf("maxline %d did not raise (was %d)", wl.Maxline(), maxlineBefore)
	}
	after := s.Vbackup()
	if want := scfg.Vbackup(wl.ReserveEnergy()); math.Float64bits(after) != math.Float64bits(want) {
		t.Fatalf("cached Vbackup %g stale after raise, want %g", after, want)
	}
	if after <= before {
		t.Fatalf("Vbackup did not rise with the reserve: %g -> %g", before, after)
	}
}

// TestVbackupCacheOnBoot verifies the boot-time (AdaptStatic) path: a
// reconfiguration delivered via OnBoot must leave the cached threshold
// equal to a recomputation from the design's current reserve.
func TestVbackupCacheOnBoot(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	ccfg := core.DefaultConfig()
	ccfg.Adaptive.Mode = core.AdaptStatic
	wl := core.New(ccfg, nvm)

	scfg := DefaultConfig()
	s, err := New(scfg, wl, nvm)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Vbackup()

	// A collapsing on-interval (ratio far below ShrinkRatio) forces the
	// controller to shrink maxline; feed it straight through the
	// Rebooter hook the simulator uses after Restore.
	rb := Design(wl).(Rebooter)
	old := wl.Maxline()
	rb.OnBoot(1_000_000, 100_000_000_000)
	if wl.Maxline() >= old {
		t.Fatalf("maxline %d did not shrink (was %d)", wl.Maxline(), old)
	}
	after := s.Vbackup()
	if want := scfg.Vbackup(wl.ReserveEnergy()); math.Float64bits(after) != math.Float64bits(want) {
		t.Fatalf("cached Vbackup %g stale after OnBoot, want %g", after, want)
	}
	if math.Float64bits(after) == math.Float64bits(before) && wl.Maxline() != old {
		t.Fatalf("Vbackup unchanged (%g) despite maxline %d -> %d", after, old, wl.Maxline())
	}
}

// TestVbackupCacheAcrossOutages runs an adaptive design end to end on a
// real trace and asserts the invariant the cache must uphold: at run
// end the cached threshold equals a fresh recomputation.
func TestVbackupCacheAcrossOutages(t *testing.T) {
	for _, mode := range []core.AdaptiveMode{core.AdaptStatic, core.AdaptDynamic} {
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		ccfg := core.DefaultConfig()
		ccfg.Adaptive.Mode = mode
		wl := core.New(ccfg, nvm)

		scfg := DefaultConfig()
		scfg.Trace = power.Get(power.Trace1)
		s, err := New(scfg, wl, nvm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run("small", func(m isa.Machine) uint32 {
			h := uint32(2166136261)
			for i := 0; i < 4000; i++ {
				addr := uint32(0x1000 + (i%900)*4)
				m.Store32(addr, uint32(i))
				h = (h ^ m.Load32(addr)) * 16777619
				m.Compute(40)
			}
			return h
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Outages == 0 {
			t.Fatalf("mode %v: no outages; trace too generous for the test", mode)
		}
		if got, want := s.Vbackup(), scfg.Vbackup(wl.ReserveEnergy()); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("mode %v: cached Vbackup %g, recomputed %g", mode, got, want)
		}
	}
}
