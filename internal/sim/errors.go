package sim

import "errors"

// Typed sentinel errors for the simulator's failure classes. Every
// fatal path out of Run wraps one of these (or returns a plain
// configuration error), so auditors — the fault-injection explorer in
// internal/fault in particular — can classify outcomes with errors.Is
// instead of matching message strings.
var (
	// ErrCrashConsistency marks a durability violation: the durable
	// image diverged from the architectural golden image after a
	// checkpoint, or a load returned a value that contradicts it.
	ErrCrashConsistency = errors.New("sim: crash consistency violated")

	// ErrNoProgress marks a run that stopped retiring instructions:
	// too many consecutive zero-progress outages, or the total outage
	// budget was exhausted.
	ErrNoProgress = errors.New("sim: no forward progress")

	// ErrReserveExhausted marks a JIT checkpoint that drew the
	// capacitor below VMin: the design's ReserveEnergy under-provisions
	// its own checkpoint.
	ErrReserveExhausted = errors.New("sim: checkpoint reserve exhausted")
)
