package sim

import (
	"fmt"
	"strings"

	"wlcache/internal/energy"
	"wlcache/internal/mem"
	"wlcache/internal/stats"
)

// Result is everything a run produces.
type Result struct {
	Design   string
	Workload string
	Trace    string

	// ExecTime is the wall-clock time (ps) from power-on to program
	// completion, including on-periods, JIT checkpoints, off-period
	// recharging and restores — the quantity Figures 5/6 speed up.
	ExecTime int64
	// Component times; ExecTime = OnTime + CheckpointTime + OffTime +
	// RestoreTime.
	OnTime         int64
	CheckpointTime int64
	OffTime        int64
	RestoreTime    int64

	Instructions uint64
	Loads        uint64
	Stores       uint64

	Outages uint64

	Energy     energy.Breakdown
	NVMTraffic mem.Traffic
	// ReserveWasted is the total energy (J) burned during power
	// collapse: the JIT reserve that the checkpoint did not consume.
	// Designs with larger reserves (NVSRAM) waste more per outage.
	ReserveWasted float64

	// Checksum is the workload's self-computed result digest; equal
	// checksums across designs/traces certify value correctness.
	Checksum uint32

	Extra stats.DesignExtra
}

// Seconds converts ExecTime to seconds.
func (r Result) Seconds() float64 { return float64(r.ExecTime) / 1e12 }

// CPI returns cycles per instruction over the on-time only.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.OnTime) / 1000 / float64(r.Instructions)
}

// AvgDirtyAtCheckpoint returns the mean number of dirty lines flushed
// per JIT checkpoint (§6.6).
func (r Result) AvgDirtyAtCheckpoint() float64 {
	if r.Outages == 0 {
		return 0
	}
	return float64(r.Extra.CheckpointLines) / float64(r.Outages)
}

// String renders a human-readable summary.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s / trace=%s\n", r.Workload, r.Design, r.Trace)
	fmt.Fprintf(&b, "  exec time      %.6f s (on %.6f, ckpt %.6f, off %.6f, restore %.6f)\n",
		r.Seconds(), float64(r.OnTime)/1e12, float64(r.CheckpointTime)/1e12,
		float64(r.OffTime)/1e12, float64(r.RestoreTime)/1e12)
	fmt.Fprintf(&b, "  instructions   %d (loads %d, stores %d), CPI %.2f\n",
		r.Instructions, r.Loads, r.Stores, r.CPI())
	fmt.Fprintf(&b, "  outages        %d (avg dirty lines/ckpt %.2f)\n", r.Outages, r.AvgDirtyAtCheckpoint())
	fmt.Fprintf(&b, "  NVM traffic    %d B read, %d B written\n", r.NVMTraffic.ReadBytes(), r.NVMTraffic.WriteBytes())
	e := r.Energy
	fmt.Fprintf(&b, "  energy         %.3g J (cache r/w %.3g/%.3g, mem r/w %.3g/%.3g, compute %.3g, ckpt %.3g, restore %.3g, leak %.3g)\n",
		e.Total(), e.CacheRead, e.CacheWrite, e.MemRead, e.MemWrite, e.Compute, e.Checkpoint, e.Restore, e.Leak)
	fmt.Fprintf(&b, "  writebacks     %d async, %d stalls (%.3g s), %d reconfigs, checksum %#08x\n",
		r.Extra.Writebacks, r.Extra.Stalls, float64(r.Extra.StallTime)/1e12, r.Extra.Reconfigs, r.Checksum)
	return b.String()
}
