package sim

import "wlcache/internal/energy"

// ICacheModel optionally models the L1 instruction cache of Table 2.
//
// The default simulator folds instruction fetch into the 1-cycle
// pipeline cost, which is accurate whenever the I-cache hits (the
// common case: these kernels are small loops). The model adds the two
// effects that differ across designs:
//
//   - a per-instruction fetch cost when the I-cache technology is
//     slower than one pipeline cycle (the fetch can no longer hide
//     under execution — this is what makes a non-volatile I-cache or
//     a cacheless NVP so slow);
//   - a cold-start refill after every reboot when the I-cache is
//     volatile and not checkpointed (CodeLines line fills from NVM).
//
// The instruction stream itself is a loop over the kernel's code
// footprint, so after the cold refill every fetch hits; this keeps the
// model analytic (no per-instruction tag lookups) and the simulation
// fast, while charging exactly the design-dependent costs.
type ICacheModel struct {
	// FetchLatency is the I-cache hit latency (ps). Only the part
	// exceeding one pipeline cycle costs time.
	FetchLatency int64
	// FetchEnergy is charged per instruction.
	FetchEnergy float64
	// CodeLines is the kernel's code footprint in cache lines,
	// refetched from NVM after each reboot when not WarmAcrossOutage.
	CodeLines int
	// WarmAcrossOutage marks non-volatile (or checkpointed) I-caches
	// that skip the cold refill.
	WarmAcrossOutage bool
	// LineFillTime/LineFillEnergy cost one cold refill line.
	LineFillTime   int64
	LineFillEnergy float64
}

// SRAMICache returns a volatile SRAM I-cache (VCache-WT, ReplayCache,
// WL-Cache, ...): fetches hide under the pipeline; reboots are cold.
func SRAMICache() *ICacheModel {
	return &ICacheModel{
		FetchLatency:   300,
		FetchEnergy:    10e-12,
		CodeLines:      64, // 4 KB of hot code
		LineFillTime:   60_000,
		LineFillEnergy: 1.5e-9,
	}
}

// NVICache returns a non-volatile I-cache (NVCache-WB): warm across
// outages but every fetch pays the NV read.
func NVICache() *ICacheModel {
	return &ICacheModel{
		FetchLatency:     4000, // 4 ns NV array read
		FetchEnergy:      100e-12,
		CodeLines:        64,
		WarmAcrossOutage: true,
	}
}

// NVSRAMICache returns a twin-backed SRAM I-cache (NVSRAM variants):
// SRAM-speed fetches, restored warm by the twin.
func NVSRAMICache() *ICacheModel {
	return &ICacheModel{
		FetchLatency:     300,
		FetchEnergy:      10e-12,
		CodeLines:        64,
		WarmAcrossOutage: true,
	}
}

// NoICache returns the cacheless NVP's instruction path: every fetch
// is an NVM word read (the key reason real NVPs run so slowly).
func NoICache() *ICacheModel {
	return &ICacheModel{
		FetchLatency:     40_000, // NVM word read per instruction
		FetchEnergy:      1e-9,
		WarmAcrossOutage: true, // nothing volatile to lose
	}
}

// perInstrStall returns the fetch time that cannot hide under one
// pipeline cycle.
func (ic *ICacheModel) perInstrStall(cyclePS int64) int64 {
	if ic == nil || ic.FetchLatency <= cyclePS {
		return 0
	}
	return ic.FetchLatency - cyclePS
}

// instrEnergy returns the per-instruction fetch energy.
func (ic *ICacheModel) instrEnergy() float64 {
	if ic == nil {
		return 0
	}
	return ic.FetchEnergy
}

// coldRefill returns the time and energy of a post-reboot refill.
func (ic *ICacheModel) coldRefill() (int64, energy.Breakdown) {
	var eb energy.Breakdown
	if ic == nil || ic.WarmAcrossOutage || ic.CodeLines == 0 {
		return 0, eb
	}
	eb.MemRead = float64(ic.CodeLines) * ic.LineFillEnergy
	return int64(ic.CodeLines) * ic.LineFillTime, eb
}
