package sim

import (
	"testing"

	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/power"
)

// TestOnHarvestEffMonotone: charging less efficiently while running
// must cost outages/time, never help.
func TestOnHarvestEffMonotone(t *testing.T) {
	run := func(eff float64) Result {
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		cfg := DefaultConfig()
		cfg.Trace = power.Get(power.Trace1)
		cfg.OnHarvestEff = eff
		s, err := New(cfg, newWLStatic(nvm), nvm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run("small", smallProgram)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	burst := run(0)  // charge only while off
	half := run(0.5) // default
	full := run(1.0) // ideal frontend
	if burst.Outages < half.Outages || half.Outages < full.Outages {
		t.Fatalf("outages not monotone in harvest efficiency: %d/%d/%d",
			burst.Outages, half.Outages, full.Outages)
	}
	if burst.ExecTime < full.ExecTime {
		t.Fatalf("burst model faster than ideal harvesting: %d < %d", burst.ExecTime, full.ExecTime)
	}
}

// TestInitialChargeUpCounted: runs under a trace include the initial
// capacitor charge before the first instruction.
func TestInitialChargeUpCounted(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace1)
	s, err := New(cfg, newWLStatic(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("tiny", func(m isa.Machine) uint32 { m.Compute(10); return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if res.OffTime == 0 {
		t.Fatal("initial charge-up not accounted as off time")
	}
}

// TestBiggerCapacitorChargesLonger reproduces the Figure 10(b)
// right-side mechanism directly at the simulator level.
func TestBiggerCapacitorChargesLonger(t *testing.T) {
	offTime := func(cf float64) int64 {
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		cfg := DefaultConfig()
		cfg.CapacitorF = cf
		cfg.Trace = power.Get(power.Trace1)
		s, err := New(cfg, newWLStatic(nvm), nvm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run("tiny", func(m isa.Machine) uint32 { m.Compute(1000); return 1 })
		if err != nil {
			t.Fatal(err)
		}
		return res.OffTime
	}
	if offTime(100e-6) <= offTime(1e-6) {
		t.Fatal("a 100x larger capacitor should take far longer to charge")
	}
}
