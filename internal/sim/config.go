// Package sim is the execution engine: it drives a workload program
// through a cache Design while integrating harvested and consumed
// energy over a power trace, triggering JIT checkpoints when the
// capacitor voltage falls to Vbackup, modeling the off-period
// recharge, and collecting the statistics the paper's evaluation
// reports.
package sim

import (
	"fmt"

	"wlcache/internal/energy"
	"wlcache/internal/obs"
	"wlcache/internal/power"
)

// Tier selects the engine's fidelity/performance trade-off. The zero
// value is the exact tier, so existing configurations are unchanged.
type Tier int

const (
	// TierExact reproduces results bit-for-bit: every floating-point
	// operation happens in the committed order, and the 78-cell golden
	// pins each Result field down to the last ULP.
	TierExact Tier = iota
	// TierFast restructures the hot loop under a committed tolerance
	// (see expt.CompareGoldenCellsTol and DESIGN.md §16): capacitor
	// state is kept in energy space, harvest integration is batched
	// between power-relevant events behind a conservative draw budget,
	// and Compute blocks are fused. Event counts (outages, write-backs,
	// checkpoints, instructions, traffic) stay exactly equal to the
	// exact tier; energies and phase times are ε-equal, not bit-equal.
	TierFast
)

// String returns the canonical spelling used by CLI flags, JSON
// reports and cell fingerprints.
func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierFast:
		return "fast"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// ParseTier parses the canonical spelling. The empty string maps to
// TierExact so formats that predate tiers keep their meaning.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "exact":
		return TierExact, nil
	case "fast":
		return TierFast, nil
	default:
		return TierExact, fmt.Errorf("sim: unknown tier %q (want exact or fast)", s)
	}
}

// Config holds the machine-level simulation parameters (Table 2 plus
// the energy constants this reproduction documents here).
type Config struct {
	// CyclePS is the CPU cycle time in picoseconds (1 GHz → 1000).
	CyclePS int64
	// InstrEnergy is the core energy per executed instruction (J).
	InstrEnergy float64
	// ComputeChunk bounds how many pure-ALU instructions execute
	// between voltage checks (the voltage monitor's granularity).
	ComputeChunk int

	// Capacitor and voltage thresholds (Table 2).
	CapacitorF float64
	VMin       float64
	VMax       float64
	// VonDelta sets the restore threshold Von = Vbackup + VonDelta
	// (clamped to VMax): the system reboots only after recharging past
	// the backup threshold by this margin.
	VonDelta float64
	// CheckpointMargin over-provisions the JIT energy reserve when
	// deriving Vbackup from a design's ReserveEnergy.
	CheckpointMargin float64

	// OnHarvestEff derates harvesting while the load runs: the
	// frontend cannot charge the buffer at full efficiency while the
	// regulator serves the core (off-period charging is unaffected).
	OnHarvestEff float64

	// Trace is the harvested-power input; nil means uninterrupted
	// power ("no power failure" runs).
	Trace *power.Trace

	// ICache optionally models the L1 instruction cache (Table 2).
	// nil folds instruction fetch into the pipeline cost (the default;
	// see ICacheModel for when the distinction matters).
	ICache *ICacheModel

	// CheckInvariants enables the expensive correctness checks: every
	// load is compared against the architectural golden image and
	// every checkpoint is followed by a whole-system persistence
	// check. Tests enable it; benchmarks do not.
	CheckInvariants bool

	// MaxOutages aborts runaway simulations (0 = default limit).
	MaxOutages uint64

	// FaultPlan optionally injects crashes at instruction boundaries
	// and observes checkpoint windows (internal/fault). nil disables
	// injection; forced crashes work with or without a power trace.
	FaultPlan FaultPlan

	// Obs optionally records the run's cycle-level event timeline and
	// metrics (internal/obs). nil disables recording; every
	// instrumentation site then costs one nil check. New wires the
	// recorder into the capacitor, the NVM port and the design.
	Obs *obs.Recorder

	// Tier selects exact (default) or fast simulation. Runs with a
	// FaultPlan or an Obs recorder always execute at exact fidelity —
	// both hooks observe per-event state the fast tier defers — so the
	// fast tier is only engaged on plain measurement runs.
	Tier Tier
}

// DefaultConfig returns the paper's default machine configuration.
func DefaultConfig() Config {
	return Config{
		CyclePS:          1000, // 1 GHz in-order, 1 instr/cycle
		InstrEnergy:      20e-12,
		ComputeChunk:     256,
		CapacitorF:       1e-6, // 1 uF
		VMin:             2.8,
		VMax:             3.5,
		VonDelta:         0.4,
		CheckpointMargin: 1.0,
		OnHarvestEff:     0.5,
	}
}

// Vbackup derives the JIT-checkpointing threshold for a design
// reserve under this configuration.
func (c Config) Vbackup(reserve float64) float64 {
	return energy.VbackupFor(c.CapacitorF, c.VMin, c.VMax, reserve, c.CheckpointMargin)
}

// Von derives the reboot threshold for a given Vbackup.
func (c Config) Von(vbackup float64) float64 {
	v := vbackup + c.VonDelta
	if v > c.VMax {
		v = c.VMax
	}
	return v
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.CyclePS <= 0:
		return fmt.Errorf("sim: CyclePS must be positive")
	case c.ComputeChunk <= 0:
		return fmt.Errorf("sim: ComputeChunk must be positive")
	case c.CapacitorF <= 0 || c.VMin <= 0 || c.VMax <= c.VMin:
		return fmt.Errorf("sim: invalid capacitor configuration")
	case c.VonDelta <= 0:
		return fmt.Errorf("sim: VonDelta must be positive")
	case c.CheckpointMargin < 1:
		return fmt.Errorf("sim: CheckpointMargin must be >= 1 (reserves are worst-case; margin only adds slack)")
	case c.Tier != TierExact && c.Tier != TierFast:
		return fmt.Errorf("sim: unknown tier %d", int(c.Tier))
	}
	return nil
}
