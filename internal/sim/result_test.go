package sim

import (
	"encoding/json"
	"testing"

	"wlcache/internal/mem"
	"wlcache/internal/power"
)

// TestResultJSONRoundTrip pins the Result wire format consumed by
// wlsim -json: every headline field must survive marshaling.
func TestResultJSONRoundTrip(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Trace = power.Get(power.Trace1)
	s, err := New(cfg, newWLStatic(nvm), nvm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("small", smallProgram)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ExecTime != res.ExecTime || back.Checksum != res.Checksum ||
		back.Outages != res.Outages || back.Instructions != res.Instructions {
		t.Fatal("JSON round trip lost fields")
	}
	if back.Energy.Total() != res.Energy.Total() {
		t.Fatal("energy breakdown lost in JSON")
	}
	if back.NVMTraffic.WriteWords != res.NVMTraffic.WriteWords {
		t.Fatal("traffic lost in JSON")
	}
}

// TestAvgDirtyAtCheckpoint covers the §6.6 statistic helper.
func TestAvgDirtyAtCheckpoint(t *testing.T) {
	var r Result
	if r.AvgDirtyAtCheckpoint() != 0 {
		t.Fatal("zero outages must yield 0")
	}
	r.Outages = 4
	r.Extra.CheckpointLines = 10
	if got := r.AvgDirtyAtCheckpoint(); got != 2.5 {
		t.Fatalf("avg = %g, want 2.5", got)
	}
}
