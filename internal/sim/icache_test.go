package sim

import (
	"testing"

	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/power"
)

func TestICacheModelHelpers(t *testing.T) {
	var nilModel *ICacheModel
	if nilModel.perInstrStall(1000) != 0 || nilModel.instrEnergy() != 0 {
		t.Fatal("nil model must be free")
	}
	if dt, eb := nilModel.coldRefill(); dt != 0 || eb.Total() != 0 {
		t.Fatal("nil model must not refill")
	}
	sram := SRAMICache()
	if sram.perInstrStall(1000) != 0 {
		t.Fatal("SRAM fetch must hide under the pipeline")
	}
	nv := NVICache()
	if nv.perInstrStall(1000) != 3000 {
		t.Fatalf("NV fetch stall = %d, want 3000", nv.perInstrStall(1000))
	}
	none := NoICache()
	if none.perInstrStall(1000) != 39000 {
		t.Fatalf("NoCache fetch stall = %d", none.perInstrStall(1000))
	}
	if dt, _ := sram.coldRefill(); dt == 0 {
		t.Fatal("volatile I-cache must refill after reboot")
	}
	if dt, _ := NVSRAMICache().coldRefill(); dt != 0 {
		t.Fatal("twin-backed I-cache must restore warm")
	}
}

func TestICacheSlowsFetchBoundDesigns(t *testing.T) {
	// The same program under the NV I-cache must take ~4x the on-time
	// of the SRAM I-cache (4 ns fetch vs 1 ns cycle).
	run := func(ic *ICacheModel) Result {
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		cfg := DefaultConfig()
		cfg.ICache = ic
		s, err := New(cfg, newWLStatic(nvm), nvm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run("c", func(m isa.Machine) uint32 { m.Compute(100000); return 1 })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sramT := run(SRAMICache()).OnTime
	nvT := run(NVICache()).OnTime
	if nvT < 3*sramT {
		t.Fatalf("NV I-fetch on-time %d not ~4x SRAM %d", nvT, sramT)
	}
}

func TestICacheColdRefillChargedPerOutage(t *testing.T) {
	run := func(ic *ICacheModel) Result {
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		cfg := DefaultConfig()
		cfg.Trace = power.Get(power.Trace1)
		cfg.ICache = ic
		s, err := New(cfg, newWLStatic(nvm), nvm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run("small", smallProgram)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run(SRAMICache())
	warm := run(NVSRAMICache())
	if cold.Outages == 0 {
		t.Skip("no outages")
	}
	// The cold design pays CodeLines line fills per outage in restore
	// time; the warm one does not.
	if cold.RestoreTime <= warm.RestoreTime {
		t.Fatalf("cold I-cache restore time %d not above warm %d", cold.RestoreTime, warm.RestoreTime)
	}
}
