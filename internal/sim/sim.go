package sim

import (
	"fmt"
	"runtime"

	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/power"
)

// defaultMaxOutages aborts runaway simulations that make no progress.
const defaultMaxOutages = 5_000_000

// Simulator executes one workload on one Design under one power
// trace. It implements isa.Machine; the workload calls back into it.
type Simulator struct {
	cfg    Config
	design Design
	nvm    *mem.NVM
	cap    *energy.Capacitor
	golden *mem.Store

	now      int64
	bootTime int64
	prevOn   int64
	lastOn   int64

	instrAtBoot uint64
	noProgress  int

	// Hot-path caches, all derived from values that are constant per
	// run or change only at announced points. cursor integrates the
	// trace without re-locating the current segment on every event; vb
	// is Vbackup(design.ReserveEnergy()) — a sqrt — refreshed by
	// refreshThresholds at reserve changes; leakW, perInstrPS, instrE,
	// chunkComputeE and chunkFetchE hoist interface calls and products
	// that are loop-invariant out of access/Compute; trackGolden gates
	// golden-image maintenance to runs that consult it.
	cursor        *power.Cursor
	accessEB      EBAccessor // non-nil when the design supports the out-param fast path
	vb            float64
	leakW         float64
	perInstrPS    int64
	instrE        float64
	chunkComputeE float64
	chunkFetchE   float64
	trackGolden   bool
	noFault       bool // cfg.FaultPlan == nil
	untraced      bool // cfg.Trace == nil

	// Fast-tier state (TierFast only; see fast.go and DESIGN.md §16).
	// fastEligible is decided once in New: the fast loop only engages
	// on plain measurement runs (no fault plan, no recorder — both
	// observe per-event capacitor state the fast tier defers).
	// fastHot marks the windows where the fast loop owns the capacitor
	// state; outage sequences and the final flush drop back to the
	// exact voltage-space code via an energy<->voltage sync.
	fastEligible   bool
	fastHot        bool
	fcapE          float64 // capacitor energy (J); authoritative while fastHot
	eVb            float64 // ½·C·Vbackup² — the monitor threshold in energy space
	eCapMax        float64 // ½·C·VMax² — the harvest clamp in energy space
	eFloor         float64 // ½·C·(VMin−1e-9)² — the guarded-draw floor in energy space
	settleT        int64   // start of the open settle window
	settleDeadline int64   // no event may reach past this without settling
	pendingBlock   float64 // draw of fused Compute blocks since settleT
	scratchDraw    float64 // ebScratch.Total() as of the last access event
	drawBudget     float64 // zero-harvest-safe draw before a settle is forced
	perInstrDrawE  float64 // worst-case (zero-harvest) energy per ALU instruction
	leakWPerPS     float64 // leakW/1e12: J per ps, mul instead of div on the fast path
	computeRetired uint64  // ALU instructions retired via fused blocks (+ exact-mode baseline)
	blockMemo      [blockMemoSize]blockCost

	// ebScratch is the per-event breakdown buffer handed to AccessEB.
	// Passing a pointer to a local through the interface call would make
	// the local escape — one heap allocation per simulated access; the
	// simulator is single-threaded per run, so one reused buffer is safe.
	ebScratch energy.Breakdown

	// inCheckpoint marks the JIT checkpoint window, during which draws
	// may legitimately spend the reserve band down toward VMin.
	inCheckpoint bool

	res Result
}

// simAbort carries a fatal simulation error through the workload's
// stack via panic/recover (workloads have no error channel).
type simAbort struct{ err error }

// New builds a simulator for the given design. The design must have
// been constructed over nvm so that traffic accounting and durability
// checks observe the same memory.
func New(cfg Config, design Design, nvm *mem.NVM) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxOutages == 0 {
		cfg.MaxOutages = defaultMaxOutages
	}
	s := &Simulator{
		cfg:    cfg,
		design: design,
		nvm:    nvm,
		cap:    energy.NewCapacitor(cfg.CapacitorF, cfg.VMin, cfg.VMax),
		golden: mem.NewStore(),
	}
	s.perInstrPS = cfg.CyclePS + cfg.ICache.perInstrStall(cfg.CyclePS)
	s.instrE = cfg.ICache.instrEnergy()
	s.chunkComputeE = float64(cfg.ComputeChunk) * cfg.InstrEnergy
	s.chunkFetchE = float64(cfg.ComputeChunk) * s.instrE
	s.leakW = design.LeakPower()
	s.trackGolden = cfg.CheckInvariants
	s.noFault = cfg.FaultPlan == nil
	s.untraced = cfg.Trace == nil
	s.fastEligible = cfg.Tier == TierFast && s.noFault && cfg.Obs == nil
	s.eCapMax = 0.5 * cfg.CapacitorF * cfg.VMax * cfg.VMax
	floor := cfg.VMin - 1e-9
	s.eFloor = 0.5 * cfg.CapacitorF * floor * floor
	s.perInstrDrawE = cfg.InstrEnergy + s.instrE + s.leakW*float64(s.perInstrPS)/1e12
	s.leakWPerPS = s.leakW / 1e12
	if cfg.Trace != nil {
		s.cursor = power.NewCursor(cfg.Trace)
	}
	if eba, ok := design.(EBAccessor); ok {
		s.accessEB = eba
	}
	s.refreshThresholds()
	// The initial boot happens with a full capacitor.
	s.cap.SetVoltage(cfg.VMax)
	if binder, ok := design.(EnergyProbeBinder); ok {
		binder.BindEnergyProbe(s.probeReserve)
	}
	if binder, ok := design.(ReserveNotifyBinder); ok {
		binder.BindReserveChanged(s.refreshThresholds)
	}
	// Observability wiring: one recorder reaches the capacitor (voltage
	// gauge), the NVM port (contention histogram) and the design (its
	// own event sites). All sites stay nil-checked when cfg.Obs is nil.
	if cfg.Obs != nil {
		s.cap.SetSampler(cfg.Obs.VoltageGauge())
		nvm.SetPortObserver(cfg.Obs)
		if binder, ok := design.(ObserverBinder); ok {
			binder.BindObserver(cfg.Obs)
		}
	}
	// Sanity: the initial reserve must be chargeable on this capacitor.
	// Only traced runs care — with uninterrupted power Vbackup is never
	// consulted, and even infeasible designs (eager-wb on the default
	// capacitor, §7) can run for reference and fault audits.
	if cfg.Trace != nil {
		if cfg.Von(s.vb) <= s.vb {
			return nil, fmt.Errorf("sim: reserve %.3g J needs Vbackup %.3f V, unreachable below VMax %.3f V",
				design.ReserveEnergy(), s.vb, cfg.VMax)
		}
	}
	return s, nil
}

// refreshThresholds recomputes the cached Vbackup from the design's
// current reserve. It runs at construction, after every OnBoot, and —
// via ReserveNotifyBinder — whenever an adaptive design changes its
// reserve mid-run (dynamic maxline raises), so the cached threshold is
// never consulted stale.
func (s *Simulator) refreshThresholds() {
	s.vb = s.cfg.Vbackup(s.design.ReserveEnergy())
	if !s.fastEligible {
		return
	}
	s.eVb = 0.5 * s.cfg.CapacitorF * s.vb * s.vb
	// Energy constants are per-run constants today, but the memo folds
	// them; clear it so a future design that retunes costs when it
	// reconfigures can never be served a stale block.
	s.blockMemo = [blockMemoSize]blockCost{}
	if s.fastHot {
		// Adaptive reserve change mid-run: settle at the current
		// trajectory so the new budget derives from real state, then
		// re-arm against the new threshold (settleFast calls rearmFast,
		// which reads the eVb just set).
		s.settleFast()
	}
}

// Vbackup returns the checkpoint threshold currently enforced by the
// voltage monitor (tests assert it tracks adaptive reserve changes).
func (s *Simulator) Vbackup() float64 { return s.vb }

// probeReserve reports whether the capacitor currently holds enough
// charge to adopt a larger JIT reserve (dynamic adaptation).
func (s *Simulator) probeReserve(newReserve float64) bool {
	if s.cfg.Trace == nil {
		return true // unlimited power
	}
	vb := s.cfg.Vbackup(newReserve)
	if s.cfg.Von(vb) <= vb {
		return false
	}
	if s.fastHot {
		// Materialize the settled trajectory so the probe reads the
		// same state the exact tier would (one sqrt, probe-rate only).
		s.settleFast()
		s.syncCapFromFast()
	}
	// Require some compute headroom above the raised threshold so the
	// raise does not immediately trigger a checkpoint.
	const headroom = 100e-9
	return s.cap.EnergyAbove(vb) > headroom
}

// Run executes the program to completion and returns the collected
// result. The program's return value is recorded as Result.Checksum.
func (s *Simulator) Run(name string, program func(m isa.Machine) uint32) (res Result, err error) {
	s.res = Result{Design: s.design.Name(), Workload: name, Trace: "none"}
	if s.cfg.Trace != nil {
		s.res.Trace = s.cfg.Trace.Name
	}
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(simAbort); ok {
				res, err = s.res, a.err
				return
			}
			panic(r)
		}
	}()

	// Initial charge-up: a harvesting device starts dead and must
	// first fill the capacitor to Von. This is what makes very large
	// buffers slow (Figure 10(b)): their charging time dominates.
	if s.cfg.Trace != nil {
		s.cap.SetVoltage(s.cfg.VMin)
		von := s.cfg.Von(s.cfg.Vbackup(s.design.ReserveEnergy()))
		need := 0.5 * s.cfg.CapacitorF * (von*von - s.cap.Voltage()*s.cap.Voltage())
		dt, ok := s.cfg.Trace.TimeToHarvest(s.now, need)
		if !ok {
			return s.res, fmt.Errorf("trace %s can never charge the capacitor", s.cfg.Trace.Name)
		}
		s.res.OffTime += dt
		s.now += dt
		s.cap.SetVoltage(von)
		// The charge-up is an off window like any other: without this
		// event the cycle ledger could not attribute the pre-boot dead
		// time and sum(categories) would undershoot OffTime.
		s.cfg.Obs.Outage(0, s.now)
		s.cfg.Obs.VoltageMark(s.now, von)
		s.bootTime = s.now
	}
	if s.fastEligible {
		s.enterFast()
	}

	sum := program(s)
	if s.fastHot {
		// Hand authority back to the voltage-space capacitor before the
		// final flush (and before anyone inspects it post-run).
		s.exitFast()
	}
	s.res.Checksum = sum
	s.res.ExecTime = s.now

	// Final shutdown flush: not part of the measured execution time,
	// but it completes durability so the NVM image can be audited.
	if s.cfg.FaultPlan != nil {
		s.cfg.FaultPlan.CheckpointStart(s.now, false)
	}
	linesBefore := s.checkpointLines()
	ckptDone, ckptEB := s.design.Checkpoint(s.now)
	if s.cfg.FaultPlan != nil {
		s.cfg.FaultPlan.CheckpointEnd(s.now)
	}
	s.cfg.Obs.CheckpointDone(s.now, ckptDone, false, ckptEB.Total(), s.linesDelta(linesBefore))
	if s.cfg.CheckInvariants {
		if derr := s.design.DurableEqual(s.golden); derr != nil {
			return s.res, fmt.Errorf("final durability check failed (%v): %w", derr, ErrCrashConsistency)
		}
	}
	s.res.NVMTraffic = s.nvm.Traffic()
	if es, ok := s.design.(ExtraStatser); ok {
		s.res.Extra = es.ExtraStats()
	}
	return s.res, nil
}

// Golden exposes the architectural reference image. It is maintained
// only when Config.CheckInvariants is set (the only mode that consults
// it); plain benchmark runs skip the per-store bookkeeping.
func (s *Simulator) Golden() *mem.Store { return s.golden }

// Capacitor exposes the energy buffer (tests).
func (s *Simulator) Capacitor() *energy.Capacitor { return s.cap }

// Now returns the current simulated time in ps.
func (s *Simulator) Now() int64 { return s.now }

// --- isa.Machine implementation ---

// Load32 performs an architectural load through the design.
func (s *Simulator) Load32(addr uint32) uint32 {
	if s.cfg.Obs.WantsOpContext() {
		s.cfg.Obs.OpContext(memOpPC())
	}
	// Counted before the access so the fast tier's settle — which can
	// run inside access and derives Instructions from Loads + Stores +
	// retired compute blocks — sees the completing event (the order is
	// invisible to the exact tier; nothing reads Loads mid-event).
	s.res.Loads++
	v := s.access(isa.OpLoad, addr, 0)
	if s.cfg.CheckInvariants {
		if g := s.golden.Read(addr); g != v {
			s.abort(fmt.Errorf("load %#x returned %#x, architectural value is %#x (design %s): %w",
				addr, v, g, s.design.Name(), ErrCrashConsistency))
		}
	}
	return v
}

// Store32 performs an architectural store through the design.
func (s *Simulator) Store32(addr uint32, v uint32) {
	if s.cfg.Obs.WantsOpContext() {
		s.cfg.Obs.OpContext(memOpPC())
	}
	if s.trackGolden {
		s.golden.Write(addr, v)
	}
	s.res.Stores++ // before the access; see Load32
	s.access(isa.OpStore, addr, v)
}

// Compute accounts for n ALU instructions, checking the voltage
// monitor every ComputeChunk instructions.
func (s *Simulator) Compute(n int) {
	if s.fastHot {
		s.computeFast(n)
		return
	}
	if n < 0 {
		s.abort(fmt.Errorf("negative Compute(%d)", n))
	}
	for n > 0 {
		chunk := n
		if chunk > s.cfg.ComputeChunk {
			chunk = s.cfg.ComputeChunk
		}
		var eb energy.Breakdown
		if chunk == s.cfg.ComputeChunk {
			// Full chunks reuse the precomputed products (identical
			// expressions, evaluated once in New).
			eb.Compute = s.chunkComputeE
			eb.CacheRead = s.chunkFetchE
		} else {
			eb.Compute = float64(chunk) * s.cfg.InstrEnergy
			eb.CacheRead = float64(chunk) * s.instrE
		}
		s.advance(s.now+int64(chunk)*s.perInstrPS, &eb, &s.res.OnTime)
		s.res.Instructions += uint64(chunk)
		s.checkPower()
		n -= chunk
	}
}

// access runs one memory operation: the design models the hierarchy;
// the simulator adds the 1-cycle pipeline slot and core energy.
func (s *Simulator) access(op isa.Op, addr uint32, val uint32) uint32 {
	var v uint32
	var done int64
	eb := &s.ebScratch
	if s.accessEB != nil {
		// The fast tier accumulates events in the scratch between
		// settles (designs accumulate with +=); the exact tier zeroes it
		// per event.
		if !s.fastHot {
			*eb = energy.Breakdown{}
		}
		v, done = s.accessEB.AccessEB(s.now, op, addr, val, eb)
	} else {
		var one energy.Breakdown
		v, done, one = s.design.Access(s.now, op, addr, val)
		if s.fastHot {
			eb.Add(one)
		} else {
			*eb = one
		}
	}
	end := s.now + s.perInstrPS
	if done > end {
		end = done
	}
	eb.Compute += s.cfg.InstrEnergy
	eb.CacheRead += s.instrE
	if s.fastHot {
		s.accessTail(end)
		return v
	}
	s.advance(end, eb, &s.res.OnTime)
	s.res.Instructions++
	s.checkPower()
	return v
}

// advance moves time to `to`, integrating harvest and drawing the
// event energy plus leakage, and accumulating dt into the given phase
// counter.
func (s *Simulator) advance(to int64, eb *energy.Breakdown, phase *int64) {
	dt := to - s.now
	if dt < 0 {
		s.abort(fmt.Errorf("time went backwards: %d -> %d", s.now, to))
	}
	leak := s.leakW * float64(dt) / 1e12
	eb.Leak += leak
	if s.cfg.Trace != nil {
		h := s.cfg.OnHarvestEff * s.cursor.Integrate(s.now, to)
		e := eb.Total()
		// Checkpoints spend the reserved band unguarded; the
		// post-checkpoint reserve check in powerFail polices VMin.
		if !s.cap.Step(h, e, s.cfg.VMin, !s.inCheckpoint) {
			s.abort(fmt.Errorf("at t=%d ps (design %s): %w", to, s.design.Name(),
				s.cap.UnderVoltageError(e, s.cfg.VMin)))
		}
	}
	s.res.Energy.Add(*eb)
	*phase += dt
	s.now = to
}

// checkPower triggers the JIT checkpoint + outage + restore sequence
// when the capacitor has discharged to the design's Vbackup, or when
// an installed fault plan forces a crash at this boundary. The common
// case — no fault plan, voltage above threshold — must inline into the
// per-event loop, so everything else lives in checkPowerSlow.
func (s *Simulator) checkPower() {
	if s.noFault && (s.untraced || s.cap.Voltage() >= s.vb) {
		return
	}
	s.checkPowerSlow()
}

func (s *Simulator) checkPowerSlow() {
	if s.cfg.FaultPlan != nil {
		if s.cfg.FaultPlan.ShouldCrash(s.res.Instructions, s.now) {
			s.powerFail(true)
			return
		}
		if s.cfg.Trace == nil || s.cap.Voltage() >= s.vb {
			return
		}
	}
	s.powerFail(false)
}

// powerFail runs one outage: JIT checkpoint, power collapse, recharge,
// restore. forced marks crashes injected by the fault plan; those also
// work without a power trace (the capacitor is then left untouched —
// the supply glitched, it did not drain).
func (s *Simulator) powerFail(forced bool) {
	s.res.Outages++
	if s.res.Outages > s.cfg.MaxOutages {
		s.abort(fmt.Errorf("exceeded %d outages; configuration cannot make progress: %w",
			s.cfg.MaxOutages, ErrNoProgress))
	}
	onDur := s.now - s.bootTime
	s.cfg.Obs.PowerFailure(s.now, s.cap.Voltage(), forced)

	// JIT checkpoint, powered by the reserved energy band.
	if s.cfg.FaultPlan != nil {
		s.cfg.FaultPlan.CheckpointStart(s.now, forced)
	}
	ckptStart := s.now
	linesBefore := s.checkpointLines()
	s.inCheckpoint = true
	done, eb := s.design.Checkpoint(s.now)
	s.advance(done, &eb, &s.res.CheckpointTime)
	s.inCheckpoint = false
	if s.cfg.FaultPlan != nil {
		s.cfg.FaultPlan.CheckpointEnd(s.now)
	}
	s.cfg.Obs.CheckpointDone(ckptStart, s.now, forced, eb.Total(), s.linesDelta(linesBefore))
	if s.cfg.Trace != nil && s.cap.Voltage() < s.cfg.VMin-1e-9 {
		s.abort(fmt.Errorf("V=%.3f < VMin=%.3f after checkpoint (design %s): %w",
			s.cap.Voltage(), s.cfg.VMin, s.design.Name(), ErrReserveExhausted))
	}
	if s.cfg.CheckInvariants {
		if err := s.design.DurableEqual(s.golden); err != nil {
			s.abort(fmt.Errorf("outage %d (%v): %w", s.res.Outages, err, ErrCrashConsistency))
		}
	}

	if s.cfg.Trace != nil {
		// Power collapse: below the operating threshold the dying
		// regulator and monitor burn whatever reserve the checkpoint did
		// not use — the reserved band is energy that could never be spent
		// on computation (§1, §2.3.3). Recharge therefore restarts from
		// VMin, and a design with a larger reserve wastes more per outage.
		s.res.ReserveWasted += s.cap.EnergyAbove(s.cfg.VMin)
		s.cap.SetVoltage(s.cfg.VMin)

		// Power off: recharge to Von. The voltage threshold reflects the
		// *current* reserve (it may have been adapted at this boot).
		von := s.cfg.Von(s.cfg.Vbackup(s.design.ReserveEnergy()))
		need := 0.5 * s.cfg.CapacitorF * (von*von - s.cap.Voltage()*s.cap.Voltage())
		offStart := s.now
		if need > 0 {
			dt, ok := s.cfg.Trace.TimeToHarvest(s.now, need)
			if !ok {
				s.abort(fmt.Errorf("trace %s can never recharge %.3g J", s.cfg.Trace.Name, need))
			}
			s.res.OffTime += dt
			s.now += dt
		}
		s.cap.SetVoltage(von)
		s.cfg.Obs.Outage(offStart, s.now)
		s.cfg.Obs.VoltageMark(s.now, von)
	}

	// Boot: restore state, then let the runtime system adapt.
	restoreStart := s.now
	done, eb = s.design.Restore(s.now)
	s.advance(done, &eb, &s.res.RestoreTime)
	// A volatile instruction cache comes back cold: refetch the code
	// working set from NVM.
	if dt, ieb := s.cfg.ICache.coldRefill(); dt > 0 {
		s.advance(s.now+dt, &ieb, &s.res.RestoreTime)
	}
	s.cfg.Obs.RestoreDone(restoreStart, s.now, eb.Total())
	s.prevOn, s.lastOn = s.lastOn, onDur
	if rb, ok := s.design.(Rebooter); ok {
		rb.OnBoot(s.lastOn, s.prevOn)
	}
	// Boot-time adaptation may have changed the reserve; recompute the
	// cached threshold even for designs without a reserve-change
	// notification (one sqrt per outage, off the hot path).
	s.refreshThresholds()
	s.bootTime = s.now

	// Forward-progress guard: a period that retired no instructions.
	if s.res.Instructions == s.instrAtBoot {
		s.noProgress++
		if s.noProgress >= 8 {
			s.abort(fmt.Errorf("%d consecutive outages retired no instructions (design %s, trace %s): %w",
				s.noProgress, s.design.Name(), s.res.Trace, ErrNoProgress))
		}
	} else {
		s.noProgress = 0
	}
	s.instrAtBoot = s.res.Instructions
}

// checkpointLines reads the design's cumulative flushed-line counter,
// or -1 when the design does not expose one. Paired with linesDelta it
// attributes flushed lines to individual checkpoints for the recorder.
func (s *Simulator) checkpointLines() int64 {
	if s.cfg.Obs == nil {
		return -1 // not recording; skip the ExtraStats copy
	}
	if es, ok := s.design.(ExtraStatser); ok {
		return int64(es.ExtraStats().CheckpointLines)
	}
	return -1
}

// linesDelta converts a checkpointLines snapshot into the lines flushed
// since it was taken (-1 when unknown).
func (s *Simulator) linesDelta(before int64) int {
	if before < 0 {
		return -1
	}
	return int(s.checkpointLines() - before)
}

// memOpPC captures the workload call site of the memory operation in
// flight — the closest host analogue of the store PC a hardware
// profiler would latch. Skip 3 hops (Callers, memOpPC, Load32/Store32)
// to land on the workload; -1 turns the return address into the call
// instruction so ResolvePC names the right source line. Only called
// when observability is on.
func memOpPC() uint64 {
	var pcs [1]uintptr
	if runtime.Callers(3, pcs[:]) < 1 {
		return 0
	}
	return uint64(pcs[0] - 1)
}

func (s *Simulator) abort(err error) {
	panic(simAbort{err})
}
