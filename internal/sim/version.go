package sim

// EngineVersion identifies the simulation semantics. It is mixed into
// every content address the resumable sweep runner (internal/runner)
// computes, so journaled cell results are only ever served back to the
// engine revision that produced them.
//
// Bump this string whenever a change can alter any simulated outcome —
// timing model, energy constants, trace generators, design protocol —
// even when the change is believed bit-exact. A stale bump costs one
// recomputation of cached sweeps; a missing bump serves wrong results.
const EngineVersion = "wlcache-sim/6"
