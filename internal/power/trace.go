// Package power models ambient energy-harvesting input as power
// traces: piecewise-constant harvested power (watts) over time. The
// paper evaluates with two recorded RF traces (tr.1 home, tr.2
// office), a third RF trace from Mementos (tr.3), and solar/thermal
// traces; this package provides deterministic synthetic generators
// with the same stability ordering, plus CSV import/export so real
// recordings can be substituted.
package power

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace is a looping piecewise-constant power signal. Sample i covers
// simulated time [i*Step, (i+1)*Step) picoseconds; after the last
// sample the trace wraps around.
//
// Traces built by this package (Synthesize*, ReadCSV, Get) carry a
// prefix-sum index that makes Integrate O(1) for windows spanning many
// segments and lets TimeToHarvest binary-search whole outages instead
// of stepping segment by segment. Hand-assembled Trace literals work
// without the index (the sequential reference paths run instead); call
// Reindex after populating or mutating Samples to build it. An indexed
// trace must not have Samples mutated afterwards — the built-in traces
// are shared read-only across concurrent simulations.
type Trace struct {
	Name    string
	Step    int64     // ps per sample
	Samples []float64 // watts

	// Index built by Reindex: cum[i] is the energy (J) of full segments
	// [0, i), loopE is one whole loop's energy, mean the cached Mean.
	cum   []float64
	loopE float64
	mean  float64
}

// Reindex (re)builds the O(1) integration index from Samples. It must
// be called again after any mutation of Samples; the constructors in
// this package call it automatically.
func (t *Trace) Reindex() {
	const psPerSec = 1e12
	n := len(t.Samples)
	cum := make([]float64, n+1)
	for i, p := range t.Samples {
		cum[i+1] = cum[i] + p*float64(t.Step)/psPerSec
	}
	t.cum = cum
	t.loopE = cum[n]
	// Same accumulation order as the unindexed Mean so the cached value
	// is bit-identical.
	s := 0.0
	for _, p := range t.Samples {
		s += p
	}
	t.mean = 0
	if n > 0 {
		t.mean = s / float64(n)
	}
}

// indexed reports whether the prefix-sum index matches Samples.
func (t *Trace) indexed() bool { return len(t.cum) == len(t.Samples)+1 }

// Duration returns the length of one loop in picoseconds.
func (t *Trace) Duration() int64 { return t.Step * int64(len(t.Samples)) }

// At returns the harvested power at absolute time ps.
func (t *Trace) At(ps int64) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	i := (ps / t.Step) % int64(len(t.Samples))
	return t.Samples[i]
}

// Mean returns the average power over one loop (cached on indexed
// traces).
func (t *Trace) Mean() float64 {
	if t.indexed() {
		return t.mean
	}
	if len(t.Samples) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range t.Samples {
		s += p
	}
	return s / float64(len(t.Samples))
}

// Integrate returns the energy (joules) harvested over [from, to) ps.
//
// Windows within one or two segments — every window the simulator's
// per-event loop issues — take the sequential path, whose arithmetic
// is identical to the pre-index implementation, so simulation results
// are bit-identical. Wider windows (outage analysis, tooling) use the
// prefix-sum index: one partial segment on each side plus an O(1)
// full-segment span.
func (t *Trace) Integrate(from, to int64) float64 {
	if to <= from || len(t.Samples) == 0 {
		return 0
	}
	const psPerSec = 1e12
	i0 := from / t.Step
	if to <= (i0+1)*t.Step {
		// Single-segment window — the per-event common case. This is
		// integrateSeq's only iteration inlined (same expression, so
		// bit-identical), reached with one division and no dispatch on
		// the index: the i1 division below, which the indexed dispatch
		// added for every caller, only runs for multi-segment windows.
		return t.Samples[i0%int64(len(t.Samples))] * float64(to-from) / psPerSec
	}
	i1 := (to - 1) / t.Step
	if i1-i0 <= 1 || !t.indexed() {
		return t.integrateSeq(from, to)
	}
	n := int64(len(t.Samples))
	e := t.Samples[i0%n] * float64((i0+1)*t.Step-from) / psPerSec
	e += t.segSum(i1) - t.segSum(i0+1)
	e += t.Samples[i1%n] * float64(to-i1*t.Step) / psPerSec
	return e
}

// integrateSeq is the segment-stepping reference implementation,
// retained verbatim: it serves short windows exactly and anchors the
// equivalence property tests.
func (t *Trace) integrateSeq(from, to int64) float64 {
	const psPerSec = 1e12
	e := 0.0
	for cur := from; cur < to; {
		i := (cur / t.Step) % int64(len(t.Samples))
		segEnd := (cur/t.Step + 1) * t.Step
		if segEnd > to {
			segEnd = to
		}
		e += t.Samples[i] * float64(segEnd-cur) / psPerSec
		cur = segEnd
	}
	return e
}

// segSum returns the indexed energy of full segments [0, k).
func (t *Trace) segSum(k int64) float64 {
	n := int64(len(t.Samples))
	return float64(k/n)*t.loopE + t.cum[k%n]
}

// TimeToHarvest returns the smallest dt (ps) such that integrating the
// trace over [from, from+dt) yields at least joules. It returns ok =
// false if the trace can never supply it (all-zero trace).
//
// On indexed traces a harvest finishing within the first segment — the
// common case for ordinary recharges — reproduces the sequential
// arithmetic exactly; longer outages binary-search the prefix-sum
// index for the finishing segment instead of stepping through every
// segment of the dead zone.
func (t *Trace) TimeToHarvest(from int64, joules float64) (dt int64, ok bool) {
	if joules <= 0 {
		return 0, true
	}
	if t.Mean() <= 0 {
		return 0, false
	}
	if !t.indexed() {
		return t.timeToHarvestSeq(from, joules)
	}
	const psPerSec = 1e12
	n := int64(len(t.Samples))
	i0 := from / t.Step
	p := t.Samples[i0%n]
	head := p * float64((i0+1)*t.Step-from) / psPerSec
	if head >= joules {
		// Same expression as the sequential reference's first segment
		// (acc = 0), so the result is bit-identical.
		frac := joules / p * psPerSec
		return int64(frac) + 1, true
	}
	// g(j) = energy over [from, j*Step) for j > i0. Monotone in j, so
	// the finishing segment is the smallest j with g(j+1) >= joules;
	// find it by doubling then bisection, each probe O(1).
	g := func(j int64) float64 {
		return head + (t.segSum(j) - t.segSum(i0+1))
	}
	span := int64(1)
	for g(i0+1+span) < joules {
		span *= 2
	}
	lo, hi := i0+span/2, i0+span // g(lo+1) < joules (or lo == i0), g(hi+1) >= joules
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if g(mid+1) >= joules {
			hi = mid
		} else {
			lo = mid
		}
	}
	j := hi
	// The finishing segment must supply energy; rounding at loop
	// boundaries can in principle land the bisection on a zero-power
	// segment, so skip forward to the next powered one.
	for t.Samples[j%n] == 0 {
		j++
	}
	acc := g(j)
	frac := (joules - acc) / t.Samples[j%n] * psPerSec
	if frac < 0 {
		frac = 0
	}
	return j*t.Step + int64(frac) + 1 - from, true
}

// timeToHarvestSeq is the segment-stepping reference implementation,
// retained for unindexed traces and the equivalence property tests.
func (t *Trace) timeToHarvestSeq(from int64, joules float64) (dt int64, ok bool) {
	const psPerSec = 1e12
	acc := 0.0
	cur := from
	for {
		i := (cur / t.Step) % int64(len(t.Samples))
		segEnd := (cur/t.Step + 1) * t.Step
		p := t.Samples[i]
		segE := p * float64(segEnd-cur) / psPerSec
		if acc+segE >= joules {
			// Finish partway through this segment.
			frac := (joules - acc) / p * psPerSec
			return cur + int64(frac) + 1 - from, true
		}
		acc += segE
		cur = segEnd
	}
}

// WriteCSV writes the trace as "seconds,watts" rows preceded by a
// header comment carrying the name and step.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name=%s step_ps=%d\n", t.Name, t.Step)
	for i, p := range t.Samples {
		fmt.Fprintf(bw, "%g,%g\n", float64(int64(i)*t.Step)/1e12, p)
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{Name: "csv", Step: 100_000_000} // default 100 us
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, f := range strings.Fields(strings.TrimPrefix(line, "#")) {
				if v, ok := strings.CutPrefix(f, "name="); ok {
					t.Name = v
				}
				if v, ok := strings.CutPrefix(f, "step_ps="); ok {
					s, err := strconv.ParseInt(v, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("power: bad step_ps %q: %w", v, err)
					}
					t.Step = s
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("power: bad CSV row %q", line)
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("power: bad power %q: %w", parts[1], err)
		}
		t.Samples = append(t.Samples, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Samples) == 0 {
		return nil, fmt.Errorf("power: empty trace")
	}
	t.Reindex()
	return t, nil
}
