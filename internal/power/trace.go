// Package power models ambient energy-harvesting input as power
// traces: piecewise-constant harvested power (watts) over time. The
// paper evaluates with two recorded RF traces (tr.1 home, tr.2
// office), a third RF trace from Mementos (tr.3), and solar/thermal
// traces; this package provides deterministic synthetic generators
// with the same stability ordering, plus CSV import/export so real
// recordings can be substituted.
package power

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace is a looping piecewise-constant power signal. Sample i covers
// simulated time [i*Step, (i+1)*Step) picoseconds; after the last
// sample the trace wraps around.
type Trace struct {
	Name    string
	Step    int64     // ps per sample
	Samples []float64 // watts
}

// Duration returns the length of one loop in picoseconds.
func (t *Trace) Duration() int64 { return t.Step * int64(len(t.Samples)) }

// At returns the harvested power at absolute time ps.
func (t *Trace) At(ps int64) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	i := (ps / t.Step) % int64(len(t.Samples))
	return t.Samples[i]
}

// Mean returns the average power over one loop.
func (t *Trace) Mean() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range t.Samples {
		s += p
	}
	return s / float64(len(t.Samples))
}

// Integrate returns the energy (joules) harvested over [from, to) ps.
func (t *Trace) Integrate(from, to int64) float64 {
	if to <= from || len(t.Samples) == 0 {
		return 0
	}
	const psPerSec = 1e12
	e := 0.0
	for cur := from; cur < to; {
		i := (cur / t.Step) % int64(len(t.Samples))
		segEnd := (cur/t.Step + 1) * t.Step
		if segEnd > to {
			segEnd = to
		}
		e += t.Samples[i] * float64(segEnd-cur) / psPerSec
		cur = segEnd
	}
	return e
}

// TimeToHarvest returns the smallest dt (ps) such that integrating the
// trace over [from, from+dt) yields at least joules. It returns ok =
// false if the trace can never supply it (all-zero trace).
func (t *Trace) TimeToHarvest(from int64, joules float64) (dt int64, ok bool) {
	if joules <= 0 {
		return 0, true
	}
	if t.Mean() <= 0 {
		return 0, false
	}
	const psPerSec = 1e12
	acc := 0.0
	cur := from
	for {
		i := (cur / t.Step) % int64(len(t.Samples))
		segEnd := (cur/t.Step + 1) * t.Step
		p := t.Samples[i]
		segE := p * float64(segEnd-cur) / psPerSec
		if acc+segE >= joules {
			// Finish partway through this segment.
			frac := (joules - acc) / p * psPerSec
			return cur + int64(frac) + 1 - from, true
		}
		acc += segE
		cur = segEnd
	}
}

// WriteCSV writes the trace as "seconds,watts" rows preceded by a
// header comment carrying the name and step.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name=%s step_ps=%d\n", t.Name, t.Step)
	for i, p := range t.Samples {
		fmt.Fprintf(bw, "%g,%g\n", float64(int64(i)*t.Step)/1e12, p)
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{Name: "csv", Step: 100_000_000} // default 100 us
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, f := range strings.Fields(strings.TrimPrefix(line, "#")) {
				if v, ok := strings.CutPrefix(f, "name="); ok {
					t.Name = v
				}
				if v, ok := strings.CutPrefix(f, "step_ps="); ok {
					s, err := strconv.ParseInt(v, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("power: bad step_ps %q: %w", v, err)
					}
					t.Step = s
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("power: bad CSV row %q", line)
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("power: bad power %q: %w", parts[1], err)
		}
		t.Samples = append(t.Samples, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Samples) == 0 {
		return nil, fmt.Errorf("power: empty trace")
	}
	return t, nil
}
