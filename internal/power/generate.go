package power

import (
	"math"
	"math/rand"
	"sync"
)

// Source names the built-in synthetic traces matching the paper's
// evaluation (§6.1, §6.6 "Power Trace Sensitivity").
type Source string

const (
	// None means uninterrupted power (Figure 4's "no power failure").
	None Source = "none"
	// Trace1 is the home RF trace (moderately stable; ~33 outages in
	// the paper's runs).
	Trace1 Source = "tr1"
	// Trace2 is the office RF trace (less stable than tr.1; ~45).
	Trace2 Source = "tr2"
	// Trace3 is the Mementos RF trace (very unstable; ~121).
	Trace3 Source = "tr3"
	// Solar is a strong, slowly varying source (~12 outages).
	Solar Source = "solar"
	// Thermal is the strongest, most stable source (~9 outages).
	Thermal Source = "thermal"
)

// Sources lists every built-in source with power failures.
func Sources() []Source { return []Source{Trace1, Trace2, Trace3, Solar, Thermal} }

// builtins memoizes the synthetic traces: synthesizing 20k samples per
// sweep cell used to be pure overhead, and the traces are deterministic
// and never mutated, so every simulation shares one read-only instance.
var (
	builtinMu sync.Mutex
	builtins  = map[Source]*Trace{}
)

// Get returns the built-in trace for src, or nil for None. It panics
// on an unknown source (a configuration bug). The returned trace is
// shared and must be treated as read-only.
func Get(src Source) *Trace {
	if src == None {
		return nil
	}
	builtinMu.Lock()
	defer builtinMu.Unlock()
	if t, ok := builtins[src]; ok {
		return t
	}
	t := synthesize(src)
	builtins[src] = t
	return t
}

func synthesize(src Source) *Trace {
	switch src {
	case Trace1:
		return SynthesizeRF("tr1", 1, 13.0e-3, 0.55, 0.06)
	case Trace2:
		return SynthesizeRF("tr2", 2, 6.3e-3, 0.80, 0.12)
	case Trace3:
		return SynthesizeRF("tr3", 3, 5.0e-3, 1.10, 0.30)
	case Solar:
		return SynthesizeSmooth("solar", 4, 24.0e-3, 0.10)
	case Thermal:
		return SynthesizeSmooth("thermal", 5, 26.0e-3, 0.04)
	}
	panic("power: unknown source " + string(src))
}

const (
	genSamples = 20000       // 2 s of trace at genStep
	genStep    = 100_000_000 // 100 us per sample, in ps
)

// SynthesizeRF builds an RF-harvesting trace: a mean-reverting signal
// around mean watts with relative volatility vol, plus dead zones
// (near-zero fades) occurring with probability deadP per sample and
// lasting a geometric number of samples. Larger vol/deadP means a less
// stable source, which is what separates tr.1/tr.2/tr.3. Exported so
// users can synthesize their own conditions (see cmd/wltrace -gen).
func SynthesizeRF(name string, seed int64, mean, vol, deadP float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, genSamples)
	level := mean
	dead := 0
	for i := range s {
		// Mean-reverting multiplicative random walk.
		level += 0.2 * (mean - level)
		level *= 1 + vol*0.25*rng.NormFloat64()
		if level < 0 {
			level = 0
		}
		if dead == 0 && rng.Float64() < deadP {
			dead = 1 + rng.Intn(12)
		}
		if dead > 0 {
			dead--
			s[i] = 0.02 * mean * rng.Float64()
			continue
		}
		s[i] = level
	}
	t := &Trace{Name: name, Step: genStep, Samples: s}
	t.Reindex()
	return t
}

// SynthesizeSmooth builds a strong stable source (solar/thermal): a
// slow sinusoid with small noise and no dead zones.
func SynthesizeSmooth(name string, seed int64, mean, vol float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, genSamples)
	for i := range s {
		phase := float64(i) / float64(genSamples)
		v := mean * (1 + 0.12*math.Sin(2*math.Pi*phase*3) + vol*rng.NormFloat64())
		if v < 0 {
			v = 0
		}
		s[i] = v
	}
	t := &Trace{Name: name, Step: genStep, Samples: s}
	t.Reindex()
	return t
}
