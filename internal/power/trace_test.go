package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func flatTrace(watts float64) *Trace {
	return &Trace{Name: "flat", Step: 1000, Samples: []float64{watts, watts}}
}

func TestTraceAtAndWrap(t *testing.T) {
	tr := &Trace{Name: "x", Step: 10, Samples: []float64{1, 2, 3}}
	cases := []struct {
		ps   int64
		want float64
	}{{0, 1}, {9, 1}, {10, 2}, {29, 3}, {30, 1}, {45, 2}}
	for _, c := range cases {
		if got := tr.At(c.ps); got != c.want {
			t.Errorf("At(%d) = %g, want %g", c.ps, got, c.want)
		}
	}
}

func TestTraceMeanAndDuration(t *testing.T) {
	tr := &Trace{Step: 10, Samples: []float64{1, 3}}
	if tr.Mean() != 2 {
		t.Fatalf("Mean = %g", tr.Mean())
	}
	if tr.Duration() != 20 {
		t.Fatalf("Duration = %d", tr.Duration())
	}
}

func TestTraceIntegrateFlat(t *testing.T) {
	tr := flatTrace(2.0) // 2 W
	// 1 ns at 2 W = 2e-9 J... our unit: ps -> 1000 ps = 1e-9 s.
	got := tr.Integrate(0, 1000)
	want := 2.0 * 1e-9
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("Integrate = %g, want %g", got, want)
	}
	// Spanning segments and wrap.
	got = tr.Integrate(500, 4500)
	want = 2.0 * 4e-9
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("spanning Integrate = %g, want %g", got, want)
	}
	if tr.Integrate(100, 100) != 0 || tr.Integrate(200, 100) != 0 {
		t.Fatal("degenerate windows must integrate to zero")
	}
}

func TestTraceTimeToHarvest(t *testing.T) {
	tr := flatTrace(1.0) // 1 W
	dt, ok := tr.TimeToHarvest(0, 1e-9)
	if !ok {
		t.Fatal("flat trace cannot fail")
	}
	// 1e-9 J at 1 W = 1e-9 s = 1000 ps (+1 rounding).
	if dt < 1000 || dt > 1002 {
		t.Fatalf("dt = %d, want ~1000", dt)
	}
	if dt, ok = tr.TimeToHarvest(12345, 0); !ok || dt != 0 {
		t.Fatal("zero joules must take zero time")
	}
	dead := &Trace{Step: 10, Samples: []float64{0}}
	if _, ok := dead.TimeToHarvest(0, 1); ok {
		t.Fatal("all-zero trace claims it can harvest")
	}
}

// Property: TimeToHarvest is consistent with Integrate.
func TestTraceQuickHarvestConsistency(t *testing.T) {
	tr := Get(Trace1)
	f := func(fromSeed uint32, joulesSeed uint8) bool {
		from := int64(fromSeed % 1e9)
		joules := (float64(joulesSeed) + 1) * 1e-7
		dt, ok := tr.TimeToHarvest(from, joules)
		if !ok {
			return false
		}
		got := tr.Integrate(from, from+dt)
		// The found window must supply the energy, and one step less
		// must not (within a sample of slack).
		return got >= joules*(1-1e-6) && tr.Integrate(from, from+dt-tr.Step) < joules
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinTraces(t *testing.T) {
	if Get(None) != nil {
		t.Fatal("None must have no trace")
	}
	means := map[Source]float64{}
	for _, src := range Sources() {
		tr := Get(src)
		if tr == nil || len(tr.Samples) == 0 {
			t.Fatalf("source %s empty", src)
		}
		for _, p := range tr.Samples {
			if p < 0 {
				t.Fatalf("source %s has negative power", src)
			}
		}
		means[src] = tr.Mean()
	}
	// Stability/strength ordering: thermal and solar are the strong
	// sources; the RF traces get progressively weaker tr1 > tr2 > tr3.
	if !(means[Thermal] > means[Solar] && means[Solar] > means[Trace1] &&
		means[Trace1] > means[Trace2] && means[Trace2] > means[Trace3]) {
		t.Fatalf("mean-power ordering violated: %v", means)
	}
}

func TestTracesDeterministic(t *testing.T) {
	a, b := Get(Trace1), Get(Trace1)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("trace generation not deterministic")
		}
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown source accepted")
		}
	}()
	Get(Source("bogus"))
}

func TestCSVRoundTrip(t *testing.T) {
	tr := &Trace{Name: "unit", Step: 5000, Samples: []float64{0.001, 0.002, 0}}
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "unit" || got.Step != 5000 || len(got.Samples) != 3 {
		t.Fatalf("round trip header mismatch: %+v", got)
	}
	for i := range tr.Samples {
		if got.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d = %g", i, got.Samples[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{
		"",                       // empty
		"1,2,3\n",                // too many fields
		"abc\n",                  // not a row
		"0.0,notanumber\n",       // bad power
		"# step_ps=notanum\n1,1", // bad header
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted", in)
		}
	}
}

// TestSynthesizeRFParameters: the exported generator responds to its
// knobs in the documented direction.
func TestSynthesizeRFParameters(t *testing.T) {
	quiet := SynthesizeRF("a", 1, 10e-3, 0.2, 0.0)
	bursty := SynthesizeRF("b", 1, 10e-3, 0.2, 0.4)
	if bursty.Mean() >= quiet.Mean() {
		t.Fatalf("dead zones should lower the mean: %g vs %g", bursty.Mean(), quiet.Mean())
	}
	// Determinism per seed; difference across seeds.
	if SynthesizeRF("c", 5, 10e-3, 0.5, 0.1).Samples[100] != SynthesizeRF("d", 5, 10e-3, 0.5, 0.1).Samples[100] {
		t.Fatal("same seed must reproduce")
	}
	if SynthesizeRF("e", 5, 10e-3, 0.5, 0.1).Mean() == SynthesizeRF("f", 6, 10e-3, 0.5, 0.1).Mean() {
		t.Fatal("different seeds suspiciously identical")
	}
}

// TestSynthesizeSmoothStability: the smooth generator is far less
// volatile than the RF one.
func TestSynthesizeSmoothStability(t *testing.T) {
	smooth := SynthesizeSmooth("s", 1, 20e-3, 0.05)
	rf := SynthesizeRF("r", 1, 20e-3, 1.0, 0.2)
	cv := func(tr *Trace) float64 {
		m := tr.Mean()
		v := 0.0
		for _, p := range tr.Samples {
			v += (p - m) * (p - m)
		}
		return v / float64(len(tr.Samples)) / (m * m)
	}
	if cv(smooth) >= cv(rf) {
		t.Fatal("smooth source more volatile than RF")
	}
}
