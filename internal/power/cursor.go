package power

// Cursor integrates a trace over a stream of mostly-advancing windows,
// caching the segment the last window ended in. The simulator issues
// one Integrate per event, and an event window (a few ns) is five
// orders of magnitude shorter than a trace segment (100 us), so almost
// every call lands in the cached segment and costs one multiply —
// no divisions, no modulo.
//
// Results are bit-identical to the sequential reference
// Trace.integrateSeq for every window — the cursor walks segments with
// the same per-segment expression in the same order — and therefore to
// Trace.Integrate for every window of one or two segments, which is
// all the simulator ever issues. Windows before the cached segment
// (time jumps after an outage) simply reseek.
type Cursor struct {
	t        *Trace
	segStart int64
	segEnd   int64
	p        float64
}

// NewCursor returns a cursor over t, positioned at time zero.
func NewCursor(t *Trace) *Cursor {
	c := &Cursor{t: t}
	if len(t.Samples) > 0 {
		c.seek(0)
	}
	return c
}

// seek caches the segment containing time ps.
func (c *Cursor) seek(ps int64) {
	i := ps / c.t.Step
	c.segStart = i * c.t.Step
	c.segEnd = c.segStart + c.t.Step
	c.p = c.t.Samples[i%int64(len(c.t.Samples))]
}

// Integrate returns the energy (joules) harvested over [from, to),
// exactly as Trace.Integrate would.
func (c *Cursor) Integrate(from, to int64) float64 {
	if to <= from || len(c.t.Samples) == 0 {
		return 0
	}
	const psPerSec = 1e12
	if from < c.segStart || from >= c.segEnd {
		c.seek(from)
	}
	if to <= c.segEnd {
		return c.p * float64(to-from) / psPerSec
	}
	e := c.p * float64(c.segEnd-from) / psPerSec
	for {
		cur := c.segEnd
		c.seek(cur)
		if to <= c.segEnd {
			e += c.p * float64(to-cur) / psPerSec
			return e
		}
		e += c.p * float64(c.segEnd-cur) / psPerSec
	}
}
