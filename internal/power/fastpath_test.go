package power

import (
	"math"
	"math/rand"
	"testing"
)

// randTrace builds an indexed trace with n segments of step ps, drawing
// powers from r; zeroFrac of the segments are forced to exactly zero
// (dead air between RF bursts).
func randTrace(r *rand.Rand, n int, step int64, zeroFrac float64) *Trace {
	t := &Trace{Name: "rand", Step: step, Samples: make([]float64, n)}
	for i := range t.Samples {
		if r.Float64() < zeroFrac {
			continue
		}
		t.Samples[i] = r.Float64() * 5e-3
	}
	t.Reindex()
	return t
}

// TestIntegrateEquivalence cross-checks the prefix-sum Integrate
// against the retained sequential reference over random windows,
// including windows spanning many whole trace periods.
func TestIntegrateEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		tr := randTrace(r, 1+r.Intn(64), 1000+int64(r.Intn(5))*777, 0.3)
		dur := tr.Duration()
		for w := 0; w < 200; w++ {
			from := int64(r.Intn(int(4 * dur)))
			width := int64(r.Intn(int(6*dur))) + 1
			got := tr.Integrate(from, from+width)
			want := tr.integrateSeq(from, from+width)
			segs := (from+width-1)/tr.Step - from/tr.Step
			if segs <= 1 {
				// Short windows take the sequential path verbatim and
				// must be bit-identical (the simulator depends on it).
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("short window [%d,%d): got %x want %x", from, from+width,
						math.Float64bits(got), math.Float64bits(want))
				}
				continue
			}
			// Wide windows reassociate the sum; allow relative rounding.
			if diff := math.Abs(got - want); diff > 1e-9*math.Max(math.Abs(want), 1e-30) {
				t.Fatalf("wide window [%d,%d): got %g want %g (diff %g)", from, from+width, got, want, diff)
			}
		}
	}
}

// TestIntegrateMultiPeriod pins the wrap-around algebra: a window of
// exactly k whole loops integrates to k times one loop (up to rounding),
// regardless of where it starts.
func TestIntegrateMultiPeriod(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := randTrace(r, 48, 2500, 0.25)
	dur := tr.Duration()
	oneLoop := tr.Integrate(0, dur)
	for k := int64(1); k <= 9; k++ {
		for _, from := range []int64{0, 1, tr.Step - 1, tr.Step, dur - 1, dur, 3*dur + 17} {
			got := tr.Integrate(from, from+k*dur)
			want := float64(k) * oneLoop
			if diff := math.Abs(got - want); diff > 1e-9*want {
				t.Fatalf("k=%d from=%d: got %g want %g", k, from, got, want)
			}
		}
	}
}

// TestIntegrateUnindexedFallback: hand-assembled literals without the
// index must still integrate correctly via the sequential path.
func TestIntegrateUnindexedFallback(t *testing.T) {
	tr := &Trace{Step: 1000, Samples: []float64{1e-3, 0, 2e-3}}
	got := tr.Integrate(0, 3000)
	want := tr.integrateSeq(0, 3000)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("unindexed Integrate diverged: %g vs %g", got, want)
	}
	if tr.indexed() {
		t.Fatal("literal trace unexpectedly indexed")
	}
	tr.Reindex()
	if !tr.indexed() {
		t.Fatal("Reindex did not index the trace")
	}
	if got := tr.Integrate(0, 3000); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("indexed Integrate diverged after Reindex: %g vs %g", got, want)
	}
}

// TestTimeToHarvestEquivalence cross-checks the binary-search
// TimeToHarvest against the segment-stepping reference. The two
// accumulate partial-segment energies in different orders, so the
// returned instants may differ by rounding; both must land within a
// couple of picoseconds and actually supply the requested energy.
func TestTimeToHarvestEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		tr := randTrace(r, 1+r.Intn(48), 1000+int64(r.Intn(7))*997, 0.35)
		if tr.Mean() <= 0 {
			continue
		}
		dur := tr.Duration()
		loopE := tr.Integrate(0, dur)
		for w := 0; w < 60; w++ {
			from := int64(r.Intn(int(3 * dur)))
			joules := r.Float64() * 4 * loopE
			if joules <= 0 {
				continue
			}
			dtFast, okFast := tr.TimeToHarvest(from, joules)
			dtSeq, okSeq := tr.timeToHarvestSeq(from, joules)
			if okFast != okSeq {
				t.Fatalf("ok mismatch: fast=%v seq=%v", okFast, okSeq)
			}
			tol := int64(4) + int64(1e-9*float64(dtSeq))
			if d := dtFast - dtSeq; d < -tol || d > tol {
				t.Fatalf("from=%d joules=%g: fast dt=%d seq dt=%d", from, joules, dtFast, dtSeq)
			}
			if e := tr.Integrate(from, from+dtFast); e < joules*(1-1e-9) {
				t.Fatalf("from=%d: dt=%d harvests %g < %g", from, dtFast, e, joules)
			}
		}
	}
}

// TestTimeToHarvestZeroSegments is the regression test for the
// bisection landing on (or starting in) a zero-power segment: the
// harvest must complete in the next powered segment, never divide by
// zero, and agree with the sequential reference.
func TestTimeToHarvestZeroSegments(t *testing.T) {
	tr := &Trace{Name: "bursty", Step: 1000,
		Samples: []float64{0, 0, 3e-3, 0, 0, 0, 1e-3, 0}}
	tr.Reindex()
	cases := []struct {
		from   int64
		joules float64
	}{
		{0, 1e-9},           // starts in dead air, finishes in segment 2
		{500, 2.9e-9},       // partial dead segment, almost all of segment 2
		{2999, 1e-9},        // one ps of power then three dead segments
		{3000, 3.5e-9},      // dead start, must wrap into the next loop
		{6500, 0.4e-9},      // finishes inside the weak tail segment
		{7999, 4e-9},        // last ps of the loop, full wrap
		{16_000, 12e-9},     // multiple whole loops of dead+powered mix
		{2500, 3.000001e-9}, // lands exactly past segment 2's remainder
	}
	for _, c := range cases {
		dtFast, okFast := tr.TimeToHarvest(c.from, c.joules)
		dtSeq, okSeq := tr.timeToHarvestSeq(c.from, c.joules)
		if !okFast || !okSeq {
			t.Fatalf("from=%d joules=%g: not ok (fast=%v seq=%v)", c.from, c.joules, okFast, okSeq)
		}
		// The two paths accumulate in different orders; when rounding
		// leaves one epsilon-short just before a zero-power run, its
		// finishing instant legitimately jumps past the dead run, so the
		// instants are only compared one-sidedly here. Sufficiency and
		// minimality below pin the actual contract.
		if dtFast < dtSeq-4 {
			t.Fatalf("from=%d joules=%g: fast dt=%d earlier than seq dt=%d", c.from, c.joules, dtFast, dtSeq)
		}
		// Sufficiency: the window must actually supply the energy.
		if e := tr.Integrate(c.from, c.from+dtFast); e < c.joules*(1-1e-9) {
			t.Fatalf("from=%d: dt=%d harvests %g < %g", c.from, dtFast, e, c.joules)
		}
		// Minimality: a few ps earlier must not (the +1 ps convention and
		// boundary-exact completions allow a tiny slack, never a whole
		// zero segment of overshoot).
		if dtFast > 4 {
			if e := tr.Integrate(c.from, c.from+dtFast-4); e >= c.joules*(1+1e-9) {
				t.Fatalf("from=%d: dt=%d overshoots (dt-4 already harvests %g >= %g)",
					c.from, dtFast, e, c.joules)
			}
		}
	}
	// All-zero trace can never supply energy.
	dead := &Trace{Step: 1000, Samples: []float64{0, 0}}
	dead.Reindex()
	if _, ok := dead.TimeToHarvest(0, 1e-12); ok {
		t.Fatal("all-zero trace claimed to harvest")
	}
}

// TestTimeToHarvestWrapAround pins multi-loop outages: requesting k
// whole loops of energy takes just about k loop durations.
func TestTimeToHarvestWrapAround(t *testing.T) {
	tr := &Trace{Name: "wrap", Step: 2000, Samples: []float64{2e-3, 0, 1e-3, 0}}
	tr.Reindex()
	dur := tr.Duration()
	loopE := tr.Integrate(0, dur)
	for k := 1; k <= 20; k++ {
		joules := float64(k) * loopE
		dt, ok := tr.TimeToHarvest(0, joules)
		if !ok {
			t.Fatalf("k=%d: not ok", k)
		}
		// The energy is complete when the k-th loop's last powered
		// segment ends, so the finishing instant lies within the k-th
		// loop (+ a few ps when rounding pushes a boundary-exact
		// completion just past it).
		lo, hi := int64(k-1)*dur, int64(k)*dur+4
		if dt <= lo || dt > hi {
			t.Fatalf("k=%d: dt=%d outside (%d,%d]", k, dt, lo, hi)
		}
		if e := tr.Integrate(0, dt); e < joules*(1-1e-9) {
			t.Fatalf("k=%d: dt=%d harvests %g < %g", k, dt, e, joules)
		}
	}
	// Starting mid-loop near the wrap boundary.
	dt, ok := tr.TimeToHarvest(dur-1, loopE)
	if !ok || dt <= 0 {
		t.Fatalf("wrap start: dt=%d ok=%v", dt, ok)
	}
	if e := tr.Integrate(dur-1, dur-1+dt); e < loopE*(1-1e-9) {
		t.Fatalf("wrap start under-harvests: %g < %g", e, loopE)
	}
}

// TestCursorMatchesIntegrate drives a Cursor through the simulator's
// access pattern — many tiny advancing windows, occasional large jumps
// (outages), rare backward seeks — and demands bit-identical results to
// Trace.Integrate at every step.
func TestCursorMatchesIntegrate(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		tr := randTrace(r, 1+r.Intn(32), 100_000, 0.3)
		cur := NewCursor(tr)
		now := int64(0)
		for i := 0; i < 5000; i++ {
			var width int64
			switch r.Intn(100) {
			case 0: // outage-sized jump
				now += int64(r.Intn(int(8 * tr.Duration())))
				width = int64(r.Intn(2000)) + 1
			case 1: // backward seek (replayed window)
				if now > 500 {
					now -= 500
				}
				width = int64(r.Intn(2000)) + 1
			case 2: // window spanning several segments
				width = int64(r.Intn(int(3*tr.Step))) + 1
			default: // ordinary few-ns event
				width = int64(r.Intn(5000)) + 1
			}
			got := cur.Integrate(now, now+width)
			// The cursor walks segments sequentially, so it is bit-equal
			// to the sequential reference for every window...
			if want := tr.integrateSeq(now, now+width); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d step %d [%d,%d): cursor %x seq %x",
					trial, i, now, now+width, math.Float64bits(got), math.Float64bits(want))
			}
			// ...and to Trace.Integrate for the one-or-two-segment windows
			// the simulator issues (wider windows switch to prefix sums).
			if (now+width-1)/tr.Step-now/tr.Step <= 1 {
				if want := tr.Integrate(now, now+width); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("trial %d step %d [%d,%d): cursor %x trace %x",
						trial, i, now, now+width, math.Float64bits(got), math.Float64bits(want))
				}
			}
			now += width
		}
	}
}

// TestMeanCached verifies the cached mean is bit-identical to the
// unindexed computation.
func TestMeanCached(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tr := randTrace(r, 1000, 1000, 0.2)
	plain := &Trace{Step: tr.Step, Samples: tr.Samples}
	if math.Float64bits(tr.Mean()) != math.Float64bits(plain.Mean()) {
		t.Fatalf("cached mean %g != recomputed %g", tr.Mean(), plain.Mean())
	}
}
