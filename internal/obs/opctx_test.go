package obs

import "testing"

// TestOpContextSamplingCadence pins SetOpContextSampling semantics:
// every=1 samples every op, every=k samples each k-th op, every<=0
// never samples. These are the gates the simulator consults before
// paying for a runtime.Callers stack walk.
func TestOpContextSamplingCadence(t *testing.T) {
	r := NewRecorder(RunMeta{}, 64)

	// Default: every op wants context.
	for i := 0; i < 5; i++ {
		if !r.WantsOpContext() {
			t.Fatalf("default sampling skipped op %d", i)
		}
	}

	r.SetOpContextSampling(3)
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, r.WantsOpContext())
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("every=3: op %d sampled=%v, want %v (%v)", i, got[i], want[i], got)
		}
	}

	r.SetOpContextSampling(0)
	for i := 0; i < 5; i++ {
		if r.WantsOpContext() {
			t.Fatalf("every=0 sampled op %d", i)
		}
	}

	// Resetting the cadence restarts the skip counter.
	r.SetOpContextSampling(2)
	if r.WantsOpContext() {
		t.Fatal("every=2: first op sampled")
	}
	if !r.WantsOpContext() {
		t.Fatal("every=2: second op not sampled")
	}
}

// TestOpContextSampledOutClearsPC: an op that is sampled out must clear
// the previously captured PC so a later stall event cannot inherit a
// stale hotspot key from an unrelated operation.
func TestOpContextSampledOutClearsPC(t *testing.T) {
	r := NewRecorder(RunMeta{}, 64)
	if !r.WantsOpContext() {
		t.Fatal("default sampling refused context")
	}
	r.OpContext(0xABCD)

	r.SetOpContextSampling(2)
	if r.WantsOpContext() { // sampled out: must clear 0xABCD
		t.Fatal("first op after SetOpContextSampling(2) sampled")
	}
	r.StoreStall(100, 200, 0x40)
	evs := r.Trace().Events()
	if len(evs) == 0 {
		t.Fatal("no stall event recorded")
	}
	if pc := evs[len(evs)-1].B; pc != 0 {
		t.Fatalf("stall inherited stale PC %#x", pc)
	}

	// A sampled op's PC does flow into the next stall.
	if !r.WantsOpContext() {
		t.Fatal("second op not sampled")
	}
	r.OpContext(0x1234)
	r.StoreStall(300, 400, 0x80)
	evs = r.Trace().Events()
	if pc := evs[len(evs)-1].B; pc != 0x1234 {
		t.Fatalf("stall carries PC %#x, want 0x1234", pc)
	}
}

// TestOpContextNilRecorder: a nil recorder never wants context and all
// sampling calls are no-ops.
func TestOpContextNilRecorder(t *testing.T) {
	var r *Recorder
	r.SetOpContextSampling(5)
	if r.WantsOpContext() {
		t.Fatal("nil recorder wants context")
	}
	r.OpContext(1) // must not panic
}
