package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// A nil recorder must absorb every event site without panicking —
// this is the disabled-instrumentation contract every hook relies on.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.OpContext(0x1234)
	r.StoreStall(0, 10, 0x40)
	r.WritebackIssued(0, 0x40)
	r.WritebackACK(0, 150, 0x40)
	r.WritebackDropped(5, 0x40)
	r.DirtyDepth(0, 3)
	r.CheckpointDone(0, 100, true, 1e-9, 4)
	r.PowerFailure(0, 3.0, false)
	r.Outage(0, 100)
	r.RestoreDone(100, 200, 1e-9)
	r.VoltageMark(0, 3.2)
	r.Adapt(0, 6, 7, true)
	r.Thresholds(6, 5)
	r.PortWait(0, 12, 0x40, true, false)
	if l := r.Attribute(1000, 100); l.SumPS() != 1000 {
		t.Fatalf("nil-recorder ledger sum %d, want 1000", l.SumPS())
	}
	r.FaultTornWrite(0, 0x40, 3, 16)
	if g := r.VoltageGauge(); g != nil {
		t.Fatalf("nil recorder returned non-nil gauge")
	}
	r.VoltageGauge().Sample(3.0) // nil gauge must also be inert
	if r.Registry() != nil || r.Trace() != nil {
		t.Fatal("nil recorder exposed live internals")
	}
	m := r.Manifest()
	if m.Schema != Schema || len(m.Counters) != 0 {
		t.Fatalf("nil recorder manifest: %+v", m)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Push(Event{TS: int64(i), Kind: KDirty, A: int64(i)})
	}
	if tr.Pushed() != 10 || tr.Dropped() != 6 || tr.Len() != 4 {
		t.Fatalf("pushed=%d dropped=%d len=%d", tr.Pushed(), tr.Dropped(), tr.Len())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.TS != want {
			t.Fatalf("event %d has TS %d, want %d (ring must keep the newest window in order)", i, e.TS, want)
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram must report NaN")
	}
	h.Observe(1500)
	if h.Count() != 1 || h.Quantile(0.5) != 1500 || h.Mean() != 1500 {
		t.Fatalf("single-sample histogram: count=%d p50=%g mean=%g", h.Count(), h.Quantile(0.5), h.Mean())
	}
	for i := 0; i < 99; i++ {
		h.Observe(100)
	}
	// 99 samples near 100 and one at 1500: p50 lands in the [64,128)
	// bucket, p99+ reaches the outlier's bucket.
	if p := h.Quantile(0.5); p < 64 || p >= 128 {
		t.Fatalf("p50 %g outside the 100-bucket", p)
	}
	if p := h.Quantile(1.0); p < 1024 || p > 1500 {
		t.Fatalf("p100 %g missed the outlier bucket", p)
	}
	if h.Observe(-5); h.min != 0 {
		t.Fatalf("negative observation must clamp to 0, min=%g", h.min)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[float64]int{0: 0, 0.5: 0, 1: 1, 1.9: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%g) = %d, want %d", v, got, want)
		}
	}
	if got := bucketOf(math.Pow(2, 200)); got != histBuckets-1 {
		t.Errorf("huge value bucket %d, want tail %d", got, histBuckets-1)
	}
}

func TestChromeExportIsLoadableJSON(t *testing.T) {
	r := NewRecorder(RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 128)
	r.StoreStall(100, 300, 0x1000)
	r.WritebackIssued(300, 0x1000)
	r.WritebackACK(300, 450, 0x1000)
	r.DirtyDepth(310, 5)
	r.PowerFailure(500, 2.95, false)
	r.CheckpointDone(500, 900, false, 2e-9, 5)
	r.Outage(900, 5000)
	r.RestoreDone(5000, 6000, 5e-11)
	r.Adapt(6000, 6, 7, false)
	r.FaultTornWrite(7000, 0x2000, 3, 16)

	var buf bytes.Buffer
	if err := r.Trace().WriteChrome(&buf, r.Meta); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e["name"].(string)] = true
		ph := e["ph"].(string)
		if ph != "X" && ph != "i" && ph != "C" && ph != "M" {
			t.Fatalf("unknown phase %q in %v", ph, e)
		}
	}
	for _, want := range []string{"store-stall", "writeback", "dirty-lines", "power-failure",
		"checkpoint", "off", "restore", "adapt", "torn-write", "process_name"} {
		if !names[want] {
			t.Fatalf("export missing event %q; have %v", want, names)
		}
	}
}

func TestManifestRoundTripAndSelfDiff(t *testing.T) {
	r := NewRecorder(RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 64)
	r.StoreStall(0, 1000, 0x40)
	r.DirtyDepth(0, 4)
	r.DirtyDepth(10, 5)
	r.WritebackACK(0, 150000, 0x40)
	r.Registry().Gauge("result.exec_ps", DirLower).Set(1e9)

	var buf bytes.Buffer
	if err := AppendManifest(&buf, r.Manifest()); err != nil {
		t.Fatal(err)
	}
	if err := AppendManifest(&buf, r.Manifest()); err != nil {
		t.Fatal(err)
	}
	ms, err := ReadManifests(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("read %d manifests, want 2", len(ms))
	}
	if ms[0].Design != "wl" || ms[0].Workload != "sha" || ms[0].Trace != "tr1" {
		t.Fatalf("meta lost in round trip: %+v", ms[0].RunMeta)
	}

	rep := DiffManifests(ms[0], ms[1], 0.05)
	if n := len(rep.Regressions()); n != 0 {
		t.Fatalf("self-diff found %d regressions: %v", n, rep.Regressions())
	}
	if one := rep.OneSided(); len(one) != 0 {
		t.Fatalf("self-diff found one-sided metrics: %v", one)
	}
}

func TestDiffFlagsRegressionsByDirection(t *testing.T) {
	mk := func(stallPS, instr float64) Manifest {
		r := NewRecorder(RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 16)
		r.StoreStall(0, int64(stallPS), 0x40)
		r.Registry().Gauge("result.instructions", DirHigher).Set(instr)
		r.Registry().Gauge("cfg.maxline", DirNone).Set(6)
		return r.Manifest()
	}
	old := mk(1000, 100)

	// Stall time (lower-is-better) grows 50%: regression.
	rep := DiffManifests(old, mk(1500, 100), 0.05)
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "core.stall_ps" {
		t.Fatalf("want one core.stall_ps regression, got %v", regs)
	}
	// Instructions (higher-is-better) shrink 50%: regression.
	rep = DiffManifests(old, mk(1000, 50), 0.05)
	regs = rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "result.instructions" {
		t.Fatalf("want one result.instructions regression, got %v", regs)
	}
	// Improvements in the good direction never regress.
	rep = DiffManifests(old, mk(500, 200), 0.05)
	if len(rep.Regressions()) != 0 {
		t.Fatalf("improvement flagged as regression: %v", rep.Regressions())
	}
	// DirNone metrics may swing freely.
	m2 := mk(1000, 100)
	for i := range m2.Gauges {
		if m2.Gauges[i].Name == "cfg.maxline" {
			m2.Gauges[i].Last, m2.Gauges[i].Mean = 8, 8
		}
	}
	if regs := DiffManifests(old, m2, 0.05).Regressions(); len(regs) != 0 {
		t.Fatalf("dir-none metric regressed: %v", regs)
	}
}

func TestSummarizeMentionsKeySections(t *testing.T) {
	r := NewRecorder(RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 64)
	for d := 0; d < 7; d++ {
		r.DirtyDepth(int64(d), d)
	}
	r.StoreStall(0, 123, 0x40)
	r.Thresholds(6, 5)
	out := Summarize(r.Manifest())
	for _, want := range []string{"wl / sha / tr1", "dq.occupancy", "core.stalls", "DirtyQueue occupancy", "core.maxline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// Manifest round-trips must preserve histograms at the edges: never
// observed, a single sample, and values past the last finite bucket
// bound (whose open tail is encoded as Upper == 0 in JSON).
func TestManifestHistogramEdgeCases(t *testing.T) {
	r := NewRecorder(RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 16)
	r.Registry().Histogram("edge.empty", DirLower)
	r.Registry().Histogram("edge.single", DirLower).Observe(42)
	r.Registry().Histogram("edge.huge", DirLower).Observe(math.Pow(2, 100))

	var buf bytes.Buffer
	if err := AppendManifest(&buf, r.Manifest()); err != nil {
		t.Fatal(err)
	}
	ms, err := ReadManifests(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snap := func(name string) HistSnap {
		for _, h := range ms[0].Histograms {
			if h.Name == name {
				return h
			}
		}
		t.Fatalf("round trip lost histogram %q", name)
		return HistSnap{}
	}
	if h := snap("edge.empty"); h.Count != 0 || len(h.Buckets) != 0 || !math.IsNaN(h.Mean()) {
		t.Fatalf("empty histogram round trip: %+v", h)
	}
	if h := snap("edge.single"); h.Count != 1 || h.Sum != 42 || h.Min != 42 || h.Max != 42 || len(h.Buckets) != 1 {
		t.Fatalf("single-sample histogram round trip: %+v", h)
	}
	h := snap("edge.huge")
	if h.Count != 1 || h.Max != math.Pow(2, 100) {
		t.Fatalf("overflow histogram round trip: %+v", h)
	}
	if len(h.Buckets) != 1 || h.Buckets[0].Upper != 0 || h.Buckets[0].Count != 1 {
		t.Fatalf("tail bucket must encode as Upper=0: %+v", h.Buckets)
	}

	// Self-diff across the edge cases: no regressions, nothing one-sided.
	rep := DiffManifests(ms[0], ms[0], 0.05)
	if len(rep.Regressions()) != 0 || len(rep.OneSided()) != 0 {
		t.Fatalf("edge-case self-diff not clean: %+v", rep.Deltas)
	}
}

// Adapt must move the threshold gauges so manifests show the final
// configuration.
func TestAdaptUpdatesThresholdGauges(t *testing.T) {
	r := NewRecorder(RunMeta{}, 16)
	r.Thresholds(6, 5)
	r.Adapt(100, 6, 8, true)
	if got := r.Registry().Gauge("core.maxline", DirNone).Last(); got != 8 {
		t.Fatalf("maxline gauge %g after adapt, want 8", got)
	}
}
