package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Span reconstruction (DESIGN.md §10): the raw event ring records what
// happened; spans record what *caused* what. BuildSpans correlates the
// typed events back into the paper's causal chains —
//
//	store → maxline-stall → WB-issue → NVM-port-wait → WB-ack →
//	DirtyQueue release
//
// plus the power chain (power-failure → checkpoint → off → restore,
// grouped under one outage span). Reconstruction is tolerant of
// ring-dropped events: a missing half of a correlation simply leaves
// the link unset, never panics, and the SpanSet reports how much of
// the timeline its events still cover.

// SpanKind classifies a reconstructed span.
type SpanKind uint8

// The span taxonomy.
const (
	// SpanStall: a store blocked at the maxline (or write-buffer)
	// bound. Cause links the write-back whose ACK released it.
	SpanStall SpanKind = iota + 1
	// SpanWriteback: one asynchronous write-back, issue to ACK. The
	// ACK is the DirtyQueue release of the entry.
	SpanWriteback
	// SpanPortWait: an NVM access waited for the single port. Parent
	// links the write-back it delayed (async waits); Cause links the
	// write-back that held the port, when one can be identified.
	SpanPortWait
	// SpanCheckpoint: one JIT checkpoint window.
	SpanCheckpoint
	// SpanOff: the recharge window of an outage.
	SpanOff
	// SpanRestore: the post-outage restore window.
	SpanRestore
	// SpanOutage: the whole power-failure episode; checkpoint, off and
	// restore spans parent into it.
	SpanOutage
)

// String names the span kind (also the `spans -kind` filter syntax).
func (k SpanKind) String() string {
	switch k {
	case SpanStall:
		return "stall"
	case SpanWriteback:
		return "writeback"
	case SpanPortWait:
		return "port-wait"
	case SpanCheckpoint:
		return "checkpoint"
	case SpanOff:
		return "off"
	case SpanRestore:
		return "restore"
	case SpanOutage:
		return "outage"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// SpanKindByName parses the `spans -kind` filter syntax.
func SpanKindByName(name string) (SpanKind, bool) {
	for k := SpanStall; k <= SpanOutage; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Span is one reconstructed causal interval. End < Start marks a span
// still open when the trace ended (a write-back whose ACK never
// arrived — power failed first, or the ring dropped it).
type Span struct {
	ID    int      `json:"id"`
	Kind  SpanKind `json:"-"`
	Start int64    `json:"start_ps"`
	End   int64    `json:"end_ps"`

	// Addr is the line (or word) address the span concerns; PC the
	// program counter of the memory operation, 0 when unknown.
	Addr uint32 `json:"addr,omitempty"`
	PC   uint64 `json:"pc,omitempty"`

	// Forced marks fault-plan-forced checkpoints/outages; Dropped
	// marks write-backs whose ACK was lost to fault injection; Write
	// and Async describe port-wait spans.
	Forced  bool `json:"forced,omitempty"`
	Dropped bool `json:"dropped,omitempty"`
	Write   bool `json:"write,omitempty"`
	Async   bool `json:"async,omitempty"`

	// Lines and EnergyPJ carry checkpoint/restore payloads (Lines < 0:
	// not reported by the design).
	Lines    int     `json:"lines,omitempty"`
	EnergyPJ float64 `json:"energy_pj,omitempty"`

	// Parent is the index (into SpanSet.Spans) of the enclosing span,
	// Cause of the span that causally released or delayed this one.
	// -1 means none (or the correlating event was dropped).
	Parent int `json:"parent"`
	Cause  int `json:"cause"`
}

// Dur returns the span length (0 for open spans).
func (s Span) Dur() int64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// MarshalJSON adds the symbolic kind to the wire form.
func (s Span) MarshalJSON() ([]byte, error) {
	type alias Span
	return json.Marshal(struct {
		Kind string `json:"kind"`
		alias
	}{s.Kind.String(), alias(s)})
}

// SpanSet is the reconstruction of one trace.
type SpanSet struct {
	Meta    RunMeta
	Spans   []Span
	TotalPS int64
	// Pushed and Dropped mirror the source ring; Orphans counts spans
	// whose causal counterpart was not found (dropped from the ring or
	// structurally absent).
	Pushed  uint64
	Dropped uint64
	Orphans int
}

// Coverage is the fraction of the run's timeline the retained events
// still span: 1 on an undropped ring, less once the ring overwrote the
// oldest window.
func (s SpanSet) Coverage() float64 {
	return coverageOf(s.Pushed, s.Dropped, s.firstTS(), s.TotalPS)
}

func (s SpanSet) firstTS() int64 {
	first := int64(0)
	for i, sp := range s.Spans {
		if i == 0 || sp.Start < first {
			first = sp.Start
		}
	}
	return first
}

// coverageOf computes timeline coverage: with drops, only
// [firstRetained, total) is explained.
func coverageOf(pushed, dropped uint64, firstRetained, totalPS int64) float64 {
	if dropped == 0 || totalPS <= 0 {
		return 1
	}
	if firstRetained < 0 {
		firstRetained = 0
	}
	if firstRetained > totalPS {
		firstRetained = totalPS
	}
	return float64(totalPS-firstRetained) / float64(totalPS)
}

// BuildSpans reconstructs the causal spans of a trace. totalPS bounds
// the run (Result.ExecTime); events at or past it (the final shutdown
// flush) are ignored. A nil trace yields an empty set.
func BuildSpans(tr *Trace, meta RunMeta, totalPS int64) SpanSet {
	set := SpanSet{Meta: meta, TotalPS: totalPS, Pushed: tr.Pushed(), Dropped: tr.Dropped()}
	evs := tr.Events()

	// Pass 1: write-backs. An ACK is self-contained (it carries issue
	// time, latency and address), so acked write-backs survive even
	// when their issue event was dropped. Unacked issues stay open.
	type wbKey struct {
		ts   int64
		addr uint32
	}
	spans := make([]*Span, 0, len(evs)/2)
	add := func(sp Span) *Span {
		sp.ID = len(spans)
		sp.Parent, sp.Cause = -1, -1
		spans = append(spans, &sp)
		return spans[len(spans)-1]
	}
	wbByKey := map[wbKey]*Span{} // issue (ts, addr) → span
	wbByEnd := map[int64]*Span{} // ACK arrival time → span (release lookup)
	openWBs := map[wbKey]*Span{} // issued, no ACK seen yet
	for _, e := range evs {
		if e.TS >= totalPS && totalPS > 0 {
			continue
		}
		switch e.Kind {
		case KWBIssue:
			k := wbKey{e.TS, uint32(e.A)}
			sp := add(Span{Kind: SpanWriteback, Start: e.TS, End: e.TS - 1, Addr: uint32(e.A)})
			wbByKey[k] = sp
			openWBs[k] = sp
		case KWBAck:
			k := wbKey{e.TS, uint32(e.A)}
			sp, ok := wbByKey[k]
			if !ok {
				sp = add(Span{Kind: SpanWriteback, Start: e.TS, Addr: uint32(e.A)})
				wbByKey[k] = sp
			}
			sp.End = e.TS + e.Dur
			wbByEnd[sp.End] = sp
			delete(openWBs, k)
		case KWBDrop:
			// The ACK was dropped by fault injection at e.TS: close the
			// matching open write-back (if its issue survived).
			var match *Span
			for k, sp := range openWBs {
				if k.addr == uint32(e.A) && k.ts <= e.TS && (match == nil || k.ts < match.Start) {
					match = sp
				}
			}
			if match == nil {
				match = add(Span{Kind: SpanWriteback, Start: e.TS, Addr: uint32(e.A)})
				set.Orphans++
			}
			match.End = e.TS
			match.Dropped = true
			wbByEnd[e.TS] = match
			delete(openWBs, wbKey{match.Start, match.Addr})
		}
	}

	// Pass 2: everything else, correlated against the write-backs.
	var outage *Span
	for _, e := range evs {
		if e.TS >= totalPS && totalPS > 0 {
			continue
		}
		switch e.Kind {
		case KStall:
			sp := add(Span{Kind: SpanStall, Start: e.TS, End: e.TS + e.Dur, Addr: uint32(e.A), PC: uint64(e.B)})
			// The stall ended when a write-back ACK released a
			// DirtyQueue slot: the releasing WB completes exactly at
			// the stall's end.
			if wb, ok := wbByEnd[sp.End]; ok {
				sp.Cause = wb.ID
			} else {
				set.Orphans++
			}
		case KPortWait:
			flags := int64(e.F)
			sp := add(Span{Kind: SpanPortWait, Start: e.TS, End: e.TS + e.Dur,
				Addr: uint32(e.A), PC: uint64(e.B),
				Write: flags&portFlagWrite != 0, Async: flags&portFlagAsync != 0})
			if sp.Async {
				// An async wait delays its own write-back (same issue
				// time and address).
				if wb, ok := wbByKey[wbKey{e.TS, uint32(e.A)}]; ok {
					sp.Parent = wb.ID
				}
			}
			// Whoever held the port freed it at the wait's end; if that
			// was an async write-back, link it as the cause.
			if wb, ok := wbByEnd[sp.End]; ok && wb.ID != sp.Parent {
				sp.Cause = wb.ID
			}
		case KCkpt:
			sp := add(Span{Kind: SpanCheckpoint, Start: e.TS, End: e.TS + e.Dur,
				Forced: e.A == 1, Lines: int(e.B), EnergyPJ: e.F})
			if outage != nil {
				sp.Parent = outage.ID
			}
		case KPowerFail:
			outage = add(Span{Kind: SpanOutage, Start: e.TS, End: e.TS, Forced: e.A == 1})
		case KOff:
			sp := add(Span{Kind: SpanOff, Start: e.TS, End: e.TS + e.Dur})
			if outage != nil {
				sp.Parent = outage.ID
			} else {
				set.Orphans++
			}
		case KRestore:
			sp := add(Span{Kind: SpanRestore, Start: e.TS, End: e.TS + e.Dur, EnergyPJ: e.F})
			if outage != nil {
				sp.Parent = outage.ID
				outage.End = sp.End
				outage = nil
			} else {
				set.Orphans++
			}
		}
	}
	// Unacked write-backs are orphans: power failed (or the ring
	// dropped the ACK) before they completed.
	set.Orphans += len(openWBs)

	set.Spans = make([]Span, len(spans))
	for i, sp := range spans {
		set.Spans[i] = *sp
	}
	return set
}

// ByKind returns the spans of one kind, in trace order.
func (s SpanSet) ByKind(k SpanKind) []Span {
	var out []Span
	for _, sp := range s.Spans {
		if sp.Kind == k {
			out = append(out, sp)
		}
	}
	return out
}

// Format renders one span as a report line, resolving causal links
// against the owning set.
func (s SpanSet) Format(sp Span) string {
	var b strings.Builder
	end := "open"
	if sp.End >= sp.Start {
		end = fmt.Sprintf("+%d ps", sp.Dur())
	}
	fmt.Fprintf(&b, "#%-6d %-10s [%12d ps %10s]", sp.ID, sp.Kind, sp.Start, end)
	if sp.Addr != 0 {
		fmt.Fprintf(&b, " addr=%#x", sp.Addr)
	}
	if sp.PC != 0 {
		fmt.Fprintf(&b, " site=%s", ResolvePC(sp.PC))
	}
	if sp.Forced {
		b.WriteString(" forced")
	}
	if sp.Dropped {
		b.WriteString(" ack-dropped")
	}
	if sp.Kind == SpanPortWait {
		if sp.Async {
			b.WriteString(" async")
		} else {
			b.WriteString(" sync")
		}
	}
	if sp.Kind == SpanCheckpoint && sp.Lines >= 0 {
		fmt.Fprintf(&b, " lines=%d", sp.Lines)
	}
	if sp.EnergyPJ != 0 {
		fmt.Fprintf(&b, " energy=%.4gpJ", sp.EnergyPJ)
	}
	if sp.Parent >= 0 {
		fmt.Fprintf(&b, " parent=#%d(%s)", sp.Parent, s.Spans[sp.Parent].Kind)
	}
	if sp.Cause >= 0 {
		fmt.Fprintf(&b, " cause=#%d(%s)", sp.Cause, s.Spans[sp.Cause].Kind)
	}
	return b.String()
}

// Summary renders the per-kind tally and coverage header `wlobs spans`
// prints before the span listing.
func (s SpanSet) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %d spans", s.Meta.Key(), len(s.Spans))
	for k := SpanStall; k <= SpanOutage; k++ {
		if n := len(s.ByKind(k)); n > 0 {
			fmt.Fprintf(&b, ", %d %s", n, k)
		}
	}
	fmt.Fprintf(&b, "\n   events %d (dropped %d), timeline coverage %.1f%%, %d orphan link(s)\n",
		s.Pushed, s.Dropped, 100*s.Coverage(), s.Orphans)
	return b.String()
}

// WriteJSONL writes the spans one JSON object per line.
func (s SpanSet) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range s.Spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}
