// Package obs is the observability layer: a zero-overhead-when-
// disabled structured event tracer, a metrics registry (counters,
// gauges, log-bucketed histograms) and JSONL run manifests, threaded
// through the simulator, the WL-Cache core, the energy and memory
// models and the fault injectors.
//
// The paper's central claims are temporal — DirtyQueue occupancy
// hovering at the waterline, asynchronous write-backs overlapping
// execution, JIT checkpoints fitting inside the reserved energy band
// — and end-of-run aggregates cannot show them. A Recorder captures
// the per-event timeline (exportable as Chrome trace_event JSON for
// chrome://tracing / Perfetto) and the distributions behind it, and
// snapshots both into a manifest that `wlobs diff` can compare across
// code versions to flag metric regressions.
//
// # Overhead model
//
// Instrumentation mirrors the FaultPlan/LineWriteHook pattern: every
// hook site holds a possibly-nil *Recorder (or an interface wired
// only when recording) and every Recorder/Counter/Gauge/Histogram
// method is nil-safe, so a disabled site costs exactly one nil check
// and an enabled site never allocates on the hot path — events go
// into a preallocated ring, metrics into preresolved structs.
package obs

// RunMeta keys a recording: the design × workload × trace cell the
// metrics and events belong to.
type RunMeta struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Trace    string `json:"trace"`
}

// Key returns the manifest-matching key of the cell.
func (m RunMeta) Key() string { return m.Design + " / " + m.Workload + " / " + m.Trace }

// Recorder bundles one run's event trace and metrics registry and
// exposes the typed event sites the instrumented packages call. All
// methods are nil-safe: a nil *Recorder records nothing.
type Recorder struct {
	Meta RunMeta

	trace *Trace
	reg   *Registry

	// Preresolved metrics, so event sites skip the registry map.
	stallPS      *Histogram
	wbLatPS      *Histogram
	dqOcc        *Histogram
	ckptPS       *Histogram
	ckptPJ       *Histogram
	ckptLines    *Histogram
	offPS        *Histogram
	restorePS    *Histogram
	portWaitPS   *Histogram
	portHiddenPS *Histogram

	// curPC is the program counter of the memory operation in flight
	// (OpContext); stall and port-wait events copy it as their
	// correlation key for per-PC hotspot attribution.
	curPC uint64
	// opCtxEvery samples op-context capture: 1 records every memory
	// op's PC (the default, full-fidelity hotspots), k > 1 every k-th
	// op, <= 0 never. The PC walk behind OpContext is the costliest
	// per-op instrumentation, so the simulator asks WantsOpContext
	// before paying for it.
	opCtxEvery int
	opCtxSkip  int

	stalls    *Counter
	wbIssued  *Counter
	wbAcked   *Counter
	wbDropped *Counter
	ckpts     *Counter
	ckptForce *Counter
	outages   *Counter
	adapts    *Counter
	torn      *Counter

	capV      *Gauge
	maxline   *Gauge
	waterline *Gauge
}

// NewRecorder builds a recorder for one run. eventCap bounds the
// event ring (<= 0 uses DefaultEventCap).
func NewRecorder(meta RunMeta, eventCap int) *Recorder {
	reg := NewRegistry()
	r := &Recorder{
		Meta:       meta,
		trace:      NewTrace(eventCap),
		reg:        reg,
		opCtxEvery: 1,

		stallPS:      reg.Histogram("core.stall_ps", DirLower),
		wbLatPS:      reg.Histogram("wb.latency_ps", DirLower),
		dqOcc:        reg.Histogram("dq.occupancy", DirNone),
		ckptPS:       reg.Histogram("ckpt.cost_ps", DirLower),
		ckptPJ:       reg.Histogram("ckpt.energy_pj", DirLower),
		ckptLines:    reg.Histogram("ckpt.lines", DirNone),
		offPS:        reg.Histogram("power.off_ps", DirLower),
		restorePS:    reg.Histogram("power.restore_ps", DirLower),
		portWaitPS:   reg.Histogram("nvm.port_wait_ps", DirLower),
		portHiddenPS: reg.Histogram("nvm.port_wait_async_ps", DirNone),

		stalls:    reg.Counter("core.stalls", DirLower),
		wbIssued:  reg.Counter("wb.issued", DirNone),
		wbAcked:   reg.Counter("wb.acked", DirNone),
		wbDropped: reg.Counter("wb.dropped", DirLower),
		ckpts:     reg.Counter("ckpt.count", DirLower),
		ckptForce: reg.Counter("ckpt.forced", DirNone),
		outages:   reg.Counter("power.outages", DirLower),
		adapts:    reg.Counter("core.adapts", DirNone),
		torn:      reg.Counter("fault.torn_writes", DirNone),

		capV:      reg.Gauge("energy.capacitor_v", DirNone),
		maxline:   reg.Gauge("core.maxline", DirNone),
		waterline: reg.Gauge("core.waterline", DirNone),
	}
	return r
}

// Registry exposes the metrics registry (nil on a nil recorder), so
// callers can fold run-level results in as extra gauges before
// snapshotting a manifest.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Trace exposes the event ring (nil on a nil recorder).
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// VoltageGauge returns the capacitor-voltage gauge for installation
// as an energy.VoltageSampler.
func (r *Recorder) VoltageGauge() *Gauge {
	if r == nil {
		return nil
	}
	return r.capV
}

// --- event sites ---

// SetOpContextSampling tunes how often memory-op program counters are
// captured: every records every op (1, the default), every k-th op for
// k > 1 (cheaper recordings with approximate hotspots), never for
// k <= 0. Stall events between samples carry no PC rather than a stale
// one.
func (r *Recorder) SetOpContextSampling(every int) {
	if r == nil {
		return
	}
	r.opCtxEvery = every
	r.opCtxSkip = 0
}

// WantsOpContext reports whether the recorder will consume a program
// counter for the memory op about to execute. The caller only walks
// the host stack (runtime.Callers) when this returns true; when an op
// is sampled out, the previous context is cleared so later stall
// events cannot inherit a stale PC. Nil-safe: a nil recorder never
// wants context.
func (r *Recorder) WantsOpContext() bool {
	if r == nil {
		return false
	}
	if r.opCtxEvery == 1 {
		return true
	}
	if r.opCtxEvery <= 0 {
		r.curPC = 0
		return false
	}
	r.opCtxSkip++
	if r.opCtxSkip >= r.opCtxEvery {
		r.opCtxSkip = 0
		return true
	}
	r.curPC = 0
	return false
}

// OpContext records the program counter of the architectural memory
// operation now executing; subsequent stall and port-wait events carry
// it as their hotspot correlation key until the next operation.
func (r *Recorder) OpContext(pc uint64) {
	if r == nil {
		return
	}
	r.curPC = pc
}

// StoreStall records one store stalled at the maxline bound (or a
// baseline's write-buffer/region bound) on line addr from start until
// end (core.ensureSlot).
func (r *Recorder) StoreStall(start, end int64, addr uint32) {
	if r == nil {
		return
	}
	r.stalls.Inc()
	r.stallPS.Observe(float64(end - start))
	r.trace.Push(Event{TS: start, Dur: end - start, Kind: KStall, A: int64(addr), B: int64(r.curPC)})
}

// WritebackIssued records an asynchronous write-back leaving the
// DirtyQueue for the NVM.
func (r *Recorder) WritebackIssued(now int64, addr uint32) {
	if r == nil {
		return
	}
	r.wbIssued.Inc()
	r.trace.Push(Event{TS: now, Kind: KWBIssue, A: int64(addr)})
}

// WritebackACK records a write-back ACK: issued -> done is the
// write-back latency the paper's overlap argument hides behind
// execution.
func (r *Recorder) WritebackACK(issued, done int64, addr uint32) {
	if r == nil {
		return
	}
	r.wbAcked.Inc()
	r.wbLatPS.Observe(float64(done - issued))
	r.trace.Push(Event{TS: issued, Dur: done - issued, Kind: KWBAck, A: int64(addr)})
}

// WritebackDropped records an ACK lost to fault injection.
func (r *Recorder) WritebackDropped(now int64, addr uint32) {
	if r == nil {
		return
	}
	r.wbDropped.Inc()
	r.trace.Push(Event{TS: now, Kind: KWBDrop, A: int64(addr)})
}

// DirtyDepth records the DirtyQueue occupancy after a transition; the
// distribution is the paper's waterline-hovering claim.
func (r *Recorder) DirtyDepth(now int64, depth int) {
	if r == nil {
		return
	}
	r.dqOcc.Observe(float64(depth))
	r.trace.Push(Event{TS: now, Kind: KDirty, A: int64(depth)})
}

// CheckpointDone records one JIT checkpoint window. lines < 0 means
// the design does not report flushed lines.
func (r *Recorder) CheckpointDone(start, end int64, forced bool, joules float64, lines int) {
	if r == nil {
		return
	}
	r.ckpts.Inc()
	if forced {
		r.ckptForce.Inc()
	}
	r.ckptPS.Observe(float64(end - start))
	r.ckptPJ.Observe(joules * 1e12)
	if lines >= 0 {
		r.ckptLines.Observe(float64(lines))
	}
	r.trace.Push(Event{TS: start, Dur: end - start, Kind: KCkpt,
		A: boolArg(forced), B: int64(lines), F: joules * 1e12})
}

// PowerFailure records the voltage monitor (or a fault plan, forced)
// triggering at volts.
func (r *Recorder) PowerFailure(now int64, volts float64, forced bool) {
	if r == nil {
		return
	}
	r.outages.Inc()
	r.trace.Push(Event{TS: now, Kind: KPowerFail, A: boolArg(forced), F: volts})
	r.trace.Push(Event{TS: now, Kind: KVolt, F: volts})
}

// Outage records the off-period recharge window.
func (r *Recorder) Outage(start, end int64) {
	if r == nil {
		return
	}
	r.offPS.Observe(float64(end - start))
	r.trace.Push(Event{TS: start, Dur: end - start, Kind: KOff})
}

// RestoreDone records the post-outage restore window.
func (r *Recorder) RestoreDone(start, end int64, joules float64) {
	if r == nil {
		return
	}
	r.restorePS.Observe(float64(end - start))
	r.trace.Push(Event{TS: start, Dur: end - start, Kind: KRestore, F: joules * 1e12})
}

// VoltageMark records a capacitor voltage at an outage boundary
// (reboot at Von); continuous sampling goes through VoltageGauge.
func (r *Recorder) VoltageMark(now int64, volts float64) {
	if r == nil {
		return
	}
	r.trace.Push(Event{TS: now, Kind: KVolt, F: volts})
}

// Adapt records a maxline reconfiguration (§4): boot-time (static)
// or dynamic mid-execution raise.
func (r *Recorder) Adapt(now int64, from, to int, dynamic bool) {
	if r == nil {
		return
	}
	r.adapts.Inc()
	r.Thresholds(to, to-1)
	r.trace.Push(Event{TS: now, Kind: KAdapt, A: int64(from), B: int64(to), F: float64(boolArg(dynamic))})
}

// Thresholds records the current maxline/waterline configuration.
func (r *Recorder) Thresholds(maxline, waterline int) {
	if r == nil {
		return
	}
	r.maxline.Set(float64(maxline))
	r.waterline.Set(float64(waterline))
}

// PortWait implements mem.PortObserver: one NVM access of addr waited
// `wait` ps for the single port. Synchronous waits block the core and
// feed nvm.port_wait_ps; asynchronous waits (write-backs the core does
// not wait on) are overlapped by execution and feed the informational
// nvm.port_wait_async_ps. Nonzero waits are also traced for span
// reconstruction and cycle attribution.
func (r *Recorder) PortWait(now, wait int64, addr uint32, write, async bool) {
	if r == nil {
		return
	}
	if async {
		r.portHiddenPS.Observe(float64(wait))
	} else {
		r.portWaitPS.Observe(float64(wait))
	}
	if wait == 0 {
		return
	}
	var flags int64
	if write {
		flags |= portFlagWrite
	}
	if async {
		flags |= portFlagAsync
	}
	r.trace.Push(Event{TS: now, Dur: wait, Kind: KPortWait, A: int64(addr), B: int64(r.curPC), F: float64(flags)})
}

// FaultTornWrite records an injected torn NVM line write: kept of n
// words persisted.
func (r *Recorder) FaultTornWrite(now int64, addr uint32, kept, n int) {
	if r == nil {
		return
	}
	r.torn.Inc()
	r.trace.Push(Event{TS: now, Kind: KTorn, A: int64(addr), B: int64(kept), F: float64(n)})
}

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
