package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind identifies one typed trace event. Events carry only numeric
// payloads (A, B, F) so pushing one never allocates; the meaning of
// the payload fields is per-kind and resolved at export time.
type Kind uint8

// The event taxonomy (DESIGN.md §9).
const (
	// KStall: a store stalled at the maxline bound (or the analogous
	// write-buffer/region bound of a baseline design). TS..TS+Dur is
	// the stall window, A the line address being stored, B the program
	// counter of the memory operation (0 when unknown).
	KStall Kind = iota + 1
	// KWBIssue: an asynchronous write-back was issued. A = line addr.
	KWBIssue
	// KWBAck: a write-back ACK arrived. TS is the issue time, Dur the
	// NVM latency (ACK - issue), A the line addr.
	KWBAck
	// KWBDrop: a write-back ACK was dropped (fault injection). A =
	// line addr.
	KWBDrop
	// KCkpt: one JIT checkpoint. TS..TS+Dur is the checkpoint window,
	// A = 1 when forced by a fault plan, B = dirty lines flushed (-1
	// when the design does not report them), F = energy in pJ.
	KCkpt
	// KPowerFail: the voltage monitor (or a fault plan, A = 1) fired.
	// F is the capacitor voltage.
	KPowerFail
	// KOff: the recharge window between power collapse and reboot.
	KOff
	// KRestore: the post-outage restore window. F = energy in pJ.
	KRestore
	// KAdapt: a maxline reconfiguration. A = old maxline, B = new,
	// F = 1 for a dynamic (mid-execution) raise, 0 for a boot-time
	// adaptation.
	KAdapt
	// KDirty: DirtyQueue occupancy changed. A = dirty lines now.
	KDirty
	// KVolt: a capacitor voltage mark at an outage boundary. F = V.
	KVolt
	// KTorn: fault injection tore an NVM line write. A = line addr,
	// B = words persisted out of F total words.
	KTorn
	// KPortWait: an NVM access waited TS..TS+Dur for the single port.
	// A = target address, B = the program counter of the memory
	// operation in flight (0 when unknown), F = flag bits (bit 0:
	// write path, bit 1: asynchronous — the wait was overlapped by
	// execution rather than blocking the core). Zero-length waits are
	// not recorded.
	KPortWait
)

// KPortWait flag bits carried in Event.F.
const (
	portFlagWrite = 1 << iota
	portFlagAsync
)

// kindMeta maps a Kind to its Chrome trace_event rendering: the event
// name, the phase ("X" complete, "i" instant, "C" counter) and the
// track (tid) it lands on.
var kindMeta = [...]struct {
	name string
	ph   string
	tid  int
}{
	KStall:     {"store-stall", "X", tidCore},
	KWBIssue:   {"wb-issue", "i", tidWB},
	KWBAck:     {"writeback", "X", tidWB},
	KWBDrop:    {"wb-ack-dropped", "i", tidWB},
	KCkpt:      {"checkpoint", "X", tidPower},
	KPowerFail: {"power-failure", "i", tidPower},
	KOff:       {"off", "X", tidPower},
	KRestore:   {"restore", "X", tidPower},
	KAdapt:     {"adapt", "i", tidCore},
	KDirty:     {"dirty-lines", "C", tidCore},
	KVolt:      {"voltage", "C", tidPower},
	KTorn:      {"torn-write", "i", tidFault},
	KPortWait:  {"port-wait", "X", tidNVM},
}

// The timeline tracks of the Chrome export.
const (
	tidCore = iota + 1
	tidWB
	tidPower
	tidFault
	tidNVM
)

var tidNames = map[int]string{
	tidCore:  "core",
	tidWB:    "writeback",
	tidPower: "power",
	tidFault: "fault",
	tidNVM:   "nvm-port",
}

// Event is one trace record. TS and Dur are simulated picoseconds.
type Event struct {
	TS   int64
	Dur  int64
	Kind Kind
	A    int64
	B    int64
	F    float64
}

// Trace is a fixed-capacity ring buffer of events: pushing past the
// capacity overwrites the oldest record, so a long run keeps its most
// recent window and the export stays bounded.
type Trace struct {
	buf    []Event
	next   int
	pushed uint64
}

// DefaultEventCap is the ring capacity NewRecorder uses when none is
// given: 64 Ki events (~3 MB).
const DefaultEventCap = 1 << 16

// NewTrace returns a ring of the given capacity (DefaultEventCap when
// capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Push appends one event, overwriting the oldest past capacity.
// Nil-safe: a nil trace drops the event.
func (t *Trace) Push(e Event) {
	if t == nil {
		return
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % len(t.buf)
	}
	t.pushed++
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Pushed returns the total number of events ever pushed.
func (t *Trace) Pushed() uint64 {
	if t == nil {
		return 0
	}
	return t.pushed
}

// Dropped returns how many events the ring overwrote.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.pushed - uint64(len(t.buf))
}

// Events returns the retained events in push order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// TraceEvent is one trace_event record in Chrome's JSON array format
// (chrome://tracing, Perfetto). Timestamps and durations are
// microseconds. Phase is "X" (complete), "i" (instant), "C" (counter)
// or "M" (metadata).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const psPerUS = 1e6

// WriteTraceEvents writes a Chrome trace_event JSON document:
// process/thread metadata built from processName and threadNames,
// followed by the given events. The sweep service reuses this for its
// request-level cell spans, so service traces and simulator traces
// load into the same tooling.
func WriteTraceEvents(w io.Writer, processName string, threadNames map[int]string, events []TraceEvent) error {
	out := make([]TraceEvent, 0, len(events)+1+len(threadNames))
	out = append(out, TraceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": processName},
	})
	tids := make([]int, 0, len(threadNames))
	for tid := range threadNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": threadNames[tid]},
		})
	}
	out = append(out, events...)
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     out,
	})
}

// WriteChrome exports the retained events as a Chrome trace_event
// JSON object. meta labels the process so multiple runs can be merged
// into one timeline.
func (t *Trace) WriteChrome(w io.Writer, meta RunMeta) error {
	evs := t.Events()
	out := make([]TraceEvent, 0, len(evs))
	for _, e := range evs {
		if int(e.Kind) >= len(kindMeta) || kindMeta[e.Kind].name == "" {
			continue
		}
		km := kindMeta[e.Kind]
		ce := TraceEvent{
			Name: km.name, Cat: "wlcache", Ph: km.ph, PID: 1, TID: km.tid,
			TS: float64(e.TS) / psPerUS,
		}
		if km.ph == "X" {
			ce.Dur = float64(e.Dur) / psPerUS
		}
		ce.Args = chromeArgs(e)
		out = append(out, ce)
	}
	name := fmt.Sprintf("%s / %s / %s", meta.Design, meta.Workload, meta.Trace)
	return WriteTraceEvents(w, name, tidNames, out)
}

// chromeArgs renders the per-kind payload fields.
func chromeArgs(e Event) map[string]any {
	switch e.Kind {
	case KWBIssue, KWBAck, KWBDrop:
		return map[string]any{"addr": fmt.Sprintf("%#x", uint32(e.A))}
	case KCkpt:
		return map[string]any{"forced": e.A == 1, "lines": e.B, "energy_pj": e.F}
	case KPowerFail:
		return map[string]any{"forced": e.A == 1, "voltage_v": e.F}
	case KRestore:
		return map[string]any{"energy_pj": e.F}
	case KAdapt:
		return map[string]any{"from": e.A, "to": e.B, "dynamic": e.F == 1}
	case KDirty:
		return map[string]any{"dirty": e.A}
	case KVolt:
		return map[string]any{"v": e.F}
	case KTorn:
		return map[string]any{"addr": fmt.Sprintf("%#x", uint32(e.A)), "kept": e.B, "of": e.F}
	case KStall:
		return map[string]any{"addr": fmt.Sprintf("%#x", uint32(e.A)), "pc": fmt.Sprintf("%#x", uint64(e.B))}
	case KPortWait:
		flags := int64(e.F)
		return map[string]any{
			"addr":  fmt.Sprintf("%#x", uint32(e.A)),
			"pc":    fmt.Sprintf("%#x", uint64(e.B)),
			"write": flags&portFlagWrite != 0,
			"async": flags&portFlagAsync != 0,
		}
	}
	return nil
}
