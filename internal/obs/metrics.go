package obs

import (
	"math"
	"sort"
)

// Dir declares which direction of change a metric considers a
// regression when two run manifests are diffed: for a DirLower metric
// (latencies, stalls, energy) growth is a regression; for a DirHigher
// metric shrinkage is; DirNone metrics are informational only
// (occupancy distributions, configuration gauges).
type Dir int8

// The regression directions.
const (
	DirNone Dir = iota
	DirLower
	DirHigher
)

// String returns the manifest encoding of the direction.
func (d Dir) String() string {
	switch d {
	case DirLower:
		return "lower"
	case DirHigher:
		return "higher"
	}
	return "none"
}

// DirFrom parses the manifest encoding of a direction ("lower",
// "higher", anything else = none). The run-history store reuses it so
// drift detection and manifest diffing agree on what a regression is.
func DirFrom(s string) Dir { return dirFrom(s) }

// dirFrom parses the manifest encoding back.
func dirFrom(s string) Dir {
	switch s {
	case "lower":
		return DirLower
	case "higher":
		return DirHigher
	}
	return DirNone
}

// Counter is a monotonically increasing event tally. All methods are
// nil-safe so disabled instrumentation costs one nil check.
type Counter struct {
	name string
	dir  Dir
	n    uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.n += d
}

// Value returns the current tally (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge tracks the last, extreme and mean values of a sampled
// quantity (capacitor voltage, maxline). Nil-safe like Counter.
type Gauge struct {
	name string
	dir  Dir
	n    uint64
	last float64
	min  float64
	max  float64
	sum  float64
}

// Set records one sample.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if g.n == 0 || v < g.min {
		g.min = v
	}
	if g.n == 0 || v > g.max {
		g.max = v
	}
	g.n++
	g.last = v
	g.sum += v
}

// Sample is Set under the name the energy package's VoltageSampler
// hook expects, so a Gauge can be installed directly on a Capacitor.
func (g *Gauge) Sample(v float64) { g.Set(v) }

// Last returns the most recent sample (0 on nil or empty).
func (g *Gauge) Last() float64 {
	if g == nil {
		return 0
	}
	return g.last
}

// Mean returns the arithmetic mean of all samples (NaN when empty).
func (g *Gauge) Mean() float64 {
	if g == nil || g.n == 0 {
		return math.NaN()
	}
	return g.sum / float64(g.n)
}

// histBuckets is the fixed bucket count: bucket 0 holds values < 1,
// bucket i holds [2^(i-1), 2^i), and the last bucket absorbs the tail.
const histBuckets = 64

// Histogram is a log2-bucketed distribution with exact count, sum,
// min and max. Values are expected in "natural integer units" — ps
// for times, pJ for energy, entries for occupancies — so bucket 0
// (values below 1) is the true zero bucket. Nil-safe like Counter.
type Histogram struct {
	name    string
	dir     Dir
	count   uint64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	i := int(math.Floor(math.Log2(v))) + 1
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketUpper returns the exclusive upper bound of bucket i (1 for
// bucket 0, +Inf for the last).
func BucketUpper(i int) float64 {
	switch {
	case i <= 0:
		return 1
	case i >= histBuckets-1:
		return math.Inf(1)
	}
	return math.Pow(2, float64(i))
}

// Observe records one value. Negative values clamp to zero (durations
// and occupancies are never negative; a clamp beats a panic on an
// instrumentation path).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns sum/count (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the buckets: it
// finds the bucket holding the q-th observation and returns that
// bucket's geometric midpoint (its lower bound for bucket 0, the max
// for the open tail). Single-sample histograms return that sample.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return math.NaN()
	}
	if h.count == 1 {
		return h.min
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen < rank {
			continue
		}
		switch {
		case i == 0:
			return 0
		case i == histBuckets-1:
			return h.max
		}
		lo := math.Pow(2, float64(i-1))
		mid := lo * math.Sqrt2
		if mid > h.max {
			mid = h.max
		}
		if mid < h.min {
			mid = h.min
		}
		return mid
	}
	return h.max
}

// Registry holds one run's metrics. It is not safe for concurrent
// use: the simulator is single-goroutine, and so is a Recorder.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it with direction d on
// first use. Nil registries return nil (disabled instrumentation).
func (r *Registry) Counter(name string, d Dir) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, dir: d}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, d Dir) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, dir: d}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string, d Dir) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, dir: d}
		r.hists[name] = h
	}
	return h
}

// counterNames returns the registered counter names, sorted.
func (r *Registry) counterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) gaugeNames() []string {
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) histNames() []string {
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
