package obs

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

// pushSpanFixture records the canonical causal chain: one async
// write-back whose ACK releases both a maxline stall and a sync port
// wait, followed by one complete outage episode, followed by the
// post-ExecTime shutdown flush that must be ignored.
func pushSpanFixture(tr *Trace) (totalPS int64) {
	tr.Push(Event{TS: 100, Kind: KWBIssue, A: 0x40})
	tr.Push(Event{TS: 100, Dur: 20, Kind: KPortWait, A: 0x40, B: 7, F: float64(portFlagWrite | portFlagAsync)})
	tr.Push(Event{TS: 100, Dur: 150, Kind: KWBAck, A: 0x40})
	tr.Push(Event{TS: 200, Dur: 50, Kind: KStall, A: 0x80, B: 7})
	tr.Push(Event{TS: 240, Dur: 10, Kind: KPortWait, A: 0x200, B: 9, F: float64(portFlagWrite)})
	tr.Push(Event{TS: 300, Kind: KPowerFail, F: 2.9})
	tr.Push(Event{TS: 300, Dur: 100, Kind: KCkpt, B: 5, F: 2000})
	tr.Push(Event{TS: 400, Dur: 500, Kind: KOff})
	tr.Push(Event{TS: 900, Dur: 100, Kind: KRestore, F: 50})
	tr.Push(Event{TS: 1205, Dur: 10, Kind: KCkpt, B: 0, F: 1}) // shutdown flush, TS >= total
	return 1200
}

func TestBuildSpansCorrelatesCausalChain(t *testing.T) {
	tr := NewTrace(64)
	total := pushSpanFixture(tr)
	set := BuildSpans(tr, RunMeta{Design: "wl"}, total)

	if set.Orphans != 0 {
		t.Fatalf("fixture produced %d orphans, want 0", set.Orphans)
	}
	if c := set.Coverage(); c != 1 {
		t.Fatalf("undropped ring coverage %g, want 1", c)
	}
	byKind := map[SpanKind]int{}
	for _, sp := range set.Spans {
		byKind[sp.Kind]++
	}
	want := map[SpanKind]int{SpanWriteback: 1, SpanStall: 1, SpanPortWait: 2,
		SpanCheckpoint: 1, SpanOff: 1, SpanRestore: 1, SpanOutage: 1}
	for k, n := range want {
		if byKind[k] != n {
			t.Fatalf("got %d %s spans, want %d (all: %v)", byKind[k], k, n, byKind)
		}
	}

	wb := set.ByKind(SpanWriteback)[0]
	if wb.Start != 100 || wb.End != 250 {
		t.Fatalf("writeback span [%d,%d], want [100,250]", wb.Start, wb.End)
	}
	stall := set.ByKind(SpanStall)[0]
	if stall.Cause != wb.ID {
		t.Fatalf("stall cause #%d, want writeback #%d", stall.Cause, wb.ID)
	}
	if stall.PC != 7 || stall.Addr != 0x80 {
		t.Fatalf("stall lost correlation keys: pc=%#x addr=%#x", stall.PC, stall.Addr)
	}
	for _, pw := range set.ByKind(SpanPortWait) {
		if pw.Async {
			if pw.Parent != wb.ID {
				t.Fatalf("async port wait parent #%d, want its writeback #%d", pw.Parent, wb.ID)
			}
		} else if pw.Cause != wb.ID {
			t.Fatalf("sync port wait cause #%d, want the port-holding writeback #%d", pw.Cause, wb.ID)
		}
	}
	outage := set.ByKind(SpanOutage)[0]
	if outage.Start != 300 || outage.End != 1000 {
		t.Fatalf("outage span [%d,%d], want [300,1000] (close at restore end)", outage.Start, outage.End)
	}
	for _, k := range []SpanKind{SpanCheckpoint, SpanOff, SpanRestore} {
		if sp := set.ByKind(k)[0]; sp.Parent != outage.ID {
			t.Fatalf("%s parent #%d, want outage #%d", k, sp.Parent, outage.ID)
		}
	}
	// The shutdown-flush checkpoint (TS >= totalPS) must not appear.
	if byKind[SpanCheckpoint] != 1 {
		t.Fatalf("post-ExecTime checkpoint leaked into the span set")
	}
	// Rendering must resolve links without panicking.
	if s := set.Format(stall); !strings.Contains(s, "cause=#") {
		t.Fatalf("formatted stall lost its cause link: %s", s)
	}
	var buf bytes.Buffer
	if err := set.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"writeback"`) {
		t.Fatalf("JSONL export missing symbolic kind:\n%s", buf.String())
	}
}

// A ring smaller than the event count must degrade gracefully: no
// panics, coverage below 100%, unacked/unmatched halves surfacing as
// orphans or open spans — never wrong links.
func TestBuildSpansTruncatedRing(t *testing.T) {
	tr := NewTrace(4)
	// 3 write-back pairs + a stall + the power chain: 10 events into a
	// 4-slot ring drops the first 6 (all the issues and early ACKs).
	for i := int64(0); i < 3; i++ {
		tr.Push(Event{TS: 100 * i, Kind: KWBIssue, A: 0x40})
		tr.Push(Event{TS: 100 * i, Dur: 50, Kind: KWBAck, A: 0x40})
	}
	tr.Push(Event{TS: 400, Dur: 25, Kind: KStall, A: 0x80, B: 3})
	tr.Push(Event{TS: 500, Kind: KPowerFail, F: 2.9})
	tr.Push(Event{TS: 500, Dur: 50, Kind: KCkpt})
	tr.Push(Event{TS: 600, Dur: 100, Kind: KOff})
	set := BuildSpans(tr, RunMeta{}, 1000)

	if set.Dropped != 6 {
		t.Fatalf("dropped %d, want 6", set.Dropped)
	}
	if c := set.Coverage(); c >= 1 || c <= 0 {
		t.Fatalf("truncated coverage %g, want in (0,1)", c)
	}
	// The stall's releasing ACK was overwritten: it must be an orphan,
	// not mislinked.
	stall := set.ByKind(SpanStall)[0]
	if stall.Cause != -1 {
		t.Fatalf("truncated stall got cause #%d, want -1", stall.Cause)
	}
	if set.Orphans == 0 {
		t.Fatal("truncation produced no orphan count")
	}

	// The ledger over the same truncated ring: exact invariant with an
	// Unknown prefix.
	l := AttributeTrace(tr, RunMeta{}, 1000, 0)
	if l.SumPS() != 1000 {
		t.Fatalf("truncated ledger sum %d, want 1000", l.SumPS())
	}
	if l.UnknownPS == 0 || l.Coverage() >= 1 {
		t.Fatalf("truncated ledger unknown=%d coverage=%g, want lossy", l.UnknownPS, l.Coverage())
	}
}

func TestAttributePriorityAndHotspots(t *testing.T) {
	tr := NewTrace(64)
	tr.Push(Event{TS: 20, Dur: 30, Kind: KPortWait, A: 0x40, B: 7, F: float64(portFlagWrite | portFlagAsync)})
	tr.Push(Event{TS: 100, Dur: 200, Kind: KStall, A: 0x80, B: 7})
	tr.Push(Event{TS: 200, Dur: 300, Kind: KPortWait, A: 0x80, B: 7, F: float64(portFlagWrite)})
	tr.Push(Event{TS: 450, Dur: 100, Kind: KCkpt})
	tr.Push(Event{TS: 600, Dur: 200, Kind: KOff})
	tr.Push(Event{TS: 650, Kind: KAdapt, A: 6, B: 7}) // instantaneous
	l := AttributeTrace(tr, RunMeta{Design: "wl"}, 1000, 1)

	// Overlap resolution: stall beats port-wait on [200,300); checkpoint
	// beats port-wait on [450,500); off owns [600,800); the rest is
	// compute. Exact partition, no double counting.
	want := map[Category]int64{
		CatCompute:    350,
		CatStall:      200,
		CatPortWait:   150,
		CatCheckpoint: 100,
		CatOff:        200,
		CatRestore:    0,
		CatAdapt:      0,
	}
	for c, w := range want {
		if got := l.CatPS[c]; got != w {
			t.Errorf("CatPS[%s] = %d, want %d", c, got, w)
		}
	}
	if l.SumPS() != 1000 {
		t.Fatalf("sum %d != total 1000", l.SumPS())
	}
	if l.HiddenPortWaitPS != 30 {
		t.Fatalf("hidden port wait %d, want 30 (async never enters the ledger)", l.HiddenPortWaitPS)
	}
	if len(l.Hotspots) != 1 {
		t.Fatalf("hotspots: %+v, want one (pc=7)", l.Hotspots)
	}
	h := l.Hotspots[0]
	// Events counts only ledger-charged (sync) events; the async wait
	// contributed no attributed time, so it does not count.
	if h.PC != 7 || h.StallPS != 200 || h.PortWaitPS != 150 || h.Events != 2 {
		t.Fatalf("hotspot %+v, want pc=7 stall=200 portwait=150 events=2", h)
	}
	if h.Site != "pc=0x7" {
		t.Fatalf("unresolvable PC rendered %q, want pc=0x7", h.Site)
	}
}

func TestAttrRecordRoundTripAndFolded(t *testing.T) {
	tr := NewTrace(64)
	tr.Push(Event{TS: 100, Dur: 200, Kind: KStall, A: 0x80, B: 7})
	tr.Push(Event{TS: 600, Dur: 200, Kind: KOff})
	l := AttributeTrace(tr, RunMeta{Design: "wl", Workload: "sha", Trace: "tr1"}, 1000, 1)

	var buf bytes.Buffer
	if err := WriteAttr(&buf, &l, 3); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAttrs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("read %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Format != AttrFormat || r.Design != "wl" || r.TotalPS != 1000 {
		t.Fatalf("record lost metadata: %+v", r)
	}
	if len(r.Categories) != int(numCategories) {
		t.Fatalf("record has %d categories, want all %d (zeros included)", len(r.Categories), numCategories)
	}
	if r.Categories["maxline-stall"] != 200 || r.Categories["off"] != 200 || r.Categories["compute"] != 600 {
		t.Fatalf("categories wrong: %v", r.Categories)
	}
	if r.Coverage != 1 {
		t.Fatalf("coverage %g, want 1", r.Coverage)
	}
	// Garbage format must be rejected.
	if _, err := ReadAttrs(strings.NewReader(`{"format":"nope"}` + "\n")); err == nil {
		t.Fatal("ReadAttrs accepted a foreign format")
	}

	folded := l.Folded()
	for _, wantLine := range []string{"compute 600", "maxline-stall;pc=0x7 200", "off 200"} {
		if !strings.Contains(folded, wantLine) {
			t.Fatalf("folded output missing %q:\n%s", wantLine, folded)
		}
	}
	if strings.Contains(folded, "adapt") || strings.Contains(folded, "unknown") {
		t.Fatalf("folded output emitted zero-weight stacks:\n%s", folded)
	}
	// Weights must sum back to the total (cyclePS=1: cycles == ps).
	var sum int64
	for _, line := range strings.Split(strings.TrimSpace(folded), "\n") {
		i := strings.LastIndexByte(line, ' ')
		w, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad folded line %q: %v", line, err)
		}
		sum += w
	}
	if sum != 1000 {
		t.Fatalf("folded weights sum to %d, want 1000", sum)
	}
}

// The folded-stack format is consumed by external tooling, so its
// exact shape is pinned by a golden file. Synthetic PCs render as
// pc=0x… and keep the golden stable across Go versions.
func TestFoldedGolden(t *testing.T) {
	tr := NewTrace(64)
	tr.Push(Event{TS: 100, Dur: 200, Kind: KStall, A: 0x80, B: 7})
	tr.Push(Event{TS: 600, Dur: 200, Kind: KOff})
	l := AttributeTrace(tr, RunMeta{Design: "wl"}, 1000, 1)

	want, err := os.ReadFile("testdata/folded_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Folded(); got != string(want) {
		t.Fatalf("folded output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
