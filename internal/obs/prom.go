package obs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format rendering of a Registry.
//
// Metric names in the registry may carry an embedded label set in the
// standard exposition spelling — `wlserve_cell_us{outcome="computed"}`
// — so one logical metric can fan out over label values while the
// registry stays a flat name→metric map. The renderer splits the name
// at the first '{', sanitizes the base into a legal Prometheus
// identifier, groups series sharing a base under one # TYPE header,
// and expands histograms into the conventional _bucket (cumulative,
// with an `le` label merged into any embedded labels), _sum and _count
// series. Dotted simulator names (`core.stall_ps`) sanitize to
// underscore form (`core_stall_ps`), so a sim-run registry renders too.

// promName splits a registry metric name into its sanitized base and
// its embedded label block ("" when none, otherwise `k="v",...` without
// the braces).
func promName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		labels = strings.TrimSuffix(name[i+1:], "}")
		name = name[:i]
	}
	return sanitizeProm(name), labels
}

// sanitizeProm maps an arbitrary metric name onto the Prometheus
// identifier alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeProm(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promVal renders a sample value; Prometheus text wants NaN/Inf
// spelled out.
func promVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries writes one sample line: name, optional label block, value.
func promSeries(w io.Writer, base, labels string, v float64) error {
	if labels != "" {
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", base, labels, promVal(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", base, promVal(v))
	return err
}

// mergeLabels appends extra (already `k="v"` formatted) to an embedded
// label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// promGroup is every registry series sharing one sanitized base name.
type promGroup struct {
	base   string
	kind   string // "counter", "gauge", "histogram"
	series []promEntry
}

type promEntry struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters as counters, gauges as
// gauges (last sample), histograms as cumulative _bucket/_sum/_count
// families with log2 `le` bounds. Series are ordered by base name,
// then label block, so output is deterministic. Nil registries render
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	groups := map[string]*promGroup{}
	add := func(name, kind string, e promEntry) {
		base, labels := promName(name)
		e.labels = labels
		g, ok := groups[base]
		if !ok {
			g = &promGroup{base: base, kind: kind}
			groups[base] = g
		}
		g.series = append(g.series, e)
	}
	for _, n := range r.counterNames() {
		add(n, "counter", promEntry{c: r.counters[n]})
	}
	for _, n := range r.gaugeNames() {
		add(n, "gauge", promEntry{g: r.gauges[n]})
	}
	for _, n := range r.histNames() {
		add(n, "histogram", promEntry{h: r.hists[n]})
	}

	bases := make([]string, 0, len(groups))
	for b := range groups {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, b := range bases {
		g := groups[b]
		sort.Slice(g.series, func(i, j int) bool { return g.series[i].labels < g.series[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", g.base, g.kind); err != nil {
			return err
		}
		for _, e := range g.series {
			var err error
			switch {
			case e.c != nil:
				err = promSeries(w, g.base, e.labels, float64(e.c.Value()))
			case e.g != nil:
				err = promSeries(w, g.base, e.labels, e.g.Last())
			case e.h != nil:
				err = writePromHist(w, g.base, e.labels, e.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist expands one log2 histogram into cumulative buckets.
// Only buckets up to the one holding the max value are emitted (plus
// the mandatory +Inf), so a 64-bucket histogram does not bloat the
// scrape with empty tail buckets.
func writePromHist(w io.Writer, base, labels string, h *Histogram) error {
	var cum uint64
	if h.count > 0 {
		last := bucketOf(h.max)
		for i := 0; i <= last && i < histBuckets; i++ {
			cum += h.buckets[i]
			up := BucketUpper(i)
			if math.IsInf(up, 1) {
				break // the +Inf line below covers the open tail
			}
			le := mergeLabels(labels, fmt.Sprintf("le=%q", promVal(up)))
			if err := promSeries(w, base+"_bucket", le, float64(cum)); err != nil {
				return err
			}
		}
	}
	if err := promSeries(w, base+"_bucket", mergeLabels(labels, `le="+Inf"`), float64(h.count)); err != nil {
		return err
	}
	if err := promSeries(w, base+"_sum", labels, h.sum); err != nil {
		return err
	}
	return promSeries(w, base+"_count", labels, float64(h.count))
}

// PromSample is one parsed sample line of a Prometheus text scrape.
type PromSample struct {
	Name   string            // metric name (base, without the label block)
	Labels map[string]string // nil when the line carries no labels
	Value  float64
}

// Typed scrape-validation errors. A scraper that races a deploy can
// meet half-written or doubled expositions; callers branch on these
// with errors.Is to tell a corrupt scrape from an I/O failure.
var (
	// ErrPromTruncated marks an exposition cut off mid-stream: the text
	// format requires a final line feed, so a missing one means the
	// writer died (or the connection closed) before finishing.
	ErrPromTruncated = errors.New("truncated prometheus exposition")
	// ErrPromDuplicateFamily marks a metric family declared twice — the
	// signature of two expositions concatenated.
	ErrPromDuplicateFamily = errors.New("duplicate prometheus metric family")
	// ErrPromBucketOrder marks histogram buckets whose `le` bounds are
	// not strictly increasing.
	ErrPromBucketOrder = errors.New("prometheus histogram buckets out of order")
	// ErrPromMissingInf marks a histogram family that never emitted its
	// mandatory +Inf bucket.
	ErrPromMissingInf = errors.New("prometheus histogram missing +Inf bucket")
)

// promHistState tracks one histogram series' bucket progression (keyed
// by base name + non-le label signature).
type promHistState struct {
	lastLE float64
	sawInf bool
	line   int
}

// ParsePrometheus is a validating parser for the Prometheus text
// exposition format subset this package writes: # comment lines,
// `name value` and `name{k="v",...} value` samples. It returns every
// sample in input order, erroring on any malformed line — the load
// harness and tests use it to prove /metrics scrapes are well-formed.
// Beyond line syntax it enforces the format's semantic rules: the
// exposition ends in a line feed (ErrPromTruncated), a # TYPE family
// is declared at most once (ErrPromDuplicateFamily), histogram bucket
// bounds increase strictly (ErrPromBucketOrder) and every histogram
// closes with its +Inf bucket (ErrPromMissingInf).
func ParsePrometheus(r io.Reader) ([]PromSample, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) > 0 && raw[len(raw)-1] != '\n' {
		return nil, fmt.Errorf("obs: %w: no final line feed", ErrPromTruncated)
	}

	var out []PromSample
	families := map[string]string{} // base name -> declared type
	hists := map[string]*promHistState{}
	lineNo := 0
	for _, rawLine := range strings.Split(string(raw), "\n") {
		lineNo++
		line := strings.TrimSpace(rawLine)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					base := fields[0]
					if _, dup := families[base]; dup {
						return nil, fmt.Errorf("obs: prometheus line %d: %w: %s", lineNo, ErrPromDuplicateFamily, base)
					}
					kind := ""
					if len(fields) >= 2 {
						kind = fields[1]
					}
					families[base] = kind
				}
			}
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: prometheus line %d: %w", lineNo, err)
		}
		if base, ok := strings.CutSuffix(s.Name, "_bucket"); ok && families[base] == "histogram" {
			if err := checkPromBucket(hists, base, s, lineNo); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}
	for _, st := range sortedHistStates(hists) {
		if !st.state.sawInf {
			return nil, fmt.Errorf("obs: prometheus line %d: %w: %s", st.state.line, ErrPromMissingInf, st.key)
		}
	}
	return out, nil
}

// checkPromBucket folds one _bucket sample of a declared histogram
// family into its series' ordering state.
func checkPromBucket(hists map[string]*promHistState, base string, s PromSample, lineNo int) error {
	leStr, ok := s.Labels["le"]
	if !ok {
		return fmt.Errorf("obs: prometheus line %d: %s_bucket sample without le label", lineNo, base)
	}
	var le float64
	if leStr == "+Inf" {
		le = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			return fmt.Errorf("obs: prometheus line %d: bad le bound %q: %v", lineNo, leStr, err)
		}
		le = v
	}
	key := base + "{" + promLabelSignature(s.Labels) + "}"
	st, ok := hists[key]
	if !ok {
		st = &promHistState{lastLE: math.Inf(-1)}
		hists[key] = st
	}
	st.line = lineNo
	if st.sawInf || le <= st.lastLE {
		return fmt.Errorf("obs: prometheus line %d: %w: %s le=%s after le=%s",
			lineNo, ErrPromBucketOrder, key, leStr, promVal(st.lastLE))
	}
	st.lastLE = le
	if math.IsInf(le, 1) {
		st.sawInf = true
	}
	return nil
}

// promLabelSignature renders a label set minus `le`, sorted, so all
// buckets of one histogram series share a key.
func promLabelSignature(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return strings.Join(parts, ",")
}

// sortedHistStates orders the bucket states for deterministic error
// selection when several histograms are incomplete.
func sortedHistStates(hists map[string]*promHistState) []struct {
	key   string
	state *promHistState
} {
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		key   string
		state *promHistState
	}, len(keys))
	for i, k := range keys {
		out[i] = struct {
			key   string
			state *promHistState
		}{k, hists[k]}
	}
	return out
}

func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	// Name runs to the first '{' or space.
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return s, fmt.Errorf("no metric name in %q", line)
	}
	s.Name = rest[:end]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.IndexByte(rest, '}')
		if close < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parsePromLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; this writer
	// never emits one, so a second field is rejected as malformed.
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(block string) (map[string]string, error) {
	labels := map[string]string{}
	rest := block
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad label pair in %q", block)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validPromName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", block)
		}
		val, n, err := unquotePromValue(rest)
		if err != nil {
			return nil, err
		}
		labels[key] = val
		rest = rest[n:]
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		} else if rest != "" {
			return nil, fmt.Errorf("junk after label value in %q", block)
		}
	}
	return labels, nil
}

// unquotePromValue consumes a leading quoted string (with \" \\ \n
// escapes) and returns the value plus bytes consumed.
func unquotePromValue(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value in %q", s)
}

func validPromName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(name) > 0
}
