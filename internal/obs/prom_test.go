package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

// find returns the parsed samples matching a base name.
func find(samples []PromSample, name string) []PromSample {
	var out []PromSample
	for _, s := range samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// The registry's Prometheus rendering round-trips through the
// validating parser: counters, gauges and histograms with embedded
// label blocks all come back with the values that went in.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`requests_total{route="/v1/sweeps",code="200"}`, DirNone).Add(7)
	r.Counter(`requests_total{route="/metricz",code="200"}`, DirNone).Add(3)
	r.Gauge("queue_depth", DirLower).Set(4)
	h := r.Histogram(`cell_us{outcome="computed"}`, DirLower)
	for _, v := range []float64{1, 10, 100, 1000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, buf.String())
	}

	reqs := find(samples, "requests_total")
	if len(reqs) != 2 {
		t.Fatalf("requests_total: %d series, want 2", len(reqs))
	}
	var total float64
	for _, s := range reqs {
		if s.Labels["code"] != "200" {
			t.Fatalf("requests_total labels: %v", s.Labels)
		}
		total += s.Value
	}
	if total != 10 {
		t.Fatalf("requests_total sum = %v, want 10", total)
	}

	if g := find(samples, "queue_depth"); len(g) != 1 || g[0].Value != 4 {
		t.Fatalf("queue_depth = %+v, want one sample of 4", g)
	}

	if c := find(samples, "cell_us_count"); len(c) != 1 || c[0].Value != 4 {
		t.Fatalf("cell_us_count = %+v, want 4", c)
	}
	if s := find(samples, "cell_us_sum"); len(s) != 1 || s[0].Value != 1111 {
		t.Fatalf("cell_us_sum = %+v, want 1111", s)
	}
	buckets := find(samples, "cell_us_bucket")
	if len(buckets) == 0 {
		t.Fatal("no cell_us_bucket series")
	}
	prev := -1.0
	sawInf := false
	for _, b := range buckets {
		if b.Labels["outcome"] != "computed" {
			t.Fatalf("bucket lost embedded label: %v", b.Labels)
		}
		if b.Value < prev {
			t.Fatalf("bucket counts not cumulative: %v after %v", b.Value, prev)
		}
		prev = b.Value
		if b.Labels["le"] == "+Inf" {
			sawInf = true
			if b.Value != 4 {
				t.Fatalf("+Inf bucket = %v, want total count 4", b.Value)
			}
		}
	}
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}

	// # TYPE groups must be contiguous: each base name announced once.
	seen := map[string]int{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			seen[strings.Fields(rest)[0]]++
		}
	}
	for base, n := range seen {
		if n != 1 {
			t.Fatalf("# TYPE %s announced %d times", base, n)
		}
	}
}

// Metric names with characters outside the Prometheus charset are
// sanitized rather than emitted invalid.
func TestWritePrometheusSanitizesNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird name/with-dashes", DirNone).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("sanitized output does not parse: %v\n%s", err, buf.String())
	}
	if len(samples) != 1 || strings.ContainsAny(samples[0].Name, " /-") {
		t.Fatalf("samples = %+v, want one sanitized name", samples)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"name{unterminated=\"v value\n",
		"name not-a-number\n",
		"{nobase=\"v\"} 1\n",
		"na me 1\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted malformed input", bad)
		}
	}
}

// Adversarial expositions a scraper can meet mid-deploy: each is
// rejected with its typed sentinel, so callers can tell a corrupt
// scrape from an I/O failure.
func TestParsePrometheusAdversarial(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  error
	}{
		{
			// Two expositions concatenated — e.g. a proxy gluing together
			// responses from the old and new binary during a deploy.
			name: "duplicate family",
			input: "# TYPE reqs_total counter\nreqs_total 1\n" +
				"# TYPE reqs_total counter\nreqs_total 2\n",
			want: ErrPromDuplicateFamily,
		},
		{
			name: "out-of-order buckets",
			input: "# TYPE lat_us histogram\n" +
				"lat_us_bucket{le=\"100\"} 3\n" +
				"lat_us_bucket{le=\"10\"} 1\n" +
				"lat_us_bucket{le=\"+Inf\"} 4\n" +
				"lat_us_sum 120\nlat_us_count 4\n",
			want: ErrPromBucketOrder,
		},
		{
			name: "duplicate bucket bound",
			input: "# TYPE lat_us histogram\n" +
				"lat_us_bucket{le=\"10\"} 1\n" +
				"lat_us_bucket{le=\"10\"} 2\n" +
				"lat_us_bucket{le=\"+Inf\"} 2\n",
			want: ErrPromBucketOrder,
		},
		{
			name: "bucket after +Inf",
			input: "# TYPE lat_us histogram\n" +
				"lat_us_bucket{le=\"+Inf\"} 4\n" +
				"lat_us_bucket{le=\"10\"} 1\n",
			want: ErrPromBucketOrder,
		},
		{
			name: "missing +Inf bucket",
			input: "# TYPE lat_us histogram\n" +
				"lat_us_bucket{le=\"10\"} 1\n" +
				"lat_us_bucket{le=\"100\"} 3\n" +
				"lat_us_sum 120\nlat_us_count 3\n",
			want: ErrPromMissingInf,
		},
		{
			// The format requires a final line feed; a scrape cut off
			// mid-line (or mid-value) is truncation, not data.
			name:  "truncated exposition",
			input: "# TYPE reqs_total counter\nreqs_total 12",
			want:  ErrPromTruncated,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePrometheus(strings.NewReader(tc.input))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// Per-series bucket validation: two label-distinguished series of one
// histogram family interleave legally, and each must close with +Inf
// independently.
func TestParsePrometheusBucketSeries(t *testing.T) {
	good := "# TYPE lat_us histogram\n" +
		"lat_us_bucket{op=\"r\",le=\"10\"} 1\n" +
		"lat_us_bucket{op=\"w\",le=\"10\"} 2\n" +
		"lat_us_bucket{op=\"r\",le=\"+Inf\"} 1\n" +
		"lat_us_bucket{op=\"w\",le=\"+Inf\"} 2\n"
	if _, err := ParsePrometheus(strings.NewReader(good)); err != nil {
		t.Fatalf("interleaved series rejected: %v", err)
	}
	bad := "# TYPE lat_us histogram\n" +
		"lat_us_bucket{op=\"r\",le=\"10\"} 1\n" +
		"lat_us_bucket{op=\"r\",le=\"+Inf\"} 1\n" +
		"lat_us_bucket{op=\"w\",le=\"10\"} 2\n"
	if _, err := ParsePrometheus(strings.NewReader(bad)); !errors.Is(err, ErrPromMissingInf) {
		t.Fatalf("series w missing +Inf: err = %v, want ErrPromMissingInf", err)
	}
	// An empty exposition (e.g. a nil registry) parses to no samples.
	if s, err := ParsePrometheus(strings.NewReader("")); err != nil || len(s) != 0 {
		t.Fatalf("empty exposition: samples=%v err=%v", s, err)
	}
}

// SyncRegistry is safe under concurrent writers and scrapers; the
// final render accounts for every operation.
func TestSyncRegistryConcurrent(t *testing.T) {
	sr := NewSyncRegistry()
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sr.Inc(`ops_total{kind="inc"}`, DirNone)
				sr.Observe("lat_us", DirLower, float64(i+1))
				sr.Set("depth", DirLower, float64(w))
				if i%50 == 0 {
					var buf bytes.Buffer
					if err := sr.WritePrometheus(&buf); err != nil {
						t.Errorf("scrape: %v", err)
						return
					}
					if _, err := ParsePrometheus(bytes.NewReader(buf.Bytes())); err != nil {
						t.Errorf("mid-run scrape does not parse: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := sr.CounterValue(`ops_total{kind="inc"}`); got != workers*each {
		t.Fatalf("ops_total = %d, want %d", got, workers*each)
	}
	if got := sr.HistCount("lat_us"); got != workers*each {
		t.Fatalf("lat_us count = %d, want %d", got, workers*each)
	}
	if q := sr.HistQuantile("lat_us", 0.5); q <= 0 {
		t.Fatalf("lat_us p50 = %v, want > 0", q)
	}
}

// A nil SyncRegistry is a no-op for every method — callers never need
// to guard.
func TestSyncRegistryNil(t *testing.T) {
	var sr *SyncRegistry
	sr.Inc("x", DirNone)
	sr.Add("x", DirNone, 2)
	sr.Set("x", DirNone, 1)
	sr.Observe("x", DirNone, 1)
	if v := sr.CounterValue("x"); v != 0 {
		t.Fatalf("nil CounterValue = %d", v)
	}
	if c := sr.HistCount("x"); c != 0 {
		t.Fatalf("nil HistCount = %d", c)
	}
	var buf bytes.Buffer
	if err := sr.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WritePrometheus wrote %q, err %v", buf.String(), err)
	}
}

// WriteTraceEvents emits loadable trace_event JSON with the process
// and thread metadata first.
func TestWriteTraceEvents(t *testing.T) {
	events := []TraceEvent{
		{Name: "cell-0", Cat: "sweep", Ph: "X", PID: 1, TID: 2, TS: 0, Dur: 50},
		{Name: "cell-1", Cat: "sweep", Ph: "i", PID: 1, TID: 1, TS: 60},
	}
	var buf bytes.Buffer
	err := WriteTraceEvents(&buf, "proc", map[int]string{1: "served", 2: "lane-0"}, events)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"process_name"`, `"thread_name"`, `"served"`, `"lane-0"`, `"cell-0"`, `"ph":"X"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %s:\n%s", want, out)
		}
	}
	if !strings.HasPrefix(strings.TrimSpace(out), "{") {
		t.Fatalf("not a JSON object: %s", out)
	}
}

func TestHistQuantileMonotonic(t *testing.T) {
	sr := NewSyncRegistry()
	for i := 1; i <= 1000; i++ {
		sr.Observe("v", DirLower, float64(i))
	}
	last := 0.0
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := sr.HistQuantile("v", q)
		if v < last {
			t.Fatalf("quantile %v = %v < previous %v", q, v, last)
		}
		last = v
	}
}
