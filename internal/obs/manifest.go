package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Schema identifies the manifest format this package writes.
const Schema = "wlobs/v1"

// CounterSnap is a counter in a manifest.
type CounterSnap struct {
	Name  string `json:"name"`
	Dir   string `json:"dir"`
	Value uint64 `json:"value"`
}

// GaugeSnap is a gauge in a manifest.
type GaugeSnap struct {
	Name    string  `json:"name"`
	Dir     string  `json:"dir"`
	Samples uint64  `json:"samples"`
	Last    float64 `json:"last"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
}

// BucketSnap is one non-empty log2 bucket: Upper is the exclusive
// upper bound (0 encodes the open tail bucket).
type BucketSnap struct {
	Upper float64 `json:"upper"`
	Count uint64  `json:"count"`
}

// HistSnap is a histogram in a manifest.
type HistSnap struct {
	Name    string       `json:"name"`
	Dir     string       `json:"dir"`
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Mean returns sum/count (NaN when empty).
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Manifest is one run's machine-readable record: metadata plus every
// metric snapshot, written as one JSONL line.
type Manifest struct {
	Schema string `json:"schema"`
	RunMeta
	Events        uint64        `json:"events"`
	EventsDropped uint64        `json:"events_dropped"`
	Counters      []CounterSnap `json:"counters"`
	Gauges        []GaugeSnap   `json:"gauges"`
	Histograms    []HistSnap    `json:"histograms"`
}

// Manifest snapshots the recorder's metrics, with every section
// sorted by name for stable diffs.
func (r *Recorder) Manifest() Manifest {
	m := Manifest{Schema: Schema}
	if r == nil {
		return m
	}
	m.RunMeta = r.Meta
	m.Events = r.trace.Pushed()
	m.EventsDropped = r.trace.Dropped()
	for _, n := range r.reg.counterNames() {
		c := r.reg.counters[n]
		m.Counters = append(m.Counters, CounterSnap{Name: c.name, Dir: c.dir.String(), Value: c.n})
	}
	for _, n := range r.reg.gaugeNames() {
		g := r.reg.gauges[n]
		s := GaugeSnap{Name: g.name, Dir: g.dir.String(), Samples: g.n, Last: g.last, Min: g.min, Max: g.max}
		if g.n > 0 {
			s.Mean = g.sum / float64(g.n)
		}
		m.Gauges = append(m.Gauges, s)
	}
	for _, n := range r.reg.histNames() {
		h := r.reg.hists[n]
		s := HistSnap{Name: h.name, Dir: h.dir.String(), Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, cnt := range h.buckets {
			if cnt == 0 {
				continue
			}
			up := BucketUpper(i)
			if math.IsInf(up, 1) {
				up = 0 // JSON has no Inf; 0 encodes the open tail
			}
			s.Buckets = append(s.Buckets, BucketSnap{Upper: up, Count: cnt})
		}
		m.Histograms = append(m.Histograms, s)
	}
	return m
}

// AppendManifest writes m as one JSONL line.
func AppendManifest(w io.Writer, m Manifest) error {
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// ReadManifests parses a JSONL manifest stream, skipping blank lines.
func ReadManifests(r io.Reader) ([]Manifest, error) {
	var out []Manifest
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m Manifest
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("obs: manifest line %d: %w", lineNo, err)
		}
		if m.Schema != Schema {
			return nil, fmt.Errorf("obs: manifest line %d: schema %q, want %q", lineNo, m.Schema, Schema)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Delta is one metric compared across two manifests.
type Delta struct {
	Metric string
	Kind   string // "counter", "gauge" or "histogram"
	Dir    Dir
	Old    float64
	New    float64
	// Rel is the relative change (new-old)/old; +Inf when old is zero
	// and new is not.
	Rel float64
	// Regression marks a change beyond the threshold in the metric's
	// bad direction.
	Regression bool
	// State is "" for a metric present on both sides, "new" for one
	// only the new manifest has (a metric a code change added), "gone"
	// for one only the old manifest has.
	State string
}

// String renders the delta as one report line.
func (d Delta) String() string {
	switch d.State {
	case "new":
		return fmt.Sprintf("%-10s %-9s %-22s %14s -> %-14s", "new", d.Kind, d.Metric, "-", trimFloat(d.New))
	case "gone":
		return fmt.Sprintf("%-10s %-9s %-22s %14s -> %-14s", "gone", d.Kind, d.Metric, trimFloat(d.Old), "-")
	}
	tag := "  "
	switch {
	case d.Regression:
		tag = "REGRESSION"
	case d.Dir == DirLower && d.Rel < 0, d.Dir == DirHigher && d.Rel > 0:
		tag = "improved"
	}
	return fmt.Sprintf("%-10s %-9s %-22s %14s -> %-14s (%+.2f%%)",
		tag, d.Kind, d.Metric, trimFloat(d.Old), trimFloat(d.New), 100*d.Rel)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// DiffReport compares one run cell across two manifests. Metrics
// present on one side only appear as Deltas with State "new"/"gone".
type DiffReport struct {
	Key    string
	Deltas []Delta
}

// OneSided returns the "new"/"gone" deltas — metrics a code change
// added or removed, which a value diff alone would hide.
func (r DiffReport) OneSided() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.State != "" {
			out = append(out, d)
		}
	}
	return out
}

// Regressions returns the deltas flagged as regressions.
func (r DiffReport) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Changed returns the deltas whose relative change exceeds the given
// threshold in either direction (reporting aid).
func (r DiffReport) Changed(threshold float64) []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if math.Abs(d.Rel) > threshold || d.Regression || d.State != "" {
			out = append(out, d)
		}
	}
	return out
}

// DiffManifests compares every metric present in both manifests.
// Counters compare values, gauges and histograms compare means; a
// change beyond threshold (relative) in a metric's bad direction is a
// regression. Metrics with direction "none" never regress.
func DiffManifests(old, new Manifest, threshold float64) DiffReport {
	rep := DiffReport{Key: old.Key()}

	collect := func(m Manifest) map[string]side {
		out := map[string]side{}
		for _, c := range m.Counters {
			out["counter/"+c.Name] = side{"counter", dirFrom(c.Dir), float64(c.Value), true}
		}
		for _, g := range m.Gauges {
			out["gauge/"+g.Name] = side{"gauge", dirFrom(g.Dir), g.Mean, g.Samples > 0}
		}
		for _, h := range m.Histograms {
			v := 0.0
			if h.Count > 0 {
				v = h.Sum / float64(h.Count)
			}
			out["histogram/"+h.Name] = side{"histogram", dirFrom(h.Dir), v, h.Count > 0}
		}
		return out
	}
	a, b := collect(old), collect(new)

	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		av := a[k]
		bv, ok := b[k]
		if !ok {
			rep.Deltas = append(rep.Deltas, Delta{
				Metric: av.name(k), Kind: av.kind, Dir: av.dir, Old: av.v, State: "gone"})
			continue
		}
		if !av.ok && !bv.ok {
			continue // empty on both sides
		}
		d := Delta{Metric: av.name(k), Kind: av.kind, Dir: av.dir, Old: av.v, New: bv.v}
		switch {
		case av.v == bv.v:
			d.Rel = 0
		case av.v == 0:
			d.Rel = math.Inf(sign(bv.v))
		default:
			d.Rel = (bv.v - av.v) / math.Abs(av.v)
		}
		switch av.dir {
		case DirLower:
			d.Regression = d.Rel > threshold
		case DirHigher:
			d.Regression = d.Rel < -threshold
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	bKeys := make([]string, 0, len(b))
	for k := range b {
		if _, ok := a[k]; !ok {
			bKeys = append(bKeys, k)
		}
	}
	sort.Strings(bKeys)
	for _, k := range bKeys {
		bv := b[k]
		rep.Deltas = append(rep.Deltas, Delta{
			Metric: bv.name(k), Kind: bv.kind, Dir: bv.dir, New: bv.v, State: "new"})
	}
	return rep
}

// side is one metric's value on one side of a diff.
type side struct {
	kind string
	dir  Dir
	v    float64
	ok   bool // value meaningful (non-empty)
}

// name strips the kind prefix off a collected key.
func (s side) name(key string) string {
	return key[len(s.kind)+1:]
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}
