package obs

import (
	"fmt"
	"math"
	"strings"

	"wlcache/internal/stats"
)

// Summarize renders a manifest for humans: the event tally, the
// counters and gauges, a quantile table over every histogram, and a
// bar chart of the DirtyQueue occupancy distribution (the paper's
// waterline claim, readable at a glance).
func Summarize(m Manifest) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", m.Key())
	fmt.Fprintf(&b, "events recorded %d (ring dropped %d)\n\n", m.Events, m.EventsDropped)

	if len(m.Counters) > 0 {
		t := stats.NewTextTable("counters", "value", "dir")
		for _, c := range m.Counters {
			t.Add(c.Name, fmt.Sprintf("%d", c.Value), c.Dir)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}

	if len(m.Gauges) > 0 {
		t := stats.NewTable("gauges", "last", "min", "max", "mean")
		for _, g := range m.Gauges {
			if g.Samples == 0 {
				continue
			}
			t.Add(g.Name, g.Last, g.Min, g.Max, g.Mean)
		}
		if t.Rows() > 0 {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
	}

	if len(m.Histograms) > 0 {
		t := stats.NewTable("histograms", "count", "mean", "p50", "p99", "max")
		for _, h := range m.Histograms {
			if h.Count == 0 {
				continue
			}
			t.Add(h.Name, float64(h.Count), h.Mean(), snapQuantile(h, 0.50), snapQuantile(h, 0.99), h.Max)
		}
		if t.Rows() > 0 {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
	}

	for _, h := range m.Histograms {
		if h.Name != "dq.occupancy" || h.Count == 0 {
			continue
		}
		c := stats.NewBarChart("DirtyQueue occupancy distribution (samples per bucket)")
		for _, bk := range h.Buckets {
			c.Add(bucketLabel(bk.Upper), float64(bk.Count))
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// snapQuantile estimates a quantile from a manifest histogram the
// same way Histogram.Quantile does from the live buckets.
func snapQuantile(h HistSnap, q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	if h.Count == 1 {
		return h.Min
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for _, bk := range h.Buckets {
		seen += bk.Count
		if seen < rank {
			continue
		}
		switch {
		case bk.Upper == 1:
			return 0
		case bk.Upper == 0: // open tail
			return h.Max
		}
		mid := bk.Upper / math.Sqrt2
		if mid > h.Max {
			mid = h.Max
		}
		if mid < h.Min {
			mid = h.Min
		}
		return mid
	}
	return h.Max
}

// bucketLabel renders one bucket's value range.
func bucketLabel(upper float64) string {
	switch {
	case upper == 1:
		return "0"
	case upper == 0:
		return ">= 2^62"
	case upper == 2:
		return "1"
	}
	return fmt.Sprintf("%.0f-%.0f", upper/2, upper-1)
}
