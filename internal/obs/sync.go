package obs

import (
	"io"
	"sync"
)

// SyncRegistry is a mutex-guarded Registry for concurrent writers —
// the sweep service's HTTP handlers and runner workers, as opposed to
// the single-goroutine simulator a bare Registry serves. Operations go
// through value-passing methods instead of returned metric pointers so
// every touch happens under the lock; reads snapshot or render under
// the same lock. All methods are nil-safe, mirroring the rest of the
// package.
type SyncRegistry struct {
	mu  sync.Mutex
	reg *Registry
}

// NewSyncRegistry returns an empty concurrent registry.
func NewSyncRegistry() *SyncRegistry {
	return &SyncRegistry{reg: NewRegistry()}
}

// Add increments the named counter by delta, creating it with
// direction d on first use.
func (s *SyncRegistry) Add(name string, d Dir, delta uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.reg.Counter(name, d).Add(delta)
	s.mu.Unlock()
}

// Inc increments the named counter by one.
func (s *SyncRegistry) Inc(name string, d Dir) { s.Add(name, d, 1) }

// Set records one sample on the named gauge.
func (s *SyncRegistry) Set(name string, d Dir, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.reg.Gauge(name, d).Set(v)
	s.mu.Unlock()
}

// Observe records one value on the named histogram.
func (s *SyncRegistry) Observe(name string, d Dir, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.reg.Histogram(name, d).Observe(v)
	s.mu.Unlock()
}

// CounterValue reads the named counter (0 when absent).
func (s *SyncRegistry) CounterValue(name string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.reg.counters[name]
	if !ok {
		return 0
	}
	return c.Value()
}

// HistCount reads the named histogram's observation count (0 when
// absent).
func (s *SyncRegistry) HistCount(name string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.reg.hists[name]
	if !ok {
		return 0
	}
	return h.Count()
}

// HistQuantile estimates the q-quantile of the named histogram (NaN
// when absent or empty).
func (s *SyncRegistry) HistQuantile(name string, q float64) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.hists[name].Quantile(q)
}

// WritePrometheus renders the registry in the Prometheus text format
// under the lock, so a scrape racing writers sees a consistent
// snapshot of each metric.
func (s *SyncRegistry) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.WritePrometheus(w)
}
