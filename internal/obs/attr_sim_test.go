// Package obs_test holds the whole-simulator attribution tests: they
// drive internal/expt (which imports obs), so they must live outside
// package obs to avoid the import cycle.
package obs_test

import (
	"testing"

	"wlcache/internal/expt"
	"wlcache/internal/obs"
	"wlcache/internal/power"
	"wlcache/internal/sim"
)

// matrixEventCap keeps smoke-scale runs drop-free so the ledger's
// coverage is exact (48 B/event → ~48 MB transiently per cell).
const matrixEventCap = 1 << 20

// runLedger executes one design cell with recording on and returns
// its ledger plus the simulator result.
func runLedger(t *testing.T, kind expt.Kind, wl, trace string) (obs.Ledger, sim.Result) {
	t.Helper()
	rec := obs.NewRecorder(obs.RunMeta{Design: string(kind), Workload: wl, Trace: trace}, matrixEventCap)
	cfg := sim.DefaultConfig()
	cfg.Obs = rec
	res, err := expt.Run(kind, expt.Options{}, wl, 1, power.Source(trace), cfg)
	if err != nil {
		// Designs whose reserve cannot charge on the default capacitor
		// (eager-wb under a power trace) are infeasible by design — the
		// ISSUE's invariant is scoped to feasible cells.
		t.Skipf("design %s infeasible on %s: %v", kind, trace, err)
	}
	if d := rec.Trace().Dropped(); d != 0 {
		t.Fatalf("ring dropped %d events at smoke scale; enlarge matrixEventCap", d)
	}
	return rec.Attribute(res.ExecTime, cfg.CyclePS), res
}

// The tentpole invariant: for every feasible design the cycle ledger
// attributes every simulated picosecond exactly once, and the phase
// categories reconcile against the simulator's own phase counters.
func TestCycleLedgerInvariantAcrossDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("full design matrix; skipped with -short")
	}
	for _, kind := range expt.AllKinds() {
		if kind == expt.KindBroken {
			continue // negative control: aborts on purpose
		}
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			l, res := runLedger(t, kind, "sha", "tr1")

			if l.SumPS() != res.ExecTime {
				t.Fatalf("sum(categories)+unknown = %d ps, simulator total = %d ps (diff %d)",
					l.SumPS(), res.ExecTime, l.SumPS()-res.ExecTime)
			}
			if l.UnknownPS != 0 || l.Coverage() != 1 {
				t.Fatalf("undropped run: unknown=%d coverage=%g, want 0 and 1", l.UnknownPS, l.Coverage())
			}
			// Phase cross-checks: the ledger's windows mirror the
			// simulator's phase accounting exactly, not approximately.
			if l.CatPS[obs.CatOff] != res.OffTime {
				t.Errorf("off = %d ps, simulator OffTime = %d ps", l.CatPS[obs.CatOff], res.OffTime)
			}
			if l.CatPS[obs.CatCheckpoint] != res.CheckpointTime {
				t.Errorf("checkpoint = %d ps, simulator CheckpointTime = %d ps",
					l.CatPS[obs.CatCheckpoint], res.CheckpointTime)
			}
			if l.CatPS[obs.CatRestore] != res.RestoreTime {
				t.Errorf("restore = %d ps, simulator RestoreTime = %d ps",
					l.CatPS[obs.CatRestore], res.RestoreTime)
			}
			if l.CatPS[obs.CatStall] != res.Extra.StallTime {
				t.Errorf("maxline-stall = %d ps, design StallTime = %d ps",
					l.CatPS[obs.CatStall], res.Extra.StallTime)
			}
		})
	}
}

// The paper's overlap claim, as a profiler assertion: the WL design
// shows both maxline stalls and sync port waits plus hidden (async)
// port-wait time, while the all-synchronous baselines show none — the
// attribution split differs across write-back, write-through and
// wl-cache designs.
func TestAttributionSplitsDifferAcrossDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design simulation; skipped with -short")
	}
	wl, _ := runLedger(t, expt.KindWL, "sha", "tr1")
	wb, _ := runLedger(t, expt.KindNVCache, "sha", "tr1")
	wt, _ := runLedger(t, expt.KindVCacheWT, "sha", "tr1")

	if wl.CatPS[obs.CatStall] == 0 || wl.CatPS[obs.CatPortWait] == 0 {
		t.Fatalf("wl design: stall=%d portwait=%d ps, want both nonzero",
			wl.CatPS[obs.CatStall], wl.CatPS[obs.CatPortWait])
	}
	if wl.HiddenPortWaitPS == 0 {
		t.Fatal("wl design hid no port-wait time; the async-overlap claim should show here")
	}
	for _, base := range []struct {
		name string
		l    obs.Ledger
	}{{"nvcache-wb", wb}, {"vcache-wt", wt}} {
		// Fully synchronous designs serialize on the port, so nothing
		// ever finds it busy and nothing stalls at a queue bound.
		if base.l.CatPS[obs.CatStall] != 0 || base.l.CatPS[obs.CatPortWait] != 0 || base.l.HiddenPortWaitPS != 0 {
			t.Fatalf("%s: stall=%d portwait=%d hidden=%d ps, want all zero for a synchronous design",
				base.name, base.l.CatPS[obs.CatStall], base.l.CatPS[obs.CatPortWait], base.l.HiddenPortWaitPS)
		}
	}
	if wl.Hotspots[0].TotalPS() == 0 {
		t.Fatal("wl design produced no hotspot attribution")
	}
}
