package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// Cycle attribution (DESIGN.md §10): a ledger that charges every
// simulated picosecond of a run to exactly one category. The paper's
// overlap claim — asynchronous write-backs hide NVM latency behind
// execution — is only checkable against an accounting that never
// loses or double-counts time, so the ledger is built as an interval
// sweep over the event timeline with a strict priority order and the
// invariant
//
//	sum(categories) + unknown == total
//
// holding exactly (test-enforced per feasible design). Overlapping
// windows (a port wait inside a stall, a checkpoint inside an outage)
// resolve by priority: Off > Restore > Checkpoint > Adapt > Stall >
// PortWait, and whatever no window covers is Compute. Asynchronous
// port waits are *not* a category — the core kept executing — and are
// reported separately as hidden (overlapped) port-wait time.

// Category is one cycle-ledger bucket.
type Category uint8

// The attribution categories, in report order.
const (
	CatCompute Category = iota
	CatStall
	CatPortWait
	CatCheckpoint
	CatRestore
	CatOff
	CatAdapt
	numCategories
)

// String names the category (also the wlattr/v1 key).
func (c Category) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatStall:
		return "maxline-stall"
	case CatPortWait:
		return "port-wait"
	case CatCheckpoint:
		return "checkpoint"
	case CatRestore:
		return "restore"
	case CatOff:
		return "off"
	case CatAdapt:
		return "adapt"
	}
	return fmt.Sprintf("category(%d)", c)
}

// Categories returns all categories in report order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// catPriority orders overlapping windows: lower wins. Compute has no
// windows (it is the residual), so it never competes.
func catPriority(c Category) int {
	switch c {
	case CatOff:
		return 0
	case CatRestore:
		return 1
	case CatCheckpoint:
		return 2
	case CatAdapt:
		return 3
	case CatStall:
		return 4
	case CatPortWait:
		return 5
	}
	return 6
}

// Hotspot is the per-store-PC bucket: stall and synchronous port-wait
// time charged to one program site.
type Hotspot struct {
	PC         uint64 `json:"pc"`
	Site       string `json:"site"`
	StallPS    int64  `json:"stall_ps"`
	PortWaitPS int64  `json:"port_wait_ps"`
	Events     int    `json:"events"`
}

// TotalPS is the hotspot's combined attributed time.
func (h Hotspot) TotalPS() int64 { return h.StallPS + h.PortWaitPS }

// Ledger is the cycle attribution of one run.
type Ledger struct {
	Meta    RunMeta
	TotalPS int64 // the simulator's total (Result.ExecTime)
	CyclePS int64 // core cycle time, for ps → cycle conversion (0: report ps)

	// CatPS is the per-category attribution; UnknownPS is the prefix
	// of the timeline whose events the ring overwrote. The invariant
	// sum(CatPS) + UnknownPS == TotalPS always holds.
	CatPS     [numCategories]int64
	UnknownPS int64

	// HiddenPortWaitPS is asynchronous (overlapped) port-wait time: not
	// part of the ledger — execution continued — but the direct measure
	// of how much NVM latency the async write-back path hid.
	HiddenPortWaitPS int64

	Pushed   uint64
	Dropped  uint64
	Hotspots []Hotspot
}

// Coverage is the attributed fraction of the timeline: 1 when the ring
// kept every event, less when UnknownPS > 0.
func (l *Ledger) Coverage() float64 {
	if l.TotalPS <= 0 {
		return 1
	}
	return float64(l.TotalPS-l.UnknownPS) / float64(l.TotalPS)
}

// SumPS returns sum(CatPS) + UnknownPS; the invariant is
// l.SumPS() == l.TotalPS.
func (l *Ledger) SumPS() int64 {
	s := l.UnknownPS
	for _, v := range l.CatPS {
		s += v
	}
	return s
}

// Cycles converts attributed picoseconds to core cycles (identity when
// CyclePS is unset).
func (l *Ledger) Cycles(ps int64) int64 {
	if l.CyclePS <= 0 {
		return ps
	}
	return ps / l.CyclePS
}

// Attribute builds the cycle ledger for the recorder's trace. totalPS
// is the simulator total (Result.ExecTime), cyclePS the core cycle
// time. Nil-safe: a nil recorder yields a zero ledger.
func (r *Recorder) Attribute(totalPS, cyclePS int64) Ledger {
	if r == nil {
		return Ledger{TotalPS: totalPS, CyclePS: cyclePS, CatPS: [numCategories]int64{CatCompute: totalPS}}
	}
	return AttributeTrace(r.trace, r.Meta, totalPS, cyclePS)
}

// attrWindow is one candidate interval in the sweep.
type attrWindow struct {
	start, end int64
	cat        Category
	pc         uint64
}

// AttributeTrace attributes every picosecond of [0, totalPS) to one
// category by a priority interval sweep over the trace events. When
// the ring dropped events, the timeline before the first retained
// event is Unknown and only the tail is attributed; coverage reports
// the attributed fraction. Never panics on truncated or empty traces.
func AttributeTrace(tr *Trace, meta RunMeta, totalPS, cyclePS int64) Ledger {
	l := Ledger{Meta: meta, TotalPS: totalPS, CyclePS: cyclePS,
		Pushed: tr.Pushed(), Dropped: tr.Dropped()}
	evs := tr.Events()

	// The unattributable prefix: with drops, events before the first
	// retained one are gone, so nothing before it can be explained.
	lo := int64(0)
	if l.Dropped > 0 && len(evs) > 0 {
		lo = evs[0].TS
		if lo < 0 {
			lo = 0
		}
		if lo > totalPS {
			lo = totalPS
		}
	}
	l.UnknownPS = lo

	// Collect category windows, clamped to [lo, totalPS).
	windows := make([]attrWindow, 0, len(evs))
	addWin := func(w attrWindow) {
		if w.start < lo {
			w.start = lo
		}
		if totalPS > 0 && w.end > totalPS {
			w.end = totalPS
		}
		if w.end > w.start {
			windows = append(windows, w)
		}
	}
	hot := map[uint64]*Hotspot{}
	touch := func(pc uint64) {
		h := hot[pc]
		if h == nil {
			h = &Hotspot{PC: pc}
			hot[pc] = h
		}
		h.Events++
	}
	for _, e := range evs {
		if totalPS > 0 && e.TS >= totalPS {
			// The shutdown flush runs after ExecTime closed; its events
			// are outside the ledger's domain.
			continue
		}
		switch e.Kind {
		case KStall:
			addWin(attrWindow{e.TS, e.TS + e.Dur, CatStall, uint64(e.B)})
			touch(uint64(e.B))
		case KPortWait:
			if int64(e.F)&portFlagAsync != 0 {
				l.HiddenPortWaitPS += e.Dur
				continue
			}
			addWin(attrWindow{e.TS, e.TS + e.Dur, CatPortWait, uint64(e.B)})
			touch(uint64(e.B))
		case KCkpt:
			addWin(attrWindow{e.TS, e.TS + e.Dur, CatCheckpoint, 0})
		case KRestore:
			addWin(attrWindow{e.TS, e.TS + e.Dur, CatRestore, 0})
		case KOff:
			addWin(attrWindow{e.TS, e.TS + e.Dur, CatOff, 0})
		case KAdapt:
			// Adaptation is instantaneous in this model (Dur == 0), so
			// CatAdapt is structurally zero today; the category exists
			// so a future timed reconfiguration lands in the ledger.
			addWin(attrWindow{e.TS, e.TS + e.Dur, CatAdapt, 0})
		}
	}

	l.sweep(windows, lo, totalPS, hot)

	l.Hotspots = make([]Hotspot, 0, len(hot))
	for _, h := range hot {
		h.Site = ResolvePC(h.PC)
		l.Hotspots = append(l.Hotspots, *h)
	}
	sort.Slice(l.Hotspots, func(i, j int) bool {
		a, b := l.Hotspots[i], l.Hotspots[j]
		if a.TotalPS() != b.TotalPS() {
			return a.TotalPS() > b.TotalPS()
		}
		return a.PC < b.PC
	})
	return l
}

// sweep runs the boundary sweep: for every elementary interval of
// [lo, totalPS) the highest-priority active window wins; gaps are
// Compute. Hotspot time follows the winning stall/port-wait window.
func (l *Ledger) sweep(windows []attrWindow, lo, totalPS int64, hot map[uint64]*Hotspot) {
	if totalPS <= lo {
		return
	}
	type boundary struct {
		pos  int64
		open bool
		win  int
	}
	bs := make([]boundary, 0, 2*len(windows))
	for i, w := range windows {
		bs = append(bs, boundary{w.start, true, i}, boundary{w.end, false, i})
	}
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].pos != bs[j].pos {
			return bs[i].pos < bs[j].pos
		}
		// Closes before opens at the same position: zero-length overlap
		// is no overlap.
		return !bs[i].open && bs[j].open
	})

	// active holds, per category, the indices of currently-open
	// windows; concurrency within a category is tiny (a handful of
	// nested waits at most), so linear removal is fine.
	var active [numCategories][]int
	charge := func(from, to int64) {
		if to <= from {
			return
		}
		dur := to - from
		for _, c := range []Category{CatOff, CatRestore, CatCheckpoint, CatAdapt, CatStall, CatPortWait} {
			ws := active[c]
			if len(ws) == 0 {
				continue
			}
			l.CatPS[c] += dur
			if c == CatStall || c == CatPortWait {
				// Charge the most recently opened window's site.
				w := windows[ws[len(ws)-1]]
				if h := hot[w.pc]; h != nil {
					if c == CatStall {
						h.StallPS += dur
					} else {
						h.PortWaitPS += dur
					}
				}
			}
			return
		}
		l.CatPS[CatCompute] += dur
	}

	cursor := lo
	for i := 0; i < len(bs); {
		pos := bs[i].pos
		charge(cursor, min(pos, totalPS))
		if pos > cursor {
			cursor = min(pos, totalPS)
		}
		for ; i < len(bs) && bs[i].pos == pos; i++ {
			b := bs[i]
			c := windows[b.win].cat
			if b.open {
				active[c] = append(active[c], b.win)
			} else {
				for k, wi := range active[c] {
					if wi == b.win {
						active[c] = append(active[c][:k], active[c][k+1:]...)
						break
					}
				}
			}
		}
	}
	charge(cursor, totalPS)
}

// ResolvePC renders a program counter captured by runtime.Callers as
// "function:line"; unresolvable values (synthetic traces, stripped
// frames) render as "pc=0x…" so reports stay stable.
func ResolvePC(pc uint64) string {
	if pc == 0 {
		return "unknown"
	}
	if fn := runtime.FuncForPC(uintptr(pc)); fn != nil {
		_, line := fn.FileLine(uintptr(pc))
		name := fn.Name()
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		return fmt.Sprintf("%s:%d", name, line)
	}
	return fmt.Sprintf("pc=%#x", pc)
}

// --- wlattr/v1 machine-readable records ---

// AttrFormat is the wlattr record format marker.
const AttrFormat = "wlattr/v1"

// AttrRecord is the JSON form of one ledger (one line of a wlattr/v1
// JSONL stream).
type AttrRecord struct {
	Format   string `json:"format"`
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Trace    string `json:"trace"`

	TotalPS int64 `json:"total_ps"`
	CyclePS int64 `json:"cycle_ps,omitempty"`

	// Categories maps category name → attributed ps, every category
	// present (zeros included) so differs see a stable schema.
	Categories       map[string]int64 `json:"categories"`
	UnknownPS        int64            `json:"unknown_ps"`
	HiddenPortWaitPS int64            `json:"hidden_port_wait_ps"`
	Coverage         float64          `json:"coverage"`

	EventsPushed  uint64    `json:"events_pushed"`
	EventsDropped uint64    `json:"events_dropped"`
	Hotspots      []Hotspot `json:"hotspots,omitempty"`
}

// Record converts the ledger to its wlattr/v1 wire form. top bounds
// the hotspot list (<= 0: all).
func (l *Ledger) Record(top int) AttrRecord {
	cats := make(map[string]int64, numCategories)
	for _, c := range Categories() {
		cats[c.String()] = l.CatPS[c]
	}
	hs := l.Hotspots
	if top > 0 && len(hs) > top {
		hs = hs[:top]
	}
	return AttrRecord{
		Format: AttrFormat,
		Design: l.Meta.Design, Workload: l.Meta.Workload, Trace: l.Meta.Trace,
		TotalPS: l.TotalPS, CyclePS: l.CyclePS,
		Categories: cats, UnknownPS: l.UnknownPS,
		HiddenPortWaitPS: l.HiddenPortWaitPS, Coverage: l.Coverage(),
		EventsPushed: l.Pushed, EventsDropped: l.Dropped,
		Hotspots: hs,
	}
}

// WriteAttr appends the ledger as one wlattr/v1 JSONL line.
func WriteAttr(w io.Writer, l *Ledger, top int) error {
	return json.NewEncoder(w).Encode(l.Record(top))
}

// ReadAttrs parses a wlattr/v1 JSONL stream.
func ReadAttrs(r io.Reader) ([]AttrRecord, error) {
	var out []AttrRecord
	dec := json.NewDecoder(r)
	for {
		var rec AttrRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		if rec.Format != AttrFormat {
			return out, fmt.Errorf("obs: not a %s record (format %q)", AttrFormat, rec.Format)
		}
		out = append(out, rec)
	}
}

// --- folded-stack (flamegraph) rendering ---

// Folded renders the ledger in folded-stack format — one
// "frame;frame weight" line per stack, weights in cycles (ps when
// CyclePS is unset) — loadable by standard flamegraph tooling.
// Stall and port-wait time split per program site under their
// category frame; everything else is a single-frame stack. Lines are
// sorted for deterministic output.
func (l *Ledger) Folded() string {
	var lines []string
	emit := func(stack string, ps int64) {
		if w := l.Cycles(ps); w > 0 {
			lines = append(lines, fmt.Sprintf("%s %d", stack, w))
		}
	}
	for _, c := range Categories() {
		switch c {
		case CatStall, CatPortWait:
			rem := l.CatPS[c]
			for _, h := range l.Hotspots {
				ps := h.StallPS
				if c == CatPortWait {
					ps = h.PortWaitPS
				}
				if ps > 0 {
					emit(c.String()+";"+h.Site, ps)
					rem -= ps
				}
			}
			emit(c.String(), rem)
		default:
			emit(c.String(), l.CatPS[c])
		}
	}
	emit("unknown", l.UnknownPS)
	sort.Strings(lines)
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}
