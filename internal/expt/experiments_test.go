package expt

import (
	"context"
	"errors"
	"strings"
	"testing"

	"wlcache/internal/power"
	"wlcache/internal/runner"
	"wlcache/internal/sim"
	"wlcache/internal/stats"
)

// quickCtx runs experiments on a representative benchmark subset so
// shape tests stay fast.
func quickCtx() Context {
	return Context{Workloads: []string{
		"adpcmencode", "jpegencode", "sha", "susanedges", "qsort", "dijkstra", "rijndael_e",
	}}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{"fig4", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig9",
		"fig10a", "fig10b", "fig11", "fig12", "fig13a", "fig13b",
		"table1", "table2", "hwcost", "adaptstats", "sec33", "nvsramvariants", "icache", "related"}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("ByID(fig4) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
	if len(IDs()) != len(Experiments()) {
		t.Fatal("IDs length mismatch")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind accepted")
		}
	}()
	NewDesign(Kind("bogus"), Options{})
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(KindWL, Options{}, "bogus", 1, power.None, sim.DefaultConfig()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestHeadlineClaims asserts the paper's core results hold in shape:
//
//  1. without power failures NVSRAM(ideal) is the fastest design and
//     WL-Cache is within ~20% of it;
//  2. under both RF traces WL-Cache (adaptive) beats NVSRAM(ideal);
//  3. NVCache-WB is the slowest cached design under traces;
//  4. every design produces the identical checksum everywhere.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design sweep")
	}
	ctx := quickCtx().normalize()
	kinds := []Kind{KindNVCache, KindVCacheWT, KindReplay, KindNVSRAM, KindWL}
	for _, src := range []power.Source{power.None, power.Trace1, power.Trace2} {
		var cells []cell
		for _, wl := range ctx.Workloads {
			for _, k := range kinds {
				cells = append(cells, cell{kind: k, wl: wl, src: src})
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			t.Fatal(err)
		}
		per := len(kinds)
		gm := map[Kind]float64{}
		for ki, k := range kinds {
			var rs []float64
			for i := range ctx.Workloads {
				base := float64(results[per*i+3].ExecTime) // NVSRAM
				rs = append(rs, base/float64(results[per*i+ki].ExecTime))
			}
			gm[k] = stats.Gmean(rs)
		}
		// Checksums equal across designs per workload.
		for i, wl := range ctx.Workloads {
			first := results[per*i].Checksum
			for ki := range kinds {
				if results[per*i+ki].Checksum != first {
					t.Fatalf("src %s, workload %s: checksum mismatch between designs", src, wl)
				}
			}
		}
		switch src {
		case power.None:
			// WL tracks NVSRAM closely without failures (its eager
			// cleaning can even win on eviction-heavy workloads, so a
			// small advantage on a subset is acceptable).
			if gm[KindWL] > 1.15 || gm[KindWL] < 0.80 {
				t.Errorf("no-failure: WL (%.3f) should be close to NVSRAM", gm[KindWL])
			}
			if gm[KindNVCache] >= gm[KindVCacheWT] {
				t.Errorf("no-failure: NVCache (%.3f) should trail VCache-WT (%.3f)", gm[KindNVCache], gm[KindVCacheWT])
			}
		default:
			if gm[KindWL] <= 1.0 {
				t.Errorf("%s: WL (%.3f) must beat NVSRAM (paper: 1.35x/1.44x)", src, gm[KindWL])
			}
			for _, k := range []Kind{KindNVCache, KindVCacheWT, KindReplay} {
				if gm[k] >= gm[KindWL] {
					t.Errorf("%s: %s (%.3f) should trail WL (%.3f)", src, k, gm[k], gm[KindWL])
				}
			}
			if gm[KindNVCache] >= gm[KindVCacheWT] {
				t.Errorf("%s: NVCache (%.3f) should be the slowest cached design (WT %.3f)", src, gm[KindNVCache], gm[KindVCacheWT])
			}
		}
	}
}

// TestWriteTrafficClaim: WL-Cache's NVM write traffic exceeds
// NVSRAM's (it cleans lines early and sometimes repeatedly), which is
// the overhead Figure 7 quantifies.
func TestWriteTrafficClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	ctx := quickCtx().normalize()
	for _, wl := range ctx.Workloads {
		base, err := Run(KindNVSRAM, Options{}, wl, 1, power.Trace1, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(KindWL, Options{}, wl, 1, power.Trace1, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.NVMTraffic.WriteWords < base.NVMTraffic.WriteWords {
			t.Errorf("%s: WL wrote less than NVSRAM (%d < %d)", wl,
				res.NVMTraffic.WriteWords, base.NVMTraffic.WriteWords)
		}
	}
}

// TestMaxlineSweepShape: maxline 1 is the worst WL configuration (it
// degenerates toward write-through); the default 6 beats it.
func TestMaxlineSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	for _, wl := range []string{"sha", "qsort"} {
		t1, err := Run(KindWLFixed, Options{Maxline: 1}, wl, 1, power.Trace1, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		t6, err := Run(KindWLFixed, Options{Maxline: 6}, wl, 1, power.Trace1, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if t6.ExecTime >= t1.ExecTime {
			t.Errorf("%s: maxline 6 (%d) not faster than maxline 1 (%d)", wl, t6.ExecTime, t1.ExecTime)
		}
	}
}

// TestCapacitorSweepShape: large capacitors slow everything down
// (charging time dominates), reproducing Figure 10(b)'s right side.
func TestCapacitorSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	run := func(cf float64) int64 {
		cfg := sim.DefaultConfig()
		cfg.CapacitorF = cf
		res, err := Run(KindWL, Options{}, "sha", 1, power.Trace1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	at1u := run(1e-6)
	at100u := run(100e-6)
	if at100u <= at1u {
		t.Errorf("100uF (%d) should be slower than 1uF (%d)", at100u, at1u)
	}
}

// TestExperimentsRenderOnSubset executes every registered experiment
// on a tiny subset and sanity-checks the rendered output.
func TestExperimentsRenderOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	ctx := Context{Workloads: []string{"sha", "qsort"}}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

// TestRunCellsFirstErrorByIndex pins the error-aggregation contract:
// when several cells fail, runCells reports the lowest-index failure —
// regardless of worker scheduling — and still returns every completed
// result. Cell 1 (unknown workload) fails instantly; cell 5 (also
// unknown) fails instantly too; a racy aggregator could report either,
// and before the runner rewrite, whichever worker wrote errs last won.
func TestRunCellsFirstErrorByIndex(t *testing.T) {
	ctx := Context{Parallelism: 8}
	for trial := 0; trial < 10; trial++ {
		cells := []cell{
			{kind: KindWL, wl: "adpcmencode", src: power.None},
			{kind: KindWL, wl: "bogus-one", src: power.None},
			{kind: KindNVSRAM, wl: "adpcmencode", src: power.None},
			{kind: KindWL, wl: "basicmath", src: power.None},
			{kind: KindVCacheWT, wl: "adpcmencode", src: power.None},
			{kind: KindWL, wl: "bogus-two", src: power.None},
		}
		results, err := runCells(ctx, cells)
		if err == nil {
			t.Fatal("failing sweep returned nil error")
		}
		var ce *runner.CellError
		if !errors.As(err, &ce) {
			t.Fatalf("error not cell-attributed: %v", err)
		}
		if ce.Index != 1 {
			t.Fatalf("trial %d: error picked cell %d (%s), want deterministic first-by-index 1", trial, ce.Index, ce.ID)
		}
		if !strings.Contains(err.Error(), "cell wl/bogus-one/none") {
			t.Fatalf("error does not name the offending cell: %v", err)
		}
		// Completed cells ride along with the error.
		if len(results) != len(cells) || results[0].Instructions == 0 {
			t.Fatalf("trial %d: completed results dropped on error", trial)
		}
	}
}

// TestRunCellsPanicIsolated: a poisoned cell (unknown design kind
// panics inside NewDesign) must surface as a typed, cell-attributed
// error instead of crashing the whole sweep process.
func TestRunCellsPanicIsolated(t *testing.T) {
	cells := []cell{
		{kind: KindWL, wl: "adpcmencode", src: power.None},
		{kind: Kind("no-such-design"), wl: "adpcmencode", src: power.None},
	}
	results, err := runCells(Context{Parallelism: 2}, cells)
	if err == nil {
		t.Fatal("panicking cell produced no error")
	}
	if !errors.Is(err, runner.ErrCellPanic) {
		t.Fatalf("panic not typed: %v", err)
	}
	var ce *runner.CellError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("panic not attributed: %v", err)
	}
	if results[0].Instructions == 0 {
		t.Fatal("healthy cell lost to the neighbour's panic")
	}
}

// TestRunCellsCancellation: a cancelled context degrades the sweep to
// deterministic skips instead of hanging or aborting.
func TestRunCellsCancellation(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts: everything skips
	var cells []cell
	for _, wl := range []string{"adpcmencode", "sha", "basicmath"} {
		cells = append(cells, cell{kind: KindWL, wl: wl, src: power.None})
	}
	var m runner.Metrics
	_, err := runCells(Context{Ctx: cctx, Metrics: &m}, cells)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, runner.ErrSkipped) || !errors.Is(err, context.Canceled) {
		t.Fatalf("skip not typed: %v", err)
	}
	if m.Skipped != len(cells) || m.Computed != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

// TestCellFingerprintDiscriminates: the content address input must
// change whenever any result-determining parameter changes, and must
// be empty (uncacheable) for configs carrying live hooks.
func TestCellFingerprintDiscriminates(t *testing.T) {
	base := func() string {
		return cellFingerprint(KindWL, Options{}, "sha", 1, power.Trace1, sim.DefaultConfig())
	}
	if base() != base() {
		t.Fatal("fingerprint not deterministic")
	}
	altCfg := sim.DefaultConfig()
	altCfg.CapacitorF *= 2
	altIC := sim.DefaultConfig()
	altIC.ICache = sim.SRAMICache()
	variants := []string{
		cellFingerprint(KindNVSRAM, Options{}, "sha", 1, power.Trace1, sim.DefaultConfig()),
		cellFingerprint(KindWL, Options{Maxline: 2}, "sha", 1, power.Trace1, sim.DefaultConfig()),
		cellFingerprint(KindWL, Options{}, "qsort", 1, power.Trace1, sim.DefaultConfig()),
		cellFingerprint(KindWL, Options{}, "sha", 2, power.Trace1, sim.DefaultConfig()),
		cellFingerprint(KindWL, Options{}, "sha", 1, power.Trace2, sim.DefaultConfig()),
		cellFingerprint(KindWL, Options{}, "sha", 1, power.Trace1, altCfg),
		cellFingerprint(KindWL, Options{}, "sha", 1, power.Trace1, altIC),
		cellFingerprint(KindWL, Options{SoftwareJIT: true}, "sha", 1, power.Trace1, sim.DefaultConfig()),
	}
	seen := map[string]bool{base(): true}
	for i, v := range variants {
		if v == "" {
			t.Fatalf("variant %d unexpectedly uncacheable", i)
		}
		if seen[v] {
			t.Fatalf("variant %d collides with another fingerprint", i)
		}
		seen[v] = true
	}
	hooked := sim.DefaultConfig()
	hooked.FaultPlan = nopFaultPlan{}
	if fp := cellFingerprint(KindWL, Options{}, "sha", 1, power.Trace1, hooked); fp != "" {
		t.Fatalf("hook-carrying config got a fingerprint %q; must be uncacheable", fp)
	}
}

type nopFaultPlan struct{}

func (nopFaultPlan) ShouldCrash(uint64, int64) bool { return false }
func (nopFaultPlan) CheckpointStart(int64, bool)    {}
func (nopFaultPlan) CheckpointEnd(int64)            {}

// TestSubsetNamesPreservesOrder ensures figure ordering is stable.
func TestSubsetNamesPreservesOrder(t *testing.T) {
	ctx := Context{Workloads: []string{"qsort", "sha", "adpcmdecode"}}.normalize()
	names := subsetNames(ctx)
	want := []string{"adpcmdecode", "sha", "qsort"} // registry order
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v, want %v", names, want)
		}
	}
}

// TestSoftwareJITCostsMore: QuickRecall-style software checkpointing
// (§2.1) must be slower than NVFF-based checkpointing under outages
// (larger fixed costs and reserve) and identical without them.
func TestSoftwareJITCostsMore(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	hw, err := Run(KindWL, Options{}, "sha", 1, power.Trace1, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run(KindWL, Options{SoftwareJIT: true}, "sha", 1, power.Trace1, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sw.ExecTime <= hw.ExecTime {
		t.Fatalf("software JIT (%d) should be slower than NVFF (%d)", sw.ExecTime, hw.ExecTime)
	}
	if sw.Checksum != hw.Checksum {
		t.Fatal("checkpoint mechanism changed the computed result")
	}
}

// TestScaleGrowsSimulatedWork: the Context scale parameter reaches the
// kernels.
func TestScaleGrowsSimulatedWork(t *testing.T) {
	r1, err := Run(KindWL, Options{}, "adpcmencode", 1, power.None, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(KindWL, Options{}, "adpcmencode", 2, power.None, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Instructions < r1.Instructions*3/2 {
		t.Fatal("scale had no effect")
	}
}

// TestNVSRAMVariantShape checks the §2.3.3 ordering: the full variant
// cannot beat the ideal one under power failures (it checkpoints the
// whole cache every outage), and the practical variant trails both
// (slow NV-way accesses, eager write-back traffic).
func TestNVSRAMVariantShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	for _, wl := range []string{"sha", "susanedges"} {
		ideal, err := Run(KindNVSRAM, Options{}, wl, 1, power.Trace1, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		full, err := Run(KindNVSRAMFull, Options{}, wl, 1, power.Trace1, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		pract, err := Run(KindNVSRAMPractical, Options{}, wl, 1, power.Trace1, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if full.ExecTime < ideal.ExecTime {
			t.Errorf("%s: NVSRAM(full) (%d) beat NVSRAM(ideal) (%d)", wl, full.ExecTime, ideal.ExecTime)
		}
		// On load-dominated kernels the practical variant's smaller
		// reserve can eke out a small win, so allow a 5% band; the
		// gmean ordering (practical well below ideal) is asserted by
		// the nvsramvariants experiment output.
		if float64(pract.ExecTime) < 0.95*float64(ideal.ExecTime) {
			t.Errorf("%s: NVSRAM(practical) (%d) beat NVSRAM(ideal) (%d) by >5%%", wl, pract.ExecTime, ideal.ExecTime)
		}
		if full.Checksum != ideal.Checksum || pract.Checksum != ideal.Checksum {
			t.Errorf("%s: variant checksums diverged", wl)
		}
	}
}

// TestWTBufferShape checks the §3.3 claims: the buffer helps without
// failures (async stores) but WL-Cache wins under them.
func TestWTBufferShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	wl := "sha"
	wtNone, err := Run(KindVCacheWT, Options{}, wl, 1, power.None, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bufNone, err := Run(KindWTBuffer, Options{}, wl, 1, power.None, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if bufNone.ExecTime >= wtNone.ExecTime {
		t.Errorf("write buffer did not help without failures (%d vs %d)", bufNone.ExecTime, wtNone.ExecTime)
	}
	bufTr, err := Run(KindWTBuffer, Options{}, wl, 1, power.Trace1, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wlTr, err := Run(KindWL, Options{}, wl, 1, power.Trace1, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if wlTr.ExecTime >= bufTr.ExecTime {
		t.Errorf("WL-Cache (%d) should beat WT+buffer (%d) under failures (§3.3)", wlTr.ExecTime, bufTr.ExecTime)
	}
}

// TestICacheFor pins the per-design instruction-path mapping.
func TestICacheFor(t *testing.T) {
	if ICacheFor(KindNoCache).FetchLatency != sim.NoICache().FetchLatency {
		t.Fatal("NoCache must fetch from NVM")
	}
	if ICacheFor(KindNVCache).FetchLatency != sim.NVICache().FetchLatency {
		t.Fatal("NVCache must fetch from NV cells")
	}
	if !ICacheFor(KindNVSRAM).WarmAcrossOutage {
		t.Fatal("NVSRAM I-cache must restore warm")
	}
	if ICacheFor(KindWL).WarmAcrossOutage {
		t.Fatal("WL-Cache's volatile I-cache must boot cold")
	}
}
