package expt

import (
	"fmt"
	"strings"

	"wlcache/internal/power"
	"wlcache/internal/stats"
)

// Section 3.3 discussion ("a WTCache with a large write-back buffer
// can also behave like WL-Cache ... the alternative design would be
// inferior") and the NVSRAM-variant rows of Table 1, measured.

func init() {
	registerExperiment(Experiment{ID: "sec33",
		Title: "Section 3.3: WL-Cache vs the write-through + write-buffer alternative",
		Run:   sec33})
	registerExperiment(Experiment{ID: "nvsramvariants",
		Title: "Section 2.3.3: NVSRAM full vs ideal vs practical, measured",
		Run:   nvsramVariants})
}

func sec33(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	kinds := []Kind{KindVCacheWT, KindWTBuffer, KindWL}
	cols := []string{"VCache-WT", "WT+buffer(8)", "WL-Cache"}
	var b strings.Builder
	b.WriteString("Section 3.3: the write-buffer alternative, speedup vs NVSRAM(ideal)\n")
	b.WriteString("(the paper argues WT+buffer loses on CAM cost, reserve size and load\n")
	b.WriteString("critical path; WL-Cache's DirtyQueue is off the load path and coalesces\n")
	b.WriteString("whole lines)\n\n")
	t := stats.NewTable("", cols...)
	for _, src := range []power.Source{power.None, power.Trace1, power.Trace2} {
		var cells []cell
		for _, wl := range names {
			cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: src})
			for _, k := range kinds {
				cells = append(cells, cell{kind: k, wl: wl, src: src})
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		per := 1 + len(kinds)
		ratios := make([][]float64, len(kinds))
		for i := range names {
			base := float64(results[per*i].ExecTime)
			for ki := range kinds {
				ratios[ki] = append(ratios[ki], base/float64(results[per*i+1+ki].ExecTime))
			}
		}
		row := make([]float64, len(kinds))
		for ki := range kinds {
			row[ki] = stats.Gmean(ratios[ki])
		}
		label := "no failure"
		if src != power.None {
			label = "trace " + string(src)
		}
		t.Add(label, row...)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

func nvsramVariants(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	kinds := []Kind{KindNVSRAMFull, KindNVSRAMPractical, KindWL}
	cols := []string{"NVSRAM(full)", "NVSRAM(pract)", "WL-Cache"}
	t := stats.NewTable("NVSRAM variants, gmean speedup vs NVSRAM(ideal)", cols...)
	for _, src := range []power.Source{power.None, power.Trace1, power.Trace2} {
		var cells []cell
		for _, wl := range names {
			cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: src})
			for _, k := range kinds {
				cells = append(cells, cell{kind: k, wl: wl, src: src})
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		per := 1 + len(kinds)
		ratios := make([][]float64, len(kinds))
		for i := range names {
			base := float64(results[per*i].ExecTime)
			for ki := range kinds {
				ratios[ki] = append(ratios[ki], base/float64(results[per*i+1+ki].ExecTime))
			}
		}
		row := make([]float64, len(kinds))
		for ki := range kinds {
			row[ki] = stats.Gmean(ratios[ki])
		}
		label := "no failure"
		if src != power.None {
			label = fmt.Sprintf("trace %s", src)
		}
		t.Add(label, row...)
	}
	out := t.String()
	out += "\n(Table 1 expects: full <= ideal under failures — it checkpoints the whole\n"
	out += "cache every outage; practical in the middle — NV-way hits are slow and the\n"
	out += "eager NV write-backs add traffic, but its reserve is only medium.)\n"
	return out, nil
}
