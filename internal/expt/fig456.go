package expt

import (
	"fmt"

	"wlcache/internal/power"
	"wlcache/internal/stats"
)

// Figures 4, 5 and 6: per-benchmark speedup of NVCache-WB, VCache-WT,
// ReplayCache and WL-Cache normalized to NVSRAM(ideal), without power
// failures and under Power Traces 1 and 2.

func init() {
	registerExperiment(Experiment{
		ID:    "fig4",
		Title: "Figure 4: normalized speedup vs NVSRAM(ideal), no power failure",
		Run:   func(ctx Context) (string, error) { return figSpeedups(ctx, power.None, "Figure 4 (no power failure)") },
	})
	registerExperiment(Experiment{
		ID:    "fig5",
		Title: "Figure 5: normalized speedup vs NVSRAM(ideal), Power Trace 1",
		Run:   func(ctx Context) (string, error) { return figSpeedups(ctx, power.Trace1, "Figure 5 (Power Trace 1)") },
	})
	registerExperiment(Experiment{
		ID:    "fig6",
		Title: "Figure 6: normalized speedup vs NVSRAM(ideal), Power Trace 2",
		Run:   func(ctx Context) (string, error) { return figSpeedups(ctx, power.Trace2, "Figure 6 (Power Trace 2)") },
	})
}

// figDesigns are the plotted designs in the figures' legend order.
var figDesigns = []struct {
	col  string
	kind Kind
}{
	{"NVCache-WB", KindNVCache},
	{"VCache-WT", KindVCacheWT},
	{"ReplayCache", KindReplay},
	{"WL-Cache", KindWL},
}

func figSpeedups(ctx Context, src power.Source, title string) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	var cells []cell
	for _, wl := range names {
		cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: src})
		for _, d := range figDesigns {
			cells = append(cells, cell{kind: d.kind, wl: wl, src: src})
		}
	}
	results, err := runCells(ctx, cells)
	if err != nil {
		return "", err
	}
	perRow := 1 + len(figDesigns)
	cols := make([]string, len(figDesigns))
	for i, d := range figDesigns {
		cols[i] = d.col
	}
	idx := 0
	t := speedupTable(title+", speedup over NVSRAM(ideal)", names, cols,
		func(wl string) (float64, []float64) {
			row := results[idx*perRow : (idx+1)*perRow]
			idx++
			base := float64(row[0].ExecTime)
			per := make([]float64, len(figDesigns))
			for i := range figDesigns {
				per[i] = float64(row[1+i].ExecTime)
			}
			return base, per
		})
	out := t.String()
	chart := stats.NewBarChart("\ngmean(Total) speedup over NVSRAM(ideal):")
	chart.RefValue = 1.0
	for _, d := range figDesigns {
		chart.Add(d.col, t.GmeanOver(d.col, names))
	}
	chart.Add("NVSRAM(ideal)", 1.0)
	out += chart.String()
	if src != power.None {
		var totalOut uint64
		for _, r := range results {
			totalOut += r.Outages
		}
		out += fmt.Sprintf("\n(avg outages per run: %.1f)\n", float64(totalOut)/float64(len(results)))
	}
	return out, nil
}
