package expt

import (
	"wlcache/internal/cache"
	"wlcache/internal/core"
	"wlcache/internal/power"
)

// Figures 11 and 12: adaptive threshold management vs the best static
// maxline per application (§6.6), for FIFO and LRU cache replacement,
// under Power Traces 1 and 2, normalized to NVSRAM(ideal).

func init() {
	registerExperiment(Experiment{ID: "fig11",
		Title: "Figure 11: adaptive vs best-static WL-Cache, Power Trace 1",
		Run:   func(ctx Context) (string, error) { return figAdaptive(ctx, power.Trace1, "Figure 11 (Power Trace 1)") }})
	registerExperiment(Experiment{ID: "fig12",
		Title: "Figure 12: adaptive vs best-static WL-Cache, Power Trace 2",
		Run:   func(ctx Context) (string, error) { return figAdaptive(ctx, power.Trace2, "Figure 12 (Power Trace 2)") }})
}

func figAdaptive(ctx Context, src power.Source, title string) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	pols := []cache.ReplacementPolicy{cache.LRU, cache.FIFO}

	// For each benchmark and cache policy: NVSRAM baseline, the static
	// runs across the maxline grid (their per-app best is "Best"), and
	// the adaptive run ("Adap").
	var cells []cell
	for _, wl := range names {
		cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: src})
		for _, pol := range pols {
			for _, ml := range fig9Maxlines {
				cells = append(cells, cell{kind: KindWLFixed, opts: Options{CachePolicy: pol, Maxline: ml}, wl: wl, src: src})
			}
			cells = append(cells, cell{
				kind: KindWL,
				opts: Options{CachePolicy: pol}.WithAdaptive(core.AdaptStatic),
				wl:   wl, src: src,
			})
		}
	}
	results, err := runCells(ctx, cells)
	if err != nil {
		return "", err
	}
	perPol := len(fig9Maxlines) + 1
	per := 1 + len(pols)*perPol
	cols := []string{"LRU(Best)", "LRU(Adap)", "FIFO(Best)", "FIFO(Adap)"}
	idx := 0
	t := speedupTable(title+": WL-Cache adaptive vs best static, speedup over NVSRAM(ideal)", names, cols,
		func(wl string) (float64, []float64) {
			row := results[idx*per : (idx+1)*per]
			idx++
			base := float64(row[0].ExecTime)
			out := make([]float64, 0, 4)
			for pi := range pols {
				start := 1 + pi*perPol
				best := row[start].ExecTime
				for j := 1; j < len(fig9Maxlines); j++ {
					if tm := row[start+j].ExecTime; tm < best {
						best = tm
					}
				}
				adap := row[start+len(fig9Maxlines)].ExecTime
				out = append(out, float64(best), float64(adap))
			}
			return base, out
		})
	return t.String(), nil
}
