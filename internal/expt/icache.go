package expt

import (
	"strings"

	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/stats"
)

// Experiment "icache": Table 2 lists L1 instruction and data caches;
// the default simulator folds instruction fetch into the pipeline
// cost (accurate whenever the I-cache hits at SRAM speed). This
// experiment turns the explicit I-cache model on, which charges each
// design its real fetch technology — a cacheless NVP fetches every
// instruction from NVM, NVCache-WB fetches from slow NV cells, the
// NVSRAM variants restore warm, the volatile designs refill after
// every outage — and shows how the design gaps widen.

func init() {
	registerExperiment(Experiment{ID: "icache",
		Title: "Instruction-cache model: design gaps with I-fetch charged (extension)",
		Run:   icacheExperiment})
}

// ICacheFor returns the instruction-path model matching a design kind.
func ICacheFor(kind Kind) *sim.ICacheModel {
	switch kind {
	case KindNoCache:
		return sim.NoICache()
	case KindNVCache:
		return sim.NVICache()
	case KindNVSRAM, KindNVSRAMFull, KindNVSRAMPractical:
		return sim.NVSRAMICache()
	default:
		return sim.SRAMICache()
	}
}

func icacheExperiment(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	kinds := []Kind{KindNoCache, KindNVCache, KindVCacheWT, KindReplay, KindWL}
	cols := []string{"NoCache", "NVCache-WB", "VCache-WT", "ReplayCache", "WL-Cache"}
	var b strings.Builder
	b.WriteString("Instruction-fetch modeling (extension; values are gmean speedup vs\n")
	b.WriteString("NVSRAM(ideal) under the same I-cache assumption):\n\n")
	t := stats.NewTable("", cols...)
	for _, modeled := range []bool{false, true} {
		var cells []cell
		for _, wl := range names {
			mk := func(k Kind) cell {
				c := cell{kind: k, wl: wl, src: power.Trace1}
				if modeled {
					kk := k
					c.simFn = func(s *sim.Config) { s.ICache = ICacheFor(kk) }
				}
				return c
			}
			cells = append(cells, mk(KindNVSRAM))
			for _, k := range kinds {
				cells = append(cells, mk(k))
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		per := 1 + len(kinds)
		ratios := make([][]float64, len(kinds))
		for i := range names {
			base := float64(results[per*i].ExecTime)
			for ki := range kinds {
				ratios[ki] = append(ratios[ki], base/float64(results[per*i+1+ki].ExecTime))
			}
		}
		row := make([]float64, len(kinds))
		for ki := range kinds {
			row[ki] = stats.Gmean(ratios[ki])
		}
		label := "I-fetch folded (default)"
		if modeled {
			label = "I-fetch modeled"
		}
		t.Add(label, row...)
	}
	b.WriteString(t.String())
	b.WriteString("\n(The cacheless NVP and the NV cache pay their slow instruction path;\n")
	b.WriteString("the volatile designs additionally refill the I-cache after every outage.)\n")
	return b.String(), nil
}
