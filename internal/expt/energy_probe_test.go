package expt

import (
	"testing"

	"wlcache/internal/power"
	"wlcache/internal/sim"
)

// TestEnergyProbe prints the per-design energy breakdown for a few
// representative workloads under Trace 1 (calibration aid).
func TestEnergyProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration profile")
	}
	kinds := []Kind{KindNVCache, KindVCacheWT, KindReplay, KindNVSRAM, KindWL}
	for _, wl := range []string{"susanedges", "qsort", "sha", "jpegencode"} {
		for _, k := range kinds {
			res, err := Run(k, Options{}, wl, 1, power.Trace1, sim.DefaultConfig())
			if err != nil {
				t.Fatalf("%s/%s: %v", k, wl, err)
			}
			e := res.Energy
			t.Logf("%-11s %-12s exec=%7.2fms on=%6.2f off=%6.2f out=%4d E=%8.2fuJ [cr %.2f cw %.2f mr %.2f mw %.2f cp %.2f ck %.2f rs %.2f lk %.2f] wb=%d wrW=%d",
				wl, k, res.Seconds()*1e3, float64(res.OnTime)/1e9, float64(res.OffTime)/1e9,
				res.Outages, e.Total()*1e6,
				e.CacheRead*1e6, e.CacheWrite*1e6, e.MemRead*1e6, e.MemWrite*1e6,
				e.Compute*1e6, e.Checkpoint*1e6, e.Restore*1e6, e.Leak*1e6,
				res.Extra.Writebacks, res.NVMTraffic.WriteWords)
		}
	}
}
