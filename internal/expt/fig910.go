package expt

import (
	"fmt"
	"math"
	"strings"

	"wlcache/internal/cache"
	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/stats"
)

// Figure 9: per-application sensitivity to maxline (2..8) under the
// FIFO and LRU cache replacement policies, Power Trace 1, normalized
// to NVSRAM(ideal).
//
// Figure 10(a): cache-size sweep (128 B .. 4 KB), Power Trace 1.
// Figure 10(b): capacitor-size sweep (100 nF .. 1 mF), Power Trace 1,
// absolute execution time.

func init() {
	registerExperiment(Experiment{ID: "fig9",
		Title: "Figure 9: maxline (2..8) x cache replacement (FIFO/LRU) sensitivity, Power Trace 1",
		Run:   fig9})
	registerExperiment(Experiment{ID: "fig10a",
		Title: "Figure 10(a): cache size sweep 128B..4KB, Power Trace 1",
		Run:   fig10a})
	registerExperiment(Experiment{ID: "fig10b",
		Title: "Figure 10(b): capacitor size sweep 100nF..1mF, Power Trace 1",
		Run:   fig10b})
}

var fig9Maxlines = []int{2, 4, 6, 8}

func fig9(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	var cells []cell
	pols := []cache.ReplacementPolicy{cache.FIFO, cache.LRU}
	for _, wl := range names {
		cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: power.Trace1})
		for _, pol := range pols {
			for _, ml := range fig9Maxlines {
				// Static thresholds isolate the maxline effect, as in
				// the paper's sensitivity study.
				opt := Options{CachePolicy: pol, Maxline: ml}
				cells = append(cells, cell{kind: KindWLFixed, opts: opt, wl: wl, src: power.Trace1})
			}
		}
	}
	results, err := runCells(ctx, cells)
	if err != nil {
		return "", err
	}
	per := 1 + len(pols)*len(fig9Maxlines)
	var b strings.Builder
	b.WriteString("Figure 9: WL-Cache speedup vs NVSRAM(ideal), Power Trace 1, by maxline\n")
	cols := make([]string, 0, 2*len(fig9Maxlines))
	for _, pol := range pols {
		for _, ml := range fig9Maxlines {
			cols = append(cols, fmt.Sprintf("%s/m%d", pol, ml))
		}
	}
	t := stats.NewTable("", cols...)
	agg := make([][]float64, len(cols))
	for i, wl := range names {
		base := float64(results[per*i].ExecTime)
		row := make([]float64, len(cols))
		for j := 0; j < len(cols); j++ {
			r := base / float64(results[per*i+1+j].ExecTime)
			row[j] = r
			agg[j] = append(agg[j], r)
		}
		t.Add(wl, row...)
	}
	gr := make([]float64, len(cols))
	for j := range cols {
		gr[j] = stats.Gmean(agg[j])
	}
	t.Add("avg(gmean)", gr...)
	b.WriteString(t.String())
	return b.String(), nil
}

func fig10a(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	sizes := []int{128, 256, 512, 1024, 2048, 4096}
	kinds := []Kind{KindVCacheWT, KindReplay, KindWL}
	colNames := []string{"VCache-WT", "ReplayCache", "WL-Cache"}
	t := stats.NewTable("Figure 10(a): gmean speedup vs NVSRAM(ideal) at same size, Power Trace 1", colNames...)
	for _, size := range sizes {
		geo := cache.Geometry{SizeBytes: size, Ways: 2, LineBytes: 64}
		if size/geo.Ways < geo.LineBytes {
			geo.Ways = 1 // 128 B direct-mapped: 2 lines
		}
		var cells []cell
		for _, wl := range names {
			cells = append(cells, cell{kind: KindNVSRAM, opts: Options{Geometry: geo}, wl: wl, src: power.Trace1})
			for _, k := range kinds {
				cells = append(cells, cell{kind: k, opts: Options{Geometry: geo}, wl: wl, src: power.Trace1})
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		per := 1 + len(kinds)
		ratios := make([][]float64, len(kinds))
		for i := range names {
			base := float64(results[per*i].ExecTime)
			for ki := range kinds {
				ratios[ki] = append(ratios[ki], base/float64(results[per*i+1+ki].ExecTime))
			}
		}
		row := make([]float64, len(kinds))
		for ki := range kinds {
			row[ki] = stats.Gmean(ratios[ki])
		}
		t.Add(fmt.Sprintf("%dB", size), row...)
	}
	return t.String(), nil
}

func fig10b(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	caps := []struct {
		label string
		f     float64
	}{
		{"100nF", 100e-9}, {"344nF", 344e-9}, {"1uF", 1e-6},
		{"10uF", 10e-6}, {"100uF", 100e-6}, {"500uF", 500e-6}, {"1mF", 1e-3},
	}
	kinds := []Kind{KindVCacheWT, KindReplay, KindNVSRAM, KindWL}
	colNames := []string{"VCache-WT", "ReplayCache", "NVSRAM(ideal)", "WL-Cache"}
	t := stats.NewTable("Figure 10(b): geometric-mean execution time (s) by capacitor size, Power Trace 1", colNames...)
	for _, c := range caps {
		var cells []cell
		for _, wl := range names {
			for _, k := range kinds {
				cf := c.f
				cells = append(cells, cell{kind: k, wl: wl, src: power.Trace1,
					simFn: func(s *sim.Config) { s.CapacitorF = cf }, optional: true})
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		per := len(kinds)
		times := make([][]float64, len(kinds))
		for i := range names {
			for ki := range kinds {
				r := results[per*i+ki]
				if r.ExecTime <= 0 {
					// Design infeasible on this capacitor: its JIT
					// reserve cannot be charged below VMax.
					times[ki] = append(times[ki], math.NaN())
				} else {
					times[ki] = append(times[ki], r.Seconds())
				}
			}
		}
		row := make([]float64, len(kinds))
		for ki := range kinds {
			row[ki] = gmeanOrNaN(times[ki])
		}
		t.Add(c.label, row...)
	}
	return t.String(), nil
}
