package expt

import (
	"fmt"
	"strings"

	"wlcache/internal/power"
	"wlcache/internal/stats"
)

// Figure 13(a): gmean speedup vs NVSRAM(ideal) across power sources
// (three RF traces, solar, thermal), including the dynamic-adaptation
// variant WL-Cache(dyn).
//
// Figure 13(b): energy-consumption breakdown by subsystem under Power
// Trace 1, normalized to NVSRAM(ideal)'s total.

func init() {
	registerExperiment(Experiment{ID: "fig13a",
		Title: "Figure 13(a): performance across power traces (tr.1/tr.2/tr.3/solar/thermal)",
		Run:   fig13a})
	registerExperiment(Experiment{ID: "fig13b",
		Title: "Figure 13(b): energy consumption breakdown, Power Trace 1",
		Run:   fig13b})
}

func fig13a(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	kinds := []Kind{KindVCacheWT, KindReplay, KindWL, KindWLDyn}
	cols := []string{"VCache-WT", "ReplayCache", "WL-Cache", "WL-Cache(dyn)"}
	t := stats.NewTable("Figure 13(a): gmean speedup vs NVSRAM(ideal) by power source", cols...)
	var b strings.Builder
	outages := map[power.Source]float64{}
	for _, src := range power.Sources() {
		var cells []cell
		for _, wl := range names {
			cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: src})
			for _, k := range kinds {
				cells = append(cells, cell{kind: k, wl: wl, src: src})
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		per := 1 + len(kinds)
		ratios := make([][]float64, len(kinds))
		var out uint64
		for i := range names {
			base := float64(results[per*i].ExecTime)
			out += results[per*i].Outages
			for ki := range kinds {
				ratios[ki] = append(ratios[ki], base/float64(results[per*i+1+ki].ExecTime))
			}
		}
		outages[src] = float64(out) / float64(len(names))
		row := make([]float64, len(kinds))
		for ki := range kinds {
			row[ki] = stats.Gmean(ratios[ki])
		}
		t.Add(string(src), row...)
	}
	b.WriteString(t.String())
	chart := stats.NewBarChart("\nWL-Cache gmean speedup by power source:")
	chart.RefValue = 1.0
	for _, src := range power.Sources() {
		if v, ok := t.Value(string(src), "WL-Cache"); ok {
			chart.Add(string(src), v)
		}
	}
	b.WriteString(chart.String())
	b.WriteString("\nAverage outages per benchmark (NVSRAM baseline):\n")
	for _, src := range power.Sources() {
		fmt.Fprintf(&b, "  %-8s %.0f\n", src, outages[src])
	}
	return b.String(), nil
}

func fig13b(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	kinds := []Kind{KindNVCache, KindVCacheWT, KindNVSRAM, KindWL}
	cols := []string{"Cache(read)", "Cache(write)", "Mem(read)", "Mem(write)", "Compute", "JIT(ckpt+rs)", "Leak", "Total"}
	t := stats.NewTable("Figure 13(b): energy breakdown under Power Trace 1, % of NVSRAM(ideal) total", cols...)
	var cells []cell
	for _, wl := range names {
		for _, k := range kinds {
			cells = append(cells, cell{kind: k, wl: wl, src: power.Trace1})
		}
	}
	results, err := runCells(ctx, cells)
	if err != nil {
		return "", err
	}
	per := len(kinds)
	// Sum energies per design over all benchmarks; normalize to the
	// NVSRAM total (index 2 in kinds).
	type agg struct{ cr, cw, mr, mw, cp, jit, lk float64 }
	sums := make([]agg, len(kinds))
	for i := range names {
		for ki := range kinds {
			e := results[per*i+ki].Energy
			s := &sums[ki]
			s.cr += e.CacheRead
			s.cw += e.CacheWrite
			s.mr += e.MemRead
			s.mw += e.MemWrite
			s.cp += e.Compute
			s.jit += e.Checkpoint + e.Restore
			s.lk += e.Leak
		}
	}
	baseTotal := sums[2].cr + sums[2].cw + sums[2].mr + sums[2].mw + sums[2].cp + sums[2].jit + sums[2].lk
	rowNames := []string{"NVCache-WB", "VCache-WT", "NVSRAM(ideal)", "WL-Cache"}
	for ki, rn := range rowNames {
		s := sums[ki]
		total := s.cr + s.cw + s.mr + s.mw + s.cp + s.jit + s.lk
		t.Add(rn,
			100*s.cr/baseTotal, 100*s.cw/baseTotal, 100*s.mr/baseTotal, 100*s.mw/baseTotal,
			100*s.cp/baseTotal, 100*s.jit/baseTotal, 100*s.lk/baseTotal, 100*total/baseTotal)
	}
	return t.String(), nil
}
