package expt

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"reflect"
	"strconv"
	"strings"

	"wlcache/internal/power"
	"wlcache/internal/runner"
	"wlcache/internal/sim"
)

// The golden sweep is the pinned design×workload×trace matrix whose
// bit-exact results are committed to testdata/golden_results.json: all
// registered designs crossed with one short MediaBench kernel and the
// benchmark workload (sha) under uninterrupted power, the moderately
// stable home RF trace, and the very unstable Mementos trace. It is
// both the engine's regression gate and the chaos harness's truth: a
// sweep killed at any point must resume to exactly these cells.

// GoldenWorkloads returns the workloads of the pinned matrix.
func GoldenWorkloads() []string { return []string{"adpcmencode", "sha"} }

// GoldenSources returns the power traces of the pinned matrix.
func GoldenSources() []power.Source { return []power.Source{power.None, power.Trace1, power.Trace3} }

// GoldenCell pins one (design, workload, trace) cell of the sweep
// matrix. Result fields are flattened to exact string renderings —
// floats as IEEE-754 bit patterns — so any drift, even a single ulp,
// is detectable. Infeasible cells (e.g. eager-wb's unbounded reserve
// on traced configs) are pinned by their error string instead.
type GoldenCell struct {
	Kind     string            `json:"kind"`
	Workload string            `json:"workload"`
	Trace    string            `json:"trace"`
	Err      string            `json:"err,omitempty"`
	Fields   map[string]string `json:"fields,omitempty"`
}

// ID names the cell.
func (c GoldenCell) ID() string { return c.Kind + "/" + c.Workload + "/" + c.Trace }

// FlattenResult renders every scalar field of a sim.Result (including
// nested structs) as an exact string.
func FlattenResult(r sim.Result) map[string]string {
	out := make(map[string]string)
	flattenValue("", reflect.ValueOf(r), out)
	return out
}

func flattenValue(prefix string, v reflect.Value, out map[string]string) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			name := t.Field(i).Name
			if prefix != "" {
				name = prefix + "." + name
			}
			flattenValue(name, v.Field(i), out)
		}
	case reflect.Float64:
		out[prefix] = fmt.Sprintf("%#016x", math.Float64bits(v.Float()))
	case reflect.Int, reflect.Int64:
		out[prefix] = fmt.Sprintf("%d", v.Int())
	case reflect.Uint32, reflect.Uint64:
		out[prefix] = fmt.Sprintf("%d", v.Uint())
	case reflect.String:
		out[prefix] = v.String()
	case reflect.Bool:
		out[prefix] = fmt.Sprintf("%t", v.Bool())
	default:
		panic(fmt.Sprintf("golden: unsupported field kind %s at %q", v.Kind(), prefix))
	}
}

// RunGoldenMatrix executes the pinned matrix — restricted to the given
// workloads and sources, both defaulting to the full pinned sets —
// through the crash-resumable runner, in the committed fixed order.
// Every cell is tolerated (infeasible designs are part of the pin), so
// the sweep never aborts; per-cell errors land in the GoldenCells. The
// Context's Journal/Ctx/Metrics/AfterJournal fields thread straight
// through, which is what makes the golden sweep resumable and
// chaos-testable.
func RunGoldenMatrix(ctx Context, workloads []string, sources []power.Source) ([]GoldenCell, runner.Metrics, error) {
	if len(workloads) == 0 {
		workloads = GoldenWorkloads()
	}
	if len(sources) == 0 {
		sources = GoldenSources()
	}
	ctx.Scale = 1
	var cells []cell
	var golden []GoldenCell
	for _, kind := range AllKinds() {
		for _, wl := range workloads {
			for _, src := range sources {
				cells = append(cells, cell{kind: kind, wl: wl, src: src, optional: true})
				golden = append(golden, GoldenCell{Kind: string(kind), Workload: wl, Trace: string(src)})
			}
		}
	}
	rep, err := runCellsReport(ctx, cells)
	if err != nil {
		return nil, rep.Metrics, err
	}
	for i := range golden {
		if cerr := rep.Errs[i]; cerr != nil {
			// Pin the underlying simulator error exactly as a direct
			// Run call would have returned it, not the runner's
			// cell-attributed wrapper.
			var ce *runner.CellError
			if errors.As(cerr, &ce) {
				golden[i].Err = ce.Err.Error()
			} else {
				golden[i].Err = cerr.Error()
			}
		} else {
			golden[i].Fields = FlattenResult(rep.Results[i])
		}
	}
	return golden, rep.Metrics, nil
}

// LoadGoldenFile reads a committed golden matrix.
func LoadGoldenFile(path string) ([]GoldenCell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cells []GoldenCell
	if err := json.Unmarshal(data, &cells); err != nil {
		return nil, fmt.Errorf("golden %s: %w", path, err)
	}
	return cells, nil
}

// Tolerance is the fast tier's committed accuracy contract against the
// bit-exact golden (DESIGN.md §16). Fields fall into three classes:
//
//   - counts and identities (instructions, loads/stores, outages,
//     write-backs, checkpoint lines, NVM traffic, checksums, adaptive
//     settings): exactly equal, always — the fast tier decides every
//     event and every outage boundary at the same granularity as the
//     exact tier, so these may not drift at all;
//   - energies (Energy.*, ReserveWasted): ε-equal — batched settlement
//     reorders floating-point summation, perturbing sums at relative
//     ~1e-15 per operation;
//   - phase times (ExecTime, OnTime, CheckpointTime, OffTime,
//     RestoreTime, Extra.StallTime): ε-equal — recharge durations
//     derive from ε-perturbed energies and round to integer ps, so
//     each outage can shift absolute time by ~1 ps.
type Tolerance struct {
	// EnergyRel/EnergyAbs bound energy drift (joules): a field passes
	// when |got-want| <= max(EnergyAbs, EnergyRel*max(|got|,|want|)).
	EnergyRel float64
	EnergyAbs float64
	// TimeRel/TimeAbsPS bound time drift (picoseconds) the same way.
	TimeRel   float64
	TimeAbsPS float64
}

// FastTolerance is the committed fast-tier contract: energies within
// 1e-9 relative, times within 1e-6 relative (floored at 10 ns — ~1 ps
// per outage of recharge rounding on short runs). Measured drift on the
// 78-cell golden is orders of magnitude below both bounds; the slack
// keeps the gate stable across compilers and FMA-contraction choices
// without ever admitting a physically meaningful difference.
func FastTolerance() Tolerance {
	return Tolerance{EnergyRel: 1e-9, EnergyAbs: 1e-18, TimeRel: 1e-6, TimeAbsPS: 10_000}
}

// goldenFieldClass classifies a flattened Result field for tolerant
// comparison.
type goldenFieldClass int

const (
	classExact goldenFieldClass = iota
	classEnergy
	classTime
)

func fieldClass(name string) goldenFieldClass {
	switch {
	case name == "ReserveWasted" || strings.HasPrefix(name, "Energy."):
		return classEnergy
	case name == "ExecTime" || name == "OnTime" || name == "CheckpointTime" ||
		name == "OffTime" || name == "RestoreTime" || name == "Extra.StallTime":
		return classTime
	}
	return classExact
}

// parseGoldenFloat decodes FlattenResult's %#016x IEEE-754 rendering.
func parseGoldenFloat(s string) (float64, bool) {
	hexDigits, ok := strings.CutPrefix(s, "0x")
	if !ok {
		return 0, false
	}
	bits, err := strconv.ParseUint(hexDigits, 16, 64)
	if err != nil {
		return 0, false
	}
	return math.Float64frombits(bits), true
}

func withinTol(got, want, rel, abs float64) bool {
	d := math.Abs(got - want)
	bound := rel * math.Max(math.Abs(got), math.Abs(want))
	if bound < abs {
		bound = abs
	}
	return d <= bound
}

// WithinEnergy reports whether two energies (joules) agree within the
// tolerance's energy bound.
func (t Tolerance) WithinEnergy(got, want float64) bool {
	return withinTol(got, want, t.EnergyRel, t.EnergyAbs)
}

// WithinTime reports whether two durations (picoseconds) agree within
// the tolerance's time bound.
func (t Tolerance) WithinTime(got, want float64) bool {
	return withinTol(got, want, t.TimeRel, t.TimeAbsPS)
}

// CompareGoldenCellsTol verifies got against the committed bit-exact
// matrix under the fast tier's contract: every count field must match
// exactly; energy and time fields must agree within tol. Cell coverage
// and error strings follow CompareGoldenCells semantics.
func CompareGoldenCellsTol(got, committed []GoldenCell, subset bool, tol Tolerance) error {
	want := make(map[string]GoldenCell, len(committed))
	for _, c := range committed {
		want[c.ID()] = c
	}
	var diffs []string
	for _, g := range got {
		w, ok := want[g.ID()]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: produced but not pinned by the golden (extra cell)", g.ID()))
			continue
		}
		delete(want, g.ID())
		if w.Err != g.Err {
			diffs = append(diffs, fmt.Sprintf("%s: error drift: committed %q, got %q", g.ID(), w.Err, g.Err))
			continue
		}
		for field, wv := range w.Fields {
			gv, ok := g.Fields[field]
			if !ok {
				diffs = append(diffs, fmt.Sprintf("%s: field %s missing from current result", g.ID(), field))
				continue
			}
			if gv == wv {
				continue
			}
			switch fieldClass(field) {
			case classEnergy:
				gf, ok1 := parseGoldenFloat(gv)
				wf, ok2 := parseGoldenFloat(wv)
				if !ok1 || !ok2 || !withinTol(gf, wf, tol.EnergyRel, tol.EnergyAbs) {
					diffs = append(diffs, fmt.Sprintf("%s: %s outside energy tolerance: committed %s (%g), got %s (%g)",
						g.ID(), field, wv, wf, gv, gf))
				}
			case classTime:
				var gt, wt int64
				_, err1 := fmt.Sscanf(gv, "%d", &gt)
				_, err2 := fmt.Sscanf(wv, "%d", &wt)
				if err1 != nil || err2 != nil || !withinTol(float64(gt), float64(wt), tol.TimeRel, tol.TimeAbsPS) {
					diffs = append(diffs, fmt.Sprintf("%s: %s outside time tolerance: committed %s, got %s",
						g.ID(), field, wv, gv))
				}
			default:
				diffs = append(diffs, fmt.Sprintf("%s: count field %s must be exact: committed %s, got %s",
					g.ID(), field, wv, gv))
			}
		}
		for field := range g.Fields {
			if _, ok := w.Fields[field]; !ok {
				diffs = append(diffs, fmt.Sprintf("%s: new field %s not in committed golden", g.ID(), field))
			}
		}
	}
	if !subset {
		for id := range want {
			diffs = append(diffs, fmt.Sprintf("%s: pinned by the golden but not produced", id))
		}
	}
	if len(diffs) > 0 {
		if len(diffs) > 20 {
			diffs = append(diffs[:20], fmt.Sprintf("... and %d more", len(diffs)-20))
		}
		return fmt.Errorf("golden divergence (fast-tier tolerance):\n  %s", strings.Join(diffs, "\n  "))
	}
	return nil
}

// CompareGoldenCells verifies got against the committed matrix,
// bit-exactly. With subset true, got may cover fewer cells than the
// commitment (a restricted sweep), but every produced cell must still
// match its committed counterpart by ID — an extra cell the
// commitment does not pin is an error, so a stitched run can never
// silently over-report.
func CompareGoldenCells(got, committed []GoldenCell, subset bool) error {
	want := make(map[string]GoldenCell, len(committed))
	for _, c := range committed {
		want[c.ID()] = c
	}
	var diffs []string
	for _, g := range got {
		w, ok := want[g.ID()]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: produced but not pinned by the golden (extra cell)", g.ID()))
			continue
		}
		delete(want, g.ID())
		if w.Err != g.Err {
			diffs = append(diffs, fmt.Sprintf("%s: error drift: committed %q, got %q", g.ID(), w.Err, g.Err))
			continue
		}
		for field, wv := range w.Fields {
			if gv, ok := g.Fields[field]; !ok {
				diffs = append(diffs, fmt.Sprintf("%s: field %s missing from current result", g.ID(), field))
			} else if gv != wv {
				diffs = append(diffs, fmt.Sprintf("%s: %s drifted: committed %s, got %s", g.ID(), field, wv, gv))
			}
		}
		for field := range g.Fields {
			if _, ok := w.Fields[field]; !ok {
				diffs = append(diffs, fmt.Sprintf("%s: new field %s not in committed golden", g.ID(), field))
			}
		}
	}
	if !subset {
		for id := range want {
			diffs = append(diffs, fmt.Sprintf("%s: pinned by the golden but not produced", id))
		}
	}
	if len(diffs) > 0 {
		if len(diffs) > 20 {
			diffs = append(diffs[:20], fmt.Sprintf("... and %d more", len(diffs)-20))
		}
		return fmt.Errorf("golden divergence:\n  %s", strings.Join(diffs, "\n  "))
	}
	return nil
}
