package expt

import (
	"testing"

	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/workload"
)

// TestSmokeAllWorkloads runs every workload once on WL-Cache with
// invariant checking, without power failures, and prints the profile
// (instruction counts drive calibration).
func TestSmokeAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke profile")
	}
	cfg := sim.DefaultConfig()
	cfg.CheckInvariants = true
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := Run(KindWL, Options{}, w.Name, 1, power.None, cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("%-14s instr=%9d loads=%8d stores=%8d onTime=%8.3fms cpi=%.2f sum=%08x",
				w.Name, res.Instructions, res.Loads, res.Stores,
				float64(res.OnTime)/1e9, res.CPI(), res.Checksum)
		})
	}
}
