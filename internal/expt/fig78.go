package expt

import (
	"fmt"
	"strings"

	"wlcache/internal/cache"
	"wlcache/internal/core"
	"wlcache/internal/power"
	"wlcache/internal/stats"
	"wlcache/internal/workload"
)

// Figure 7: normalized NVM write-traffic increase of WL-Cache over
// NVSRAM(ideal) under Power Trace 1.
//
// Figure 8(a): WL-Cache DirtyQueue replacement policy (FIFO vs LRU),
// gmean speedup vs NVSRAM for no-failure / tr.1 / tr.2.
//
// Figure 8(b): cache set associativity (direct-mapped / 2-way /
// 4-way), gmean speedup vs NVSRAM.

func init() {
	registerExperiment(Experiment{ID: "fig7",
		Title: "Figure 7: normalized write traffic increase vs NVSRAM(ideal), Power Trace 1",
		Run:   fig7})
	registerExperiment(Experiment{ID: "fig8a",
		Title: "Figure 8(a): DirtyQueue replacement policy (DQ-FIFO vs DQ-LRU)",
		Run:   fig8a})
	registerExperiment(Experiment{ID: "fig8b",
		Title: "Figure 8(b): cache set associativity (direct-mapped, 2-way, 4-way)",
		Run:   fig8b})
}

func fig7(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	var cells []cell
	for _, wl := range names {
		cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: power.Trace1})
		cells = append(cells, cell{kind: KindWL, wl: wl, src: power.Trace1})
	}
	results, err := runCells(ctx, cells)
	if err != nil {
		return "", err
	}
	t := stats.NewTable("Figure 7: WL-Cache NVM write traffic, normalized to NVSRAM(ideal), Power Trace 1", "traffic")
	var ratios, media, mi []float64
	mediaSet := map[string]bool{}
	for _, n := range workload.SuiteNames(workload.MediaBench) {
		mediaSet[n] = true
	}
	for i, wl := range names {
		base := float64(results[2*i].NVMTraffic.WriteWords)
		wlw := float64(results[2*i+1].NVMTraffic.WriteWords)
		r := wlw / base
		t.Add(wl, r)
		ratios = append(ratios, r)
		if mediaSet[wl] {
			media = append(media, r)
		} else {
			mi = append(mi, r)
		}
	}
	if len(media) > 0 {
		t.Add("gmean(Media)", stats.Gmean(media))
	}
	if len(mi) > 0 {
		t.Add("gmean(Mi)", stats.Gmean(mi))
	}
	t.Add("gmean(Total)", stats.Gmean(ratios))
	return t.String(), nil
}

func fig8a(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	srcs := []power.Source{power.None, power.Trace1, power.Trace2}
	labels := []string{"no failure", "trace 1", "trace 2"}
	var b strings.Builder
	t := stats.NewTable("Figure 8(a): WL-Cache DirtyQueue replacement, gmean speedup vs NVSRAM(ideal)",
		"DQ-FIFO", "DQ-LRU")
	for si, src := range srcs {
		var cells []cell
		for _, wl := range names {
			cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: src})
			cells = append(cells, cell{kind: KindWL, opts: Options{DQPolicy: core.DQFIFO}, wl: wl, src: src})
			cells = append(cells, cell{kind: KindWL, opts: Options{DQPolicy: core.DQLRU}, wl: wl, src: src})
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		var fifo, lru []float64
		for i := range names {
			base := float64(results[3*i].ExecTime)
			fifo = append(fifo, base/float64(results[3*i+1].ExecTime))
			lru = append(lru, base/float64(results[3*i+2].ExecTime))
		}
		t.Add(labels[si], stats.Gmean(fifo), stats.Gmean(lru))
	}
	b.WriteString(t.String())
	return b.String(), nil
}

func fig8b(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	ways := []int{1, 2, 4}
	cols := []string{"D-Map.", "2-Way", "4-Way"}
	t := stats.NewTable("Figure 8(b): WL-Cache set associativity, gmean speedup vs NVSRAM(ideal)", cols...)
	for _, src := range []power.Source{power.Trace1, power.Trace2} {
		var cells []cell
		for _, wl := range names {
			cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: src})
			for _, w := range ways {
				geo := cache.DefaultGeometry()
				geo.Ways = w
				cells = append(cells, cell{kind: KindWL, opts: Options{Geometry: geo}, wl: wl, src: src})
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		per := 1 + len(ways)
		ratios := make([][]float64, len(ways))
		for i := range names {
			base := float64(results[per*i].ExecTime)
			for wi := range ways {
				ratios[wi] = append(ratios[wi], base/float64(results[per*i+1+wi].ExecTime))
			}
		}
		row := make([]float64, len(ways))
		for wi := range ways {
			row[wi] = stats.Gmean(ratios[wi])
		}
		t.Add(fmt.Sprintf("trace %s", power.Get(src).Name), row...)
	}
	return t.String(), nil
}
