package expt

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wlcache/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_results.json from the current engine")

const goldenPath = "testdata/golden_results.json"

// TestGoldenResults proves the simulator produces bit-identical
// results for every design×workload×trace cell of the pinned matrix.
// The committed golden file was generated from the pre-optimization
// engine, so this is the before/after equivalence proof for the
// hot-path work — and, since the matrix now runs through the
// crash-resumable runner, it also proves the runner's worker pool and
// journal plumbing do not perturb results. Regenerate deliberately
// with:
//
//	go test ./internal/expt -run TestGoldenResults -update
func TestGoldenResults(t *testing.T) {
	got, _, err := RunGoldenMatrix(Context{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %d cells to %s", len(got), goldenPath)
		return
	}

	want, err := LoadGoldenFile(goldenPath)
	if err != nil {
		t.Fatalf("golden: %v (generate with -update)", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden: matrix size changed: committed %d cells, ran %d (regenerate with -update)", len(want), len(got))
	}
	for i := range want {
		if want[i].ID() != got[i].ID() {
			t.Fatalf("golden: cell %d is %s, committed file has %s (matrix order changed; regenerate with -update)",
				i, got[i].ID(), want[i].ID())
		}
	}
	if err := CompareGoldenCells(got, want, false); err != nil {
		t.Error(err)
	}
}

// TestGoldenResultsFastTier proves the fast tier's accuracy contract
// against the same committed bit-exact golden: the full pinned matrix
// run at sim.TierFast must reproduce every count field (instructions,
// outages, write-backs, checkpoint lines, traffic, checksums) exactly,
// and every energy/time field within the committed FastTolerance. The
// golden file is never regenerated from the fast tier — the exact
// engine stays the single source of truth.
func TestGoldenResultsFastTier(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file is generated from the exact tier only")
	}
	got, _, err := RunGoldenMatrix(Context{Tier: sim.TierFast}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LoadGoldenFile(goldenPath)
	if err != nil {
		t.Fatalf("golden: %v (generate with -update)", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden: matrix size changed: committed %d cells, ran %d", len(want), len(got))
	}
	if err := CompareGoldenCellsTol(got, want, false, FastTolerance()); err != nil {
		t.Error(err)
	}
}

// TestGoldenMatrixResumesFromJournal reruns a prefix of the golden
// matrix with a journal, then the full matrix against the same
// journal, and asserts the second pass served every journaled cell by
// content address with zero recomputation and bit-identical output.
func TestGoldenMatrixResumesFromJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	wls := []string{"adpcmencode"}

	first, m1, err := RunGoldenMatrix(Context{Journal: journal}, wls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.FromJournal != 0 || m1.Computed == 0 {
		t.Fatalf("first pass metrics off: %+v", m1)
	}

	second, m2, err := RunGoldenMatrix(Context{Journal: journal}, wls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.FromJournal != m1.Computed {
		t.Fatalf("resume recomputed journaled cells: served %d from journal, first pass computed %d (metrics %+v)",
			m2.FromJournal, m1.Computed, m2)
	}
	// Only the infeasible (error) cells recompute on resume — errors
	// are never journaled — so no cell computes to success twice.
	if m2.Computed != 0 {
		t.Fatalf("%d cells recomputed to success on resume, want 0 (metrics %+v)", m2.Computed, m2)
	}
	if m2.OptionalFailed != m1.OptionalFailed {
		t.Fatalf("infeasible-cell count changed across resume: %d vs %d", m2.OptionalFailed, m1.OptionalFailed)
	}
	if err := CompareGoldenCells(second, first, false); err != nil {
		t.Fatalf("journal-served results diverged from computed results: %v", err)
	}
}
