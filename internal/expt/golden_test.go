package expt

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wlcache/internal/power"
	"wlcache/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_results.json from the current engine")

// goldenWorkloads are the two workloads pinned by the golden matrix:
// one short MediaBench kernel and the benchmark workload (sha) used by
// BenchmarkTracedRun and wlbench.
var goldenWorkloads = []string{"adpcmencode", "sha"}

// goldenSources cover uninterrupted power, the moderately stable home
// RF trace and the very unstable Mementos trace (most outages, so the
// recharge/TimeToHarvest path is exercised hardest).
var goldenSources = []power.Source{power.None, power.Trace1, power.Trace3}

// goldenCell pins one (design, workload, trace) cell of the sweep
// matrix. Result fields are flattened to exact string renderings —
// floats as IEEE-754 bit patterns — so any drift, even a single ulp,
// fails the test. Infeasible cells (e.g. eager-wb's unbounded reserve
// on traced configs) are pinned by their error string instead.
type goldenCell struct {
	Kind     string            `json:"kind"`
	Workload string            `json:"workload"`
	Trace    string            `json:"trace"`
	Err      string            `json:"err,omitempty"`
	Fields   map[string]string `json:"fields,omitempty"`
}

func (c goldenCell) id() string {
	return c.Kind + "/" + c.Workload + "/" + c.Trace
}

// flattenResult renders every scalar field of a sim.Result (including
// nested structs) as an exact string.
func flattenResult(r sim.Result) map[string]string {
	out := make(map[string]string)
	flattenValue("", reflect.ValueOf(r), out)
	return out
}

func flattenValue(prefix string, v reflect.Value, out map[string]string) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			name := t.Field(i).Name
			if prefix != "" {
				name = prefix + "." + name
			}
			flattenValue(name, v.Field(i), out)
		}
	case reflect.Float64:
		out[prefix] = fmt.Sprintf("%#016x", math.Float64bits(v.Float()))
	case reflect.Int, reflect.Int64:
		out[prefix] = fmt.Sprintf("%d", v.Int())
	case reflect.Uint32, reflect.Uint64:
		out[prefix] = fmt.Sprintf("%d", v.Uint())
	case reflect.String:
		out[prefix] = v.String()
	case reflect.Bool:
		out[prefix] = fmt.Sprintf("%t", v.Bool())
	default:
		panic(fmt.Sprintf("golden: unsupported field kind %s at %q", v.Kind(), prefix))
	}
}

// runGoldenMatrix executes every cell of the pinned matrix in a fixed
// order.
func runGoldenMatrix(t *testing.T) []goldenCell {
	t.Helper()
	var cells []goldenCell
	for _, kind := range AllKinds() {
		for _, wl := range goldenWorkloads {
			for _, src := range goldenSources {
				cell := goldenCell{Kind: string(kind), Workload: wl, Trace: string(src)}
				res, err := Run(kind, Options{}, wl, 1, src, sim.DefaultConfig())
				if err != nil {
					cell.Err = err.Error()
				} else {
					cell.Fields = flattenResult(res)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells
}

const goldenPath = "testdata/golden_results.json"

// TestGoldenResults proves the simulator produces bit-identical
// results for every design×workload×trace cell of the pinned matrix.
// The committed golden file was generated from the pre-optimization
// engine, so this is the before/after equivalence proof for the
// hot-path work (prefix-sum Integrate, binary-search TimeToHarvest,
// cached Vbackup, page-aware memory). Regenerate deliberately with:
//
//	go test ./internal/expt -run TestGoldenResults -update
func TestGoldenResults(t *testing.T) {
	got := runGoldenMatrix(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %d cells to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden: %v (generate with -update)", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden: bad testdata: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden: matrix size changed: committed %d cells, ran %d (regenerate with -update)", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if w.id() != g.id() {
			t.Fatalf("golden: cell %d is %s, committed file has %s (matrix order changed; regenerate with -update)", i, g.id(), w.id())
		}
		if w.Err != g.Err {
			t.Errorf("%s: error drift:\n  committed: %q\n  got:       %q", g.id(), w.Err, g.Err)
			continue
		}
		for field, wv := range w.Fields {
			if gv, ok := g.Fields[field]; !ok {
				t.Errorf("%s: field %s missing from current result", g.id(), field)
			} else if gv != wv {
				t.Errorf("%s: %s drifted: committed %s, got %s", g.id(), field, wv, gv)
			}
		}
		for field := range g.Fields {
			if _, ok := w.Fields[field]; !ok {
				t.Errorf("%s: new field %s not in committed golden (regenerate with -update)", g.id(), field)
			}
		}
	}
}
