package expt

import (
	"testing"

	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/stats"
	"wlcache/internal/workload"
)

// TestCalibrateDesigns prints per-design gmean speedups over NVSRAM
// for no-failure, trace-1 and trace-2 runs: the numbers the paper's
// headline claims rest on. Used to tune model constants; shape
// assertions live in the experiment tests.
func TestCalibrateDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration profile")
	}
	kinds := []Kind{KindNVCache, KindVCacheWT, KindReplay, KindNVSRAM, KindWLFixed, KindWL, KindWLDyn}
	for _, src := range []power.Source{power.None, power.Trace1, power.Trace2, power.Trace3, power.Solar, power.Thermal} {
		base := map[string]float64{}
		speeds := map[Kind][]float64{}
		outs := map[Kind]uint64{}
		for _, w := range workload.All() {
			for _, k := range kinds {
				res, err := Run(k, Options{}, w.Name, 1, src, sim.DefaultConfig())
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", k, w.Name, src, err)
				}
				if k == KindNVSRAM {
					base[w.Name] = float64(res.ExecTime)
				}
				speeds[k] = append(speeds[k], float64(res.ExecTime))
				outs[k] += res.Outages
			}
		}
		for _, k := range kinds {
			ratios := make([]float64, 0, len(base))
			for i, w := range workload.All() {
				ratios = append(ratios, base[w.Name]/speeds[k][i])
			}
			t.Logf("src=%-7s %-12s gmean speedup vs NVSRAM = %.3f  (outages total %d)",
				src, k, stats.Gmean(ratios), outs[k])
		}
	}
}
