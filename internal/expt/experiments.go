package expt

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/stats"
	"wlcache/internal/workload"
)

// Context configures an experiment run.
type Context struct {
	// Scale multiplies workload input sizes (default 1 = paper runs).
	Scale int
	// Workloads restricts the benchmark set (nil = all 23).
	Workloads []string
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
	// CheckInvariants enables the expensive correctness checking.
	CheckInvariants bool
}

func (c Context) normalize() Context {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.Names()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

func (c Context) simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.CheckInvariants = c.CheckInvariants
	return cfg
}

// Experiment reproduces one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx Context) (string, error)
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// Experiments returns every registered experiment in registration
// order (the paper's order).
func Experiments() []Experiment { return experiments }

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.ID
	}
	return ids
}

// cell is one (design, workload, trace, options) simulation request.
type cell struct {
	kind  Kind
	opts  Options
	wl    string
	src   power.Source
	simFn func(*sim.Config) // optional config override
	// optional cells may fail (e.g. a design whose JIT reserve cannot
	// be charged on a tiny capacitor); their Result is left zero.
	optional bool
}

// runCells executes all cells on a fixed pool of ctx.Parallelism
// worker goroutines draining an index channel, and returns results
// keyed by index. A fixed pool (rather than one goroutine per cell
// gated by a semaphore) keeps goroutine count — and therefore
// scheduler and stack-allocation load — independent of the matrix
// size; large sweeps enqueue thousands of cells.
func runCells(ctx Context, cells []cell) ([]sim.Result, error) {
	ctx = ctx.normalize()
	results := make([]sim.Result, len(cells))
	errs := make([]error, len(cells))
	workers := ctx.Parallelism
	if workers > len(cells) {
		workers = len(cells)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c := cells[i]
				cfg := ctx.simConfig()
				if c.simFn != nil {
					c.simFn(&cfg)
				}
				results[i], errs[i] = Run(c.kind, c.opts, c.wl, ctx.Scale, c.src, cfg)
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if cells[i].optional {
				results[i] = sim.Result{}
				continue
			}
			return nil, fmt.Errorf("cell %s/%s/%s: %w", cells[i].kind, cells[i].wl, cells[i].src, err)
		}
	}
	return results, nil
}

// gmeanOrNaN is Gmean that propagates NaN/non-positive samples as NaN
// (used where a configuration is infeasible for some design).
func gmeanOrNaN(xs []float64) float64 {
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return math.NaN()
		}
	}
	return stats.Gmean(xs)
}

// speedupTable builds the paper's standard per-benchmark layout: one
// row per benchmark plus gmean(Media), gmean(Mi) and gmean(Total),
// with each column a design's speedup over the NVSRAM baseline.
func speedupTable(title string, names []string, columns []string,
	times func(wl string) (base float64, perCol []float64)) *stats.Table {
	t := stats.NewTable(title, columns...)
	perColRatios := make([][]float64, len(columns))
	mediaSet := map[string]bool{}
	for _, n := range workload.SuiteNames(workload.MediaBench) {
		mediaSet[n] = true
	}
	mediaRatios := make([][]float64, len(columns))
	miRatios := make([][]float64, len(columns))
	for _, wl := range names {
		base, per := times(wl)
		row := make([]float64, len(columns))
		for i, tm := range per {
			r := base / tm
			row[i] = r
			perColRatios[i] = append(perColRatios[i], r)
			if mediaSet[wl] {
				mediaRatios[i] = append(mediaRatios[i], r)
			} else {
				miRatios[i] = append(miRatios[i], r)
			}
		}
		t.Add(wl, row...)
	}
	addG := func(label string, rs [][]float64) {
		row := make([]float64, len(columns))
		for i := range columns {
			if len(rs[i]) > 0 {
				row[i] = stats.Gmean(rs[i])
			}
		}
		t.Add(label, row...)
	}
	addG("gmean(Media)", mediaRatios)
	addG("gmean(Mi)", miRatios)
	addG("gmean(Total)", perColRatios)
	return t
}

// subsetNames intersects the context's workload list with the full
// registry, preserving figure order.
func subsetNames(ctx Context) []string {
	want := map[string]bool{}
	for _, n := range ctx.Workloads {
		want[n] = true
	}
	var out []string
	for _, n := range workload.Names() {
		if want[n] {
			out = append(out, n)
		}
	}
	return out
}
