package expt

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"wlcache/internal/obs"
	"wlcache/internal/power"
	"wlcache/internal/runner"
	"wlcache/internal/sim"
	"wlcache/internal/stats"
	"wlcache/internal/workload"
)

// Context configures an experiment run.
type Context struct {
	// Scale multiplies workload input sizes (default 1 = paper runs).
	Scale int
	// Workloads restricts the benchmark set (nil = all 23).
	Workloads []string
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
	// CheckInvariants enables the expensive correctness checking.
	CheckInvariants bool
	// Tier selects the engine fidelity for every cell of the sweep
	// (sim.TierExact default). Fast-tier cells fingerprint differently
	// from exact cells, so the two can never alias in journals, the
	// serve store, or recorded histories.
	Tier sim.Tier

	// Ctx cancels the sweep (nil = context.Background()). Cells not
	// yet started when it fires are reported as deterministic skips.
	Ctx context.Context
	// Journal enables crash-resumable sweeps: completed cells are
	// appended to this wlrun/v1 JSONL file and served back by content
	// address on the next run ("" = off).
	Journal string
	// Metrics, when non-nil, receives the runner metrics of the sweep
	// (journal hits, recomputations, failures, skips).
	Metrics *runner.Metrics
	// AfterJournal is the chaos seam: it runs after each durable
	// journal append, under the journal lock. The chaos harness kills
	// the process here.
	AfterJournal func(appended int)
	// Obs, when non-nil, receives the runner's journal-reload metrics
	// (records served, dropped records, torn-tail bytes).
	Obs *obs.Registry
}

func (c Context) normalize() Context {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.Names()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

func (c Context) simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.CheckInvariants = c.CheckInvariants
	cfg.Tier = c.Tier
	return cfg
}

// Experiment reproduces one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx Context) (string, error)
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// Experiments returns every registered experiment in registration
// order (the paper's order).
func Experiments() []Experiment { return experiments }

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.ID
	}
	return ids
}

// cell is one (design, workload, trace, options) simulation request.
type cell struct {
	kind  Kind
	opts  Options
	wl    string
	src   power.Source
	simFn func(*sim.Config) // optional config override
	// optional cells may fail (e.g. a design whose JIT reserve cannot
	// be charged on a tiny capacitor); their Result is left zero.
	optional bool
}

// runCells executes all cells through the crash-resumable runner
// (internal/runner) and returns results keyed by index. Failed
// optional cells keep a zero Result; the first failing required cell
// — by submission index, never by scheduling race — becomes the
// error, with every completed result still returned alongside it.
func runCells(ctx Context, cells []cell) ([]sim.Result, error) {
	rep, err := runCellsReport(ctx, cells)
	return rep.Results, err
}

// runCellsReport is runCells with the full per-cell error vector and
// runner metrics exposed; the golden sweep and the chaos harness need
// them.
func runCellsReport(ctx Context, cells []cell) (runner.Report, error) {
	ctx = ctx.normalize()
	rcells := make([]runner.Cell, len(cells))
	for i, c := range cells {
		cfg := ctx.simConfig()
		if c.simFn != nil {
			c.simFn(&cfg)
		}
		rc := RunnerCell(c.kind, c.opts, c.wl, ctx.Scale, c.src, cfg)
		rc.Optional = c.optional
		rcells[i] = rc
	}
	rep, err := runner.RunCells(ctx.Ctx, runner.Config{
		Workers:      ctx.Parallelism,
		Engine:       sim.EngineVersion,
		JournalPath:  ctx.Journal,
		AfterJournal: ctx.AfterJournal,
		Obs:          ctx.Obs,
	}, rcells)
	if ctx.Metrics != nil {
		*ctx.Metrics = rep.Metrics
	}
	return rep, err
}

// RunnerCell builds the crash-resumable runner cell for one
// (design, options, workload, scale, trace, sim config) request — the
// same ID / content fingerprint / Run closure expt's own sweeps
// submit. External drivers (the wlserve sweep service) build their
// cells through this, so their content addresses — and therefore
// journals, shared caches and the committed golden — are interchangeable
// with in-process sweeps.
func RunnerCell(kind Kind, opts Options, wl string, scale int, src power.Source, cfg sim.Config) runner.Cell {
	if scale <= 0 {
		scale = 1
	}
	return runner.Cell{
		ID:          fmt.Sprintf("%s/%s/%s", kind, wl, src),
		Fingerprint: cellFingerprint(kind, opts, wl, scale, src, cfg),
		Run: func(context.Context) (sim.Result, error) {
			return Run(kind, opts, wl, scale, src, cfg)
		},
	}
}

// cellFingerprint canonically serializes everything that determines a
// cell's simulated outcome: design kind and build options, workload
// and scale, trace source, and every deterministic sim.Config
// parameter. Floats render as IEEE-754 bit patterns so the identity is
// exact. The engine version is mixed in by the runner's Address, not
// here. Cells carrying live hooks (fault plans, observers) are not
// content-addressable and return "" — they always recompute and are
// never journaled.
func cellFingerprint(kind Kind, opts Options, wl string, scale int, src power.Source, cfg sim.Config) string {
	if cfg.FaultPlan != nil || cfg.Obs != nil {
		return ""
	}
	o := opts.normalize()
	fp := fmt.Sprintf(
		"design=%s wl=%s scale=%d trace=%s"+
			" geom=%d/%d/%d cpol=%d dqpol=%d dqcap=%d maxline=%d adaptive=%d/%t swjit=%t"+
			" cyc=%d ie=%016x chunk=%d cap=%016x vmin=%016x vmax=%016x von=%016x margin=%016x eff=%016x inv=%t maxout=%d",
		kind, wl, scale, src,
		o.Geometry.SizeBytes, o.Geometry.Ways, o.Geometry.LineBytes,
		o.CachePolicy, o.DQPolicy, o.DQCap, o.Maxline, o.Adaptive, o.adaptiveSet, o.SoftwareJIT,
		cfg.CyclePS, math.Float64bits(cfg.InstrEnergy), cfg.ComputeChunk,
		math.Float64bits(cfg.CapacitorF), math.Float64bits(cfg.VMin), math.Float64bits(cfg.VMax),
		math.Float64bits(cfg.VonDelta), math.Float64bits(cfg.CheckpointMargin),
		math.Float64bits(cfg.OnHarvestEff), cfg.CheckInvariants, cfg.MaxOutages,
	)
	if ic := cfg.ICache; ic != nil {
		fp += fmt.Sprintf(" icache=%d/%016x/%d/%t/%d/%016x",
			ic.FetchLatency, math.Float64bits(ic.FetchEnergy), ic.CodeLines,
			ic.WarmAcrossOutage, ic.LineFillTime, math.Float64bits(ic.LineFillEnergy))
	} else {
		fp += " icache=nil"
	}
	// The tier changes the result under its own contract, so it is part
	// of the identity — but only appended for non-exact tiers, keeping
	// every pre-tier fingerprint (and thus every existing journal and
	// golden address) unchanged.
	if cfg.Tier != sim.TierExact {
		fp += " tier=" + cfg.Tier.String()
	}
	return fp
}

// gmeanOrNaN is Gmean that propagates NaN/non-positive samples as NaN
// (used where a configuration is infeasible for some design).
func gmeanOrNaN(xs []float64) float64 {
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return math.NaN()
		}
	}
	return stats.Gmean(xs)
}

// speedupTable builds the paper's standard per-benchmark layout: one
// row per benchmark plus gmean(Media), gmean(Mi) and gmean(Total),
// with each column a design's speedup over the NVSRAM baseline.
func speedupTable(title string, names []string, columns []string,
	times func(wl string) (base float64, perCol []float64)) *stats.Table {
	t := stats.NewTable(title, columns...)
	perColRatios := make([][]float64, len(columns))
	mediaSet := map[string]bool{}
	for _, n := range workload.SuiteNames(workload.MediaBench) {
		mediaSet[n] = true
	}
	mediaRatios := make([][]float64, len(columns))
	miRatios := make([][]float64, len(columns))
	for _, wl := range names {
		base, per := times(wl)
		row := make([]float64, len(columns))
		for i, tm := range per {
			r := base / tm
			row[i] = r
			perColRatios[i] = append(perColRatios[i], r)
			if mediaSet[wl] {
				mediaRatios[i] = append(mediaRatios[i], r)
			} else {
				miRatios[i] = append(miRatios[i], r)
			}
		}
		t.Add(wl, row...)
	}
	addG := func(label string, rs [][]float64) {
		row := make([]float64, len(columns))
		for i := range columns {
			if len(rs[i]) > 0 {
				row[i] = stats.Gmean(rs[i])
			}
		}
		t.Add(label, row...)
	}
	addG("gmean(Media)", mediaRatios)
	addG("gmean(Mi)", miRatios)
	addG("gmean(Total)", perColRatios)
	return t
}

// subsetNames intersects the context's workload list with the full
// registry, preserving figure order.
func subsetNames(ctx Context) []string {
	want := map[string]bool{}
	for _, n := range ctx.Workloads {
		want[n] = true
	}
	var out []string
	for _, n := range workload.Names() {
		if want[n] {
			out = append(out, n)
		}
	}
	return out
}
