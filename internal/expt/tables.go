package expt

import (
	"fmt"
	"strings"

	"wlcache/internal/hwcost"
	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/stats"
)

// Table 1, Table 2, the §6.2 hardware-cost analysis and the §6.6
// adaptive-statistics paragraph.

func init() {
	registerExperiment(Experiment{ID: "table1",
		Title: "Table 1: hardware complexity and performance comparison",
		Run:   table1})
	registerExperiment(Experiment{ID: "table2",
		Title: "Table 2: simulation configuration",
		Run:   table2})
	registerExperiment(Experiment{ID: "hwcost",
		Title: "Section 6.2: WL-Cache hardware cost (mini-CACTI, 90 nm)",
		Run:   hwcostReport})
	registerExperiment(Experiment{ID: "adaptstats",
		Title: "Section 6.6: adaptive threshold statistics",
		Run:   adaptStats})
}

func table1(ctx Context) (string, error) {
	var b strings.Builder
	b.WriteString("Table 1: Hardware complexity and performance comparison (qualitative, from the paper,\n")
	b.WriteString("with this reproduction's measured gmean speedup vs NVSRAM(ideal) under Power Trace 1)\n\n")
	rows := []struct{ name, hw, buf, nvreq, perf string }{
		{"WTCache", "None", "No", "No", "Low"},
		{"NVCache", "Low", "No", "Yes (Large)", "Low"},
		{"NVSRAM(full)", "High", "Large", "Yes (Large)", "High"},
		{"NVSRAM(ideal)", "High+", "Large", "Yes (Large)", "High"},
		{"NVSRAM(practical)", "Medium", "Medium", "Yes (Medium)", "Medium"},
		{"ReplayCache", "None", "Small", "No", "Medium"},
		{"WL-Cache", "Low", "Small", "No", "High"},
	}
	fmt.Fprintf(&b, "%-19s %-8s %-12s %-14s %s\n", "design", "HW cost", "energy buf.", "NV cache req.", "perf.")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-19s %-8s %-12s %-14s %s\n", r.name, r.hw, r.buf, r.nvreq, r.perf)
	}
	// Measured column for the designs this repo implements.
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	kinds := []Kind{KindVCacheWT, KindNVCache, KindNVSRAMFull, KindNVSRAMPractical, KindReplay, KindWL}
	labels := []string{"WTCache", "NVCache", "NVSRAM(full)", "NVSRAM(practical)", "ReplayCache", "WL-Cache"}
	var cells []cell
	for _, wl := range names {
		cells = append(cells, cell{kind: KindNVSRAM, wl: wl, src: power.Trace1})
		for _, k := range kinds {
			cells = append(cells, cell{kind: k, wl: wl, src: power.Trace1})
		}
	}
	results, err := runCells(ctx, cells)
	if err != nil {
		return "", err
	}
	per := 1 + len(kinds)
	b.WriteString("\nMeasured (this reproduction, Power Trace 1, gmean speedup vs NVSRAM(ideal)):\n")
	for ki, lbl := range labels {
		var rs []float64
		for i := range names {
			rs = append(rs, float64(results[per*i].ExecTime)/float64(results[per*i+1+ki].ExecTime))
		}
		fmt.Fprintf(&b, "  %-18s %.3f\n", lbl, stats.Gmean(rs))
	}
	b.WriteString("  NVSRAM(ideal)      1.000 (baseline)\n")
	return b.String(), nil
}

func table2(ctx Context) (string, error) {
	cfg := sim.DefaultConfig()
	var b strings.Builder
	b.WriteString("Table 2: simulation configuration (this reproduction)\n\n")
	fmt.Fprintf(&b, "Processor            %.1f GHz, 1 core, in-order\n", 1000.0/float64(cfg.CyclePS))
	b.WriteString("L1 D cache           8 kB, 2-way, 64 B block (volatile SRAM unless noted)\n")
	b.WriteString("Cache latencies      SRAM 0.3 ns hit / 0.1 ns probe; NVRAM 4 ns read / 40 ns write / 3 ns probe\n")
	b.WriteString("NVM (ReRAM)          word read 40 ns, word write 40 ns (12 ns occupancy),\n")
	b.WriteString("                     line read 60 ns, line write 150 ns (tWR)\n")
	fmt.Fprintf(&b, "Energy buffer        %.0f uF capacitor (default)\n", cfg.CapacitorF*1e6)
	fmt.Fprintf(&b, "Vmin/Vmax            %.1f / %.1f V\n", cfg.VMin, cfg.VMax)
	for _, d := range []struct {
		name string
		kind Kind
	}{{"NVCache", KindNVCache}, {"NVSRAM(ideal)", KindNVSRAM}, {"WL-Cache(maxline=6)", KindWL}} {
		design, _ := NewDesign(d.kind, Options{})
		vb := cfg.Vbackup(design.ReserveEnergy())
		fmt.Fprintf(&b, "%-20s Vbackup %.2f V, Von %.2f V (reserve %.0f nJ)\n",
			d.name, vb, cfg.Von(vb), design.ReserveEnergy()*1e9)
	}
	b.WriteString("Power traces         synthetic tr.1 (home RF), tr.2 (office RF), tr.3 (Mementos RF),\n")
	b.WriteString("                     solar, thermal; stability ordering matches the paper\n")
	return b.String(), nil
}

func hwcostReport(ctx Context) (string, error) {
	area, dyn, leak, rows := hwcost.WLCacheCost()
	var b strings.Builder
	b.WriteString("Section 6.2: WL-Cache hardware cost at 90 nm (mini-CACTI analytical model)\n\n")
	for _, r := range rows {
		b.WriteString("  " + r.String() + "\n")
	}
	nvLeak := hwcost.NVCacheLeakMW(8192)
	fmt.Fprintf(&b, "\n  total: area %.4f mm^2, dynamic %.4f nJ/access, leakage %.3f mW\n", area, dyn, leak)
	fmt.Fprintf(&b, "  leakage vs 8 kB NV cache (%.2f mW): %.0f%%\n", nvLeak, 100*leak/nvLeak)
	b.WriteString("\n  paper reports: <= 0.005 mm^2, 0.0008 nJ dynamic, 0.1 mW leak (9%% of NV cache leak)\n")
	return b.String(), nil
}

func adaptStats(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	var b strings.Builder
	b.WriteString("Section 6.6: adaptive WL-Cache statistics (averages over benchmarks)\n\n")
	for _, src := range []power.Source{power.Trace1, power.Trace2} {
		var cells []cell
		for _, wl := range names {
			cells = append(cells, cell{kind: KindWL, wl: wl, src: src})
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		var reconfigs, dirty, wbs, stallFrac, outs float64
		minML, maxML := 99, 0
		for _, r := range results {
			reconfigs += float64(r.Extra.Reconfigs)
			outs += float64(r.Outages)
			if r.Outages > 0 {
				dirty += float64(r.Extra.CheckpointLines) / float64(r.Outages)
				wbs += float64(r.Extra.Writebacks) / float64(r.Outages)
			}
			if r.ExecTime > 0 {
				stallFrac += float64(r.Extra.StallTime) / float64(r.ExecTime)
			}
			if r.Extra.MaxlineNow < minML {
				minML = r.Extra.MaxlineNow
			}
			if r.Extra.MaxlineNow > maxML {
				maxML = r.Extra.MaxlineNow
			}
		}
		n := float64(len(results))
		fmt.Fprintf(&b, "%s: reconfigurations/run %.1f, outages/run %.1f,\n", src, reconfigs/n, outs/n)
		fmt.Fprintf(&b, "     dirty lines per checkpoint %.1f, async write-backs per on-period %.1f,\n", dirty/n, wbs/n)
		fmt.Fprintf(&b, "     pipeline stall share %.2f%% of execution, final maxline range [%d,%d]\n\n",
			100*stallFrac/n, minML, maxML)
	}
	b.WriteString("paper reports: 11/12 reconfigurations, maxline range [2,6], 6/3 and 6/2\n")
	b.WriteString("dirty-lines/write-backs per on-period, stalls <1% of execution\n")
	return b.String(), nil
}
