// Package expt wires workloads, cache designs, power traces and the
// simulator together, and reproduces every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index).
package expt

import (
	"fmt"

	"wlcache/internal/cache"
	"wlcache/internal/core"
	"wlcache/internal/designs"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/power"
	"wlcache/internal/sim"
	"wlcache/internal/workload"
)

// Kind names a cache design configuration.
type Kind string

// The design kinds of the evaluation (§6.1).
const (
	KindNoCache  Kind = "nocache"
	KindVCacheWT Kind = "vcache-wt"
	KindNVCache  Kind = "nvcache-wb"
	KindNVSRAM   Kind = "nvsram"
	// KindNVSRAMFull and KindNVSRAMPractical are the other two NVSRAM
	// variants of §2.3.3 (Table 1 rows).
	KindNVSRAMFull      Kind = "nvsram-full"
	KindNVSRAMPractical Kind = "nvsram-practical"
	// KindWTBuffer is the §3.3 alternative: write-through cache with a
	// CAM-searched write buffer.
	KindWTBuffer Kind = "wt-buffer"
	// KindEagerWB is the §7 related-work design: eager write-back
	// without a dirty bound (Lee et al. [32]).
	KindEagerWB Kind = "eager-wb"
	KindReplay  Kind = "replaycache"
	KindWL      Kind = "wl" // adaptive (static boot-time), FIFO DQ, LRU cache — the default
	KindWLFixed Kind = "wl-fixed"
	KindWLDyn   Kind = "wl-dyn"
	// KindBroken is the negative control: a plain volatile write-back
	// cache with no cache checkpointing. The fault audit must flag it.
	KindBroken Kind = "broken"
)

// FigureKinds are the designs the main figures compare, in plot order.
func FigureKinds() []Kind {
	return []Kind{KindNVCache, KindVCacheWT, KindReplay, KindWL}
}

// AllKinds returns every buildable design kind — the full baseline
// registry (including the broken negative control) followed by the
// WL-Cache variants. The fault audit runs differentially over this.
func AllKinds() []Kind {
	var ks []Kind
	for _, n := range designs.Names() {
		ks = append(ks, Kind(n))
	}
	return append(ks, KindWLFixed, KindWL, KindWLDyn)
}

// Options tune a design build; zero values mean paper defaults.
type Options struct {
	Geometry    cache.Geometry          // default 8 KB 2-way 64 B
	CachePolicy cache.ReplacementPolicy // default LRU
	DQPolicy    core.DQPolicy           // default FIFO
	DQCap       int                     // default 8
	Maxline     int                     // default 6
	Adaptive    core.AdaptiveMode       // overridden per Kind
	// SoftwareJIT swaps the NVFF-based checkpoint hardware for
	// QuickRecall-style software checkpointing to NVM (§2.1).
	SoftwareJIT bool
	adaptiveSet bool
}

// WithAdaptive returns o with an explicit adaptation mode.
func (o Options) WithAdaptive(m core.AdaptiveMode) Options {
	o.Adaptive = m
	o.adaptiveSet = true
	return o
}

func (o Options) normalize() Options {
	if o.Geometry == (cache.Geometry{}) {
		o.Geometry = cache.DefaultGeometry()
	}
	if o.DQCap == 0 {
		o.DQCap = 8
	}
	if o.Maxline == 0 {
		o.Maxline = 6
	}
	return o
}

// NewDesign builds a design of the given kind over a fresh NVM.
func NewDesign(kind Kind, opts Options) (sim.Design, *mem.NVM) {
	opts = opts.normalize()
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	jit := energy.DefaultJITCosts()
	if opts.SoftwareJIT {
		jit = energy.SoftwareJITCosts()
	}
	if d, ok := designs.Build(string(kind), opts.Geometry, opts.CachePolicy, jit, nvm); ok {
		return d, nvm
	}
	switch kind {
	case KindWL, KindWLFixed, KindWLDyn:
		cfg := core.DefaultConfig()
		cfg.JIT = jit
		cfg.Geometry = opts.Geometry
		cfg.CachePolicy = opts.CachePolicy
		cfg.DQPolicy = opts.DQPolicy
		cfg.DQCap = opts.DQCap
		cfg.Maxline = opts.Maxline
		switch {
		case opts.adaptiveSet:
			cfg.Adaptive.Mode = opts.Adaptive
		case kind == KindWLFixed:
			cfg.Adaptive.Mode = core.AdaptOff
		case kind == KindWLDyn:
			cfg.Adaptive.Mode = core.AdaptDynamic
			cfg.Adaptive.MaxMaxline = cfg.DQCap // dynamic raises may use all slots
		default:
			cfg.Adaptive.Mode = core.AdaptStatic
		}
		return core.New(cfg, nvm), nvm
	}
	panic(fmt.Sprintf("expt: unknown design kind %q", kind))
}

// Run executes one (design, workload, trace) cell and returns the
// result. scale <= 0 uses DefaultScale.
func Run(kind Kind, opts Options, wlName string, scale int, src power.Source, simCfg sim.Config) (sim.Result, error) {
	w, ok := workload.ByName(wlName)
	if !ok {
		return sim.Result{}, fmt.Errorf("expt: unknown workload %q", wlName)
	}
	if scale <= 0 {
		scale = DefaultScale
	}
	simCfg.Trace = power.Get(src)
	design, nvm := NewDesign(kind, opts)
	s, err := sim.New(simCfg, design, nvm)
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run(w.Name, func(m isa.Machine) uint32 { return w.Run(m, scale) })
}

// DefaultScale is the input-size multiplier used by the paper-figure
// experiments.
const DefaultScale = 1
