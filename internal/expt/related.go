package expt

import (
	"fmt"
	"strings"

	"wlcache/internal/power"
	"wlcache/internal/sim"
)

// Experiment "related": §7/Table 3 argue that prior eager write-back
// caches are "not applicable to energy harvesting systems" because
// they bound nothing: the JIT reserve must still cover the whole
// cache. This experiment measures that argument — EagerWB cannot even
// charge its reserve on the paper's default 1 uF capacitor, and on a
// capacitor big enough to hold it, WL-Cache still wins.

func init() {
	registerExperiment(Experiment{ID: "related",
		Title: "Section 7/Table 3: eager write-back without a dirty bound (extension)",
		Run:   relatedExperiment})
}

func relatedExperiment(ctx Context) (string, error) {
	ctx = ctx.normalize()
	names := subsetNames(ctx)
	var b strings.Builder
	b.WriteString("Eager write-back (Lee et al. [32]) vs WL-Cache:\n\n")
	for _, cap := range []struct {
		label string
		f     float64
	}{{"1uF (paper default)", 1e-6}, {"22uF", 22e-6}} {
		var cells []cell
		for _, wl := range names {
			for _, k := range []Kind{KindWL, KindEagerWB} {
				cf := cap.f
				cells = append(cells, cell{kind: k, wl: wl, src: power.Trace1,
					simFn: func(s *sim.Config) { s.CapacitorF = cf }, optional: true})
			}
		}
		results, err := runCells(ctx, cells)
		if err != nil {
			return "", err
		}
		var wlT, egT []float64
		egInfeasible := false
		for i := range names {
			if r := results[2*i]; r.ExecTime > 0 {
				wlT = append(wlT, r.Seconds())
			}
			if r := results[2*i+1]; r.ExecTime > 0 {
				egT = append(egT, r.Seconds())
			} else {
				egInfeasible = true
			}
		}
		fmt.Fprintf(&b, "  %s:\n", cap.label)
		if len(wlT) > 0 {
			fmt.Fprintf(&b, "    WL-Cache gmean exec %.3f ms\n", 1e3*gmeanOrNaN(wlT))
		} else {
			b.WriteString("    WL-Cache infeasible\n")
		}
		if egInfeasible {
			b.WriteString("    EagerWB INFEASIBLE: its unbounded dirty set needs a whole-cache\n")
			b.WriteString("    reserve that this capacitor cannot hold below Vmax\n")
		} else {
			fmt.Fprintf(&b, "    EagerWB  gmean exec %.3f ms\n", 1e3*gmeanOrNaN(egT))
		}
	}
	b.WriteString("\n(WL-Cache turns the same eager-cleaning idea into a hard maxline bound,\n")
	b.WriteString("which is what shrinks the reserve to DirtyQueue size.)\n")
	return b.String(), nil
}
