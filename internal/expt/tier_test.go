package expt

import (
	"fmt"
	"math/rand"
	"testing"

	"wlcache/internal/power"
	"wlcache/internal/sim"
)

// checkTierPair runs one cell under both engine tiers and asserts the
// DESIGN.md §16 contract: counts and checksums identical, energies and
// times within FastTolerance, and infeasible cells failing identically.
func checkTierPair(t *testing.T, kind Kind, opts Options, wl string, scale int, src power.Source) {
	t.Helper()
	id := fmt.Sprintf("%s ml=%d dq=%d", kind, opts.Maxline, opts.DQCap)

	exactCfg := sim.DefaultConfig()
	resE, errE := Run(kind, opts, wl, scale, src, exactCfg)

	fastCfg := sim.DefaultConfig()
	fastCfg.Tier = sim.TierFast
	resF, errF := Run(kind, opts, wl, scale, src, fastCfg)

	if (errE != nil) != (errF != nil) {
		t.Errorf("%s/%s/%s: tier disagreement on feasibility: exact err=%v, fast err=%v",
			id, wl, src, errE, errF)
		return
	}
	if errE != nil {
		if errE.Error() != errF.Error() {
			t.Errorf("%s/%s/%s: error text drift between tiers:\n  exact: %v\n  fast:  %v",
				id, wl, src, errE, errF)
		}
		return
	}
	exact := []GoldenCell{{Kind: id, Workload: wl, Trace: string(src), Fields: FlattenResult(resE)}}
	fast := []GoldenCell{{Kind: id, Workload: wl, Trace: string(src), Fields: FlattenResult(resF)}}
	if err := CompareGoldenCellsTol(fast, exact, false, FastTolerance()); err != nil {
		t.Errorf("%s/%s/%s: %v", id, wl, src, err)
	}
}

// TestFastTierAdaptiveReconfiguration pins the hardest fast-tier
// hazard: wl-dyn raises and lowers the checkpoint reserve mid-run via
// ReserveNotifyBinder, which must settle the open window and
// invalidate the per-block memo (stale Vbackup thresholds would
// otherwise leak into batched windows). Trace3 is the outage-heaviest
// trace (~121 outages), none is the zero-outage degenerate case.
func TestFastTierAdaptiveReconfiguration(t *testing.T) {
	for _, wl := range []string{"sha", "adpcmencode"} {
		for _, src := range []power.Source{power.None, power.Trace1, power.Trace3} {
			checkTierPair(t, "wl-dyn", Options{}, wl, 1, src)
		}
	}
}

// TestFastTierZeroPowerAndOutageHeavy sweeps every design kind through
// the two power extremes: uninterrupted power (the untraced fast path,
// no capacitor at all) and the most unstable trace (outage handling
// re-syncs the exact voltage-space state machine on every failure).
func TestFastTierZeroPowerAndOutageHeavy(t *testing.T) {
	for _, kind := range AllKinds() {
		for _, src := range []power.Source{power.None, power.Trace3} {
			checkTierPair(t, kind, Options{}, "sha", 1, src)
		}
	}
}

// TestFastTierPropertyRandomCells cross-validates the fast tier on a
// deterministic pseudo-random sample of design × workload × trace ×
// parameter-grid cells that the committed golden matrix does not pin:
// extra workloads, non-default maxline and DQ capacities. The seed is
// fixed so failures reproduce.
func TestFastTierPropertyRandomCells(t *testing.T) {
	kinds := AllKinds()
	workloads := []string{"sha", "adpcmencode", "adpcmdecode", "gsmencode", "qsort", "dijkstra"}
	sources := []power.Source{power.None, power.Trace1, power.Trace2, power.Trace3, power.Solar, power.Thermal}
	dqcaps := []int{0, 4, 16}

	n := 24
	if testing.Short() {
		n = 6
	}
	rng := rand.New(rand.NewSource(0x77a57e11))
	for i := 0; i < n; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		wl := workloads[rng.Intn(len(workloads))]
		src := sources[rng.Intn(len(sources))]
		// maxline must stay within the DQ capacity (default 8).
		dq := dqcaps[rng.Intn(len(dqcaps))]
		cap := dq
		if cap == 0 {
			cap = 8
		}
		opts := Options{Maxline: 1 + rng.Intn(cap), DQCap: dq}
		checkTierPair(t, kind, opts, wl, 1, src)
	}
}
