// Package cache implements the set-associative cache array shared by
// every cache design in this repository: a value-accurate tag+data
// array with configurable geometry and FIFO or LRU replacement.
//
// The array is policy-free with respect to *write* handling: designs
// (write-through, write-back, WL-Cache, ...) decide when lines become
// dirty and when they are written back. The array only tracks state
// and picks victims.
package cache

import "fmt"

// ReplacementPolicy selects how a victim way is chosen within a set.
type ReplacementPolicy uint8

const (
	// LRU evicts the least recently used line (paper default, §6.1).
	LRU ReplacementPolicy = iota
	// FIFO evicts the oldest-filled line (§6.5 sensitivity).
	FIFO
)

// String returns "LRU" or "FIFO".
func (p ReplacementPolicy) String() string {
	if p == LRU {
		return "LRU"
	}
	return "FIFO"
}

// Geometry describes a cache organization.
type Geometry struct {
	SizeBytes int // total capacity
	Ways      int // associativity (1 = direct mapped)
	LineBytes int // block size
}

// DefaultGeometry is the paper's L1D: 8 KB, 2-way, 64 B lines.
func DefaultGeometry() Geometry {
	return Geometry{SizeBytes: 8 * 1024, Ways: 2, LineBytes: 64}
}

// Sets returns the number of sets.
func (g Geometry) Sets() int { return g.SizeBytes / (g.Ways * g.LineBytes) }

// LineWords returns the number of 32-bit words per line.
func (g Geometry) LineWords() int { return g.LineBytes / 4 }

// Lines returns the total number of lines.
func (g Geometry) Lines() int { return g.SizeBytes / g.LineBytes }

// Validate reports a configuration error, if any.
func (g Geometry) Validate() error {
	switch {
	case g.SizeBytes <= 0 || g.Ways <= 0 || g.LineBytes <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", g)
	case g.LineBytes%4 != 0:
		return fmt.Errorf("cache: line size %d not a multiple of the word size", g.LineBytes)
	case g.SizeBytes%(g.Ways*g.LineBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)", g.SizeBytes, g.Ways, g.LineBytes)
	case (g.Sets() & (g.Sets() - 1)) != 0:
		return fmt.Errorf("cache: set count %d not a power of two", g.Sets())
	case (g.LineBytes & (g.LineBytes - 1)) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", g.LineBytes)
	}
	return nil
}

// Line is one cache line: tag+state metadata plus a value-accurate
// copy of the line's data.
type Line struct {
	Tag     uint32
	Valid   bool
	Dirty   bool
	Data    []uint32
	lastUse uint64 // LRU timestamp
	fillSeq uint64 // FIFO timestamp
}

// LastUse returns the line's logical last-access timestamp (monotonic
// per array); used by DirtyQueue LRU victim selection.
func (l *Line) LastUse() uint64 { return l.lastUse }

// Array is the tag+data array.
type Array struct {
	geo    Geometry
	policy ReplacementPolicy
	sets   [][]Line
	clock  uint64 // logical access counter for LRU/FIFO ordering

	setShift uint32
	setMask  uint32
	offMask  uint32
	setBits  uint32 // trailingSetBits(setMask), precomputed
	tagShift uint32 // setShift + setBits, precomputed
}

// NewArray builds an empty cache array. It panics on invalid geometry
// (a configuration bug, not a runtime condition).
func NewArray(g Geometry, p ReplacementPolicy) *Array {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	a := &Array{geo: g, policy: p}
	// One backing slab for every line's data (2 allocations for the
	// whole array instead of Lines()+Sets()): better locality and far
	// less allocator work when experiments construct designs per cell.
	lines := make([]Line, g.Lines())
	slab := make([]uint32, g.Lines()*g.LineWords())
	for i := range lines {
		lines[i].Data = slab[i*g.LineWords() : (i+1)*g.LineWords() : (i+1)*g.LineWords()]
	}
	a.sets = make([][]Line, g.Sets())
	for i := range a.sets {
		a.sets[i] = lines[i*g.Ways : (i+1)*g.Ways : (i+1)*g.Ways]
	}
	a.offMask = uint32(g.LineBytes - 1)
	a.setShift = uint32(log2(g.LineBytes))
	a.setMask = uint32(g.Sets() - 1)
	a.setBits = trailingSetBits(a.setMask)
	a.tagShift = a.setShift + a.setBits
	return a
}

// Geometry returns the array's geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Policy returns the replacement policy.
func (a *Array) Policy() ReplacementPolicy { return a.policy }

// LineAddr returns the base byte address of the line containing addr.
func (a *Array) LineAddr(addr uint32) uint32 { return addr &^ a.offMask }

// setIndex returns the set index for addr.
func (a *Array) setIndex(addr uint32) uint32 { return (addr >> a.setShift) & a.setMask }

// tagOf returns the tag for addr.
func (a *Array) tagOf(addr uint32) uint32 { return addr >> a.tagShift }

// Lookup finds the line containing addr. It returns the line and true
// on a hit. Lookup does not touch replacement state; call Touch on a
// hit that should refresh recency.
func (a *Array) Lookup(addr uint32) (*Line, bool) {
	set := a.sets[a.setIndex(addr)]
	tag := a.tagOf(addr)
	for w := range set {
		if set[w].Valid && set[w].Tag == tag {
			return &set[w], true
		}
	}
	return nil, false
}

// Touch refreshes the recency of the line containing addr (LRU state).
func (a *Array) Touch(ln *Line) {
	a.clock++
	ln.lastUse = a.clock
}

// Victim returns the line that would be replaced to make room for
// addr: an invalid way if present, otherwise the policy's choice.
func (a *Array) Victim(addr uint32) *Line {
	set := a.sets[a.setIndex(addr)]
	for w := range set {
		if !set[w].Valid {
			return &set[w]
		}
	}
	best := &set[0]
	for w := 1; w < len(set); w++ {
		ln := &set[w]
		switch a.policy {
		case LRU:
			if ln.lastUse < best.lastUse {
				best = ln
			}
		case FIFO:
			if ln.fillSeq < best.fillSeq {
				best = ln
			}
		}
	}
	return best
}

// Fill installs the line for addr into victim ln with the given data,
// marking it valid+clean and resetting replacement state. Filling an
// address that is already cached in a different way is a caller bug
// (callers must Lookup first) and panics.
func (a *Array) Fill(ln *Line, addr uint32, data []uint32) {
	set := a.sets[a.setIndex(addr)]
	for w := range set {
		if other := &set[w]; other != ln && other.Valid && other.Tag == a.tagOf(addr) {
			panic("cache: Fill would duplicate a resident line; Lookup before filling")
		}
	}
	a.clock++
	ln.Tag = a.tagOf(addr)
	ln.Valid = true
	ln.Dirty = false
	copy(ln.Data, data)
	ln.lastUse = a.clock
	ln.fillSeq = a.clock
}

// VictimAddr reconstructs the base byte address of a valid line given
// the address it shares a set with. It panics if ln is invalid.
func (a *Array) VictimAddr(ln *Line, likeAddr uint32) uint32 {
	if !ln.Valid {
		panic("cache: VictimAddr on invalid line")
	}
	return ln.Tag<<a.tagShift | a.setIndex(likeAddr)<<a.setShift
}

// WordIndex returns the word offset of addr within its line.
func (a *Array) WordIndex(addr uint32) int { return int(addr&a.offMask) >> 2 }

// InvalidateAll drops every line (volatile cache losing power).
func (a *Array) InvalidateAll() {
	for s := range a.sets {
		for w := range a.sets[s] {
			a.sets[s][w].Valid = false
			a.sets[s][w].Dirty = false
		}
	}
}

// DirtyCount returns the number of valid dirty lines (O(lines); used by
// invariant checks and tests, not on the fast path).
func (a *Array) DirtyCount() int {
	n := 0
	for s := range a.sets {
		for w := range a.sets[s] {
			if a.sets[s][w].Valid && a.sets[s][w].Dirty {
				n++
			}
		}
	}
	return n
}

// ForEachLine invokes fn for every valid line with its base address.
func (a *Array) ForEachLine(fn func(addr uint32, ln *Line)) {
	for s := range a.sets {
		for w := range a.sets[s] {
			ln := &a.sets[s][w]
			if ln.Valid {
				addr := ln.Tag<<a.tagShift | uint32(s)<<a.setShift
				fn(addr, ln)
			}
		}
	}
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func trailingSetBits(mask uint32) uint32 {
	bits := uint32(0)
	for mask != 0 {
		bits++
		mask >>= 1
	}
	return bits
}
