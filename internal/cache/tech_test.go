package cache

import (
	"testing"

	"wlcache/internal/mem"
)

func TestTechDefaults(t *testing.T) {
	sram, nv := SRAMTech(), NVRAMTech()
	if sram.HitLatency >= nv.HitLatency {
		t.Fatal("SRAM must read faster than the NV cache")
	}
	if sram.WriteEnergy >= nv.WriteEnergy {
		t.Fatal("SRAM writes must be cheaper than NV cache writes")
	}
	if sram.Leakage >= nv.Leakage {
		t.Fatal("paper: NV cache leaks more than SRAM at runtime")
	}
	for _, tech := range []Tech{sram, nv} {
		if tech.ReplacementEnergy[LRU] <= tech.ReplacementEnergy[FIFO] {
			t.Fatal("LRU bookkeeping must cost more than FIFO (§6.5)")
		}
	}
}

func TestDurableEqualNoOverlay(t *testing.T) {
	golden, image := mem.NewStore(), mem.NewStore()
	golden.Write(0x100, 1)
	if err := DurableEqual(golden, image, nil); err == nil {
		t.Fatal("missing write not detected")
	}
	image.Write(0x100, 1)
	if err := DurableEqual(golden, image, nil); err != nil {
		t.Fatalf("consistent state reported as diverged: %v", err)
	}
}

func TestDurableEqualWithOverlay(t *testing.T) {
	golden, image := mem.NewStore(), mem.NewStore()
	// The architectural value lives only in a (non-volatile) cache
	// line; main memory is stale.
	golden.Write(0x1000, 42)
	image.Write(0x1000, 7) // stale

	arr := NewArray(DefaultGeometry(), LRU)
	data := make([]uint32, arr.Geometry().LineWords())
	data[0] = 42
	v := arr.Victim(0x1000)
	arr.Fill(v, 0x1000, data)

	if err := DurableEqual(golden, image, nil); err == nil {
		t.Fatal("stale NVM alone must fail the check")
	}
	if err := DurableEqual(golden, image, arr); err != nil {
		t.Fatalf("overlayed cache should satisfy durability: %v", err)
	}
	// The overlay must not mutate the underlying image.
	if image.Read(0x1000) != 7 {
		t.Fatal("DurableEqual mutated the NVM image")
	}
}
