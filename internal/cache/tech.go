package cache

import (
	"fmt"

	"wlcache/internal/mem"
)

// Tech holds the per-technology timing/energy parameters of a cache
// array plus the bookkeeping overhead of its replacement policy. Times
// are picoseconds, energies joules, leakage watts.
type Tech struct {
	HitLatency   int64 // data access on a hit (read)
	WriteLatency int64 // data update on a write hit
	ProbeLatency int64 // tag check on a miss

	ReadEnergy  float64 // per hit read
	WriteEnergy float64 // per word write
	ProbeEnergy float64 // per miss probe
	Leakage     float64 // watts while powered

	// ReplacementEnergy is the per-access bookkeeping energy of the
	// replacement policy (LRU tracks recency on every access and is
	// costlier than FIFO; §6.5).
	ReplacementEnergy map[ReplacementPolicy]float64
}

// SRAMTech returns the Table 2 volatile SRAM L1 parameters.
func SRAMTech() Tech {
	return Tech{
		HitLatency:   300, // 0.3 ns
		WriteLatency: 300,
		ProbeLatency: 100, // 0.1 ns
		ReadEnergy:   10e-12,
		WriteEnergy:  12e-12,
		ProbeEnergy:  4e-12,
		Leakage:      0.3e-3,
		ReplacementEnergy: map[ReplacementPolicy]float64{
			LRU:  2e-12,
			FIFO: 0.5e-12,
		},
	}
}

// NVRAMTech returns the Table 2 non-volatile cache parameters
// (NVCache-WB): reads at 1.6 ns, but writes pay the ReRAM cell write.
func NVRAMTech() Tech {
	return Tech{
		HitLatency:   4000,  // 4 ns array read
		WriteLatency: 40000, // 40 ns cell write
		ProbeLatency: 3000,  // 3 ns
		ReadEnergy:   100e-12,
		WriteEnergy:  1000e-12,
		ProbeEnergy:  75e-12,
		Leakage:      1.1e-3,
		ReplacementEnergy: map[ReplacementPolicy]float64{
			LRU:  2e-12,
			FIFO: 0.5e-12,
		},
	}
}

// DurableEqual verifies whole-system persistence: the durable view of
// memory (the NVM image, optionally overlaid with the contents of a
// cache array that itself survives power loss) must equal the golden
// architectural image. It returns nil when consistent.
//
// Designs whose cache is volatile and checkpointed to NVM pass
// overlay=nil: after a JIT checkpoint the NVM image alone must be
// complete. NVCache-WB (non-volatile array) and NVSRAM (array
// checkpointed to an NV twin) pass their array as overlay.
func DurableEqual(golden *mem.Store, image *mem.Store, overlay *Array) error {
	view := image
	if overlay != nil {
		view = image.Clone()
		overlay.ForEachLine(func(addr uint32, ln *Line) {
			view.WriteLine(addr, ln.Data)
		})
	}
	if d := golden.FirstDiff(view); d != "" {
		return fmt.Errorf("durable state diverged from architectural state: %s", d)
	}
	return nil
}
