package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	good := []Geometry{
		DefaultGeometry(),
		{SizeBytes: 128, Ways: 1, LineBytes: 64},
		{SizeBytes: 4096, Ways: 4, LineBytes: 32},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", g, err)
		}
	}
	bad := []Geometry{
		{},
		{SizeBytes: 8192, Ways: 0, LineBytes: 64},
		{SizeBytes: 8192, Ways: 2, LineBytes: 6},  // not multiple of word
		{SizeBytes: 8192, Ways: 3, LineBytes: 64}, // not divisible
		{SizeBytes: 8192, Ways: 2, LineBytes: 48}, // line not power of 2
		{SizeBytes: 6144, Ways: 2, LineBytes: 64}, // sets not power of 2
		{SizeBytes: -64, Ways: 2, LineBytes: 64},  // negative
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", g)
		}
	}
}

func TestGeometryDerived(t *testing.T) {
	g := DefaultGeometry()
	if g.Sets() != 64 {
		t.Fatalf("Sets = %d, want 64", g.Sets())
	}
	if g.Lines() != 128 {
		t.Fatalf("Lines = %d, want 128", g.Lines())
	}
	if g.LineWords() != 16 {
		t.Fatalf("LineWords = %d, want 16", g.LineWords())
	}
}

func fillLine(a *Array, addr uint32, seed uint32) {
	data := make([]uint32, a.Geometry().LineWords())
	for i := range data {
		data[i] = seed + uint32(i)
	}
	if ln, hit := a.Lookup(addr); hit {
		copy(ln.Data, data) // already resident; refresh contents
		return
	}
	v := a.Victim(addr)
	a.Fill(v, a.LineAddr(addr), data)
}

func TestArrayHitMiss(t *testing.T) {
	a := NewArray(DefaultGeometry(), LRU)
	if _, hit := a.Lookup(0x1000); hit {
		t.Fatal("hit in empty cache")
	}
	fillLine(a, 0x1000, 100)
	ln, hit := a.Lookup(0x1004)
	if !hit {
		t.Fatal("miss after fill")
	}
	if ln.Data[a.WordIndex(0x1004)] != 101 {
		t.Fatalf("data = %d, want 101", ln.Data[1])
	}
	// A different set must miss.
	if _, hit := a.Lookup(0x1040); hit {
		t.Fatal("hit in a different set")
	}
	// Same set, different tag must miss.
	if _, hit := a.Lookup(0x1000 + 8192); hit {
		t.Fatal("hit with different tag")
	}
}

func TestArrayLRUEviction(t *testing.T) {
	a := NewArray(DefaultGeometry(), LRU) // 2 ways
	// Three lines mapping to the same set (stride = size/ways = 4 KB).
	l0, l1, l2 := uint32(0x0000), uint32(0x1000), uint32(0x2000)
	fillLine(a, l0, 0)
	fillLine(a, l1, 16)
	// Touch l0 so l1 becomes LRU.
	ln, _ := a.Lookup(l0)
	a.Touch(ln)
	fillLine(a, l2, 32)
	if _, hit := a.Lookup(l1); hit {
		t.Fatal("LRU line survived eviction")
	}
	if _, hit := a.Lookup(l0); !hit {
		t.Fatal("MRU line was evicted")
	}
}

func TestArrayFIFOEviction(t *testing.T) {
	a := NewArray(DefaultGeometry(), FIFO)
	l0, l1, l2 := uint32(0x0000), uint32(0x1000), uint32(0x2000)
	fillLine(a, l0, 0)
	fillLine(a, l1, 16)
	// Touching must NOT matter for FIFO.
	ln, _ := a.Lookup(l0)
	a.Touch(ln)
	fillLine(a, l2, 32)
	if _, hit := a.Lookup(l0); hit {
		t.Fatal("FIFO: oldest line survived eviction despite touch")
	}
	if _, hit := a.Lookup(l1); !hit {
		t.Fatal("FIFO: younger line was evicted")
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	a := NewArray(DefaultGeometry(), LRU)
	fillLine(a, 0x1000, 0)
	v := a.Victim(0x1000)
	if v.Valid {
		t.Fatal("victim should be the invalid way while one is free")
	}
}

func TestVictimAddrRoundTrip(t *testing.T) {
	a := NewArray(DefaultGeometry(), LRU)
	for _, addr := range []uint32{0x0, 0x1040, 0x7fc0, 0x23480, 0xfffc0} {
		fillLine(a, addr, addr)
		ln, hit := a.Lookup(addr)
		if !hit {
			t.Fatalf("miss after fill at %#x", addr)
		}
		if got := a.VictimAddr(ln, addr); got != a.LineAddr(addr) {
			t.Fatalf("VictimAddr = %#x, want %#x", got, a.LineAddr(addr))
		}
	}
}

func TestInvalidateAllAndDirtyCount(t *testing.T) {
	a := NewArray(DefaultGeometry(), LRU)
	fillLine(a, 0x1000, 0)
	fillLine(a, 0x2040, 0)
	ln, _ := a.Lookup(0x1000)
	ln.Dirty = true
	if a.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d, want 1", a.DirtyCount())
	}
	a.InvalidateAll()
	if a.DirtyCount() != 0 {
		t.Fatal("dirty lines survived InvalidateAll")
	}
	if _, hit := a.Lookup(0x1000); hit {
		t.Fatal("line survived InvalidateAll")
	}
}

func TestForEachLine(t *testing.T) {
	a := NewArray(DefaultGeometry(), LRU)
	addrs := []uint32{0x1000, 0x2040, 0x3080}
	for _, ad := range addrs {
		fillLine(a, ad, ad)
	}
	seen := map[uint32]bool{}
	a.ForEachLine(func(addr uint32, ln *Line) { seen[addr] = true })
	for _, ad := range addrs {
		if !seen[ad] {
			t.Fatalf("ForEachLine missed %#x", ad)
		}
	}
	if len(seen) != len(addrs) {
		t.Fatalf("ForEachLine visited %d lines, want %d", len(seen), len(addrs))
	}
}

func TestDirectMappedArray(t *testing.T) {
	g := Geometry{SizeBytes: 1024, Ways: 1, LineBytes: 64}
	a := NewArray(g, LRU)
	fillLine(a, 0x0, 1)
	fillLine(a, 0x400, 2) // conflicts in direct-mapped 1 KB
	if _, hit := a.Lookup(0x0); hit {
		t.Fatal("conflicting line survived in direct-mapped cache")
	}
	if _, hit := a.Lookup(0x400); !hit {
		t.Fatal("new line absent")
	}
}

// Property: Lookup after Fill always hits with the filled data, and
// VictimAddr always reconstructs the filled address.
func TestArrayQuickFillLookup(t *testing.T) {
	a := NewArray(DefaultGeometry(), LRU)
	f := func(addr uint32, seed uint32) bool {
		addr &^= 3
		fillLine(a, addr, seed)
		ln, hit := a.Lookup(addr)
		if !hit {
			return false
		}
		if ln.Data[a.WordIndex(addr)] != seed+uint32(a.WordIndex(addr)) {
			return false
		}
		return a.VictimAddr(ln, addr) == a.LineAddr(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache never holds two lines with the same (set, tag).
func TestArrayQuickNoDuplicates(t *testing.T) {
	a := NewArray(Geometry{SizeBytes: 1024, Ways: 2, LineBytes: 64}, FIFO)
	f := func(addrs []uint32) bool {
		for _, ad := range addrs {
			fillLine(a, ad&0xffff, ad)
		}
		seen := map[uint32]int{}
		a.ForEachLine(func(addr uint32, ln *Line) { seen[addr]++ })
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
