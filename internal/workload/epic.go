package workload

import "wlcache/internal/isa"

// epic (MediaBench): Efficient Pyramid Image Coder — a Laplacian
// pyramid built with a separable 5-tap binomial filter, band
// quantization and run-length entropy packing, the structure of the
// original coder (filter -> downsample -> difference -> quantize).

const (
	epicW      = 128
	epicH      = 128
	epicLevels = 4
)

// epicFilterRow applies the [1 4 6 4 1]/16 kernel horizontally.
func epicFilterRow(e *Env, src Arr, w, h int, dst Arr) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			xm2, xm1 := maxInt(x-2, 0), maxInt(x-1, 0)
			xp1, xp2 := minInt(x+1, w-1), minInt(x+2, w-1)
			v := src.LoadI(y*w+xm2) + 4*src.LoadI(y*w+xm1) + 6*src.LoadI(y*w+x) +
				4*src.LoadI(y*w+xp1) + src.LoadI(y*w+xp2)
			dst.StoreI(y*w+x, v>>4)
			e.Compute(12)
		}
	}
}

// epicFilterCol applies the kernel vertically.
func epicFilterCol(e *Env, src Arr, w, h int, dst Arr) {
	for y := 0; y < h; y++ {
		ym2, ym1 := maxInt(y-2, 0), maxInt(y-1, 0)
		yp1, yp2 := minInt(y+1, h-1), minInt(y+2, h-1)
		for x := 0; x < w; x++ {
			v := src.LoadI(ym2*w+x) + 4*src.LoadI(ym1*w+x) + 6*src.LoadI(y*w+x) +
				4*src.LoadI(yp1*w+x) + src.LoadI(yp2*w+x)
			dst.StoreI(y*w+x, v>>4)
			e.Compute(12)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func epicRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	img := e.Alloc(epicW * epicH)
	smooth := e.Alloc(epicW * epicH)
	tmp := e.Alloc(epicW * epicH)
	down := e.Alloc(epicW * epicH / 4)
	stream := e.Alloc(epicW * epicH)

	h := uint32(0)
	for frame := 0; frame < scale; frame++ {
		// Synthesize the input image.
		r := newRNG(0xe91c + uint32(frame))
		for y := 0; y < epicH; y++ {
			for x := 0; x < epicW; x++ {
				v := int32(((x*x + y*y) >> 5 & 0xff) + r.intn(9))
				img.StoreI(y*epicW+x, v)
				e.Compute(5)
			}
		}

		si := 0
		emit := func(v int32) {
			if si < stream.Len() {
				stream.StoreI(si, v)
				si++
			}
		}
		w, hh := epicW, epicH
		cur := img
		for level := 0; level < epicLevels; level++ {
			// Low-pass the current level.
			epicFilterRow(e, cur, w, hh, tmp)
			epicFilterCol(e, tmp, w, hh, smooth)
			// Laplacian band = current - smooth; quantize + RLE.
			q := int32(4 << level) // coarser at finer levels
			run := int32(0)
			for i := 0; i < w*hh; i++ {
				d := (cur.LoadI(i) - smooth.LoadI(i)) / q
				if d == 0 {
					run++
				} else {
					emit(run)
					emit(d)
					run = 0
				}
				e.Compute(6)
			}
			emit(-1)
			// Downsample the smooth image 2x for the next level.
			w2, h2 := w/2, hh/2
			for y := 0; y < h2; y++ {
				for x := 0; x < w2; x++ {
					down.StoreI(y*w2+x, smooth.LoadI((2*y)*w+2*x))
					e.Compute(4)
				}
			}
			// Copy down -> cur for the next iteration.
			for i := 0; i < w2*h2; i++ {
				cur.StoreI(i, down.LoadI(i))
				e.Compute(2)
			}
			w, hh = w2, h2
		}
		// Emit the final low-pass residue.
		for i := 0; i < w*hh; i++ {
			emit(cur.LoadI(i))
			e.Compute(2)
		}
		h = mix(h, uint32(si))
		h = mix(h, stream.Slice(0, si).Checksum(h))
	}
	return h
}

// epicDecode reconstructs an image from an EPIC stream (the "unepic"
// half of the original benchmark pair). It replays the levels in
// encoding order: for each level it decodes the RLE-quantized
// Laplacian band, and at the end reads the final low-pass residue;
// reconstruction then walks back up the pyramid (upsample + add band).
// Used by the round-trip validation tests; the paper's benchmark list
// contains only the encoder.
func epicDecode(e *Env, stream Arr, words int, out Arr) {
	si := 0
	read := func() int32 {
		if si >= words {
			return 0
		}
		v := stream.LoadI(si)
		si++
		return v
	}
	// Decode every level's band into its own region of a scratch
	// buffer sized like the full image.
	type level struct {
		w, h int
		band Arr
	}
	var levels []level
	w, h := epicW, epicH
	for l := 0; l < epicLevels; l++ {
		band := e.Alloc(w * h)
		q := int32(4 << l)
		i := 0
		sawEnd := false
		for i < w*h {
			run := read()
			if run == -1 {
				sawEnd = true
				break
			}
			val := read()
			for r := int32(0); r < run && i < w*h; r++ {
				band.StoreI(i, 0)
				i++
			}
			if i < w*h {
				band.StoreI(i, val*q)
				i++
			}
			e.Compute(6)
		}
		for ; i < w*h; i++ {
			band.StoreI(i, 0)
		}
		// Consume up to the end-of-band marker when the band filled up
		// before the encoder's trailing -1 was read.
		for !sawEnd && si < words {
			if read() == -1 {
				sawEnd = true
			}
		}
		levels = append(levels, level{w, h, band})
		w, h = w/2, h/2
	}
	// Final low-pass residue.
	low := e.Alloc(w * h)
	for i := 0; i < w*h; i++ {
		low.StoreI(i, read())
		e.Compute(2)
	}
	// Walk back up: bilinearly upsample the low image 2x (a cheap
	// synthesis filter approximating the encoder's smoothing) and add
	// the band.
	cur := low
	cw, ch := w, h
	for l := epicLevels - 1; l >= 0; l-- {
		lw, lh := levels[l].w, levels[l].h
		up := e.Alloc(lw * lh)
		sample := func(y, x int) int32 {
			return cur.LoadI(minInt(y, ch-1)*cw + minInt(x, cw-1))
		}
		for y := 0; y < lh; y++ {
			for x := 0; x < lw; x++ {
				y0, x0 := y/2, x/2
				v := sample(y0, x0)
				switch {
				case y%2 == 1 && x%2 == 1:
					v = (sample(y0, x0) + sample(y0, x0+1) + sample(y0+1, x0) + sample(y0+1, x0+1)) / 4
				case y%2 == 1:
					v = (sample(y0, x0) + sample(y0+1, x0)) / 2
				case x%2 == 1:
					v = (sample(y0, x0) + sample(y0, x0+1)) / 2
				}
				up.StoreI(y*lw+x, v+levels[l].band.LoadI(y*lw+x))
				e.Compute(10)
			}
		}
		cur, cw, ch = up, lw, lh
	}
	for i := 0; i < epicW*epicH; i++ {
		out.StoreI(i, cur.LoadI(i))
		e.Compute(2)
	}
}
