package workload

import "wlcache/internal/isa"

// susancorners / susanedges (MediaBench/MiBench image): the SUSAN
// low-level vision algorithm — for every pixel, count the pixels in a
// circular mask whose brightness is similar to the nucleus (the USAN
// area) via a lookup table, then threshold against the geometric
// limit to flag corners/edges. The image and the brightness LUT live
// in simulated memory.

const (
	susanW          = 128
	susanH          = 96
	susanBrightness = 20 // similarity threshold
)

// susanMask is the classic 37-pixel circular mask (offsets dx, dy).
var susanMask = [][2]int{
	{-1, -3}, {0, -3}, {1, -3},
	{-2, -2}, {-1, -2}, {0, -2}, {1, -2}, {2, -2},
	{-3, -1}, {-2, -1}, {-1, -1}, {0, -1}, {1, -1}, {2, -1}, {3, -1},
	{-3, 0}, {-2, 0}, {-1, 0}, {1, 0}, {2, 0}, {3, 0},
	{-3, 1}, {-2, 1}, {-1, 1}, {0, 1}, {1, 1}, {2, 1}, {3, 1},
	{-2, 2}, {-1, 2}, {0, 2}, {1, 2}, {2, 2},
	{-1, 3}, {0, 3}, {1, 3},
}

// susanImage synthesizes a grayscale test card: gradient background
// with rectangles and diagonal lines so corners and edges exist.
func susanImage(e *Env, img Arr, seed uint32) {
	r := newRNG(seed)
	for y := 0; y < susanH; y++ {
		for x := 0; x < susanW; x++ {
			v := uint32(((x*2 + y) & 0xff) / 4 * 2)
			img.Store(y*susanW+x, v)
			e.Compute(4)
		}
	}
	// Bright rectangles.
	for b := 0; b < 10; b++ {
		x0, y0 := r.intn(susanW-24), r.intn(susanH-24)
		w, hh := 8+r.intn(16), 8+r.intn(16)
		lum := uint32(120 + r.intn(120))
		for y := y0; y < y0+hh; y++ {
			for x := x0; x < x0+w; x++ {
				img.Store(y*susanW+x, lum)
				e.Compute(2)
			}
		}
	}
}

// susanLUT builds the exp-like brightness similarity table the C code
// precomputes: lut[d+256] = 100 * exp(-(d/t)^6), in integer form.
func susanLUT(e *Env, lut Arr) {
	for d := -256; d < 256; d++ {
		ad := d
		if ad < 0 {
			ad = -ad
		}
		// Integer approximation of 100*exp(-(d/t)^6).
		x := (ad * 100) / susanBrightness
		var v uint32
		switch {
		case x < 80:
			v = 100
		case x < 100:
			v = uint32(100 - (x-80)*4)
		case x < 120:
			v = uint32(20 - (x - 100))
		default:
			v = 0
		}
		lut.Store(d+256, v)
		e.Compute(6)
	}
}

// susanCore computes the USAN response for every interior pixel.
// maxArea is the geometric threshold (smaller for corners).
func susanCore(e *Env, img, lut, resp Arr, maxArea uint32) uint32 {
	h := uint32(2166136261)
	for y := 3; y < susanH-3; y++ {
		for x := 3; x < susanW-3; x++ {
			nucleus := int(img.Load(y*susanW + x))
			area := uint32(0)
			for _, off := range susanMask {
				p := int(img.Load((y+off[1])*susanW + x + off[0]))
				area += lut.Load(p - nucleus + 256)
				e.Compute(5)
			}
			var r uint32
			if area < maxArea {
				r = maxArea - area // USAN response
			}
			resp.Store(y*susanW+x, r)
			h = mix(h, r)
			e.Compute(6)
		}
	}
	return h
}

func susanRun(m isa.Machine, scale int, maxArea uint32, seed uint32) uint32 {
	e := NewEnv(m)
	img := e.Alloc(susanW * susanH)
	lut := e.Alloc(512)
	resp := e.Alloc(susanW * susanH)
	susanLUT(e, lut)
	h := uint32(0)
	for frame := 0; frame < scale; frame++ {
		susanImage(e, img, seed+uint32(frame)*0x9e37)
		h = mix(h, susanCore(e, img, lut, resp, maxArea))
	}
	return mix(h, resp.Checksum(h))
}

func susanCornersRun(m isa.Machine, scale int) uint32 {
	// Corners: geometric threshold at half the mask area.
	return susanRun(m, scale, 37*100/2, 0x5c0a)
}

func susanEdgesRun(m isa.Machine, scale int) uint32 {
	// Edges: threshold at 3/4 of the mask area.
	return susanRun(m, scale, 37*100*3/4, 0x5ed6)
}
