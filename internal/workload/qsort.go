package workload

import "wlcache/internal/isa"

// qsort (MiBench): in-place quicksort of an integer array with a
// median-of-three pivot and insertion sort below a small threshold,
// faithful to the classic C qsort workload's access pattern.

const qsortElemsPerScale = 12288

func qsortRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	n := qsortElemsPerScale * scale
	a := e.Alloc(n)
	r := newRNG(0x9507)
	for i := 0; i < n; i++ {
		a.Store(i, r.next())
		e.Compute(3)
	}
	quicksort(e, a, 0, n-1)
	// Fold sortedness verification into the digest.
	h := uint32(2166136261)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		v := a.Load(i)
		if v < prev {
			h = mix(h, 0xdeadbeef) // corruption marker
		}
		prev = v
		h = mix(h, v)
		e.Compute(4)
	}
	return h
}

func quicksort(e *Env, a Arr, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			insertionSort(e, a, lo, hi)
			return
		}
		p := partition(e, a, lo, hi)
		// Recurse into the smaller half to bound stack depth.
		if p-lo < hi-p {
			quicksort(e, a, lo, p-1)
			lo = p + 1
		} else {
			quicksort(e, a, p+1, hi)
			hi = p - 1
		}
	}
}

// partition uses a median-of-three pivot with Lomuto partitioning and
// returns the pivot's final index.
func partition(e *Env, a Arr, lo, hi int) int {
	mid := lo + (hi-lo)/2
	lv, mv, hv := a.Load(lo), a.Load(mid), a.Load(hi)
	e.Compute(8)
	// Move the median of the three to a[hi] as the pivot.
	var pi int
	switch {
	case (lv <= mv) == (mv <= hv):
		pi = mid
	case (mv <= lv) == (lv <= hv):
		pi = lo
	default:
		pi = hi
	}
	if pi != hi {
		pv, hv2 := a.Load(pi), a.Load(hi)
		a.Store(pi, hv2)
		a.Store(hi, pv)
	}
	pivot := a.Load(hi)
	i := lo
	for j := lo; j < hi; j++ {
		vj := a.Load(j)
		if vj < pivot {
			vi := a.Load(i)
			a.Store(i, vj)
			a.Store(j, vi)
			i++
		}
		e.Compute(5)
	}
	vh := a.Load(hi)
	vi := a.Load(i)
	a.Store(hi, vi)
	a.Store(i, vh)
	return i
}

func insertionSort(e *Env, a Arr, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		v := a.Load(i)
		j := i - 1
		for j >= lo {
			w := a.Load(j)
			if w <= v {
				break
			}
			a.Store(j+1, w)
			j--
			e.Compute(4)
		}
		a.Store(j+1, v)
		e.Compute(3)
	}
}
