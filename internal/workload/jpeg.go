package workload

import "wlcache/internal/isa"

// jpegencode / jpegdecode (MediaBench cjpeg/djpeg): the DCT-based
// still-image pipeline — 8x8 block forward DCT (AAN-style integer),
// quantization, zigzag + run-length entropy packing; the decoder
// reverses it. The image, coefficient buffers and bitstream live in
// simulated memory.

const (
	jpegW = 128
	jpegH = 96
)

// jpegZigzag maps scan order to block offsets.
var jpegZigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// jpegQuant is the standard luminance quantization table.
var jpegQuant = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// jpegImage synthesizes a photo-like test image.
func jpegImage(e *Env, img Arr, seed uint32) {
	r := newRNG(seed)
	for y := 0; y < jpegH; y++ {
		for x := 0; x < jpegW; x++ {
			v := int32(128 + triWave(int32((x*97+y*61)&0x7fff))/300 + int32(r.intn(17)) - 8)
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img.StoreI(y*jpegW+x, v)
			e.Compute(7)
		}
	}
}

// dct1D performs an 8-point integer DCT on blk[off], blk[off+stride],
// ... in place (12-bit fixed point, Loeffler-style butterflies
// approximated with shifts/adds as the libjpeg islow path does).
func dct1D(e *Env, blk Arr, off, stride int) {
	i := func(k int) int { return off + k*stride }
	s0, s1, s2, s3 := blk.LoadI(i(0)), blk.LoadI(i(1)), blk.LoadI(i(2)), blk.LoadI(i(3))
	s4, s5, s6, s7 := blk.LoadI(i(4)), blk.LoadI(i(5)), blk.LoadI(i(6)), blk.LoadI(i(7))
	t0, t7 := s0+s7, s0-s7
	t1, t6 := s1+s6, s1-s6
	t2, t5 := s2+s5, s2-s5
	t3, t4 := s3+s4, s3-s4
	u0, u3 := t0+t3, t0-t3
	u1, u2 := t1+t2, t1-t2
	blk.StoreI(i(0), u0+u1)
	blk.StoreI(i(4), u0-u1)
	// c = cos tables in Q12.
	const c2, c6 = 3784, 1567 // cos(pi/8)*4096*? (scaled pair)
	blk.StoreI(i(2), (u3*c2+u2*c6)>>12)
	blk.StoreI(i(6), (u3*c6-u2*c2)>>12)
	const c1, c3, c5, c7 = 4017, 3406, 2276, 799
	blk.StoreI(i(1), (t7*c1+t6*c3+t5*c5+t4*c7)>>12)
	blk.StoreI(i(3), (t7*c3-t6*c7-t5*c1-t4*c5)>>12)
	blk.StoreI(i(5), (t7*c5-t6*c1+t5*c7+t4*c3)>>12)
	blk.StoreI(i(7), (t7*c7-t6*c5+t5*c3-t4*c1)>>12)
	e.Compute(42)
}

// idct1D is the matching inverse (transpose of the forward matrix,
// same coefficients).
func idct1D(e *Env, blk Arr, off, stride int) {
	i := func(k int) int { return off + k*stride }
	x0, x1, x2, x3 := blk.LoadI(i(0)), blk.LoadI(i(1)), blk.LoadI(i(2)), blk.LoadI(i(3))
	x4, x5, x6, x7 := blk.LoadI(i(4)), blk.LoadI(i(5)), blk.LoadI(i(6)), blk.LoadI(i(7))
	const c2, c6 = 3784, 1567
	const c1, c3, c5, c7 = 4017, 3406, 2276, 799
	u0 := (x0 + x4) << 0
	u1 := (x0 - x4) << 0
	u2 := (x2*c6 - x6*c2) >> 12
	u3 := (x2*c2 + x6*c6) >> 12
	t0 := u0 + u3
	t3 := u0 - u3
	t1 := u1 + u2
	t2 := u1 - u2
	o1 := (x1*c1 + x3*c3 + x5*c5 + x7*c7) >> 12
	o3 := (x1*c3 - x3*c7 - x5*c1 + x7*c5) >> 12
	o5 := (x1*c5 - x3*c1 + x5*c7 + x7*c3) >> 12
	o7 := (x1*c7 - x3*c5 + x5*c3 - x7*c1) >> 12
	blk.StoreI(i(0), (t0+o1)>>1)
	blk.StoreI(i(7), (t0-o1)>>1)
	blk.StoreI(i(1), (t1+o3)>>1)
	blk.StoreI(i(6), (t1-o3)>>1)
	blk.StoreI(i(2), (t2+o5)>>1)
	blk.StoreI(i(5), (t2-o5)>>1)
	blk.StoreI(i(3), (t3+o7)>>1)
	blk.StoreI(i(4), (t3-o7)>>1)
	e.Compute(46)
}

// jpegEncodeImage encodes the whole image into stream; returns the
// number of words written.
func jpegEncodeImage(e *Env, img, stream Arr) int {
	blk := e.Alloc(64) // scratch block, lives in memory like the C stack buffer
	si := 0
	emit := func(v int32) {
		if si < stream.Len() {
			stream.StoreI(si, v)
			si++
		}
	}
	for by := 0; by < jpegH/8; by++ {
		for bx := 0; bx < jpegW/8; bx++ {
			// Load the block (level-shifted).
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk.StoreI(y*8+x, img.LoadI((by*8+y)*jpegW+bx*8+x)-128)
					e.Compute(3)
				}
			}
			// 2-D DCT: rows then columns.
			for r := 0; r < 8; r++ {
				dct1D(e, blk, r*8, 1)
			}
			for c := 0; c < 8; c++ {
				dct1D(e, blk, c, 8)
			}
			// Quantize + zigzag + RLE (run of zeros, value).
			run := int32(0)
			for k := 0; k < 64; k++ {
				z := jpegZigzag[k]
				q := blk.LoadI(z) / (jpegQuant[z] * 8)
				if q == 0 {
					run++
				} else {
					emit(run)
					emit(q)
					run = 0
				}
				e.Compute(6)
			}
			emit(-9999) // end-of-block
		}
	}
	return si
}

// jpegDecodeImage reverses the pipeline into out.
func jpegDecodeImage(e *Env, stream Arr, words int, out Arr) {
	blk := e.Alloc(64)
	si := 0
	read := func() int32 {
		if si >= words {
			return -9999
		}
		v := stream.LoadI(si)
		si++
		return v
	}
	for by := 0; by < jpegH/8; by++ {
		for bx := 0; bx < jpegW/8; bx++ {
			for k := 0; k < 64; k++ {
				blk.StoreI(k, 0)
			}
			k := 0
			eob := false
			for k < 64 && !eob {
				v := read()
				if v == -9999 {
					eob = true
					break
				}
				run := v
				val := read()
				if val == -9999 {
					eob = true
					break
				}
				k += int(run)
				if k >= 64 {
					break
				}
				z := jpegZigzag[k]
				blk.StoreI(z, val*jpegQuant[z]*8)
				k++
				e.Compute(8)
			}
			// Consume up to the end-of-block marker.
			for !eob {
				if read() == -9999 {
					eob = true
				}
			}
			// 2-D inverse DCT.
			for c := 0; c < 8; c++ {
				idct1D(e, blk, c, 8)
			}
			for r := 0; r < 8; r++ {
				idct1D(e, blk, r*8, 1)
			}
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					v := blk.LoadI(y*8+x)/16 + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					out.StoreI((by*8+y)*jpegW+bx*8+x, v)
					e.Compute(5)
				}
			}
		}
	}
}

func jpegEncodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	img := e.Alloc(jpegW * jpegH)
	stream := e.Alloc(jpegW * jpegH * 2)
	h := uint32(0)
	for frame := 0; frame < scale; frame++ {
		jpegImage(e, img, 0x0709+uint32(frame))
		n := jpegEncodeImage(e, img, stream)
		h = mix(h, uint32(n))
		h = mix(h, stream.Slice(0, n).Checksum(h))
	}
	return h
}

func jpegDecodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	img := e.Alloc(jpegW * jpegH)
	stream := e.Alloc(jpegW * jpegH * 2)
	out := e.Alloc(jpegW * jpegH)
	h := uint32(0)
	for frame := 0; frame < scale; frame++ {
		jpegImage(e, img, 0x0709+uint32(frame))
		n := jpegEncodeImage(e, img, stream)
		jpegDecodeImage(e, stream, n, out)
		h = mix(h, out.Checksum(h))
	}
	return h
}
