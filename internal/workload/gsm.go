package workload

import "wlcache/internal/isa"

// gsmencode / gsmdecode (MediaBench GSM 06.10 full-rate): per 160-
// sample frame — fixed-point autocorrelation, Schur recursion for
// reflection coefficients, short-term residual filtering, long-term
// prediction (lag search) per 40-sample subframe, and 3:1 RPE
// decimation with block-adaptive quantization. The decoder mirrors
// the chain. Faithful to the reference structure, simplified in the
// bit packing.

const (
	gsmFrame    = 160
	gsmSubframe = 40
	gsmOrder    = 8
	gsmFramesSc = 24
)

// gsmAutocorr computes autocorrelation lags 0..order into acf.
func gsmAutocorr(e *Env, s Arr, off int, acf Arr) {
	for k := 0; k <= gsmOrder; k++ {
		var sum int64
		for i := k; i < gsmFrame; i++ {
			sum += int64(s.LoadI(off+i)) * int64(s.LoadI(off+i-k))
			e.Compute(4)
		}
		acf.StoreI(k, int32(sum>>16))
	}
}

// gsmSchur derives reflection coefficients (Q15) from acf.
func gsmSchur(e *Env, acf, refl Arr) {
	var p, k [gsmOrder + 1]int32
	for i := 0; i <= gsmOrder; i++ {
		p[i] = acf.LoadI(i)
		e.Compute(2)
	}
	for i := 1; i <= gsmOrder; i++ {
		k[i] = 0
	}
	for n := 1; n <= gsmOrder; n++ {
		if p[0] == 0 {
			refl.StoreI(n-1, 0)
			continue
		}
		r := int32(clamp64(-(int64(p[n])<<15)/int64(maxI32(p[0], 1)), -32767, 32767))
		refl.StoreI(n-1, r)
		// Schur update (64-bit intermediate to avoid overflow).
		for m := 0; m+n <= gsmOrder; m++ {
			p[m+n] += int32((int64(r) * int64(p0ref(p[:], m, n))) >> 15)
			e.Compute(6)
		}
		e.Compute(10)
	}
}

// p0ref is a helper mirroring the reference's in-place Schur lattice
// (uses the lag-m term).
func p0ref(p []int32, m, n int) int32 { return p[m] }

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// gsmShortTermAnalysis filters the frame through the reflection
// lattice, producing the residual in res.
func gsmShortTermAnalysis(e *Env, s Arr, off int, refl, res Arr, u Arr) {
	for i := 0; i < gsmOrder; i++ {
		u.StoreI(i, 0)
	}
	for i := 0; i < gsmFrame; i++ {
		di := s.LoadI(off + i)
		sav := di
		for j := 0; j < gsmOrder; j++ {
			r := refl.LoadI(j)
			uj := u.LoadI(j)
			u.StoreI(j, sav)
			sav = uj + ((r * di) >> 15)
			di = di + ((r * uj) >> 15)
			e.Compute(8)
		}
		res.StoreI(i, di)
	}
}

// gsmShortTermSynthesis runs the inverse lattice.
func gsmShortTermSynthesis(e *Env, res Arr, refl, out Arr, off int, v Arr) {
	for i := 0; i < gsmOrder; i++ {
		v.StoreI(i, 0)
	}
	for i := 0; i < gsmFrame; i++ {
		sri := res.LoadI(i)
		for j := gsmOrder - 1; j >= 0; j-- {
			r := refl.LoadI(j)
			sri = sri - ((r * v.LoadI(j)) >> 15)
			nv := v.LoadI(j)
			_ = nv
			if j < gsmOrder-1 {
				v.StoreI(j+1, v.LoadI(j)+((r*sri)>>15))
			}
			e.Compute(8)
		}
		v.StoreI(0, sri)
		out.StoreI(off+i, clamp32(sri, -32768, 32767))
	}
}

// gsmLTPSearch finds the lag (40..120) maximizing cross-correlation
// of the subframe with past residual, returning lag and Q15 gain.
func gsmLTPSearch(e *Env, res Arr, sub int, hist Arr, histLen int) (int, int32) {
	bestLag, bestCorr := 40, int64(0)
	for lag := 40; lag <= 120; lag++ {
		var corr int64
		for i := 0; i < gsmSubframe; i++ {
			hIdx := histLen - lag + i
			if hIdx < 0 {
				continue
			}
			corr += int64(res.LoadI(sub+i)) * int64(hist.LoadI(hIdx))
			e.Compute(4)
		}
		if corr > bestCorr {
			bestCorr, bestLag = corr, lag
		}
		e.Compute(3)
	}
	var energy int64 = 1
	for i := 0; i < gsmSubframe; i++ {
		hIdx := histLen - bestLag + i
		if hIdx >= 0 {
			v := int64(hist.LoadI(hIdx))
			energy += v * v
		}
		e.Compute(4)
	}
	gain := bestCorr * (1 << 15) / energy
	return bestLag, int32(clamp64(gain, 0, 32767))
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// gsmEncodeFrame codes one frame; emits parameters into out at oi.
func gsmEncodeFrame(e *Env, pcm Arr, off int, scratch *gsmScratch, out Arr, oi int) int {
	gsmAutocorr(e, pcm, off, scratch.acf)
	gsmSchur(e, scratch.acf, scratch.refl)
	for i := 0; i < gsmOrder; i++ {
		out.StoreI(oi, scratch.refl.LoadI(i))
		oi++
	}
	gsmShortTermAnalysis(e, pcm, off, scratch.refl, scratch.res, scratch.u)
	for sub := 0; sub < gsmFrame; sub += gsmSubframe {
		lag, gain := gsmLTPSearch(e, scratch.res, sub, scratch.hist, scratch.histLen)
		out.StoreI(oi, int32(lag))
		oi++
		out.StoreI(oi, gain)
		oi++
		// Remove the LTP estimate, decimate 3:1, quantize to 3 bits
		// with a block maximum.
		var blockMax int32 = 1
		for i := 0; i < gsmSubframe; i += 3 {
			hIdx := scratch.histLen - lag + i
			var pred int32
			if hIdx >= 0 {
				pred = int32((int64(gain) * int64(scratch.hist.LoadI(hIdx))) >> 15)
			}
			d := scratch.res.LoadI(sub+i) - pred
			scratch.rpe.StoreI(i/3, d)
			if d < 0 {
				d = -d
			}
			if d > blockMax {
				blockMax = d
			}
			e.Compute(10)
		}
		out.StoreI(oi, blockMax)
		oi++
		for i := 0; i < gsmSubframe/3+1; i++ {
			q := (scratch.rpe.LoadI(i)*3)/blockMax + 4 // 3-bit levels 0..7 around 4
			q = clamp32(q, 0, 7)
			out.StoreI(oi, q)
			oi++
			e.Compute(5)
		}
		// Update the residual history with the coded subframe.
		for i := 0; i < gsmSubframe; i++ {
			scratch.pushHist(e, scratch.res.LoadI(sub+i))
		}
	}
	return oi
}

// gsmScratch bundles the per-frame working arrays (simulated memory).
type gsmScratch struct {
	acf     Arr
	refl    Arr
	res     Arr
	u       Arr
	rpe     Arr
	hist    Arr
	histLen int
}

func newGSMScratch(e *Env) *gsmScratch {
	return &gsmScratch{
		acf:     e.Alloc(gsmOrder + 1),
		refl:    e.Alloc(gsmOrder),
		res:     e.Alloc(gsmFrame),
		u:       e.Alloc(gsmOrder),
		rpe:     e.Alloc(gsmSubframe/3 + 1),
		hist:    e.Alloc(160),
		histLen: 160,
	}
}

// pushHist shifts the residual history by one sample. The reference
// uses a ring; a shift register keeps the addressing simple and adds
// realistic store traffic.
func (s *gsmScratch) pushHist(e *Env, v int32) {
	// Shifting 160 words per sample would dominate; mimic the ring
	// buffer instead with an index embedded in the last slot.
	idx := int(s.hist.Load(0)) % (s.histLen - 1)
	s.hist.StoreI(1+idx, v)
	s.hist.Store(0, uint32(idx+1))
	e.Compute(4)
}

// gsmDecodeFrame reconstructs a frame from parameters; returns next oi.
func gsmDecodeFrame(e *Env, in Arr, oi int, scratch *gsmScratch, out Arr, off int) int {
	for i := 0; i < gsmOrder; i++ {
		scratch.refl.StoreI(i, in.LoadI(oi))
		oi++
	}
	for sub := 0; sub < gsmFrame; sub += gsmSubframe {
		lag := int(in.LoadI(oi))
		oi++
		gain := in.LoadI(oi)
		oi++
		blockMax := in.LoadI(oi)
		oi++
		for i := 0; i < gsmSubframe/3+1; i++ {
			q := in.LoadI(oi)
			oi++
			scratch.rpe.StoreI(i, (q-4)*blockMax/3)
			e.Compute(5)
		}
		for i := 0; i < gsmSubframe; i++ {
			hIdx := scratch.histLen - lag + (i / 3 * 3)
			var pred int32
			if hIdx >= 0 && lag <= scratch.histLen {
				pred = int32((int64(gain) * int64(scratch.hist.LoadI(maxInt(hIdx, 1)))) >> 15)
			}
			var exc int32
			if i%3 == 0 {
				exc = scratch.rpe.LoadI(i / 3)
			}
			scratch.res.StoreI(i+sub-sub, exc+pred) // residual for this subframe position
			e.Compute(8)
		}
		for i := 0; i < gsmSubframe; i++ {
			scratch.pushHist(e, scratch.res.LoadI(i))
		}
		// Copy subframe residual into the frame-sized buffer tail.
		for i := 0; i < gsmSubframe; i++ {
			out.StoreI(off+sub+i, scratch.res.LoadI(i))
			e.Compute(2)
		}
	}
	// Final short-term synthesis over the whole frame in place.
	gsmShortTermSynthesis(e, out.Slice(off, gsmFrame), scratch.refl, out, off, scratch.u)
	return oi
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func gsmEncodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	frames := gsmFramesSc * scale
	pcm := e.Alloc(frames * gsmFrame)
	out := e.Alloc(frames * 80)
	adpcmGenInput(e, pcm, 0x65a1)
	scratch := newGSMScratch(e)
	oi := 0
	for f := 0; f < frames; f++ {
		oi = gsmEncodeFrame(e, pcm, f*gsmFrame, scratch, out, oi)
	}
	return out.Slice(0, oi).Checksum(0)
}

func gsmDecodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	frames := gsmFramesSc * scale
	pcm := e.Alloc(frames * gsmFrame)
	params := e.Alloc(frames * 80)
	out := e.Alloc(frames * gsmFrame)
	adpcmGenInput(e, pcm, 0x65a1)
	enc := newGSMScratch(e)
	oi := 0
	for f := 0; f < frames; f++ {
		oi = gsmEncodeFrame(e, pcm, f*gsmFrame, enc, params, oi)
	}
	dec := newGSMScratch(e)
	ri := 0
	for f := 0; f < frames; f++ {
		ri = gsmDecodeFrame(e, params, ri, dec, out, f*gsmFrame)
	}
	_ = ri
	return out.Checksum(0)
}
