package workload

import "wlcache/internal/isa"

// FFT / FFT_i (MiBench): in-place radix-2 decimation-in-time FFT over
// Q15 fixed-point complex samples, with a quarter-wave sine table in
// simulated memory, plus the inverse transform for FFT_i. FFT_i
// round-trips (forward then inverse) as the MiBench -i mode does.

const (
	fftSize       = 1024 // points per transform
	fftLog2       = 10
	fftRunsPerSc  = 6
	q15One        = 1 << 15
	sineTableSize = fftSize
)

// fftSineTable fills a full-wave Q15 sine table using an integer
// rotation recurrence (no floats, embedded style). The small drift of
// the recurrence is irrelevant: the same table drives the forward and
// inverse transforms deterministically.
func fftSineTable(e *Env, tab Arr) {
	// (s, c) rotate by 2*pi/fftSize per step, Q15.
	const cosQ, sinQ = 32757, 201 // cos/sin(2*pi/1024) in Q15
	s, c := int32(0), int32(q15One-1)
	for k := 0; k < tab.Len(); k++ {
		tab.StoreI(k, s)
		ns := (s*cosQ + c*sinQ) >> 15
		nc := (c*cosQ - s*sinQ) >> 15
		s, c = ns, nc
		e.Compute(10)
	}
}

// fftSin returns sin(2*pi*k/fftSize) in Q15.
func fftSin(tab Arr, k int) int32 {
	return tab.LoadI(k & (fftSize - 1))
}

// fftCore performs the in-place transform; invert selects the inverse
// (conjugated twiddles and per-stage scaling).
func fftCore(e *Env, re, im, tab Arr, invert bool) {
	n := fftSize
	// Bit reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			ri, rj := re.LoadI(i), re.LoadI(j)
			re.StoreI(i, rj)
			re.StoreI(j, ri)
			ii, ij := im.LoadI(i), im.LoadI(j)
			im.StoreI(i, ij)
			im.StoreI(j, ii)
		}
		k := n >> 1
		for k >= 1 && j >= k {
			j -= k
			k >>= 1
		}
		j += k
		e.Compute(8)
	}
	for stage := 1; stage <= fftLog2; stage++ {
		m := 1 << stage
		half := m >> 1
		step := n / m
		for k := 0; k < half; k++ {
			wi := fftSin(tab, k*step)           // sin
			wr := fftSin(tab, k*step+fftSize/4) // cos = sin(x+pi/2)
			if !invert {
				wi = -wi
			}
			for i := k; i < n; i += m {
				j := i + half
				tr := (re.LoadI(j)*wr - im.LoadI(j)*wi) >> 15
				ti := (re.LoadI(j)*wi + im.LoadI(j)*wr) >> 15
				ur, ui := re.LoadI(i), im.LoadI(i)
				// Scale each stage by 1/2 to avoid overflow (standard
				// fixed-point FFT practice).
				re.StoreI(j, (ur-tr)>>1)
				im.StoreI(j, (ui-ti)>>1)
				re.StoreI(i, (ur+tr)>>1)
				im.StoreI(i, (ui+ti)>>1)
				e.Compute(14)
			}
		}
	}
}

func fftPrepare(e *Env, re, im Arr, seed uint32) {
	r := newRNG(seed)
	for i := 0; i < fftSize; i++ {
		re.StoreI(i, int32(r.intn(q15One))-q15One/2)
		im.StoreI(i, 0)
		e.Compute(4)
	}
}

func fftRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	re := e.Alloc(fftSize)
	e.Alloc(16) // stagger the 4 KB-aligned arrays across cache sets
	im := e.Alloc(fftSize)
	e.Alloc(16)
	tab := e.Alloc(sineTableSize)
	fftSineTable(e, tab)
	h := uint32(0)
	for run := 0; run < fftRunsPerSc*scale; run++ {
		fftPrepare(e, re, im, 0xff7+uint32(run))
		fftCore(e, re, im, tab, false)
		h = mix(re.Checksum(h), im.Checksum(h))
	}
	return h
}

func ifftRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	re := e.Alloc(fftSize)
	e.Alloc(16)
	im := e.Alloc(fftSize)
	e.Alloc(16)
	tab := e.Alloc(sineTableSize)
	fftSineTable(e, tab)
	h := uint32(0)
	for run := 0; run < fftRunsPerSc*scale; run++ {
		fftPrepare(e, re, im, 0x1ff7+uint32(run))
		fftCore(e, re, im, tab, false)
		fftCore(e, re, im, tab, true) // inverse round-trip
		h = mix(re.Checksum(h), im.Checksum(h))
	}
	return h
}
