package workload

import "wlcache/internal/isa"

// patricia (MiBench network): a Patricia trie keyed by 32-bit IPv4
// addresses, exercising the pointer-chasing insert/lookup pattern of
// the original routing-table workload. Nodes live in simulated
// memory; each node is 4 words: {bit, key, left, right} where
// left/right are node indices and node 0 is the header whose bit
// field is the sentinel -1 (stored as 0xffffffff).

const (
	patNodeWords    = 4
	patInsertsPerSc = 4000
	patLookupsPerSc = 12000
	patFieldBit     = 0
	patFieldKey     = 1
	patFieldLeft    = 2
	patFieldRight   = 3
	patSentinelBit  = 0xffffffff // header "bit -1"
)

type patTrie struct {
	e     *Env
	nodes Arr
	count int
}

func newPatTrie(e *Env, capacity int) *patTrie {
	t := &patTrie{e: e, nodes: e.Alloc(capacity * patNodeWords)}
	// Header: sentinel bit, key 0, left self-loop.
	t.setField(0, patFieldBit, patSentinelBit)
	t.setField(0, patFieldKey, 0)
	t.setField(0, patFieldLeft, 0)
	t.setField(0, patFieldRight, 0)
	t.count = 1
	return t
}

func (t *patTrie) field(node, f int) uint32 {
	return t.nodes.Load(node*patNodeWords + f)
}

func (t *patTrie) setField(node, f int, v uint32) {
	t.nodes.Store(node*patNodeWords+f, v)
}

// sbit reads a node's bit index as a signed value (-1 for the header).
func (t *patTrie) sbit(node int) int32 { return int32(t.field(node, patFieldBit)) }

// bitOf returns bit b (0 = MSB) of key.
func bitOf(key uint32, b int32) uint32 {
	if b < 0 || b >= 32 {
		return 0
	}
	return (key >> (31 - uint32(b))) & 1
}

// child follows left/right depending on the key's bit at the node.
func (t *patTrie) child(node int, key uint32) int {
	if bitOf(key, t.sbit(node)) == 1 {
		return int(t.field(node, patFieldRight))
	}
	return int(t.field(node, patFieldLeft))
}

// search descends while bit indices strictly increase (a back edge
// means the search key's prefix ran out) and returns the landing node.
func (t *patTrie) search(key uint32) int {
	p := 0
	x := int(t.field(0, patFieldLeft))
	for t.sbit(x) > t.sbit(p) {
		p = x
		x = t.child(x, key)
		t.e.Compute(9)
	}
	return x
}

// insert adds key if absent; returns true when inserted.
func (t *patTrie) insert(key uint32) bool {
	found := t.search(key)
	fKey := t.field(found, patFieldKey)
	if fKey == key {
		return false
	}
	if (t.count+1)*patNodeWords > t.nodes.Len() {
		return false // capacity reached
	}
	// First bit where key differs from the closest existing key.
	diff := fKey ^ key
	db := int32(0)
	for (diff>>(31-uint32(db)))&1 == 0 {
		db++
		t.e.Compute(2)
	}
	// Re-descend to the edge the new node splits.
	p := 0
	x := int(t.field(0, patFieldLeft))
	for t.sbit(x) > t.sbit(p) && t.sbit(x) < db {
		p = x
		x = t.child(x, key)
		t.e.Compute(9)
	}
	n := t.count
	t.count++
	t.setField(n, patFieldBit, uint32(db))
	t.setField(n, patFieldKey, key)
	if bitOf(key, db) == 1 {
		t.setField(n, patFieldRight, uint32(n))
		t.setField(n, patFieldLeft, uint32(x))
	} else {
		t.setField(n, patFieldLeft, uint32(n))
		t.setField(n, patFieldRight, uint32(x))
	}
	if p == 0 {
		t.setField(0, patFieldLeft, uint32(n))
	} else if bitOf(key, t.sbit(p)) == 1 {
		t.setField(p, patFieldRight, uint32(n))
	} else {
		t.setField(p, patFieldLeft, uint32(n))
	}
	t.e.Compute(12)
	return true
}

// lookup returns the key stored at the landing node (the candidate
// longest match).
func (t *patTrie) lookup(key uint32) uint32 {
	return t.field(t.search(key), patFieldKey)
}

func patriciaRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	inserts := patInsertsPerSc * scale
	lookups := patLookupsPerSc * scale
	t := newPatTrie(e, inserts+2)

	r := newRNG(0x9a77)
	h := uint32(2166136261)
	// Build the routing table: clustered prefixes like real traces.
	for i := 0; i < inserts; i++ {
		prefix := uint32(r.intn(512)) << 23
		key := prefix | r.next()&0x007fffff
		if t.insert(key) {
			h = mix(h, key)
		}
		e.Compute(6)
	}
	// Lookups with temporal locality: most re-visit recent keys.
	recent := make([]uint32, 0, 64)
	for i := 0; i < lookups; i++ {
		var key uint32
		if len(recent) > 8 && r.intn(4) != 0 {
			key = recent[r.intn(len(recent))]
		} else {
			key = r.next()
			if len(recent) < cap(recent) {
				recent = append(recent, key)
			} else {
				recent[r.intn(len(recent))] = key
			}
		}
		h = mix(h, t.lookup(key))
		e.Compute(5)
	}
	return h
}
