package workload

import "wlcache/internal/isa"

// pegwitdecrypt (MediaBench pegwit): public-key decryption. Pegwit
// proper uses GF(2^255) elliptic curves; this port keeps the
// computational skeleton — multi-precision modular exponentiation to
// recover the shared secret, then a keyed stream decryption plus
// integrity hash over the message buffer — all on 8x32-bit limbs held
// in simulated memory.

const (
	pegLimbs        = 8 // 256-bit numbers
	pegMsgWordsPerS = 3000
)

// pegMod is a 256-bit pseudo-Mersenne-style odd modulus (fixed).
var pegMod = [pegLimbs]uint32{
	0xfffffff1, 0xffffffff, 0xfffffffe, 0xffffffff,
	0xffffffff, 0xffffffff, 0xffffffff, 0x7fffffff,
}

// bignum helpers over Arr limbs (little-endian).

func bnLoad(a Arr) [pegLimbs]uint32 {
	var x [pegLimbs]uint32
	for i := 0; i < pegLimbs; i++ {
		x[i] = a.Load(i)
	}
	return x
}

func bnStore(a Arr, x [pegLimbs]uint32) {
	for i := 0; i < pegLimbs; i++ {
		a.Store(i, x[i])
	}
}

// bnCmp compares x and y.
func bnCmp(x, y [pegLimbs]uint32) int {
	for i := pegLimbs - 1; i >= 0; i-- {
		if x[i] != y[i] {
			if x[i] > y[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}

// bnSub computes x - y (x >= y assumed).
func bnSub(x, y [pegLimbs]uint32) [pegLimbs]uint32 {
	var borrow uint64
	var r [pegLimbs]uint32
	for i := 0; i < pegLimbs; i++ {
		d := uint64(x[i]) - uint64(y[i]) - borrow
		r[i] = uint32(d)
		borrow = (d >> 63) & 1
	}
	return r
}

// pegMulMod computes (x*y) mod pegMod with schoolbook multiply and
// bitwise reduction (as the portable C bignum path does).
func pegMulMod(e *Env, x, y [pegLimbs]uint32) [pegLimbs]uint32 {
	// 512-bit product.
	var prod [2 * pegLimbs]uint32
	for i := 0; i < pegLimbs; i++ {
		var carry uint64
		for j := 0; j < pegLimbs; j++ {
			t := uint64(x[i])*uint64(y[j]) + uint64(prod[i+j]) + carry
			prod[i+j] = uint32(t)
			carry = t >> 32
		}
		prod[i+pegLimbs] = uint32(carry)
		e.Compute(48)
	}
	// Bitwise modular reduction from the top.
	var mod [2 * pegLimbs]uint32
	copy(mod[pegLimbs:], pegMod[:])
	for bit := 0; bit < 32*pegLimbs+1; bit++ {
		// mod >>= 1 after first alignment step; compare and subtract.
		if geq512(prod, mod) {
			sub512(&prod, mod)
		}
		shr512(&mod)
		e.Compute(12)
	}
	var r [pegLimbs]uint32
	copy(r[:], prod[:pegLimbs])
	// Final conditional subtract.
	if bnCmp(r, pegMod) >= 0 {
		r = bnSub(r, pegMod)
	}
	return r
}

func geq512(a, b [2 * pegLimbs]uint32) bool {
	for i := 2*pegLimbs - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return true
}

func sub512(a *[2 * pegLimbs]uint32, b [2 * pegLimbs]uint32) {
	var borrow uint64
	for i := 0; i < 2*pegLimbs; i++ {
		d := uint64(a[i]) - uint64(b[i]) - borrow
		a[i] = uint32(d)
		borrow = (d >> 63) & 1
	}
}

func shr512(a *[2 * pegLimbs]uint32) {
	var carry uint32
	for i := 2*pegLimbs - 1; i >= 0; i-- {
		nc := a[i] & 1
		a[i] = a[i]>>1 | carry<<31
		carry = nc
	}
}

// pegExpMod computes base^exp mod pegMod by square-and-multiply,
// with operands staged through simulated memory as the C code's
// working vectors are.
func pegExpMod(e *Env, baseA, expA, outA Arr) {
	base := bnLoad(baseA)
	exp := bnLoad(expA)
	result := [pegLimbs]uint32{1}
	// A 64-bit private exponent (two limbs) keeps the kernel's cost in
	// line with the rest of the suite while exercising the same code.
	for limb := 0; limb < 2; limb++ {
		w := exp[limb]
		for bit := 0; bit < 32; bit++ {
			if w&1 != 0 {
				result = pegMulMod(e, result, base)
			}
			base = pegMulMod(e, base, base)
			w >>= 1
			// Stage the running state back to memory periodically,
			// like the reference's vector temporaries.
			if bit%8 == 7 {
				bnStore(outA, result)
				result = bnLoad(outA)
			}
			e.Compute(6)
		}
	}
	bnStore(outA, result)
}

func pegwitDecryptRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	baseA := e.Alloc(pegLimbs)
	expA := e.Alloc(pegLimbs)
	secretA := e.Alloc(pegLimbs)
	msg := e.Alloc(pegMsgWordsPerS * scale)

	// Ciphertext ephemeral value and recipient private key.
	r := newRNG(0x9e9317)
	for i := 0; i < pegLimbs; i++ {
		baseA.Store(i, r.next())
		if i < 2 {
			expA.Store(i, r.next())
		} else {
			expA.Store(i, 0)
		}
	}
	// Recover the shared secret: secret = ephemeral^priv mod p.
	pegExpMod(e, baseA, expA, secretA)

	// Synthesize the ciphertext, then decrypt: XOR keystream derived
	// from the secret, accumulating an integrity hash.
	for i := 0; i < msg.Len(); i++ {
		msg.Store(i, r.next())
		e.Compute(2)
	}
	ks := bnLoad(secretA)
	state := ks[0] ^ 0x6a09e667
	h := uint32(2166136261)
	for i := 0; i < msg.Len(); i++ {
		state = state*1664525 + 1013904223 // keystream LCG seeded by the secret
		state ^= ks[i%pegLimbs]
		plain := msg.Load(i) ^ state
		msg.Store(i, plain)
		h = mix(h, plain)
		e.Compute(8)
	}
	return mix(h, secretA.Checksum(h))
}
