package workload

import "wlcache/internal/isa"

// IMA ADPCM codec (MediaBench adpcm rawcaudio/rawdaudio): compresses
// 16-bit PCM to 4-bit codes with an adaptive step size.

var imaIndexTable = [16]int32{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

var imaStepTable = [89]int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

const adpcmSamplesPerScale = 16384

// adpcmGenInput synthesizes len(PCM) samples of a noisy multi-tone
// signal into pcm (stores through the cache).
func adpcmGenInput(e *Env, pcm Arr, seed uint32) {
	r := newRNG(seed)
	phase1, phase2 := int32(0), int32(0)
	for i := 0; i < pcm.Len(); i++ {
		phase1 = (phase1 + 311) & 0x7fff
		phase2 = (phase2 + 1013) & 0x7fff
		s := triWave(phase1)/2 + triWave(phase2)/4 + int32(r.intn(1024)) - 512
		if s > 32767 {
			s = 32767
		}
		if s < -32768 {
			s = -32768
		}
		pcm.StoreI(i, s)
		e.Compute(8)
	}
}

// triWave maps a 15-bit phase to a triangle wave in [-16384, 16384].
func triWave(phase int32) int32 {
	if phase < 0x4000 {
		return phase - 0x2000
	}
	return 0x6000 - phase
}

// adpcmEncodeCore encodes pcm into 4-bit codes packed 8 per word.
func adpcmEncodeCore(e *Env, pcm, out Arr) {
	valpred := int32(0)
	index := int32(0)
	var packed uint32
	nib := 0
	oi := 0
	for i := 0; i < pcm.Len(); i++ {
		sample := pcm.LoadI(i)
		step := imaStepTable[index]
		diff := sample - valpred
		var code int32
		if diff < 0 {
			code = 8
			diff = -diff
		}
		// Successive approximation of diff/step in 3 bits.
		tempStep := step
		if diff >= tempStep {
			code |= 4
			diff -= tempStep
		}
		tempStep >>= 1
		if diff >= tempStep {
			code |= 2
			diff -= tempStep
		}
		tempStep >>= 1
		if diff >= tempStep {
			code |= 1
		}
		// Reconstruct the predictor exactly as the decoder will.
		valpred = imaReconstruct(valpred, code, step)
		index += imaIndexTable[code&15]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		packed |= uint32(code&15) << (4 * nib)
		nib++
		if nib == 8 {
			out.Store(oi, packed)
			oi++
			packed, nib = 0, 0
		}
		e.Compute(18)
	}
	if nib > 0 {
		out.Store(oi, packed)
	}
}

// imaReconstruct applies one ADPCM update step shared by encoder and
// decoder.
func imaReconstruct(valpred, code, step int32) int32 {
	vpdiff := step >> 3
	if code&4 != 0 {
		vpdiff += step
	}
	if code&2 != 0 {
		vpdiff += step >> 1
	}
	if code&1 != 0 {
		vpdiff += step >> 2
	}
	if code&8 != 0 {
		valpred -= vpdiff
	} else {
		valpred += vpdiff
	}
	if valpred > 32767 {
		valpred = 32767
	}
	if valpred < -32768 {
		valpred = -32768
	}
	return valpred
}

// adpcmDecodeCore expands packed 4-bit codes back to PCM.
func adpcmDecodeCore(e *Env, in Arr, nSamples int, out Arr) {
	valpred := int32(0)
	index := int32(0)
	for i := 0; i < nSamples; i++ {
		word := in.Load(i / 8)
		code := int32(word>>(4*(i%8))) & 15
		step := imaStepTable[index]
		valpred = imaReconstruct(valpred, code, step)
		index += imaIndexTable[code]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		out.StoreI(i, valpred)
		e.Compute(14)
	}
}

func adpcmEncodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	n := adpcmSamplesPerScale * scale
	pcm := e.Alloc(n)
	out := e.Alloc(n/8 + 1)
	adpcmGenInput(e, pcm, 0xada5eed)
	adpcmEncodeCore(e, pcm, out)
	return out.Checksum(0)
}

func adpcmDecodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	n := adpcmSamplesPerScale * scale
	pcm := e.Alloc(n)
	codes := e.Alloc(n/8 + 1)
	out := e.Alloc(n)
	adpcmGenInput(e, pcm, 0xada5eed)
	adpcmEncodeCore(e, pcm, codes) // produce a real bitstream to decode
	adpcmDecodeCore(e, codes, n, out)
	return out.Checksum(0)
}
