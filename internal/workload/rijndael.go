package workload

import "wlcache/internal/isa"

// rijndael_e / rijndael_d (MiBench security): real AES-128 in ECB
// mode over a buffer in simulated memory. The S-boxes and round keys
// live in simulated memory, as the C implementation's tables do, so
// table lookups exercise the cache.

const aesBlocksPerScale = 1200

// aesPow/aesLog build GF(2^8) log tables host-side (pure constants).
func aesTables() (sbox, inv [256]byte) {
	// Generate the AES S-box algebraically.
	var logT, expT [256]byte
	p := byte(1)
	for i := 0; i < 255; i++ {
		expT[i] = p
		logT[p] = byte(i)
		// multiply p by generator 3 in GF(2^8)
		p = p ^ xtime(p)
	}
	inverse := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return expT[(255-int(logT[b]))%255]
	}
	for i := 0; i < 256; i++ {
		q := inverse(byte(i))
		// affine transform
		s := q ^ rotb(q, 1) ^ rotb(q, 2) ^ rotb(q, 3) ^ rotb(q, 4) ^ 0x63
		sbox[i] = s
	}
	for i := 0; i < 256; i++ {
		inv[sbox[i]] = byte(i)
	}
	return sbox, inv
}

func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

func rotb(b byte, n uint) byte { return b<<n | b>>(8-n) }

// gmulSlow multiplies in GF(2^8) by repeated xtime (as the C code does).
func gmulSlow(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// gmulTab caches gmulSlow for the small constant multipliers MixColumns
// uses (2,3 and 9,11,13,14). gmul is host-side arithmetic only — the
// simulated instruction cost is charged via Env.Compute at the call
// sites — so the table changes no simulated outcome, just host time.
var gmulTab [256][16]byte

func init() {
	for a := 0; a < 256; a++ {
		for b := 0; b < 16; b++ {
			gmulTab[a][b] = gmulSlow(byte(a), byte(b))
		}
	}
}

func gmul(a, b byte) byte {
	if b < 16 {
		return gmulTab[a][b]
	}
	return gmulSlow(a, b)
}

// aesContext holds the simulated-memory tables: sbox, inverse sbox
// (one byte per word for simple indexing) and 11 round keys.
type aesContext struct {
	e        *Env
	sbox     Arr // 256 words
	isbox    Arr // 256 words
	roundKey Arr // 44 words
}

func newAESContext(e *Env, key [4]uint32) *aesContext {
	ctx := &aesContext{e: e, sbox: e.Alloc(256), isbox: e.Alloc(256), roundKey: e.Alloc(44)}
	sb, inv := aesTables()
	for i := 0; i < 256; i++ {
		ctx.sbox.Store(i, uint32(sb[i]))
		ctx.isbox.Store(i, uint32(inv[i]))
		ctx.e.Compute(2)
	}
	// Key expansion (AES-128: 44 words), reading the S-box from
	// simulated memory.
	for i := 0; i < 4; i++ {
		ctx.roundKey.Store(i, key[i])
	}
	rcon := uint32(1)
	for i := 4; i < 44; i++ {
		t := ctx.roundKey.Load(i - 1)
		if i%4 == 0 {
			t = t<<8 | t>>24 // RotWord
			t = ctx.subWord(t)
			t ^= rcon << 24
			rcon = uint32(xtime(byte(rcon)))
		}
		ctx.roundKey.Store(i, ctx.roundKey.Load(i-4)^t)
		ctx.e.Compute(8)
	}
	return ctx
}

func (c *aesContext) subWord(w uint32) uint32 {
	return c.sbox.Load(int(w>>24))<<24 |
		c.sbox.Load(int(w>>16&0xff))<<16 |
		c.sbox.Load(int(w>>8&0xff))<<8 |
		c.sbox.Load(int(w&0xff))
}

// state is the 16-byte AES state as 4 big-endian words.
type aesState [4]uint32

func (s *aesState) byteAt(i int) byte { // column-major AES order
	col := i / 4
	row := i % 4
	return byte(s[col] >> (24 - 8*row))
}

func (s *aesState) setByte(i int, b byte) {
	col := i / 4
	row := i % 4
	shift := uint(24 - 8*row)
	s[col] = s[col]&^(0xff<<shift) | uint32(b)<<shift
}

func (c *aesContext) addRoundKey(s *aesState, round int) {
	for i := 0; i < 4; i++ {
		s[i] ^= c.roundKey.Load(round*4 + i)
	}
	c.e.Compute(8)
}

func (c *aesContext) encryptBlock(s *aesState) {
	c.addRoundKey(s, 0)
	for round := 1; round <= 10; round++ {
		// SubBytes
		for i := 0; i < 4; i++ {
			s[i] = c.subWord(s[i])
		}
		c.e.Compute(16)
		// ShiftRows
		shiftRows(s, false)
		c.e.Compute(12)
		// MixColumns (not in the last round)
		if round != 10 {
			for col := 0; col < 4; col++ {
				mixColumn(s, col, false)
			}
			c.e.Compute(40)
		}
		c.addRoundKey(s, round)
	}
}

func (c *aesContext) decryptBlock(s *aesState) {
	c.addRoundKey(s, 10)
	for round := 9; round >= 0; round-- {
		shiftRows(s, true)
		c.e.Compute(12)
		for i := 0; i < 4; i++ {
			s[i] = c.isbox.Load(int(s[i]>>24))<<24 |
				c.isbox.Load(int(s[i]>>16&0xff))<<16 |
				c.isbox.Load(int(s[i]>>8&0xff))<<8 |
				c.isbox.Load(int(s[i]&0xff))
		}
		c.e.Compute(16)
		c.addRoundKey(s, round)
		if round != 0 {
			for col := 0; col < 4; col++ {
				mixColumn(s, col, true)
			}
			c.e.Compute(60)
		}
	}
}

// shiftRows rotates row r left by r (or right for inverse).
func shiftRows(s *aesState, inverse bool) {
	var b [16]byte
	for i := 0; i < 16; i++ {
		b[i] = s.byteAt(i)
	}
	for row := 1; row < 4; row++ {
		var n [4]byte
		for col := 0; col < 4; col++ {
			src := (col + row) % 4
			if inverse {
				src = (col - row + 4) % 4
			}
			n[col] = b[src*4+row]
		}
		for col := 0; col < 4; col++ {
			s.setByte(col*4+row, n[col])
		}
	}
}

func mixColumn(s *aesState, col int, inverse bool) {
	a0 := s.byteAt(col * 4)
	a1 := s.byteAt(col*4 + 1)
	a2 := s.byteAt(col*4 + 2)
	a3 := s.byteAt(col*4 + 3)
	var r0, r1, r2, r3 byte
	if !inverse {
		r0 = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		r1 = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		r2 = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		r3 = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	} else {
		r0 = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		r1 = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		r2 = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		r3 = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
	s.setByte(col*4, r0)
	s.setByte(col*4+1, r1)
	s.setByte(col*4+2, r2)
	s.setByte(col*4+3, r3)
}

var aesKey = [4]uint32{0x2b7e1516, 0x28aed2a6, 0xabf71588, 0x09cf4f3c}

func rijndaelEncRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	blocks := aesBlocksPerScale * scale
	in := e.Alloc(blocks * 4)
	out := e.Alloc(blocks * 4)
	r := newRNG(0xae5e)
	for i := 0; i < in.Len(); i++ {
		in.Store(i, r.next())
		e.Compute(2)
	}
	ctx := newAESContext(e, aesKey)
	for b := 0; b < blocks; b++ {
		var s aesState
		for i := 0; i < 4; i++ {
			s[i] = in.Load(b*4 + i)
		}
		ctx.encryptBlock(&s)
		for i := 0; i < 4; i++ {
			out.Store(b*4+i, s[i])
		}
	}
	return out.Checksum(0)
}

func rijndaelDecRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	blocks := aesBlocksPerScale * scale
	ct := e.Alloc(blocks * 4)
	pt := e.Alloc(blocks * 4)
	r := newRNG(0xae5d)
	for i := 0; i < ct.Len(); i++ {
		ct.Store(i, r.next())
		e.Compute(2)
	}
	ctx := newAESContext(e, aesKey)
	for b := 0; b < blocks; b++ {
		var s aesState
		for i := 0; i < 4; i++ {
			s[i] = ct.Load(b*4 + i)
		}
		ctx.decryptBlock(&s)
		for i := 0; i < 4; i++ {
			pt.Store(b*4+i, s[i])
		}
	}
	return pt.Checksum(0)
}
