package workload

import "wlcache/internal/isa"

// SHA-1 (MiBench/MediaBench "sha"): the real algorithm hashing a
// synthesized message held in simulated memory, one 16-word block at
// a time.

const shaBlocksPerScale = 1024

func shaRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	blocks := shaBlocksPerScale * scale
	msg := e.Alloc(blocks * 16)
	digest := e.Alloc(5)

	r := newRNG(0x57a ^ 0x1234567)
	for i := 0; i < msg.Len(); i++ {
		msg.Store(i, r.next())
		e.Compute(3)
	}

	h0, h1, h2, h3, h4 := uint32(0x67452301), uint32(0xEFCDAB89), uint32(0x98BADCFE), uint32(0x10325476), uint32(0xC3D2E1F0)
	w := e.Alloc(80) // message schedule lives in memory, as in the C code
	for b := 0; b < blocks; b++ {
		for t := 0; t < 16; t++ {
			w.Store(t, msg.Load(b*16+t))
			e.Compute(2)
		}
		for t := 16; t < 80; t++ {
			x := w.Load(t-3) ^ w.Load(t-8) ^ w.Load(t-14) ^ w.Load(t-16)
			w.Store(t, rotl32(x, 1))
			e.Compute(5)
		}
		a, bb, c, d, ee := h0, h1, h2, h3, h4
		for t := 0; t < 80; t++ {
			var f, k uint32
			switch {
			case t < 20:
				f = (bb & c) | ((^bb) & d)
				k = 0x5A827999
			case t < 40:
				f = bb ^ c ^ d
				k = 0x6ED9EBA1
			case t < 60:
				f = (bb & c) | (bb & d) | (c & d)
				k = 0x8F1BBCDC
			default:
				f = bb ^ c ^ d
				k = 0xCA62C1D6
			}
			tmp := rotl32(a, 5) + f + ee + k + w.Load(t)
			ee, d, c, bb, a = d, c, rotl32(bb, 30), a, tmp
			e.Compute(9)
		}
		h0 += a
		h1 += bb
		h2 += c
		h3 += d
		h4 += ee
		e.Compute(5)
	}
	digest.Store(0, h0)
	digest.Store(1, h1)
	digest.Store(2, h2)
	digest.Store(3, h3)
	digest.Store(4, h4)
	return digest.Checksum(0)
}

func rotl32(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }
