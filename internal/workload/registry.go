package workload

import (
	"fmt"
	"sort"

	"wlcache/internal/isa"
)

// Workload is one benchmark kernel.
type Workload struct {
	Name  string
	Suite string // "MediaBench" or "MiBench"
	// Run executes the kernel at the given scale (>= 1; input size
	// grows roughly linearly) and returns the output checksum.
	Run func(m isa.Machine, scale int) uint32
}

// Suites.
const (
	MediaBench = "MediaBench"
	MiBench    = "MiBench"
)

var registry = map[string]Workload{}

// order preserves the paper's figure ordering.
var order []string

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name))
	}
	registry[w.Name] = w
	order = append(order, w.Name)
}

func init() {
	// MediaBench (paper figure order).
	register(Workload{"adpcmdecode", MediaBench, adpcmDecodeRun})
	register(Workload{"adpcmencode", MediaBench, adpcmEncodeRun})
	register(Workload{"epic", MediaBench, epicRun})
	register(Workload{"g721decode", MediaBench, g721DecodeRun})
	register(Workload{"g721encode", MediaBench, g721EncodeRun})
	register(Workload{"gsmdecode", MediaBench, gsmDecodeRun})
	register(Workload{"gsmencode", MediaBench, gsmEncodeRun})
	register(Workload{"jpegdecode", MediaBench, jpegDecodeRun})
	register(Workload{"jpegencode", MediaBench, jpegEncodeRun})
	register(Workload{"mpeg2decode", MediaBench, mpeg2DecodeRun})
	register(Workload{"mpeg2encode", MediaBench, mpeg2EncodeRun})
	register(Workload{"pegwitdecrypt", MediaBench, pegwitDecryptRun})
	register(Workload{"sha", MediaBench, shaRun})
	register(Workload{"susancorners", MediaBench, susanCornersRun})
	register(Workload{"susanedges", MediaBench, susanEdgesRun})
	// MiBench.
	register(Workload{"basicmath", MiBench, basicmathRun})
	register(Workload{"qsort", MiBench, qsortRun})
	register(Workload{"dijkstra", MiBench, dijkstraRun})
	register(Workload{"FFT", MiBench, fftRun})
	register(Workload{"FFT_i", MiBench, ifftRun})
	register(Workload{"patricia", MiBench, patriciaRun})
	register(Workload{"rijndael_d", MiBench, rijndaelDecRun})
	register(Workload{"rijndael_e", MiBench, rijndaelEncRun})
}

// All returns every workload in the paper's figure order.
func All() []Workload {
	ws := make([]Workload, 0, len(order))
	for _, n := range order {
		ws = append(ws, registry[n])
	}
	return ws
}

// ByName looks up one workload.
func ByName(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// Names returns all names in figure order.
func Names() []string { return append([]string(nil), order...) }

// SuiteNames returns the names belonging to one suite, in order.
func SuiteNames(suite string) []string {
	var ns []string
	for _, n := range order {
		if registry[n].Suite == suite {
			ns = append(ns, n)
		}
	}
	return ns
}

// SortedNames returns all names alphabetically (for stable maps).
func SortedNames() []string {
	ns := Names()
	sort.Strings(ns)
	return ns
}
