// Package workload implements the 23 MediaBench/MiBench kernels the
// paper evaluates (§6.1), re-targeted at the simulated machine: each
// kernel performs its real computation (ADPCM coding, SHA-1, AES,
// FFTs, Dijkstra, ...) against the simulated address space via
// isa.Machine, so the cache designs observe realistic access streams,
// and returns a checksum of its outputs so crash-consistency tests
// can compare runs bit-for-bit.
//
// All kernels are integer/fixed-point (as on the MSP430-class targets
// the paper models) and deterministic.
package workload

import (
	"fmt"

	"wlcache/internal/isa"
)

// arenaBase is the first byte address handed out to kernels.
const arenaBase = 0x0001_0000

// Env wraps the machine with a bump allocator and typed helpers.
type Env struct {
	m    isa.Machine
	next uint32
}

// NewEnv returns a fresh environment over m.
func NewEnv(m isa.Machine) *Env {
	return &Env{m: m, next: arenaBase}
}

// Alloc reserves words consecutive 32-bit words and returns the array
// handle. Allocation itself is bookkeeping, not simulated work.
func (e *Env) Alloc(words int) Arr {
	if words <= 0 {
		panic(fmt.Sprintf("workload: Alloc(%d)", words))
	}
	a := Arr{e: e, base: e.next, n: words}
	e.next += uint32(words) * isa.WordBytes
	return a
}

// Compute accounts for n ALU instructions.
func (e *Env) Compute(n int) { e.m.Compute(n) }

// Arr is a word array in the simulated address space.
type Arr struct {
	e    *Env
	base uint32
	n    int
}

// Len returns the element count.
func (a Arr) Len() int { return a.n }

// Base returns the base byte address.
func (a Arr) Base() uint32 { return a.base }

// Load reads element i.
func (a Arr) Load(i int) uint32 {
	a.check(i)
	return a.e.m.Load32(a.base + uint32(i)*isa.WordBytes)
}

// Store writes element i.
func (a Arr) Store(i int, v uint32) {
	a.check(i)
	a.e.m.Store32(a.base+uint32(i)*isa.WordBytes, v)
}

// LoadI and StoreI are signed views of the array.
func (a Arr) LoadI(i int) int32 { return int32(a.Load(i)) }

// StoreI writes a signed element.
func (a Arr) StoreI(i int, v int32) { a.Store(i, uint32(v)) }

// Slice returns a sub-array [from, from+n).
func (a Arr) Slice(from, n int) Arr {
	a.check(from)
	if from+n > a.n {
		panic(fmt.Sprintf("workload: slice [%d,%d) of array of %d", from, from+n, a.n))
	}
	return Arr{e: a.e, base: a.base + uint32(from)*isa.WordBytes, n: n}
}

func (a Arr) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("workload: index %d out of range [0,%d)", i, a.n))
	}
}

// Checksum folds the array contents into a running FNV-1a style
// digest, loading every element through the cache hierarchy.
func (a Arr) Checksum(seed uint32) uint32 {
	h := seed
	if h == 0 {
		h = 2166136261
	}
	for i := 0; i < a.n; i++ {
		h = (h ^ a.Load(i)) * 16777619
		a.e.Compute(2)
	}
	return h
}

// mix is a cheap scalar hash combiner used by kernels.
func mix(h, v uint32) uint32 { return (h ^ v) * 16777619 }

// rng is a tiny deterministic PRNG (xorshift32) used by kernels to
// synthesize inputs; runs host-side (input generation is not
// simulated work until the values are stored).
type rng struct{ s uint32 }

func newRNG(seed uint32) *rng {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &rng{s: seed}
}

func (r *rng) next() uint32 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 17
	r.s ^= r.s << 5
	return r.s
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint32(n)) }
