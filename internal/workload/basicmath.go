package workload

import "wlcache/internal/isa"

// basicmath (MiBench): cubic-equation roots, integer square roots and
// angle conversions, all in integer/fixed-point arithmetic. The
// original is compute-dominated with light memory traffic; outputs
// are stored to memory and checksummed.

const basicmathItersPerScale = 6000

func basicmathRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	iters := basicmathItersPerScale * scale
	out := e.Alloc(4096)
	oi := 0
	put := func(v uint32) {
		out.Store(oi%out.Len(), v)
		oi++
	}

	h := uint32(2166136261)
	r := newRNG(0xba51c)
	for i := 0; i < iters; i++ {
		// Integer square root of a pseudo-random 31-bit value
		// (binary restoring method, as in the C isqrt).
		x := r.next() >> 1
		root := isqrt32(x)
		e.Compute(64) // 16 iterations x ~4 ops
		put(root)
		h = mix(h, root)

		// Find a real root of x^3 + ax^2 + bx + c via fixed-point
		// Newton iteration (the cubic() part of the C workload).
		a := int64(int32(r.next()%41) - 20)
		b := int64(int32(r.next()%41) - 20)
		c := int64(int32(r.next()%41) - 20)
		xq := int64(3 << 16) // Q16 initial guess 3.0
		for it := 0; it < 10; it++ {
			x2 := (xq * xq) >> 16                    // Q16
			f := ((x2*xq)>>16 + a*x2 + b*xq + c<<16) // Q16
			fp := 3*x2 + 2*a*xq + b<<16              // Q16
			if fp == 0 {
				break
			}
			xq -= (f << 16) / fp
			// Clamp to a sane Q16 range to keep the fixed-point math
			// meaningful when Newton overshoots.
			if xq > 1<<24 {
				xq = 1 << 24
			} else if xq < -(1 << 24) {
				xq = -(1 << 24)
			}
			e.Compute(16)
		}
		put(uint32(int32(xq)))
		h = mix(h, uint32(int32(xq)))

		// Degree <-> radian conversions in Q16.
		deg := int64(r.intn(360)) << 16
		rad := deg * 182 >> 10 // ~pi/180 in Q16-ish
		back := rad * 5760 / 1005 >> 10
		e.Compute(20)
		put(uint32(rad))
		put(uint32(back))
		h = mix(h, uint32(rad))
	}
	_ = oi
	return mix(h, out.Checksum(h))
}

// isqrt32 computes floor(sqrt(x)) by the restoring shift method.
func isqrt32(x uint32) uint32 {
	var root, rem uint32
	for i := 0; i < 16; i++ {
		root <<= 1
		rem = (rem << 2) | (x >> 30)
		x <<= 2
		if root < rem {
			rem -= root + 1
			root += 2
		}
	}
	return root >> 1
}
