package workload

import (
	"bytes"
	"crypto/aes"
	"crypto/sha1"
	"encoding/binary"
	"testing"
	"testing/quick"
)

// --- algorithm-level correctness of the kernel building blocks ---

func TestIsqrt32(t *testing.T) {
	cases := map[uint32]uint32{0: 0, 1: 1, 3: 1, 4: 2, 15: 3, 16: 4, 1 << 30: 1 << 15, 0xffffffff: 65535}
	for x, want := range cases {
		if got := isqrt32(x); got != want {
			t.Errorf("isqrt32(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestIsqrt32Quick(t *testing.T) {
	f := func(x uint32) bool {
		r := uint64(isqrt32(x))
		return r*r <= uint64(x) && (r+1)*(r+1) > uint64(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRotl32(t *testing.T) {
	if rotl32(0x80000000, 1) != 1 {
		t.Fatal("rotl wrap failed")
	}
	if rotl32(0x12345678, 8) != 0x34567812 {
		t.Fatal("rotl byte failed")
	}
}

// TestSHA1MatchesStdlib validates the sha kernel's compression
// function against crypto/sha1 on a single block.
func TestSHA1MatchesStdlib(t *testing.T) {
	// Run the kernel's exact algorithm host-side on a known block and
	// compare with crypto/sha1 over the same 64 bytes (no padding
	// differences: we hash exactly one block and sha1 pads, so instead
	// compare against a manually padded equivalent).
	var block [16]uint32
	for i := range block {
		block[i] = uint32(i)*0x01010101 + 7
	}
	// Kernel-side digest of one unpadded block.
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	var w [80]uint32
	copy(w[:16], block[:])
	for t2 := 16; t2 < 80; t2++ {
		w[t2] = rotl32(w[t2-3]^w[t2-8]^w[t2-14]^w[t2-16], 1)
	}
	a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
	for t2 := 0; t2 < 80; t2++ {
		var f, k uint32
		switch {
		case t2 < 20:
			f, k = (b&c)|((^b)&d), 0x5A827999
		case t2 < 40:
			f, k = b^c^d, 0x6ED9EBA1
		case t2 < 60:
			f, k = (b&c)|(b&d)|(c&d), 0x8F1BBCDC
		default:
			f, k = b^c^d, 0xCA62C1D6
		}
		tmp := rotl32(a, 5) + f + e + k + w[t2]
		e, d, c, b, a = d, c, rotl32(b, 30), a, tmp
	}
	h[0] += a
	h[1] += b
	h[2] += c
	h[3] += d
	h[4] += e

	// Reference: crypto/sha1 over (block || standard padding for a
	// 512-bit message) equals the raw compression output only if we
	// replicate the padding block too — instead use sha1's documented
	// behavior: digest of the 64-byte message involves two
	// compressions. So compress the padding block as well.
	var pad [16]uint32
	pad[0] = 0x80000000
	pad[15] = 512
	copy(w[:16], pad[:])
	for t2 := 16; t2 < 80; t2++ {
		w[t2] = rotl32(w[t2-3]^w[t2-8]^w[t2-14]^w[t2-16], 1)
	}
	a, b, c, d, e = h[0], h[1], h[2], h[3], h[4]
	for t2 := 0; t2 < 80; t2++ {
		var f, k uint32
		switch {
		case t2 < 20:
			f, k = (b&c)|((^b)&d), 0x5A827999
		case t2 < 40:
			f, k = b^c^d, 0x6ED9EBA1
		case t2 < 60:
			f, k = (b&c)|(b&d)|(c&d), 0x8F1BBCDC
		default:
			f, k = b^c^d, 0xCA62C1D6
		}
		tmp := rotl32(a, 5) + f + e + k + w[t2]
		e, d, c, b, a = d, c, rotl32(b, 30), a, tmp
	}
	h[0] += a
	h[1] += b
	h[2] += c
	h[3] += d
	h[4] += e

	msg := make([]byte, 64)
	for i, v := range block {
		binary.BigEndian.PutUint32(msg[i*4:], v)
	}
	want := sha1.Sum(msg)
	got := make([]byte, 20)
	for i, v := range h {
		binary.BigEndian.PutUint32(got[i*4:], v)
	}
	if !bytes.Equal(got, want[:]) {
		t.Fatalf("SHA-1 mismatch:\n got %x\nwant %x", got, want)
	}
}

// TestAESMatchesStdlib validates the rijndael kernel's block cipher
// against crypto/aes.
func TestAESMatchesStdlib(t *testing.T) {
	e := NewEnv(newFlat())
	ctx := newAESContext(e, aesKey)

	keyBytes := make([]byte, 16)
	for i, w := range aesKey {
		binary.BigEndian.PutUint32(keyBytes[i*4:], w)
	}
	ref, err := aes.NewCipher(keyBytes)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 20; trial++ {
		var s aesState
		pt := make([]byte, 16)
		r := newRNG(uint32(trial + 1))
		for i := 0; i < 4; i++ {
			s[i] = r.next()
			binary.BigEndian.PutUint32(pt[i*4:], s[i])
		}
		want := make([]byte, 16)
		ref.Encrypt(want, pt)

		ctx.encryptBlock(&s)
		got := make([]byte, 16)
		for i := 0; i < 4; i++ {
			binary.BigEndian.PutUint32(got[i*4:], s[i])
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: AES encrypt mismatch\n got %x\nwant %x", trial, got, want)
		}

		// And decryption inverts the reference ciphertext.
		var c aesState
		for i := 0; i < 4; i++ {
			c[i] = binary.BigEndian.Uint32(want[i*4:])
		}
		ctx.decryptBlock(&c)
		back := make([]byte, 16)
		for i := 0; i < 4; i++ {
			binary.BigEndian.PutUint32(back[i*4:], c[i])
		}
		if !bytes.Equal(back, pt) {
			t.Fatalf("trial %d: AES decrypt mismatch\n got %x\nwant %x", trial, back, pt)
		}
	}
}

// TestADPCMRoundTrip: decoding an encoded signal tracks the original
// within the codec's quantization error.
func TestADPCMRoundTrip(t *testing.T) {
	e := NewEnv(newFlat())
	n := 2048
	pcm := e.Alloc(n)
	codes := e.Alloc(n/8 + 1)
	out := e.Alloc(n)
	adpcmGenInput(e, pcm, 42)
	adpcmEncodeCore(e, pcm, codes)
	adpcmDecodeCore(e, codes, n, out)
	var sumErr, sumMag int64
	for i := 256; i < n; i++ { // skip adaptation warm-up
		d := int64(pcm.LoadI(i) - out.LoadI(i))
		if d < 0 {
			d = -d
		}
		m := int64(pcm.LoadI(i))
		if m < 0 {
			m = -m
		}
		sumErr += d
		sumMag += m
	}
	if sumErr*5 > sumMag {
		t.Fatalf("ADPCM reconstruction error too high: %d vs signal %d", sumErr, sumMag)
	}
}

// TestG721RoundTrip: the adaptive predictor codec must also track.
func TestG721RoundTrip(t *testing.T) {
	e := NewEnv(newFlat())
	n := 2048
	pcm := e.Alloc(n)
	codes := e.Alloc(n/8 + 1)
	out := e.Alloc(n)
	adpcmGenInput(e, pcm, 42)
	enc := newG721State(e)
	g721EncodeCore(e, enc, pcm, codes)
	dec := newG721State(e)
	g721DecodeCore(e, dec, codes, n, out)
	var sumErr, sumMag int64
	for i := 512; i < n; i++ {
		d := int64(pcm.LoadI(i) - out.LoadI(i))
		if d < 0 {
			d = -d
		}
		m := int64(pcm.LoadI(i))
		if m < 0 {
			m = -m
		}
		sumErr += d
		sumMag += m
	}
	if sumErr*2 > sumMag {
		t.Fatalf("G.721 reconstruction error too high: %d vs %d", sumErr, sumMag)
	}
}

// TestFFTRoundTrip: inverse(forward(x)) ~= x up to fixed-point scaling
// loss; we check correlation rather than exact equality.
func TestFFTRoundTrip(t *testing.T) {
	e := NewEnv(newFlat())
	re := e.Alloc(fftSize)
	im := e.Alloc(fftSize)
	tab := e.Alloc(sineTableSize)
	fftSineTable(e, tab)
	orig := make([]int32, fftSize)
	fftPrepare(e, re, im, 99)
	for i := range orig {
		orig[i] = re.LoadI(i)
	}
	fftCore(e, re, im, tab, false)
	fftCore(e, re, im, tab, true)
	// Each direction scales by 1/2 per stage: net gain 1/N * N = the
	// round trip preserves shape at reduced amplitude. Correlate.
	var dot, normA, normB int64
	for i := range orig {
		a, b := int64(orig[i]), int64(re.LoadI(i))
		dot += a * b
		normA += a * a
		normB += b * b
	}
	if normB == 0 {
		t.Fatal("round trip collapsed to zero")
	}
	// Cosine similarity must be high.
	// The 1/2-per-stage fixed-point scaling costs ~10 bits of
	// amplitude over the round trip, so tolerate quantization noise.
	cos2 := float64(dot) * float64(dot) / (float64(normA) * float64(normB))
	if cos2 < 0.85 {
		t.Fatalf("FFT round trip decorrelated: cos^2 = %f", cos2)
	}
}

// TestJPEGRoundTrip: decode(encode(img)) approximates the image.
func TestJPEGRoundTrip(t *testing.T) {
	e := NewEnv(newFlat())
	img := e.Alloc(jpegW * jpegH)
	stream := e.Alloc(jpegW * jpegH * 2)
	out := e.Alloc(jpegW * jpegH)
	jpegImage(e, img, 1)
	n := jpegEncodeImage(e, img, stream)
	if n == 0 {
		t.Fatal("encoder produced nothing")
	}
	jpegDecodeImage(e, stream, n, out)
	var sumErr int64
	for i := 0; i < jpegW*jpegH; i++ {
		d := int64(img.LoadI(i) - out.LoadI(i))
		if d < 0 {
			d = -d
		}
		sumErr += d
	}
	mean := float64(sumErr) / float64(jpegW*jpegH)
	if mean > 24 {
		t.Fatalf("JPEG mean abs error %.1f too high", mean)
	}
}

// TestQsortSorts verifies the in-place quicksort really sorts.
func TestQsortSorts(t *testing.T) {
	e := NewEnv(newFlat())
	n := 4000
	a := e.Alloc(n)
	r := newRNG(5)
	for i := 0; i < n; i++ {
		a.Store(i, r.next())
	}
	quicksort(e, a, 0, n-1)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		v := a.Load(i)
		if v < prev {
			t.Fatalf("not sorted at %d", i)
		}
		prev = v
	}
}

// TestDijkstraTriangle: dist satisfies the triangle inequality over
// relaxed edges (spot check via a tiny graph with known answers).
func TestDijkstraKnownGraph(t *testing.T) {
	e := NewEnv(newFlat())
	n := dijkstraNodes
	adj := e.Alloc(n * n)
	dist := e.Alloc(n)
	visited := e.Alloc(n)
	for i := 0; i < n*n; i++ {
		adj.Store(i, dijkstraInf)
	}
	// 0 -> 1 (5), 1 -> 2 (7), 0 -> 2 (20): shortest 0->2 is 12.
	adj.Store(0*n+1, 5)
	adj.Store(1*n+2, 7)
	adj.Store(0*n+2, 20)
	for i := 0; i < n; i++ {
		dist.Store(i, dijkstraInf)
		visited.Store(i, 0)
	}
	dist.Store(0, 0)
	for iter := 0; iter < n; iter++ {
		best, bestD := -1, uint32(dijkstraInf+1)
		for i := 0; i < n; i++ {
			if visited.Load(i) == 0 && dist.Load(i) < bestD {
				best, bestD = i, dist.Load(i)
			}
		}
		if best < 0 || bestD >= dijkstraInf {
			break
		}
		visited.Store(best, 1)
		for j := 0; j < n; j++ {
			w := adj.Load(best*n + j)
			if w < dijkstraInf && bestD+w < dist.Load(j) {
				dist.Store(j, bestD+w)
			}
		}
	}
	if dist.Load(2) != 12 {
		t.Fatalf("dist[2] = %d, want 12", dist.Load(2))
	}
}

// TestPatriciaInsertLookup: inserted keys are found exactly.
func TestPatriciaInsertLookup(t *testing.T) {
	e := NewEnv(newFlat())
	trie := newPatTrie(e, 600)
	keys := make([]uint32, 0, 500)
	r := newRNG(77)
	for i := 0; i < 500; i++ {
		k := r.next()
		if trie.insert(k) {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		if got := trie.lookup(k); got != k {
			t.Fatalf("lookup(%#x) = %#x", k, got)
		}
	}
	// Duplicate insertion must be rejected.
	if trie.insert(keys[0]) {
		t.Fatal("duplicate key inserted")
	}
}

func TestPatriciaQuick(t *testing.T) {
	f := func(keys []uint32) bool {
		e := NewEnv(newFlat())
		trie := newPatTrie(e, len(keys)+2)
		present := map[uint32]bool{}
		for _, k := range keys {
			if trie.insert(k) {
				present[k] = true
			}
		}
		for k := range present {
			if trie.lookup(k) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGF256: gmul agrees with xtime-based multiply-by-constants.
func TestGF256(t *testing.T) {
	for a := 0; a < 256; a++ {
		b := byte(a)
		if gmul(b, 1) != b {
			t.Fatal("gmul identity broken")
		}
		if gmul(b, 2) != xtime(b) {
			t.Fatal("gmul(.,2) != xtime")
		}
		if gmul(b, 3) != xtime(b)^b {
			t.Fatal("gmul(.,3) wrong")
		}
	}
	// S-box sanity: bijective, sbox[0]=0x63.
	sb, inv := aesTables()
	if sb[0] != 0x63 {
		t.Fatalf("sbox[0] = %#x, want 0x63", sb[0])
	}
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		if seen[sb[i]] {
			t.Fatal("sbox not bijective")
		}
		seen[sb[i]] = true
		if inv[sb[i]] != byte(i) {
			t.Fatal("inverse sbox wrong")
		}
	}
}

// TestSusanRespondsToCorners: a synthetic corner yields a response
// while a flat region yields none.
func TestSusanRespondsToCorners(t *testing.T) {
	e := NewEnv(newFlat())
	img := e.Alloc(susanW * susanH)
	lut := e.Alloc(512)
	resp := e.Alloc(susanW * susanH)
	susanLUT(e, lut)
	// Flat dark image with one bright square: corners at its edges.
	for i := 0; i < susanW*susanH; i++ {
		img.Store(i, 20)
	}
	for y := 40; y < 60; y++ {
		for x := 40; x < 60; x++ {
			img.Store(y*susanW+x, 220)
		}
	}
	susanCore(e, img, lut, resp, 37*100/2)
	if resp.Load(40*susanW+40) == 0 {
		t.Fatal("no corner response at the square's corner")
	}
	if resp.Load(10*susanW+10) != 0 {
		t.Fatal("flat region produced a corner response")
	}
}

// TestMpegMotionSearchFindsShift: a pure translation is recovered.
func TestMpegMotionSearchFindsShift(t *testing.T) {
	e := NewEnv(newFlat())
	ref := e.Alloc(mpegW * mpegH)
	cur := e.Alloc(mpegW * mpegH)
	r := newRNG(3)
	for y := 0; y < mpegH; y++ {
		for x := 0; x < mpegW; x++ {
			ref.StoreI(y*mpegW+x, int32(r.intn(255)))
		}
	}
	// cur = ref shifted right by 2 (content moved +2 in x means block
	// at bx matches ref at bx-2... use dx = -2 convention check).
	for y := 0; y < mpegH; y++ {
		for x := 0; x < mpegW; x++ {
			sx := x - 2
			if sx < 0 {
				sx = 0
			}
			cur.StoreI(y*mpegW+x, ref.LoadI(y*mpegW+sx))
		}
	}
	dx, dy := motionSearch(e, cur, ref, 16, 16)
	if dx != -2 || dy != 0 {
		t.Fatalf("motion vector (%d,%d), want (-2,0)", dx, dy)
	}
}

// TestEpicPyramidEnergyCompaction: the Laplacian bands should be much
// smaller than the raw image (that is the point of the coder).
func TestEpicFilterSmooths(t *testing.T) {
	e := NewEnv(newFlat())
	w, h := 32, 32
	src := e.Alloc(w * h)
	dst := e.Alloc(w * h)
	r := newRNG(11)
	for i := 0; i < w*h; i++ {
		src.StoreI(i, int32(r.intn(256)))
	}
	epicFilterRow(e, src, w, h, dst)
	// The filtered signal has lower variation than the input.
	varOf := func(a Arr) int64 {
		var v int64
		for i := 1; i < w*h; i++ {
			d := int64(a.LoadI(i) - a.LoadI(i-1))
			v += d * d
		}
		return v
	}
	if varOf(dst) >= varOf(src) {
		t.Fatal("binomial filter did not smooth")
	}
}

// TestPegwitModExp: x^1 = x mod p, x^2 = x*x mod p.
func TestPegwitModExp(t *testing.T) {
	e := NewEnv(newFlat())
	base := e.Alloc(pegLimbs)
	exp := e.Alloc(pegLimbs)
	out := e.Alloc(pegLimbs)
	r := newRNG(13)
	for i := 0; i < pegLimbs; i++ {
		base.Store(i, r.next())
		exp.Store(i, 0)
	}
	exp.Store(0, 1)
	pegExpMod(e, base, exp, out)
	// x^1 must equal x mod p (x < p given top limb constraint? not
	// guaranteed; compare against a host-side reduction instead).
	x := bnLoad(base)
	want := pegMulMod(e, x, [pegLimbs]uint32{1})
	got := bnLoad(out)
	if got != want {
		t.Fatalf("x^1 != x mod p:\n got %v\nwant %v", got, want)
	}
	// x^2 == mulmod(x, x).
	for i := 0; i < pegLimbs; i++ {
		base.Store(i, x[i])
		exp.Store(i, 0)
	}
	exp.Store(0, 2)
	pegExpMod(e, base, exp, out)
	want = pegMulMod(e, want, want)
	if bnLoad(out) != want {
		t.Fatal("x^2 != (x mod p)^2 mod p")
	}
}

// TestGSMFrameRoundTrip: the decoder output is a bounded-energy signal
// correlated with the input (lossy codec sanity).
func TestGSMEncodeDecodeStable(t *testing.T) {
	e := NewEnv(newFlat())
	frames := 4
	pcm := e.Alloc(frames * gsmFrame)
	params := e.Alloc(frames * 80)
	out := e.Alloc(frames * gsmFrame)
	adpcmGenInput(e, pcm, 21)
	enc := newGSMScratch(e)
	oi := 0
	for f := 0; f < frames; f++ {
		oi = gsmEncodeFrame(e, pcm, f*gsmFrame, enc, params, oi)
	}
	dec := newGSMScratch(e)
	ri := 0
	for f := 0; f < frames; f++ {
		ri = gsmDecodeFrame(e, params, ri, dec, out, f*gsmFrame)
	}
	if ri != oi {
		t.Fatalf("decoder consumed %d params, encoder wrote %d", ri, oi)
	}
	// Output must be bounded (no fixed-point blow-up).
	for i := 0; i < frames*gsmFrame; i++ {
		v := out.LoadI(i)
		if v > 32767 || v < -32768 {
			t.Fatalf("decoder sample %d out of 16-bit range: %d", i, v)
		}
	}
}

// TestMpegRoundTripQuality: the decoded frame approximates the coded
// frame (motion compensation + residual must compose correctly).
func TestMpegRoundTripQuality(t *testing.T) {
	e := NewEnv(newFlat())
	ref := e.Alloc(mpegW * mpegH)
	cur := e.Alloc(mpegW * mpegH)
	out := e.Alloc(mpegW * mpegH)
	stream := e.Alloc(mpegW * mpegH * 3)
	blk := e.Alloc(64)
	mpegFrame(e, ref, 0, 0x3e9)
	mpegFrame(e, cur, 1, 0x3e9)
	n := mpeg2EncodeFrame(e, cur, ref, stream, blk)
	mpeg2DecodeFrame(e, stream, n, ref, out, blk)
	var sumErr int64
	for i := 0; i < mpegW*mpegH; i++ {
		d := int64(cur.LoadI(i) - out.LoadI(i))
		if d < 0 {
			d = -d
		}
		sumErr += d
	}
	mean := float64(sumErr) / float64(mpegW*mpegH)
	if mean > 20 {
		t.Fatalf("MPEG-2 mean abs reconstruction error %.1f too high", mean)
	}
}

// TestEpicRoundTrip: unepic(epic(img)) approximates the image. The
// encoder quantizes each Laplacian band and replaces the input with
// progressively smoothed copies, so tolerate coarse error.
func TestEpicRoundTrip(t *testing.T) {
	e := NewEnv(newFlat())
	img := e.Alloc(epicW * epicH)
	smooth := e.Alloc(epicW * epicH)
	tmp := e.Alloc(epicW * epicH)
	down := e.Alloc(epicW * epicH / 4)
	// Generous stream: a noisy image can emit ~2 words per pixel.
	stream := e.Alloc(epicW * epicH * 3)
	orig := make([]int32, epicW*epicH)

	r := newRNG(0xe91c)
	for y := 0; y < epicH; y++ {
		for x := 0; x < epicW; x++ {
			v := int32(((x*x + y*y) >> 5 & 0xff) + r.intn(9))
			img.StoreI(y*epicW+x, v)
			orig[y*epicW+x] = v
		}
	}
	// Re-run the encoder body (same structure as epicRun's level loop).
	si := 0
	emit := func(v int32) {
		if si < stream.Len() {
			stream.StoreI(si, v)
			si++
		}
	}
	w, hh := epicW, epicH
	cur := img
	for level := 0; level < epicLevels; level++ {
		epicFilterRow(e, cur, w, hh, tmp)
		epicFilterCol(e, tmp, w, hh, smooth)
		q := int32(4 << level)
		run := int32(0)
		for i := 0; i < w*hh; i++ {
			d := (cur.LoadI(i) - smooth.LoadI(i)) / q
			if d == 0 {
				run++
			} else {
				emit(run)
				emit(d)
				run = 0
			}
		}
		emit(-1)
		w2, h2 := w/2, hh/2
		for y := 0; y < h2; y++ {
			for x := 0; x < w2; x++ {
				down.StoreI(y*w2+x, smooth.LoadI((2*y)*w+2*x))
			}
		}
		for i := 0; i < w2*h2; i++ {
			cur.StoreI(i, down.LoadI(i))
		}
		w, hh = w2, h2
	}
	for i := 0; i < w*hh; i++ {
		emit(cur.LoadI(i))
	}

	out := e.Alloc(epicW * epicH)
	epicDecode(e, stream, si, out)
	var sumErr int64
	for i := 0; i < epicW*epicH; i++ {
		d := int64(out.LoadI(i) - orig[i])
		if d < 0 {
			d = -d
		}
		sumErr += d
	}
	mean := float64(sumErr) / float64(epicW*epicH)
	if mean > 40 {
		t.Fatalf("EPIC mean abs reconstruction error %.1f too high", mean)
	}
}
