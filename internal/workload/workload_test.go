package workload

import (
	"testing"

	"wlcache/internal/isa"
)

// flatMachine is a timing-free machine: a plain memory map. It lets
// workload algorithms be tested independently of the simulator.
type flatMachine struct {
	mem    map[uint32]uint32
	instrs uint64
	loads  uint64
	stores uint64
}

func newFlat() *flatMachine { return &flatMachine{mem: make(map[uint32]uint32)} }

func (f *flatMachine) Load32(addr uint32) uint32 {
	if addr&3 != 0 {
		panic("unaligned")
	}
	f.loads++
	f.instrs++
	return f.mem[addr]
}

func (f *flatMachine) Store32(addr uint32, v uint32) {
	if addr&3 != 0 {
		panic("unaligned")
	}
	f.stores++
	f.instrs++
	f.mem[addr] = v
}

func (f *flatMachine) Compute(n int) { f.instrs += uint64(n) }

var _ isa.Machine = (*flatMachine)(nil)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("registry has %d workloads, the paper uses 23", len(all))
	}
	if len(SuiteNames(MediaBench)) != 15 {
		t.Fatalf("MediaBench has %d entries, want 15", len(SuiteNames(MediaBench)))
	}
	if len(SuiteNames(MiBench)) != 8 {
		t.Fatalf("MiBench has %d entries, want 8", len(SuiteNames(MiBench)))
	}
	for _, w := range all {
		if w.Run == nil {
			t.Fatalf("%s has no Run", w.Name)
		}
	}
	if _, ok := ByName("sha"); !ok {
		t.Fatal("ByName(sha) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown name")
	}
	if names := SortedNames(); len(names) != 23 {
		t.Fatal("SortedNames wrong length")
	}
}

// TestAllWorkloadsDeterministic runs every kernel twice on fresh flat
// machines: identical checksums and identical instruction counts.
func TestAllWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m1, m2 := newFlat(), newFlat()
			c1 := w.Run(m1, 1)
			c2 := w.Run(m2, 1)
			if c1 != c2 {
				t.Fatalf("checksums differ: %#x vs %#x", c1, c2)
			}
			if m1.instrs != m2.instrs {
				t.Fatalf("instruction counts differ: %d vs %d", m1.instrs, m2.instrs)
			}
			if m1.instrs == 0 || m1.loads == 0 || m1.stores == 0 {
				t.Fatalf("kernel did no work: instr=%d loads=%d stores=%d", m1.instrs, m1.loads, m1.stores)
			}
		})
	}
}

// TestWorkloadsScale checks scale actually grows the work.
func TestWorkloadsScale(t *testing.T) {
	for _, name := range []string{"sha", "adpcmencode", "qsort", "rijndael_e"} {
		w, _ := ByName(name)
		m1, m2 := newFlat(), newFlat()
		w.Run(m1, 1)
		w.Run(m2, 2)
		if m2.instrs < m1.instrs*3/2 {
			t.Errorf("%s: scale 2 only grew work %d -> %d", name, m1.instrs, m2.instrs)
		}
	}
}

func TestEnvAllocAndBounds(t *testing.T) {
	e := NewEnv(newFlat())
	a := e.Alloc(4)
	b := e.Alloc(4)
	if b.Base()-a.Base() != 16 {
		t.Fatalf("allocations overlap or gap: %#x %#x", a.Base(), b.Base())
	}
	a.Store(0, 1)
	a.Store(3, 2)
	if a.Load(0) != 1 || a.Load(3) != 2 {
		t.Fatal("array round trip failed")
	}
	for _, f := range []func(){
		func() { a.Load(4) },
		func() { a.Load(-1) },
		func() { a.Store(4, 0) },
		func() { a.Slice(2, 3) },
		func() { e.Alloc(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-bounds access accepted")
				}
			}()
			f()
		}()
	}
}

func TestEnvSlice(t *testing.T) {
	e := NewEnv(newFlat())
	a := e.Alloc(10)
	for i := 0; i < 10; i++ {
		a.Store(i, uint32(i*10))
	}
	s := a.Slice(3, 4)
	if s.Len() != 4 || s.Load(0) != 30 || s.Load(3) != 60 {
		t.Fatal("slice view wrong")
	}
	s.Store(0, 99)
	if a.Load(3) != 99 {
		t.Fatal("slice not aliased to parent")
	}
}

func TestSignedHelpers(t *testing.T) {
	e := NewEnv(newFlat())
	a := e.Alloc(1)
	a.StoreI(0, -5)
	if a.LoadI(0) != -5 {
		t.Fatal("signed round trip failed")
	}
}

func TestChecksumLoadsThroughMachine(t *testing.T) {
	m := newFlat()
	e := NewEnv(m)
	a := e.Alloc(8)
	for i := 0; i < 8; i++ {
		a.Store(i, uint32(i))
	}
	before := m.loads
	c1 := a.Checksum(0)
	if m.loads != before+8 {
		t.Fatal("checksum did not load every element")
	}
	if c2 := a.Checksum(0); c1 != c2 {
		t.Fatal("checksum not deterministic")
	}
	if c3 := a.Checksum(123); c3 == c1 {
		t.Fatal("seed ignored")
	}
}

func TestRNGDeterministicNonZero(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		x, y := a.next(), b.next()
		if x != y {
			t.Fatal("rng not deterministic")
		}
		if x == 0 {
			t.Fatal("xorshift produced 0")
		}
	}
	if newRNG(0).next() == 0 {
		t.Fatal("zero seed not remapped")
	}
	r := newRNG(9)
	for i := 0; i < 100; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
}
