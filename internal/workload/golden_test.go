package workload

import "testing"

// goldenChecksums pins every kernel's scale-1 output digest. These
// values must be identical on every platform and across refactors:
// the crash-consistency test suite depends on checksums being a
// faithful function of the computation. Update a value only when the
// corresponding kernel is intentionally changed.
var goldenChecksums = map[string]uint32{
	"adpcmdecode":   0xa3401bda,
	"adpcmencode":   0xbe11c7ab,
	"epic":          0xa4402790,
	"g721decode":    0x4984edb7,
	"g721encode":    0x493f83fe,
	"gsmdecode":     0xfc5fdeb3,
	"gsmencode":     0x2786df62,
	"jpegdecode":    0x6f00685f,
	"jpegencode":    0x6f74a716,
	"mpeg2decode":   0x804d630a,
	"mpeg2encode":   0x3f33d332,
	"pegwitdecrypt": 0x8ad121c7,
	"sha":           0x9e58a28e,
	"susancorners":  0x660eb52c,
	"susanedges":    0xb172d65b,
	"basicmath":     0xaec24eb0,
	"qsort":         0x6dd053d8,
	"dijkstra":      0x9f63c53a,
	"FFT":           0x7147f734,
	"FFT_i":         0x9b25c7fe,
	"patricia":      0x240f4f2c,
	"rijndael_d":    0x4cb423cc,
	"rijndael_e":    0x2dbcee9e,
}

func TestGoldenChecksums(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := goldenChecksums[w.Name]
			if !ok {
				t.Fatalf("no golden checksum for %s — add it", w.Name)
			}
			got := w.Run(newFlat(), 1)
			if got != want {
				t.Fatalf("checksum %#08x, golden %#08x (kernel behavior changed)", got, want)
			}
		})
	}
	if len(goldenChecksums) != len(All()) {
		t.Fatalf("golden table has %d entries, registry %d", len(goldenChecksums), len(All()))
	}
}
