package workload

import "wlcache/internal/isa"

// dijkstra (MiBench): single-source shortest paths over a dense
// adjacency matrix, repeated for several sources as the original
// workload does for many (src, dst) pairs.

const (
	dijkstraNodes   = 128
	dijkstraSources = 6
	dijkstraInf     = 0x3fffffff
)

func dijkstraRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	n := dijkstraNodes
	adj := e.Alloc(n * n)
	dist := e.Alloc(n)
	visited := e.Alloc(n)

	r := newRNG(0xd17c57a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				adj.Store(i*n+j, 0)
			case r.intn(100) < 12: // sparse-ish connectivity
				adj.Store(i*n+j, uint32(1+r.intn(97)))
			default:
				adj.Store(i*n+j, dijkstraInf)
			}
			e.Compute(4)
		}
	}

	h := uint32(2166136261)
	runs := dijkstraSources * scale
	for s := 0; s < runs; s++ {
		src := (s * 31) % n
		for i := 0; i < n; i++ {
			dist.Store(i, dijkstraInf)
			visited.Store(i, 0)
			e.Compute(2)
		}
		dist.Store(src, 0)
		for iter := 0; iter < n; iter++ {
			// Select the unvisited node with the smallest distance.
			best, bestD := -1, uint32(dijkstraInf+1)
			for i := 0; i < n; i++ {
				if visited.Load(i) == 0 {
					if d := dist.Load(i); d < bestD {
						best, bestD = i, d
					}
				}
				e.Compute(4)
			}
			if best < 0 || bestD >= dijkstraInf {
				break
			}
			visited.Store(best, 1)
			// Relax its out-edges.
			for j := 0; j < n; j++ {
				w := adj.Load(best*n + j)
				if w < dijkstraInf {
					nd := bestD + w
					if nd < dist.Load(j) {
						dist.Store(j, nd)
					}
				}
				e.Compute(5)
			}
		}
		h = mix(h, dist.Checksum(h))
	}
	return h
}
