package workload

import "wlcache/internal/isa"

// g721encode / g721decode (MediaBench): G.721 32 kbit/s ADPCM with an
// adaptive predictor (2 poles + 6 zeros, sign-sign LMS adaptation)
// and an adaptive 4-bit quantizer with a logarithmic scale factor —
// the structure of the ITU reference code in fixed point.

const g721SamplesPerScale = 8192

// g721State is the codec state; it lives in simulated memory (12
// words) exactly like the C struct the reference code carries around.
type g721State struct {
	s Arr // [0..1] a poles, [2..7] b zeros, [8..13] dq history, [14..15] sr history, [16] y scale
}

const (
	g721A   = 0  // 2 pole coefficients
	g721B   = 2  // 6 zero coefficients
	g721DQ  = 8  // 6 past quantized differences
	g721SR  = 14 // 2 past reconstructed signals
	g721Y   = 16 // quantizer scale factor (Q4 log domain)
	g721Len = 17
)

func newG721State(e *Env) *g721State {
	st := &g721State{s: e.Alloc(g721Len)}
	for i := 0; i < g721Len; i++ {
		st.s.StoreI(i, 0)
	}
	st.s.StoreI(g721Y, 544) // initial scale, as in the reference
	return st
}

// predict computes the signal estimate se from pole/zero filters.
func (st *g721State) predict(e *Env) int32 {
	var sez int32
	for i := 0; i < 6; i++ {
		sez += (st.s.LoadI(g721B+i) * st.s.LoadI(g721DQ+i)) >> 14
		e.Compute(4)
	}
	se := sez
	for i := 0; i < 2; i++ {
		se += (st.s.LoadI(g721A+i) * st.s.LoadI(g721SR+i)) >> 14
		e.Compute(4)
	}
	return se
}

// quantize maps the difference d to a 4-bit code using the scale y.
func g721Quantize(d, y int32) int32 {
	sign := int32(0)
	if d < 0 {
		sign = 8
		d = -d
	}
	// log2-ish companding: compare against scaled decision levels.
	step := y >> 2
	if step < 1 {
		step = 1
	}
	q := d / step
	if q > 7 {
		q = 7
	}
	return sign | q
}

// dequantize reconstructs the difference from code and scale.
func g721Dequantize(code, y int32) int32 {
	step := y >> 2
	if step < 1 {
		step = 1
	}
	mag := (code&7)*step + step/2
	if code&8 != 0 {
		return -mag
	}
	return mag
}

// update adapts the quantizer scale and the predictor coefficients
// (sign-sign LMS with leakage, as the reference does).
func (st *g721State) update(e *Env, code, dq, sr int32) {
	// Scale factor adaptation: fast log-domain step.
	y := st.s.LoadI(g721Y)
	var dy int32
	switch code & 7 {
	case 0, 1:
		dy = -4
	case 2, 3:
		dy = 0
	case 4, 5:
		dy = 8
	default:
		dy = 16
	}
	y += dy
	if y < 80 {
		y = 80
	}
	if y > 5120 {
		y = 5120
	}
	st.s.StoreI(g721Y, y)

	// Zero (FIR) coefficients: sign-sign LMS with 1/256 leakage.
	for i := 0; i < 6; i++ {
		b := st.s.LoadI(g721B + i)
		b -= b >> 8
		if dqi := st.s.LoadI(g721DQ + i); (dqi >= 0) == (dq >= 0) && dq != 0 && dqi != 0 {
			b += 128
		} else if dq != 0 && dqi != 0 {
			b -= 128
		}
		st.s.StoreI(g721B+i, clamp32(b, -16384, 16383))
		e.Compute(8)
	}
	// Pole (IIR) coefficients with stability clamps.
	for i := 0; i < 2; i++ {
		a := st.s.LoadI(g721A + i)
		a -= a >> 8
		if sri := st.s.LoadI(g721SR + i); (sri >= 0) == (sr >= 0) && sr != 0 && sri != 0 {
			a += 96
		} else if sr != 0 && sri != 0 {
			a -= 96
		}
		st.s.StoreI(g721A+i, clamp32(a, -12288, 12288))
		e.Compute(8)
	}
	// Shift histories.
	for i := 5; i > 0; i-- {
		st.s.StoreI(g721DQ+i, st.s.LoadI(g721DQ+i-1))
		e.Compute(2)
	}
	st.s.StoreI(g721DQ, dq)
	st.s.StoreI(g721SR+1, st.s.LoadI(g721SR))
	st.s.StoreI(g721SR, sr)
	e.Compute(6)
}

func clamp32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// g721EncodeCore codes pcm into 4-bit codes packed 8 per word.
func g721EncodeCore(e *Env, st *g721State, pcm, out Arr) {
	var packed uint32
	nib, oi := 0, 0
	for i := 0; i < pcm.Len(); i++ {
		x := pcm.LoadI(i)
		se := st.predict(e)
		d := x - se
		y := st.s.LoadI(g721Y)
		code := g721Quantize(d, y)
		dq := g721Dequantize(code, y)
		sr := clamp32(se+dq, -32768, 32767)
		st.update(e, code, dq, sr)
		packed |= uint32(code&15) << (4 * nib)
		nib++
		if nib == 8 {
			out.Store(oi, packed)
			oi++
			packed, nib = 0, 0
		}
		e.Compute(14)
	}
	if nib > 0 {
		out.Store(oi, packed)
	}
}

// g721DecodeCore reconstructs PCM from the packed codes.
func g721DecodeCore(e *Env, st *g721State, in Arr, n int, out Arr) {
	for i := 0; i < n; i++ {
		word := in.Load(i / 8)
		code := int32(word>>(4*(i%8))) & 15
		se := st.predict(e)
		y := st.s.LoadI(g721Y)
		dq := g721Dequantize(code, y)
		sr := clamp32(se+dq, -32768, 32767)
		st.update(e, code, dq, sr)
		out.StoreI(i, sr)
		e.Compute(12)
	}
}

func g721EncodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	n := g721SamplesPerScale * scale
	pcm := e.Alloc(n)
	out := e.Alloc(n/8 + 1)
	adpcmGenInput(e, pcm, 0x672100)
	st := newG721State(e)
	g721EncodeCore(e, st, pcm, out)
	return out.Checksum(0)
}

func g721DecodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	n := g721SamplesPerScale * scale
	pcm := e.Alloc(n)
	codes := e.Alloc(n/8 + 1)
	out := e.Alloc(n)
	adpcmGenInput(e, pcm, 0x672100)
	enc := newG721State(e)
	g721EncodeCore(e, enc, pcm, codes)
	dec := newG721State(e)
	g721DecodeCore(e, dec, codes, n, out)
	return out.Checksum(0)
}
