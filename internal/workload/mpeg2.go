package workload

import "wlcache/internal/isa"

// mpeg2encode / mpeg2decode (MediaBench): inter-frame video coding on
// synthetic frames — block motion estimation (three-step search, SAD
// metric), DCT residual coding (reusing the JPEG integer DCT), and
// the matching motion-compensated decoder.

const (
	mpegW     = 64
	mpegH     = 48
	mpegBlk   = 8
	mpegRange = 4 // motion search range
)

// mpegFrame synthesizes frame t: a textured background with moving
// objects so motion estimation finds real vectors.
func mpegFrame(e *Env, f Arr, t int, seed uint32) {
	r := newRNG(seed + uint32(t)*31)
	for y := 0; y < mpegH; y++ {
		for x := 0; x < mpegW; x++ {
			v := int32(96 + ((x+y*3)&31)*2 + r.intn(5))
			f.StoreI(y*mpegW+x, v)
			e.Compute(5)
		}
	}
	// Two moving bright squares.
	for obj := 0; obj < 2; obj++ {
		ox := (10 + obj*24 + t*(2+obj)) % (mpegW - 12)
		oy := (6 + obj*12 + t*(1+obj)) % (mpegH - 12)
		for y := oy; y < oy+10; y++ {
			for x := ox; x < ox+10; x++ {
				f.StoreI(y*mpegW+x, int32(200+obj*30))
				e.Compute(2)
			}
		}
	}
}

// sad8 computes the sum of absolute differences between an 8x8 block
// of cur at (bx,by) and ref at (bx+dx, by+dy); returns a large value
// when the candidate falls outside the frame.
func sad8(e *Env, cur, ref Arr, bx, by, dx, dy int) int32 {
	if bx+dx < 0 || by+dy < 0 || bx+dx+mpegBlk > mpegW || by+dy+mpegBlk > mpegH {
		return 1 << 30
	}
	var sad int32
	for y := 0; y < mpegBlk; y++ {
		for x := 0; x < mpegBlk; x++ {
			c := cur.LoadI((by+y)*mpegW + bx + x)
			p := ref.LoadI((by+dy+y)*mpegW + bx + dx + x)
			d := c - p
			if d < 0 {
				d = -d
			}
			sad += d
			e.Compute(5)
		}
	}
	return sad
}

// motionSearch runs a three-step search and returns the best vector.
func motionSearch(e *Env, cur, ref Arr, bx, by int) (int, int) {
	bestDx, bestDy := 0, 0
	best := sad8(e, cur, ref, bx, by, 0, 0)
	for step := mpegRange / 2; step >= 1; step /= 2 {
		// Evaluate all eight neighbors of the current center, then
		// move the center to the winner (classic three-step search).
		cx, cy := bestDx, bestDy
		for _, d := range [8][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
			dx, dy := cx+d[0]*step, cy+d[1]*step
			if s := sad8(e, cur, ref, bx, by, dx, dy); s < best {
				best, bestDx, bestDy = s, dx, dy
			}
			e.Compute(4)
		}
	}
	return bestDx, bestDy
}

// mpeg2EncodeFrame writes motion vectors and quantized residual
// coefficients for every block; returns words written.
func mpeg2EncodeFrame(e *Env, cur, ref, stream Arr, blk Arr) int {
	si := 0
	emit := func(v int32) {
		if si < stream.Len() {
			stream.StoreI(si, v)
			si++
		}
	}
	for by := 0; by < mpegH; by += mpegBlk {
		for bx := 0; bx < mpegW; bx += mpegBlk {
			dx, dy := motionSearch(e, cur, ref, bx, by)
			emit(int32(dx))
			emit(int32(dy))
			// Residual block.
			for y := 0; y < mpegBlk; y++ {
				for x := 0; x < mpegBlk; x++ {
					c := cur.LoadI((by+y)*mpegW + bx + x)
					p := ref.LoadI((by+dy+y)*mpegW + bx + dx + x)
					blk.StoreI(y*8+x, c-p)
					e.Compute(4)
				}
			}
			for r := 0; r < 8; r++ {
				dct1D(e, blk, r*8, 1)
			}
			for c := 0; c < 8; c++ {
				dct1D(e, blk, c, 8)
			}
			// Coarse quantization; emit nonzeros as (index, value).
			for k := 0; k < 64; k++ {
				q := blk.LoadI(k) / 256
				if q != 0 {
					emit(int32(k))
					emit(q)
				}
				e.Compute(4)
			}
			emit(-1) // end of block
		}
	}
	return si
}

// mpeg2DecodeFrame reconstructs a frame from stream into out using ref.
func mpeg2DecodeFrame(e *Env, stream Arr, words int, ref, out Arr, blk Arr) {
	si := 0
	read := func() int32 {
		if si >= words {
			return -1
		}
		v := stream.LoadI(si)
		si++
		return v
	}
	for by := 0; by < mpegH; by += mpegBlk {
		for bx := 0; bx < mpegW; bx += mpegBlk {
			dx := int(read())
			dy := int(read())
			for k := 0; k < 64; k++ {
				blk.StoreI(k, 0)
			}
			for {
				k := read()
				if k < 0 {
					break
				}
				v := read()
				blk.StoreI(int(k), v*256)
				e.Compute(5)
			}
			for c := 0; c < 8; c++ {
				idct1D(e, blk, c, 8)
			}
			for r := 0; r < 8; r++ {
				idct1D(e, blk, r*8, 1)
			}
			for y := 0; y < mpegBlk; y++ {
				for x := 0; x < mpegBlk; x++ {
					px, py := bx+dx+x, by+dy+y
					var p int32
					if px >= 0 && py >= 0 && px < mpegW && py < mpegH {
						p = ref.LoadI(py*mpegW + px)
					}
					v := p + blk.LoadI(y*8+x)/16
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					out.StoreI((by+y)*mpegW+bx+x, v)
					e.Compute(6)
				}
			}
		}
	}
}

const mpegFramesPerScale = 3

func mpeg2EncodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	ref := e.Alloc(mpegW * mpegH)
	cur := e.Alloc(mpegW * mpegH)
	stream := e.Alloc(mpegW * mpegH * 3)
	blk := e.Alloc(64)
	mpegFrame(e, ref, 0, 0x3e9)
	h := uint32(0)
	for t := 1; t <= mpegFramesPerScale*scale; t++ {
		mpegFrame(e, cur, t, 0x3e9)
		n := mpeg2EncodeFrame(e, cur, ref, stream, blk)
		h = mix(h, uint32(n))
		h = mix(h, stream.Slice(0, n).Checksum(h))
		// The encoder's reference advances to the coded frame.
		for i := 0; i < ref.Len(); i++ {
			ref.Store(i, cur.Load(i))
			e.Compute(2)
		}
	}
	return h
}

func mpeg2DecodeRun(m isa.Machine, scale int) uint32 {
	e := NewEnv(m)
	ref := e.Alloc(mpegW * mpegH)
	cur := e.Alloc(mpegW * mpegH)
	out := e.Alloc(mpegW * mpegH)
	stream := e.Alloc(mpegW * mpegH * 3)
	blk := e.Alloc(64)
	mpegFrame(e, ref, 0, 0x3e9)
	h := uint32(0)
	for t := 1; t <= mpegFramesPerScale*scale; t++ {
		mpegFrame(e, cur, t, 0x3e9)
		n := mpeg2EncodeFrame(e, cur, ref, stream, blk)
		mpeg2DecodeFrame(e, stream, n, ref, out, blk)
		h = mix(h, out.Checksum(h))
		for i := 0; i < ref.Len(); i++ {
			ref.Store(i, out.Load(i))
			e.Compute(2)
		}
	}
	return h
}
