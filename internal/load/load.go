// Package load is the wlserve load harness: N concurrent clients
// submit overlapping sweep specs at a target rate, the server's
// /metrics endpoint is scraped (and validated as Prometheus text)
// between phases, and the outcome — throughput, submit→done latency
// percentiles, dedup ratio, shed rate — is reported as a wlload/v1
// JSON document. The overlapping specs are the point: concurrent
// clients requesting intersecting matrices exercise the single-flight
// store, so the dedup ratio measures the service's core claim (a cell
// is computed once per server lifetime, no matter how many sweeps
// want it).
package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wlcache/internal/expt"
	"wlcache/internal/hostinfo"
	"wlcache/internal/obs"
	"wlcache/internal/serve"
	"wlcache/internal/stats"
)

// Schema identifies the report format.
const Schema = "wlload/v1"

// Config tunes a load run.
type Config struct {
	// Base is the target server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Clients is the number of concurrent submitters (0 = 4).
	Clients int
	// Requests is the number of submissions per phase (0 = 2×Clients).
	Requests int
	// Phases repeats the request batch, scraping /metrics between
	// batches (0 = 1).
	Phases int
	// Rate caps aggregate submissions per second (0 = unpaced).
	Rate float64
	// Specs are submitted round-robin (nil = DefaultSpecs: the full
	// golden matrix alternating with its figure-kinds subset, so
	// concurrent submissions overlap and the dedup path is exercised).
	Specs []serve.Spec
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c Config) normalize() Config {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Requests <= 0 {
		c.Requests = 2 * c.Clients
	}
	if c.Phases <= 0 {
		c.Phases = 1
	}
	if len(c.Specs) == 0 {
		c.Specs = DefaultSpecs()
	}
	return c
}

// DefaultSpecs returns the standard overlapping pair: the full golden
// matrix (78 cells) and its figure-kinds subset (24 cells, all
// contained in the first), alternated across submissions.
func DefaultSpecs() []serve.Spec {
	var figs []string
	for _, k := range expt.FigureKinds() {
		figs = append(figs, string(k))
	}
	return []serve.Spec{{}, {Designs: figs}}
}

// Latency is the submit→done distribution over completed sweeps, in
// milliseconds. Percentiles are exact order statistics, not histogram
// estimates.
type Latency struct {
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Cells aggregates the done-event accounting over completed sweeps.
type Cells struct {
	Total       int `json:"total"`
	Computed    int `json:"computed"`
	FromJournal int `json:"from_journal"`
	FromShared  int `json:"from_shared"`
	Deduped     int `json:"deduped"`
	Failed      int `json:"failed"`
	Skipped     int `json:"skipped"`
	Retries     int `json:"retries"`
}

// Scrape is one /metrics + /metricz observation. PromSamples counts
// the samples of the /metrics scrape after validating it parses as
// Prometheus text — a zero here means the exposition was malformed.
type Scrape struct {
	// Phase 0 is the pre-run scrape; phase n the scrape after batch n.
	Phase       int                   `json:"phase"`
	PromSamples int                   `json:"prom_samples"`
	Metrics     serve.MetricsSnapshot `json:"metrics"`
}

// Report is the wlload/v1 document. Host self-describes the machine
// that generated the load (the client side — latencies are measured
// there) so run-history entries key comparably; old reports without it
// still ingest as host "unknown".
type Report struct {
	Schema           string         `json:"schema"`
	Host             *hostinfo.Info `json:"host,omitempty"`
	Target           string         `json:"target"`
	Clients          int            `json:"clients"`
	Phases           int            `json:"phases"`
	RequestsPerPhase int            `json:"requests_per_phase"`
	RatePerSec       float64        `json:"rate_per_sec,omitempty"`
	DurMS            int64          `json:"dur_ms"`

	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	// Shed counts 429 load-sheds — expected behavior under overload,
	// not failures.
	Shed int `json:"shed"`
	// HTTP5xx counts 5xx submissions; the CI load gate fails on any.
	HTTP5xx int `json:"http_5xx"`
	// Failed counts submissions that neither completed nor shed:
	// transport errors, 4xx/5xx, streams that died before done.
	Failed int `json:"failed"`

	ThroughputRPS float64 `json:"throughput_rps"`
	CellsPerSec   float64 `json:"cells_per_sec"`
	Latency       Latency `json:"latency"`

	Cells Cells `json:"cells"`
	// DedupRatio is the fraction of requested cells served without
	// fresh computation (journal, shared store, or in-run dedup) — the
	// overlap dividend.
	DedupRatio float64 `json:"dedup_ratio"`
	// ShedRate is Shed / Submitted.
	ShedRate float64 `json:"shed_rate"`

	// Sweeps lists the distinct sweep IDs observed, for fetching
	// progress or trace exports afterwards.
	Sweeps  []string `json:"sweeps"`
	Scrapes []Scrape `json:"scrapes"`
	Errors  []string `json:"errors,omitempty"`
}

// maxReportErrors bounds the error sample carried in the report.
const maxReportErrors = 8

// collector accumulates per-request outcomes under one lock.
type collector struct {
	mu        sync.Mutex
	rep       *Report
	latencies []float64
	sweeps    map[string]bool
}

func (c *collector) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rep.Failed++
	c.noteErr(err)
}

func (c *collector) noteErr(err error) {
	if len(c.rep.Errors) < maxReportErrors {
		c.rep.Errors = append(c.rep.Errors, err.Error())
	}
}

// Run drives one load run against a live server. Infrastructure
// problems (unreachable server, malformed /metrics) return an error;
// sheds and per-sweep failures are data, recorded in the report.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.normalize()
	host := hostinfo.Collect()
	rep := Report{
		Schema: Schema, Host: &host, Target: cfg.Base, Clients: cfg.Clients,
		Phases: cfg.Phases, RequestsPerPhase: cfg.Requests, RatePerSec: cfg.Rate,
	}
	cli := &serve.Client{Base: cfg.Base, HTTP: cfg.HTTP}
	sc, err := scrape(ctx, cli, 0)
	if err != nil {
		return rep, fmt.Errorf("load: pre-run scrape: %w", err)
	}
	rep.Scrapes = append(rep.Scrapes, sc)

	col := &collector{rep: &rep, sweeps: make(map[string]bool)}
	var pace <-chan time.Time
	if cfg.Rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
		defer t.Stop()
		pace = t.C
	}

	start := time.Now()
	for phase := 1; phase <= cfg.Phases; phase++ {
		runPhase(ctx, cfg, cli, col, phase, pace)
		sc, err := scrape(ctx, cli, phase)
		if err != nil {
			return rep, fmt.Errorf("load: phase %d scrape: %w", phase, err)
		}
		rep.Scrapes = append(rep.Scrapes, sc)
	}
	rep.DurMS = time.Since(start).Milliseconds()

	sort.Float64s(col.latencies)
	rep.Latency = latencyStats(col.latencies)
	if secs := float64(rep.DurMS) / 1000; secs > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / secs
		rep.CellsPerSec = float64(rep.Cells.Total) / secs
	}
	if rep.Cells.Total > 0 {
		rep.DedupRatio = 1 - float64(rep.Cells.Computed)/float64(rep.Cells.Total)
	}
	if rep.Submitted > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Submitted)
	}
	for id := range col.sweeps {
		rep.Sweeps = append(rep.Sweeps, id)
	}
	sort.Strings(rep.Sweeps)
	return rep, ctx.Err()
}

// runPhase fires one batch of cfg.Requests submissions across the
// client pool.
func runPhase(ctx context.Context, cfg Config, cli *serve.Client, col *collector, phase int, pace <-chan time.Time) {
	var seq atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(seq.Add(1)) - 1
				if n >= cfg.Requests || ctx.Err() != nil {
					return
				}
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						return
					}
				}
				oneRequest(ctx, cfg, cli, col, fmt.Sprintf("wlload-p%d-r%d", phase, n), cfg.Specs[n%len(cfg.Specs)])
			}
		}()
	}
	wg.Wait()
}

// oneRequest submits one sweep and folds its outcome into the
// collector. Latency is submit→done: the full streamed sweep, not
// just the accept.
func oneRequest(ctx context.Context, cfg Config, cli *serve.Client, col *collector, rid string, spec serve.Spec) {
	t0 := time.Now()
	st, err := cli.SubmitRequest(ctx, spec, rid)
	col.mu.Lock()
	col.rep.Submitted++
	col.mu.Unlock()
	if err != nil {
		var oe *serve.OverloadedError
		var se *serve.StatusError
		switch {
		case errors.As(err, &oe):
			col.mu.Lock()
			col.rep.Shed++
			col.mu.Unlock()
		case errors.As(err, &se) && se.Code >= 500:
			col.mu.Lock()
			col.rep.HTTP5xx++
			col.rep.Failed++
			col.noteErr(err)
			col.mu.Unlock()
		default:
			col.fail(err)
		}
		return
	}
	_, done, derr := st.Drain()
	st.Close()
	lat := time.Since(t0)

	col.mu.Lock()
	defer col.mu.Unlock()
	col.sweeps[st.Accepted.Sweep] = true
	if derr != nil {
		col.rep.Failed++
		col.noteErr(fmt.Errorf("sweep %s stream: %w", st.Accepted.Sweep, derr))
		return
	}
	if done == nil {
		col.rep.Failed++
		col.noteErr(fmt.Errorf("sweep %s: stream ended without done event", st.Accepted.Sweep))
		return
	}
	col.rep.Completed++
	col.latencies = append(col.latencies, float64(lat.Microseconds())/1000)
	if done.Error != "" {
		col.noteErr(fmt.Errorf("sweep %s: %s", st.Accepted.Sweep, done.Error))
	}
	if m := done.Metrics; m != nil {
		col.rep.Cells.Total += m.Cells
		col.rep.Cells.Computed += m.Computed
		col.rep.Cells.FromJournal += m.FromJournal
		col.rep.Cells.FromShared += m.FromShared
		col.rep.Cells.Deduped += m.Deduped
		col.rep.Cells.Failed += m.Failed
		col.rep.Cells.Skipped += m.Skipped
		col.rep.Cells.Retries += m.Retries
	}
}

// scrape reads /metricz (JSON snapshot) and /metrics, validating the
// latter as well-formed Prometheus text.
func scrape(ctx context.Context, cli *serve.Client, phase int) (Scrape, error) {
	snap, err := cli.Metrics(ctx)
	if err != nil {
		return Scrape{}, err
	}
	samples, err := ScrapeProm(ctx, cli)
	if err != nil {
		return Scrape{}, err
	}
	return Scrape{Phase: phase, PromSamples: len(samples), Metrics: snap}, nil
}

// ScrapeProm fetches GET /metrics and parses it with the validating
// Prometheus text parser, returning every sample.
func ScrapeProm(ctx context.Context, cli *serve.Client) ([]obs.PromSample, error) {
	hc := cli.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cli.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: %s", resp.Status)
	}
	return obs.ParsePrometheus(resp.Body)
}

// latencyStats computes exact order statistics from sorted samples.
func latencyStats(sorted []float64) Latency {
	if len(sorted) == 0 {
		return Latency{}
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Latency{
		P50MS:  percentile(sorted, 0.50),
		P95MS:  percentile(sorted, 0.95),
		P99MS:  percentile(sorted, 0.99),
		MeanMS: sum / float64(len(sorted)),
		MaxMS:  sorted[len(sorted)-1],
	}
}

// percentile returns the nearest-rank q-percentile of sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ReadReport decodes and validates a wlload/v1 document.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return rep, err
	}
	if rep.Schema != Schema {
		return rep, fmt.Errorf("load: schema %q, want %q", rep.Schema, Schema)
	}
	return rep, nil
}

// Summarize renders the report as the fixed-width table wlobs (and
// wlload itself) prints.
func Summarize(r Report) string {
	title := fmt.Sprintf("%s %s — %d clients × %d phase(s) × %d requests",
		r.Schema, r.Target, r.Clients, r.Phases, r.RequestsPerPhase)
	t := stats.NewTable(title, "value")
	t.Add("submitted", float64(r.Submitted))
	t.Add("completed", float64(r.Completed))
	t.Add("shed_429", float64(r.Shed))
	t.Add("http_5xx", float64(r.HTTP5xx))
	t.Add("failed", float64(r.Failed))
	t.Add("throughput_rps", r.ThroughputRPS)
	t.Add("cells_per_sec", r.CellsPerSec)
	t.Add("latency_p50_ms", r.Latency.P50MS)
	t.Add("latency_p95_ms", r.Latency.P95MS)
	t.Add("latency_p99_ms", r.Latency.P99MS)
	t.Add("latency_mean_ms", r.Latency.MeanMS)
	t.Add("latency_max_ms", r.Latency.MaxMS)
	t.Add("cells_total", float64(r.Cells.Total))
	t.Add("cells_computed", float64(r.Cells.Computed))
	t.Add("dedup_ratio", r.DedupRatio)
	t.Add("shed_rate", r.ShedRate)
	t.Add("dur_ms", float64(r.DurMS))
	return t.String()
}
