package load

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wlcache/internal/serve"
)

// testTarget boots an in-process wlserve on a temp data dir and
// returns its base URL.
func testTarget(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

// A full Run against a live server: every submission completes, the
// overlapping specs produce a non-zero dedup ratio, latency
// percentiles are ordered, and every phase's /metrics scrape parsed.
func TestRunAgainstLiveServer(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	primary := serve.Spec{
		Designs:   []string{"nvsram", "nocache", "wl"},
		Workloads: []string{"adpcmencode"},
		Traces:    []string{"none"},
	}
	subset := primary
	subset.Designs = []string{"wl"}

	cfg := Config{
		Base:     testTarget(t),
		Clients:  3,
		Requests: 6,
		Phases:   2,
		Specs:    []serve.Spec{primary, subset},
	}
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Schema != Schema {
		t.Fatalf("schema %q", rep.Schema)
	}
	want := cfg.Requests * cfg.Phases
	if rep.Submitted != want || rep.Completed != want {
		t.Fatalf("submitted %d completed %d, want %d each (errors: %v)",
			rep.Submitted, rep.Completed, want, rep.Errors)
	}
	if rep.Shed != 0 || rep.HTTP5xx != 0 || rep.Failed != 0 {
		t.Fatalf("shed=%d 5xx=%d failed=%d, want all zero (errors: %v)",
			rep.Shed, rep.HTTP5xx, rep.Failed, rep.Errors)
	}

	// 12 submissions alternating a 3-cell and a 1-cell spec request 24
	// cells, but only 3 distinct ones exist — almost everything dedups.
	if rep.Cells.Total != 24 {
		t.Fatalf("cells total %d, want 24", rep.Cells.Total)
	}
	if rep.Cells.Computed != 3 {
		t.Fatalf("computed %d cells, want exactly 3 (one per distinct cell)", rep.Cells.Computed)
	}
	wantRatio := 1 - 3.0/24
	if math.Abs(rep.DedupRatio-wantRatio) > 1e-9 {
		t.Fatalf("dedup ratio %v, want %v", rep.DedupRatio, wantRatio)
	}

	l := rep.Latency
	if l.P50MS <= 0 || l.P50MS > l.P95MS || l.P95MS > l.P99MS || l.P99MS > l.MaxMS {
		t.Fatalf("latency percentiles not ordered: %+v", l)
	}
	if rep.ThroughputRPS <= 0 || rep.CellsPerSec <= 0 {
		t.Fatalf("rates not positive: %+v", rep)
	}

	if len(rep.Scrapes) != cfg.Phases+1 {
		t.Fatalf("%d scrapes, want %d (pre-run + one per phase)", len(rep.Scrapes), cfg.Phases+1)
	}
	for _, sc := range rep.Scrapes {
		if sc.PromSamples <= 0 {
			t.Fatalf("phase %d scrape has no Prometheus samples", sc.Phase)
		}
	}
	last := rep.Scrapes[len(rep.Scrapes)-1].Metrics
	if int(last.SweepsCompleted) != want {
		t.Fatalf("final snapshot reports %d completed sweeps, want %d", last.SweepsCompleted, want)
	}

	if len(rep.Sweeps) != 2 {
		t.Fatalf("distinct sweeps %v, want 2 (one per spec)", rep.Sweeps)
	}

	// The report round-trips through its own reader and summarizer.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.Completed != rep.Completed || back.DedupRatio != rep.DedupRatio {
		t.Fatalf("round-trip lost data: %+v vs %+v", back, rep)
	}
	out := Summarize(back)
	for _, row := range []string{"latency_p50_ms", "dedup_ratio", "throughput_rps"} {
		if !strings.Contains(out, row) {
			t.Fatalf("summary lacks %s:\n%s", row, out)
		}
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"other/v1"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}, {1.0, 100},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of empty = %v", got)
	}
	one := []float64{42}
	for _, q := range []float64{0.5, 0.99} {
		if got := percentile(one, q); got != 42 {
			t.Errorf("percentile single (%v) = %v", q, got)
		}
	}
}
