package fault

import (
	"errors"
	"testing"

	"wlcache/internal/expt"
	"wlcache/internal/isa"
	"wlcache/internal/sim"
)

// runWith executes a small inline program on one design with the
// given injector installed.
func runWith(t *testing.T, kind expt.Kind, opts expt.Options, inj *Injector,
	program func(m isa.Machine) uint32) (sim.Result, error) {
	t.Helper()
	design, nvm := expt.NewDesign(kind, opts)
	cfg := sim.DefaultConfig()
	cfg.CheckInvariants = true
	if inj != nil {
		cfg.FaultPlan = inj
		inj.Arm(nvm, design)
	}
	s, err := sim.New(cfg, design, nvm)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	return s.Run("inline", program)
}

// spread stores one word into each of n distinct cache lines and then
// sums them back; the checksum is n*(n+1)/2.
func spread(n int) (func(m isa.Machine) uint32, uint32) {
	prog := func(m isa.Machine) uint32 {
		for i := 0; i < n; i++ {
			m.Store32(uint32(i*64), uint32(i+1))
		}
		var sum uint32
		for i := 0; i < n; i++ {
			sum += m.Load32(uint32(i * 64))
		}
		return sum
	}
	return prog, uint32(n * (n + 1) / 2)
}

// A crash landing right after an asynchronous write-back issues tears
// the in-flight line write; the JIT checkpoint's redundant flush of
// the still-queued line (§5.3) must repair it, so the run recovers
// fully.
func TestTornWritebackRepairedByCheckpoint(t *testing.T) {
	inj := NewInjector(ModeTornWB, 1)
	inj.CrashAtLineWrites(1) // first boundary inside the first WB's persist window

	prog, want := spread(64) // 64 lines >> maxline 2: plenty of async write-backs
	res, err := runWith(t, expt.KindWLFixed, expt.Options{Maxline: 2}, inj, prog)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Checksum != want {
		t.Fatalf("checksum %#x, want %#x", res.Checksum, want)
	}
	if inj.Crashes == 0 {
		t.Fatal("no crash fired")
	}
	if inj.TornWrites == 0 {
		t.Fatal("crash landed inside a write window but tore nothing")
	}
}

// A checkpoint torn on its very first line flush (k=0 of n, zero
// words persisted) loses a dirty line; the post-checkpoint durability
// check must detect it — never silently corrupt.
func TestTornCheckpointDetected(t *testing.T) {
	inj := NewInjector(ModeTornCkpt, 1)
	inj.TearAfter = 0
	inj.TearWords = 0
	inj.CrashAtInstrs(16) // right after the 16th store, line fully dirty

	prog := func(m isa.Machine) uint32 {
		for i := 0; i < 16; i++ {
			m.Store32(uint32(i*4), uint32(0xA0+i)) // one full line, all words nonzero
		}
		return m.Load32(0)
	}
	_, err := runWith(t, expt.KindWLFixed, expt.Options{}, inj, prog)
	if err == nil {
		t.Fatal("torn checkpoint went unnoticed")
	}
	if !errors.Is(err, sim.ErrCrashConsistency) {
		t.Fatalf("error %v does not wrap ErrCrashConsistency", err)
	}
	if inj.TornWrites == 0 {
		t.Fatal("no checkpoint write was torn")
	}
}

// Losing every write-back ACK strands DirtyQueue entries; the §5.4
// lazy stale-entry discard must reclaim them and the run must still
// recover fully — ACK loss is within the hardware contract.
func TestAckLossTolerated(t *testing.T) {
	inj := NewInjector(ModeAckLoss, 7)
	inj.AckDrop = 1.0
	inj.CrashAtInstrs(40, 90)

	prog, want := spread(64)
	res, err := runWith(t, expt.KindWLFixed, expt.Options{Maxline: 2}, inj, prog)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Checksum != want {
		t.Fatalf("checksum %#x, want %#x", res.Checksum, want)
	}
	if inj.DroppedACKs == 0 {
		t.Fatal("no ACK was dropped")
	}
	if res.Extra.DroppedACKs != inj.DroppedACKs {
		t.Fatalf("design counted %d dropped ACKs, injector %d",
			res.Extra.DroppedACKs, inj.DroppedACKs)
	}
	if res.Extra.StaleDQSkips == 0 {
		t.Fatal("stranded DirtyQueue entries were never lazily discarded")
	}
}

// Forced crashes at instruction boundaries are plain outages for a
// sound design: checkpoint, restore, full recovery.
func TestForcedCrashesRecover(t *testing.T) {
	inj := NewInjector(ModeCrash, 1)
	inj.CrashAtInstrs(10, 30, 50) // all within the program's ~64 instructions

	prog, want := spread(32)
	res, err := runWith(t, expt.KindWL, expt.Options{}, inj, prog)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Checksum != want {
		t.Fatalf("checksum %#x, want %#x", res.Checksum, want)
	}
	if inj.Crashes != 3 {
		t.Fatalf("fired %d crashes, want 3", inj.Crashes)
	}
	if res.Outages != 3 {
		t.Fatalf("result counted %d outages, want 3", res.Outages)
	}
}

// The same seed must replay the same faults and the same outcome.
func TestInjectorDeterminism(t *testing.T) {
	run := func() Cell {
		c, err := AuditOne(expt.KindWL, "adpcmencode", ModeAckLoss, 42, 3, 1)
		if err != nil {
			t.Fatalf("AuditOne: %v", err)
		}
		return c
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic audit:\n%+v\n%+v", a, b)
	}
}
