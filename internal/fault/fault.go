// Package fault is the fault-injection and crash-consistency audit
// subsystem. It drives the simulator off the happy path with
// deterministic, seed-driven injectors — forced power failures at
// arbitrary instruction boundaries, torn NVM line writes, lost
// write-back ACKs — and audits every cache design differentially: a
// crash-point explorer sweeps sampled crash points across a workload,
// re-runs to completion, and verifies durability and the final
// checksum against an uninterrupted golden run.
//
// # Fault modes and fairness
//
// Modes split along the hardware contract of §2/§3:
//
//   - Fair modes (ModeCrash, ModeAckLoss) stay inside the contract:
//     the reserved energy band guarantees the JIT checkpoint completes
//     and in-flight NVM writes drain, so a sound design must finish
//     with no error and the golden checksum (Outcome ok). Anything
//     else — including a *detected* inconsistency — fails the audit.
//
//   - Unfair modes (ModeTornWB, ModeTornCkpt) violate the contract:
//     line writes are torn mid-persist, including the checkpoint's
//     own flushes. No design can promise full recovery here; the
//     audit instead proves there is no *silent* corruption. Outcome
//     ok (the design's redundancy repaired the tear) and detected
//     (a durability or load check caught it) both pass; a run that
//     completes with a wrong checksum (corrupt) always fails.
//
// The deliberately unsafe "broken" design must fail the fair modes;
// every sound design must pass all modes with zero false positives.
package fault

// Mode names one fault-injection class.
type Mode string

// The injection classes of the audit matrix.
const (
	// ModeCrash forces power failures at sampled instruction
	// boundaries, including while asynchronous write-backs are in
	// flight and between any two stores.
	ModeCrash Mode = "crash"
	// ModeAckLoss additionally drops write-back ACK signals on the
	// DirtyQueue async write-back path: the line write persists but
	// the queue entry is never removed and must be reclaimed by the
	// §5.4 lazy stale-entry discard.
	ModeAckLoss Mode = "ackloss"
	// ModeTornWB additionally tears NVM line writes still in flight
	// at the crash point: only a prefix of the line (prorated by how
	// far the write had progressed) survives in the array.
	ModeTornWB Mode = "tornwb"
	// ModeTornCkpt tears the forced JIT checkpoint itself: the first
	// k line flushes persist fully, the next persists a prefix, and
	// the rest are lost — a checkpoint interrupted after k of n dirty
	// lines.
	ModeTornCkpt Mode = "tornckpt"
)

// Modes returns every injection class in audit order.
func Modes() []Mode { return []Mode{ModeCrash, ModeAckLoss, ModeTornWB, ModeTornCkpt} }

// Fair reports whether the mode stays within the hardware contract,
// in which case sound designs must recover completely (see the
// package comment for the full fairness model).
func (m Mode) Fair() bool { return m == ModeCrash || m == ModeAckLoss }

// Valid reports whether m names a known injection class.
func (m Mode) Valid() bool {
	switch m {
	case ModeCrash, ModeAckLoss, ModeTornWB, ModeTornCkpt:
		return true
	}
	return false
}
