package fault

import (
	"testing"

	"wlcache/internal/expt"
)

// The negative control — a volatile write-back cache that checkpoints
// nothing — must be flagged under plain (fair) crash injection.
func TestAuditFlagsBrokenDesign(t *testing.T) {
	cell, err := AuditOne(expt.KindBroken, "adpcmencode", ModeCrash, 1, 4, 1)
	if err != nil {
		t.Fatalf("AuditOne: %v", err)
	}
	if cell.Pass() {
		t.Fatalf("broken design passed the crash audit: %+v", cell)
	}
	if cell.Outcome != OutcomeDetected && cell.Outcome != OutcomeCorrupt {
		t.Fatalf("unexpected outcome %q (%s)", cell.Outcome, cell.Detail)
	}
}

// WL-Cache must pass every mode: full recovery under the fair modes,
// and at worst *detected* damage under the unfair ones.
func TestAuditPassesWLCache(t *testing.T) {
	for _, mode := range Modes() {
		cell, err := AuditOne(expt.KindWL, "adpcmencode", mode, 1, 4, 1)
		if err != nil {
			t.Fatalf("AuditOne(%s): %v", mode, err)
		}
		if !cell.Pass() {
			t.Errorf("wl failed mode %s: outcome %s (%s)", mode, cell.Outcome, cell.Detail)
		}
		if cell.Crashes == 0 {
			t.Errorf("mode %s fired no crashes", mode)
		}
		if mode.Fair() && cell.Outcome != OutcomeOK {
			t.Errorf("fair mode %s did not fully recover: %s (%s)", mode, cell.Outcome, cell.Detail)
		}
	}
}

// A small two-design matrix exercises Audit end to end: the report
// must pass the sound design and fail the broken one, and the table
// must carry one row per design.
func TestAuditMatrixDifferential(t *testing.T) {
	m := Matrix{
		Designs:   []expt.Kind{expt.KindWLFixed, expt.KindBroken},
		Workloads: []string{"adpcmencode"},
		Modes:     []Mode{ModeCrash, ModeTornCkpt},
		Seeds:     []uint64{1, 2},
		Points:    3,
		Scale:     1,
	}
	rep, err := Audit(m)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if n := len(rep.Cells); n != 2*1*2*2 {
		t.Fatalf("got %d cells, want 8", n)
	}
	if !rep.DesignPass("wl-fixed") {
		t.Errorf("wl-fixed failed: %+v", rep.Failures())
	}
	if rep.DesignPass("broken") {
		t.Error("broken design passed the audit")
	}
	tab := rep.Table()
	if _, ok := tab.Cell("broken", "verdict"); !ok {
		t.Fatal("table missing broken verdict cell")
	}
	if v, _ := tab.Cell("broken", "verdict"); v != "FAIL" {
		t.Errorf("broken verdict %q, want FAIL", v)
	}
	if v, _ := tab.Cell("wl-fixed", "verdict"); v != "PASS" {
		t.Errorf("wl-fixed verdict %q, want PASS", v)
	}
}

// DefaultMatrix must sweep every registered design (the differential
// audit is only meaningful over the full registry) with at least
// three seeds.
func TestDefaultMatrixShape(t *testing.T) {
	m := DefaultMatrix()
	if len(m.Designs) != len(expt.AllKinds()) {
		t.Fatalf("matrix sweeps %d designs, registry has %d", len(m.Designs), len(expt.AllKinds()))
	}
	found := false
	for _, k := range m.Designs {
		if k == expt.KindBroken {
			found = true
		}
	}
	if !found {
		t.Fatal("matrix omits the broken negative control")
	}
	if len(m.Seeds) < 3 {
		t.Fatalf("matrix has %d seeds, want >= 3", len(m.Seeds))
	}
	if len(m.Modes) != len(Modes()) {
		t.Fatalf("matrix has %d modes, want %d", len(m.Modes), len(Modes()))
	}
}
