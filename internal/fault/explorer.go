package fault

import (
	"errors"
	"fmt"
	"hash/fnv"

	"wlcache/internal/expt"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/sim"
	"wlcache/internal/stats"
	"wlcache/internal/workload"
)

// Outcome classifies one audited run against its golden reference.
type Outcome string

const (
	// OutcomeOK: the run completed with no error and the golden
	// checksum — full recovery.
	OutcomeOK Outcome = "ok"
	// OutcomeDetected: a crash-consistency check caught the injected
	// damage (the error wraps sim.ErrCrashConsistency).
	OutcomeDetected Outcome = "detected"
	// OutcomeCorrupt: the run completed but produced a wrong checksum
	// — silent corruption, the worst case.
	OutcomeCorrupt Outcome = "corrupt"
	// OutcomeError: the run failed for a reason other than a
	// consistency check (no progress, reserve exhausted, ...).
	OutcomeError Outcome = "error"
)

// Cell is one audited (design, workload, mode, seed) run.
type Cell struct {
	Design   string
	Workload string
	Mode     Mode
	Seed     uint64

	Crashes     uint64
	TornWrites  uint64
	DroppedACKs uint64

	Outcome Outcome
	Detail  string // error text or checksum mismatch, empty for ok
}

// Pass applies the fairness model (see the package comment): fair
// modes demand full recovery; unfair modes additionally accept a
// detected inconsistency, but never silent corruption.
func (c Cell) Pass() bool {
	switch c.Outcome {
	case OutcomeOK:
		return true
	case OutcomeDetected:
		return !c.Mode.Fair()
	}
	return false
}

// Matrix configures an audit sweep.
type Matrix struct {
	Designs   []expt.Kind
	Workloads []string
	Modes     []Mode
	Seeds     []uint64
	// Points is how many crash points are sampled per run, stratified
	// across the golden run's execution time.
	Points int
	Scale  int // workload input-size multiplier
}

// DefaultMatrix audits every design (including the broken negative
// control) on two short store-heavy benchmarks, all fault modes,
// three seeds, four crash points each.
func DefaultMatrix() Matrix {
	return Matrix{
		Designs:   expt.AllKinds(),
		Workloads: []string{"adpcmencode", "basicmath"},
		Modes:     Modes(),
		Seeds:     []uint64{1, 2, 3},
		Points:    4,
		Scale:     1,
	}
}

// Report is the outcome of one audit sweep.
type Report struct {
	Cells []Cell

	designs []string
	modes   []Mode
}

// DesignPass reports whether every cell of the named design passed.
func (r *Report) DesignPass(design string) bool {
	for _, c := range r.Cells {
		if c.Design == design && !c.Pass() {
			return false
		}
	}
	return true
}

// Failures returns every failing cell, in audit order.
func (r *Report) Failures() []Cell {
	var out []Cell
	for _, c := range r.Cells {
		if !c.Pass() {
			out = append(out, c)
		}
	}
	return out
}

// Table renders the report as a design × mode pass/fail grid with a
// trailing verdict column.
func (r *Report) Table() *stats.TextTable {
	cols := make([]string, 0, len(r.modes)+1)
	for _, m := range r.modes {
		cols = append(cols, string(m))
	}
	cols = append(cols, "verdict")
	t := &stats.TextTable{Title: "Crash-consistency audit", Columns: cols}
	for _, d := range r.designs {
		row := make([]string, 0, len(cols))
		all := true
		for _, m := range r.modes {
			pass := true
			for _, c := range r.Cells {
				if c.Design == d && c.Mode == m && !c.Pass() {
					pass = false
					break
				}
			}
			all = all && pass
			row = append(row, verdict(pass))
		}
		row = append(row, verdict(all))
		t.Add(d, row...)
	}
	return t
}

func verdict(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// golden captures the uninterrupted reference run of one (design,
// workload) pair.
type golden struct {
	execTime   int64
	checksum   uint32
	lineWrites uint64
}

// Audit runs the full matrix: one golden run per (design, workload),
// then one faulted run per (design, workload, mode, seed), each with
// Points crashes sampled across the golden execution time.
func Audit(m Matrix) (*Report, error) {
	if m.Points <= 0 {
		m.Points = 4
	}
	if m.Scale <= 0 {
		m.Scale = 1
	}
	rep := &Report{modes: m.Modes}
	for _, kind := range m.Designs {
		rep.designs = append(rep.designs, string(kind))
		for _, wlName := range m.Workloads {
			w, ok := workload.ByName(wlName)
			if !ok {
				return nil, fmt.Errorf("fault: unknown workload %q", wlName)
			}
			g, err := goldenRun(kind, w, m.Scale)
			if err != nil {
				return nil, fmt.Errorf("fault: golden run %s/%s: %w", kind, wlName, err)
			}
			for _, mode := range m.Modes {
				for _, seed := range m.Seeds {
					cell := auditCell(kind, w, mode, seed, m.Points, m.Scale, g)
					rep.Cells = append(rep.Cells, cell)
				}
			}
		}
	}
	return rep, nil
}

// AuditOne audits a single (design, workload, mode, seed) cell,
// computing its own golden reference. Tests use it for targeted
// checks; Audit shares golden runs across modes and seeds instead.
func AuditOne(kind expt.Kind, wlName string, mode Mode, seed uint64, points, scale int) (Cell, error) {
	w, ok := workload.ByName(wlName)
	if !ok {
		return Cell{}, fmt.Errorf("fault: unknown workload %q", wlName)
	}
	g, err := goldenRun(kind, w, scale)
	if err != nil {
		return Cell{}, fmt.Errorf("fault: golden run %s/%s: %w", kind, wlName, err)
	}
	return auditCell(kind, w, mode, seed, points, scale, g), nil
}

// goldenRun executes the uninterrupted reference: no power trace, no
// fault plan. Invariants stay off — the golden run only defines the
// reference checksum and timeline; even the broken negative control
// is "correct" when power never fails, and judging durability is the
// audited runs' job. It also counts line writes so torn-write crash
// points can target real write-back traffic.
func goldenRun(kind expt.Kind, w workload.Workload, scale int) (golden, error) {
	design, nvm := expt.NewDesign(kind, expt.Options{})
	var lw uint64
	nvm.SetLineWriteHook(func(wr mem.LineWrite) int {
		lw++
		return len(wr.Data)
	})
	cfg := sim.DefaultConfig()
	s, err := sim.New(cfg, design, nvm)
	if err != nil {
		return golden{}, err
	}
	res, err := s.Run(w.Name, func(m isa.Machine) uint32 { return w.Run(m, scale) })
	if err != nil {
		return golden{}, err
	}
	return golden{execTime: res.ExecTime, checksum: res.Checksum, lineWrites: lw}, nil
}

// auditCell runs one faulted simulation and classifies it against the
// golden reference.
func auditCell(kind expt.Kind, w workload.Workload, mode Mode, seed uint64, points, scale int, g golden) Cell {
	cell := Cell{Design: string(kind), Workload: w.Name, Mode: mode, Seed: seed}

	rng := cellSeed(string(kind), w.Name, string(mode), seed)
	inj := NewInjector(mode, mix(&rng))
	times := make([]int64, 0, points)
	for i := 0; i < points; i++ {
		f := (float64(i) + fracOf(mix(&rng))) / float64(points)
		t := int64(f * float64(g.execTime))
		if t < 1 {
			t = 1
		}
		times = append(times, t)
	}
	inj.CrashAtTimes(times...)
	if mode == ModeTornWB && g.lineWrites > 0 {
		// Two extra crash points land right after a sampled line
		// write, inside its persist window, so the torn-write path is
		// exercised even when time-sampled points miss all traffic.
		inj.CrashAtLineWrites(1+mix(&rng)%g.lineWrites, 1+mix(&rng)%g.lineWrites)
	}

	design, nvm := expt.NewDesign(kind, expt.Options{})
	cfg := sim.DefaultConfig()
	cfg.CheckInvariants = true
	cfg.FaultPlan = inj
	inj.Arm(nvm, design)
	s, err := sim.New(cfg, design, nvm)
	var res sim.Result
	if err == nil {
		res, err = s.Run(w.Name, func(m isa.Machine) uint32 { return w.Run(m, scale) })
	}

	cell.Crashes = inj.Crashes
	cell.TornWrites = inj.TornWrites
	cell.DroppedACKs = inj.DroppedACKs
	switch {
	case err == nil && res.Checksum == g.checksum:
		cell.Outcome = OutcomeOK
	case err == nil:
		cell.Outcome = OutcomeCorrupt
		cell.Detail = fmt.Sprintf("checksum %#x, golden %#x", res.Checksum, g.checksum)
	case errors.Is(err, sim.ErrCrashConsistency):
		cell.Outcome = OutcomeDetected
		cell.Detail = err.Error()
	default:
		cell.Outcome = OutcomeError
		cell.Detail = err.Error()
	}
	return cell
}

// cellSeed derives a deterministic per-cell generator state from the
// cell coordinates and the user seed.
func cellSeed(parts ...interface{}) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return h.Sum64()
}

// mix steps a splitmix64 state (explorer-side sampling).
func mix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fracOf maps one generator output to [0, 1).
func fracOf(v uint64) float64 { return float64(v>>11) / (1 << 53) }
