package fault

import (
	"sort"

	"wlcache/internal/mem"
	"wlcache/internal/obs"
	"wlcache/internal/sim"
)

// Injector implements sim.FaultPlan plus the NVM and cache hooks for
// one run. It is single-use: build one per simulation, Arm it on the
// run's NVM and design, and install it as Config.FaultPlan.
//
// All randomness derives from the seed via splitmix64, so identical
// (mode, seed, schedule) inputs replay identical faults.
type Injector struct {
	// AckDrop is the probability that a write-back ACK is lost
	// (ModeAckLoss). NewInjector defaults it to 0.25; tests set 1.0
	// to drop every ACK.
	AckDrop float64
	// TearAfter and TearWords shape the torn checkpoint
	// (ModeTornCkpt): the first TearAfter line flushes persist fully,
	// the next persists TearWords leading words, the rest persist
	// nothing. A negative value (the NewInjector default) draws a
	// fresh value from the seed at each forced checkpoint.
	TearAfter int
	TearWords int

	// Counters, readable after the run.
	Crashes     uint64 // forced power failures fired
	TornWrites  uint64 // line writes torn (prefix or fully lost)
	DroppedACKs uint64 // write-back ACKs suppressed

	// Obs, when set, records every torn write in the run's event
	// timeline (internal/obs). nil disables recording.
	Obs *obs.Recorder

	mode Mode
	rng  uint64
	nvm  *mem.NVM

	crashTimes  []int64  // sorted; fire when now >= next
	crashInstrs []uint64 // sorted; fire when instr count >= next
	crashWrites []uint64 // sorted; fire when line-write count >= next
	ti, ii, wi  int

	inCkpt     bool
	ckptForced bool
	ckptSeen   int // line writes observed in the current forced window
	tearAfter  int // resolved TearAfter for the current window
	tearWords  int // resolved TearWords for the current window

	wbSeen uint64     // non-checkpoint line writes observed so far
	wlog   []wbRecord // in-flight write-back log (ModeTornWB)
}

// wbRecord remembers one non-checkpoint line write so a later crash
// inside its persist window can retroactively tear it.
type wbRecord struct {
	addr        uint32
	pre         []uint32 // image contents before the write
	start, done int64
}

// NewInjector builds an injector for one fault mode. The seed drives
// every random choice (ACK drops, torn-checkpoint shape).
func NewInjector(mode Mode, seed uint64) *Injector {
	return &Injector{
		mode:      mode,
		rng:       seed ^ 0x9e3779b97f4a7c15, // avoid the all-zero state
		AckDrop:   0.25,
		TearAfter: -1,
		TearWords: -1,
	}
}

// Mode returns the injection class this injector implements.
func (in *Injector) Mode() Mode { return in.mode }

// CrashAtTimes schedules forced power failures at the first
// instruction boundary at or after each time (ps).
func (in *Injector) CrashAtTimes(ts ...int64) {
	in.crashTimes = append(in.crashTimes, ts...)
	sort.Slice(in.crashTimes, func(i, j int) bool { return in.crashTimes[i] < in.crashTimes[j] })
}

// CrashAtInstrs schedules forced power failures at the boundary after
// the n-th retired instruction.
func (in *Injector) CrashAtInstrs(ns ...uint64) {
	in.crashInstrs = append(in.crashInstrs, ns...)
	sort.Slice(in.crashInstrs, func(i, j int) bool { return in.crashInstrs[i] < in.crashInstrs[j] })
}

// CrashAtLineWrites schedules forced power failures at the first
// boundary after the k-th non-checkpoint NVM line write — the boundary
// lands inside the write's persist window (line persists take far
// longer than one instruction), guaranteeing the torn-write injector
// real in-flight traffic to tear.
func (in *Injector) CrashAtLineWrites(ks ...uint64) {
	in.crashWrites = append(in.crashWrites, ks...)
	sort.Slice(in.crashWrites, func(i, j int) bool { return in.crashWrites[i] < in.crashWrites[j] })
}

// Arm installs the mode's hooks on the run's NVM and design. The
// torn-write modes need the NVM's line-write stream; ACK loss needs
// the design's write-back ACK filter (designs without an async
// write-back path have no ACKs to lose, and ModeAckLoss degenerates
// to ModeCrash for them).
func (in *Injector) Arm(nvm *mem.NVM, d sim.Design) {
	in.nvm = nvm
	switch in.mode {
	case ModeTornWB, ModeTornCkpt:
		nvm.SetLineWriteHook(in.onLineWrite)
	case ModeAckLoss:
		if f, ok := d.(interface {
			SetACKFilter(func(id uint64, addr uint32) bool)
		}); ok {
			f.SetACKFilter(in.onACK)
		}
	}
}

// --- sim.FaultPlan ---

// ShouldCrash fires the next scheduled crash once its time,
// instruction, or line-write trigger has been reached.
func (in *Injector) ShouldCrash(instr uint64, now int64) bool {
	if in.mode == ModeTornWB {
		in.prune(now)
	}
	fire := false
	switch {
	case in.ti < len(in.crashTimes) && now >= in.crashTimes[in.ti]:
		in.ti++
		fire = true
	case in.ii < len(in.crashInstrs) && instr >= in.crashInstrs[in.ii]:
		in.ii++
		fire = true
	case in.wi < len(in.crashWrites) && in.wbSeen >= in.crashWrites[in.wi]:
		in.wi++
		fire = true
	}
	if fire {
		in.Crashes++
	}
	return fire
}

// CheckpointStart marks the checkpoint window. For a forced crash it
// is the moment the supply actually fails: in-flight write-backs are
// torn retroactively (ModeTornWB) and the checkpoint's own flushes
// start tearing (ModeTornCkpt).
func (in *Injector) CheckpointStart(now int64, forced bool) {
	in.inCkpt = true
	in.ckptForced = forced
	in.ckptSeen = 0
	if !forced {
		return
	}
	switch in.mode {
	case ModeTornWB:
		in.tearInflight(now)
	case ModeTornCkpt:
		in.tearAfter = in.TearAfter
		in.tearWords = in.TearWords
		if in.tearAfter < 0 {
			in.tearAfter = int(in.next() % 4)
		}
		if in.tearWords < 0 {
			in.tearWords = int(in.next() % 16)
		}
	}
}

// CheckpointEnd closes the checkpoint window.
func (in *Injector) CheckpointEnd(now int64) {
	in.inCkpt = false
	in.ckptForced = false
}

// --- NVM line-write hook ---

// onLineWrite observes every full-line NVM write. Checkpoint flushes
// inside a forced window are torn forward (ModeTornCkpt); regular
// write-backs are logged with their pre-image so a crash landing in
// their persist window can tear them retroactively (ModeTornWB).
func (in *Injector) onLineWrite(w mem.LineWrite) int {
	n := len(w.Data)
	if in.inCkpt {
		if in.mode != ModeTornCkpt || !in.ckptForced {
			return n
		}
		idx := in.ckptSeen
		in.ckptSeen++
		switch {
		case idx < in.tearAfter:
			return n
		case idx == in.tearAfter:
			in.TornWrites++
			kept := min(in.tearWords, n)
			in.Obs.FaultTornWrite(w.Now, w.Addr, kept, n)
			return kept
		default:
			in.TornWrites++
			in.Obs.FaultTornWrite(w.Now, w.Addr, 0, n)
			return 0
		}
	}
	in.wbSeen++
	if in.mode == ModeTornWB {
		pre := make([]uint32, n)
		in.nvm.Image().ReadLine(w.Addr, pre)
		in.wlog = append(in.wlog, wbRecord{addr: w.Addr, pre: pre, start: w.Start, done: w.Done})
	}
	return n
}

// prune forgets logged writes that completed before now: once the
// array has committed the full line no crash can tear it.
func (in *Injector) prune(now int64) {
	keep := in.wlog[:0]
	for _, r := range in.wlog {
		if r.done > now {
			keep = append(keep, r)
		}
	}
	in.wlog = keep
}

// tearInflight rewinds every logged write still in flight at the
// crash time: the words the array had not yet committed revert to
// their pre-image, leaving a prorated prefix of the write. Newest
// writes revert first so overlapping writes to one line unwind in
// order.
func (in *Injector) tearInflight(tcrash int64) {
	img := in.nvm.Image()
	for i := len(in.wlog) - 1; i >= 0; i-- {
		r := in.wlog[i]
		if r.done <= tcrash {
			continue
		}
		n := len(r.pre)
		k := 0
		if r.start < tcrash && r.done > r.start {
			k = int(int64(n) * (tcrash - r.start) / (r.done - r.start))
		}
		if k > n {
			k = n
		}
		if k < n {
			in.TornWrites++
			in.Obs.FaultTornWrite(tcrash, r.addr, k, n)
		}
		for j := k; j < n; j++ {
			img.Write(r.addr+uint32(4*j), r.pre[j])
		}
	}
	in.wlog = in.wlog[:0]
}

// --- write-back ACK filter ---

// onACK decides whether one write-back ACK is delivered; a dropped
// ACK strands the DirtyQueue entry for the §5.4 lazy discard.
func (in *Injector) onACK(id uint64, addr uint32) bool {
	if in.frac() < in.AckDrop {
		in.DroppedACKs++
		return false
	}
	return true
}

// next steps the splitmix64 generator.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// frac returns a uniform float in [0, 1).
func (in *Injector) frac() float64 {
	return float64(in.next()>>11) / (1 << 53)
}
