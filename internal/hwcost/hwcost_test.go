package hwcost

import (
	"strings"
	"testing"
)

func TestWLCacheCostMatchesPaperClaims(t *testing.T) {
	area, dyn, leak, rows := WLCacheCost()
	if len(rows) == 0 {
		t.Fatal("no structures reported")
	}
	// §6.2: at most 0.005 mm^2, 0.0008 nJ per access, ~0.1 mW leak.
	if area > 0.005 {
		t.Fatalf("area %g mm^2 exceeds the paper bound", area)
	}
	if dyn > 0.0008+0.0002 {
		t.Fatalf("dynamic energy %g nJ exceeds the paper bound", dyn)
	}
	if leak < 0.05 || leak > 0.15 {
		t.Fatalf("leak %g mW far from the paper's 0.1 mW", leak)
	}
	ratio := leak / NVCacheLeakMW(8192)
	if ratio < 0.05 || ratio > 0.15 {
		t.Fatalf("leak ratio %.2f far from the paper's 9%%", ratio)
	}
}

func TestEstimateScalesWithBits(t *testing.T) {
	tech := Tech90()
	small := Estimate(Structure{Name: "s", Entries: 4, BitsPer: 8}, tech)
	big := Estimate(Structure{Name: "b", Entries: 8, BitsPer: 8}, tech)
	if big.AreaMM2 <= small.AreaMM2 || big.LeakMW <= small.LeakMW {
		t.Fatal("cost must grow with entries")
	}
	// Dynamic energy is per entry access: equal for equal widths.
	if big.DynNJ != small.DynNJ {
		t.Fatal("per-access energy should depend on width, not entries")
	}
}

func TestCAMSurcharge(t *testing.T) {
	tech := Tech90()
	ram := Estimate(Structure{Name: "r", Entries: 8, BitsPer: 26}, tech)
	cam := Estimate(Structure{Name: "c", Entries: 8, BitsPer: 26, CAM: true}, tech)
	if cam.AreaMM2 <= ram.AreaMM2 || cam.DynNJ <= ram.DynNJ || cam.LeakMW <= ram.LeakMW {
		t.Fatal("CAM must cost more on every axis")
	}
}

func TestDirtyQueueStructures(t *testing.T) {
	rows := DirtyQueue(8, 26)
	if len(rows) != 5 {
		t.Fatalf("expected 5 structures, got %d", len(rows))
	}
	if rows[0].Entries != 8 || rows[0].BitsPer != 26 {
		t.Fatal("DirtyQueue sizing wrong")
	}
}

func TestReportString(t *testing.T) {
	r := Estimate(Structure{Name: "DirtyQueue", Entries: 8, BitsPer: 26}, Tech90())
	s := r.String()
	for _, want := range []string{"DirtyQueue", "mm2", "nJ", "mW"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q: %s", want, s)
		}
	}
}
