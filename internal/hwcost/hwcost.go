// Package hwcost is a small analytical area/energy/leakage model in
// the spirit of CACTI, used to reproduce the §6.2 hardware-cost
// analysis: the DirtyQueue plus its control logic at 90 nm should
// come to ~0.005 mm², ~0.0008 nJ per dynamic access, and ~0.1 mW of
// leakage (~9% of a non-volatile cache's leakage).
package hwcost

import "fmt"

// Tech holds per-technology-node scaling factors.
type Tech struct {
	NodeNM float64
	// Per-bit SRAM cell metrics at this node.
	CellAreaUM2   float64 // um^2 per bit
	CellLeakNW    float64 // nW per bit
	CellDynPJ     float64 // pJ per bit per access
	LogicOverhead float64 // multiplicative overhead for control logic
}

// Tech90 returns 90 nm parameters (the paper's node).
func Tech90() Tech {
	return Tech{
		NodeNM:        90,
		CellAreaUM2:   1.4,    // um^2/bit incl. array overhead
		CellLeakNW:    90,     // nW/bit (high-leak 90nm SRAM)
		CellDynPJ:     0.0045, // pJ/bit/access
		LogicOverhead: 1.35,
	}
}

// Structure describes a small SRAM/CAM structure.
type Structure struct {
	Name    string
	Entries int
	BitsPer int
	// CAM search doubles dynamic energy and adds area for match lines.
	CAM bool
}

// Report is the cost estimate for one structure.
type Report struct {
	Structure Structure
	AreaMM2   float64
	DynNJ     float64 // per access
	LeakMW    float64
}

// Estimate computes the cost of a structure at the given node.
func Estimate(s Structure, t Tech) Report {
	bits := float64(s.Entries * s.BitsPer)
	area := bits * t.CellAreaUM2 * t.LogicOverhead / 1e6 // mm^2
	// A dynamic access touches one entry, not the whole array.
	dyn := float64(s.BitsPer) * t.CellDynPJ * t.LogicOverhead / 1e3 // nJ
	leak := bits * t.CellLeakNW * t.LogicOverhead / 1e6             // mW
	if s.CAM {
		area *= 1.6
		dyn *= 2.0
		leak *= 1.3
	}
	return Report{Structure: s, AreaMM2: area, DynNJ: dyn, LeakMW: leak}
}

// DirtyQueue returns the WL-Cache hardware additions of §5.5: the
// 8-entry address queue, the maxline/waterline threshold registers,
// the watchdog timer and the two power-on-time NVFF words.
func DirtyQueue(entries, addrBits int) []Structure {
	return []Structure{
		{Name: "DirtyQueue", Entries: entries, BitsPer: addrBits},
		{Name: "thresholds (maxline+waterline)", Entries: 2, BitsPer: 8},
		{Name: "watchdog timer", Entries: 1, BitsPer: 16},
		{Name: "power-on history NVFF", Entries: 2, BitsPer: 16},
		{Name: "control logic", Entries: 64, BitsPer: 8},
	}
}

// WLCacheCost aggregates the default WL-Cache additions at 90 nm.
func WLCacheCost() (area float64, dynNJ float64, leakMW float64, rows []Report) {
	t := Tech90()
	for _, s := range DirtyQueue(8, 26) {
		r := Estimate(s, t)
		rows = append(rows, r)
		area += r.AreaMM2
		dynNJ += r.DynNJ
		leakMW += r.LeakMW
	}
	return area, dynNJ, leakMW, rows
}

// NVCacheLeakMW estimates the leakage of a full non-volatile cache of
// the given size (the paper's 9% comparison point).
func NVCacheLeakMW(sizeBytes int) float64 {
	t := Tech90()
	// NV cells leak less per bit than SRAM but the periphery dominates
	// in small arrays; calibrate to ~1.1 mW for 8 KB.
	return float64(sizeBytes*8) * t.CellLeakNW * 0.19 / 1e6
}

// String renders a report row.
func (r Report) String() string {
	return fmt.Sprintf("%-32s %4d x %2db  area %.6f mm2  dyn %.6f nJ  leak %.4f mW",
		r.Structure.Name, r.Structure.Entries, r.Structure.BitsPer, r.AreaMM2, r.DynNJ, r.LeakMW)
}
