package core

import (
	"testing"

	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// FuzzWLCacheProtocol feeds arbitrary byte streams (decoded as
// load/store/checkpoint operations) through a WL-Cache and asserts
// the §3/§5 invariants: the dirty bound, architectural value
// correctness, and whole-system durability at every checkpoint.
func FuzzWLCacheProtocol(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(3))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x80, 0x40, 0x20, 0x10}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, mlSeed uint8) {
		maxline := 1 + int(mlSeed)%6
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		cfg := DefaultConfig()
		cfg.Maxline = maxline
		cfg.Waterline = maxline - 1
		if cfg.Waterline < 1 {
			cfg.Waterline = 1
		}
		cfg.Adaptive.Mode = AdaptOff
		c := New(cfg, nvm)
		golden := mem.NewStore()
		now := int64(0)
		for i := 0; i+3 <= len(data); i += 3 {
			op := data[i]
			addr := (uint32(data[i+1]) | uint32(data[i+2])<<8) << 2 // 256 KB footprint
			switch op % 7 {
			case 6:
				done, _ := c.Checkpoint(now)
				if err := c.DurableEqual(golden); err != nil {
					t.Fatalf("durability violated at op %d: %v", i, err)
				}
				now, _ = c.Restore(done)
			case 1, 3, 5:
				val := uint32(op)<<24 | addr
				golden.Write(addr, val)
				_, done, _ := c.Access(now, isa.OpStore, addr, val)
				now = done
			default:
				v, done, _ := c.Access(now, isa.OpLoad, addr, 0)
				if want := golden.Read(addr); v != want {
					t.Fatalf("load %#x = %#x, want %#x", addr, v, want)
				}
				now = done
			}
			if c.DirtyLines() > maxline {
				t.Fatalf("dirty lines %d exceed maxline %d", c.DirtyLines(), maxline)
			}
		}
		c.Checkpoint(now)
		if err := c.DurableEqual(golden); err != nil {
			t.Fatalf("final durability: %v", err)
		}
	})
}
