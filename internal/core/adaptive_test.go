package core

import (
	"testing"
	"testing/quick"

	"wlcache/internal/mem"
)

func TestAdaptiveModeString(t *testing.T) {
	if AdaptOff.String() != "off" || AdaptStatic.String() != "static" || AdaptDynamic.String() != "dynamic" {
		t.Fatal("mode names wrong")
	}
	if AdaptiveMode(99).String() != "unknown" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestAdaptiveRaisesOnGrowingOnTime(t *testing.T) {
	a := NewAdaptive(DefaultAdaptiveConfig(), 4)
	// T(n-1) is 2x T(n-2): clearly improving source.
	if got := a.NextMaxline(2000, 1000); got != 5 {
		t.Fatalf("maxline = %d, want 5", got)
	}
	if got := a.NextMaxline(4000, 2000); got != 6 {
		t.Fatalf("maxline = %d, want 6", got)
	}
	// Clamped at MaxMaxline.
	if got := a.NextMaxline(8000, 4000); got != 6 {
		t.Fatalf("maxline = %d, want clamp at 6", got)
	}
}

func TestAdaptiveLowersOnShrinkingOnTime(t *testing.T) {
	a := NewAdaptive(DefaultAdaptiveConfig(), 4)
	if got := a.NextMaxline(500, 1000); got != 3 {
		t.Fatalf("maxline = %d, want 3", got)
	}
	if got := a.NextMaxline(250, 500); got != 2 {
		t.Fatalf("maxline = %d, want 2", got)
	}
	// Clamped at MinMaxline.
	if got := a.NextMaxline(100, 250); got != 2 {
		t.Fatalf("maxline = %d, want clamp at 2", got)
	}
}

func TestAdaptiveHoldsOnFlatOnTime(t *testing.T) {
	a := NewAdaptive(DefaultAdaptiveConfig(), 4)
	for i := 0; i < 5; i++ {
		if got := a.NextMaxline(1000, 1000); got != 4 {
			t.Fatalf("maxline moved to %d on flat history", got)
		}
	}
}

func TestAdaptiveIgnoresMissingHistory(t *testing.T) {
	a := NewAdaptive(DefaultAdaptiveConfig(), 4)
	if got := a.NextMaxline(0, 0); got != 4 {
		t.Fatal("moved without history")
	}
	if got := a.NextMaxline(1000, 0); got != 4 {
		t.Fatal("moved with only one sample")
	}
}

func TestAdaptiveClampsInitial(t *testing.T) {
	cfg := DefaultAdaptiveConfig() // bounds [2, 6]
	if NewAdaptive(cfg, 99).Maxline() != 6 {
		t.Fatal("initial not clamped to max")
	}
	if NewAdaptive(cfg, 0).Maxline() != 2 {
		t.Fatal("initial not clamped to min")
	}
}

// Property: maxline always stays within [MinMaxline, MaxMaxline].
func TestAdaptiveQuickBounds(t *testing.T) {
	f := func(durs []int64) bool {
		cfg := DefaultAdaptiveConfig()
		a := NewAdaptive(cfg, 4)
		prev := int64(1000)
		for _, d := range durs {
			if d < 0 {
				d = -d
			}
			d = d%100000 + 1
			m := a.NextMaxline(d, prev)
			prev = d
			if m < cfg.MinMaxline || m > cfg.MaxMaxline {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWLCacheOnBootAppliesAdaptation(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Adaptive.Mode = AdaptStatic
	c := New(cfg, nvm)
	if c.Maxline() != 6 {
		t.Fatalf("initial maxline %d", c.Maxline())
	}
	// Shrinking on-times lower maxline and waterline together.
	c.OnBoot(500, 1000)
	if c.Maxline() != 5 || c.Waterline() != 4 {
		t.Fatalf("after shrink: maxline %d waterline %d", c.Maxline(), c.Waterline())
	}
	if c.ExtraStats().Reconfigs != 1 {
		t.Fatalf("reconfigs = %d", c.ExtraStats().Reconfigs)
	}
	// Reserve shrinks with it.
	small := c.ReserveEnergy()
	c.OnBoot(4000, 500)
	if c.ReserveEnergy() <= small {
		t.Fatal("reserve did not grow with maxline")
	}
}

func TestWLCacheDynamicRaise(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Maxline = 2
	cfg.Waterline = 2 // no eager cleaning: force the maxline path
	cfg.Adaptive.Mode = AdaptDynamic
	cfg.Adaptive.MaxMaxline = 8
	c := New(cfg, nvm)
	c.BindEnergyProbe(func(newReserve float64) bool { return true }) // plenty of energy
	now := int64(0)
	for i := 0; i < 6; i++ {
		now = store(c, now, uint32(0x1000+i*64), 1)
	}
	if c.Maxline() <= 2 {
		t.Fatal("dynamic adaptation never raised maxline despite available energy")
	}
	if c.ExtraStats().Reconfigs == 0 {
		t.Fatal("reconfig not counted")
	}
}

func TestWLCacheDynamicRaiseDeniedByProbe(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Maxline = 2
	cfg.Waterline = 1
	cfg.Adaptive.Mode = AdaptDynamic
	cfg.Adaptive.MaxMaxline = 8
	c := New(cfg, nvm)
	c.BindEnergyProbe(func(newReserve float64) bool { return false }) // starving
	now := int64(0)
	for i := 0; i < 6; i++ {
		now = store(c, now, uint32(0x1000+i*64), 1)
	}
	if c.Maxline() != 2 {
		t.Fatalf("maxline raised to %d despite probe denial", c.Maxline())
	}
	// Instead the cache must have written back (paper: "we would
	// rather write back one of the dirty lines than stall").
	if c.ExtraStats().Writebacks == 0 {
		t.Fatal("no write-backs under denial")
	}
}

func TestWLCacheDynamicRevertsAtBoot(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Maxline = 2
	cfg.Waterline = 2
	cfg.Adaptive.Mode = AdaptDynamic
	cfg.Adaptive.MaxMaxline = 8
	c := New(cfg, nvm)
	c.BindEnergyProbe(func(float64) bool { return true })
	now := int64(0)
	for i := 0; i < 6; i++ {
		now = store(c, now, uint32(0x1000+i*64), 1)
	}
	raised := c.Maxline()
	if raised <= 2 {
		t.Fatal("precondition: dynamic raise did not happen")
	}
	done, _ := c.Checkpoint(now)
	done, _ = c.Restore(done)
	c.OnBoot(1000, 1000) // flat: static controller keeps its own value
	if c.Maxline() >= raised {
		t.Fatalf("opportunistic raise (%d) persisted across boot (%d)", raised, c.Maxline())
	}
	_ = done
}
