// Package core implements the paper's contribution: the WL-Cache
// design — a volatile SRAM cache whose dirty-line population is
// bounded by a small DirtyQueue governed by the maxline and waterline
// thresholds — together with the boot-time adaptive threshold
// management of §4 and its dynamic variant.
package core

import "fmt"

// DQPolicy selects how the DirtyQueue picks a dirty line to clean
// (§5.2). This is distinct from the cache replacement policy: the
// selected line is written back and stays in the cache as clean.
type DQPolicy uint8

const (
	// DQFIFO cleans the oldest DirtyQueue entry (paper default).
	DQFIFO DQPolicy = iota
	// DQLRU cleans the least recently used dirty line (requires a
	// search over the queue; costlier in hardware, §6.4).
	DQLRU
)

// String returns "FIFO" or "LRU".
func (p DQPolicy) String() string {
	if p == DQFIFO {
		return "FIFO"
	}
	return "LRU"
}

// dqEntry is one DirtyQueue slot: the memory (line base) address of a
// line that became dirty, plus a unique id so the asynchronous
// write-back ACK can remove exactly the entry it was issued for.
type dqEntry struct {
	id   uint64
	addr uint32
}

// DirtyQueue is the small hardware queue tracking dirty-line
// addresses (§3.1). Entries are kept in insertion order; the head is
// the oldest. Redundant entries for the same line are permitted
// (§5.3) and stale entries for lines that were evicted or already
// checkpointed are tolerated and lazily discarded (§5.4).
type DirtyQueue struct {
	capacity int
	entries  []dqEntry
	nextID   uint64
}

// NewDirtyQueue returns an empty queue with the given capacity
// (the paper's default hardware size is 8 slots).
func NewDirtyQueue(capacity int) *DirtyQueue {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: invalid DirtyQueue capacity %d", capacity))
	}
	return &DirtyQueue{capacity: capacity, entries: make([]dqEntry, 0, capacity)}
}

// Cap returns the hardware capacity.
func (q *DirtyQueue) Cap() int { return q.capacity }

// Len returns the number of occupied slots.
func (q *DirtyQueue) Len() int { return len(q.entries) }

// Full reports whether every slot is occupied.
func (q *DirtyQueue) Full() bool { return len(q.entries) >= q.capacity }

// Push appends an entry for addr and returns its id. It panics when
// full: callers must stall before inserting (§5.1).
func (q *DirtyQueue) Push(addr uint32) uint64 {
	if q.Full() {
		panic("core: DirtyQueue overflow; caller must stall")
	}
	q.nextID++
	q.entries = append(q.entries, dqEntry{id: q.nextID, addr: addr})
	return q.nextID
}

// RemoveID deletes the entry with the given id, reporting whether it
// was present (the write-back ACK path, §5.3 step 4).
func (q *DirtyQueue) RemoveID(id uint64) bool {
	for i := range q.entries {
		if q.entries[i].id == id {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return true
		}
	}
	return false
}

// removeAt deletes the entry at index i.
func (q *DirtyQueue) removeAt(i int) {
	q.entries = append(q.entries[:i], q.entries[i+1:]...)
}

// Clear empties the queue (JIT checkpoint or power-on reset).
func (q *DirtyQueue) Clear() { q.entries = q.entries[:0] }

// Entries returns a copy of the current entries in queue order
// (oldest first); used by checkpointing and tests.
func (q *DirtyQueue) Entries() []dqEntry {
	return append([]dqEntry(nil), q.entries...)
}
