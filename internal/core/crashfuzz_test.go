package core

import (
	"testing"

	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// FuzzCrashRecovery crashes a WL-Cache at fuzzer-chosen points —
// including while asynchronous write-backs are still in flight on the
// NVM port and with write-back ACKs lost — restores, and asserts the
// §3/§5 invariants: whole-system durability at every checkpoint, the
// dirty bound, and architectural value correctness after recovery.
func FuzzCrashRecovery(f *testing.F) {
	f.Add([]byte{1, 2, 3, 6, 0, 0, 1, 4, 5, 6, 0, 0, 0, 2, 3}, uint8(2), uint8(0x80))
	f.Add([]byte{5, 1, 1, 5, 2, 2, 5, 3, 3, 6, 0, 0, 7, 0, 0, 0, 1, 1}, uint8(1), uint8(0xff))
	f.Add([]byte{3, 9, 9, 3, 8, 8, 6, 0, 0, 3, 7, 7, 6, 0, 0}, uint8(5), uint8(0x20))
	f.Fuzz(func(t *testing.T, data []byte, mlSeed, dropSeed uint8) {
		maxline := 1 + int(mlSeed)%6
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		cfg := DefaultConfig()
		cfg.Maxline = maxline
		cfg.Waterline = maxline - 1
		if cfg.Waterline < 1 {
			cfg.Waterline = 1
		}
		cfg.Adaptive.Mode = AdaptOff
		c := New(cfg, nvm)
		// Deterministic ACK loss: a write-back's ACK is dropped when
		// its id hashes below the fuzz-chosen threshold, stranding the
		// DirtyQueue entry for the §5.4 lazy discard.
		c.SetACKFilter(func(id uint64, addr uint32) bool {
			return uint8(id*0x9e3779b9>>5) >= dropSeed
		})
		golden := mem.NewStore()
		now := int64(0)
		crash := func() {
			// Power fails *now* — possibly with write-backs still in
			// flight (the port is busy past now), exercising the
			// redundant checkpoint flush of §5.3. The volatile array
			// is then lost and the system reboots.
			done, _ := c.Checkpoint(now)
			if err := c.DurableEqual(golden); err != nil {
				t.Fatalf("durability violated at crash: %v", err)
			}
			now, _ = c.Restore(done)
		}
		for i := 0; i+3 <= len(data); i += 3 {
			op := data[i]
			addr := (uint32(data[i+1]) | uint32(data[i+2])<<8) << 2 // 256 KB footprint
			switch op % 8 {
			case 6:
				crash()
			case 7:
				// Idle until the NVM port drains so pending ACKs (or
				// their injected losses) are processed on the next
				// access.
				if bu := nvm.BusyUntil(); bu > now {
					now = bu
				}
			case 1, 3, 5:
				val := uint32(op)<<24 | addr
				golden.Write(addr, val)
				_, done, _ := c.Access(now, isa.OpStore, addr, val)
				now = done
			default:
				v, done, _ := c.Access(now, isa.OpLoad, addr, 0)
				if want := golden.Read(addr); v != want {
					t.Fatalf("load %#x = %#x, want %#x", addr, v, want)
				}
				now = done
			}
			if c.DirtyLines() > maxline {
				t.Fatalf("dirty lines %d exceed maxline %d", c.DirtyLines(), maxline)
			}
		}
		crash()
		// Post-recovery reads must come back architecturally correct
		// from the (cold) hierarchy.
		for i := 0; i+3 <= len(data); i += 3 {
			addr := (uint32(data[i+1]) | uint32(data[i+2])<<8) << 2
			v, done, _ := c.Access(now, isa.OpLoad, addr, 0)
			if want := golden.Read(addr); v != want {
				t.Fatalf("post-recovery load %#x = %#x, want %#x", addr, v, want)
			}
			now = done
		}
	})
}
