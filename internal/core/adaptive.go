package core

// AdaptiveMode selects how WL-Cache's thresholds are managed (§4).
type AdaptiveMode uint8

const (
	// AdaptOff keeps maxline/waterline fixed ("static" WL-Cache).
	AdaptOff AdaptiveMode = iota
	// AdaptStatic reconfigures thresholds at each boot from the trend
	// of measured power-on times (the paper's default optimization).
	AdaptStatic
	// AdaptDynamic additionally raises maxline opportunistically
	// during execution when residual capacitor energy allows
	// (WL-Cache(dyn), §4 "Dynamic adaptation").
	AdaptDynamic
)

// String names the mode.
func (m AdaptiveMode) String() string {
	switch m {
	case AdaptOff:
		return "off"
	case AdaptStatic:
		return "static"
	case AdaptDynamic:
		return "dynamic"
	}
	return "unknown"
}

// AdaptiveConfig parameterizes the boot-time controller.
type AdaptiveConfig struct {
	Mode AdaptiveMode
	// MinMaxline/MaxMaxline clamp the adapted threshold. The paper
	// observes min/max values of 2 and 6 on both traces (§6.6).
	MinMaxline int
	MaxMaxline int
	// GrowRatio/ShrinkRatio are the significance thresholds on the
	// power-on time trend: Tn-1 > GrowRatio*Tn-2 raises maxline,
	// Tn-1 < ShrinkRatio*Tn-2 lowers it, otherwise it is kept.
	GrowRatio   float64
	ShrinkRatio float64
}

// DefaultAdaptiveConfig enables static boot-time adaptation with the
// paper's observed bounds.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Mode:        AdaptStatic,
		MinMaxline:  2,
		MaxMaxline:  6,
		GrowRatio:   1.25,
		ShrinkRatio: 0.80,
	}
}

// Adaptive is the runtime-system controller that tracks the last two
// power-on durations (persisted in 2-byte NVFFs per §5.5) and derives
// the next interval's maxline. Thresholds change only at boot;
// changing them mid-run could invalidate the JIT energy guarantee.
type Adaptive struct {
	cfg     AdaptiveConfig
	maxline int
	boots   int
}

// NewAdaptive returns a controller starting from initialMaxline.
func NewAdaptive(cfg AdaptiveConfig, initialMaxline int) *Adaptive {
	if cfg.MinMaxline <= 0 {
		cfg.MinMaxline = 1
	}
	if cfg.MaxMaxline < cfg.MinMaxline {
		cfg.MaxMaxline = cfg.MinMaxline
	}
	m := initialMaxline
	if m < cfg.MinMaxline {
		m = cfg.MinMaxline
	}
	if m > cfg.MaxMaxline {
		m = cfg.MaxMaxline
	}
	return &Adaptive{cfg: cfg, maxline: m}
}

// NextMaxline ingests the power-on durations (ps) of the last two
// completed intervals (lastOn = Tn-1, prevOn = Tn-2) and returns the
// maxline for the interval now starting.
func (a *Adaptive) NextMaxline(lastOn, prevOn int64) int {
	a.boots++
	if lastOn <= 0 || prevOn <= 0 {
		return a.maxline // not enough history yet
	}
	ratio := float64(lastOn) / float64(prevOn)
	switch {
	case ratio > a.cfg.GrowRatio && a.maxline < a.cfg.MaxMaxline:
		a.maxline++
	case ratio < a.cfg.ShrinkRatio && a.maxline > a.cfg.MinMaxline:
		a.maxline--
	}
	return a.maxline
}

// Maxline returns the controller's current threshold.
func (a *Adaptive) Maxline() int { return a.maxline }

// Boots returns how many boot decisions the controller has made.
func (a *Adaptive) Boots() int { return a.boots }
