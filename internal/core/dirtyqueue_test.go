package core

import (
	"testing"
	"testing/quick"
)

func TestDirtyQueueBasics(t *testing.T) {
	q := NewDirtyQueue(4)
	if q.Cap() != 4 || q.Len() != 0 || q.Full() {
		t.Fatal("fresh queue state wrong")
	}
	id1 := q.Push(0x100)
	id2 := q.Push(0x200)
	if id1 == id2 {
		t.Fatal("ids must be unique")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	ents := q.Entries()
	if ents[0].addr != 0x100 || ents[1].addr != 0x200 {
		t.Fatal("entries out of insertion order")
	}
}

func TestDirtyQueueRemoveID(t *testing.T) {
	q := NewDirtyQueue(4)
	a := q.Push(1 << 6)
	b := q.Push(2 << 6)
	c := q.Push(3 << 6)
	if !q.RemoveID(b) {
		t.Fatal("RemoveID failed for present id")
	}
	if q.RemoveID(b) {
		t.Fatal("RemoveID succeeded twice")
	}
	ents := q.Entries()
	if len(ents) != 2 || ents[0].id != a || ents[1].id != c {
		t.Fatal("wrong entries after middle removal")
	}
}

func TestDirtyQueueRedundantEntriesAllowed(t *testing.T) {
	// §5.3: the same address may appear more than once.
	q := NewDirtyQueue(4)
	q.Push(0x100)
	q.Push(0x100)
	if q.Len() != 2 {
		t.Fatal("redundant insertion rejected")
	}
}

func TestDirtyQueueOverflowPanics(t *testing.T) {
	q := NewDirtyQueue(2)
	q.Push(0)
	q.Push(64)
	defer func() {
		if recover() == nil {
			t.Fatal("push into a full queue must panic (callers stall first)")
		}
	}()
	q.Push(128)
}

func TestDirtyQueueClear(t *testing.T) {
	q := NewDirtyQueue(3)
	q.Push(0)
	q.Push(64)
	q.Clear()
	if q.Len() != 0 || q.Full() {
		t.Fatal("Clear did not empty the queue")
	}
	// ids keep growing after Clear (no reuse).
	id := q.Push(128)
	if id < 3 {
		t.Fatalf("id %d reused after clear", id)
	}
}

func TestNewDirtyQueueRejectsBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	NewDirtyQueue(0)
}

// Property: Len is pushes minus successful removals; order preserved.
func TestDirtyQueueQuickFIFOOrder(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewDirtyQueue(64)
		var live []uint64
		for _, op := range ops {
			if op%3 != 0 && !q.Full() {
				live = append(live, q.Push(uint32(op)<<6))
			} else if len(live) > 0 {
				victim := live[int(op)%len(live)]
				if !q.RemoveID(victim) {
					return false
				}
				for i, id := range live {
					if id == victim {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
			if q.Len() != len(live) {
				return false
			}
		}
		// Remaining entries must be the live ids in insertion order.
		ents := q.Entries()
		for i, e := range ents {
			if e.id != live[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
