package core

import (
	"fmt"

	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/obs"
	"wlcache/internal/stats"
)

// Config parameterizes a WL-Cache instance.
type Config struct {
	Geometry    cache.Geometry
	Tech        cache.Tech
	CachePolicy cache.ReplacementPolicy // line eviction policy (LRU default, §6.1)
	DQPolicy    DQPolicy                // DirtyQueue cleaning policy (FIFO default)
	DQCap       int                     // hardware DirtyQueue slots (8 default)
	Maxline     int                     // initial maxline (6 default)
	Waterline   int                     // initial waterline (0 derives maxline-1)

	JIT energy.JITCosts
	// LineReserve is the energy reserved per maxline slot for JIT
	// checkpointing one cache line. It is sized for the worst case
	// (full line write at the lowest operating voltage, including
	// regulator loss), so it exceeds the typical line-write energy;
	// this is what moves Vbackup across the paper's 2.95-3.1 V range
	// as maxline changes (§5.5, Table 2).
	LineReserve float64
	// DQLeak is the leakage of the DirtyQueue + control logic (§6.2
	// reports ~0.1 mW at 90 nm).
	DQLeak float64
	// DQLRUSearchEnergy is charged per victim selection under DQLRU
	// (the policy must search the queue and the LRU state; §6.4), and
	// DQLRULeak is the extra standby power of that logic.
	DQLRUSearchEnergy float64
	DQLRULeak         float64

	Adaptive AdaptiveConfig
}

// DefaultConfig returns the paper's default WL-Cache configuration
// (§6.1): 8 KB 2-way SRAM with LRU line replacement, DirtyQueue of 8
// with FIFO cleaning, maxline 6, waterline 5, adaptation enabled.
func DefaultConfig() Config {
	return Config{
		Geometry:          cache.DefaultGeometry(),
		Tech:              cache.SRAMTech(),
		CachePolicy:       cache.LRU,
		DQPolicy:          DQFIFO,
		DQCap:             8,
		Maxline:           6,
		JIT:               energy.DefaultJITCosts(),
		LineReserve:       75e-9,
		DQLeak:            0.1e-3,
		DQLRUSearchEnergy: 60e-12,
		DQLRULeak:         0.12e-3,
		Adaptive:          DefaultAdaptiveConfig(),
	}
}

// inflightWB is an asynchronous write-back awaiting its ACK.
type inflightWB struct {
	id     uint64 // DirtyQueue entry id to remove on ACK
	addr   uint32
	issued int64 // issue time (write-back latency accounting)
	done   int64 // ACK time
}

// WLCache is the Write-Light Cache design: a volatile SRAM write-back
// cache that bounds its dirty-line population to maxline, cleans lines
// asynchronously past waterline, and JIT-checkpoints the (bounded)
// dirty set to NVM at power failure. It implements the simulator's
// Design interface.
type WLCache struct {
	cfg Config
	arr *cache.Array
	nvm *mem.NVM
	dq  *DirtyQueue

	maxline   int
	waterline int
	dirty     int // current number of dirty lines in the cache

	inflight []inflightWB // sorted by done

	adaptive *Adaptive
	// probe reports whether the capacitor can afford raising the
	// reserve to newReserve joules right now (dynamic adaptation, §4).
	probe func(newReserve float64) bool
	// ackFilter, when set, may drop write-back ACKs (fault injection).
	ackFilter func(id uint64, addr uint32) bool
	// reserveChanged, when set, tells the simulator its cached Vbackup
	// threshold is stale; fired after every maxline change.
	reserveChanged func()
	// rec, when set, records stalls, write-back issue/ACK, DirtyQueue
	// occupancy and threshold adaptation (internal/obs). nil disables
	// recording at the cost of one nil check per event site.
	rec *obs.Recorder

	// replE is cfg.Tech.ReplacementEnergy[cfg.CachePolicy], hoisted out
	// of the per-access map lookup.
	replE float64

	extra       stats.DesignExtra
	lineBuf     []uint32
	lastRestore int64 // time of the last Restore (timestamps OnBoot events)
}

// New builds a WL-Cache over the given NVM backend.
func New(cfg Config, nvm *mem.NVM) *WLCache {
	if cfg.DQCap <= 0 {
		panic("core: DQCap must be positive")
	}
	if cfg.Maxline <= 0 || cfg.Maxline > cfg.DQCap {
		panic(fmt.Sprintf("core: maxline %d out of range (1..%d)", cfg.Maxline, cfg.DQCap))
	}
	if cfg.Waterline == 0 {
		cfg.Waterline = cfg.Maxline - 1
	}
	if cfg.Waterline < 0 || cfg.Waterline > cfg.Maxline {
		panic(fmt.Sprintf("core: waterline %d out of range (0..maxline=%d)", cfg.Waterline, cfg.Maxline))
	}
	c := &WLCache{
		cfg:       cfg,
		arr:       cache.NewArray(cfg.Geometry, cfg.CachePolicy),
		nvm:       nvm,
		dq:        NewDirtyQueue(cfg.DQCap),
		maxline:   cfg.Maxline,
		waterline: cfg.Waterline,
		replE:     cfg.Tech.ReplacementEnergy[cfg.CachePolicy],
		lineBuf:   make([]uint32, cfg.Geometry.LineWords()),
	}
	if cfg.Adaptive.Mode != AdaptOff {
		c.adaptive = NewAdaptive(cfg.Adaptive, cfg.Maxline)
	}
	c.extra.MaxlineNow = c.maxline
	c.extra.WaterlineNow = c.waterline
	return c
}

// Name identifies the design, including its policies.
func (c *WLCache) Name() string {
	return fmt.Sprintf("WL-Cache(dq=%s,cache=%s)", c.cfg.DQPolicy, c.cfg.CachePolicy)
}

// Maxline returns the current maxline threshold.
func (c *WLCache) Maxline() int { return c.maxline }

// Waterline returns the current waterline threshold.
func (c *WLCache) Waterline() int { return c.waterline }

// DirtyLines returns the current number of dirty lines.
func (c *WLCache) DirtyLines() int { return c.dirty }

// Array exposes the underlying cache array (tests and invariants).
func (c *WLCache) Array() *cache.Array { return c.arr }

// Queue exposes the DirtyQueue (tests and invariants).
func (c *WLCache) Queue() *DirtyQueue { return c.dq }

// BindEnergyProbe installs the residual-energy probe used by dynamic
// adaptation; the simulator calls this when it owns the capacitor.
func (c *WLCache) BindEnergyProbe(p func(newReserve float64) bool) { c.probe = p }

// BindReserveChanged installs the simulator's stale-threshold callback,
// invoked after every maxline change so the cached Vbackup is refreshed
// (sim.ReserveNotifyBinder).
func (c *WLCache) BindReserveChanged(f func()) { c.reserveChanged = f }

// BindObserver installs the observability recorder; the simulator
// calls this at construction when Config.Obs is set.
func (c *WLCache) BindObserver(r *obs.Recorder) {
	c.rec = r
	c.rec.Thresholds(c.maxline, c.waterline)
}

// SetACKFilter installs a fault-injection hook on the asynchronous
// write-back ACK path (§5.3 step 4): when f returns false the ACK is
// dropped — the NVM write itself completed, but the DirtyQueue entry
// is not removed and must be lazily discarded as stale by victim
// selection and checkpointing (§5.4). nil removes the hook.
func (c *WLCache) SetACKFilter(f func(id uint64, addr uint32) bool) { c.ackFilter = f }

// ReserveEnergy returns the joules that must be reserved for a JIT
// checkpoint: the fixed register/threshold cost plus maxline full-line
// NVM writes (§3.2). The simulator derives Vbackup from this.
func (c *WLCache) ReserveEnergy() float64 {
	return c.reserveFor(c.maxline)
}

func (c *WLCache) reserveFor(maxline int) float64 {
	return c.cfg.JIT.BaseReserve + float64(maxline)*c.cfg.LineReserve
}

// LeakPower returns the standby power of the SRAM array plus the
// DirtyQueue logic.
func (c *WLCache) LeakPower() float64 {
	leak := c.cfg.Tech.Leakage + c.cfg.DQLeak
	if c.cfg.DQPolicy == DQLRU {
		leak += c.cfg.DQLRULeak
	}
	return leak
}

// ExtraStats returns WL-Cache-specific counters.
func (c *WLCache) ExtraStats() stats.DesignExtra {
	e := c.extra
	e.MaxlineNow = c.maxline
	e.WaterlineNow = c.waterline
	return e
}

// Access performs one memory operation starting at time now and
// returns the loaded value (stores return val), the completion time,
// and the energy drawn, split by category.
func (c *WLCache) Access(now int64, op isa.Op, addr uint32, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, t := c.AccessEB(now, op, addr, val, &eb)
	return v, t, eb
}

// AccessEB is Access with the breakdown written into *eb instead of
// returned by value (sim.EBAccessor fast path).
func (c *WLCache) AccessEB(now int64, op isa.Op, addr uint32, val uint32, eb *energy.Breakdown) (uint32, int64) {
	c.drainACKs(now)
	eb.CacheRead += c.replE

	lineAddr := c.arr.LineAddr(addr)
	ln, hit := c.arr.Lookup(addr)
	if op == isa.OpLoad {
		if hit {
			c.arr.Touch(ln)
			eb.CacheRead += c.cfg.Tech.ReadEnergy
			return ln.Data[c.arr.WordIndex(addr)], now + c.cfg.Tech.HitLatency
		}
		t := now + c.cfg.Tech.ProbeLatency
		eb.CacheRead += c.cfg.Tech.ProbeEnergy
		ln, t = c.fill(t, lineAddr, eb)
		return ln.Data[c.arr.WordIndex(addr)], t
	}

	// Store (write-allocate, write-back).
	t := now
	if !hit {
		t += c.cfg.Tech.ProbeLatency
		eb.CacheWrite += c.cfg.Tech.ProbeEnergy
		ln, t = c.fill(t, lineAddr, eb)
	}
	if !ln.Dirty {
		// Clean->dirty transition: take a DirtyQueue slot, stalling at
		// the maxline bound (§5.1).
		t = c.ensureSlot(t, lineAddr, eb)
		// The stall may have evicted nothing, but time passed; the
		// line cannot have been evicted (no fills happen while
		// stalled), so ln remains valid.
		ln.Dirty = true
		c.dirty++
		if c.dirty > c.extra.DirtyPeak {
			c.extra.DirtyPeak = c.dirty
		}
		if c.hasLiveEntry(lineAddr) {
			c.extra.RedundantDQ++
		}
		c.dq.Push(lineAddr)
		c.rec.DirtyDepth(t, c.dirty)
	}
	ln.Data[c.arr.WordIndex(addr)] = val
	c.arr.Touch(ln)
	eb.CacheWrite += c.cfg.Tech.WriteEnergy
	t += c.cfg.Tech.WriteLatency

	// Past the waterline, clean one line asynchronously (§3.1); the
	// write-back overlaps subsequent execution (ILP).
	for c.dirty > c.waterline {
		if !c.issueWriteback(t, eb) {
			break
		}
	}
	return val, t
}

// fill brings lineAddr into the cache at time t, evicting (and
// persisting, if dirty) the victim. It returns the filled line and the
// completion time.
func (c *WLCache) fill(t int64, lineAddr uint32, eb *energy.Breakdown) (*cache.Line, int64) {
	victim := c.arr.Victim(lineAddr)
	if victim.Valid && victim.Dirty {
		vaddr := c.arr.VictimAddr(victim, lineAddr)
		done, e := c.nvm.WriteLine(t, vaddr, victim.Data)
		eb.MemWrite += e
		t = done
		victim.Dirty = false
		c.dirty--
		c.rec.DirtyDepth(t, c.dirty)
		// The victim's DirtyQueue entry is left in place and lazily
		// discarded later (§5.4).
	}
	done, e := c.nvm.ReadLine(t, lineAddr, c.lineBuf)
	eb.MemRead += e
	c.arr.Fill(victim, lineAddr, c.lineBuf)
	ln, ok := c.arr.Lookup(lineAddr)
	if !ok {
		panic("core: line absent immediately after fill")
	}
	return ln, done
}

// ensureSlot blocks (advances time) until the dirty-line count is
// below maxline and the DirtyQueue has a free hardware slot. Under
// dynamic adaptation it may instead raise maxline when the capacitor
// can afford a larger reserve (§4). lineAddr is the line the blocked
// store targets, carried onto the stall event as its correlation key.
func (c *WLCache) ensureSlot(t int64, lineAddr uint32, eb *energy.Breakdown) int64 {
	for c.dirty >= c.maxline || c.dq.Full() {
		if c.dirty >= c.maxline && !c.dq.Full() && c.tryDynamicRaise(t) {
			continue
		}
		if len(c.inflight) == 0 {
			// No write-back in flight to wait for: start one now. A
			// false return means the queue held only stale entries,
			// which selection just discarded, freeing slots.
			if !c.issueWriteback(t, eb) && c.dirty >= c.maxline {
				panic("core: dirty lines at maxline but no live DirtyQueue entry")
			}
			continue
		}
		wake := c.inflight[0].done
		if wake > t {
			c.extra.Stalls++
			c.extra.StallTime += wake - t
			c.rec.StoreStall(t, wake, lineAddr)
			t = wake
		}
		c.drainACKs(t)
	}
	return t
}

// tryDynamicRaise opportunistically raises maxline by one when the
// residual capacitor energy can afford JIT-checkpointing another line
// at time t.
func (c *WLCache) tryDynamicRaise(t int64) bool {
	if c.cfg.Adaptive.Mode != AdaptDynamic || c.probe == nil {
		return false
	}
	if c.maxline >= min(c.cfg.Adaptive.MaxMaxline, c.cfg.DQCap) {
		return false
	}
	if !c.probe(c.reserveFor(c.maxline + 1)) {
		return false
	}
	c.maxline++
	c.waterline = c.maxline - 1
	c.extra.Reconfigs++
	if c.reserveChanged != nil {
		c.reserveChanged()
	}
	c.rec.Adapt(t, c.maxline-1, c.maxline, true)
	return true
}

// issueWriteback selects a dirty line per the DirtyQueue replacement
// policy, marks it clean (step 1), and starts its asynchronous NVM
// write-back (step 2). The entry is removed only on ACK (step 4).
// It reports false when no live dirty entry exists.
func (c *WLCache) issueWriteback(t int64, eb *energy.Breakdown) bool {
	if c.cfg.DQPolicy == DQLRU {
		eb.CacheRead += c.cfg.DQLRUSearchEnergy
	}
	idx := c.selectVictim()
	if idx < 0 {
		return false
	}
	entry := c.dq.entries[idx]
	ln, ok := c.arr.Lookup(entry.addr)
	if !ok || !ln.Dirty {
		panic("core: selected DirtyQueue victim is not dirty")
	}
	ln.Dirty = false // step 1: mark clean first (§5.3)
	c.dirty--
	done, e := c.nvm.WriteLineAsync(t, entry.addr, ln.Data) // step 2
	eb.MemWrite += e
	c.insertInflight(inflightWB{id: entry.id, addr: entry.addr, issued: t, done: done})
	c.extra.Writebacks++
	c.rec.WritebackIssued(t, entry.addr)
	c.rec.DirtyDepth(t, c.dirty)
	return true
}

// selectVictim returns the index of the DirtyQueue entry to clean,
// discarding stale entries it encounters (§5.4). It returns -1 when
// no entry maps to a dirty line.
func (c *WLCache) selectVictim() int {
	switch c.cfg.DQPolicy {
	case DQFIFO:
		for i := 0; i < c.dq.Len(); {
			e := c.dq.entries[i]
			ln, ok := c.arr.Lookup(e.addr)
			switch {
			case ok && ln.Dirty:
				return i
			case c.isInflight(e.id):
				i++ // clean because a write-back is in flight; keep (§5.3)
			default:
				c.dq.removeAt(i) // stale: evicted or already persisted
				c.extra.StaleDQSkips++
			}
		}
		return -1
	case DQLRU:
		best := -1
		var bestUse uint64
		for i := 0; i < c.dq.Len(); {
			e := c.dq.entries[i]
			ln, ok := c.arr.Lookup(e.addr)
			switch {
			case ok && ln.Dirty:
				if best < 0 || ln.LastUse() < bestUse {
					best, bestUse = i, ln.LastUse()
				}
				i++
			case c.isInflight(e.id):
				i++
			default:
				c.dq.removeAt(i)
				c.extra.StaleDQSkips++
			}
		}
		return best
	}
	panic("core: unknown DirtyQueue policy")
}

func (c *WLCache) isInflight(id uint64) bool {
	for _, w := range c.inflight {
		if w.id == id {
			return true
		}
	}
	return false
}

// hasLiveEntry reports whether a DirtyQueue entry already references
// lineAddr (redundant-entry accounting, §5.3).
func (c *WLCache) hasLiveEntry(lineAddr uint32) bool {
	for _, e := range c.dq.entries {
		if e.addr == lineAddr {
			return true
		}
	}
	return false
}

func (c *WLCache) insertInflight(w inflightWB) {
	i := len(c.inflight)
	for i > 0 && c.inflight[i-1].done > w.done {
		i--
	}
	c.inflight = append(c.inflight, inflightWB{})
	copy(c.inflight[i+1:], c.inflight[i:])
	c.inflight[i] = w
}

// drainACKs completes every write-back whose ACK has arrived by time
// now, removing the matching DirtyQueue entries (step 4, §5.3). A
// dropped ACK (fault injection) leaves its entry in the queue; the
// stale-entry discard of §5.4 reclaims the slot later.
func (c *WLCache) drainACKs(now int64) {
	// Fast path (inlinable): nothing in flight, or nothing due yet.
	if len(c.inflight) == 0 || c.inflight[0].done > now {
		return
	}
	c.drainACKsSlow(now)
}

func (c *WLCache) drainACKsSlow(now int64) {
	n := 0
	for n < len(c.inflight) && c.inflight[n].done <= now {
		w := c.inflight[n]
		n++
		if c.ackFilter != nil && !c.ackFilter(w.id, w.addr) {
			c.extra.DroppedACKs++
			c.rec.WritebackDropped(w.done, w.addr)
			continue
		}
		c.dq.RemoveID(w.id)
		c.rec.WritebackACK(w.issued, w.done, w.addr)
	}
	if n > 0 {
		// Copy-down instead of reslicing forward so the backing array is
		// reused rather than leaked one element at a time.
		m := copy(c.inflight, c.inflight[n:])
		c.inflight = c.inflight[:m]
	}
}

// Checkpoint performs the JIT checkpoint at impending power failure
// (§3.2): every live DirtyQueue entry's line is flushed to NVM; stale
// entries are skipped; entries with in-flight write-backs are
// redundantly flushed (harmless, §5.3). Registers and the threshold
// NVFFs are then persisted.
func (c *WLCache) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	c.drainACKs(now)
	t := now
	for _, e := range c.dq.Entries() {
		ln, ok := c.arr.Lookup(e.addr)
		switch {
		case ok && ln.Dirty:
			done, en := c.nvm.WriteLine(t, e.addr, ln.Data)
			eb.Checkpoint += en
			t = done
			ln.Dirty = false
			c.dirty--
			c.extra.CheckpointLines++
		case ok && c.isInflight(e.id):
			// Power failed between write-back issue and ACK: the entry
			// is still in the queue, so the line is flushed again.
			done, en := c.nvm.WriteLine(t, e.addr, ln.Data)
			eb.Checkpoint += en
			t = done
			c.extra.CheckpointLines++
		default:
			c.extra.StaleDQSkips++
		}
	}
	if c.dirty != 0 {
		panic(fmt.Sprintf("core: %d dirty lines escaped the DirtyQueue", c.dirty))
	}
	c.dq.Clear()
	c.inflight = c.inflight[:0]
	c.rec.DirtyDepth(t, 0)
	t += c.cfg.JIT.RegCheckpointTime
	eb.Checkpoint += c.cfg.JIT.RegCheckpointEnergy
	return t, eb
}

// Restore boots the system back up: the volatile SRAM comes up cold;
// registers and thresholds are restored from NVFF.
func (c *WLCache) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	c.arr.InvalidateAll()
	c.dq.Clear()
	c.inflight = c.inflight[:0]
	c.dirty = 0
	c.lastRestore = now
	c.rec.DirtyDepth(now, 0)
	eb.Restore += c.cfg.JIT.RestoreEnergy
	return now + c.cfg.JIT.RestoreTime, eb
}

// OnBoot feeds the adaptive controller the measured power-on times of
// the previous two intervals and applies the resulting thresholds
// (§4). The simulator calls this after Restore.
func (c *WLCache) OnBoot(lastOn, prevOn int64) {
	if c.adaptive == nil {
		return
	}
	newMax := c.adaptive.NextMaxline(lastOn, prevOn)
	changed := newMax != c.maxline
	if changed {
		c.extra.Reconfigs++
		c.rec.Adapt(c.lastRestore, c.maxline, newMax, false)
	}
	c.maxline = newMax
	c.waterline = newMax - 1
	// Notify after the thresholds are in place so the listener reads the
	// new ReserveEnergy, not the outgoing one.
	if changed && c.reserveChanged != nil {
		c.reserveChanged()
	}
}

// DurableEqual verifies whole-system persistence after a checkpoint:
// WL-Cache's durability lives entirely in the NVM image.
func (c *WLCache) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, c.nvm.Image(), nil)
}
