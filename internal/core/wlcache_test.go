package core

import (
	"testing"
	"testing/quick"

	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// testCache builds a WL-Cache with adaptation off and the given
// maxline over a fresh NVM.
func testCache(t *testing.T, maxline int) (*WLCache, *mem.NVM) {
	t.Helper()
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Maxline = maxline
	cfg.Waterline = maxline - 1
	cfg.Adaptive.Mode = AdaptOff
	return New(cfg, nvm), nvm
}

// store/load helpers advancing a fake clock far enough that all ACKs
// drain between steps when desired.
func store(c *WLCache, now int64, addr, v uint32) int64 {
	_, done, _ := c.Access(now, isa.OpStore, addr, v)
	return done
}

func load(c *WLCache, now int64, addr uint32) (uint32, int64) {
	v, done, _ := c.Access(now, isa.OpLoad, addr, 0)
	return v, done
}

func TestWLCacheStoreLoadRoundTrip(t *testing.T) {
	c, _ := testCache(t, 6)
	now := store(c, 0, 0x1000, 42)
	v, _ := load(c, now, 0x1000)
	if v != 42 {
		t.Fatalf("load = %d, want 42", v)
	}
}

func TestWLCacheDirtyBoundNeverExceeded(t *testing.T) {
	for _, maxline := range []int{1, 2, 4, 6, 8} {
		c, _ := testCache(t, maxline)
		now := int64(0)
		// Store to many distinct lines; the bound must hold after
		// every access.
		for i := 0; i < 200; i++ {
			now = store(c, now, uint32(0x1000+i*64), uint32(i))
			if c.DirtyLines() > maxline {
				t.Fatalf("maxline=%d: dirty lines %d exceed bound", maxline, c.DirtyLines())
			}
			if got := c.Array().DirtyCount(); got != c.DirtyLines() {
				t.Fatalf("dirty counter %d disagrees with array scan %d", c.DirtyLines(), got)
			}
		}
	}
}

func TestWLCacheWaterlineTriggersAsyncWriteback(t *testing.T) {
	c, nvm := testCache(t, 4) // waterline 3
	now := int64(0)
	for i := 0; i < 3; i++ {
		now = store(c, now, uint32(0x1000+i*64), 1)
	}
	if got := nvm.Traffic().WriteWords; got != 0 {
		t.Fatalf("write-back before waterline exceeded: %d words", got)
	}
	store(c, now, 0x1000+3*64, 1) // 4th dirty line > waterline 3
	if got := nvm.Traffic().WriteWords; got == 0 {
		t.Fatal("no write-back after crossing the waterline")
	}
	// The cleaned line must still be resident (clean, not evicted).
	if _, hit := c.Array().Lookup(0x1000); !hit {
		t.Fatal("cleaned line was evicted; §3.1 says it stays cached")
	}
	if c.DirtyLines() != 3 {
		t.Fatalf("dirty lines = %d, want 3 (one cleaned)", c.DirtyLines())
	}
}

func TestWLCacheWritebackValueDurable(t *testing.T) {
	c, nvm := testCache(t, 2)
	now := store(c, 0, 0x1000, 0xaa)
	now = store(c, now, 0x1040, 0xbb) // crosses waterline 1 -> cleans 0x1000 (FIFO)
	_ = now
	if got := nvm.Image().Read(0x1000); got != 0xaa {
		t.Fatalf("NVM image = %#x after write-back, want 0xaa", got)
	}
}

// §5.3: a store racing an in-flight write-back must re-dirty the line
// and add a redundant DirtyQueue entry; no value may be lost.
func TestWLCacheCleanFirstRace(t *testing.T) {
	c, nvm := testCache(t, 2)
	now := store(c, 0, 0x1000, 1) // X = 1
	// Fill the queue so X is selected for cleaning.
	now = store(c, now, 0x1040, 7) // crosses waterline -> async WB of 0x1000 issued
	// Immediately store X = 2 while the write-back is in flight (we
	// do NOT advance past the ACK time). Because the line was marked
	// clean first (step 1), the store re-dirties it and inserts a
	// redundant DirtyQueue entry; the waterline may then immediately
	// clean it again, which is fine — the redundant entry is the
	// observable evidence of the race being handled.
	now = store(c, now, 0x1000, 2)
	if c.ExtraStats().RedundantDQ == 0 {
		t.Fatal("redundant DirtyQueue entry not recorded (step 1 ordering broken)")
	}
	// Checkpoint must persist X = 2.
	_, _ = c.Checkpoint(now + 1)
	if got := nvm.Image().Read(0x1000); got != 2 {
		t.Fatalf("NVM has X=%d after checkpoint, want 2 (lost update!)", got)
	}
}

// §5.4: evicting a dirty line persists it and leaves a stale queue
// entry that later cleaning/checkpointing skips harmlessly.
func TestWLCacheEvictionLeavesStaleEntry(t *testing.T) {
	c, nvm := testCache(t, 6)
	// Dirty a line, then evict it via two conflicting fills (2-way set).
	now := store(c, 0, 0x1000, 99)
	_, now = load(c, now, 0x1000+4096)
	_, now = load(c, now, 0x1000+8192) // evicts 0x1000 (LRU)
	if _, hit := c.Array().Lookup(0x1000); hit {
		t.Fatal("line still resident; conflict fills should have evicted it")
	}
	if got := nvm.Image().Read(0x1000); got != 99 {
		t.Fatalf("evicted dirty line not persisted: NVM = %d", got)
	}
	// Its queue entry is stale; a checkpoint must skip it.
	before := c.ExtraStats().StaleDQSkips
	_, _ = c.Checkpoint(now)
	if c.ExtraStats().StaleDQSkips == before {
		t.Fatal("stale entry not skipped at checkpoint")
	}
}

func TestWLCacheCheckpointFlushesAllDirty(t *testing.T) {
	c, nvm := testCache(t, 6)
	golden := mem.NewStore()
	now := int64(0)
	vals := map[uint32]uint32{0x1000: 1, 0x2040: 2, 0x3080: 3, 0x40c0: 4}
	for a, v := range vals {
		now = store(c, now, a, v)
		golden.Write(a, v)
	}
	done, eb := c.Checkpoint(now)
	if done <= now {
		t.Fatal("checkpoint took no time")
	}
	if eb.Checkpoint <= 0 {
		t.Fatal("checkpoint consumed no energy")
	}
	if c.DirtyLines() != 0 {
		t.Fatalf("dirty lines after checkpoint = %d", c.DirtyLines())
	}
	if err := c.DurableEqual(golden); err != nil {
		t.Fatalf("durability violated: %v", err)
	}
	_ = nvm
}

func TestWLCacheCheckpointCostBounded(t *testing.T) {
	// The checkpoint can never flush more lines than the DirtyQueue
	// holds, which bounds its energy by the reserve.
	c, _ := testCache(t, 6)
	now := int64(0)
	for i := 0; i < 100; i++ {
		now = store(c, now, uint32(i*64), uint32(i))
	}
	_, eb := c.Checkpoint(now)
	p := mem.DefaultNVMParams()
	jit := DefaultConfig().JIT
	maxE := float64(c.Queue().Cap())*p.LineWriteEnergy + jit.RegCheckpointEnergy
	if eb.Checkpoint > maxE+1e-12 {
		t.Fatalf("checkpoint energy %g exceeds DirtyQueue bound %g", eb.Checkpoint, maxE)
	}
}

func TestWLCacheRestoreIsCold(t *testing.T) {
	c, _ := testCache(t, 6)
	now := store(c, 0, 0x1000, 5)
	done, _ := c.Checkpoint(now)
	done, _ = c.Restore(done)
	if _, hit := c.Array().Lookup(0x1000); hit {
		t.Fatal("volatile cache warm after restore")
	}
	// Value still correct via NVM refill.
	v, _ := load(c, done, 0x1000)
	if v != 5 {
		t.Fatalf("post-restore load = %d, want 5", v)
	}
}

func TestWLCacheReserveTracksMaxline(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Adaptive.Mode = AdaptOff
	var prev float64
	for ml := 1; ml <= 8; ml++ {
		cfg.Maxline = ml
		cfg.Waterline = ml - 1
		if ml == 1 {
			cfg.Waterline = 1 // waterline 0 would mean write-through
		}
		c := New(cfg, nvm)
		r := c.ReserveEnergy()
		if r <= prev {
			t.Fatalf("reserve not increasing with maxline: %g at %d", r, ml)
		}
		prev = r
	}
}

func TestWLCacheStallAccountedWhenQueueSaturated(t *testing.T) {
	// waterline == maxline disables eager cleaning, forcing stalls.
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	cfg := DefaultConfig()
	cfg.Maxline = 2
	cfg.Waterline = 2
	cfg.Adaptive.Mode = AdaptOff
	c := New(cfg, nvm)
	now := int64(0)
	for i := 0; i < 8; i++ {
		now = store(c, now, uint32(0x1000+i*64), 1)
	}
	if c.ExtraStats().Writebacks == 0 {
		t.Fatal("no write-backs despite saturation")
	}
	if c.DirtyLines() > 2 {
		t.Fatal("bound violated under saturation")
	}
}

func TestWLCacheConfigValidation(t *testing.T) {
	nvm := mem.NewNVM(mem.DefaultNVMParams())
	for _, mut := range []func(*Config){
		func(c *Config) { c.DQCap = 0 },
		func(c *Config) { c.Maxline = 0 },
		func(c *Config) { c.Maxline = 9 }, // > DQCap 8
		func(c *Config) { c.Waterline = 7; c.Maxline = 6 },
	} {
		cfg := DefaultConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg, nvm)
		}()
	}
}

func TestWLCacheName(t *testing.T) {
	c, _ := testCache(t, 6)
	if c.Name() != "WL-Cache(dq=FIFO,cache=LRU)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

// Property: under random operation streams the WL-Cache always (a)
// keeps dirty lines <= maxline, (b) returns the architecturally
// correct value for every load, and (c) passes the durability check
// after every checkpoint.
func TestWLCacheQuickProtocol(t *testing.T) {
	f := func(ops []uint16, maxlineSeed uint8) bool {
		maxline := 1 + int(maxlineSeed)%6
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		cfg := DefaultConfig()
		cfg.Maxline = maxline
		cfg.Waterline = maxline - 1
		if cfg.Waterline == 0 {
			cfg.Waterline = 1
		}
		if cfg.Waterline > cfg.Maxline {
			cfg.Waterline = cfg.Maxline
		}
		cfg.Adaptive.Mode = AdaptOff
		c := New(cfg, nvm)
		golden := mem.NewStore()
		now := int64(0)
		for i, op := range ops {
			addr := uint32(op&0x3ff) << 2 // 4 KB footprint
			switch {
			case op%5 == 4:
				// Occasionally checkpoint + restore (power cycle).
				done, _ := c.Checkpoint(now)
				if err := c.DurableEqual(golden); err != nil {
					t.Logf("durability after checkpoint: %v", err)
					return false
				}
				now, _ = c.Restore(done)
			case op%3 == 0:
				v, done, _ := c.Access(now, isa.OpLoad, addr, 0)
				if v != golden.Read(addr) {
					t.Logf("op %d: load %#x = %#x, want %#x", i, addr, v, golden.Read(addr))
					return false
				}
				now = done
			default:
				val := uint32(op) * 2654435761
				golden.Write(addr, val)
				_, done, _ := c.Access(now, isa.OpStore, addr, val)
				now = done
			}
			if c.DirtyLines() > maxline {
				return false
			}
		}
		// Final durability.
		c.Checkpoint(now)
		return c.DurableEqual(golden) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same op stream under DQLRU and cache FIFO policies is
// also value-correct and bounded.
func TestWLCacheQuickProtocolAltPolicies(t *testing.T) {
	f := func(ops []uint16) bool {
		nvm := mem.NewNVM(mem.DefaultNVMParams())
		cfg := DefaultConfig()
		cfg.DQPolicy = DQLRU
		cfg.CachePolicy = 1 // cache.FIFO
		cfg.Maxline = 3
		cfg.Waterline = 2
		cfg.Adaptive.Mode = AdaptOff
		c := New(cfg, nvm)
		golden := mem.NewStore()
		now := int64(0)
		for _, op := range ops {
			addr := uint32(op&0x7ff) << 2
			if op%2 == 0 {
				v, done, _ := c.Access(now, isa.OpLoad, addr, 0)
				if v != golden.Read(addr) {
					return false
				}
				now = done
			} else {
				val := uint32(op) ^ 0xabcd1234
				golden.Write(addr, val)
				_, done, _ := c.Access(now, isa.OpStore, addr, val)
				now = done
			}
			if c.DirtyLines() > 3 {
				return false
			}
		}
		c.Checkpoint(now)
		return c.DurableEqual(golden) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
