// Package designs implements the cache organizations WL-Cache is
// evaluated against (§2.3, Table 1): NoCache (the plain non-volatile
// processor), VCache-WT (volatile write-through), NVCache-WB (fully
// non-volatile write-back), NVSRAM (ideal volatile write-back with a
// non-volatile checkpoint twin), and ReplayCache (volatile write-back
// with compiler-directed region-level persistence).
//
// All designs implement the simulator's Design interface; value
// correctness flows through the same cache/NVM substrates as
// WL-Cache, so the crash-consistency tests exercise every design
// identically.
package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// NoCache is the baseline non-volatile processor (Figure 1(a)): no
// cache at all; every load/store is a synchronous NVM word access.
// JIT checkpointing covers only the register file.
type NoCache struct {
	nvm *mem.NVM
	jit energy.JITCosts
}

// NewNoCache returns the cacheless NVP design.
func NewNoCache(jit energy.JITCosts, nvm *mem.NVM) *NoCache {
	return &NoCache{nvm: nvm, jit: jit}
}

// Name identifies the design.
func (d *NoCache) Name() string { return "NoCache" }

// Access forwards every operation to the NVM.
func (d *NoCache) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *NoCache) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	if op == isa.OpLoad {
		v, done, e := d.nvm.ReadWord(now, addr)
		eb.MemRead += e
		return v, done
	}
	done, e := d.nvm.WriteWord(now, addr, val)
	eb.MemWrite += e
	return val, done
}

// Checkpoint persists the register file to NVFF.
func (d *NoCache) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return now + d.jit.RegCheckpointTime, eb
}

// Restore reloads registers from NVFF.
func (d *NoCache) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	eb.Restore += d.jit.RestoreEnergy
	return now + d.jit.RestoreTime, eb
}

// ReserveEnergy covers registers only.
func (d *NoCache) ReserveEnergy() float64 { return d.jit.BaseReserve }

// LeakPower is zero: no cache array.
func (d *NoCache) LeakPower() float64 { return 0 }

// DurableEqual: NVM is always architecturally current.
func (d *NoCache) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.nvm.Image(), nil)
}
