package designs

import (
	"fmt"

	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/stats"
)

// NVSRAMPractical is the hybrid NVSRAMCache (Xie et al. [72, 73],
// §2.3.3 "practical" variant): each set holds both SRAM ways and
// non-volatile ways. New lines fill into SRAM; dirty SRAM victims
// migrate into an NV way of the same set; dirty NV lines are eagerly
// written back to main NVM at runtime so that clean NV ways are
// always available as JIT-checkpoint targets. At power failure the
// remaining dirty SRAM lines are moved into NV ways; NV contents
// survive, so the cache restores half-warm.
//
// Compared to the ideal variant it needs only a medium reserve (the
// SRAM ways, not the whole cache) and no same-size twin — but data
// living in NV ways is slow and expensive to access, and the eager NV
// write-backs add main-memory traffic, which is why the paper ranks
// its performance "Medium" (Table 1).
type NVSRAMPractical struct {
	geo      cache.Geometry
	sram     cache.Tech
	nv       cache.Tech
	jit      energy.JITCosts
	params   NVSRAMParams
	nvm      *mem.NVM
	sets     []hybridSet
	setShift uint32
	setMask  uint32
	offMask  uint32
	clock    uint64
	extra    stats.DesignExtra
}

// hybridWay is one way of a hybrid set.
type hybridWay struct {
	tag     uint32
	valid   bool
	dirty   bool
	isNV    bool
	lastUse uint64
	data    []uint32
}

type hybridSet struct {
	ways []hybridWay
}

// NewNVSRAMPractical builds the hybrid design; geo.Ways is split
// evenly between SRAM and NV ways (geo.Ways must be even).
func NewNVSRAMPractical(geo cache.Geometry, jit energy.JITCosts, params NVSRAMParams, nvm *mem.NVM) *NVSRAMPractical {
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	if geo.Ways%2 != 0 {
		panic(fmt.Sprintf("designs: NVSRAM(practical) needs an even way count, got %d", geo.Ways))
	}
	d := &NVSRAMPractical{
		geo:    geo,
		sram:   cache.SRAMTech(),
		nv:     cache.NVRAMTech(),
		jit:    jit,
		params: params,
		nvm:    nvm,
	}
	d.sets = make([]hybridSet, geo.Sets())
	for s := range d.sets {
		ways := make([]hybridWay, geo.Ways)
		for w := range ways {
			ways[w].isNV = w >= geo.Ways/2
			ways[w].data = make([]uint32, geo.LineWords())
		}
		d.sets[s].ways = ways
	}
	d.offMask = uint32(geo.LineBytes - 1)
	shift := uint32(0)
	for 1<<shift < geo.LineBytes {
		shift++
	}
	d.setShift = shift
	d.setMask = uint32(geo.Sets() - 1)
	return d
}

// Name identifies the design.
func (d *NVSRAMPractical) Name() string { return "NVSRAM(practical)" }

func (d *NVSRAMPractical) setIndex(addr uint32) uint32 { return (addr >> d.setShift) & d.setMask }

func (d *NVSRAMPractical) tagOf(addr uint32) uint32 {
	bits := uint32(0)
	for m := d.setMask; m != 0; m >>= 1 {
		bits++
	}
	return addr >> d.setShift >> bits
}

func (d *NVSRAMPractical) lineAddr(addr uint32) uint32 { return addr &^ d.offMask }

func (d *NVSRAMPractical) wordIndex(addr uint32) int { return int(addr&d.offMask) >> 2 }

func (d *NVSRAMPractical) addrOf(setIdx uint32, w *hybridWay) uint32 {
	bits := uint32(0)
	for m := d.setMask; m != 0; m >>= 1 {
		bits++
	}
	return w.tag<<(bits+d.setShift) | setIdx<<d.setShift
}

// lookup finds the way holding addr, if any.
func (d *NVSRAMPractical) lookup(addr uint32) *hybridWay {
	set := &d.sets[d.setIndex(addr)]
	tag := d.tagOf(addr)
	for w := range set.ways {
		if set.ways[w].valid && set.ways[w].tag == tag {
			return &set.ways[w]
		}
	}
	return nil
}

// techOf returns the technology parameters for a way.
func (d *NVSRAMPractical) techOf(w *hybridWay) cache.Tech {
	if w.isNV {
		return d.nv
	}
	return d.sram
}

// Access serves one memory operation.
func (d *NVSRAMPractical) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	d.clock++
	w := d.lookup(addr)
	t := now
	if w == nil {
		// Miss: probe both banks, fill into an SRAM way.
		t += d.sram.ProbeLatency
		if d.nv.ProbeLatency > d.sram.ProbeLatency {
			t = now + d.nv.ProbeLatency
		}
		eb.CacheRead += d.sram.ProbeEnergy + d.nv.ProbeEnergy
		w, t = d.fill(t, addr, &eb)
	}
	w.lastUse = d.clock
	tech := d.techOf(w)
	if op == isa.OpLoad {
		eb.CacheRead += tech.ReadEnergy
		return w.data[d.wordIndex(addr)], t + tech.HitLatency, eb
	}
	w.data[d.wordIndex(addr)] = val
	eb.CacheWrite += tech.WriteEnergy
	t += tech.WriteLatency
	if w.isNV {
		// A dirty NV line would block JIT checkpointing; write it back
		// eagerly (asynchronously on the NVM port) and keep it clean.
		setIdx := d.setIndex(addr)
		_, e := d.nvm.WriteLineAsync(t, d.addrOf(setIdx, w), w.data)
		eb.MemWrite += e
		w.dirty = false
		d.extra.Writebacks++
	} else {
		w.dirty = true
	}
	return val, t, eb
}

// fill installs the line for addr into an SRAM way, migrating the
// SRAM victim into an NV way if it is dirty.
func (d *NVSRAMPractical) fill(t int64, addr uint32, eb *energy.Breakdown) (*hybridWay, int64) {
	setIdx := d.setIndex(addr)
	set := &d.sets[setIdx]
	victim := d.pickVictim(set, false)
	if victim.valid && victim.dirty {
		t = d.migrate(t, setIdx, victim, eb)
	}
	lineAddr := d.lineAddr(addr)
	done, e := d.nvm.ReadLine(t, lineAddr, victim.data)
	eb.MemRead += e
	victim.tag = d.tagOf(addr)
	victim.valid = true
	victim.dirty = false
	victim.lastUse = d.clock
	return victim, done
}

// pickVictim chooses the LRU way of the requested bank (invalid ways
// first).
func (d *NVSRAMPractical) pickVictim(set *hybridSet, nvBank bool) *hybridWay {
	var best *hybridWay
	for w := range set.ways {
		way := &set.ways[w]
		if way.isNV != nvBank {
			continue
		}
		if !way.valid {
			return way
		}
		if best == nil || way.lastUse < best.lastUse {
			best = way
		}
	}
	return best
}

// migrate moves a dirty SRAM line into an NV way of the same set and
// immediately persists it (keeping NV ways clean); the NV victim, if
// valid and dirty, is written back first.
func (d *NVSRAMPractical) migrate(t int64, setIdx uint32, src *hybridWay, eb *energy.Breakdown) int64 {
	set := &d.sets[setIdx]
	dst := d.pickVictim(set, true)
	if dst.valid && dst.dirty {
		done, e := d.nvm.WriteLine(t, d.addrOf(setIdx, dst), dst.data)
		eb.MemWrite += e
		t = done
	}
	// On-chip SRAM->NV copy.
	t += d.params.LineCheckpointTime
	eb.CacheWrite += d.params.LineCheckpointEnergy
	copy(dst.data, src.data)
	dst.tag = src.tag
	dst.valid = true
	dst.lastUse = d.clock
	// Persist the migrated line so the NV way stays clean.
	done, e := d.nvm.WriteLine(t, d.addrOf(setIdx, dst), dst.data)
	eb.MemWrite += e
	dst.dirty = false
	src.valid = false
	src.dirty = false
	d.extra.Writebacks++
	return done
}

// Checkpoint migrates every remaining dirty SRAM line into an NV way.
func (d *NVSRAMPractical) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	t := now
	for s := range d.sets {
		set := &d.sets[s]
		for w := range set.ways {
			way := &set.ways[w]
			if way.valid && way.dirty && !way.isNV {
				t = d.checkpointMigrate(t, uint32(s), way, &eb)
				d.extra.CheckpointLines++
			}
		}
	}
	t += d.jit.RegCheckpointTime
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return t, eb
}

// checkpointMigrate copies a dirty SRAM line into a clean NV way
// under checkpoint power (no time for a main-NVM write: the NV copy
// itself is durable, so the NV line stays dirty with respect to NVM).
func (d *NVSRAMPractical) checkpointMigrate(t int64, setIdx uint32, src *hybridWay, eb *energy.Breakdown) int64 {
	set := &d.sets[setIdx]
	dst := d.pickVictim(set, true)
	if dst.valid && dst.dirty {
		// The runtime policy keeps NV lines clean, so this only
		// happens if a previous checkpoint parked a line here; push it
		// out to NVM first (covered by the reserve).
		done, e := d.nvm.WriteLine(t, d.addrOf(setIdx, dst), dst.data)
		eb.Checkpoint += e
		t = done
	}
	t += d.params.LineCheckpointTime
	eb.Checkpoint += d.params.LineCheckpointEnergy
	copy(dst.data, src.data)
	dst.tag = src.tag
	dst.valid = true
	dst.dirty = true // differs from main NVM; durable via the NV cell
	dst.lastUse = d.clock
	src.valid = false
	src.dirty = false
	return t
}

// Restore keeps NV ways (non-volatile), drops SRAM ways, and writes
// back any dirty NV lines parked by the checkpoint to re-establish
// clean-NV headroom.
func (d *NVSRAMPractical) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	t := now
	for s := range d.sets {
		set := &d.sets[s]
		for w := range set.ways {
			way := &set.ways[w]
			if !way.isNV {
				way.valid = false
				way.dirty = false
				continue
			}
			if way.valid && way.dirty {
				done, e := d.nvm.WriteLine(t, d.addrOf(uint32(s), way), way.data)
				eb.Restore += e
				way.dirty = false
				t = done
			}
		}
	}
	t += d.jit.RestoreTime
	eb.Restore += d.jit.RestoreEnergy
	return t, eb
}

// ReserveEnergy covers the SRAM half of the cache (medium, Table 1):
// on-chip migrations plus the worst-case NV push-outs.
func (d *NVSRAMPractical) ReserveEnergy() float64 {
	sramLines := float64(d.geo.Lines() / 2)
	return d.jit.BaseReserve + sramLines*d.params.LineReserve
}

// LeakPower is half SRAM, half NV-array leakage.
func (d *NVSRAMPractical) LeakPower() float64 {
	return d.sram.Leakage/2 + d.nv.Leakage/2
}

// ExtraStats returns migration/checkpoint counters.
func (d *NVSRAMPractical) ExtraStats() stats.DesignExtra { return d.extra }

// DurableEqual overlays the non-volatile ways onto the NVM image (the
// SRAM ways are volatile and must not be needed).
func (d *NVSRAMPractical) DurableEqual(golden *mem.Store) error {
	view := d.nvm.Image().Clone()
	for s := range d.sets {
		set := &d.sets[s]
		for w := range set.ways {
			way := &set.ways[w]
			if way.valid && way.isNV {
				view.WriteLine(d.addrOf(uint32(s), way), way.data)
			}
		}
	}
	if diff := golden.FirstDiff(view); diff != "" {
		return fmt.Errorf("durable state diverged from architectural state: %s", diff)
	}
	return nil
}
