package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/stats"
)

// EagerWB models the eager write-back cache of Lee et al. [32]
// (§7, Table 3): a volatile write-back cache that opportunistically
// flushes dirty lines whenever the memory bus is idle. The paper's
// point is that eager write-back alone does not make a cache safe for
// energy harvesting: the dirty population is *opportunistically*
// small but never bounded, so the JIT reserve must still cover the
// entire cache — exactly NVSRAM's energy-buffer problem, but with the
// checkpoint going to slow main NVM instead of an adjacent twin.
// WL-Cache's maxline turns the same eager-cleaning idea into a hard
// bound, which is what shrinks the reserve.
type EagerWB struct {
	wb  wbCache
	jit energy.JITCosts
	// lineReserve is the worst-case per-line checkpoint energy (full
	// NVM line write, as for WL-Cache).
	lineReserve float64
	// idleWindow is how long the NVM port must be idle before an
	// opportunistic flush is issued.
	idleWindow int64
	extra      stats.DesignExtra
}

// NewEagerWB builds the eager write-back design.
func NewEagerWB(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) *EagerWB {
	return &EagerWB{
		wb:          newWBCache(geo, cache.SRAMTech(), pol, nvm),
		jit:         jit,
		lineReserve: 75e-9,
		idleWindow:  200_000, // 200 ns of bus idleness
	}
}

// Name identifies the design.
func (d *EagerWB) Name() string { return "EagerWB" }

// Array exposes the cache array for tests.
func (d *EagerWB) Array() *cache.Array { return d.wb.arr }

// Access performs the write-back access and, when the NVM port has
// been idle for a while, opportunistically flushes one dirty line.
func (d *EagerWB) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *EagerWB) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	// Bus idleness is judged before this access touches the port.
	idle := now-d.wb.nvm.BusyUntil() >= d.idleWindow
	v, done := d.wb.access(now, op, addr, val, eb)
	if idle {
		d.flushOne(done, eb)
	}
	return v, done
}

// flushOne writes back the first dirty line found (bus-idle flush).
func (d *EagerWB) flushOne(now int64, eb *energy.Breakdown) {
	var target *cache.Line
	var targetAddr uint32
	d.wb.arr.ForEachLine(func(addr uint32, ln *cache.Line) {
		if target == nil && ln.Dirty {
			target, targetAddr = ln, addr
		}
	})
	if target == nil {
		return
	}
	_, e := d.wb.nvm.WriteLineAsync(now, targetAddr, target.Data)
	eb.MemWrite += e
	target.Dirty = false
	d.extra.Writebacks++
}

// Checkpoint flushes every remaining dirty line to main NVM — there
// is no bound, so this can be the whole cache.
func (d *EagerWB) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	t := now
	d.wb.arr.ForEachLine(func(addr uint32, ln *cache.Line) {
		if ln.Dirty {
			done, e := d.wb.nvm.WriteLine(t, addr, ln.Data)
			eb.Checkpoint += e
			t = done
			ln.Dirty = false
			d.extra.CheckpointLines++
		}
	})
	t += d.jit.RegCheckpointTime
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return t, eb
}

// Restore boots cold.
func (d *EagerWB) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	d.wb.arr.InvalidateAll()
	eb.Restore += d.jit.RestoreEnergy
	return now + d.jit.RestoreTime, eb
}

// ReserveEnergy must cover every line: eager flushing gives no bound
// (the design's fatal flaw for energy harvesting, §7).
func (d *EagerWB) ReserveEnergy() float64 {
	return d.jit.BaseReserve + float64(d.wb.arr.Geometry().Lines())*d.lineReserve
}

// LeakPower is the SRAM array leakage.
func (d *EagerWB) LeakPower() float64 { return d.wb.tech.Leakage }

// ExtraStats returns flush counters.
func (d *EagerWB) ExtraStats() stats.DesignExtra { return d.extra }

// DurableEqual: after a checkpoint the NVM image alone must match.
func (d *EagerWB) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.wb.nvm.Image(), nil)
}
