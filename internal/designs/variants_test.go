package designs

import (
	"testing"

	"wlcache/internal/cache"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// The NVSRAM full/practical variants and the §3.3 write-buffer design
// join the shared correctness matrix.
func variantDUTs() []dut {
	geo := cache.DefaultGeometry()
	return []dut{
		{"nvsram-full", func(n *mem.NVM) designIface {
			return NewNVSRAMFull(geo, cache.LRU, jit(), DefaultNVSRAMParams(), n)
		}, true},
		{"nvsram-practical", func(n *mem.NVM) designIface {
			return NewNVSRAMPractical(geo, jit(), DefaultNVSRAMParams(), n)
		}, true},
		{"wt-buffer", func(n *mem.NVM) designIface {
			return NewWTBuffer(geo, cache.SRAMTech(), cache.LRU, jit(), DefaultWTBufferParams(), n)
		}, true},
		{"eager-wb", func(n *mem.NVM) designIface {
			return NewEagerWB(geo, cache.LRU, jit(), n)
		}, true},
	}
}

// TestVariantsValueCorrectness drives the same op stream + power
// cycles through the variant designs.
func TestVariantsValueCorrectness(t *testing.T) {
	for _, d := range variantDUTs() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			nvm := newNVM()
			des := d.build(nvm)
			golden := mem.NewStore()
			now := int64(0)
			rng := uint32(999)
			for i := 0; i < 4000; i++ {
				rng = rng*1664525 + 1013904223
				addr := (rng % 4096) &^ 3
				switch {
				case i%89 == 88:
					done, _ := des.Checkpoint(now)
					if err := des.DurableEqual(golden); err != nil {
						t.Fatalf("durability after checkpoint %d: %v", i, err)
					}
					now, _ = des.Restore(done)
				case rng%3 != 0:
					v, done, _ := des.Access(now, isa.OpLoad, addr, 0)
					if v != golden.Read(addr) {
						t.Fatalf("op %d: load %#x = %#x, want %#x", i, addr, v, golden.Read(addr))
					}
					now = done
				default:
					val := rng ^ 0x77777777
					golden.Write(addr, val)
					_, done, _ := des.Access(now, isa.OpStore, addr, val)
					now = done
				}
			}
			des.Checkpoint(now)
			if err := des.DurableEqual(golden); err != nil {
				t.Fatalf("final durability: %v", err)
			}
		})
	}
}

func TestNVSRAMFullCheckpointsWholeCache(t *testing.T) {
	nvm := newNVM()
	geo := cache.DefaultGeometry()
	d := NewNVSRAMFull(geo, cache.LRU, jit(), DefaultNVSRAMParams(), nvm)
	// A single dirty line still costs a full-cache checkpoint.
	_, now, _ := d.Access(0, isa.OpStore, 0x100, 1)
	done, eb := d.Checkpoint(now)
	wantE := float64(geo.Lines())*DefaultNVSRAMParams().LineCheckpointEnergy + jit().RegCheckpointEnergy
	if eb.Checkpoint != wantE {
		t.Fatalf("checkpoint energy %g, want whole-cache %g", eb.Checkpoint, wantE)
	}
	wantT := now + int64(geo.Lines())*DefaultNVSRAMParams().LineCheckpointTime + jit().RegCheckpointTime
	if done != wantT {
		t.Fatalf("checkpoint time %d, want %d", done, wantT)
	}
	// Same reserve as the ideal variant.
	ideal := NewNVSRAM(geo, cache.LRU, jit(), DefaultNVSRAMParams(), nvm)
	if d.ReserveEnergy() != ideal.ReserveEnergy() {
		t.Fatal("full and ideal variants must reserve the same energy")
	}
}

func TestNVSRAMPracticalKeepsNVWaysClean(t *testing.T) {
	nvm := newNVM()
	d := NewNVSRAMPractical(cache.DefaultGeometry(), jit(), DefaultNVSRAMParams(), nvm)
	now := int64(0)
	// Fill a set's SRAM way and force migrations via conflicting
	// stores (2-way: 1 SRAM + 1 NV way; stride 4 KB aliases the set).
	for i := 0; i < 4; i++ {
		_, now, _ = d.Access(now, isa.OpStore, uint32(0x1000+i*8192), uint32(i+1))
	}
	if d.ExtraStats().Writebacks == 0 {
		t.Fatal("no migrations / eager write-backs happened")
	}
	// Every value must still be architecturally reachable.
	for i := 0; i < 4; i++ {
		v, done, _ := d.Access(now, isa.OpLoad, uint32(0x1000+i*8192), 0)
		if v != uint32(i+1) {
			t.Fatalf("value %d lost across migration: got %d", i+1, v)
		}
		now = done
	}
}

func TestNVSRAMPracticalMediumReserve(t *testing.T) {
	nvm := newNVM()
	geo := cache.DefaultGeometry()
	pract := NewNVSRAMPractical(geo, jit(), DefaultNVSRAMParams(), nvm)
	ideal := NewNVSRAM(geo, cache.LRU, jit(), DefaultNVSRAMParams(), nvm)
	wt := NewVCacheWT(geo, cache.SRAMTech(), cache.LRU, jit(), nvm)
	if !(pract.ReserveEnergy() < ideal.ReserveEnergy() && pract.ReserveEnergy() > wt.ReserveEnergy()) {
		t.Fatalf("practical reserve %g not between WT %g and ideal %g",
			pract.ReserveEnergy(), wt.ReserveEnergy(), ideal.ReserveEnergy())
	}
}

func TestNVSRAMPracticalHalfWarmRestore(t *testing.T) {
	nvm := newNVM()
	d := NewNVSRAMPractical(cache.DefaultGeometry(), jit(), DefaultNVSRAMParams(), nvm)
	// Park a dirty line via checkpoint, then restore.
	_, now, _ := d.Access(0, isa.OpStore, 0x2000, 42)
	done, _ := d.Checkpoint(now)
	done, _ = d.Restore(done)
	// The line must be servable (it lives in an NV way now) with the
	// right value.
	v, _, _ := d.Access(done, isa.OpLoad, 0x2000, 0)
	if v != 42 {
		t.Fatalf("post-restore load = %d, want 42", v)
	}
}

func TestNVSRAMPracticalRejectsOddWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd way count accepted")
		}
	}()
	NewNVSRAMPractical(cache.Geometry{SizeBytes: 8192, Ways: 1, LineBytes: 64}, jit(), DefaultNVSRAMParams(), newNVM())
}

func TestWTBufferForwardsFromBuffer(t *testing.T) {
	nvm := newNVM()
	d := NewWTBuffer(cache.DefaultGeometry(), cache.SRAMTech(), cache.LRU, jit(), DefaultWTBufferParams(), nvm)
	// Store then load immediately: the NVM write is still in flight,
	// so the value must be forwarded from the CAM.
	_, now, _ := d.Access(0, isa.OpStore, 0x3000, 5)
	v, _, _ := d.Access(now, isa.OpLoad, 0x3000, 0)
	if v != 5 {
		t.Fatalf("CAM forwarding failed: got %d", v)
	}
}

func TestWTBufferStallsWhenFull(t *testing.T) {
	nvm := newNVM()
	p := DefaultWTBufferParams()
	d := NewWTBuffer(cache.DefaultGeometry(), cache.SRAMTech(), cache.LRU, jit(), p, nvm)
	now := int64(0)
	for i := 0; i <= p.Slots; i++ {
		_, now, _ = d.Access(now, isa.OpStore, uint32(0x100+i*4), uint32(i))
	}
	if d.ExtraStats().Stalls == 0 {
		t.Fatal("buffer overflow did not stall")
	}
}

func TestWTBufferMissFillMergesBufferedStores(t *testing.T) {
	nvm := newNVM()
	d := NewWTBuffer(cache.DefaultGeometry(), cache.SRAMTech(), cache.LRU, jit(), DefaultWTBufferParams(), nvm)
	// Store to a line that is NOT cached, then immediately load a
	// *different* word of the same line: the fill must merge the
	// buffered store so a subsequent load of the stored word (now a
	// cache hit, no CAM match needed once drained) sees the value.
	_, now, _ := d.Access(0, isa.OpStore, 0x4000, 9)
	_, now, _ = d.Access(now, isa.OpLoad, 0x4004, 0) // fills the line
	now += 1_000_000                                 // let the buffer drain
	v, _, _ := d.Access(now, isa.OpLoad, 0x4000, 0)
	if v != 9 {
		t.Fatalf("fill did not merge the in-flight store: got %d", v)
	}
}

func TestEagerWBUnboundedReserve(t *testing.T) {
	nvm := newNVM()
	geo := cache.DefaultGeometry()
	eager := NewEagerWB(geo, cache.LRU, jit(), nvm)
	// The §7 point: no dirty bound means a whole-cache reserve, far
	// above WL-Cache's DirtyQueue-sized one (checked in core tests)
	// and on par with per-line NVM flush costs.
	if eager.ReserveEnergy() < float64(geo.Lines())*50e-9 {
		t.Fatalf("EagerWB reserve %g suspiciously small for %d lines", eager.ReserveEnergy(), geo.Lines())
	}
}

func TestEagerWBOpportunisticFlush(t *testing.T) {
	nvm := newNVM()
	d := NewEagerWB(cache.DefaultGeometry(), cache.LRU, jit(), nvm)
	_, now, _ := d.Access(0, isa.OpStore, 0x100, 1)
	// A long idle gap, then another access: the dirty line should have
	// been flushed opportunistically.
	now += 10_000_000
	_, _, _ = d.Access(now, isa.OpLoad, 0x2000, 0)
	if d.ExtraStats().Writebacks == 0 {
		t.Fatal("no opportunistic flush despite an idle bus")
	}
	if nvm.Image().Read(0x100) != 1 {
		t.Fatal("flush did not persist the value")
	}
}

func TestWTBufferReserveScalesWithSlots(t *testing.T) {
	nvm := newNVM()
	small := DefaultWTBufferParams()
	small.Slots = 4
	big := DefaultWTBufferParams()
	big.Slots = 16
	ds := NewWTBuffer(cache.DefaultGeometry(), cache.SRAMTech(), cache.LRU, jit(), small, nvm)
	db := NewWTBuffer(cache.DefaultGeometry(), cache.SRAMTech(), cache.LRU, jit(), big, nvm)
	if ds.ReserveEnergy() >= db.ReserveEnergy() {
		t.Fatal("reserve must grow with buffer depth (§3.3 issue 2)")
	}
}
