package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/obs"
	"wlcache/internal/stats"
)

// WTBufferParams sizes the §3.3 alternative design.
type WTBufferParams struct {
	// Slots is the write-buffer depth (the paper's discussion pits an
	// 8-slot buffer against the 8-entry DirtyQueue).
	Slots int
	// CAMSearchLatency/Energy are paid by EVERY load: the buffer must
	// be searched before memory can answer (§3.3 issue 3: "the
	// write-back buffer must be consulted before accessing memory").
	CAMSearchLatency int64
	CAMSearchEnergy  float64
	// WordReserve is the worst-case JIT energy to flush one buffered
	// word at power failure (§3.3 issue 2).
	WordReserve float64
	// Leak is the CAM's standby power (§3.3 issue 1: CAM cost).
	Leak float64
}

// DefaultWTBufferParams returns an 8-slot CAM write buffer.
func DefaultWTBufferParams() WTBufferParams {
	return WTBufferParams{
		Slots:            8,
		CAMSearchLatency: 300, // 0.3 ns parallel match
		CAMSearchEnergy:  8e-12,
		WordReserve:      40e-9,
		Leak:             0.25e-3,
	}
}

// wtBufEntry is one buffered store.
type wtBufEntry struct {
	addr uint32
	val  uint32
	done int64 // when the NVM write completes and frees the slot
}

// WTBuffer is the alternative design the paper's §3.3 discussion
// rejects: a write-through volatile cache whose stores go through a
// small write buffer that drains to NVM asynchronously. It behaves a
// lot like WL-Cache — bounded volatile state, asynchronous persists —
// but (1) the buffer needs a CAM that every load must search, adding
// to the load critical path; (2) each slot holds one *word*, so the
// buffer coalesces nothing; and (3) the reserve must cover the whole
// buffer. Implemented so the §3.3 claim can be measured instead of
// taken on faith (experiment id "sec33").
type WTBuffer struct {
	arr     *cache.Array
	tech    cache.Tech
	nvm     *mem.NVM
	jit     energy.JITCosts
	params  WTBufferParams
	replE   float64 // tech.ReplacementEnergy[policy], hoisted off the access path
	buf     []wtBufEntry
	lineBuf []uint32
	extra   stats.DesignExtra
	rec     *obs.Recorder
}

// BindObserver wires the recorder so buffer-full stalls land on the
// event timeline (sim.ObserverBinder).
func (d *WTBuffer) BindObserver(r *obs.Recorder) { d.rec = r }

// NewWTBuffer builds the write-through + write-buffer design.
func NewWTBuffer(geo cache.Geometry, tech cache.Tech, pol cache.ReplacementPolicy, jit energy.JITCosts, params WTBufferParams, nvm *mem.NVM) *WTBuffer {
	if params.Slots <= 0 {
		params.Slots = 8
	}
	return &WTBuffer{
		arr:     cache.NewArray(geo, pol),
		tech:    tech,
		nvm:     nvm,
		jit:     jit,
		params:  params,
		replE:   tech.ReplacementEnergy[pol],
		lineBuf: make([]uint32, geo.LineWords()),
	}
}

// Name identifies the design.
func (d *WTBuffer) Name() string { return "VCache-WT+buf" }

// drain removes completed buffer entries.
func (d *WTBuffer) drain(now int64) {
	keep := d.buf[:0]
	for _, e := range d.buf {
		if e.done > now {
			keep = append(keep, e)
		}
	}
	d.buf = keep
}

// Access serves loads from cache (after the mandatory CAM search) and
// queues stores into the buffer.
func (d *WTBuffer) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *WTBuffer) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	d.drain(now)
	eb.CacheRead += d.replE

	if op == isa.OpLoad {
		// Every load searches the CAM first (§3.3): the youngest
		// matching entry forwards its value.
		t := now + d.params.CAMSearchLatency
		eb.CacheRead += d.params.CAMSearchEnergy
		for i := len(d.buf) - 1; i >= 0; i-- {
			if d.buf[i].addr == addr {
				return d.buf[i].val, t + d.tech.HitLatency
			}
		}
		ln, hit := d.arr.Lookup(addr)
		if hit {
			d.arr.Touch(ln)
			eb.CacheRead += d.tech.ReadEnergy
			return ln.Data[d.arr.WordIndex(addr)], t + d.tech.HitLatency
		}
		t += d.tech.ProbeLatency
		eb.CacheRead += d.tech.ProbeEnergy
		lineAddr := d.arr.LineAddr(addr)
		victim := d.arr.Victim(lineAddr)
		done, e := d.nvm.ReadLine(t, lineAddr, d.lineBuf)
		eb.MemRead += e
		// Merge any buffered (not yet drained) stores into the fill so
		// the cached copy is coherent with program order.
		for _, be := range d.buf {
			if d.arr.LineAddr(be.addr) == lineAddr {
				d.lineBuf[d.arr.WordIndex(be.addr)] = be.val
			}
		}
		d.arr.Fill(victim, lineAddr, d.lineBuf)
		ln, _ = d.arr.Lookup(lineAddr)
		return ln.Data[d.arr.WordIndex(addr)], done
	}

	// Store: update the cached copy on a hit, then take a buffer slot,
	// stalling when the buffer is full.
	t := now
	if ln, hit := d.arr.Lookup(addr); hit {
		ln.Data[d.arr.WordIndex(addr)] = val
		d.arr.Touch(ln)
		eb.CacheWrite += d.tech.WriteEnergy
		t += d.tech.WriteLatency
	} else {
		eb.CacheWrite += d.tech.ProbeEnergy
		t += d.tech.ProbeLatency
	}
	if len(d.buf) >= d.params.Slots {
		// Wait for the oldest in-flight write to finish.
		oldest := d.buf[0].done
		if oldest > t {
			d.extra.Stalls++
			d.extra.StallTime += oldest - t
			d.rec.StoreStall(t, oldest, d.arr.LineAddr(addr))
			t = oldest
		}
		d.drain(t)
	}
	done, e := d.nvm.WriteWordAsync(t, addr, val)
	eb.MemWrite += e
	d.buf = append(d.buf, wtBufEntry{addr: addr, val: val, done: done})
	d.extra.Writebacks++
	return val, t
}

// Checkpoint flushes the buffer (its writes were already issued to
// the port; the reserve guarantees they complete) plus registers.
func (d *WTBuffer) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	t := now
	if n := len(d.buf); n > 0 {
		last := d.buf[n-1].done
		if last > t {
			t = last
		}
		d.buf = d.buf[:0]
	}
	t += d.jit.RegCheckpointTime
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return t, eb
}

// Restore boots with a cold cache and an empty buffer.
func (d *WTBuffer) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	d.arr.InvalidateAll()
	d.buf = d.buf[:0]
	eb.Restore += d.jit.RestoreEnergy
	return now + d.jit.RestoreTime, eb
}

// ReserveEnergy must cover flushing every buffer slot (§3.3 issue 2).
func (d *WTBuffer) ReserveEnergy() float64 {
	return d.jit.BaseReserve + float64(d.params.Slots)*d.params.WordReserve
}

// LeakPower is the SRAM array plus the CAM.
func (d *WTBuffer) LeakPower() float64 { return d.tech.Leakage + d.params.Leak }

// ExtraStats returns buffer counters.
func (d *WTBuffer) ExtraStats() stats.DesignExtra { return d.extra }

// DurableEqual: writes reach the NVM image at issue, so the image
// alone must match after the checkpoint drained the buffer.
func (d *WTBuffer) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.nvm.Image(), nil)
}
