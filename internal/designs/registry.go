package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// Design mirrors the simulator's Design contract structurally, so this
// package can enumerate its implementations without importing
// internal/sim (which package sim's own tests import alongside this
// one). Any value satisfying this interface satisfies sim.Design.
type Design interface {
	Name() string
	Access(now int64, op isa.Op, addr uint32, val uint32) (v uint32, done int64, eb energy.Breakdown)
	Checkpoint(now int64) (done int64, eb energy.Breakdown)
	Restore(now int64) (done int64, eb energy.Breakdown)
	ReserveEnergy() float64
	LeakPower() float64
	DurableEqual(golden *mem.Store) error
}

// Builder constructs one baseline design over the given NVM. Designs
// with fixed internals (NoCache has no array, NVSRAMPractical fixes
// its policy) ignore the parameters they do not take.
type Builder func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design

// builders registers every baseline of the evaluation (§2.3, §3.3,
// §6.1, §7) plus the deliberately unsafe negative control ("broken"),
// keyed by the same kind names internal/expt uses. WL-Cache variants
// live in internal/core and are wired separately by expt.
var builders = map[string]Builder{
	"nocache": func(_ cache.Geometry, _ cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewNoCache(jit, nvm)
	},
	"vcache-wt": func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewVCacheWT(geo, cache.SRAMTech(), pol, jit, nvm)
	},
	"wt-buffer": func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewWTBuffer(geo, cache.SRAMTech(), pol, jit, DefaultWTBufferParams(), nvm)
	},
	"nvcache-wb": func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewNVCacheWB(geo, pol, jit, nvm)
	},
	"nvsram": func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewNVSRAM(geo, pol, jit, DefaultNVSRAMParams(), nvm)
	},
	"nvsram-full": func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewNVSRAMFull(geo, pol, jit, DefaultNVSRAMParams(), nvm)
	},
	"nvsram-practical": func(geo cache.Geometry, _ cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewNVSRAMPractical(geo, jit, DefaultNVSRAMParams(), nvm)
	},
	"eager-wb": func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewEagerWB(geo, pol, jit, nvm)
	},
	"replaycache": func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewReplayCache(geo, pol, jit, DefaultReplayParams(), nvm)
	},
	"broken": func(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) Design {
		return NewBrokenVolatileWB(geo, pol, jit, nvm)
	},
}

// names lists the registry in Table 1 / §6.1 presentation order, with
// the negative control last.
var names = []string{
	"nocache", "vcache-wt", "wt-buffer", "nvcache-wb",
	"nvsram", "nvsram-full", "nvsram-practical",
	"eager-wb", "replaycache", "broken",
}

// Names returns every registered baseline kind in presentation order.
func Names() []string { return append([]string(nil), names...) }

// Build constructs the named baseline over nvm, reporting ok=false for
// kinds this registry does not know (the WL-Cache kinds).
func Build(kind string, geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) (Design, bool) {
	b, ok := builders[kind]
	if !ok {
		return nil, false
	}
	return b(geo, pol, jit, nvm), true
}
