package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// BrokenVolatileWB is the strawman the paper's introduction warns
// about: a plain volatile write-back SRAM cache on an energy
// harvesting system with no cache checkpointing at all. It is fast
// and cheap — and loses every dirty line at power failure, silently
// corrupting memory. It exists as a negative control: tests assert
// that its durability check fails and that workloads running on it
// under power failures produce wrong results, motivating WL-Cache.
type BrokenVolatileWB struct {
	wb  wbCache
	jit energy.JITCosts
}

// NewBrokenVolatileWB builds the unsafe design.
func NewBrokenVolatileWB(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) *BrokenVolatileWB {
	return &BrokenVolatileWB{wb: newWBCache(geo, cache.SRAMTech(), pol, nvm), jit: jit}
}

// Name identifies the design.
func (d *BrokenVolatileWB) Name() string { return "VolatileWB(broken)" }

// Array exposes the cache array for tests.
func (d *BrokenVolatileWB) Array() *cache.Array { return d.wb.arr }

// Access is a conventional write-back access at SRAM speed.
func (d *BrokenVolatileWB) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *BrokenVolatileWB) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	return d.wb.access(now, op, addr, val, eb)
}

// Checkpoint saves registers only — dirty cache lines are abandoned.
func (d *BrokenVolatileWB) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return now + d.jit.RegCheckpointTime, eb
}

// Restore boots with a cold cache; whatever was dirty is gone.
func (d *BrokenVolatileWB) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	d.wb.arr.InvalidateAll()
	eb.Restore += d.jit.RestoreEnergy
	return now + d.jit.RestoreTime, eb
}

// ReserveEnergy covers registers only.
func (d *BrokenVolatileWB) ReserveEnergy() float64 { return d.jit.BaseReserve }

// LeakPower is the SRAM leakage.
func (d *BrokenVolatileWB) LeakPower() float64 { return d.wb.tech.Leakage }

// DurableEqual reports the corruption: after an outage the NVM image
// is missing every dirty line the cache dropped.
func (d *BrokenVolatileWB) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.wb.nvm.Image(), nil)
}
