package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// VCacheWT is the volatile write-through SRAM cache (Figure 1(b),
// §2.3.1): loads enjoy SRAM hits, but every store synchronously
// updates NVM (no store buffer), so stores pay the NVM word-write
// latency. Crash consistency is free — the NVM is always current —
// and only registers need JIT checkpointing. The cache comes up cold
// after every outage.
type VCacheWT struct {
	arr     *cache.Array
	tech    cache.Tech
	nvm     *mem.NVM
	jit     energy.JITCosts
	replE   float64 // tech.ReplacementEnergy[policy], hoisted off the access path
	lineBuf []uint32
}

// NewVCacheWT builds the write-through design (no-write-allocate).
func NewVCacheWT(geo cache.Geometry, tech cache.Tech, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) *VCacheWT {
	return &VCacheWT{
		arr:     cache.NewArray(geo, pol),
		tech:    tech,
		nvm:     nvm,
		jit:     jit,
		replE:   tech.ReplacementEnergy[pol],
		lineBuf: make([]uint32, geo.LineWords()),
	}
}

// Name identifies the design.
func (d *VCacheWT) Name() string { return "VCache-WT" }

// Array exposes the cache array for tests.
func (d *VCacheWT) Array() *cache.Array { return d.arr }

// Access serves loads from the cache and writes stores through to NVM.
func (d *VCacheWT) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *VCacheWT) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	eb.CacheRead += d.replE
	lineAddr := d.arr.LineAddr(addr)
	ln, hit := d.arr.Lookup(addr)

	if op == isa.OpLoad {
		if hit {
			d.arr.Touch(ln)
			eb.CacheRead += d.tech.ReadEnergy
			return ln.Data[d.arr.WordIndex(addr)], now + d.tech.HitLatency
		}
		t := now + d.tech.ProbeLatency
		eb.CacheRead += d.tech.ProbeEnergy
		victim := d.arr.Victim(lineAddr)
		done, e := d.nvm.ReadLine(t, lineAddr, d.lineBuf)
		eb.MemRead += e
		d.arr.Fill(victim, lineAddr, d.lineBuf)
		ln, _ = d.arr.Lookup(lineAddr)
		return ln.Data[d.arr.WordIndex(addr)], done
	}

	// Store: update the cached copy on a hit (no-write-allocate on a
	// miss) and always write NVM synchronously.
	t := now
	if hit {
		ln.Data[d.arr.WordIndex(addr)] = val
		d.arr.Touch(ln)
		eb.CacheWrite += d.tech.WriteEnergy
		t += d.tech.WriteLatency
	} else {
		eb.CacheWrite += d.tech.ProbeEnergy
		t += d.tech.ProbeLatency
	}
	done, e := d.nvm.WriteWord(t, addr, val)
	eb.MemWrite += e
	return val, done
}

// Checkpoint persists registers only: the write-through policy keeps
// NVM current at all times.
func (d *VCacheWT) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return now + d.jit.RegCheckpointTime, eb
}

// Restore boots with a cold cache.
func (d *VCacheWT) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	d.arr.InvalidateAll()
	eb.Restore += d.jit.RestoreEnergy
	return now + d.jit.RestoreTime, eb
}

// ReserveEnergy covers registers only.
func (d *VCacheWT) ReserveEnergy() float64 { return d.jit.BaseReserve }

// LeakPower is the SRAM array leakage.
func (d *VCacheWT) LeakPower() float64 { return d.tech.Leakage }

// DurableEqual: the NVM image alone must match.
func (d *VCacheWT) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.nvm.Image(), nil)
}
