package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// NVCacheWB is the fully non-volatile write-back cache (Figure 1(c),
// §2.3.2): the array itself is ReRAM, so its contents — including
// dirty lines — survive power failure and no cache checkpointing is
// needed. The price is slow, energy-hungry accesses (especially
// writes) and high leakage at runtime.
type NVCacheWB struct {
	wb  wbCache
	jit energy.JITCosts
}

// NewNVCacheWB builds the non-volatile write-back design.
func NewNVCacheWB(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, nvm *mem.NVM) *NVCacheWB {
	return &NVCacheWB{wb: newWBCache(geo, cache.NVRAMTech(), pol, nvm), jit: jit}
}

// Name identifies the design.
func (d *NVCacheWB) Name() string { return "NVCache-WB" }

// Array exposes the cache array for tests.
func (d *NVCacheWB) Array() *cache.Array { return d.wb.arr }

// Access is a conventional write-back access at NVRAM speed.
func (d *NVCacheWB) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *NVCacheWB) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	return d.wb.access(now, op, addr, val, eb)
}

// Checkpoint persists registers only: the cache is non-volatile.
func (d *NVCacheWB) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return now + d.jit.RegCheckpointTime, eb
}

// Restore boots with a warm cache: contents survived.
func (d *NVCacheWB) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	eb.Restore += d.jit.RestoreEnergy
	return now + d.jit.RestoreTime, eb
}

// ReserveEnergy covers registers only.
func (d *NVCacheWB) ReserveEnergy() float64 { return d.jit.BaseReserve }

// LeakPower is the NV array leakage (§6.2 puts WL-Cache's DirtyQueue
// at 9% of this).
func (d *NVCacheWB) LeakPower() float64 { return d.wb.tech.Leakage }

// DurableEqual overlays the (non-volatile) array onto the NVM image.
func (d *NVCacheWB) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.wb.nvm.Image(), d.wb.arr)
}
