package designs

import (
	"testing"
	"testing/quick"

	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

func newNVM() *mem.NVM { return mem.NewNVM(mem.DefaultNVMParams()) }

func jit() energy.JITCosts { return energy.DefaultJITCosts() }

// design under test plus the NVM it was built over.
type dut struct {
	name    string
	build   func(nvm *mem.NVM) designIface
	durable bool // whether the design is crash consistent
}

func allDUTs() []dut {
	geo := cache.DefaultGeometry()
	return []dut{
		{"nocache", func(n *mem.NVM) designIface { return NewNoCache(jit(), n) }, true},
		{"vcache-wt", func(n *mem.NVM) designIface { return NewVCacheWT(geo, cache.SRAMTech(), cache.LRU, jit(), n) }, true},
		{"nvcache-wb", func(n *mem.NVM) designIface { return NewNVCacheWB(geo, cache.LRU, jit(), n) }, true},
		{"nvsram", func(n *mem.NVM) designIface { return NewNVSRAM(geo, cache.LRU, jit(), DefaultNVSRAMParams(), n) }, true},
		{"replay", func(n *mem.NVM) designIface { return NewReplayCache(geo, cache.LRU, jit(), DefaultReplayParams(), n) }, true},
		{"broken", func(n *mem.NVM) designIface { return NewBrokenVolatileWB(geo, cache.LRU, jit(), n) }, false},
	}
}

type designIface interface {
	Access(int64, isa.Op, uint32, uint32) (uint32, int64, energy.Breakdown)
	Checkpoint(int64) (int64, energy.Breakdown)
	Restore(int64) (int64, energy.Breakdown)
	ReserveEnergy() float64
	LeakPower() float64
	DurableEqual(*mem.Store) error
	Name() string
}

// TestAllDesignsValueCorrectness drives a deterministic op stream with
// periodic power cycles through every design and checks loads against
// a golden image. The broken design is excluded from post-cycle value
// checks (it is *supposed* to corrupt) but must still answer loads
// before any outage.
func TestAllDesignsValueCorrectness(t *testing.T) {
	for _, d := range allDUTs() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			nvm := newNVM()
			des := d.build(nvm)
			golden := mem.NewStore()
			now := int64(0)
			rng := uint32(12345)
			for i := 0; i < 3000; i++ {
				rng = rng*1664525 + 1013904223
				addr := (rng % 2048) &^ 3
				switch {
				case i%97 == 96 && d.durable:
					done, _ := des.Checkpoint(now)
					if err := des.DurableEqual(golden); err != nil {
						t.Fatalf("durability after checkpoint %d: %v", i, err)
					}
					now, _ = des.Restore(done)
				case rng%3 == 0:
					val := rng ^ 0xfeedface
					golden.Write(addr, val)
					_, done, _ := des.Access(now, isa.OpStore, addr, val)
					now = done
				default:
					v, done, _ := des.Access(now, isa.OpLoad, addr, 0)
					if v != golden.Read(addr) {
						t.Fatalf("op %d: load %#x = %#x, want %#x", i, addr, v, golden.Read(addr))
					}
					now = done
				}
			}
			// Final durability via checkpoint.
			if d.durable {
				des.Checkpoint(now)
				if err := des.DurableEqual(golden); err != nil {
					t.Fatalf("final durability: %v", err)
				}
			}
		})
	}
}

// TestBrokenDesignActuallyBreaks is the negative control: a power
// cycle on the unsafe volatile WB cache must lose dirty data.
func TestBrokenDesignActuallyBreaks(t *testing.T) {
	nvm := newNVM()
	d := NewBrokenVolatileWB(cache.DefaultGeometry(), cache.LRU, jit(), nvm)
	golden := mem.NewStore()
	golden.Write(0x1000, 77)
	_, now, _ := d.Access(0, isa.OpStore, 0x1000, 77)
	done, _ := d.Checkpoint(now)
	if err := d.DurableEqual(golden); err == nil {
		t.Fatal("broken design claims durability for a lost dirty line")
	}
	done, _ = d.Restore(done)
	v, _, _ := d.Access(done, isa.OpLoad, 0x1000, 0)
	if v == 77 {
		t.Fatal("value survived a power cycle without any checkpoint — not volatile?")
	}
}

func TestWTStoreIsSynchronous(t *testing.T) {
	nvm := newNVM()
	d := NewVCacheWT(cache.DefaultGeometry(), cache.SRAMTech(), cache.LRU, jit(), nvm)
	_, done, eb := d.Access(0, isa.OpStore, 0x100, 9)
	if done < nvm.Params().WordWriteLatency {
		t.Fatalf("WT store completed in %d ps, faster than the NVM write", done)
	}
	if eb.MemWrite <= 0 {
		t.Fatal("WT store drew no NVM energy")
	}
	// NVM image must be updated immediately (write-through).
	if nvm.Image().Read(0x100) != 9 {
		t.Fatal("write-through did not reach NVM")
	}
}

func TestWTNoWriteAllocate(t *testing.T) {
	nvm := newNVM()
	d := NewVCacheWT(cache.DefaultGeometry(), cache.SRAMTech(), cache.LRU, jit(), nvm)
	d.Access(0, isa.OpStore, 0x100, 9)
	if _, hit := d.Array().Lookup(0x100); hit {
		t.Fatal("store miss allocated a line in the WT cache")
	}
	// After a load the line is resident; a store hit updates it.
	d.Access(1e6, isa.OpLoad, 0x100, 0)
	d.Access(2e6, isa.OpStore, 0x100, 10)
	ln, hit := d.Array().Lookup(0x100)
	if !hit || ln.Data[0] != 10 {
		t.Fatal("store hit did not update the cached copy")
	}
	if ln.Dirty {
		t.Fatal("WT lines must never be dirty")
	}
}

func TestNVCacheWarmAcrossPowerCycle(t *testing.T) {
	nvm := newNVM()
	d := NewNVCacheWB(cache.DefaultGeometry(), cache.LRU, jit(), nvm)
	_, now, _ := d.Access(0, isa.OpStore, 0x200, 5)
	done, _ := d.Checkpoint(now)
	done, _ = d.Restore(done)
	if _, hit := d.Array().Lookup(0x200); !hit {
		t.Fatal("non-volatile cache lost its contents across the power cycle")
	}
	v, _, _ := d.Access(done, isa.OpLoad, 0x200, 0)
	if v != 5 {
		t.Fatalf("post-cycle load = %d", v)
	}
}

func TestNVCacheSlowerAndHungrierThanSRAM(t *testing.T) {
	nv, sram := cache.NVRAMTech(), cache.SRAMTech()
	if nv.WriteLatency <= sram.WriteLatency || nv.WriteEnergy <= sram.WriteEnergy {
		t.Fatal("NV cache writes must dominate SRAM writes")
	}
}

func TestNVSRAMCheckpointCountsDirtyOnly(t *testing.T) {
	nvm := newNVM()
	d := NewNVSRAM(cache.DefaultGeometry(), cache.LRU, jit(), DefaultNVSRAMParams(), nvm)
	now := int64(0)
	// Two dirty lines, one clean (loaded) line.
	_, now, _ = d.Access(now, isa.OpStore, 0x000, 1)
	_, now, _ = d.Access(now, isa.OpStore, 0x040, 2)
	_, now, _ = d.Access(now, isa.OpLoad, 0x080, 0)
	done, eb := d.Checkpoint(now)
	wantE := 2*DefaultNVSRAMParams().LineCheckpointEnergy + jit().RegCheckpointEnergy
	if eb.Checkpoint != wantE {
		t.Fatalf("checkpoint energy %g, want %g (2 dirty lines)", eb.Checkpoint, wantE)
	}
	if done-now != 2*DefaultNVSRAMParams().LineCheckpointTime+jit().RegCheckpointTime {
		t.Fatalf("checkpoint time %d", done-now)
	}
}

func TestNVSRAMWarmRestoreCost(t *testing.T) {
	nvm := newNVM()
	d := NewNVSRAM(cache.DefaultGeometry(), cache.LRU, jit(), DefaultNVSRAMParams(), nvm)
	_, now, _ := d.Access(0, isa.OpStore, 0x000, 1)
	done, _ := d.Checkpoint(now)
	done2, eb := d.Restore(done)
	// One valid line restored plus registers.
	if eb.Restore != DefaultNVSRAMParams().LineRestoreEnergy+jit().RestoreEnergy {
		t.Fatalf("restore energy %g", eb.Restore)
	}
	if _, hit := d.Array().Lookup(0x000); !hit {
		t.Fatal("NVSRAM cache cold after restore")
	}
	_ = done2
}

func TestNVSRAMReserveCoversWholeCache(t *testing.T) {
	nvm := newNVM()
	geo := cache.DefaultGeometry()
	d := NewNVSRAM(geo, cache.LRU, jit(), DefaultNVSRAMParams(), nvm)
	want := jit().BaseReserve + float64(geo.Lines())*DefaultNVSRAMParams().LineReserve
	if d.ReserveEnergy() != want {
		t.Fatalf("reserve %g, want %g", d.ReserveEnergy(), want)
	}
	// And it dwarfs the registers-only designs.
	if d.ReserveEnergy() < 5*jit().BaseReserve {
		t.Fatal("NVSRAM reserve suspiciously small")
	}
}

func TestReplayPersistsStoresAsynchronously(t *testing.T) {
	nvm := newNVM()
	d := NewReplayCache(cache.DefaultGeometry(), cache.LRU, jit(), DefaultReplayParams(), nvm)
	_, done, _ := d.Access(0, isa.OpStore, 0x300, 3)
	// The store must complete well before the NVM write latency: it
	// is asynchronous.
	if done >= nvm.Params().WordWriteLatency {
		t.Fatalf("replay store blocked for %d ps", done)
	}
	if nvm.Image().Read(0x300) != 3 {
		t.Fatal("persist did not reach the NVM image")
	}
}

func TestReplayRegionBarrierStalls(t *testing.T) {
	nvm := newNVM()
	p := DefaultReplayParams()
	d := NewReplayCache(cache.DefaultGeometry(), cache.LRU, jit(), p, nvm)
	now := int64(0)
	var lastDone int64
	for i := 0; i < p.RegionStores; i++ {
		_, done, _ := d.Access(now, isa.OpStore, uint32(0x400+i*4), uint32(i))
		lastDone = done
		now += 100 // back-to-back stores, port backs up
	}
	// The final (region-ending) store must have waited for the drain.
	if lastDone < nvm.BusyUntil()-int64(p.RegionStores)*100 {
		t.Fatal("region boundary did not wait for outstanding persists")
	}
	if d.ExtraStats().Stalls == 0 {
		t.Fatal("barrier stall not recorded")
	}
}

func TestReplayRestoreChargesReexecution(t *testing.T) {
	nvm := newNVM()
	d := NewReplayCache(cache.DefaultGeometry(), cache.LRU, jit(), DefaultReplayParams(), nvm)
	// One store into a fresh region, then fail mid-region.
	_, now, _ := d.Access(0, isa.OpStore, 0x500, 1)
	now += 50_000 // progress since the (implicit) barrier
	_, _, _ = d.Access(now, isa.OpLoad, 0x500, 0)
	done, _ := d.Checkpoint(now + 1000)
	done2, _ := d.Restore(done)
	if done2-done <= jit().RestoreTime {
		t.Fatal("no re-execution penalty charged")
	}
}

func TestNoCacheEveryAccessHitsNVM(t *testing.T) {
	nvm := newNVM()
	d := NewNoCache(jit(), nvm)
	d.Access(0, isa.OpStore, 0x10, 1)
	d.Access(1e6, isa.OpLoad, 0x10, 0)
	tr := nvm.Traffic()
	if tr.Reads != 1 || tr.Writes != 1 {
		t.Fatalf("traffic %+v, want one of each", tr)
	}
	if d.LeakPower() != 0 {
		t.Fatal("cacheless design should not leak array power")
	}
}

func TestReserveOrdering(t *testing.T) {
	// The paper's Table 1 energy-buffer column: NVSRAM large, WL small
	// (tested in core), everyone else registers-only.
	nvm := newNVM()
	geo := cache.DefaultGeometry()
	nvsram := NewNVSRAM(geo, cache.LRU, jit(), DefaultNVSRAMParams(), nvm)
	for _, d := range []designIface{
		NewNoCache(jit(), nvm),
		NewVCacheWT(geo, cache.SRAMTech(), cache.LRU, jit(), nvm),
		NewNVCacheWB(geo, cache.LRU, jit(), nvm),
		NewReplayCache(geo, cache.LRU, jit(), DefaultReplayParams(), nvm),
	} {
		if d.ReserveEnergy() != jit().BaseReserve {
			t.Errorf("%s reserve = %g, want registers-only", d.Name(), d.ReserveEnergy())
		}
		if d.ReserveEnergy() >= nvsram.ReserveEnergy() {
			t.Errorf("%s reserve not below NVSRAM's", d.Name())
		}
	}
}

// Property: for every durable design, any interleaving of accesses and
// power cycles preserves architectural values.
func TestDesignsQuickDurability(t *testing.T) {
	for _, d := range append(allDUTs(), variantDUTs()...) {
		if !d.durable {
			continue
		}
		d := d
		t.Run(d.name, func(t *testing.T) {
			f := func(ops []uint16) bool {
				nvm := newNVM()
				des := d.build(nvm)
				golden := mem.NewStore()
				now := int64(0)
				for _, op := range ops {
					addr := uint32(op&0x1ff) << 2
					switch op % 7 {
					case 6:
						done, _ := des.Checkpoint(now)
						if des.DurableEqual(golden) != nil {
							return false
						}
						now, _ = des.Restore(done)
					case 1, 3:
						val := uint32(op) * 2654435761
						golden.Write(addr, val)
						_, done, _ := des.Access(now, isa.OpStore, addr, val)
						now = done
					default:
						v, done, _ := des.Access(now, isa.OpLoad, addr, 0)
						if v != golden.Read(addr) {
							return false
						}
						now = done
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
