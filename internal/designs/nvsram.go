package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/stats"
)

// NVSRAMParams sizes the per-line costs of the non-volatile twin
// array used for JIT checkpointing and warm restore.
type NVSRAMParams struct {
	LineCheckpointTime   int64   // ps per line copied SRAM -> NV twin
	LineCheckpointEnergy float64 // J per line
	LineRestoreTime      int64   // ps per line copied NV twin -> SRAM
	LineRestoreEnergy    float64 // J per line
	// LineReserve is the worst-case energy reserved per line for the
	// JIT checkpoint (adjacent per-cell twin writes are cheaper than
	// WL-Cache's off-array NVM flushes, but every line must be
	// covered).
	LineReserve float64
	TwinLeak    float64 // extra leakage of the NV twin, W
}

// DefaultNVSRAMParams returns on-chip ReRAM twin costs: the twin's
// cells are the same technology as main NVM, so a line checkpoint
// costs as much energy as a coalesced NVM line write, only faster
// (no off-chip bus).
func DefaultNVSRAMParams() NVSRAMParams {
	return NVSRAMParams{
		LineCheckpointTime:   20_000, // 20 ns
		LineCheckpointEnergy: 3.0e-9,
		LineRestoreTime:      30_000, // 30 ns (read twin + write SRAM)
		LineRestoreEnergy:    2.0e-9,
		LineReserve:          7.0e-9,
		TwinLeak:             0.2e-3,
	}
}

// NVSRAM is the state-of-the-art baseline, NVSRAMCache (ideal)
// (Figure 1(d), §2.3.3): a volatile write-back SRAM cache backed by a
// same-size non-volatile twin. At power failure it "magically"
// checkpoints only the dirty lines into the twin; at boot the whole
// cache is restored warm. Because *every* line could be dirty, the
// energy reserve must cover checkpointing the entire cache, which is
// the design's Achilles heel under frequent outages.
type NVSRAM struct {
	wb     wbCache
	jit    energy.JITCosts
	params NVSRAMParams
	extra  stats.DesignExtra
}

// NewNVSRAM builds the ideal NVSRAM design.
func NewNVSRAM(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, params NVSRAMParams, nvm *mem.NVM) *NVSRAM {
	return &NVSRAM{wb: newWBCache(geo, cache.SRAMTech(), pol, nvm), jit: jit, params: params}
}

// Name identifies the design.
func (d *NVSRAM) Name() string { return "NVSRAM(ideal)" }

// Array exposes the cache array for tests.
func (d *NVSRAM) Array() *cache.Array { return d.wb.arr }

// Access is a conventional write-back access at SRAM speed.
func (d *NVSRAM) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *NVSRAM) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	return d.wb.access(now, op, addr, val, eb)
}

// Checkpoint copies every dirty line into the NV twin (ideal variant:
// dirty lines only) plus the register file. Lines stay in the SRAM
// array — and stay dirty with respect to main NVM — because the twin,
// not main memory, holds the durable copy.
func (d *NVSRAM) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	t := now
	dirty := 0
	d.wb.arr.ForEachLine(func(addr uint32, ln *cache.Line) {
		if ln.Dirty {
			dirty++
		}
	})
	t += int64(dirty) * d.params.LineCheckpointTime
	eb.Checkpoint += float64(dirty) * d.params.LineCheckpointEnergy
	d.extra.CheckpointLines += uint64(dirty)
	t += d.jit.RegCheckpointTime
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return t, eb
}

// Restore reloads the SRAM array from the NV twin: the cache boots
// warm, at a per-line cost.
func (d *NVSRAM) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	valid := 0
	d.wb.arr.ForEachLine(func(addr uint32, ln *cache.Line) { valid++ })
	t := now + int64(valid)*d.params.LineRestoreTime
	eb.Restore += float64(valid) * d.params.LineRestoreEnergy
	t += d.jit.RestoreTime
	eb.Restore += d.jit.RestoreEnergy
	return t, eb
}

// ReserveEnergy must cover the worst case: the entire cache dirty
// (§2.3.3) — this is what forces the high Vbackup of Table 2.
func (d *NVSRAM) ReserveEnergy() float64 {
	lines := float64(d.wb.arr.Geometry().Lines())
	return d.jit.BaseReserve + lines*d.params.LineReserve
}

// LeakPower is SRAM leakage plus the idle NV twin.
func (d *NVSRAM) LeakPower() float64 { return d.wb.tech.Leakage + d.params.TwinLeak }

// ExtraStats returns checkpoint counters.
func (d *NVSRAM) ExtraStats() stats.DesignExtra { return d.extra }

// DurableEqual overlays the array (whose contents are durable via the
// twin) onto the NVM image.
func (d *NVSRAM) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.wb.nvm.Image(), d.wb.arr)
}
