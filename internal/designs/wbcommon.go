package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
)

// wbCache is the conventional write-back, write-allocate access logic
// shared by NVCache-WB, NVSRAM and ReplayCache. Dirty victims are
// written back to NVM on eviction; stores dirty the line and stay in
// the cache.
type wbCache struct {
	arr     *cache.Array
	tech    cache.Tech
	nvm     *mem.NVM
	replE   float64 // tech.ReplacementEnergy[policy], hoisted off the access path
	lineBuf []uint32
}

func newWBCache(geo cache.Geometry, tech cache.Tech, pol cache.ReplacementPolicy, nvm *mem.NVM) wbCache {
	return wbCache{
		arr:     cache.NewArray(geo, pol),
		tech:    tech,
		nvm:     nvm,
		replE:   tech.ReplacementEnergy[pol],
		lineBuf: make([]uint32, geo.LineWords()),
	}
}

// access performs one conventional write-back access.
func (c *wbCache) access(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	eb.CacheRead += c.replE
	lineAddr := c.arr.LineAddr(addr)
	ln, hit := c.arr.Lookup(addr)
	t := now
	if !hit {
		t += c.tech.ProbeLatency
		eb.CacheRead += c.tech.ProbeEnergy
		ln, t = c.fill(t, lineAddr, eb)
	}
	c.arr.Touch(ln)
	if op == isa.OpLoad {
		eb.CacheRead += c.tech.ReadEnergy
		if hit {
			t += c.tech.HitLatency
		}
		return ln.Data[c.arr.WordIndex(addr)], t
	}
	ln.Data[c.arr.WordIndex(addr)] = val
	ln.Dirty = true
	eb.CacheWrite += c.tech.WriteEnergy
	t += c.tech.WriteLatency
	return val, t
}

// fill loads lineAddr into the array, persisting a dirty victim first.
func (c *wbCache) fill(t int64, lineAddr uint32, eb *energy.Breakdown) (*cache.Line, int64) {
	victim := c.arr.Victim(lineAddr)
	if victim.Valid && victim.Dirty {
		vaddr := c.arr.VictimAddr(victim, lineAddr)
		done, e := c.nvm.WriteLine(t, vaddr, victim.Data)
		eb.MemWrite += e
		t = done
		victim.Dirty = false
	}
	done, e := c.nvm.ReadLine(t, lineAddr, c.lineBuf)
	eb.MemRead += e
	c.arr.Fill(victim, lineAddr, c.lineBuf)
	ln, ok := c.arr.Lookup(lineAddr)
	if !ok {
		panic("designs: line absent immediately after fill")
	}
	return ln, done
}
