package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/obs"
	"wlcache/internal/stats"
)

// ReplayParams sizes the ReplayCache model.
type ReplayParams struct {
	// RegionStores is the persistence-region granularity expressed in
	// stores: after this many stores the compiler-inserted region
	// boundary waits for all outstanding NVM persists to drain.
	RegionStores int
	// InstrTime/InstrEnergy cost the re-executed instructions after a
	// power failure (the region in flight at the failure is replayed).
	InstrTime   int64
	InstrEnergy float64
}

// DefaultReplayParams returns region sizing in line with the paper's
// description of region-level persistence.
func DefaultReplayParams() ReplayParams {
	return ReplayParams{RegionStores: 4, InstrTime: 1000, InstrEnergy: 20e-12}
}

// ReplayCache models ReplayCache [Zeng et al., MICRO'21] (§6.1): a
// volatile write-back SRAM cache whose compiler persists every store
// to NVM asynchronously at region granularity. Stores complete at
// SRAM speed while the NVM persist proceeds in the background; at
// each region boundary execution waits for outstanding persists; at a
// power failure nothing needs checkpointing beyond registers — the
// interrupted region is simply re-executed after reboot, which this
// model charges as a restore-time penalty equal to the work since the
// last completed region boundary.
type ReplayCache struct {
	wb     wbCache
	jit    energy.JITCosts
	params ReplayParams

	storesInRegion  int
	lastBarrierTime int64
	lastEventTime   int64
	extra           stats.DesignExtra
	rec             *obs.Recorder
}

// BindObserver wires the recorder so region-boundary drains land on
// the event timeline (sim.ObserverBinder).
func (d *ReplayCache) BindObserver(r *obs.Recorder) { d.rec = r }

// NewReplayCache builds the ReplayCache model.
func NewReplayCache(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, params ReplayParams, nvm *mem.NVM) *ReplayCache {
	if params.RegionStores <= 0 {
		params.RegionStores = 16
	}
	return &ReplayCache{wb: newWBCache(geo, cache.SRAMTech(), pol, nvm), jit: jit, params: params}
}

// Name identifies the design.
func (d *ReplayCache) Name() string { return "ReplayCache" }

// Array exposes the cache array for tests.
func (d *ReplayCache) Array() *cache.Array { return d.wb.arr }

// Access performs the write-back access; stores additionally enqueue
// an asynchronous NVM word persist, and every RegionStores-th store
// ends the region: execution drains the NVM port.
func (d *ReplayCache) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *ReplayCache) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	var v uint32
	var done int64
	if op == isa.OpLoad {
		v, done = d.wb.access(now, op, addr, val, eb)
	} else {
		// Stores are persisted through to NVM, so there is no point
		// allocating on a miss, and a cached copy is updated in place
		// but left clean (no eviction write-back will ever be needed).
		v, done = val, now
		eb.CacheWrite += d.wb.replE
		if ln, ok := d.wb.arr.Lookup(addr); ok {
			ln.Data[d.wb.arr.WordIndex(addr)] = val
			ln.Dirty = false
			d.wb.arr.Touch(ln)
			eb.CacheWrite += d.wb.tech.WriteEnergy
			done += d.wb.tech.WriteLatency
		} else {
			eb.CacheWrite += d.wb.tech.ProbeEnergy
			done += d.wb.tech.ProbeLatency
		}
		// Asynchronous persist: occupies the NVM port but does not
		// extend the store's completion time.
		_, e := d.wb.nvm.WriteWordAsync(done, addr, val)
		eb.MemWrite += e
		d.storesInRegion++
		if d.storesInRegion >= d.params.RegionStores {
			// Region boundary: wait for every outstanding persist.
			if busy := d.wb.nvm.BusyUntil(); busy > done {
				d.extra.StallTime += busy - done
				d.extra.Stalls++
				d.rec.StoreStall(done, busy, d.wb.arr.LineAddr(addr))
				done = busy
			}
			d.storesInRegion = 0
			d.lastBarrierTime = done
		}
	}
	d.lastEventTime = done
	return v, done
}

// Checkpoint persists registers only; pending region work is simply
// abandoned (it will be re-executed).
func (d *ReplayCache) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return now + d.jit.RegCheckpointTime, eb
}

// Restore boots cold and charges the re-execution of the interrupted
// region (time plus compute energy).
func (d *ReplayCache) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	d.wb.arr.InvalidateAll()
	penalty := d.lastEventTime - d.lastBarrierTime
	if penalty < 0 {
		penalty = 0
	}
	// Cap at one full region of straight-line execution to keep the
	// model sane when stores are sparse.
	if maxPen := int64(d.params.RegionStores) * 50 * d.params.InstrTime; penalty > maxPen {
		penalty = maxPen
	}
	eb.Restore += d.jit.RestoreEnergy + float64(penalty/d.params.InstrTime)*d.params.InstrEnergy
	done := now + d.jit.RestoreTime + penalty
	d.storesInRegion = 0
	d.lastBarrierTime = done
	d.lastEventTime = done
	return done, eb
}

// ReserveEnergy covers registers only: ReplayCache's selling point is
// that no cache state needs checkpointing (Table 1: "Small" buffer).
func (d *ReplayCache) ReserveEnergy() float64 { return d.jit.BaseReserve }

// LeakPower is the SRAM array leakage.
func (d *ReplayCache) LeakPower() float64 { return d.wb.tech.Leakage }

// ExtraStats returns barrier counters.
func (d *ReplayCache) ExtraStats() stats.DesignExtra { return d.extra }

// DurableEqual: every store was persisted to the NVM image at issue
// time (re-execution would regenerate any in-flight tail), so the
// image alone must match.
func (d *ReplayCache) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.wb.nvm.Image(), nil)
}
