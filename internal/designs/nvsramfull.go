package designs

import (
	"wlcache/internal/cache"
	"wlcache/internal/energy"
	"wlcache/internal/isa"
	"wlcache/internal/mem"
	"wlcache/internal/stats"
)

// NVSRAMFull is the original NVSRAMCache (Liu et al. [41], §2.3.3
// "full" variant): at power failure it copies the *entire* SRAM array
// into the non-volatile twin — valid or not, dirty or not — because
// it has no dirty tracking at the array interface. The reserve is the
// same as the ideal variant's (whole cache), but every checkpoint
// actually pays the whole-cache cost, which is what the ideal variant
// "magically" avoids.
type NVSRAMFull struct {
	wb     wbCache
	jit    energy.JITCosts
	params NVSRAMParams
	extra  stats.DesignExtra
}

// NewNVSRAMFull builds the full-checkpoint NVSRAM design.
func NewNVSRAMFull(geo cache.Geometry, pol cache.ReplacementPolicy, jit energy.JITCosts, params NVSRAMParams, nvm *mem.NVM) *NVSRAMFull {
	return &NVSRAMFull{wb: newWBCache(geo, cache.SRAMTech(), pol, nvm), jit: jit, params: params}
}

// Name identifies the design.
func (d *NVSRAMFull) Name() string { return "NVSRAM(full)" }

// Array exposes the cache array for tests.
func (d *NVSRAMFull) Array() *cache.Array { return d.wb.arr }

// Access is a conventional write-back access at SRAM speed.
func (d *NVSRAMFull) Access(now int64, op isa.Op, addr, val uint32) (uint32, int64, energy.Breakdown) {
	var eb energy.Breakdown
	v, done := d.AccessEB(now, op, addr, val, &eb)
	return v, done, eb
}

// AccessEB is the pointer-breakdown fast path (sim.EBAccessor).
func (d *NVSRAMFull) AccessEB(now int64, op isa.Op, addr, val uint32, eb *energy.Breakdown) (uint32, int64) {
	return d.wb.access(now, op, addr, val, eb)
}

// Checkpoint copies every line of the array — the defining cost of
// the full variant.
func (d *NVSRAMFull) Checkpoint(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	lines := int64(d.wb.arr.Geometry().Lines())
	t := now + lines*d.params.LineCheckpointTime
	eb.Checkpoint += float64(lines) * d.params.LineCheckpointEnergy
	d.extra.CheckpointLines += uint64(lines)
	t += d.jit.RegCheckpointTime
	eb.Checkpoint += d.jit.RegCheckpointEnergy
	return t, eb
}

// Restore reloads the whole array from the twin: warm cache.
func (d *NVSRAMFull) Restore(now int64) (int64, energy.Breakdown) {
	var eb energy.Breakdown
	lines := int64(d.wb.arr.Geometry().Lines())
	t := now + lines*d.params.LineRestoreTime + d.jit.RestoreTime
	eb.Restore += float64(lines)*d.params.LineRestoreEnergy + d.jit.RestoreEnergy
	return t, eb
}

// ReserveEnergy covers the whole cache, as for the ideal variant.
func (d *NVSRAMFull) ReserveEnergy() float64 {
	lines := float64(d.wb.arr.Geometry().Lines())
	return d.jit.BaseReserve + lines*d.params.LineReserve
}

// LeakPower is SRAM plus the idle twin.
func (d *NVSRAMFull) LeakPower() float64 { return d.wb.tech.Leakage + d.params.TwinLeak }

// ExtraStats returns checkpoint counters.
func (d *NVSRAMFull) ExtraStats() stats.DesignExtra { return d.extra }

// DurableEqual overlays the (twin-backed) array onto the NVM image.
func (d *NVSRAMFull) DurableEqual(golden *mem.Store) error {
	return cache.DurableEqual(golden, d.wb.nvm.Image(), d.wb.arr)
}
