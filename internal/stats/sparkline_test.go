package stats

import (
	"math"
	"testing"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty series = %q, want empty string", got)
	}
	got := Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q, want full block ramp", got)
	}
	// Min and max always land on the extreme runes.
	if got := Sparkline([]float64{10, 5, 20}); got != "▃▁█" {
		t.Fatalf("mixed series = %q, want ▃▁█", got)
	}
}

// A flat series and a single point render at mid height, not as a
// degenerate all-max or all-min line; NaN samples leave gaps.
func TestSparklineDegenerate(t *testing.T) {
	if got := Sparkline([]float64{7, 7, 7}); got != "▅▅▅" {
		t.Fatalf("flat series = %q, want ▅▅▅", got)
	}
	if got := Sparkline([]float64{42}); got != "▅" {
		t.Fatalf("single point = %q, want ▅", got)
	}
	if got := Sparkline([]float64{1, math.NaN(), 2}); got != "▁ █" {
		t.Fatalf("NaN gap = %q, want ▁ █", got)
	}
	if got := Sparkline([]float64{math.NaN(), math.NaN()}); got != "  " {
		t.Fatalf("all-NaN = %q, want two spaces", got)
	}
}
