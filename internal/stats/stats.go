// Package stats provides the aggregation and rendering helpers shared
// by the experiment harness: geometric means, per-design extra
// counters, and fixed-width table/series formatting matching the rows
// the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Gmean returns the geometric mean of xs. It panics on non-positive
// inputs (speedups and times are always positive) and returns NaN for
// an empty slice.
func Gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: non-positive sample %g in gmean", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (NaN for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// DesignExtra carries design-specific counters surfaced in §6.6: the
// optional Design.ExtraStats interface returns one.
type DesignExtra struct {
	Writebacks      uint64 // asynchronous write-backs issued
	Stalls          uint64 // stores stalled on maxline
	StallTime       int64  // ps spent stalled
	Reconfigs       int    // adaptive threshold changes
	MaxlineNow      int    // current maxline
	WaterlineNow    int    // current waterline
	CheckpointLines uint64 // dirty lines flushed by JIT checkpoints
	DirtyPeak       int    // maximum simultaneous dirty lines observed
	RedundantDQ     uint64 // redundant DirtyQueue insertions (§5.3)
	StaleDQSkips    uint64 // stale DirtyQueue entries skipped (§5.4)
	DroppedACKs     uint64 // write-back ACKs lost to fault injection
}

// Table renders labelled rows of float columns with a fixed layout.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
}

type tableRow struct {
	label string
	vals  []float64
}

// NewTable creates a table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row. The number of values must match the columns.
func (t *Table) Add(label string, vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row %q has %d values, want %d", label, len(vals), len(t.Columns)))
	}
	t.rows = append(t.rows, tableRow{label, vals})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Value returns the cell for (label, column); ok=false if absent.
func (t *Table) Value(label, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.rows {
		if r.label == label {
			return r.vals[ci], true
		}
	}
	return 0, false
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	labelW := len("benchmark")
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := 10
	for _, c := range t.Columns {
		if len(c)+2 > colW {
			colW = len(c) + 2
		}
	}
	for _, r := range t.rows {
		for _, v := range r.vals {
			if len(formatCell(v))+2 > colW {
				colW = len(formatCell(v)) + 2
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", colW, c)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", labelW+2+colW*len(t.Columns)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.label)
		for _, v := range r.vals {
			fmt.Fprintf(&b, "%*s", colW, formatCell(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && (math.Abs(v) < 0.001 || math.Abs(v) >= 1e6):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// GmeanOver computes the geometric mean of a column over a subset of
// row labels (all rows when labels is nil).
func (t *Table) GmeanOver(column string, labels []string) float64 {
	want := map[string]bool{}
	for _, l := range labels {
		want[l] = true
	}
	var xs []float64
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return math.NaN()
	}
	for _, r := range t.rows {
		if labels == nil || want[r.label] {
			xs = append(xs, r.vals[ci])
		}
	}
	return Gmean(xs)
}

// TextTable renders labelled rows of string cells with the same fixed
// layout as Table; used for pass/fail grids (the fault audit) where
// cells are verdicts, not numbers.
type TextTable struct {
	Title   string
	Columns []string
	// Label heads the row-label column; "" renders the historical
	// default "design".
	Label string
	rows  []textRow
}

type textRow struct {
	label string
	cells []string
}

// NewTextTable creates a text table with the given column headers.
func NewTextTable(title string, columns ...string) *TextTable {
	return &TextTable{Title: title, Columns: columns}
}

// Add appends a row. The number of cells must match the columns.
func (t *TextTable) Add(label string, cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row %q has %d cells, want %d", label, len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, textRow{label, cells})
}

// Rows returns the number of data rows.
func (t *TextTable) Rows() int { return len(t.rows) }

// Cell returns the cell for (label, column); ok=false if absent.
func (t *TextTable) Cell(label, column string) (string, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, r := range t.rows {
		if r.label == label {
			return r.cells[ci], true
		}
	}
	return "", false
}

// String renders the table with aligned columns.
func (t *TextTable) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	head := t.Label
	if head == "" {
		head = "design"
	}
	labelW := len(head)
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := 10
	for _, c := range t.Columns {
		if len(c)+2 > colW {
			colW = len(c) + 2
		}
	}
	for _, r := range t.rows {
		for _, cell := range r.cells {
			if len(cell)+2 > colW {
				colW = len(cell) + 2
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, head)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", colW, c)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", labelW+2+colW*len(t.Columns)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.label)
		for _, cell := range r.cells {
			fmt.Fprintf(&b, "%*s", colW, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns the sorted keys of a string-keyed map (stable
// rendering of map-backed results).
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
