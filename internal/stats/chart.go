package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders horizontal ASCII bar charts so wlbench output can
// sketch the paper's figures directly in the terminal.
type BarChart struct {
	Title string
	// RefValue draws a reference line label (e.g. the 1.0x baseline);
	// NaN disables it.
	RefValue float64
	// Width is the bar area width in characters (default 40).
	Width int
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, RefValue: math.NaN(), Width: 40}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.rows = append(c.rows, barRow{label, value})
}

// String renders the chart. Bars scale to the maximum value; the
// reference value, when set and in range, is marked with '|'.
func (c *BarChart) String() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(c.rows) == 0 {
		return b.String()
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	labelW := 0
	for _, r := range c.rows {
		if !math.IsNaN(r.value) && r.value > maxV {
			maxV = r.value
		}
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	refCol := -1
	if !math.IsNaN(c.RefValue) && c.RefValue >= 0 && c.RefValue <= maxV {
		refCol = int(math.Round(c.RefValue / maxV * float64(width)))
	}
	for _, r := range c.rows {
		fmt.Fprintf(&b, "  %-*s ", labelW, r.label)
		if math.IsNaN(r.value) {
			b.WriteString(strings.Repeat(" ", width))
			b.WriteString("      -\n")
			continue
		}
		n := int(math.Round(r.value / maxV * float64(width)))
		if n > width {
			n = width
		}
		for col := 0; col < width; col++ {
			switch {
			case col < n:
				b.WriteByte('#')
			case col == refCol:
				b.WriteByte('|')
			default:
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(&b, " %7.3f\n", r.value)
	}
	return b.String()
}

// sparkRunes are the eight block heights a sparkline cell can take.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a value series as one line of block characters,
// scaled to the series' own min..max — the terminal trend view of the
// run-history store. NaN samples render as spaces; a flat series (or a
// single point) renders at mid height so it reads as "present, not
// moving" rather than empty.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			b.WriteByte(' ')
		case hi <= lo:
			b.WriteRune(sparkRunes[len(sparkRunes)/2])
		default:
			i := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(sparkRunes) {
				i = len(sparkRunes) - 1
			}
			b.WriteRune(sparkRunes[i])
		}
	}
	return b.String()
}
