package stats

import (
	"math"
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	c := NewBarChart("demo")
	c.RefValue = 1.0
	c.Add("half", 0.5)
	c.Add("full", 2.0)
	out := c.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d:\n%s", len(lines), out)
	}
	halfBars := strings.Count(lines[1], "#")
	fullBars := strings.Count(lines[2], "#")
	if fullBars != 40 {
		t.Fatalf("max bar should fill the width: %d", fullBars)
	}
	if halfBars < 8 || halfBars > 12 {
		t.Fatalf("0.5/2.0 bar should be ~10 chars, got %d", halfBars)
	}
	// The 1.0 reference mark appears on the shorter bar's row.
	if !strings.Contains(lines[1], "|") {
		t.Fatal("reference mark missing")
	}
	if !strings.Contains(lines[1], "0.500") || !strings.Contains(lines[2], "2.000") {
		t.Fatal("values missing")
	}
}

func TestBarChartNaNRow(t *testing.T) {
	c := NewBarChart("")
	c.Add("gone", math.NaN())
	c.Add("there", 1.0)
	out := c.String()
	if !strings.Contains(out, "-") {
		t.Fatal("NaN row not rendered as dash")
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := NewBarChart("t")
	if !strings.Contains(c.String(), "t") {
		t.Fatal("empty chart should still print its title")
	}
}

func TestBarChartAllZero(t *testing.T) {
	c := NewBarChart("")
	c.Add("z", 0)
	if strings.Count(c.String(), "#") != 0 {
		t.Fatal("zero value drew bars")
	}
}
