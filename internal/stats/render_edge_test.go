package stats

import (
	"math"
	"strings"
	"testing"
)

// Empty containers must render their header (or nothing) without
// panicking — callers feed them straight from possibly-empty series.
func TestEmptyRendering(t *testing.T) {
	if got := NewTable("empty", "a", "b").String(); !strings.Contains(got, "benchmark") {
		t.Errorf("empty Table: %q", got)
	}
	if got := NewTextTable("empty", "a").String(); !strings.Contains(got, "design") {
		t.Errorf("empty TextTable: %q", got)
	}
	if got := NewBarChart("empty").String(); got != "empty\n" {
		t.Errorf("empty BarChart: %q", got)
	}
	if got := NewBarChart("").String(); got != "" {
		t.Errorf("empty untitled BarChart: %q", got)
	}
}

// NaN cells render as "-" in tables and as a bar-less row in charts.
func TestNaNRendering(t *testing.T) {
	tb := NewTable("", "v")
	tb.Add("x", math.NaN())
	if !strings.Contains(tb.String(), "-") {
		t.Errorf("NaN cell not dashed:\n%s", tb.String())
	}

	c := NewBarChart("t")
	c.Add("nan", math.NaN())
	c.Add("one", 1)
	out := c.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "nan") && strings.Contains(line, "#") {
			t.Errorf("NaN row drew a bar: %q", line)
		}
	}
}

// A single-row chart fills the full bar width (it is its own maximum).
func TestSingleRowChartFillsWidth(t *testing.T) {
	c := NewBarChart("t")
	c.Width = 10
	c.Add("only", 42)
	if !strings.Contains(c.String(), strings.Repeat("#", 10)) {
		t.Errorf("single bar not full width:\n%s", c.String())
	}
}

// All-zero charts must not divide by zero.
func TestAllZeroChart(t *testing.T) {
	c := NewBarChart("t")
	c.Add("a", 0)
	c.Add("b", 0)
	if strings.Contains(c.String(), "#") {
		t.Errorf("zero rows drew bars:\n%s", c.String())
	}
}

// Mixed-width values must never fuse into one token: every cell keeps
// at least one space of separation and all lines stay equally long.
func TestTableMixedWidthAlignment(t *testing.T) {
	tb := NewTable("", "narrow", "wide")
	tb.Add("r1", 1, 556928.123)
	tb.Add("row-with-a-long-label", 123456.789, 0.001)
	out := tb.String()
	if strings.Contains(out, "556928.123123456.789") || strings.Contains(out, "0.001556928") {
		t.Fatalf("cells fused:\n%s", out)
	}
	checkEqualLineWidths(t, out)

	tt := NewTextTable("", "a", "b")
	tt.Add("x", "short", "a-very-wide-verdict-cell")
	tt.Add("much-longer-label", "y", "z")
	checkEqualLineWidths(t, tt.String())
}

// checkEqualLineWidths asserts every header/data row of a rendered
// table has the same width (the definition of aligned columns).
func checkEqualLineWidths(t *testing.T, out string) {
	t.Helper()
	want := -1
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "-") {
			continue // title or separator
		}
		if want < 0 {
			want = len(line)
			continue
		}
		if len(line) != want {
			t.Fatalf("line width %d != header width %d: %q\n%s", len(line), want, line, out)
		}
	}
}
