package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGmean(t *testing.T) {
	if g := Gmean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Gmean(2,8) = %g", g)
	}
	if g := Gmean([]float64{3}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("Gmean(3) = %g", g)
	}
	if !math.IsNaN(Gmean(nil)) {
		t.Fatal("empty gmean must be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive sample accepted")
		}
	}()
	Gmean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean must be NaN")
	}
}

// Property: gmean is scale-equivariant and bounded by min/max.
func TestGmeanQuickProperties(t *testing.T) {
	f := func(raw []float64, scaleSeed uint8) bool {
		var xs []float64
		for _, r := range raw {
			v := math.Abs(r)
			if v > 0.001 && v < 1e6 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Gmean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if g < lo*(1-1e-9) || g > hi*(1+1e-9) {
			return false
		}
		k := 1 + float64(scaleSeed%7)
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = k * x
		}
		return math.Abs(Gmean(scaled)-k*g)/(k*g) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("title", "a", "b")
	tb.Add("row1", 1.5, 2.5)
	tb.Add("row2", 3, 4)
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if v, ok := tb.Value("row1", "b"); !ok || v != 2.5 {
		t.Fatalf("Value = %g/%v", v, ok)
	}
	if _, ok := tb.Value("row1", "nope"); ok {
		t.Fatal("unknown column found")
	}
	if _, ok := tb.Value("nope", "a"); ok {
		t.Fatal("unknown row found")
	}
	s := tb.String()
	for _, want := range []string{"title", "row1", "row2", "1.500", "4.000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestTableMismatchedRowPanics(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("short row accepted")
		}
	}()
	tb.Add("x", 1)
}

func TestTableGmeanOver(t *testing.T) {
	tb := NewTable("t", "col")
	tb.Add("x", 2)
	tb.Add("y", 8)
	tb.Add("z", 32)
	if g := tb.GmeanOver("col", nil); math.Abs(g-8) > 1e-12 {
		t.Fatalf("GmeanOver all = %g", g)
	}
	if g := tb.GmeanOver("col", []string{"x", "y"}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GmeanOver subset = %g", g)
	}
	if !math.IsNaN(tb.GmeanOver("nope", nil)) {
		t.Fatal("unknown column should yield NaN")
	}
}

func TestTableRendersNaNAsDash(t *testing.T) {
	tb := NewTable("t", "a")
	tb.Add("x", math.NaN())
	if !strings.Contains(tb.String(), "-") {
		t.Fatal("NaN not rendered as dash")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Fatalf("SortedKeys = %v", ks)
	}
}

func TestDesignExtraZeroValue(t *testing.T) {
	var e DesignExtra
	if e.Writebacks != 0 || e.Reconfigs != 0 || e.StallTime != 0 {
		t.Fatal("zero value not zero")
	}
}
