package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"wlcache/internal/sim"
)

// Concurrent callers racing on one address compute it exactly once;
// everyone gets the leader's result.
func TestFlightSingleFlight(t *testing.T) {
	f := NewFlight()
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([]sim.Result, callers)
	computed := make([]bool, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, c, err := f.Do(context.Background(), "addr", func() (sim.Result, error) {
				computes.Add(1)
				<-gate // hold every non-leader in the waiting path
				return fakeResult(7), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], computed[i] = res, c
		}()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want exactly 1", got)
	}
	nComputed := 0
	for i := range results {
		if results[i] != fakeResult(7) {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		if computed[i] {
			nComputed++
		}
	}
	if nComputed != 1 {
		t.Fatalf("%d callers report computed=true, want exactly 1 (the leader)", nComputed)
	}
}

// A failed leader does not poison the address: a waiter takes over
// leadership and computes; failures are never cached.
func TestFlightFailureHandsOverLeadership(t *testing.T) {
	f := NewFlight()
	var calls atomic.Int64
	compute := func() (sim.Result, error) {
		if calls.Add(1) == 1 {
			return sim.Result{}, errors.New("first leader dies")
		}
		return fakeResult(3), nil
	}
	const callers = 4
	var wg sync.WaitGroup
	var failures, successes atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := f.Do(context.Background(), "addr", compute)
			if err != nil {
				failures.Add(1)
				return
			}
			if res != fakeResult(3) {
				t.Errorf("got %+v", res)
			}
			successes.Add(1)
		}()
	}
	wg.Wait()
	// The first leader fails its own call; every other caller must end
	// up with the recovered result, served or computed.
	if failures.Load() != 1 || successes.Load() != callers-1 {
		t.Fatalf("failures=%d successes=%d, want 1/%d", failures.Load(), successes.Load(), callers-1)
	}
	// The published result now serves without recomputation.
	res, computed, err := f.Do(context.Background(), "addr", compute)
	if err != nil || computed || res != fakeResult(3) {
		t.Fatalf("published result not served: res=%+v computed=%t err=%v", res, computed, err)
	}
}

// A waiter whose context dies stops waiting with the cancellation
// cause instead of blocking on a stuck leader.
func TestFlightWaiterHonorsContext(t *testing.T) {
	f := NewFlight()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go f.Do(context.Background(), "addr", func() (sim.Result, error) {
		close(leaderIn)
		<-release
		return fakeResult(1), nil
	})
	<-leaderIn
	cause := errors.New("deadline budget spent")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	_, _, err := f.Do(ctx, "addr", func() (sim.Result, error) {
		t.Error("cancelled waiter must not become leader")
		return sim.Result{}, nil
	})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
}

// Seed publishes reloaded journal results; the last write wins, same
// as journal reload dedup.
func TestFlightSeedLastWriteWins(t *testing.T) {
	f := NewFlight()
	f.Seed("a", fakeResult(1))
	f.Seed("a", fakeResult(2))
	f.Seed("b", fakeResult(3))
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	res, computed, err := f.Do(context.Background(), "a", func() (sim.Result, error) {
		t.Error("seeded address recomputed")
		return sim.Result{}, nil
	})
	if err != nil || computed || res != fakeResult(2) {
		t.Fatalf("res=%+v computed=%t err=%v, want seeded result 2", res, computed, err)
	}
}

// Two concurrent RunCells sweeps sharing a Flight compute every
// overlapping cell exactly once: one sweep's metrics show the compute,
// the other's show the shared-store hit, and only the computing sweep
// journals it.
func TestRunCellsSharedStoreDedup(t *testing.T) {
	shared := NewFlight()
	var computes atomic.Int64
	mkCells := func() []Cell {
		cells := make([]Cell, 6)
		for i := range cells {
			i := i
			cells[i] = Cell{
				ID:          fmt.Sprintf("cell-%d", i),
				Fingerprint: fmt.Sprintf("fp-%d", i),
				Run: func(context.Context) (sim.Result, error) {
					computes.Add(1)
					return fakeResult(i), nil
				},
			}
		}
		return cells
	}
	var wg sync.WaitGroup
	reps := make([]Report, 2)
	for s := 0; s < 2; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := RunCells(context.Background(), Config{
				Workers: 2, Engine: "test", Shared: shared,
			}, mkCells())
			if err != nil {
				t.Error(err)
			}
			reps[s] = rep
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 6 {
		t.Fatalf("computed %d cells across both sweeps, want exactly 6", got)
	}
	totalComputed := reps[0].Metrics.Computed + reps[1].Metrics.Computed
	totalShared := reps[0].Metrics.FromShared + reps[1].Metrics.FromShared
	if totalComputed != 6 || totalShared != 6 {
		t.Fatalf("computed=%d shared=%d, want 6/6: %+v / %+v",
			totalComputed, totalShared, reps[0].Metrics, reps[1].Metrics)
	}
	for s, rep := range reps {
		for i := range rep.Results {
			if rep.Results[i] != fakeResult(i) {
				t.Fatalf("sweep %d cell %d: %+v", s, i, rep.Results[i])
			}
		}
	}
}

// OnCell fires once per cell with the correct source, on every path:
// journal reload, shared-store hit, fresh compute, permanent failure.
func TestOnCellSources(t *testing.T) {
	dir := t.TempDir()
	journal := dir + "/j.jsonl"
	cells := []Cell{
		{ID: "ok", Fingerprint: "fp-ok", Run: func(context.Context) (sim.Result, error) { return fakeResult(1), nil }},
		{ID: "bad", Fingerprint: "fp-bad", Optional: true, Run: func(context.Context) (sim.Result, error) {
			return sim.Result{}, errors.New("infeasible")
		}},
	}
	runOnce := func(shared *Flight) map[string]CellSource {
		var mu sync.Mutex
		sources := map[string]CellSource{}
		_, err := RunCells(context.Background(), Config{
			Workers: 1, Engine: "test", JournalPath: journal, Shared: shared,
			OnCell: func(d CellDone) {
				mu.Lock()
				defer mu.Unlock()
				if prev, dup := sources[d.ID]; dup {
					t.Errorf("cell %s reported twice (%s then %s)", d.ID, prev, d.Source)
				}
				sources[d.ID] = d.Source
			},
		}, cells)
		if err != nil {
			t.Fatal(err)
		}
		return sources
	}

	if got := runOnce(nil); got["ok"] != SourceComputed || got["bad"] != SourceFailed {
		t.Fatalf("first run sources %v", got)
	}
	if got := runOnce(nil); got["ok"] != SourceJournal || got["bad"] != SourceFailed {
		t.Fatalf("resumed run sources %v", got)
	}
	shared := NewFlight()
	shared.Seed(Address("test", "fp-ok"), fakeResult(9))
	if err := os.Remove(journal); err != nil {
		t.Fatal(err)
	}
	if got := runOnce(shared); got["ok"] != SourceShared || got["bad"] != SourceFailed {
		t.Fatalf("shared-store run sources %v", got)
	}
}
