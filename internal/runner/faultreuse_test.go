package runner_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"wlcache/internal/expt"
	"wlcache/internal/fault"
	"wlcache/internal/isa"
	"wlcache/internal/runner"
	"wlcache/internal/sim"
	"wlcache/internal/workload"
)

// faultedCell builds a runner cell that executes a real simulation
// with an internal/fault injector armed — the audit subsystem's
// injectors pointed at the runner's own execution path. The cell is
// deliberately not content-addressable (live fault plan), matching how
// expt gates hook-carrying configs.
func faultedCell(kind expt.Kind, wlName string, mode fault.Mode, seed uint64, crashInstrs ...uint64) runner.Cell {
	return runner.Cell{
		ID: fmt.Sprintf("%s/%s/faulted", kind, wlName),
		Run: func(context.Context) (sim.Result, error) {
			w, ok := workload.ByName(wlName)
			if !ok {
				return sim.Result{}, fmt.Errorf("unknown workload %q", wlName)
			}
			inj := fault.NewInjector(mode, seed)
			inj.CrashAtInstrs(crashInstrs...)
			design, nvm := expt.NewDesign(kind, expt.Options{})
			cfg := sim.DefaultConfig()
			cfg.CheckInvariants = true
			cfg.FaultPlan = inj
			inj.Arm(nvm, design)
			s, err := sim.New(cfg, design, nvm)
			if err != nil {
				return sim.Result{}, err
			}
			return s.Run(w.Name, func(m isa.Machine) uint32 { return w.Run(m, 1) })
		},
	}
}

// Driving the fault audit's crash injector through the runner: the
// deliberately broken design's durability violation surfaces as a
// typed, cell-attributed error (errors.Is sees sim.ErrCrashConsistency
// through the runner's wrapper), while sound designs under the same
// injection complete and their results ride alongside the failure.
func TestFaultInjectorsAgainstRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cells := []runner.Cell{
		faultedCell(expt.KindWL, "adpcmencode", fault.ModeCrash, 1, 2000, 9000),
		faultedCell(expt.KindBroken, "adpcmencode", fault.ModeCrash, 1, 2000, 9000),
		faultedCell(expt.KindWL, "basicmath", fault.ModeCrash, 2, 5000),
	}
	rep, err := runner.RunCells(context.Background(), runner.Config{Workers: 2, Engine: sim.EngineVersion}, cells)
	if err == nil {
		t.Fatal("broken design survived the crash injector through the runner")
	}
	var ce *runner.CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error not cell-attributed: %v", err)
	}
	if ce.Index != 1 || ce.ID != "broken/adpcmencode/faulted" {
		t.Fatalf("failure attributed to wrong cell: index %d, id %s", ce.Index, ce.ID)
	}
	if !errors.Is(err, sim.ErrCrashConsistency) {
		t.Fatalf("durability violation not typed through the wrapper: %v", err)
	}
	// The sound designs' results were not discarded by the failure.
	for _, i := range []int{0, 2} {
		if rep.Results[i].Instructions == 0 || rep.Results[i].Checksum == 0 {
			t.Fatalf("sound cell %d result lost: %+v", i, rep.Results[i])
		}
	}
	if rep.Metrics.Failed != 1 || rep.Metrics.Computed != 2 {
		t.Fatalf("metrics %+v", rep.Metrics)
	}
}
