package runner

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlcache/internal/sim"
)

// writeJournal hand-builds a journal file from raw lines.
func writeJournal(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func headerLine(t *testing.T, engine string) string {
	t.Helper()
	b, err := json.Marshal(header{Schema: Schema, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func recordLine(t *testing.T, engine, fp string, res sim.Result) string {
	t.Helper()
	b, err := json.Marshal(journalRecord{Addr: Address(engine, fp), ID: "id-" + fp, Fingerprint: fp, Result: res})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// An empty (or absent) journal resumes cleanly: no records, header
// written, appends work.
func TestEmptyJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	j, results, stats, err := OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(results) != 0 || stats.Records != 0 || stats.TornTail {
		t.Fatalf("fresh journal not empty: %d results, stats %+v", len(results), stats)
	}
	if err := j.Append(Address("e1", "fp"), "id", "fp", fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, results, stats, err = OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || results[Address("e1", "fp")] != fakeResult(1) {
		t.Fatalf("append not durable: stats %+v", stats)
	}
}

// A torn final record — the crash footprint — is discarded, not
// fatal, and the journal stays appendable without corrupting the next
// record.
func TestTruncatedLastLineDiscarded(t *testing.T) {
	full := recordLine(t, "e1", "fp-b", fakeResult(2))
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		path := writeJournal(t,
			headerLine(t, "e1"),
			recordLine(t, "e1", "fp-a", fakeResult(1)))
		// Append a torn tail: a prefix of a record, no newline.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(full[:cut]); err != nil {
			t.Fatal(err)
		}
		f.Close()

		j, results, stats, err := OpenJournal(path, "e1")
		if err != nil {
			t.Fatalf("cut %d: torn tail fatal: %v", cut, err)
		}
		if !stats.TornTail {
			t.Fatalf("cut %d: torn tail not reported: %+v", cut, stats)
		}
		if stats.Records != 1 || results[Address("e1", "fp-a")] != fakeResult(1) {
			t.Fatalf("cut %d: intact record lost: %+v", cut, stats)
		}
		// The file must have been truncated back: a fresh append must
		// land on a clean line and survive the next reload.
		if err := j.Append(Address("e1", "fp-c"), "id-c", "fp-c", fakeResult(3)); err != nil {
			t.Fatal(err)
		}
		j.Close()
		_, results, stats, err = OpenJournal(path, "e1")
		if err != nil {
			t.Fatal(err)
		}
		if stats.Records != 2 || results[Address("e1", "fp-c")] != fakeResult(3) || stats.TornTail {
			t.Fatalf("cut %d: append after torn-tail recovery broken: %+v", cut, stats)
		}
	}
}

// A complete final record missing only its newline is also treated as
// torn: accepting it and then appending would fuse two records.
func TestUnterminatedFinalLineDiscarded(t *testing.T) {
	path := writeJournal(t, headerLine(t, "e1"), recordLine(t, "e1", "fp-a", fakeResult(1)))
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(data, []byte(recordLine(t, "e1", "fp-b", fakeResult(2)))...), 0o644); err != nil {
		t.Fatal(err)
	}
	j, results, stats, err := OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !stats.TornTail || stats.Records != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if _, ok := results[Address("e1", "fp-b")]; ok {
		t.Fatal("unterminated record served")
	}
}

// Duplicate addresses resolve last-write-wins.
func TestDuplicateRecordsLastWriteWins(t *testing.T) {
	older, newer := fakeResult(1), fakeResult(9)
	path := writeJournal(t,
		headerLine(t, "e1"),
		recordLine(t, "e1", "fp-a", older),
		recordLine(t, "e1", "fp-b", fakeResult(2)),
		recordLine(t, "e1", "fp-a", newer))
	j, results, stats, err := OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if stats.Records != 2 || stats.Duplicates != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if results[Address("e1", "fp-a")] != newer {
		t.Fatal("duplicate did not resolve last-write-wins")
	}
}

// A record whose stored address does not hash its stored fingerprint
// is rejected (recomputed), never served.
func TestHashMismatchRejected(t *testing.T) {
	good := recordLine(t, "e1", "fp-a", fakeResult(1))
	var tampered journalRecord
	if err := json.Unmarshal([]byte(recordLine(t, "e1", "fp-b", fakeResult(2))), &tampered); err != nil {
		t.Fatal(err)
	}
	tampered.Fingerprint = "fp-not-what-was-hashed"
	tb, err := json.Marshal(tampered)
	if err != nil {
		t.Fatal(err)
	}
	path := writeJournal(t, headerLine(t, "e1"), good, string(tb))
	j, results, stats, err := OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if stats.Rejected != 1 || stats.Records != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if _, ok := results[tampered.Addr]; ok {
		t.Fatal("tampered record served")
	}
}

// Interior corruption is fatal — an append-only writer cannot produce
// it, so it signals real damage rather than a crash.
func TestInteriorCorruptionFatal(t *testing.T) {
	path := writeJournal(t,
		headerLine(t, "e1"),
		"{this is not json",
		recordLine(t, "e1", "fp-a", fakeResult(1)))
	_, _, _, err := OpenJournal(path, "e1")
	if err == nil || !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

// A foreign file (wrong schema) must never be clobbered.
func TestForeignFileRefused(t *testing.T) {
	path := writeJournal(t, `{"some":"other file"}`)
	before, _ := os.ReadFile(path)
	_, _, _, err := OpenJournal(path, "e1")
	if err == nil || !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("err = %v", err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatal("foreign file was modified")
	}
}

// A crash so early that even the header is torn restarts the journal.
func TestTornHeaderRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte(`{"schema":"wlr`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, results, stats, err := OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !stats.TornTail || len(results) != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if err := j.Append(Address("e1", "fp"), "id", "fp", fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, results, stats, err = OpenJournal(path, "e1")
	if err != nil || stats.Records != 1 {
		t.Fatalf("restart after torn header broken: %v, %+v", err, stats)
	}
}

// JSON round-trips of results through the journal are bit-exact,
// including float fields.
func TestJournalResultBitExact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _, _, err := OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	want := fakeResult(13)
	want.Energy.Compute = 0.1 + 0.2 // a value with a non-terminating binary expansion
	want.ReserveWasted = 1e-300
	if err := j.Append(Address("e1", "fp"), "id", "fp", want); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, results, _, err := OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if got := results[Address("e1", "fp")]; got != want {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, want)
	}
}
