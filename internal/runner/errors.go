package runner

import (
	"errors"
	"fmt"
)

// Typed sentinel errors for the runner's failure classes; callers
// classify with errors.Is instead of matching message strings,
// mirroring the discipline internal/sim establishes for the simulator.
var (
	// ErrTransient marks a retryable cell failure. The default retry
	// classifier retries exactly the errors that wrap it; everything
	// else (simulation errors, panics) is permanent — a deterministic
	// simulator fails the same way every time.
	ErrTransient = errors.New("runner: transient cell failure")

	// ErrCellPanic marks a cell whose Run panicked. The panic is
	// recovered on the worker goroutine and isolated to the cell, so
	// one poisoned cell cannot take down a whole sweep.
	ErrCellPanic = errors.New("runner: cell panicked")

	// ErrSkipped marks a cell that was never attempted because the
	// sweep context was cancelled before a worker reached it.
	ErrSkipped = errors.New("runner: cell skipped")

	// ErrJournalCorrupt marks a journal whose interior (non-final)
	// records are unreadable. A torn *final* record is expected crash
	// damage and discarded silently; damage elsewhere is not something
	// an append-only writer can produce and aborts the sweep.
	ErrJournalCorrupt = errors.New("runner: journal corrupt")
)

// CellError attributes a failure to one cell of a sweep, by index and
// human-readable identity. It wraps the underlying cause, so
// errors.Is(err, sim.ErrCrashConsistency) etc. see through it.
type CellError struct {
	Index int    // position in the submitted cell slice
	ID    string // the cell's ID (e.g. "nvsram/sha/tr1")
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %s: %v", e.ID, e.Err) }
func (e *CellError) Unwrap() error { return e.Err }

// PanicError carries a recovered cell panic: the panic value and the
// stack of the worker goroutine at recovery time. It matches
// ErrCellPanic under errors.Is.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string        { return fmt.Sprintf("%v: %v", ErrCellPanic, e.Value) }
func (e *PanicError) Is(target error) bool { return target == ErrCellPanic }
