package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wlcache/internal/sim"
)

// The backoff schedule doubles from base, saturates at the cap, and
// never overflows into a negative (shorter) sleep no matter how many
// attempts pile up.
func TestBackoffSchedule(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for attempt, w := range want {
		if got := backoffFor(base, cap, attempt); got != w*time.Millisecond {
			t.Errorf("attempt %d: backoff = %v, want %v", attempt, got, w*time.Millisecond)
		}
	}
}

func TestBackoffDisabledAndOverflow(t *testing.T) {
	if got := backoffFor(0, time.Second, 5); got != 0 {
		t.Errorf("zero base must disable backoff, got %v", got)
	}
	// Enough doublings to overflow int64 twice over: the schedule must
	// saturate at the cap, not wrap negative.
	if got := backoffFor(time.Second, math.MaxInt64, 200); got != math.MaxInt64 {
		t.Errorf("overflowing schedule = %v, want saturation at the cap", got)
	}
	for attempt := 0; attempt < 128; attempt++ {
		if got := backoffFor(time.Millisecond, time.Second, attempt); got < 0 || got > time.Second {
			t.Fatalf("attempt %d: backoff %v escapes [0, cap]", attempt, got)
		}
	}
}

// Exhausting MaxAttempts surfaces the cell's own last error — message
// and classification intact — not a synthetic "retries exhausted"
// wrapper that would hide what actually failed.
func TestExhaustionSurfacesOriginalError(t *testing.T) {
	_, err := RunCells(context.Background(), Config{
		Workers: 1, Engine: "test", MaxAttempts: 2,
		BackoffBase: time.Microsecond, BackoffMax: time.Microsecond,
	}, []Cell{{ID: "down", Run: func(context.Context) (sim.Result, error) {
		return sim.Result{}, fmt.Errorf("%w: disk on fire", ErrTransient)
	}}})
	if err == nil {
		t.Fatal("exhausted cell returned nil error")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("original classification lost: %v", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("original message lost: %v", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.ID != "down" {
		t.Fatalf("error not attributed to the failing cell: %v", err)
	}
}

// A custom Retryable classifier overrides the ErrTransient default in
// both directions: it can retry errors that do not wrap ErrTransient
// and refuse ones that do.
func TestCustomRetryClassifier(t *testing.T) {
	errFlaky := errors.New("flaky io")
	var flakyTries, transientTries atomic.Int64
	cells := []Cell{
		{ID: "custom-transient", Run: func(context.Context) (sim.Result, error) {
			if flakyTries.Add(1) < 2 {
				return sim.Result{}, errFlaky
			}
			return fakeResult(1), nil
		}},
		{ID: "custom-permanent", Optional: true, Run: func(context.Context) (sim.Result, error) {
			transientTries.Add(1)
			return sim.Result{}, fmt.Errorf("%w: would retry by default", ErrTransient)
		}},
	}
	rep, err := RunCells(context.Background(), Config{
		Workers: 1, Engine: "test", MaxAttempts: 5,
		BackoffBase: time.Microsecond, BackoffMax: time.Microsecond,
		Retryable: func(err error) bool { return errors.Is(err, errFlaky) },
	}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := flakyTries.Load(); got != 2 {
		t.Fatalf("classifier-transient cell ran %d times, want 2", got)
	}
	if got := transientTries.Load(); got != 1 {
		t.Fatalf("classifier-permanent cell ran %d times, want 1 (no retry)", got)
	}
	if rep.Metrics.Retries != 1 || rep.Metrics.OptionalFailed != 1 {
		t.Fatalf("metrics %+v", rep.Metrics)
	}
}

// Panics classify as permanent: one attempt, no retry, typed error.
func TestPanicIsPermanent(t *testing.T) {
	var tries atomic.Int64
	rep, err := RunCells(context.Background(), Config{
		Workers: 1, Engine: "test", MaxAttempts: 5,
		BackoffBase: time.Microsecond, BackoffMax: time.Microsecond,
	}, []Cell{{ID: "boom", Optional: true, Run: func(context.Context) (sim.Result, error) {
		tries.Add(1)
		panic("kaboom")
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tries.Load(); got != 1 {
		t.Fatalf("panicking cell ran %d times, want 1 (permanent)", got)
	}
	if !errors.Is(rep.Errs[0], ErrCellPanic) || rep.Metrics.Retries != 0 {
		t.Fatalf("err %v, metrics %+v", rep.Errs[0], rep.Metrics)
	}
}
