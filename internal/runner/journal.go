package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"wlcache/internal/sim"
)

// Schema identifies the journal file format. The first line of every
// journal is a header record carrying this schema tag plus the engine
// version; every following line is one completed cell.
const Schema = "wlrun/v1"

// Address computes the content address of a cell: a hex SHA-256 over
// the journal schema, the engine version and the cell fingerprint
// (the canonical serialization of design config + workload + trace
// params the caller builds). Two cells share an address exactly when
// the same engine would provably compute the same result for both.
func Address(engine, fingerprint string) string {
	h := sha256.New()
	h.Write([]byte(Schema))
	h.Write([]byte{0})
	h.Write([]byte(engine))
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// header is the journal's first line.
type header struct {
	Schema string `json:"schema"`
	Engine string `json:"engine"`
}

// journalRecord is one completed cell. Addr must equal
// Address(engine, Fingerprint) — reload rejects records where it does
// not, so a tampered or mis-keyed record is recomputed, never served.
type journalRecord struct {
	Addr        string     `json:"addr"`
	ID          string     `json:"id"`
	Fingerprint string     `json:"fp"`
	Result      sim.Result `json:"result"`
}

// LoadStats reports what reloading a journal found and discarded.
type LoadStats struct {
	// Records is the number of valid records served from the journal
	// file (after last-write-wins deduplication).
	Records int
	// Duplicates counts records superseded by a later record with the
	// same address (the earlier write loses).
	Duplicates int
	// Rejected counts well-formed records whose stored address did not
	// match the hash of their stored fingerprint; they are skipped.
	Rejected int
	// TornTail is true when the final line was a torn (truncated or
	// unterminated) record, discarded on reload — the expected damage
	// shape for a crash mid-append.
	TornTail bool
	// TornTailBytes counts the bytes discarded with the torn tail, so
	// reload loss is quantified, never silent.
	TornTailBytes int
	// Dropped counts every whole record present in the file but not
	// served on reload: Duplicates + Rejected + records discarded
	// wholesale on an engine mismatch. The torn tail is not a whole
	// record and is accounted by TornTailBytes instead.
	Dropped int
	// EngineMismatch is true when the journal belonged to a different
	// engine version; all of its records were discarded and the file
	// restarted, since no address could ever be served anyway.
	EngineMismatch bool
}

// Journal is an append-only, fsync'd JSONL file of completed sweep
// cells. Appends are serialized; each record is durable (written and
// synced) before Append returns, which is what makes a sweep killed at
// an arbitrary instant resumable with at most the in-flight record
// lost.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	engine   string
	appended int
	// afterAppend, when set, runs after the n-th record is durable,
	// still holding the append lock — the chaos harness uses it to
	// kill the process at a point where the journal state is exactly
	// known.
	afterAppend func(n int)
	// observeFsync, when set, receives the wall time of each record's
	// fsync, still holding the append lock.
	observeFsync func(d time.Duration)
}

// OpenJournal opens (creating if needed) the journal at path for the
// given engine version, and returns the journal ready for appends plus
// every valid journaled result keyed by content address.
//
// Reload is truncation-tolerant: a torn final record — the footprint
// of a crash mid-append — is discarded and the file truncated back to
// the last durable record, not treated as fatal. Corruption anywhere
// else wraps ErrJournalCorrupt. Duplicate addresses resolve
// last-write-wins.
func OpenJournal(path, engine string) (*Journal, map[string]sim.Result, LoadStats, error) {
	var stats LoadStats
	results := make(map[string]sim.Result)

	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, stats, err
	}

	keep := 0 // byte offset past the last line worth preserving
	fresh := len(data) == 0

	if !fresh {
		keep, fresh, err = scanJournal(data, engine, results, &stats)
		if err != nil {
			return nil, nil, stats, err
		}
	}

	if fresh {
		keep = 0
	}
	if keep < len(data) {
		// Drop the torn tail (or, on engine mismatch, everything)
		// before appending: new records must start on a clean line.
		if err := os.Truncate(path, int64(keep)); err != nil {
			return nil, nil, stats, err
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, stats, err
	}
	j := &Journal{f: f, engine: engine}
	if fresh {
		line, err := json.Marshal(header{Schema: Schema, Engine: engine})
		if err != nil {
			f.Close()
			return nil, nil, stats, err
		}
		if err := j.writeLine(line); err != nil {
			f.Close()
			return nil, nil, stats, err
		}
	}
	return j, results, stats, nil
}

// scanJournal walks the raw file contents, filling results, and
// returns the preserve-up-to offset plus whether the file must be
// restarted from scratch (torn or mismatched header).
func scanJournal(data []byte, engine string, results map[string]sim.Result, stats *LoadStats) (keep int, fresh bool, err error) {
	off, lineNo := 0, 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		torn := nl < 0
		var line []byte
		var end int
		if torn {
			line, end = data[off:], len(data)
		} else {
			line, end = data[off:off+nl], off+nl+1
		}
		lineNo++

		if lineNo == 1 {
			var h header
			if jerr := json.Unmarshal(line, &h); jerr != nil || torn {
				if torn {
					// Crash while creating the journal: the header
					// itself is the torn tail. Restart.
					stats.TornTail = true
					stats.TornTailBytes = len(data)
					return 0, true, nil
				}
				return 0, false, fmt.Errorf("%w: unreadable header: %v", ErrJournalCorrupt, jerr)
			}
			if h.Schema != Schema {
				// Never clobber a file we did not write.
				return 0, false, fmt.Errorf("%w: schema %q, want %q", ErrJournalCorrupt, h.Schema, Schema)
			}
			if h.Engine != engine {
				stats.EngineMismatch = true
				stats.Dropped += countLines(data[end:])
				return 0, true, nil
			}
			keep, off = end, end
			continue
		}

		var r journalRecord
		if jerr := json.Unmarshal(line, &r); jerr != nil || torn {
			if end == len(data) {
				stats.TornTail = true
				stats.TornTailBytes = len(data) - keep
				return keep, false, nil
			}
			return 0, false, fmt.Errorf("%w: unreadable record on line %d: %v", ErrJournalCorrupt, lineNo, jerr)
		}
		keep, off = end, end
		if r.Addr != Address(engine, r.Fingerprint) {
			stats.Rejected++
			stats.Dropped++
			continue
		}
		if _, dup := results[r.Addr]; dup {
			stats.Duplicates++
			stats.Dropped++
			stats.Records--
		}
		results[r.Addr] = r.Result
		stats.Records++
	}
	return keep, false, nil
}

// countLines counts newline-terminated lines — whole records; a
// trailing partial line is torn, not a record.
func countLines(data []byte) int {
	return bytes.Count(data, []byte{'\n'})
}

// ReadJournal loads the valid records of a journal without opening it
// for append and without repairing its tail: a pure read, safe on a
// journal another process is still writing. A missing file returns an
// empty map. An engine mismatch returns an empty map with
// stats.EngineMismatch set. Interior corruption wraps
// ErrJournalCorrupt, exactly as OpenJournal would.
func ReadJournal(path, engine string) (map[string]sim.Result, LoadStats, error) {
	var stats LoadStats
	results := make(map[string]sim.Result)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return results, stats, nil
		}
		return nil, stats, err
	}
	if len(data) == 0 {
		return results, stats, nil
	}
	if _, fresh, err := scanJournal(data, engine, results, &stats); err != nil {
		return nil, stats, err
	} else if fresh {
		// Torn header or foreign engine: nothing servable.
		return make(map[string]sim.Result), stats, nil
	}
	return results, stats, nil
}

// Append durably records one completed cell: the line is written and
// fsync'd before Append returns.
func (j *Journal) Append(addr, id, fingerprint string, res sim.Result) error {
	line, err := json.Marshal(journalRecord{Addr: addr, ID: id, Fingerprint: fingerprint, Result: res})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.writeLine(line); err != nil {
		return err
	}
	j.appended++
	if j.afterAppend != nil {
		j.afterAppend(j.appended)
	}
	return nil
}

// writeLine appends one newline-terminated record and syncs. Callers
// other than OpenJournal must hold j.mu.
func (j *Journal) writeLine(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	start := time.Now()
	err := j.f.Sync()
	if err == nil && j.observeFsync != nil {
		j.observeFsync(time.Since(start))
	}
	return err
}

// Appended returns how many records this process has durably appended.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
