package runner

import (
	"context"
	"sync"

	"wlcache/internal/sim"
)

// Flight is a concurrent, content-addressed result store shared across
// sweeps, with single-flight execution: when several sweeps race on
// cells with the same address, exactly one caller computes while the
// rest wait for its published result. This is what lets a multi-client
// sweep service dedupe overlapping submissions to near-zero work — a
// cell is computed once per server lifetime no matter how many
// concurrent sweeps request it.
//
// Only successes are published. A leader whose compute fails releases
// the address, and one of the waiters takes over leadership and tries
// its own compute (with its own retry budget), so a transient failure
// in one sweep never poisons the result for every other sweep.
type Flight struct {
	mu       sync.Mutex
	done     map[string]sim.Result
	inflight map[string]chan struct{}
}

// NewFlight returns an empty shared store.
func NewFlight() *Flight {
	return &Flight{
		done:     make(map[string]sim.Result),
		inflight: make(map[string]chan struct{}),
	}
}

// Seed publishes an already-known result (e.g. reloaded from a journal
// at server startup) without computing anything. Later Seeds for the
// same address win, mirroring the journal's last-write-wins reload.
func (f *Flight) Seed(addr string, res sim.Result) {
	if f == nil || addr == "" {
		return
	}
	f.mu.Lock()
	f.done[addr] = res
	f.mu.Unlock()
}

// Len returns the number of published results.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.done)
}

// Do returns the published result for addr, or elects this caller to
// compute it. computed reports whether this caller's compute function
// ran and succeeded (its result is now published); computed false with
// a nil error means the result was served from the store or from
// another caller's in-flight compute. A compute error is returned only
// to the caller whose compute failed — waiters retry leadership
// instead of inheriting it.
func (f *Flight) Do(ctx context.Context, addr string, compute func() (sim.Result, error)) (res sim.Result, computed bool, err error) {
	for {
		f.mu.Lock()
		if r, ok := f.done[addr]; ok {
			f.mu.Unlock()
			return r, false, nil
		}
		ch, busy := f.inflight[addr]
		if !busy {
			ch = make(chan struct{})
			f.inflight[addr] = ch
			f.mu.Unlock()

			r, cerr := compute()
			f.mu.Lock()
			delete(f.inflight, addr)
			if cerr == nil {
				f.done[addr] = r
			}
			close(ch)
			f.mu.Unlock()
			if cerr != nil {
				return sim.Result{}, false, cerr
			}
			return r, true, nil
		}
		f.mu.Unlock()
		select {
		case <-ctx.Done():
			return sim.Result{}, false, context.Cause(ctx)
		case <-ch:
			// The leader finished (or failed). Loop: either the result
			// is published now, or this waiter runs for leadership.
		}
	}
}
