package runner

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"wlcache/internal/obs"
	"wlcache/internal/sim"
)

// Reload surfaces exactly how many bytes of torn tail were discarded.
func TestLoadStatsTornTailBytes(t *testing.T) {
	full := recordLine(t, "e1", "fp-b", fakeResult(2))
	cut := len(full) / 2
	path := writeJournal(t,
		headerLine(t, "e1"),
		recordLine(t, "e1", "fp-a", fakeResult(1)))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(full[:cut]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j, _, stats, err := OpenJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if !stats.TornTail || stats.TornTailBytes != cut {
		t.Fatalf("torn tail of %d bytes reported as %+v", cut, stats)
	}
	// The torn tail is not a whole record: it must not inflate Dropped.
	if stats.Dropped != 0 {
		t.Fatalf("torn tail counted as dropped records: %+v", stats)
	}
}

// Dropped aggregates every whole record the reload discarded:
// last-write-wins duplicates, address-mismatch rejects, and wholesale
// engine-mismatch discards.
func TestLoadStatsDroppedRecords(t *testing.T) {
	t.Run("duplicates", func(t *testing.T) {
		path := writeJournal(t,
			headerLine(t, "e1"),
			recordLine(t, "e1", "fp-a", fakeResult(1)),
			recordLine(t, "e1", "fp-a", fakeResult(2)),
			recordLine(t, "e1", "fp-a", fakeResult(3)))
		j, results, stats, err := OpenJournal(path, "e1")
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		if stats.Duplicates != 2 || stats.Dropped != 2 {
			t.Fatalf("stats %+v, want 2 duplicates counted as dropped", stats)
		}
		if results[Address("e1", "fp-a")] != fakeResult(3) {
			t.Fatal("last write did not win")
		}
	})
	t.Run("rejected", func(t *testing.T) {
		path := writeJournal(t,
			headerLine(t, "e1"),
			// A record whose address was computed under a different
			// engine: recomputed on reload, counted as dropped.
			recordLine(t, "other-engine", "fp-a", fakeResult(1)),
			recordLine(t, "e1", "fp-b", fakeResult(2)))
		j, _, stats, err := OpenJournal(path, "e1")
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		if stats.Rejected != 1 || stats.Dropped != 1 || stats.Records != 1 {
			t.Fatalf("stats %+v, want 1 reject counted as dropped", stats)
		}
	})
	t.Run("engine mismatch", func(t *testing.T) {
		path := writeJournal(t,
			headerLine(t, "old-engine"),
			recordLine(t, "old-engine", "fp-a", fakeResult(1)),
			recordLine(t, "old-engine", "fp-b", fakeResult(2)))
		j, results, stats, err := OpenJournal(path, "e2")
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		if len(results) != 0 || stats.Dropped != 2 {
			t.Fatalf("stats %+v with %d results, want both stale records dropped", stats, len(results))
		}
	})
}

// ReadJournal serves the journal's records without mutating the file:
// no truncation, no header write, byte-identical before and after.
func TestReadJournalIsPure(t *testing.T) {
	full := recordLine(t, "e1", "fp-b", fakeResult(2))
	path := writeJournal(t,
		headerLine(t, "e1"),
		recordLine(t, "e1", "fp-a", fakeResult(1)))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	results, stats, err := ReadJournal(path, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[Address("e1", "fp-a")] != fakeResult(1) {
		t.Fatalf("results %v", results)
	}
	if !stats.TornTail || stats.TornTailBytes != len(full)/2 {
		t.Fatalf("stats %+v", stats)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("ReadJournal mutated the journal file")
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	results, stats, err := ReadJournal(filepath.Join(t.TempDir(), "absent.jsonl"), "e1")
	if err != nil {
		t.Fatalf("missing journal must read as empty, got %v", err)
	}
	if len(results) != 0 || stats.Records != 0 {
		t.Fatalf("results %v stats %+v", results, stats)
	}
}

// A sweep with an Obs registry logs its journal-reload accounting
// through the standard metrics: records served, dropped records, torn
// tail bytes.
func TestReloadMetricsThroughObs(t *testing.T) {
	full := recordLine(t, "test", "fp-torn", fakeResult(9))
	cut := len(full) - 3
	path := writeJournal(t,
		headerLine(t, "test"),
		recordLine(t, "test", "fp-0", fakeResult(0)),
		recordLine(t, "test", "fp-0", fakeResult(0)))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(full[:cut]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	_, err = RunCells(context.Background(), Config{
		Workers: 1, Engine: "test", JournalPath: path, Obs: reg,
	}, []Cell{{ID: "c0", Fingerprint: "fp-0", Run: func(context.Context) (sim.Result, error) {
		t.Error("journaled cell recomputed")
		return sim.Result{}, nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("runner.journal.records", obs.DirNone).Value(); got != 1 {
		t.Errorf("records metric = %d, want 1", got)
	}
	if got := reg.Counter("runner.journal.dropped_records", obs.DirLower).Value(); got != 1 {
		t.Errorf("dropped metric = %d, want 1 (the duplicate)", got)
	}
	if got := reg.Counter("runner.journal.torn_tail_bytes", obs.DirLower).Value(); got != uint64(cut) {
		t.Errorf("torn-tail metric = %d, want %d", got, cut)
	}
}
