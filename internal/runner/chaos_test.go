package runner

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"wlcache/internal/sim"
)

// The chaos tests apply the internal/fault discipline to the runner
// itself: deterministic, seed-driven damage — a sweep killed at an
// arbitrary journal append, a journal file torn at an arbitrary byte
// — followed by a resume that must stitch bit-identical results with
// zero recomputation of surviving records.

// chaosCells builds n addressable cells that count their executions.
func chaosCells(n int, computes *atomic.Int64) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			ID:          fmt.Sprintf("cell-%d", i),
			Fingerprint: fmt.Sprintf("fp-%d", i),
			Run: func(context.Context) (sim.Result, error) {
				computes.Add(1)
				return fakeResult(i), nil
			},
		}
	}
	return cells
}

// A sweep aborted after a randomized number of journal appends resumes
// with every journaled cell served by hash and only the rest
// recomputed; the stitched results are identical to an uninterrupted
// run.
func TestChaosAbortResume(t *testing.T) {
	const n = 24
	rng := rand.New(rand.NewSource(42))
	var clean atomic.Int64
	cleanRep, err := RunCells(context.Background(), Config{Workers: 4, Engine: "chaos"}, chaosCells(n, &clean))
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 8; trial++ {
		journal := filepath.Join(t.TempDir(), "j.jsonl")
		killAt := 1 + rng.Intn(n-1)

		// Phase 1: run until killAt cells are durable, then abort the
		// sweep as abruptly as an in-process harness can — cancel from
		// inside the journal's append lock, exactly where the real
		// chaos harness SIGKILLs.
		ctx, cancel := context.WithCancel(context.Background())
		var c1 atomic.Int64
		RunCells(ctx, Config{
			Workers: 4, Engine: "chaos", JournalPath: journal,
			AfterJournal: func(done int) {
				if done == killAt {
					cancel()
				}
			},
		}, chaosCells(n, &c1))
		cancel()

		// Phase 2: resume. Everything journaled must be served.
		var c2 atomic.Int64
		rep, err := RunCells(context.Background(), Config{Workers: 4, Engine: "chaos", JournalPath: journal}, chaosCells(n, &c2))
		if err != nil {
			t.Fatalf("trial %d (killAt %d): resume failed: %v", trial, killAt, err)
		}
		if rep.Metrics.FromJournal < killAt {
			t.Fatalf("trial %d: only %d of %d journaled cells served", trial, rep.Metrics.FromJournal, killAt)
		}
		if rep.Metrics.FromJournal+rep.Metrics.Computed != n {
			t.Fatalf("trial %d: cells unaccounted on resume: %+v", trial, rep.Metrics)
		}
		if int(c2.Load()) != rep.Metrics.Computed {
			t.Fatalf("trial %d: journaled cells recomputed: %d executions for %d computed", trial, c2.Load(), rep.Metrics.Computed)
		}
		for i := 0; i < n; i++ {
			if rep.Results[i] != cleanRep.Results[i] {
				t.Fatalf("trial %d: stitched cell %d diverged from clean run", trial, i)
			}
		}
	}
}

// A journal torn at an arbitrary byte offset — the footprint of power
// loss mid-write, internal/fault's torn-write mode applied to the
// runner's own persistence — still resumes: intact records serve,
// the torn tail recomputes, results stay bit-identical.
func TestChaosTornJournalResume(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(7))

	// Build a complete journal once.
	fullPath := filepath.Join(t.TempDir(), "full.jsonl")
	var c0 atomic.Int64
	cleanRep, err := RunCells(context.Background(), Config{Workers: 4, Engine: "chaos", JournalPath: fullPath}, chaosCells(n, &c0))
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 12; trial++ {
		cut := 1 + rng.Intn(len(full)-1)
		torn := filepath.Join(t.TempDir(), fmt.Sprintf("torn-%d.jsonl", trial))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var c atomic.Int64
		rep, err := RunCells(context.Background(), Config{Workers: 4, Engine: "chaos", JournalPath: torn}, chaosCells(n, &c))
		if err != nil {
			t.Fatalf("trial %d (cut %d/%d): resume failed: %v", trial, cut, len(full), err)
		}
		if rep.Metrics.FromJournal+rep.Metrics.Computed != n {
			t.Fatalf("trial %d: cells unaccounted: %+v", trial, rep.Metrics)
		}
		if int(c.Load()) != rep.Metrics.Computed {
			t.Fatalf("trial %d: served cells re-executed", trial)
		}
		for i := 0; i < n; i++ {
			if rep.Results[i] != cleanRep.Results[i] {
				t.Fatalf("trial %d (cut %d): stitched cell %d diverged", trial, cut, i)
			}
		}
	}
}
