package runner

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wlcache/internal/sim"
)

// Every computed cell's CellDone carries its timing — one attempt, a
// duration covering the cell's work, a non-negative queue wait — and
// each journal append's fsync is reported to the ObserveFsync hook.
func TestCellDoneTimingAndFsyncHook(t *testing.T) {
	const n = 6
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			ID:          fmt.Sprintf("cell-%d", i),
			Fingerprint: fmt.Sprintf("fp-%d", i),
			Run: func(context.Context) (sim.Result, error) {
				time.Sleep(2 * time.Millisecond)
				return fakeResult(i), nil
			},
		}
	}

	var mu sync.Mutex
	var dones []CellDone
	var fsyncs atomic.Int64
	cfg := Config{
		Workers:     2,
		Engine:      "test",
		JournalPath: filepath.Join(t.TempDir(), "sweep.wlj"),
		OnCell: func(d CellDone) {
			mu.Lock()
			dones = append(dones, d)
			mu.Unlock()
		},
		ObserveFsync: func(d time.Duration) {
			if d < 0 {
				t.Errorf("negative fsync duration %v", d)
			}
			fsyncs.Add(1)
		},
	}
	if _, err := RunCells(context.Background(), cfg, cells); err != nil {
		t.Fatal(err)
	}

	if len(dones) != n {
		t.Fatalf("OnCell fired %d times, want %d", len(dones), n)
	}
	for _, d := range dones {
		if d.Source != SourceComputed {
			t.Fatalf("cell %s source %q, want computed", d.ID, d.Source)
		}
		if d.Attempts != 1 {
			t.Fatalf("cell %s attempts %d, want 1", d.ID, d.Attempts)
		}
		if d.Dur < 2*time.Millisecond {
			t.Fatalf("cell %s dur %v, want >= the cell's 2ms of work", d.ID, d.Dur)
		}
		if d.Wait < 0 {
			t.Fatalf("cell %s negative wait %v", d.ID, d.Wait)
		}
	}
	// One durable append (and one fsync) per computed cell.
	if got := fsyncs.Load(); got != n {
		t.Fatalf("ObserveFsync fired %d times, want %d", got, n)
	}
}

// Transient retries are visible in CellDone.Attempts, and cells served
// from the journal on a re-run report zero attempts and the journal
// source.
func TestCellDoneAttemptsAndJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.wlj")
	var tries atomic.Int64
	flaky := Cell{
		ID:          "flaky",
		Fingerprint: "fp-flaky",
		Run: func(context.Context) (sim.Result, error) {
			if tries.Add(1) < 3 {
				return sim.Result{}, fmt.Errorf("hiccup: %w", ErrTransient)
			}
			return fakeResult(0), nil
		},
	}

	collect := func() (func(CellDone), *[]CellDone) {
		var mu sync.Mutex
		out := &[]CellDone{}
		return func(d CellDone) {
			mu.Lock()
			*out = append(*out, d)
			mu.Unlock()
		}, out
	}

	onCell, dones := collect()
	cfg := Config{
		Workers: 1, Engine: "test", JournalPath: path,
		MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond,
		OnCell: onCell,
	}
	if _, err := RunCells(context.Background(), cfg, []Cell{flaky}); err != nil {
		t.Fatal(err)
	}
	if len(*dones) != 1 || (*dones)[0].Attempts != 3 || (*dones)[0].Source != SourceComputed {
		t.Fatalf("first run CellDone = %+v, want 3 attempts, computed", *dones)
	}

	onCell2, dones2 := collect()
	cfg.OnCell = onCell2
	if _, err := RunCells(context.Background(), cfg, []Cell{flaky}); err != nil {
		t.Fatal(err)
	}
	d := (*dones2)[0]
	if d.Source != SourceJournal || d.Attempts != 0 {
		t.Fatalf("replay CellDone = %+v, want journal source with 0 attempts", d)
	}
	if tries.Load() != 3 {
		t.Fatalf("cell ran %d times total, want 3 (replay must not recompute)", tries.Load())
	}
}
